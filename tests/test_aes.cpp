/**
 * @file
 * AES block cipher known-answer tests (FIPS 197 Appendix C) and
 * roundtrip properties.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/hex.hpp"
#include "crypto/aes.hpp"
#include "crypto/random.hpp"

using namespace salus;
using namespace salus::crypto;

namespace {

Bytes
encryptOne(const std::string &keyHex, const std::string &ptHex)
{
    Aes aes(hexDecode(keyHex));
    Bytes pt = hexDecode(ptHex);
    Bytes ct(16);
    aes.encryptBlock(pt.data(), ct.data());
    return ct;
}

Bytes
decryptOne(const std::string &keyHex, const std::string &ctHex)
{
    Aes aes(hexDecode(keyHex));
    Bytes ct = hexDecode(ctHex);
    Bytes pt(16);
    aes.decryptBlock(ct.data(), pt.data());
    return pt;
}

const char *kFipsPlain = "00112233445566778899aabbccddeeff";

} // namespace

TEST(Aes, Fips197Aes128Encrypt)
{
    EXPECT_EQ(hexEncode(encryptOne("000102030405060708090a0b0c0d0e0f",
                                   kFipsPlain)),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes192Encrypt)
{
    EXPECT_EQ(hexEncode(encryptOne(
                  "000102030405060708090a0b0c0d0e0f1011121314151617",
                  kFipsPlain)),
              "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256Encrypt)
{
    EXPECT_EQ(hexEncode(encryptOne("000102030405060708090a0b0c0d0e0f"
                                   "101112131415161718191a1b1c1d1e1f",
                                   kFipsPlain)),
              "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, Fips197Aes128Decrypt)
{
    EXPECT_EQ(hexEncode(decryptOne("000102030405060708090a0b0c0d0e0f",
                                   "69c4e0d86a7b0430d8cdb78070b4c55a")),
              kFipsPlain);
}

TEST(Aes, Fips197Aes256Decrypt)
{
    EXPECT_EQ(hexEncode(decryptOne("000102030405060708090a0b0c0d0e0f"
                                   "101112131415161718191a1b1c1d1e1f",
                                   "8ea2b7ca516745bfeafc49904b496089")),
              kFipsPlain);
}

TEST(Aes, RejectsBadKeySizes)
{
    EXPECT_THROW(Aes(Bytes(15)), CryptoError);
    EXPECT_THROW(Aes(Bytes(17)), CryptoError);
    EXPECT_THROW(Aes(Bytes(0)), CryptoError);
    EXPECT_THROW(Aes(Bytes(33)), CryptoError);
}

TEST(Aes, InPlaceBlockAliasing)
{
    Aes aes(hexDecode("000102030405060708090a0b0c0d0e0f"));
    Bytes buf = hexDecode(kFipsPlain);
    aes.encryptBlock(buf.data(), buf.data());
    EXPECT_EQ(hexEncode(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.decryptBlock(buf.data(), buf.data());
    EXPECT_EQ(hexEncode(buf), kFipsPlain);
}

/** Encrypt-then-decrypt must be the identity for every key size. */
class AesRoundtrip : public ::testing::TestWithParam<size_t>
{};

TEST_P(AesRoundtrip, RandomBlocks)
{
    CtrDrbg rng(uint64_t(GetParam()) * 7919 + 1);
    Bytes key = rng.bytes(GetParam());
    Aes aes(key);
    for (int i = 0; i < 50; ++i) {
        Bytes pt = rng.bytes(16);
        Bytes ct(16), back(16);
        aes.encryptBlock(pt.data(), ct.data());
        aes.decryptBlock(ct.data(), back.data());
        EXPECT_EQ(back, pt);
        EXPECT_NE(ct, pt) << "encryption must not be identity";
    }
}

INSTANTIATE_TEST_SUITE_P(AllKeySizes, AesRoundtrip,
                         ::testing::Values(16, 24, 32));
