/**
 * @file
 * Random-source tests: determinism, stream separation, reseeding.
 */

#include <gtest/gtest.h>

#include "crypto/random.hpp"

using namespace salus;
using namespace salus::crypto;

TEST(CtrDrbgTest, DeterministicPerSeed)
{
    CtrDrbg a(12345u);
    CtrDrbg b(12345u);
    EXPECT_EQ(a.bytes(64), b.bytes(64));
    EXPECT_EQ(a.bytes(7), b.bytes(7));
}

TEST(CtrDrbgTest, DistinctSeedsDistinctStreams)
{
    CtrDrbg a(1u);
    CtrDrbg b(2u);
    EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(CtrDrbgTest, SequentialCallsAdvanceState)
{
    CtrDrbg a(7u);
    Bytes first = a.bytes(32);
    Bytes second = a.bytes(32);
    EXPECT_NE(first, second);
}

TEST(CtrDrbgTest, ReseedChangesStream)
{
    CtrDrbg a(7u);
    CtrDrbg b(7u);
    a.bytes(16);
    b.bytes(16);
    a.reseed(Bytes{1, 2, 3});
    EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(CtrDrbgTest, ByteSeedAndIntSeedIndependent)
{
    CtrDrbg a(uint64_t(0));
    CtrDrbg b{ByteView()};
    EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(CtrDrbgTest, BelowStaysInRange)
{
    CtrDrbg a(99u);
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(a.below(17), 17u);
    EXPECT_EQ(a.below(0), 0u);
    EXPECT_EQ(a.below(1), 0u);
}

TEST(CtrDrbgTest, RoughlyUniformBytes)
{
    // Sanity check, not a statistical test: all byte values appear in
    // a 64 KiB stream.
    CtrDrbg a(5u);
    Bytes data = a.bytes(65536);
    bool seen[256] = {};
    for (uint8_t b : data)
        seen[b] = true;
    for (int i = 0; i < 256; ++i)
        EXPECT_TRUE(seen[i]) << "byte value " << i << " never seen";
}

TEST(SystemRandomTest, ProducesDifferingBuffers)
{
    SystemRandom sr;
    Bytes a = sr.bytes(32);
    Bytes b = sr.bytes(32);
    EXPECT_NE(a, b);
}
