/**
 * @file
 * Deterministic event-engine tests: stable (time, priority, seq)
 * dispatch order across seeds, seeded tie-break shuffling semantics,
 * cancel/reschedule behavior, clock advancement, event-driven DMA
 * lane concurrency across devices, periodic pump/poll actors, the
 * fleet-scale model's invariants, and the regression pin that an
 * engine-driven scenario run is byte-identical (trace + metrics) to
 * the pre-refactor lockstep path.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "salus/actors.hpp"
#include "salus/fleet_sim.hpp"
#include "salus/scenario.hpp"
#include "salus/testbed.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"

using namespace salus;
using namespace salus::core;

namespace {

/** Records every delivered (kind, a) pair with its dispatch time. */
struct RecordingActor final : sim::Actor
{
    struct Delivery
    {
        uint32_t kind;
        uint64_t a;
        sim::Nanos at;
    };
    std::vector<Delivery> log;

    void onEvent(sim::Engine &engine, const sim::Event &event) override
    {
        log.push_back({event.kind, event.a, engine.now()});
    }
};

std::vector<uint64_t>
dispatchOrder(sim::Engine::Config cfg)
{
    sim::VirtualClock clock;
    sim::Engine engine(clock, cfg);
    RecordingActor actor;
    uint32_t id = engine.addActor(actor, "recorder");
    // Ten events at the same instant and priority: FIFO mode must
    // dispatch them in submission order regardless of seed.
    for (uint64_t i = 0; i < 10; ++i)
        engine.post(100, sim::kPriorityDefault, id, 1, i);
    EXPECT_TRUE(engine.runUntilIdle());
    std::vector<uint64_t> order;
    for (const auto &d : actor.log)
        order.push_back(d.a);
    return order;
}

} // namespace

// ---- Ordering --------------------------------------------------------

TEST(Engine, SameInstantEventsDispatchInPrioritySeqOrder)
{
    sim::VirtualClock clock;
    sim::Engine engine(clock);
    RecordingActor actor;
    uint32_t id = engine.addActor(actor, "recorder");

    // Posted out of priority order at one instant; dispatch must sort
    // (priority, seq): control first, bulk last, FIFO within a tier.
    engine.post(50, sim::kPriorityBulk, id, 1, 0);
    engine.post(50, sim::kPriorityControl, id, 2, 1);
    engine.post(50, sim::kPriorityDefault, id, 3, 2);
    engine.post(50, sim::kPriorityControl, id, 4, 3);
    engine.post(10, sim::kPriorityBulk, id, 5, 4); // earlier time wins

    ASSERT_TRUE(engine.runUntilIdle());
    ASSERT_EQ(actor.log.size(), 5u);
    EXPECT_EQ(actor.log[0].kind, 5u); // t=10 beats every priority
    EXPECT_EQ(actor.log[1].kind, 2u); // control, seq order
    EXPECT_EQ(actor.log[2].kind, 4u);
    EXPECT_EQ(actor.log[3].kind, 3u); // default
    EXPECT_EQ(actor.log[4].kind, 1u); // bulk
    EXPECT_EQ(engine.now(), 50);
    EXPECT_EQ(engine.stats().dispatched, 5u);
}

TEST(Engine, FifoOrderIsSeedIndependentAcross32Seeds)
{
    std::vector<uint64_t> expect{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        sim::Engine::Config cfg;
        cfg.seed = seed;
        cfg.seededTieBreak = false;
        EXPECT_EQ(dispatchOrder(cfg), expect) << "seed " << seed;
    }
}

TEST(Engine, SeededTieBreakShufflesPerSeedButStaysStable)
{
    // Per seed: two runs produce the identical order (determinism).
    // Across 32 seeds: at least one order differs from FIFO (the
    // shuffle actually engages), while the delivered SET is intact.
    size_t shuffled = 0;
    std::vector<uint64_t> fifo{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        sim::Engine::Config cfg;
        cfg.seed = seed;
        cfg.seededTieBreak = true;
        std::vector<uint64_t> once = dispatchOrder(cfg);
        EXPECT_EQ(once, dispatchOrder(cfg)) << "seed " << seed;
        std::vector<uint64_t> sorted = once;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, fifo) << "seed " << seed;
        if (once != fifo)
            ++shuffled;
    }
    EXPECT_GT(shuffled, 0u);
}

// ---- Cancel / reschedule ---------------------------------------------

TEST(Engine, CancelPreventsDispatchAndReschedulingMovesDueTime)
{
    sim::VirtualClock clock;
    sim::Engine engine(clock);
    RecordingActor actor;
    uint32_t id = engine.addActor(actor, "recorder");

    sim::EventId cancelled =
        engine.post(100, sim::kPriorityDefault, id, 1, 1);
    sim::EventId moved = engine.post(100, sim::kPriorityDefault, id, 2, 2);
    engine.post(150, sim::kPriorityDefault, id, 3, 3);

    EXPECT_TRUE(engine.cancel(cancelled));
    EXPECT_FALSE(engine.cancel(cancelled)); // second cancel is a no-op
    EXPECT_TRUE(engine.reschedule(moved, 200));
    EXPECT_EQ(engine.pendingAt(moved), 200);
    EXPECT_FALSE(engine.reschedule(cancelled, 300)); // dead id

    ASSERT_TRUE(engine.runUntilIdle());
    ASSERT_EQ(actor.log.size(), 2u);
    EXPECT_EQ(actor.log[0].kind, 3u);
    EXPECT_EQ(actor.log[0].at, 150);
    EXPECT_EQ(actor.log[1].kind, 2u); // dispatched at its NEW time
    EXPECT_EQ(actor.log[1].at, 200);
    EXPECT_EQ(engine.stats().cancelled, 1u);
}

TEST(Engine, RescheduleToThePastClampsToNow)
{
    sim::VirtualClock clock;
    sim::Engine engine(clock);
    RecordingActor actor;
    uint32_t id = engine.addActor(actor, "recorder");
    clock.advance(500);
    sim::EventId ev = engine.post(600, sim::kPriorityDefault, id, 1);
    EXPECT_TRUE(engine.reschedule(ev, 100)); // past: clamps to now
    EXPECT_EQ(engine.pendingAt(ev), 500);
    ASSERT_TRUE(engine.runUntilIdle());
    EXPECT_EQ(actor.log.at(0).at, 500);
}

TEST(Engine, PostToUnknownActorThrows)
{
    sim::VirtualClock clock;
    sim::Engine engine(clock);
    EXPECT_THROW(engine.post(0, sim::kPriorityDefault, 0, 1),
                 std::out_of_range);
    EXPECT_THROW(engine.post(0, sim::kPriorityDefault, 7, 1),
                 std::out_of_range);
}

TEST(Engine, RunUntilStopsAtDeadlineAndAdvancesClock)
{
    sim::VirtualClock clock;
    sim::Engine engine(clock);
    RecordingActor actor;
    uint32_t id = engine.addActor(actor, "recorder");
    engine.post(100, sim::kPriorityDefault, id, 1);
    engine.post(300, sim::kPriorityDefault, id, 2);
    EXPECT_EQ(engine.runUntil(200), 1u);
    EXPECT_EQ(engine.now(), 200);
    EXPECT_EQ(engine.pending(), 1u);
    EXPECT_TRUE(engine.runUntilIdle());
    EXPECT_EQ(engine.now(), 300);
}

// ---- Periodic actors -------------------------------------------------

TEST(Actors, PumpAndPollActorsRunTheirPeriodicSchedules)
{
    sim::VirtualClock clock;
    sim::Engine engine(clock);
    size_t pumped = 0;
    SchedulerPumpActor pump([&pumped] {
        ++pumped;
        return size_t(3);
    });
    pump.attach(engine, "pump");
    pump.startPeriodic(engine, 1000, 5);
    ASSERT_TRUE(engine.runUntilIdle());
    EXPECT_EQ(pumped, 5u);
    EXPECT_EQ(pump.sweeps(), 5u);
    EXPECT_EQ(pump.opsCompleted(), 15u);
    EXPECT_EQ(engine.now(), 5000);
}

// ---- Event-driven DMA lanes ------------------------------------------

TEST(Actors, DmaLanesOverlapAcrossDevices)
{
    // Two independent lanes each moving the same bulk job: virtual
    // completion must overlap (fleet end ≈ one lane's span, not two),
    // which the lockstep wire model cannot do.
    sim::CostModel cost;
    sim::VirtualClock clock;
    obs::TraceRecorder recorder(clock);
    obs::MetricsRegistry metricsReg;
    obs::ObsScope scope(&recorder, &metricsReg);
    sim::Engine engine(clock);

    DmaLaneActor laneA(cost, "laneA");
    DmaLaneActor laneB(cost, "laneB");
    laneA.attach(engine);
    laneB.attach(engine);

    DmaLaneActor::Job job;
    job.bytes = 1024 * 1024;
    job.chunkBytes = 64 * 1024;
    job.window = 8;
    laneA.submit(engine, job);
    laneB.submit(engine, job);
    ASSERT_TRUE(engine.runUntilIdle());
    laneA.flushSpans();
    laneB.flushSpans();

    const DmaLaneActor::LaneStats &a = laneA.stats();
    const DmaLaneActor::LaneStats &b = laneB.stats();
    EXPECT_EQ(a.bytes, job.bytes);
    EXPECT_EQ(a.descriptors, 16u);
    EXPECT_GT(a.busyNanos, 0);
    EXPECT_EQ(a.busyNanos, b.busyNanos); // identical jobs, same model
    // Concurrency: the fleet finished in one lane's time, not two.
    EXPECT_EQ(clock.now(), a.idleUntil);
    EXPECT_LT(clock.now(), a.busyNanos + b.busyNanos);
    // Busy accounting identity: lane time = exposed crypto + transport,
    // and the coalesced trace spans cover it exactly.
    EXPECT_EQ(a.busyNanos, a.cryptoNanos + a.transportNanos);
    EXPECT_EQ(recorder.namedTotal("laneA"), a.busyNanos);
    EXPECT_EQ(recorder.namedTotal("laneB"), b.busyNanos);
    // Windowed overlap hid some keystream precompute.
    EXPECT_GT(a.hiddenCryptoNanos, 0);
}

TEST(Actors, DmaLaneQueuesBackToBackJobsFifo)
{
    sim::CostModel cost;
    sim::VirtualClock clock;
    sim::Engine engine(clock);
    DmaLaneActor lane(cost, "lane");
    lane.attach(engine);

    DmaLaneActor::Job job;
    job.bytes = 256 * 1024;
    lane.submit(engine, job);
    sim::Nanos firstEnd = lane.stats().idleUntil;
    lane.submit(engine, job); // queued behind the first
    EXPECT_GT(lane.stats().idleUntil, firstEnd);
    ASSERT_TRUE(engine.runUntilIdle());
    EXPECT_EQ(lane.stats().jobs, 2u);
    EXPECT_EQ(clock.now(), lane.stats().idleUntil);
}

// ---- Fleet-scale model -----------------------------------------------

TEST(FleetSim, SmokeRunSatisfiesItsInvariants)
{
    FleetSimConfig cfg;
    cfg.sessions = 64;
    cfg.devices = 8;
    FleetSimReport report = runFleetSim(cfg);
    for (const std::string &v : report.violations)
        ADD_FAILURE() << v;
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.sessionsCompleted, 64u);
    EXPECT_EQ(report.regBursts, 64u * 3);
    EXPECT_EQ(report.dmaBytes, 64ull * 64 * 1024);
    EXPECT_GT(report.eventsDispatched, 0u);
    // Exact accounting: span sums equal the cost-model totals.
    EXPECT_EQ(report.spanRegNanos, report.expectedRegNanos);
    EXPECT_EQ(report.spanDmaNanos, report.expectedDmaNanos);
}

TEST(FleetSim, SameSeedIsByteIdenticalDifferentSeedDiverges)
{
    FleetSimConfig cfg;
    cfg.sessions = 48;
    cfg.devices = 6;
    FleetSimReport a = runFleetSim(cfg);
    FleetSimReport b = runFleetSim(cfg);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.metricsText, b.metricsText);
    cfg.seed = 99; // think-time jitter shifts every busy period
    FleetSimReport c = runFleetSim(cfg);
    EXPECT_TRUE(c.ok);
    EXPECT_NE(a.traceJson, c.traceJson);
}

TEST(FleetSim, SeededTieBreakKeepsMetricsInvariant)
{
    // Shuffling same-instant dispatch order must not change WHAT the
    // fleet did — only the interleaving. Counters have to match the
    // FIFO run exactly (the determinism audit for hidden order
    // dependence between actors).
    FleetSimConfig cfg;
    cfg.sessions = 48;
    cfg.devices = 6;
    FleetSimReport fifo = runFleetSim(cfg);
    cfg.seededTieBreak = true;
    FleetSimReport shuffled = runFleetSim(cfg);
    EXPECT_TRUE(shuffled.ok);
    EXPECT_EQ(fifo.sessionsCompleted, shuffled.sessionsCompleted);
    EXPECT_EQ(fifo.regBursts, shuffled.regBursts);
    EXPECT_EQ(fifo.dmaBytes, shuffled.dmaBytes);
    EXPECT_EQ(fifo.metricsText, shuffled.metricsText);
}

// ---- Lockstep vs engine regression pin -------------------------------

namespace {

const char *const kMiniScenario = R"(
[scenario]
name = engine-parity
seed = 11
devices = 2
sweeps = 12
poll_every = 3

[broker]
max_total_queued_ops = 256
shed_low_water = 128
max_total_sessions = 4

[tenant alpha]
weight = 2
max_sessions = 2
max_queued_ops = 64
pattern = flood
ops_per_sweep = 8

[tenant beta]
weight = 1
max_sessions = 1
max_queued_ops = 32
pattern = burst
ops_per_sweep = 6
burst_on = 2
burst_off = 2

[action]
kind = dma
at_sweep = 4
bytes = 65536
window = 4

[expect]
completed_min = 50
failovers_max = 0
)";

} // namespace

TEST(ScenarioEngine, EngineRunIsTraceIdenticalToLockstep)
{
    Scenario sc = parseScenario(kMiniScenario);
    ScenarioOutcome lockstep = runScenario(sc);
    ScenarioOutcome engine = runScenarioOnEngine(sc);

    ASSERT_TRUE(lockstep.passed())
        << (lockstep.violations.empty() ? "deploy failed"
                                        : lockstep.violations[0]);
    ASSERT_TRUE(engine.passed())
        << (engine.violations.empty() ? "deploy failed"
                                      : engine.violations[0]);
    // The engine port replays the exact lockstep call order (FIFO
    // same-instant dispatch), so the artifacts must be IDENTICAL —
    // any divergence means the port changed semantics.
    EXPECT_EQ(lockstep.traceJson, engine.traceJson);
    EXPECT_EQ(lockstep.metricsText, engine.metricsText);
    EXPECT_EQ(lockstep.completed, engine.completed);
    EXPECT_EQ(lockstep.failovers, engine.failovers);
    EXPECT_EQ(lockstep.dmaBytes, engine.dmaBytes);
    EXPECT_EQ(lockstep.clockEnd, engine.clockEnd);
}

TEST(ScenarioEngine, EngineRunsAreSameSeedDeterministic)
{
    Scenario sc = parseScenario(kMiniScenario);
    ScenarioOutcome a = runScenarioOnEngine(sc);
    ScenarioOutcome b = runScenarioOnEngine(sc);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.metricsText, b.metricsText);
}
