/**
 * @file
 * Extended known-answer tests. Constants here were generated with an
 * independent reference implementation (python `cryptography` /
 * hashlib / the SipHash reference algorithm) so the in-tree crypto is
 * cross-checked against a second codebase, not just against itself.
 * Sources: NIST GCM spec test cases 3-4, SP 800-38A F.5.5,
 * RFC 4231 case 2 (SHA-512), RFC 8032 tests 1-2, SipHash paper
 * reference vectors.
 */

#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/hmac.hpp"
#include "crypto/siphash.hpp"

using namespace salus;
using namespace salus::crypto;

TEST(KatExtended, GcmNistTestCase3)
{
    AesGcm gcm(hexDecode("feffe9928665731c6d6a8f9467308308"));
    Bytes iv = hexDecode("cafebabefacedbaddecaf888");
    Bytes pt = hexDecode(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
    GcmSealed sealed = gcm.seal(iv, ByteView(), pt);
    EXPECT_EQ(hexEncode(sealed.ciphertext),
              "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e23"
              "29aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac97"
              "3d58e091473f5985");
    EXPECT_EQ(hexEncode(sealed.tag), "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(KatExtended, GcmNistTestCase4WithAad)
{
    AesGcm gcm(hexDecode("feffe9928665731c6d6a8f9467308308"));
    Bytes iv = hexDecode("cafebabefacedbaddecaf888");
    Bytes pt = hexDecode(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
    Bytes aad = hexDecode("feedfacedeadbeeffeedfacedeadbeefabaddad2");
    GcmSealed sealed = gcm.seal(iv, aad, pt);
    EXPECT_EQ(hexEncode(sealed.ciphertext),
              "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e23"
              "29aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac97"
              "3d58e091");
    EXPECT_EQ(hexEncode(sealed.tag), "5bc94fbc3221a5db94fae95ae7121a47");

    auto opened = gcm.open(iv, aad, sealed.ciphertext, sealed.tag);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, pt);
}

TEST(KatExtended, AesCtr256Sp80038aF55)
{
    Bytes key = hexDecode("603deb1015ca71be2b73aef0857d7781"
                          "1f352c073b6108d72d9810a30914dff4");
    Bytes ctr = hexDecode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    Bytes pt = hexDecode("6bc1bee22e409f96e93d7e117393172a"
                         "ae2d8a571e03ac9c9eb76fac45af8e51");
    EXPECT_EQ(hexEncode(aesCtrCrypt(key, ctr, pt)),
              "601ec313775789a5b7a7f504bbf3d228"
              "f443e3ca4d62b59aca84e990cacaf5c5");
}

TEST(KatExtended, HmacSha512Rfc4231Case2)
{
    EXPECT_EQ(hexEncode(hmacSha512(
                  bytesFromString("Jefe"),
                  bytesFromString("what do ya want for nothing?"))),
              "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7"
              "ea2505549758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b"
              "636e070a38bce737");
}

TEST(KatExtended, Ed25519Rfc8032Test1Signature)
{
    Bytes seed = hexDecode("9d61b19deffd5a60ba844af492ec2cc4"
                           "4449c5697b326919703bac031cae7f60");
    Bytes sig = ed25519Sign(seed, ByteView());
    EXPECT_EQ(hexEncode(sig),
              "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065"
              "224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24"
              "655141438e7a100b");
}

TEST(KatExtended, Ed25519Rfc8032Test2Signature)
{
    Bytes seed = hexDecode("4ccd089b28ff96da9db6c346ec114e0f"
                           "5b8a319f35aba624da8cf6ed4fb8a6fb");
    Bytes msg = {0x72};
    Bytes sig = ed25519Sign(seed, msg);
    EXPECT_EQ(hexEncode(sig),
              "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223"
              "ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aee"
              "b00d291612bb0c00");
    EXPECT_TRUE(ed25519Verify(ed25519PublicKey(seed), msg, sig));
}

TEST(KatExtended, SipHashReferenceVectorsMore)
{
    Bytes key(16);
    for (int i = 0; i < 16; ++i)
        key[i] = uint8_t(i);
    auto input = [](size_t n) {
        Bytes in(n);
        for (size_t i = 0; i < n; ++i)
            in[i] = uint8_t(i);
        return in;
    };
    EXPECT_EQ(sipHash24(key, input(7)), 0xab0200f58b01d137ULL);
    EXPECT_EQ(sipHash24(key, input(8)), 0x93f5f5799a932462ULL);
    EXPECT_EQ(sipHash24(key, input(32)), 0x7127512f72f27cceULL);
    EXPECT_EQ(sipHash24(key, input(63)), 0x958a324ceb064572ULL);
}
