/**
 * @file
 * Secure DMA data-plane tests: descriptor wire-format round trips and
 * rejection properties, fabric-side window semantics (replay, reorder,
 * sync, cross-session isolation) driven at the register level, the
 * host sliding-window engine end to end through the testbed (fault
 * recovery, determinism, scheduler coexistence), and a crash sweep
 * over the DMA journal steps.
 */

#include <gtest/gtest.h>

#include "bitstream/compiler.hpp"
#include "common/serde.hpp"
#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "crypto/random.hpp"
#include "fpga/device.hpp"
#include "obs/trace.hpp"
#include "salus/cl_builder.hpp"
#include "salus/dma_channel.hpp"
#include "salus/secrets.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

Bytes
pattern(size_t n, uint64_t salt = 0)
{
    Bytes out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = uint8_t(salt * 131 + i * 7 + 3);
    return out;
}

struct DmaKeys
{
    Bytes aes;
    Bytes mac;
};

DmaKeys
testKeys(uint64_t seed)
{
    crypto::CtrDrbg rng(seed);
    return {rng.bytes(16), rng.bytes(32)};
}

/** Builds a sealed write descriptor scattering `plain` to `addr`. */
Bytes
sealWrite(const DmaKeys &k, uint32_t sessionId, uint64_t seq, bool sync,
          uint64_t addr, ByteView plain)
{
    dmachan::DmaDescriptor d;
    d.read = false;
    d.sync = sync;
    d.sessionId = sessionId;
    d.seq = seq;
    d.ctrBase = seq * dmachan::kDmaCtrStride;
    d.sg.push_back({addr, uint32_t(plain.size())});
    d.payload.assign(plain.begin(), plain.end());
    dmachan::cryptDmaPayload(k.aes, /*read=*/false, d.ctrBase,
                             d.payload.data(), d.payload.size());
    return dmachan::encodeDescriptor(k.mac, d);
}

/** Builds a sealed read (gather) descriptor. */
Bytes
sealRead(const DmaKeys &k, uint32_t sessionId, uint64_t seq,
         uint64_t addr, uint32_t len, uint64_t respAddr)
{
    dmachan::DmaDescriptor d;
    d.read = true;
    d.sessionId = sessionId;
    d.seq = seq;
    d.ctrBase = seq * dmachan::kDmaCtrStride;
    d.respAddr = respAddr;
    d.sg.push_back({addr, len});
    return dmachan::encodeDescriptor(k.mac, d);
}

} // namespace

// ---- wire format ----------------------------------------------------

TEST(DmaDescriptor, WriteRoundTripPreservesEveryField)
{
    DmaKeys k = testKeys(21);
    Bytes plain = pattern(4096, 1);
    for (uint64_t seq : {uint64_t(0), uint64_t(7), uint64_t(1) << 32}) {
        dmachan::DmaDescriptor d;
        d.sync = seq == 0;
        d.sessionId = 3;
        d.seq = seq;
        d.ctrBase = seq * dmachan::kDmaCtrStride;
        d.sg = {{0x1000, 1024}, {0x9000, 3072}};
        d.payload = plain;
        dmachan::cryptDmaPayload(k.aes, false, d.ctrBase,
                                 d.payload.data(), d.payload.size());
        EXPECT_NE(d.payload, plain) << "payload not encrypted";

        Bytes encoded = dmachan::encodeDescriptor(k.mac, d);
        EXPECT_TRUE(dmachan::verifyDescriptorMac(k.mac, encoded));
        dmachan::DmaDescriptor back = dmachan::decodeDescriptor(encoded);
        EXPECT_EQ(back.read, d.read);
        EXPECT_EQ(back.sync, d.sync);
        EXPECT_EQ(back.sessionId, d.sessionId);
        EXPECT_EQ(back.seq, d.seq);
        EXPECT_EQ(back.ctrBase, d.ctrBase);
        ASSERT_EQ(back.sg.size(), d.sg.size());
        for (size_t i = 0; i < d.sg.size(); ++i) {
            EXPECT_EQ(back.sg[i].addr, d.sg[i].addr);
            EXPECT_EQ(back.sg[i].len, d.sg[i].len);
        }
        dmachan::cryptDmaPayload(k.aes, false, back.ctrBase,
                                 back.payload.data(),
                                 back.payload.size());
        EXPECT_EQ(back.payload, plain);
    }
}

TEST(DmaDescriptor, ReadRoundTripAndResponse)
{
    DmaKeys k = testKeys(22);
    Bytes encoded = sealRead(k, 2, 5, 0x4000, 512, 0x340000);
    dmachan::DmaDescriptor back = dmachan::decodeDescriptor(encoded);
    EXPECT_TRUE(back.read);
    EXPECT_EQ(back.respAddr, 0x340000u);
    EXPECT_TRUE(back.payload.empty());
    EXPECT_EQ(back.sgBytes(), 512u);

    Bytes plain = pattern(512, 2);
    Bytes blob = dmachan::sealReadResponse(k.aes, k.mac, 2, 5,
                                           back.ctrBase, plain);
    EXPECT_EQ(blob.size(), plain.size() + dmachan::kDmaRespOverhead);
    auto open = dmachan::openReadResponse(k.aes, k.mac, 2, 5,
                                          back.ctrBase, blob);
    ASSERT_TRUE(open.has_value());
    EXPECT_EQ(*open, plain);

    // Echoed-context mismatches and tampering are all fatal.
    EXPECT_FALSE(dmachan::openReadResponse(k.aes, k.mac, 3, 5,
                                           back.ctrBase, blob));
    EXPECT_FALSE(dmachan::openReadResponse(k.aes, k.mac, 2, 6,
                                           back.ctrBase, blob));
    Bytes flipped = blob;
    flipped[dmachan::kDmaRespHeaderBytes] ^= 0x80;
    EXPECT_FALSE(dmachan::openReadResponse(k.aes, k.mac, 2, 5,
                                           back.ctrBase, flipped));
}

TEST(DmaDescriptor, RejectsTruncationBitFlipsAndWrongKey)
{
    DmaKeys k = testKeys(23);
    Bytes plain = pattern(2048, 3);
    Bytes encoded = sealWrite(k, 1, 4, false, 0x2000, plain);

    for (size_t cut : {size_t(1), size_t(8), encoded.size() / 2}) {
        Bytes truncated(encoded.begin(),
                        encoded.end() - ptrdiff_t(cut));
        EXPECT_THROW(dmachan::decodeDescriptor(truncated), SerdeError)
            << "cut " << cut;
    }
    EXPECT_THROW(dmachan::decodeDescriptor(Bytes()), SerdeError);

    // A flip anywhere — header, sg list, payload, MAC — kills the MAC.
    for (size_t pos : {size_t(0), size_t(17), size_t(41),
                       dmachan::kDmaHeaderBytes + 13 + 100,
                       encoded.size() - 1}) {
        Bytes flipped = encoded;
        flipped[pos] ^= 0x01;
        EXPECT_FALSE(dmachan::verifyDescriptorMac(k.mac, flipped))
            << "pos " << pos;
    }

    DmaKeys other = testKeys(24);
    EXPECT_FALSE(dmachan::verifyDescriptorMac(other.mac, encoded));
    EXPECT_NE(dmachan::ackMac(k.mac, 1, 4),
              dmachan::ackMac(other.mac, 1, 4));
    EXPECT_NE(dmachan::ackMac(k.mac, 1, 4), dmachan::ackMac(k.mac, 2, 4));
    EXPECT_NE(dmachan::ackMac(k.mac, 1, 4), dmachan::ackMac(k.mac, 1, 5));
}

// ---- fabric-side window semantics -----------------------------------

namespace {

/** A loaded device with known injected secrets, driven at the SM
 *  register interface (no host enclave in the loop). */
struct FabricRig
{
    crypto::CtrDrbg rng{uint64_t(4242)};
    fpga::DeviceModelInfo model = fpga::testModel();
    fpga::FpgaDevice device{fpga::testModel(),
                            fpga::DeviceDna{0x5a5a5a5a5a5aULL}};
    ClSecrets secrets;
    fpga::IpBehavior *sm = nullptr;
    DmaKeys keys;

    FabricRig()
    {
        fpga::ensureBuiltinIps();
        SmLogic::registerIp();
        Bytes deviceKey = rng.bytes(32);
        device.fuseKey(deviceKey);

        ClDesign design = buildClDesign("cl", loopbackAccel());
        bitstream::Compiler compiler(model.name);
        auto compiled =
            compiler.compile(design.netlist, model.partitions[0]);
        secrets = ClSecrets::generate(rng);
        bitstream::Manipulator::patchCell(
            compiled.file, compiled.logicLocations,
            design.layout.keyAttestPath, secrets.keyAttest);
        bitstream::Manipulator::patchCell(
            compiled.file, compiled.logicLocations,
            design.layout.keySessionPath, secrets.keySession);
        bitstream::Manipulator::patchCell(
            compiled.file, compiled.logicLocations,
            design.layout.ctrSessionPath, secrets.ctrBytes());
        bitstream::EncryptedHeader header{model.name, 0};
        Bytes blob = bitstream::encryptBitstream(compiled.file,
                                                 deviceKey, header, rng);
        EXPECT_EQ(device.loadEncryptedPartial(blob),
                  fpga::LoadStatus::Ok);
        sm = device.design(0)->behaviorAt(design.layout.smCellPath);
        EXPECT_NE(sm, nullptr);
        keys = {sliceBytes(secrets.keySession, 0, 16),
                sliceBytes(secrets.keySession, 16, 32)};
    }

    /** Stages `encoded` in DRAM and rings the doorbell. */
    uint64_t
    doorbell(const Bytes &encoded, uint64_t staging = 0x200000)
    {
        device.dram().write(staging, encoded);
        sm->writeRegister(kSmRegIn0, staging);
        sm->writeRegister(kSmRegIn1, encoded.size());
        sm->writeRegister(kSmRegCmd, kSmCmdDmaDoorbell);
        return sm->readRegister(kSmRegStatus);
    }

    uint64_t
    ack(uint32_t slot = 0)
    {
        sm->writeRegister(kSmRegIn0, slot);
        sm->writeRegister(kSmRegCmd, kSmCmdDmaAck);
        EXPECT_EQ(sm->readRegister(kSmRegStatus), kSmStatusOk);
        uint64_t seq = sm->readRegister(kSmRegOut0);
        EXPECT_EQ(sm->readRegister(kSmRegOut1),
                  dmachan::ackMac(keys.mac, slot, seq));
        return seq;
    }

    uint64_t stat(uint32_t reg) { return sm->readRegister(reg); }
};

} // namespace

TEST(DmaFabric, AppliesWriteAndAdvancesCumulativeAck)
{
    FabricRig rig;
    Bytes plain = pattern(4096, 4);
    EXPECT_EQ(rig.doorbell(sealWrite(rig.keys, 0, 0, true, 0x1000,
                                     plain)),
              kSmStatusOk);
    EXPECT_EQ(rig.ack(), 1u);
    EXPECT_EQ(rig.device.dram().read(0x1000, plain.size()), plain);
    EXPECT_EQ(rig.stat(kSmRegStatDmaOk), 1u);
    EXPECT_EQ(rig.stat(kSmRegStatDmaBytes), plain.size());
}

TEST(DmaFabric, RejectsReplayDuplicateAndBadCtrBinding)
{
    FabricRig rig;
    Bytes first = sealWrite(rig.keys, 0, 0, true, 0x1000,
                            pattern(256, 5));
    Bytes second = sealWrite(rig.keys, 0, 1, false, 0x1100,
                             pattern(256, 6));
    EXPECT_EQ(rig.doorbell(first), kSmStatusOk);
    EXPECT_EQ(rig.doorbell(second), kSmStatusOk);
    EXPECT_EQ(rig.ack(), 2u);

    // Replaying either applied descriptor — identical bytes, valid
    // MAC — is dead on arrival and never rewinds the ack.
    EXPECT_EQ(rig.doorbell(first), kSmStatusRejected);
    EXPECT_EQ(rig.doorbell(second), kSmStatusRejected);
    EXPECT_EQ(rig.ack(), 2u);

    // A MAC-valid descriptor whose ctrBase is not seq * stride is
    // rejected before it can touch memory (keystream pinning).
    dmachan::DmaDescriptor d;
    d.sessionId = 0;
    d.seq = 2;
    d.ctrBase = 7; // not 2 * kDmaCtrStride
    d.sg.push_back({0x1200, 16});
    d.payload = pattern(16, 7);
    Bytes bad = dmachan::encodeDescriptor(rig.keys.mac, d);
    EXPECT_EQ(rig.doorbell(bad), kSmStatusRejected);
    EXPECT_EQ(rig.ack(), 2u);
    EXPECT_EQ(rig.stat(kSmRegStatDmaRejected), 3u);
}

TEST(DmaFabric, RejectsForgedCrossSessionAndOutOfWindow)
{
    FabricRig rig;
    // Sealed under the wrong keys: MAC check fails closed.
    DmaKeys wrong = testKeys(31);
    EXPECT_EQ(rig.doorbell(sealWrite(wrong, 0, 0, true, 0x1000,
                                     pattern(64, 8))),
              kSmStatusRejected);
    // Unopened session slot.
    EXPECT_EQ(rig.doorbell(sealWrite(rig.keys, 3, 0, true, 0x1000,
                                     pattern(64, 9))),
              kSmStatusRejected);
    // Bit flip in transit.
    Bytes flipped = sealWrite(rig.keys, 0, 0, true, 0x1000,
                              pattern(64, 10));
    flipped[flipped.size() / 2] ^= 0x40;
    EXPECT_EQ(rig.doorbell(flipped), kSmStatusRejected);
    // Beyond the reorder window: seq too far ahead of expected.
    EXPECT_EQ(rig.doorbell(sealWrite(rig.keys, 0,
                                     dmachan::kDmaMaxWindow, false,
                                     0x1000, pattern(64, 11))),
              kSmStatusRejected);
    // Scatter outside DRAM.
    EXPECT_EQ(rig.doorbell(sealWrite(rig.keys, 0, 0, true,
                                     rig.device.dram().size() - 8,
                                     pattern(64, 12))),
              kSmStatusRejected);
    EXPECT_EQ(rig.stat(kSmRegStatDmaRejected), 5u);
    EXPECT_EQ(rig.stat(kSmRegStatDmaOk), 0u);
    EXPECT_EQ(rig.ack(), 0u);
}

TEST(DmaFabric, BuffersOutOfOrderAndAppliesInOrder)
{
    FabricRig rig;
    Bytes p0 = pattern(512, 13);
    Bytes p1 = pattern(512, 14);
    // seq 1 lands first: buffered (doorbell ok), nothing applied yet.
    EXPECT_EQ(rig.doorbell(sealWrite(rig.keys, 0, 1, false, 0x1200,
                                     p1)),
              kSmStatusOk);
    EXPECT_EQ(rig.ack(), 0u);
    EXPECT_EQ(rig.stat(kSmRegStatDmaBytes), 0u);
    // seq 0 arrives: both apply, in order.
    EXPECT_EQ(rig.doorbell(sealWrite(rig.keys, 0, 0, false, 0x1000,
                                     p0)),
              kSmStatusOk);
    EXPECT_EQ(rig.ack(), 2u);
    EXPECT_EQ(rig.device.dram().read(0x1000, p0.size()), p0);
    EXPECT_EQ(rig.device.dram().read(0x1200, p1.size()), p1);
}

TEST(DmaFabric, SyncOnlyJumpsForward)
{
    FabricRig rig;
    // Forward jump to seq 5 (crash-recovery resync).
    EXPECT_EQ(rig.doorbell(sealWrite(rig.keys, 0, 5, true, 0x1000,
                                     pattern(64, 15))),
              kSmStatusOk);
    EXPECT_EQ(rig.ack(), 6u);
    // A replayed (older) sync cannot rewind the window.
    EXPECT_EQ(rig.doorbell(sealWrite(rig.keys, 0, 2, true, 0x1000,
                                     pattern(64, 16))),
              kSmStatusRejected);
    EXPECT_EQ(rig.ack(), 6u);
}

TEST(DmaFabric, ReadGatherSealsVerifiableResponse)
{
    FabricRig rig;
    Bytes plain = pattern(768, 17);
    rig.device.dram().write(0x3000, plain);
    EXPECT_EQ(rig.doorbell(sealRead(rig.keys, 0, 0, 0x3000,
                                    uint32_t(plain.size()), 0x340000)),
              kSmStatusOk);
    EXPECT_EQ(rig.ack(), 1u);
    Bytes blob = rig.device.dram().read(
        0x340000, plain.size() + dmachan::kDmaRespOverhead);
    auto open = dmachan::openReadResponse(rig.keys.aes, rig.keys.mac, 0,
                                          0, 0, blob);
    ASSERT_TRUE(open.has_value());
    EXPECT_EQ(*open, plain);
    // The sealed blob never exposes the plaintext on the bus.
    EXPECT_TRUE(std::search(blob.begin(), blob.end(), plain.begin(),
                            plain.end()) == blob.end());
}

// ---- host engine end to end -----------------------------------------

TEST(DmaEndToEnd, WriteLandsPlaintextAndChargesTheClock)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    Bytes data = pattern(200 * 1000, 18);
    sim::Nanos before = tb.clock().now();
    SmEnclaveApp::DmaOptions opts;
    opts.windowSize = 4;
    dmachan::DmaTransferReport rep =
        tb.smApp().dmaWrite(0, 0x8000, data, opts);
    ASSERT_EQ(rep.status, 0);
    EXPECT_EQ(rep.bytes, data.size());
    EXPECT_EQ(rep.descriptors, 4u); // ceil(200000 / 64 KiB)
    EXPECT_EQ(rep.retransmits, 0u);
    EXPECT_GE(rep.maxInFlight, 2u);
    EXPECT_LE(rep.maxInFlight, 4u);
    EXPECT_EQ(tb.shell().dmaPostedRead(0x8000, data.size()), data);
    // The engine owns all time attribution: the clock advanced by
    // exactly the exposed crypto plus transport it reported.
    EXPECT_EQ(tb.clock().now() - before,
              rep.cryptoNanos + rep.transportNanos);
    EXPECT_GT(rep.hiddenCryptoNanos, 0);
}

TEST(DmaEndToEnd, ScatterGatherWriteAndReadBack)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    Bytes data = pattern(24 * 1024, 19);
    std::vector<dmachan::DmaSgEntry> sg = {{0x4000, 8 * 1024},
                                           {0x10000, 16 * 1024}};
    ASSERT_EQ(tb.smApp().dmaWriteSg(0, sg, data).status, 0);
    EXPECT_EQ(tb.shell().dmaPostedRead(0x4000, 8 * 1024),
              sliceBytes(data, 0, 8 * 1024));
    EXPECT_EQ(tb.shell().dmaPostedRead(0x10000, 16 * 1024),
              sliceBytes(data, 8 * 1024, 16 * 1024));

    Bytes out;
    ASSERT_EQ(tb.smApp().dmaRead(0, 0x4000, 8 * 1024, out).status, 0);
    EXPECT_EQ(out, sliceBytes(data, 0, 8 * 1024));
}

TEST(DmaEndToEnd, RecoversFromDropReorderAndCorruption)
{
    TestbedConfig cfg;
    cfg.rngSeed = 77;
    cfg.faultPlan.seed = 77;
    cfg.faultPlan.add(sim::FaultRule::dropDma(0.2));
    cfg.faultPlan.add(sim::FaultRule::reorderDma(0.2));
    cfg.faultPlan.add(sim::FaultRule::corruptDma(0.1));
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    Bytes data = pattern(256 * 1024, 20);
    SmEnclaveApp::DmaOptions opts;
    opts.windowSize = 8;
    opts.descriptorBytes = 16 * 1024;
    dmachan::DmaTransferReport rep =
        tb.smApp().dmaWrite(0, 0x8000, data, opts);
    ASSERT_EQ(rep.status, 0);
    EXPECT_GT(rep.retransmits, 0u) << "storm never fired";
    EXPECT_EQ(tb.shell().dmaPostedRead(0x8000, data.size()), data);
}

TEST(DmaEndToEnd, FailsClosedWhenEveryDescriptorIsCorrupted)
{
    TestbedConfig cfg;
    cfg.faultPlan.add(sim::FaultRule::corruptDma(1.0));
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    Bytes data = pattern(8 * 1024, 21);
    dmachan::DmaTransferReport rep =
        tb.smApp().dmaWrite(0, 0x8000, data);
    EXPECT_EQ(rep.status, 0xf8); // retransmits exhausted
    // Fail closed: not one corrupted payload byte reached memory.
    EXPECT_EQ(tb.shell().dmaPostedRead(0x8000, data.size()),
              Bytes(data.size(), 0));
}

TEST(DmaEndToEnd, PerSessionSequencesAreIsolated)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    uint32_t slot = tb.addUserSession();
    ASSERT_TRUE(tb.userApp(slot).attachToPlatform());

    Bytes a = pattern(32 * 1024, 22);
    Bytes b = pattern(32 * 1024, 23);
    ASSERT_EQ(tb.smApp().dmaWrite(0, 0x8000, a).status, 0);
    ASSERT_EQ(tb.smApp().dmaWrite(slot, 0x20000, b).status, 0);
    EXPECT_EQ(tb.shell().dmaPostedRead(0x8000, a.size()), a);
    EXPECT_EQ(tb.shell().dmaPostedRead(0x20000, b.size()), b);
    // Rejecting bad slots is typed, not an exception.
    EXPECT_EQ(tb.smApp().dmaWrite(99, 0x8000, a).status, 0xfd);
}

TEST(DmaEndToEnd, SameSeedRunsAreByteIdentical)
{
    auto run = [](std::string &traceJson) {
        TestbedConfig cfg;
        cfg.rngSeed = 404;
        cfg.faultPlan.seed = 404;
        cfg.faultPlan.add(sim::FaultRule::dropDma(0.15));
        cfg.faultPlan.add(sim::FaultRule::reorderDma(0.15));
        Testbed tb(cfg);
        obs::TraceRecorder recorder(tb.clock());
        obs::MetricsRegistry metrics;
        dmachan::DmaTransferReport rep;
        {
            obs::ObsScope scope(&recorder, &metrics);
            tb.installCl(loopbackAccel());
            if (!tb.runDeployment().ok)
                throw SalusError("deployment failed");
            rep = tb.smApp().dmaWrite(0, 0x8000, pattern(128 * 1024, 24));
        }
        traceJson = recorder.chromeTraceJson() + metrics.renderText();
        return rep;
    };
    std::string traceA, traceB;
    dmachan::DmaTransferReport repA = run(traceA);
    dmachan::DmaTransferReport repB = run(traceB);
    ASSERT_EQ(repA.status, 0);
    EXPECT_EQ(repA.retransmits, repB.retransmits);
    EXPECT_EQ(repA.transportNanos, repB.transportNanos);
    EXPECT_EQ(traceA, traceB);
}

// ---- scheduler coexistence ------------------------------------------

TEST(DmaScheduler, BulkJobsRideTheSweepWithoutStarvingRegisterOps)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    BatchScheduler &sched = tb.scheduler();
    sched.addSession(0, 1);

    Bytes data = pattern(64 * 1024, 25);
    std::vector<uint8_t> dmaStatuses;
    for (int i = 0; i < 3; ++i) {
        BatchScheduler::DmaJob job;
        job.addr = 0x8000 + uint64_t(i) * 0x10000;
        job.data = data;
        job.done = [&](const dmachan::DmaTransferReport &rep) {
            dmaStatuses.push_back(rep.status);
        };
        ASSERT_EQ(sched.submitDma(0, std::move(job)),
                  BatchScheduler::Submit::Accepted);
    }
    int regDone = 0;
    regchan::RegOp op;
    op.isWrite = true;
    op.addr = 0x00;
    op.data = 42;
    ASSERT_EQ(sched.submit(0, op, [&](uint8_t st, uint64_t) {
        EXPECT_EQ(st, 0);
        ++regDone;
    }),
              BatchScheduler::Submit::Accepted);

    // One sweep: the register slice goes first, then exactly ONE DMA
    // job — bulk never monopolises a sweep.
    sched.pumpOnce();
    EXPECT_EQ(regDone, 1);
    EXPECT_EQ(dmaStatuses.size(), 1u);
    sched.drain();
    ASSERT_EQ(dmaStatuses.size(), 3u);
    for (uint8_t st : dmaStatuses)
        EXPECT_EQ(st, 0);
    EXPECT_EQ(sched.stats().dmaJobs, 3u);
    EXPECT_EQ(sched.stats().dmaBytes, 3 * data.size());
    EXPECT_EQ(tb.shell().dmaPostedRead(0x8000, data.size()), data);
    EXPECT_EQ(tb.shell().dmaPostedRead(0x28000, data.size()), data);
}

TEST(DmaScheduler, BoundedQueueRefusesWithBackpressure)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    BatchScheduler &sched = tb.scheduler();
    sched.addSession(0, 1);
    BatchScheduler::DmaJob job;
    job.addr = 0x8000;
    job.data = pattern(1024, 26);
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(sched.submitDma(0, job),
                  BatchScheduler::Submit::Accepted);
    EXPECT_EQ(sched.submitDma(0, job),
              BatchScheduler::Submit::Backpressure);
    EXPECT_EQ(sched.submitDma(42, job),
              BatchScheduler::Submit::UnknownSession);
    sched.drain();
    EXPECT_EQ(sched.stats().dmaJobs, 8u);
}

// ---- crash sweep over the DMA journal steps -------------------------

namespace {

/** Deploy + one journalled DMA transfer (seq-span reservation commits
 *  ride the same write-ahead journal as everything else). */
void
runDmaJournalSession(Testbed &tb)
{
    tb.installCl(loopbackAccel());
    if (!tb.runDeployment().ok)
        throw SalusError("deployment failed");
    if (tb.smApp().dmaWrite(0, 0x8000, pattern(96 * 1024, 27)).status !=
        0)
        throw SalusError("dma write failed");
}

int
dmaJournalWrites()
{
    static int n = [] {
        TestbedConfig cfg;
        cfg.rngSeed = 31;
        Testbed tb(cfg);
        runDmaJournalSession(tb);
        return int(tb.smApp().journalWrites());
    }();
    return n;
}

} // namespace

class DmaCrashSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(DmaCrashSweep, EveryJournalStepRecoversAndResyncsTheWindow)
{
    auto [step, afterPersist] = GetParam();
    ASSERT_GE(dmaJournalWrites(), 3)
        << "scenario no longer journals enough steps to sweep";
    if (step >= dmaJournalWrites())
        GTEST_SKIP() << "scenario only journals " << dmaJournalWrites()
                     << " steps";

    TestbedConfig cfg;
    cfg.rngSeed = 31;
    cfg.faultPlan.add(
        sim::FaultRule::smCrash(uint64_t(step), afterPersist));
    Testbed tb(cfg);

    bool crashed = false;
    try {
        runDmaJournalSession(tb);
    } catch (const SmCrashError &) {
        crashed = true;
    }
    ASSERT_TRUE(crashed) << "armed crash at step " << step
                         << " never fired";

    SmEnclaveApp::RecoveryReport rep = tb.crashAndRecoverSmApp();
    EXPECT_TRUE(rep.status == SmEnclaveApp::RecoveryStatus::Recovered ||
                rep.status == SmEnclaveApp::RecoveryStatus::NoJournal)
        << rep.detail;
    EXPECT_FALSE(tb.smApp().failedClosed());

    // The recovered instance resumes PAST its seq reservation and the
    // sync flag jumps the fabric forward — bulk transfers work again
    // end to end, whatever step the crash hit.
    ASSERT_TRUE(tb.runDeployment().ok);
    Bytes data = pattern(32 * 1024, 28);
    ASSERT_EQ(tb.smApp().dmaWrite(0, 0x8000, data).status, 0);
    EXPECT_EQ(tb.shell().dmaPostedRead(0x8000, data.size()), data);
}

INSTANTIATE_TEST_SUITE_P(
    AllJournalSteps, DmaCrashSweep,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>> &info) {
        return "step" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "_postStore" : "_preStore");
    });
