/**
 * @file
 * X25519 tests: RFC 7748 iterated vector plus Diffie-Hellman agreement
 * properties used by the enclave key exchanges.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/hex.hpp"
#include "crypto/random.hpp"
#include "crypto/x25519.hpp"

using namespace salus;
using namespace salus::crypto;

TEST(X25519, Rfc7748IteratedOnce)
{
    // k = u = 9, one iteration of k = X25519(k, u).
    uint8_t k[32] = {9};
    uint8_t u[32] = {9};
    uint8_t out[32];
    x25519(out, k, u);
    EXPECT_EQ(hexEncode(ByteView(out, 32)),
              "422c8e7a6227d7bca1350b3e2bb7279f"
              "7897b87bb6854b783c60e80311ae3079");
}

TEST(X25519, Rfc7748IteratedThousandTimes)
{
    uint8_t k[32] = {9};
    uint8_t u[32] = {9};
    for (int i = 0; i < 1000; ++i) {
        uint8_t out[32];
        x25519(out, k, u);
        std::memcpy(u, k, 32);
        std::memcpy(k, out, 32);
    }
    EXPECT_EQ(hexEncode(ByteView(k, 32)),
              "684cf59ba83309552800ef566f2f4d3c"
              "1c3887c49360e3875f2eb94d99532c51");
}

TEST(X25519, DiffieHellmanAgreement)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        CtrDrbg rng(seed);
        X25519KeyPair alice = x25519Generate(rng);
        X25519KeyPair bob = x25519Generate(rng);

        Bytes sharedA = x25519Shared(alice.privateKey, bob.publicKey);
        Bytes sharedB = x25519Shared(bob.privateKey, alice.publicKey);
        EXPECT_EQ(sharedA, sharedB) << "seed=" << seed;
        EXPECT_NE(sharedA, Bytes(32, 0));
    }
}

TEST(X25519, SessionKeysAgreeAndBindContext)
{
    CtrDrbg rng(99);
    X25519KeyPair a = x25519Generate(rng);
    X25519KeyPair b = x25519Generate(rng);

    Bytes kA = deriveSessionKey(a.privateKey, b.publicKey, "la-v1", 32);
    Bytes kB = deriveSessionKey(b.privateKey, a.publicKey, "la-v1", 32);
    EXPECT_EQ(kA, kB);
    EXPECT_EQ(kA.size(), 32u);

    Bytes kOther =
        deriveSessionKey(a.privateKey, b.publicKey, "la-v2", 32);
    EXPECT_NE(kOther, kA);
}

TEST(X25519, RejectsLowOrderPoint)
{
    CtrDrbg rng(5);
    X25519KeyPair a = x25519Generate(rng);
    Bytes zeroPoint(32, 0);
    EXPECT_THROW(x25519Shared(a.privateKey, zeroPoint), CryptoError);
}

TEST(X25519, RejectsBadKeySizes)
{
    EXPECT_THROW(x25519Shared(Bytes(31), Bytes(32)), CryptoError);
    EXPECT_THROW(x25519Shared(Bytes(32), Bytes(33)), CryptoError);
}

TEST(X25519, DistinctKeysFromDistinctSeeds)
{
    CtrDrbg r1(1), r2(2);
    X25519KeyPair a = x25519Generate(r1);
    X25519KeyPair b = x25519Generate(r2);
    EXPECT_NE(a.publicKey, b.publicKey);
}
