/**
 * @file
 * Observability-layer tests: span nesting and completion order,
 * histogram bucket-edge semantics, the Chrome trace_event export
 * (golden file), metrics text dump (golden), disabled-mode no-ops,
 * ObsScope install/restore nesting, and the same-seed ⇒ byte-identical
 * trace guarantee over a full testbed deployment.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"
#include "sim/clock.hpp"

using namespace salus;
using namespace salus::core;

// ---- Histogram bucket edges -----------------------------------------

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds)
{
    obs::Histogram h({10, 20, 40});
    ASSERT_EQ(h.counts.size(), 4u); // 3 bounds + overflow

    h.observe(0);  // <= 10
    h.observe(10); // == bound: lands IN that bucket
    h.observe(11); // just above: next bucket
    h.observe(20); // == bound
    h.observe(40); // == last bound
    h.observe(41); // above every bound: overflow
    h.observe(1u << 30);

    EXPECT_EQ(h.counts[0], 2u); // 0, 10
    EXPECT_EQ(h.counts[1], 2u); // 11, 20
    EXPECT_EQ(h.counts[2], 1u); // 40
    EXPECT_EQ(h.counts[3], 2u); // 41, 2^30
    EXPECT_EQ(h.total, 7u);
    EXPECT_EQ(h.sum, 0u + 10 + 11 + 20 + 40 + 41 + (1u << 30));
}

TEST(Metrics, HistogramBoundsAreSortedAndDeduped)
{
    obs::Histogram h({40, 10, 20, 10});
    ASSERT_EQ(h.bounds.size(), 3u);
    EXPECT_EQ(h.bounds[0], 10u);
    EXPECT_EQ(h.bounds[1], 20u);
    EXPECT_EQ(h.bounds[2], 40u);
    EXPECT_EQ(h.counts.size(), 4u);
}

TEST(Metrics, RegistryCountersAndAutoRegistration)
{
    obs::MetricsRegistry reg;
    EXPECT_EQ(reg.counter("never.touched"), 0u);

    reg.add("channel.ops");
    reg.add("channel.ops", 4);
    EXPECT_EQ(reg.counter("channel.ops"), 5u);

    // observe() auto-registers with the default power-of-two bounds.
    reg.observe("channel.batch_size", 8);
    const obs::Histogram *h = reg.findHistogram("channel.batch_size");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->bounds, obs::MetricsRegistry::defaultBounds());
    EXPECT_EQ(h->total, 1u);

    // Re-registering never changes the original bounds.
    obs::Histogram &again = reg.histogram("channel.batch_size", {1});
    EXPECT_EQ(again.bounds.size(),
              obs::MetricsRegistry::defaultBounds().size());
    EXPECT_EQ(reg.counterCount(), 1u);
    EXPECT_EQ(reg.histogramCount(), 1u);
}

TEST(Metrics, RenderTextGolden)
{
    obs::MetricsRegistry reg;
    reg.add("b.second", 2);
    reg.add("a.first", 7);
    reg.histogram("z.depth", {1, 4});
    reg.observe("z.depth", 1);
    reg.observe("z.depth", 3);
    reg.observe("z.depth", 9);

    const std::string expected = "# salus-metrics v1\n"
                                 "counter a.first 7\n"
                                 "counter b.second 2\n"
                                 "histogram z.depth count 3 sum 13\n"
                                 "  le 1 1\n"
                                 "  le 4 1\n"
                                 "  le +inf 1\n";
    EXPECT_EQ(reg.renderText(), expected);
}

// ---- Span nesting and ordering --------------------------------------

TEST(Trace, SpanNestingParentsAndCompletionOrder)
{
    sim::VirtualClock clock;
    obs::TraceRecorder rec(clock);

    uint32_t outer = rec.beginSpan(obs::Category::Boot, "outer");
    clock.advance(100);
    uint32_t inner = rec.beginSpan(obs::Category::Channel, "inner");
    clock.advance(50);
    rec.endSpan(inner);
    clock.advance(25);
    rec.endSpan(outer);

    ASSERT_EQ(rec.events().size(), 2u);
    ASSERT_EQ(rec.openSpans(), 0u);

    // Completion order: inner closes first (Chrome convention).
    const obs::SpanEvent &first = rec.events()[0];
    const obs::SpanEvent &second = rec.events()[1];
    EXPECT_EQ(first.name, "inner");
    EXPECT_EQ(first.parent, outer);
    EXPECT_EQ(first.begin, 100u);
    EXPECT_EQ(first.end, 150u);
    EXPECT_EQ(second.name, "outer");
    EXPECT_EQ(second.parent, 0u);
    EXPECT_EQ(second.begin, 0u);
    EXPECT_EQ(second.end, 175u);
    EXPECT_NE(first.id, second.id);
}

TEST(Trace, OutOfOrderEndUnwindsTheStack)
{
    sim::VirtualClock clock;
    obs::TraceRecorder rec(clock);

    uint32_t a = rec.beginSpan(obs::Category::Boot, "a");
    rec.beginSpan(obs::Category::Boot, "b");
    rec.beginSpan(obs::Category::Boot, "c");
    clock.advance(10);
    rec.endSpan(a); // closes c, b, a — stack stays consistent

    ASSERT_EQ(rec.events().size(), 3u);
    EXPECT_EQ(rec.openSpans(), 0u);
    EXPECT_EQ(rec.events()[0].name, "c");
    EXPECT_EQ(rec.events()[1].name, "b");
    EXPECT_EQ(rec.events()[2].name, "a");
    for (const obs::SpanEvent &ev : rec.events())
        EXPECT_EQ(ev.end, 10u);
}

TEST(Trace, ClockSlicesBecomeLeavesAndSumToPhaseTotals)
{
    sim::VirtualClock clock;
    obs::TraceRecorder rec(clock);
    obs::MetricsRegistry reg;
    obs::ObsScope scope(&rec, &reg);

    obs::Span span(obs::Category::Channel, "op");
    clock.spend("Phase A", 300);
    clock.spend("Phase B", 200);
    clock.spend("Phase A", 100);

    ASSERT_EQ(rec.events().size(), 3u); // three leaves, span still open
    for (const obs::SpanEvent &ev : rec.events()) {
        EXPECT_EQ(ev.cat, obs::Category::Clock);
        EXPECT_NE(ev.parent, 0u); // nested under the open span
    }
    EXPECT_EQ(rec.phaseTotal("Phase A"), clock.totalFor("Phase A"));
    EXPECT_EQ(rec.phaseTotal("Phase A"), 400u);
    EXPECT_EQ(rec.phaseTotal("Phase B"), 200u);
    EXPECT_EQ(rec.phaseTotal("Phase C"), 0u);
}

// ---- Chrome trace export (golden) -----------------------------------

TEST(Trace, ChromeTraceExportMatchesGolden)
{
    sim::VirtualClock clock;
    obs::TraceRecorder rec(clock);
    obs::MetricsRegistry reg;
    {
        obs::ObsScope scope(&rec, &reg);
        obs::Span outer(obs::Category::Boot, "outer"); // id 1
        clock.spend("Phase A", 1500);                  // leaf id 2
        obs::mark(obs::Category::Channel, "tick", 7);  // instant id 3
    }

    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":"
        "\"salus-obs\",\"clock\":\"virtual\",\"unit\":\"ns\"},"
        "\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"salus-sim\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"boot\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"attestation\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":3,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"bitstream\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":4,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"channel\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":5,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"scheduler\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":6,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"supervisor\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":7,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"shell\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":8,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"clock\"}},\n"
        "{\"ph\":\"X\",\"pid\":1,\"tid\":8,\"ts\":0.000,\"dur\":1.500,"
        "\"name\":\"Phase A\",\"cat\":\"clock\","
        "\"args\":{\"id\":2,\"parent\":1}},\n"
        "{\"ph\":\"i\",\"pid\":1,\"tid\":4,\"ts\":1.500,\"s\":\"t\","
        "\"name\":\"tick\",\"cat\":\"channel\","
        "\"args\":{\"id\":3,\"parent\":1,\"v\":7}},\n"
        "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.000,\"dur\":1.500,"
        "\"name\":\"outer\",\"cat\":\"boot\","
        "\"args\":{\"id\":1,\"parent\":0}}\n"
        "]}\n";
    EXPECT_EQ(rec.chromeTraceJson(), expected);
}

TEST(Trace, JsonEscapesHostileNames)
{
    sim::VirtualClock clock;
    obs::TraceRecorder rec(clock);
    rec.instant(obs::Category::Shell, "quote\"back\\slash\n");
    std::string json = rec.chromeTraceJson();
    EXPECT_NE(json.find("quote\\\"back\\\\slash\\u000a"),
              std::string::npos);
    // The raw control byte never reaches the output unescaped.
    EXPECT_EQ(json.find("slash\n"), std::string::npos);
}

// ---- Disabled-mode and scope nesting --------------------------------

TEST(Trace, HelpersAreNoOpsWhenDisabled)
{
    ASSERT_EQ(obs::tracer(), nullptr);
    ASSERT_EQ(obs::metrics(), nullptr);
    {
        obs::Span span(obs::Category::Boot, "ignored");
        obs::mark(obs::Category::Boot, "ignored");
        obs::count("ignored.counter");
        obs::observe("ignored.histogram", 3);
    }
    EXPECT_EQ(obs::tracer(), nullptr);
}

TEST(Trace, ObsScopeInstallsNestsAndRestores)
{
    sim::VirtualClock clock;
    obs::TraceRecorder outer(clock);
    obs::TraceRecorder inner(clock);
    obs::MetricsRegistry regOuter;
    obs::MetricsRegistry regInner;

    ASSERT_EQ(obs::tracer(), nullptr);
    {
        obs::ObsScope a(&outer, &regOuter);
        EXPECT_EQ(obs::tracer(), &outer);
        EXPECT_EQ(obs::metrics(), &regOuter);
        EXPECT_EQ(clock.spendObserver(), &outer);
        {
            obs::ObsScope b(&inner, &regInner);
            EXPECT_EQ(obs::tracer(), &inner);
            EXPECT_EQ(clock.spendObserver(), &inner);
            clock.spend("P", 10);
        }
        EXPECT_EQ(obs::tracer(), &outer);
        EXPECT_EQ(clock.spendObserver(), &outer);
        clock.spend("P", 10);
    }
    EXPECT_EQ(obs::tracer(), nullptr);
    EXPECT_EQ(clock.spendObserver(), nullptr);
    // Each recorder saw exactly the slices spent under its scope.
    EXPECT_EQ(inner.events().size(), 1u);
    EXPECT_EQ(outer.events().size(), 1u);
}

// ---- Same seed ⇒ byte-identical trace -------------------------------

namespace {

struct TracedBoot
{
    bool ok = false;
    std::string traceJson;
    std::string metricsText;
};

TracedBoot
runTracedBoot(uint64_t seed)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    TracedBoot out;
    TestbedConfig cfg;
    cfg.rngSeed = seed;
    Testbed tb(cfg);
    obs::TraceRecorder rec(tb.clock());
    obs::MetricsRegistry reg;
    {
        obs::ObsScope scope(&rec, &reg);
        netlist::Cell accel;
        accel.path = "engine";
        accel.kind = netlist::CellKind::Logic;
        accel.behaviorId = fpga::kIpLoopback;
        accel.resources = {100, 100, 0, 0};
        tb.installCl(accel);
        out.ok = tb.runDeployment().ok;
        if (out.ok) {
            out.ok = tb.userApp().secureWrite(0x00, 5) &&
                     tb.userApp().secureRead(0x00) == 5u;
        }
    }
    out.traceJson = rec.chromeTraceJson();
    out.metricsText = reg.renderText();
    return out;
}

} // namespace

TEST(Trace, SameSeedDeploymentTraceIsByteIdentical)
{
    TracedBoot a = runTracedBoot(21);
    TracedBoot b = runTracedBoot(21);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    ASSERT_GT(a.traceJson.size(), 1000u);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.metricsText, b.metricsText);

    // A different seed still produces the same span/metric structure
    // (virtual costs are seed-independent here), so we only assert
    // both runs completed and exported something sane.
    TracedBoot c = runTracedBoot(22);
    ASSERT_TRUE(c.ok);
    EXPECT_GT(c.traceJson.size(), 1000u);
}
