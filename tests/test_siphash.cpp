/**
 * @file
 * SipHash-2-4 reference-vector tests (Aumasson & Bernstein reference
 * implementation vectors) and MAC properties for the SM logic engine.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/hex.hpp"
#include "crypto/random.hpp"
#include "crypto/siphash.hpp"

using namespace salus;
using namespace salus::crypto;

namespace {

Bytes
refKey()
{
    return hexDecode("000102030405060708090a0b0c0d0e0f");
}

/** Input of n bytes 00,01,...,n-1 as in the reference vectors. */
Bytes
refInput(size_t n)
{
    Bytes in(n);
    for (size_t i = 0; i < n; ++i)
        in[i] = uint8_t(i);
    return in;
}

} // namespace

TEST(SipHash, ReferenceVectorEmpty)
{
    EXPECT_EQ(sipHash24(refKey(), refInput(0)), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHash, ReferenceVectorOneByte)
{
    EXPECT_EQ(sipHash24(refKey(), refInput(1)), 0x74f839c593dc67fdULL);
}

TEST(SipHash, ReferenceVectorFifteenBytes)
{
    EXPECT_EQ(sipHash24(refKey(), refInput(15)), 0xa129ca6149be45e5ULL);
}

TEST(SipHash, WireTagIsLittleEndian)
{
    Bytes tag = sipHash24Bytes(refKey(), refInput(0));
    EXPECT_EQ(hexEncode(tag), "310e0edd47db6f72");
}

TEST(SipHash, RejectsBadKeySize)
{
    EXPECT_THROW(sipHash24(Bytes(15), ByteView()), CryptoError);
    EXPECT_THROW(sipHash24(Bytes(17), ByteView()), CryptoError);
}

TEST(SipHash, VerifyDetectsTamper)
{
    CtrDrbg rng(21);
    Bytes key = rng.bytes(16);
    Bytes msg = rng.bytes(100);
    Bytes tag = sipHash24Bytes(key, msg);
    EXPECT_TRUE(sipHash24Verify(key, msg, tag));

    Bytes badMsg = msg;
    badMsg[50] ^= 1;
    EXPECT_FALSE(sipHash24Verify(key, badMsg, tag));

    Bytes badKey = key;
    badKey[0] ^= 1;
    EXPECT_FALSE(sipHash24Verify(badKey, msg, tag));

    EXPECT_FALSE(sipHash24Verify(key, msg, Bytes(7)));
}

/** Every message length 0..64 must produce a distinct-looking tag. */
TEST(SipHash, LengthIsBoundIntoTag)
{
    Bytes key(16, 0xaa);
    // Messages of zeros with different lengths must not collide
    // (length byte is folded into the last block).
    Bytes prev;
    for (size_t n = 0; n <= 64; ++n) {
        Bytes tag = sipHash24Bytes(key, Bytes(n, 0));
        EXPECT_NE(tag, prev) << "n=" << n;
        prev = tag;
    }
}

class SipHashLengths : public ::testing::TestWithParam<size_t>
{};

TEST_P(SipHashLengths, DeterministicAndKeyed)
{
    CtrDrbg rng(GetParam() + 1000);
    Bytes key = rng.bytes(16);
    Bytes msg = rng.bytes(GetParam());
    uint64_t t1 = sipHash24(key, msg);
    uint64_t t2 = sipHash24(key, msg);
    EXPECT_EQ(t1, t2);

    Bytes otherKey = rng.bytes(16);
    EXPECT_NE(sipHash24(otherKey, msg), t1);
}

INSTANTIATE_TEST_SUITE_P(Lengths, SipHashLengths,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 17,
                                           255, 1024));
