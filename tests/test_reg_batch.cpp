/**
 * @file
 * Batched secure register channel + multi-session scheduler tests:
 * wire-format round trips and rejection properties of the RegBatch
 * crypto, counter-stride replay resistance at the fabric, tenant key
 * isolation, and the BatchScheduler's fairness / backpressure /
 * typed-failover semantics.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/errors.hpp"
#include "crypto/random.hpp"
#include "salus/reg_channel.hpp"
#include "salus/scheduler.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

struct BatchKeys
{
    Bytes aes;
    Bytes mac;
};

BatchKeys
testKeys(uint64_t seed)
{
    crypto::CtrDrbg rng(seed);
    return {rng.bytes(16), rng.bytes(32)};
}

std::vector<regchan::RegOp>
sampleOps(size_t n, uint64_t salt = 0)
{
    std::vector<regchan::RegOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        regchan::RegOp op;
        op.isWrite = (i % 3) != 2;
        op.addr = uint32_t(8 * (i % 16));
        op.data = salt + 0x1111111111111111ull * i;
        ops.push_back(op);
    }
    return ops;
}

} // namespace

// ---- wire format ----------------------------------------------------

TEST(RegBatch, SealOpenRoundTripAllSizes)
{
    BatchKeys k = testKeys(11);
    for (size_t n : {size_t(1), size_t(2), size_t(32),
                     regchan::kMaxBatchOps}) {
        std::vector<regchan::RegOp> ops = sampleOps(n, n);
        regchan::SealedRegBatch sealed =
            regchan::sealBatch(k.aes, k.mac, 3, 1000 + n, ops);
        EXPECT_EQ(sealed.count(), n);
        auto open = regchan::openBatch(k.aes, k.mac, sealed);
        ASSERT_TRUE(open.has_value()) << "count " << n;
        ASSERT_EQ(open->size(), n);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ((*open)[i].isWrite, ops[i].isWrite);
            EXPECT_EQ((*open)[i].addr, ops[i].addr);
            EXPECT_EQ((*open)[i].data, ops[i].data);
        }
    }
}

TEST(RegBatch, ResponseRoundTrip)
{
    BatchKeys k = testKeys(12);
    std::vector<regchan::BatchResult> results;
    for (size_t i = 0; i < 32; ++i)
        results.push_back({uint8_t(i % 4), 0xabcd0000 + i});
    regchan::SealedBatchResponse rsp = regchan::sealBatchResponse(
        k.aes, k.mac, 7, 5000, results);
    auto open = regchan::openBatchResponse(k.aes, k.mac, 7, 5000,
                                           results.size(), rsp);
    ASSERT_TRUE(open.has_value());
    ASSERT_EQ(open->size(), results.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ((*open)[i].status, results[i].status);
        EXPECT_EQ((*open)[i].data, results[i].data);
    }
}

TEST(RegBatch, RejectsMalformedShape)
{
    BatchKeys k = testKeys(13);
    regchan::SealedRegBatch sealed =
        regchan::sealBatch(k.aes, k.mac, 1, 100, sampleOps(4));

    regchan::SealedRegBatch empty = sealed;
    empty.payload.clear();
    EXPECT_FALSE(regchan::openBatch(k.aes, k.mac, empty).has_value());

    regchan::SealedRegBatch misaligned = sealed;
    misaligned.payload.resize(sealed.payload.size() - 3);
    EXPECT_FALSE(
        regchan::openBatch(k.aes, k.mac, misaligned).has_value());

    regchan::SealedRegBatch oversize = sealed;
    oversize.payload.resize(
        (regchan::kMaxBatchOps + 1) * regchan::kRegBatchBlock);
    EXPECT_FALSE(
        regchan::openBatch(k.aes, k.mac, oversize).has_value());

    // Counter stride may never wrap past 2^64.
    regchan::SealedRegBatch wrapping = regchan::sealBatch(
        k.aes, k.mac, 1, ~uint64_t(0) - 1, sampleOps(4));
    EXPECT_FALSE(
        regchan::openBatch(k.aes, k.mac, wrapping).has_value());
}

TEST(RegBatch, RejectsTruncationAndBitFlips)
{
    BatchKeys k = testKeys(14);
    regchan::SealedRegBatch sealed =
        regchan::sealBatch(k.aes, k.mac, 9, 777, sampleOps(8));

    // Truncating whole blocks changes the MACed count.
    regchan::SealedRegBatch truncated = sealed;
    truncated.payload.resize(sealed.payload.size() -
                             regchan::kRegBatchBlock);
    EXPECT_FALSE(
        regchan::openBatch(k.aes, k.mac, truncated).has_value());

    // Any single bit flip anywhere in the payload must be caught.
    crypto::CtrDrbg rng(uint64_t(999));
    for (int trial = 0; trial < 64; ++trial) {
        regchan::SealedRegBatch flipped = sealed;
        size_t byte = rng.below(flipped.payload.size());
        flipped.payload[byte] ^= uint8_t(1 << rng.below(8));
        EXPECT_FALSE(
            regchan::openBatch(k.aes, k.mac, flipped).has_value());
    }

    regchan::SealedRegBatch badMac = sealed;
    badMac.mac ^= 1;
    EXPECT_FALSE(regchan::openBatch(k.aes, k.mac, badMac).has_value());

    // Session id and counter base are cleartext but MAC-bound.
    regchan::SealedRegBatch badSession = sealed;
    badSession.sessionId ^= 1;
    EXPECT_FALSE(
        regchan::openBatch(k.aes, k.mac, badSession).has_value());
    regchan::SealedRegBatch badCtr = sealed;
    badCtr.ctrBase += 1;
    EXPECT_FALSE(regchan::openBatch(k.aes, k.mac, badCtr).has_value());
}

TEST(RegBatch, ResponseRejectsMismatchedContext)
{
    BatchKeys k = testKeys(15);
    std::vector<regchan::BatchResult> results(4);
    regchan::SealedBatchResponse rsp =
        regchan::sealBatchResponse(k.aes, k.mac, 2, 600, results);

    EXPECT_TRUE(regchan::openBatchResponse(k.aes, k.mac, 2, 600, 4, rsp)
                    .has_value());
    // Wrong expected count, session, or stride base: reject.
    EXPECT_FALSE(
        regchan::openBatchResponse(k.aes, k.mac, 2, 600, 3, rsp)
            .has_value());
    EXPECT_FALSE(
        regchan::openBatchResponse(k.aes, k.mac, 3, 600, 4, rsp)
            .has_value());
    EXPECT_FALSE(
        regchan::openBatchResponse(k.aes, k.mac, 2, 601, 4, rsp)
            .has_value());

    regchan::SealedBatchResponse flipped = rsp;
    flipped.payload[5] ^= 0x20;
    EXPECT_FALSE(
        regchan::openBatchResponse(k.aes, k.mac, 2, 600, 4, flipped)
            .has_value());
}

TEST(RegBatch, RequestAndResponseKeystreamsAreDisjoint)
{
    BatchKeys k = testKeys(16);
    uint8_t req[regchan::kRegBatchBlock] = {};
    uint8_t rsp[regchan::kRegBatchBlock] = {};
    regchan::cryptBatchBlock(k.aes, false, 42, req);
    regchan::cryptBatchBlock(k.aes, true, 42, rsp);
    EXPECT_NE(Bytes(req, req + sizeof req), Bytes(rsp, rsp + sizeof rsp));
}

// ---- multi-session key fan-out --------------------------------------

TEST(RegBatch, SlotKeyDerivationIsolatesSessions)
{
    crypto::CtrDrbg rng(uint64_t(77));
    Bytes base = rng.bytes(48);

    Bytes slot1 = regchan::deriveSlotSessionKeys(base, 1, 10);
    Bytes slot2 = regchan::deriveSlotSessionKeys(base, 2, 10);
    Bytes slot1b = regchan::deriveSlotSessionKeys(base, 1, 11);
    ASSERT_EQ(slot1.size(), 48u);
    EXPECT_NE(slot1, slot2);  // per-slot separation
    EXPECT_NE(slot1, slot1b); // per-nonce separation
    EXPECT_EQ(slot1, regchan::deriveSlotSessionKeys(base, 1, 10));

    // A burst sealed under slot 1's keys never opens under slot 2's.
    ByteView aes1 = ByteView(slot1).subspan(0, 16);
    ByteView mac1 = ByteView(slot1).subspan(16, 32);
    ByteView aes2 = ByteView(slot2).subspan(0, 16);
    ByteView mac2 = ByteView(slot2).subspan(16, 32);
    regchan::SealedRegBatch sealed =
        regchan::sealBatch(aes1, mac1, 1, 50, sampleOps(4));
    EXPECT_TRUE(regchan::openBatch(aes1, mac1, sealed).has_value());
    EXPECT_FALSE(regchan::openBatch(aes2, mac2, sealed).has_value());

    // Open authorization MACs are slot- and nonce-specific.
    ByteView baseMac = ByteView(base).subspan(16, 32);
    EXPECT_NE(regchan::sessionOpenMac(baseMac, 1, 10),
              regchan::sessionOpenMac(baseMac, 2, 10));
    EXPECT_NE(regchan::sessionOpenMac(baseMac, 1, 10),
              regchan::sessionOpenMac(baseMac, 1, 11));
}

// ---- fabric: counter stride + replay --------------------------------

TEST(RegBatch, FabricConsumesStrideAndRejectsReplay)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    // A legitimate burst: writes then readbacks in one stride.
    std::vector<regchan::RegOp> ops;
    ops.push_back({true, 0x00, 0xdead});
    ops.push_back({false, 0x00, 0});
    ops.push_back({true, 0x08, 0xbeef});
    ops.push_back({false, 0x08, 0});
    auto results = tb.smApp().secureRegBatch(0, ops);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results)
        EXPECT_EQ(r.status, 0);
    EXPECT_EQ(results[1].data, 0xdeadull);
    EXPECT_EQ(results[3].data, 0xbeefull);

    // The attacker replays every SM-window write it snooped — burst
    // payload words, stride registers and the command included. The
    // stride was consumed, so the fabric must reject wholesale.
    tb.maliciousShell()->replayRecordedSmWrites();
    EXPECT_EQ(tb.shell().registerRead(pcie::Window::SmSecure,
                                      kSmRegStatBatchOk),
              1u);
    EXPECT_GE(tb.shell().registerRead(pcie::Window::SmSecure,
                                      kSmRegStatBatchRejected),
              1u);

    // State is what the legitimate session left, and the channel
    // still serves fresh strides.
    auto after = tb.smApp().secureRegBatch(0, {{false, 0x00, 0}});
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].status, 0);
    EXPECT_EQ(after[0].data, 0xdeadull);
}

TEST(RegBatch, UserEnclaveBatchEndToEnd)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    std::vector<regchan::RegOp> ops;
    for (uint32_t i = 0; i < 8; ++i)
        ops.push_back({true, 8 * i, 100 + i});
    for (uint32_t i = 0; i < 8; ++i)
        ops.push_back({false, 8 * i, 0});
    auto results = tb.userApp().secureBatch(ops);
    ASSERT_EQ(results.size(), 16u);
    for (uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(results[8 + i].status, 0);
        EXPECT_EQ(results[8 + i].data, 100ull + i);
    }
    // Batch and single-op paths interleave on one counter space.
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 555));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 555u);
}

TEST(RegBatch, TenantSessionsAreIsolatedEndToEnd)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    uint32_t peerA = tb.addUserSession();
    uint32_t peerB = tb.addUserSession();
    ASSERT_TRUE(tb.userApp(peerA).attachToPlatform());
    ASSERT_TRUE(tb.userApp(peerB).attachToPlatform());

    // Each session writes its own scratch register through its own
    // derived keys; every readback sees its own value.
    auto ra = tb.userApp(peerA).secureBatch(
        {{true, 0x10, 0xaaaa}, {false, 0x10, 0}});
    auto rb = tb.userApp(peerB).secureBatch(
        {{true, 0x18, 0xbbbb}, {false, 0x18, 0}});
    ASSERT_EQ(ra.size(), 2u);
    ASSERT_EQ(rb.size(), 2u);
    EXPECT_EQ(ra[1].data, 0xaaaaull);
    EXPECT_EQ(rb[1].data, 0xbbbbull);

    // The owner session is unaffected by tenant traffic.
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 42));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 42u);

    // Tenants never share the owner's boot authority.
    EXPECT_EQ(tb.shell().registerRead(pcie::Window::SmSecure,
                                      kSmRegStatSessionsOpen),
              3u);
}

// ---- scheduler ------------------------------------------------------

TEST(BatchScheduler, FairRoundRobinAcrossSessions)
{
    std::vector<std::pair<uint32_t, size_t>> bursts;
    BatchScheduler::Config cfg;
    cfg.maxBatchOps = 4;
    BatchScheduler sched(
        [&](uint32_t session, const std::vector<regchan::RegOp> &ops) {
            bursts.push_back({session, ops.size()});
            return std::vector<regchan::BatchResult>(ops.size());
        },
        cfg);
    for (uint32_t s = 0; s < 3; ++s)
        sched.addSession(s);
    for (uint32_t s = 0; s < 3; ++s)
        for (int i = 0; i < 8; ++i)
            ASSERT_EQ(sched.submit(s, {true, 0, 0}, nullptr),
                      BatchScheduler::Submit::Accepted);

    EXPECT_EQ(sched.drain(), 24u);
    // Every session got the same service in maxBatchOps slices, and
    // no session was dispatched twice before another got a turn.
    ASSERT_EQ(bursts.size(), 6u);
    for (const auto &[session, count] : bursts)
        EXPECT_EQ(count, 4u);
    for (uint32_t s = 0; s < 3; ++s)
        EXPECT_EQ(sched.dispatchedFor(s), 8u);
    for (size_t i = 0; i + 2 < bursts.size(); i += 3) {
        std::set<uint32_t> sweep = {bursts[i].first, bursts[i + 1].first,
                                    bursts[i + 2].first};
        EXPECT_EQ(sweep.size(), 3u);
    }
}

TEST(BatchScheduler, BackpressureBoundsEachSessionQueue)
{
    BatchScheduler::Config cfg;
    cfg.queueCapacity = 4;
    cfg.maxBatchOps = 2;
    BatchScheduler sched(
        [](uint32_t, const std::vector<regchan::RegOp> &ops) {
            return std::vector<regchan::BatchResult>(ops.size());
        },
        cfg);
    sched.addSession(1);

    EXPECT_EQ(sched.submit(9, {true, 0, 0}, nullptr),
              BatchScheduler::Submit::UnknownSession);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(sched.submit(1, {true, 0, 0}, nullptr),
                  BatchScheduler::Submit::Accepted);
    EXPECT_EQ(sched.submit(1, {true, 0, 0}, nullptr),
              BatchScheduler::Submit::Backpressure);
    EXPECT_EQ(sched.stats().rejectedBackpressure, 1u);

    // A pump frees capacity (maxBatchOps worth), then submits flow.
    EXPECT_EQ(sched.pumpOnce(), 2u);
    EXPECT_EQ(sched.submit(1, {true, 0, 0}, nullptr),
              BatchScheduler::Submit::Accepted);
    EXPECT_EQ(sched.drain(), 3u);
    EXPECT_EQ(sched.totalQueued(), 0u);
}

TEST(BatchScheduler, FailoverCompletesInFlightWithTypedStatus)
{
    int calls = 0;
    BatchScheduler::Config cfg;
    cfg.maxBatchOps = 2;
    BatchScheduler sched(
        [&](uint32_t, const std::vector<regchan::RegOp> &ops) {
            if (++calls == 1)
                throw FailoverError("device quarantined mid-burst");
            std::vector<regchan::BatchResult> out(ops.size());
            for (auto &r : out)
                r.data = 7;
            return out;
        },
        cfg);
    sched.addSession(0);

    std::vector<uint8_t> statuses;
    for (int i = 0; i < 4; ++i)
        sched.submit(0, {true, 0, 0},
                     [&](uint8_t st, uint64_t) {
                         statuses.push_back(st);
                     });

    // The burst in flight completes with the typed failed-over status
    // and the error propagates; the queued ops survive untouched.
    EXPECT_THROW(sched.pumpOnce(), FailoverError);
    ASSERT_EQ(statuses.size(), 2u);
    EXPECT_EQ(statuses[0], kBatchStatusFailedOver);
    EXPECT_EQ(statuses[1], kBatchStatusFailedOver);
    EXPECT_EQ(sched.totalQueued(), 2u);
    EXPECT_EQ(sched.stats().failedOverOps, 2u);

    // The next sweep serves the survivors on the recovered device.
    EXPECT_EQ(sched.drain(), 2u);
    ASSERT_EQ(statuses.size(), 4u);
    EXPECT_EQ(statuses[2], 0);
    EXPECT_EQ(statuses[3], 0);
}

TEST(BatchScheduler, EndToEndOverTestbedSessions)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    TestbedConfig cfg;
    cfg.schedulerMaxBatchOps = 4;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    uint32_t peer = tb.addUserSession();
    ASSERT_TRUE(tb.userApp(peer).attachToPlatform());

    BatchScheduler &sched = tb.scheduler();
    std::map<uint32_t, uint64_t> lastRead;
    for (int i = 0; i < 12; ++i) {
        for (uint32_t s : {uint32_t(0), peer}) {
            uint64_t value = 1000 * s + uint64_t(i);
            ASSERT_EQ(sched.submit(s, {true, 8 * s, value}, nullptr),
                      BatchScheduler::Submit::Accepted);
            ASSERT_EQ(
                sched.submit(s, {false, 8 * s, 0},
                             [&lastRead, s](uint8_t st, uint64_t data) {
                                 ASSERT_EQ(st, 0);
                                 lastRead[s] = data;
                             }),
                BatchScheduler::Submit::Accepted);
        }
    }
    EXPECT_EQ(sched.drain(), 48u);
    EXPECT_EQ(lastRead[0], 11u);
    EXPECT_EQ(lastRead[peer], 1000ull * peer + 11);
    EXPECT_EQ(sched.dispatchedFor(0), 24u);
    EXPECT_EQ(sched.dispatchedFor(peer), 24u);
    EXPECT_GE(sched.stats().dispatchedBatches, 12u);
}

TEST(BatchScheduler, DispatchBackpressureRetriesOnceInSameSweep)
{
    // Session 1's first slice is refused downstream; the scheduler
    // finishes the other sessions' slices, then retries session 1
    // exactly once in the SAME sweep, so its ops are not starved for
    // a whole sweep by one transient refusal.
    std::vector<uint32_t> order;
    bool refusedOnce = false;
    BatchScheduler::Config cfg;
    cfg.maxBatchOps = 4;
    BatchScheduler sched(
        [&](uint32_t session, const std::vector<regchan::RegOp> &ops) {
            if (session == 1 && !refusedOnce) {
                refusedOnce = true;
                throw DispatchBackpressure("device buffer full");
            }
            order.push_back(session);
            return std::vector<regchan::BatchResult>(ops.size());
        },
        cfg);
    for (uint32_t s = 0; s < 3; ++s) {
        sched.addSession(s);
        for (int i = 0; i < 4; ++i)
            ASSERT_EQ(sched.submit(s, {true, 0, 0}, nullptr),
                      BatchScheduler::Submit::Accepted);
    }

    // One sweep completes ALL 12 ops: sessions 0 and 2 in order, then
    // the retried session-1 slice at the end of the sweep.
    EXPECT_EQ(sched.pumpOnce(), 12u);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order.back(), 1u);
    EXPECT_EQ(sched.stats().dispatchBackpressure, 1u);
    EXPECT_EQ(sched.stats().retriedSlices, 1u);
    // Fairness held: every session got identical service.
    for (uint32_t s = 0; s < 3; ++s)
        EXPECT_EQ(sched.dispatchedFor(s), 4u);
    EXPECT_EQ(sched.totalQueued(), 0u);
}

TEST(BatchScheduler, PersistentBackpressureKeepsQueueAndNeverSpins)
{
    // A dispatch that ALWAYS refuses: the retry is attempted exactly
    // once per sweep, the queue stays intact, and drain() terminates
    // instead of spinning on the unprogressable session.
    int calls = 0;
    BatchScheduler sched(
        [&](uint32_t, const std::vector<regchan::RegOp> &)
            -> std::vector<regchan::BatchResult> {
            ++calls;
            throw DispatchBackpressure("saturated");
        });
    sched.addSession(0);
    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(sched.submit(0, {true, 0, 0}, nullptr),
                  BatchScheduler::Submit::Accepted);

    EXPECT_EQ(sched.drain(), 0u);
    EXPECT_EQ(sched.totalQueued(), 3u);
    // One sweep = initial attempt + one retry; drain stops after the
    // first zero-progress sweep.
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(sched.stats().dispatchBackpressure, 2u);
    EXPECT_EQ(sched.stats().retriedSlices, 1u);
}

TEST(BatchScheduler, QuiesceParksPumpAndReleaseResumes)
{
    size_t dispatched = 0;
    BatchScheduler sched(
        [&](uint32_t, const std::vector<regchan::RegOp> &ops) {
            dispatched += ops.size();
            return std::vector<regchan::BatchResult>(ops.size());
        });
    sched.addSession(0);
    for (int i = 0; i < 5; ++i)
        ASSERT_EQ(sched.submit(0, {true, 0, 0}, nullptr),
                  BatchScheduler::Submit::Accepted);

    EXPECT_EQ(sched.quiesce(), 5u);
    EXPECT_TRUE(sched.parked());
    // Parked: nothing dispatches, but submit() keeps accepting.
    EXPECT_EQ(sched.pumpOnce(), 0u);
    EXPECT_EQ(sched.drain(), 0u);
    EXPECT_EQ(dispatched, 0u);
    EXPECT_EQ(sched.submit(0, {true, 0, 0}, nullptr),
              BatchScheduler::Submit::Accepted);
    EXPECT_EQ(sched.totalQueued(), 6u);

    sched.release();
    EXPECT_FALSE(sched.parked());
    EXPECT_EQ(sched.drain(), 6u);
    EXPECT_EQ(dispatched, 6u);
    EXPECT_EQ(sched.totalQueued(), 0u);
}
