/**
 * @file
 * Tests for the features beyond the paper's prototype that its text
 * calls for: multiple reconfigurable partitions (§4.7), sealed
 * device-key caching (standard SGX practice), and runtime
 * re-attestation (§2.1's deferred future work).
 */

#include <gtest/gtest.h>

#include "bitstream/compiler.hpp"
#include "common/errors.hpp"
#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "crypto/random.hpp"
#include "fpga/device.hpp"
#include "salus/cl_builder.hpp"
#include "salus/reg_channel.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel(const char *name = "engine")
{
    netlist::Cell accel;
    accel.path = name;
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {100, 100, 0, 0};
    return accel;
}

/** Compiles, injects secrets, and encrypts a CL for one partition. */
struct TenantCl
{
    ClLayout layout;
    ClSecrets secrets;
    Bytes blob;

    TenantCl(const fpga::DeviceModelInfo &model, uint32_t partitionId,
             ByteView deviceKey, crypto::CtrDrbg &rng,
             const char *accelName)
    {
        ClDesign design = buildClDesign(
            std::string("cl_rp") + std::to_string(partitionId),
            loopbackAccel(accelName));
        layout = design.layout;

        bitstream::Compiler compiler(model.name);
        auto compiled = compiler.compile(
            design.netlist, *model.findPartition(partitionId));

        secrets = ClSecrets::generate(rng);
        bitstream::Manipulator::patchCell(compiled.file,
                                          compiled.logicLocations,
                                          layout.keyAttestPath,
                                          secrets.keyAttest);
        bitstream::Manipulator::patchCell(compiled.file,
                                          compiled.logicLocations,
                                          layout.keySessionPath,
                                          secrets.keySession);
        bitstream::Manipulator::patchCell(compiled.file,
                                          compiled.logicLocations,
                                          layout.ctrSessionPath,
                                          secrets.ctrBytes());
        blob = bitstream::encryptBitstream(
            compiled.file, deviceKey,
            bitstream::EncryptedHeader{model.name, partitionId}, rng);
    }
};

/** One Fig. 4a attestation against the SM logic of a partition. */
bool
attestPartition(fpga::FpgaDevice &device, const TenantCl &cl,
                uint32_t partitionId, uint64_t nonce)
{
    fpga::LoadedDesign *design = device.design(partitionId);
    if (!design)
        return false;
    fpga::IpBehavior *sm = design->behaviorAt(cl.layout.smCellPath);
    if (!sm)
        return false;
    uint64_t dna = device.dna().value;
    sm->writeRegister(kSmRegIn0, nonce);
    sm->writeRegister(kSmRegIn1, regchan::attestRequestMac(
                                     cl.secrets.keyAttest, nonce, dna));
    sm->writeRegister(kSmRegCmd, kSmCmdAttest);
    return sm->readRegister(kSmRegStatus) == kSmStatusOk &&
           sm->readRegister(kSmRegOut1) ==
               regchan::attestResponseMac(cl.secrets.keyAttest, nonce,
                                          dna);
}

} // namespace

// ---------------------------------------------------- multi-RP (§4.7)

TEST(MultiRp, IndependentLoadAndAttestPerPartition)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    crypto::CtrDrbg rng(uint64_t(71));
    fpga::DeviceModelInfo model = fpga::testModelMultiRp(3);
    fpga::FpgaDevice device(model, fpga::DeviceDna{0xabc123});
    Bytes deviceKey = rng.bytes(32);
    device.fuseKey(deviceKey);

    // Three tenants, three partitions, three distinct RoTs.
    std::vector<TenantCl> tenants;
    for (uint32_t rp = 0; rp < 3; ++rp) {
        tenants.emplace_back(model, rp, deviceKey, rng,
                             rp == 0 ? "alpha" : rp == 1 ? "beta"
                                                         : "gamma");
        ASSERT_EQ(device.loadEncryptedPartial(tenants[rp].blob),
                  fpga::LoadStatus::Ok)
            << "rp " << rp;
    }

    for (uint32_t rp = 0; rp < 3; ++rp) {
        EXPECT_TRUE(attestPartition(device, tenants[rp], rp, 100 + rp))
            << "rp " << rp;
        // Cross-partition key confusion must fail: tenant 0's key
        // cannot attest tenant 1's partition.
        if (rp != 0) {
            EXPECT_FALSE(
                attestPartition(device, tenants[0], rp, 200 + rp));
        }
    }

    // Secrets differ per partition (fresh RoT each).
    EXPECT_NE(tenants[0].secrets.keyAttest, tenants[1].secrets.keyAttest);
    EXPECT_NE(tenants[1].secrets.keyAttest, tenants[2].secrets.keyAttest);
}

TEST(MultiRp, ReloadingOnePartitionLeavesOthersIntact)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    crypto::CtrDrbg rng(uint64_t(72));
    fpga::DeviceModelInfo model = fpga::testModelMultiRp(2);
    fpga::FpgaDevice device(model, fpga::DeviceDna{0x5151});
    Bytes deviceKey = rng.bytes(32);
    device.fuseKey(deviceKey);

    TenantCl t0(model, 0, deviceKey, rng, "alpha");
    TenantCl t1(model, 1, deviceKey, rng, "beta");
    ASSERT_EQ(device.loadEncryptedPartial(t0.blob), fpga::LoadStatus::Ok);
    ASSERT_EQ(device.loadEncryptedPartial(t1.blob), fpga::LoadStatus::Ok);
    ASSERT_TRUE(attestPartition(device, t0, 0, 1));

    // Reprogram RP1 with a new tenant; RP0 must still attest.
    TenantCl t1b(model, 1, deviceKey, rng, "beta2");
    ASSERT_EQ(device.loadEncryptedPartial(t1b.blob),
              fpga::LoadStatus::Ok);
    EXPECT_TRUE(attestPartition(device, t0, 0, 2));
    EXPECT_TRUE(attestPartition(device, t1b, 1, 3));
    // The replaced tenant's key no longer works.
    EXPECT_FALSE(attestPartition(device, t1, 1, 4));
}

TEST(MultiRp, BitstreamForOnePartitionCannotLoadIntoAnother)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    crypto::CtrDrbg rng(uint64_t(73));
    fpga::DeviceModelInfo model = fpga::testModelMultiRp(2);
    fpga::FpgaDevice device(model, fpga::DeviceDna{0x7777});
    Bytes deviceKey = rng.bytes(32);
    device.fuseKey(deviceKey);

    // Compile for RP0 but claim RP1 in the encryption header: the
    // authenticated header/geometry cross-check rejects it.
    ClDesign design = buildClDesign("cl_rp0", loopbackAccel());
    bitstream::Compiler compiler(model.name);
    auto compiled =
        compiler.compile(design.netlist, *model.findPartition(0));
    Bytes blob = bitstream::encryptBitstream(
        compiled.file, deviceKey,
        bitstream::EncryptedHeader{model.name, 1}, rng);
    EXPECT_EQ(device.loadEncryptedPartial(blob),
              fpga::LoadStatus::GeometryMismatch);
}

// ------------------------------------------- sealed device-key cache

TEST(SealedKeyCache, ExportImportAcrossSmRestart)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    ASSERT_TRUE(tb.smApp().haveDeviceKey());

    Bytes sealed = tb.smApp().exportSealedDeviceKey();
    ASSERT_FALSE(sealed.empty());

    // Restart the SM application with the cached key: the next
    // deployment must not touch the manufacturer at all.
    ASSERT_TRUE(tb.restartSmApp(sealed));
    ASSERT_TRUE(tb.smApp().haveDeviceKey());

    sim::Nanos keyPhaseBefore =
        tb.clock().totalFor(phases::kDeviceKeyDist);
    UserClient::Outcome second = tb.runDeployment();
    ASSERT_TRUE(second.ok) << second.failure;
    EXPECT_EQ(tb.clock().totalFor(phases::kDeviceKeyDist),
              keyPhaseBefore)
        << "cached key must skip the key-distribution phase";
}

TEST(SealedKeyCache, TamperedOrForeignBlobRejected)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    Bytes sealed = tb.smApp().exportSealedDeviceKey();

    // Tampered blob.
    Bytes bad = sealed;
    bad[bad.size() / 2] ^= 1;
    ASSERT_TRUE(tb.restartSmApp()); // fresh instance, no key
    EXPECT_FALSE(tb.smApp().importSealedDeviceKey(bad));
    EXPECT_FALSE(tb.smApp().haveDeviceKey());

    // Blob sealed on a DIFFERENT platform cannot be imported here.
    TestbedConfig otherCfg;
    otherCfg.rngSeed = 99;
    Testbed other(otherCfg);
    other.installCl(loopbackAccel());
    ASSERT_TRUE(other.runDeployment().ok);
    Bytes foreign = other.smApp().exportSealedDeviceKey();
    EXPECT_FALSE(tb.smApp().importSealedDeviceKey(foreign));

    // Without a key, export yields nothing.
    EXPECT_TRUE(tb.smApp().exportSealedDeviceKey().empty());
}

// --------------------------------------------- runtime re-attestation

TEST(RuntimeAttestation, HeartbeatPassesOnIntactCl)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(tb.smApp().reattestCl()) << "heartbeat " << i;
    EXPECT_TRUE(tb.smApp().bootStatus().attested);
}

TEST(RuntimeAttestation, DetectsRuntimeBitstreamReplacement)
{
    // The attack the paper explicitly defers (§2.1): after a valid
    // boot, the CSP hot-swaps the CL. The periodic heartbeat catches
    // it because the impostor cannot hold this deployment's RoT.
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    ASSERT_TRUE(tb.smApp().reattestCl());

    // CSP loads its own (cleartext) CL into the partition at runtime.
    ClDesign impostor = buildClDesign("impostor", loopbackAccel("evil"));
    bitstream::Compiler compiler(tb.device().model().name);
    auto compiled = compiler.compile(
        impostor.netlist, tb.device().model().partitions[0]);
    ASSERT_EQ(tb.device().loadCleartextPartial(compiled.file),
              fpga::LoadStatus::Ok);

    EXPECT_FALSE(tb.smApp().reattestCl());
    EXPECT_FALSE(tb.smApp().bootStatus().attested);
}

TEST(RuntimeAttestation, RequiresCompletedBoot)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    tb.installCl(loopbackAccel());
    EXPECT_FALSE(tb.smApp().reattestCl()); // nothing deployed yet
}

// ------------------------------------ authenticated memory traffic

#include "accel/accel_ip.hpp"
#include "crypto/sha256.hpp"
#include "accel/mem_crypto.hpp"
#include "accel/runner.hpp"

namespace {

std::unique_ptr<Testbed>
deployedAccelTestbed(accel::KernelId id, bool malicious = false,
                     shell::AttackPlan plan = {})
{
    accel::AccelIp::registerAll();
    TestbedConfig cfg;
    cfg.maliciousShell = malicious;
    cfg.attackPlan = plan;
    auto tb = std::make_unique<Testbed>(cfg);
    tb->installCl(accel::accelCellFor(accel::workload(id)));
    return tb;
}

} // namespace

TEST(AuthenticatedMemory, SealOpenRoundtripAndTamper)
{
    crypto::CtrDrbg rng(uint64_t(81));
    Bytes key = rng.bytes(32);
    Bytes data = rng.bytes(777);

    Bytes sealed = accel::memSealAuth(key, 5, accel::Dir::Input, data);
    EXPECT_EQ(sealed.size(), data.size() + 16);
    auto back = accel::memOpenAuth(key, 5, accel::Dir::Input, sealed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);

    Bytes bad = sealed;
    bad[100] ^= 1;
    EXPECT_FALSE(
        accel::memOpenAuth(key, 5, accel::Dir::Input, bad).has_value());
    // Wrong direction or job id also fails (IV binding).
    EXPECT_FALSE(accel::memOpenAuth(key, 5, accel::Dir::Output, sealed)
                     .has_value());
    EXPECT_FALSE(
        accel::memOpenAuth(key, 6, accel::Dir::Input, sealed)
            .has_value());
    EXPECT_FALSE(
        accel::memOpenAuth(key, 5, accel::Dir::Input, Bytes(8))
            .has_value());
}

TEST(AuthenticatedMemory, EndToEndJobOnHonestPlatform)
{
    auto tb = deployedAccelTestbed(accel::KernelId::Affine);
    ASSERT_TRUE(tb->runDeployment().ok);

    accel::WorkloadRunner runner(accel::KernelId::Affine, 3, 0.15);
    accel::RunResult res = runner.runFpgaTeeAuthenticated(*tb);
    EXPECT_FALSE(res.tamperDetected);
    EXPECT_TRUE(res.outputCorrect);
}

TEST(AuthenticatedMemory, DmaTamperIsPositivelyDetected)
{
    // Contrast with AccelPipeline.DmaTamperCorruptsOutputVisibly: in
    // authenticated mode the violation is DETECTED, deterministically.
    shell::AttackPlan plan;
    plan.tamperDma = true;
    auto tb = deployedAccelTestbed(accel::KernelId::Affine, true, plan);
    ASSERT_TRUE(tb->runDeployment().ok);

    accel::WorkloadRunner runner(accel::KernelId::Affine, 4, 0.15);
    accel::RunResult res = runner.runFpgaTeeAuthenticated(*tb);
    EXPECT_TRUE(res.tamperDetected);
    EXPECT_FALSE(res.outputCorrect);
}

// ------------------------------------------- client policy pinning

TEST(ClientPolicy, MrSignerPinning)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    tb.installCl(loopbackAccel());

    // Correct signer passes.
    tee::Measurement goodSigner =
        UserEnclaveApp::defaultImage().signerMeasurement();
    auto ok = tb.runDeployment([&](ClientConfig &cfg) {
        cfg.expectedUserSigner = goodSigner;
    });
    EXPECT_TRUE(ok.ok) << ok.failure;

    // Wrong signer is rejected even though MRENCLAVE matches.
    auto bad = tb.runDeployment([&](ClientConfig &cfg) {
        cfg.expectedUserSigner =
            crypto::Sha256::digest(bytesFromString("someone-else"));
    });
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.failure.find("MRSIGNER"), std::string::npos);
}

TEST(ClientPolicy, MinimumIsvSvnEnforced)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    tb.installCl(loopbackAccel());

    auto ok = tb.runDeployment(
        [](ClientConfig &cfg) { cfg.minUserIsvSvn = 1; });
    EXPECT_TRUE(ok.ok) << ok.failure;

    auto bad = tb.runDeployment(
        [](ClientConfig &cfg) { cfg.minUserIsvSvn = 5; });
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.failure.find("security version"), std::string::npos);
}

// ------------------------------------------ developer-signed artifacts

#include "salus/developer.hpp"

TEST(DeveloperKit, PublishVerifyDeployRoundtrip)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    crypto::CtrDrbg devRng(uint64_t(91));
    DeveloperKit developer("acme-accel-co", devRng);

    Testbed tb;
    ClArtifact artifact = developer.develop(
        "loopback-v1", loopbackAccel(), tb.device().model());

    // The artifact is self-contained and survives the wire.
    ClArtifact shipped = ClArtifact::deserialize(artifact.serialize());
    EXPECT_TRUE(verifyArtifact(shipped, developer.publicKey()));

    // The data owner installs it pinned to the developer identity and
    // the whole secure boot proceeds as usual.
    ASSERT_TRUE(tb.installArtifact(shipped, developer.publicKey()));
    UserClient::Outcome outcome = tb.runDeployment();
    ASSERT_TRUE(outcome.ok) << outcome.failure;
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 5));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 5u);
}

TEST(DeveloperKit, TamperedArtifactsRejectedOffline)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    crypto::CtrDrbg devRng(uint64_t(92));
    DeveloperKit developer("acme-accel-co", devRng);
    Testbed tb;
    ClArtifact good = developer.develop("loopback-v1", loopbackAccel(),
                                        tb.device().model());

    // Bitstream swapped after signing: digest check fails.
    ClArtifact badBits = good;
    badBits.bitstream[100] ^= 1;
    EXPECT_FALSE(verifyArtifact(badBits, developer.publicKey()));
    EXPECT_FALSE(tb.installArtifact(badBits, developer.publicKey()));

    // Metadata edited after signing: signature fails.
    ClArtifact badMeta = good;
    badMeta.metadata[0] ^= 1;
    EXPECT_FALSE(verifyArtifact(badMeta, developer.publicKey()));

    // Re-signed by an impostor: identity pin fails.
    crypto::CtrDrbg evilRng(uint64_t(93));
    DeveloperKit impostor("evil-corp", evilRng);
    ClArtifact resigned = impostor.develop(
        "loopback-v1", loopbackAccel(), tb.device().model());
    EXPECT_TRUE(verifyArtifact(resigned, impostor.publicKey()));
    EXPECT_FALSE(verifyArtifact(resigned, developer.publicKey()));
    EXPECT_FALSE(tb.installArtifact(resigned, developer.publicKey()));

    // Garbage wire bytes fail cleanly.
    EXPECT_THROW(ClArtifact::deserialize(Bytes(7, 2)), SalusError);
}

TEST(DeveloperKit, SameArtifactDeploysOnManyDevices)
{
    // The decoupling Salus exists for (Table 1 "independent dev/dep"):
    // ONE signed release serves any number of rented devices.
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    crypto::CtrDrbg devRng(uint64_t(94));
    DeveloperKit developer("acme-accel-co", devRng);
    ClArtifact artifact;
    for (uint64_t seed : {10u, 20u, 30u}) {
        TestbedConfig cfg;
        cfg.rngSeed = seed;
        Testbed tb(cfg);
        if (seed == 10u) {
            artifact = developer.develop("release-1", loopbackAccel(),
                                         tb.device().model());
        }
        ASSERT_TRUE(tb.installArtifact(artifact, developer.publicKey()))
            << "seed " << seed;
        EXPECT_TRUE(tb.runDeployment().ok) << "seed " << seed;
    }
}

// --------------------------------------------------- boot reporting

#include "salus/boot_report.hpp"

TEST(BootReportTest, BreakdownMatchesClockAndRenders)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    BootReport report = buildBootReport(tb.clock());
    ASSERT_EQ(report.rows.size(), 7u);
    sim::Nanos sum = 0;
    for (const auto &row : report.rows) {
        EXPECT_EQ(row.modelTime, tb.clock().totalFor(row.phase));
        sum += row.modelTime;
    }
    EXPECT_EQ(sum, report.modelTotal);
    EXPECT_NEAR(report.paperTotalMs, 18835.0, 10.0);

    std::string table = report.render();
    EXPECT_NE(table.find("TOTAL"), std::string::npos);
    EXPECT_NE(table.find(phases::kBitstreamManip), std::string::npos);

    // On the test-scale device manipulation still dominates the
    // compute phases; dominant() must return a real row.
    EXPECT_FALSE(report.dominant().phase.empty());
}

// ------------------------- full-protocol multi-RP (paper §4.7, deep)

TEST(MultiRp, TwoFullTenantStacksOnOneDevice)
{
    // Unlike the register-level MultiRp tests above, this runs the
    // ENTIRE protocol stack twice — two user clients, two user
    // enclaves, two SM enclaves, one physical device with two
    // reconfigurable partitions — and checks the tenants stay
    // independent end to end.
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    crypto::CtrDrbg rng(uint64_t(4747));
    sim::VirtualClock clock;
    sim::CostModel cost;

    manufacturer::Manufacturer mft(rng);
    tee::TeePlatform platform("multi-rp-host", rng);
    mft.provisionPlatform(platform);
    mft.allowSmEnclave(SmEnclaveApp::defaultMeasurement());
    auto device = mft.manufactureFpga(fpga::testModelMultiRp(2));

    net::Network network(clock, cost);
    network.addEndpoint("mft");
    network.on("mft", "keyRequest", [&](ByteView req) {
        return mft
            .handleKeyRequest(
                manufacturer::KeyRequest::deserialize(req))
            .serialize();
    });

    struct Tenant
    {
        std::unique_ptr<shell::Shell> shell;
        std::unique_ptr<SmEnclaveApp> smApp;
        std::unique_ptr<UserEnclaveApp> userApp;
        ClMetadata metadata;
        std::string clientEp, hostEp;
    };
    std::vector<Tenant> tenants(2);

    crypto::CtrDrbg devRng(uint64_t(4848));
    DeveloperKit developer("multi-rp-dev", devRng);

    for (uint32_t rp = 0; rp < 2; ++rp) {
        Tenant &t = tenants[rp];
        t.clientEp = "client-" + std::to_string(rp);
        t.hostEp = "host-" + std::to_string(rp);
        network.addEndpoint(t.clientEp);
        network.addEndpoint(t.hostEp);
        network.link(t.clientEp, t.hostEp, sim::LinkKind::Wan);
        network.link(t.hostEp, "mft", sim::LinkKind::IntraCloud);

        t.shell = std::make_unique<shell::Shell>(*device, clock, cost,
                                                 rp);

        ClArtifact artifact = developer.develop(
            "tenant" + std::to_string(rp), loopbackAccel(),
            device->model(), rp);
        ASSERT_TRUE(verifyArtifact(artifact, developer.publicKey()));
        t.metadata = ClMetadata::deserialize(artifact.metadata);
        Bytes storedBitstream = artifact.bitstream;

        SmEnclaveDeps deps;
        deps.shell = t.shell.get();
        deps.network = &network;
        deps.selfEndpoint = t.hostEp;
        deps.manufacturerEndpoint = "mft";
        deps.instanceDeviceDna = device->dna().value;
        deps.fetchBitstream = [storedBitstream] {
            return storedBitstream;
        };
        t.smApp = std::make_unique<SmEnclaveApp>(platform, deps);

        SmTransport transport;
        SmEnclaveApp *sm = t.smApp.get();
        transport.la1 = [sm](ByteView m) { return sm->laAnswer(m); };
        transport.la3 = [sm](ByteView m) { return sm->laConfirm(m); };
        transport.channel = [sm](ByteView m) {
            return sm->channelRequest(m);
        };
        tee::EnclaveImage image = UserEnclaveApp::defaultImage();
        image.code = concatBytes(
            {image.code, bytesFromString(std::to_string(rp))});
        t.userApp = std::make_unique<UserEnclaveApp>(
            platform, image, SmEnclaveApp::defaultMeasurement(),
            transport);

        UserEnclaveApp *user = t.userApp.get();
        network.on(t.hostEp, "raRequest", [user](ByteView req) {
            return user->handleRaRequest(req);
        });
        network.on(t.hostEp, "dataKey", [user](ByteView req) {
            Bytes ack(1);
            ack[0] = user->acceptDataKey(req) ? 1 : 0;
            return ack;
        });
    }

    // Deploy both tenants (sequentially; same device, disjoint RPs).
    for (uint32_t rp = 0; rp < 2; ++rp) {
        Tenant &t = tenants[rp];
        ClientConfig cfg;
        cfg.expectedUserEnclave = t.userApp->measurement();
        cfg.expectedSm = SmEnclaveApp::defaultMeasurement();
        cfg.metadata = t.metadata;
        cfg.selfEndpoint = t.clientEp;
        cfg.cloudEndpoint = t.hostEp;
        UserClient client(cfg, mft.verificationService(), network, rng);
        UserClient::Outcome outcome = client.deployAndAttest();
        ASSERT_TRUE(outcome.ok) << "tenant " << rp << ": "
                                << outcome.failure;
    }

    // Both secure channels work, and they are independent state.
    ASSERT_TRUE(tenants[0].userApp->secureWrite(0x00, 0xAAAA));
    ASSERT_TRUE(tenants[1].userApp->secureWrite(0x00, 0xBBBB));
    EXPECT_EQ(tenants[0].userApp->secureRead(0x00), 0xAAAAu);
    EXPECT_EQ(tenants[1].userApp->secureRead(0x00), 0xBBBBu);

    // Runtime heartbeats hold for both; reloading tenant 1's RP does
    // not disturb tenant 0.
    EXPECT_TRUE(tenants[0].smApp->reattestCl());
    EXPECT_TRUE(tenants[1].smApp->reattestCl());
    device->clearPartition(1);
    EXPECT_TRUE(tenants[0].smApp->reattestCl());
    EXPECT_FALSE(tenants[1].smApp->reattestCl());
}
