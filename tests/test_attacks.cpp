/**
 * @file
 * Security tests: every attack from the threat model (paper §3.1 /
 * Table 3) is executed against the platform and must be detected or
 * neutralized. These are the executable form of the paper's security
 * analysis (§4.6).
 */

#include <gtest/gtest.h>

#include "bitstream/compiler.hpp"
#include "common/hex.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {1000, 2000, 4, 8};
    return accel;
}

netlist::Cell
trojanAccel()
{
    netlist::Cell accel;
    accel.path = "trojan";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {999, 999, 1, 0};
    return accel;
}

} // namespace

// ---- ① Integrity attacks on CL during booting -----------------------

TEST(Attacks, ShellTampersEncryptedBitstream)
{
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    cfg.attackPlan.tamperBitstream = true;
    cfg.attackPlan.tamperOffset = 5000;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());

    UserClient::Outcome outcome = tb.runDeployment();
    EXPECT_FALSE(outcome.ok);
    // GCM authentication inside the fabric catches the flip.
    EXPECT_NE(outcome.failure.find("DecryptFailed"), std::string::npos)
        << outcome.failure;
}

TEST(Attacks, ShellSubstitutesOwnBitstream)
{
    // The CSP compiles its own trojan CL. Without Key_device it can
    // only submit it in cleartext form (or encrypted under a wrong
    // key); the device refuses either way, and even if it somehow
    // loaded, it would not hold Key_attest.
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());

    ClDesign trojan = buildClDesign("trojan_top", trojanAccel());
    bitstream::Compiler compiler(tb.device().model().name);
    auto compiled = compiler.compile(
        trojan.netlist, tb.device().model().partitions[0]);
    tb.maliciousShell()->plan().substituteBitstream = compiled.file;

    UserClient::Outcome outcome = tb.runDeployment();
    EXPECT_FALSE(outcome.ok);
}

TEST(Attacks, StorageSwapsBitstreamBeforeSmEnclave)
{
    // Untrusted cloud storage hands the SM enclave a different file:
    // the digest check against H (step ⑤) catches it.
    Testbed tb;
    tb.installCl(loopbackAccel());
    ClDesign trojan = buildClDesign("trojan_top", trojanAccel());
    bitstream::Compiler compiler(tb.device().model().name);
    tb.storedBitstream() =
        compiler
            .compile(trojan.netlist, tb.device().model().partitions[0])
            .file;

    UserClient::Outcome outcome = tb.runDeployment();
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.failure.find("digest"), std::string::npos)
        << outcome.failure;
}

TEST(Attacks, UnmanipulatedBitstreamFailsClAttestation)
{
    // Suppose the shell replays the developer's ORIGINAL (cleartext)
    // bitstream, whose key cells are all zero. The CL loads but holds
    // no RoT, so the SipHash challenge fails.
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    // Substitute with the original plaintext artifact: the device
    // refuses it outright (it expects an encrypted blob).
    tb.maliciousShell()->plan().substituteBitstream =
        tb.storedBitstream();

    UserClient::Outcome outcome = tb.runDeployment();
    EXPECT_FALSE(outcome.ok);
}

// ---- ③ Bus attacks on host-CL PCIe transactions ----------------------

TEST(Attacks, RegisterTamperOnSmWindowDetected)
{
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    // Start flipping a bit in everything crossing the SM window.
    tb.maliciousShell()->plan().smWindowDataTamperMask = 1ull << 17;

    // Writes are authenticated: the SM logic rejects, and the host
    // sees the failure instead of silently corrupted state.
    EXPECT_FALSE(tb.userApp().secureWrite(0x00, 1234));
    EXPECT_FALSE(tb.userApp().secureRead(0x00).has_value());

    // Stop tampering: the channel recovers (counter advanced, no
    // state poisoning).
    tb.maliciousShell()->plan().smWindowDataTamperMask = 0;
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 1234));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 1234u);
}

TEST(Attacks, ReplayOfSecureRegisterWritesRejected)
{
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    ASSERT_TRUE(tb.userApp().secureWrite(0x00, 77));
    ASSERT_TRUE(tb.userApp().secureWrite(0x00, 88));

    // The shell replays all recorded SM-window writes (including the
    // "write 77" transaction). The monotonic session counter makes
    // the SM logic reject every replayed command.
    tb.maliciousShell()->replayRecordedSmWrites();
    EXPECT_EQ(tb.userApp().secureRead(0x00), 88u)
        << "replay must not roll the register back to 77";
}

TEST(Attacks, SnoopSeesNoSecretsOnTheBus)
{
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    // Exercise the channel with a known sensitive payload.
    const uint64_t secretValue = 0x5ec2e7c0ffee1234ull;
    ASSERT_TRUE(tb.userApp().secureWrite(0x10, secretValue));
    ASSERT_TRUE(tb.userApp().pushDataKeyToCl(0x20));

    // The shell saw every register transaction; none carries the
    // plaintext value or any data-key word.
    const Bytes &dataKey = tb.userApp().dataKey();
    for (const auto &txn : tb.maliciousShell()->snoopLog()) {
        EXPECT_NE(txn.data, secretValue);
        for (int i = 0; i < 4; ++i)
            EXPECT_NE(txn.data, loadLe64(dataKey.data() + 8 * i));
    }

    // And the captured (encrypted) bitstream does not contain the
    // injected attestation key material anywhere.
    tb.device().setReadbackEnabled(true);
    netlist::Netlist design =
        bitstream::extractDesign(tb.device().readback(0));
    Bytes keyAttest =
        design.findCell(tb.layout().keyAttestPath)->init;
    std::string blobHex =
        hexEncode(tb.maliciousShell()->capturedBitstream());
    EXPECT_EQ(blobHex.find(hexEncode(keyAttest)), std::string::npos);
}

TEST(Attacks, ConfigScanBlockedByReadbackDisable)
{
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    // §5.1.2: with the Salus ICAP IP the scan is impossible.
    EXPECT_FALSE(tb.maliciousShell()->tryConfigScan().has_value());
}

TEST(Attacks, LegacyReadbackEnablesKeyExfiltration)
{
    // Demonstrates WHY readback must be disabled: on a legacy ICAP
    // the shell scans configuration memory, extracts Key_attest, and
    // can forge a valid CL attestation response.
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    tb.device().setReadbackEnabled(true); // legacy ICAP
    auto frames = tb.maliciousShell()->tryConfigScan();
    ASSERT_TRUE(frames.has_value());

    netlist::Netlist design = bitstream::extractDesign(*frames);
    Bytes stolenKey = design.findCell(tb.layout().keyAttestPath)->init;
    EXPECT_EQ(stolenKey.size(), kKeyAttestSize);

    // The stolen key forges a response the SM enclave would accept.
    uint64_t nonce = 42;
    uint64_t dna = tb.device().dna().value;
    uint64_t forged =
        regchan::attestResponseMac(stolenKey, nonce, dna);
    EXPECT_EQ(forged, regchan::attestResponseMac(stolenKey, nonce, dna));
}

// ---- ④ Privileged attacks on the host --------------------------------

TEST(Attacks, NetworkMitmOnRaBreaksAttestation)
{
    Testbed tb;
    tb.installCl(loopbackAccel());

    // A network attacker flips a byte in the RA response (the quote).
    tb.network().setInterposer(
        [](const std::string &, const std::string &,
           const std::string &method, Bytes &payload) {
            if (method == "raRequest:response" && payload.size() > 50)
                payload[50] ^= 1;
            return true;
        });
    UserClient::Outcome outcome = tb.runDeployment();
    EXPECT_FALSE(outcome.ok);
}

TEST(Attacks, WrongMetadataDigestRejectedInsideEnclave)
{
    // A compromised client-side config (or MITM on metadata) makes H
    // mismatch; the SM enclave refuses to deploy.
    Testbed tb;
    tb.installCl(loopbackAccel());
    tb.metadata().digestH[0] ^= 1;

    UserClient::Outcome outcome = tb.runDeployment();
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.failure.find("digest"), std::string::npos)
        << outcome.failure;
}

TEST(Attacks, RevokedPlatformRejectedByClient)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    tb.mft().verificationService().revokePlatform("platform-1");

    UserClient::Outcome outcome = tb.runDeployment();
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.failure.find("revoked"), std::string::npos)
        << outcome.failure;
}

TEST(Attacks, OutdatedTcbRejected)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    tb.mft().verificationService().setMinTcbSvn(7);

    UserClient::Outcome outcome = tb.runDeployment();
    EXPECT_FALSE(outcome.ok);
}

TEST(Attacks, HostCannotDriveSecureChannelWithoutLa)
{
    // The OS calls the SM enclave's channel entry point directly with
    // garbage (no established LA session): nothing happens.
    Testbed tb;
    tb.installCl(loopbackAccel());
    EXPECT_TRUE(tb.smApp().channelRequest(Bytes(64, 7)).empty());

    // After a legitimate deployment, replaying an old sealed channel
    // message is also rejected (sequence numbers).
    ASSERT_TRUE(tb.runDeployment().ok);
    EXPECT_TRUE(tb.smApp().channelRequest(Bytes(64, 7)).empty());
}

TEST(Attacks, DmaTamperIsVisibleToDeveloperEncryption)
{
    // §3.1 attack 2 is delegated to the developer's memory encryption;
    // the substrate makes the tampering observable so accel-level
    // tests (test_accel.cpp) can prove AES-CTR+digest catches it.
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    cfg.attackPlan.tamperDma = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    tb.shell().dmaWrite(0, Bytes{0x11, 0x22});
    // The payload was corrupted on its way into device memory.
    EXPECT_NE(tb.device().dram().read(0, 2), (Bytes{0x11, 0x22}));
    // And a read of intact memory is corrupted on its way out.
    tb.device().dram().write(16, Bytes{0x33, 0x44});
    EXPECT_NE(tb.shell().dmaRead(16, 2), (Bytes{0x33, 0x44}));
}

// ---- Motivation: what legacy (unprotected) FaaS leaks ----------------

TEST(LegacyFaas, CleartextFlowLeaksEverything)
{
    // §2.2's baseline FaaS with no TEE: the CL ships in plaintext and
    // register traffic is unprotected. The CSP-controlled shell
    // trivially recovers both the design IP and the runtime data --
    // the motivation for building an FPGA TEE at all.
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());

    // Legacy deployment: the raw bitstream goes through the shell.
    Bytes plainFile = tb.storedBitstream();
    ASSERT_EQ(tb.device().loadCleartextPartial(plainFile),
              fpga::LoadStatus::Ok);

    // 1. Design theft: the shell can parse the plaintext bitstream
    //    and recover the entire netlist (IP piracy).
    bitstream::Bitstream bs = bitstream::Bitstream::fromFile(plainFile);
    netlist::Netlist stolen = bitstream::extractDesign(bs.body);
    EXPECT_NE(stolen.findCell(tb.layout().accelCellPath), nullptr);

    // 2. Data theft: unprotected register writes cross the shell in
    //    plaintext and land in its snoop log verbatim.
    const uint64_t secret = 0xfeedfacecafef00dull;
    tb.shell().registerWrite(pcie::Window::Direct, 0x10, secret);
    bool seen = false;
    for (const auto &txn : tb.maliciousShell()->snoopLog())
        seen |= txn.isWrite && txn.data == secret;
    EXPECT_TRUE(seen) << "legacy FaaS must leak plaintext registers "
                         "(that is the point of this test)";
}

// ---- Why bitstream CONFIDENTIALITY is load-bearing -------------------

TEST(SpliceAttack, PossibleOnPlaintextImpossibleThroughSalus)
{
    // The paper's integrity argument: a successful Key_attest check
    // implies an intact CL *because* (a) partial reconfiguration
    // rewrites the whole partition and (b) the manipulated bitstream
    // is confidential. This test shows (b) is essential: an attacker
    // WITH the manipulated plaintext could splice a trojan around the
    // intact key cells and still pass attestation.
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    ASSERT_TRUE(tb.smApp().reattestCl());

    // --- hypothetical: attacker holds the manipulated PLAINTEXT ----
    // (white-box: rebuild it from config memory, which equals the
    // decrypted manipulated bitstream body)
    tb.device().setReadbackEnabled(true);
    netlist::Netlist manipulated =
        bitstream::extractDesign(tb.device().readback(0));
    tb.device().setReadbackEnabled(false);

    // Splice: keep the SM logic and its key BRAMs (the injected
    // secrets!), replace only the accelerator.
    netlist::Netlist spliced = manipulated;
    netlist::Cell *accel =
        spliced.findCell(tb.layout().accelCellPath);
    ASSERT_NE(accel, nullptr);
    accel->params = bytesFromString("trojan payload");

    bitstream::Compiler compiler(tb.device().model().name);
    auto trojan = compiler.compile(
        spliced, tb.device().model().partitions[0]);

    // Loaded in PLAINTEXT (the hypothetical world without bitstream
    // encryption), the spliced CL passes runtime attestation -- the
    // injected keys came along for the ride.
    ASSERT_EQ(tb.device().loadCleartextPartial(trojan.file),
              fpga::LoadStatus::Ok);
    EXPECT_TRUE(tb.smApp().reattestCl())
        << "splice keeps the RoT, so attestation cannot tell -- this "
           "is exactly why the plaintext must never leave the enclave";

    // --- reality: through Salus the attacker only ever holds the
    // ciphertext, and any modification of it bricks the load.
    TestbedConfig cfg;
    cfg.maliciousShell = true;
    cfg.attackPlan.tamperBitstream = true;
    cfg.attackPlan.tamperOffset = 100;
    Testbed salus(cfg);
    salus.installCl(loopbackAccel());
    EXPECT_FALSE(salus.runDeployment().ok);
}
