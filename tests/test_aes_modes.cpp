/**
 * @file
 * AES-CTR (SP 800-38A), AES-GCM (NIST GCM spec test cases) and
 * AES-CMAC (RFC 4493) known-answer tests plus tamper-detection
 * properties.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/hex.hpp"
#include "crypto/aes_cmac.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/random.hpp"

using namespace salus;
using namespace salus::crypto;

// ---------------------------------------------------------------- CTR

TEST(AesCtrMode, Sp80038aF51)
{
    Bytes key = hexDecode("2b7e151628aed2a6abf7158809cf4f3c");
    Bytes ctr = hexDecode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    Bytes p1 = hexDecode("6bc1bee22e409f96e93d7e117393172a");
    Bytes p2 = hexDecode("ae2d8a571e03ac9c9eb76fac45af8e51");

    AesCtr c(key, ctr);
    EXPECT_EQ(hexEncode(c.crypt(p1)),
              "874d6191b620e3261bef6864990db6ce");
    EXPECT_EQ(hexEncode(c.crypt(p2)),
              "9806f66b7970fdff8617187bb9fffdff");
}

TEST(AesCtrMode, RoundtripArbitraryLengths)
{
    CtrDrbg rng(7);
    Bytes key = rng.bytes(32);
    Bytes iv = rng.bytes(16);
    for (size_t len : {size_t(0), size_t(1), size_t(15), size_t(16),
                       size_t(17), size_t(1000)}) {
        Bytes msg = rng.bytes(len);
        Bytes ct = aesCtrCrypt(key, iv, msg);
        Bytes back = aesCtrCrypt(key, iv, ct);
        EXPECT_EQ(back, msg) << "len=" << len;
    }
}

TEST(AesCtrMode, SeekMatchesSequential)
{
    CtrDrbg rng(8);
    Bytes key = rng.bytes(16);
    Bytes iv = rng.bytes(16);
    Bytes msg = rng.bytes(256);

    Bytes full = aesCtrCrypt(key, iv, msg);

    // Encrypt only blocks 4.. by seeking.
    AesCtr c(key, iv);
    c.seekBlock(4);
    Bytes tail(msg.begin() + 64, msg.end());
    Bytes tailCt = c.crypt(tail);
    EXPECT_EQ(tailCt, Bytes(full.begin() + 64, full.end()));
}

TEST(AesCtrMode, CounterWrapAcrossLowWord)
{
    // Counter close to the 64-bit boundary must carry into the top.
    Bytes key(16, 0x11);
    Bytes iv = hexDecode("00000000000000ffffffffffffffffff");
    Bytes msg(48, 0x00);
    Bytes ct = aesCtrCrypt(key, iv, msg);
    // Three distinct keystream blocks expected.
    EXPECT_NE(Bytes(ct.begin(), ct.begin() + 16),
              Bytes(ct.begin() + 16, ct.begin() + 32));
    EXPECT_NE(Bytes(ct.begin() + 16, ct.begin() + 32),
              Bytes(ct.begin() + 32, ct.end()));
}

TEST(AesCtrMode, RejectsBadCounterSize)
{
    EXPECT_THROW(AesCtr(Bytes(16), Bytes(15)), CryptoError);
}

// ---------------------------------------------------------------- GCM

TEST(AesGcmMode, NistTestCase1EmptyPlaintext)
{
    AesGcm gcm(Bytes(16, 0));
    GcmSealed sealed = gcm.seal(Bytes(12, 0), ByteView(), ByteView());
    EXPECT_TRUE(sealed.ciphertext.empty());
    EXPECT_EQ(hexEncode(sealed.tag),
              "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(AesGcmMode, NistTestCase2SingleZeroBlock)
{
    AesGcm gcm(Bytes(16, 0));
    GcmSealed sealed = gcm.seal(Bytes(12, 0), ByteView(), Bytes(16, 0));
    EXPECT_EQ(hexEncode(sealed.ciphertext),
              "0388dace60b6a392f328c2b971b2fe78");
    EXPECT_EQ(hexEncode(sealed.tag),
              "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(AesGcmMode, RoundtripWithAad)
{
    CtrDrbg rng(9);
    AesGcm gcm(rng.bytes(32));
    Bytes iv = rng.bytes(12);
    Bytes aad = bytesFromString("bitstream-header-v1");
    Bytes msg = rng.bytes(333);

    GcmSealed sealed = gcm.seal(iv, aad, msg);
    auto opened = gcm.open(iv, aad, sealed.ciphertext, sealed.tag);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, msg);
}

TEST(AesGcmMode, DetectsCiphertextTamper)
{
    CtrDrbg rng(10);
    AesGcm gcm(rng.bytes(32));
    Bytes iv = rng.bytes(12);
    Bytes msg = rng.bytes(64);
    GcmSealed sealed = gcm.seal(iv, ByteView(), msg);

    for (size_t bit : {size_t(0), size_t(7), size_t(300), size_t(511)}) {
        Bytes bad = sealed.ciphertext;
        bad[bit / 8] ^= uint8_t(1 << (bit % 8));
        EXPECT_FALSE(gcm.open(iv, ByteView(), bad, sealed.tag));
    }
}

TEST(AesGcmMode, DetectsTagTamper)
{
    CtrDrbg rng(11);
    AesGcm gcm(rng.bytes(16));
    Bytes iv = rng.bytes(12);
    Bytes msg = rng.bytes(32);
    GcmSealed sealed = gcm.seal(iv, ByteView(), msg);

    Bytes badTag = sealed.tag;
    badTag[15] ^= 0x80;
    EXPECT_FALSE(gcm.open(iv, ByteView(), sealed.ciphertext, badTag));
    EXPECT_FALSE(gcm.open(iv, ByteView(), sealed.ciphertext,
                          Bytes(sealed.tag.begin(), sealed.tag.end() - 1)));
}

TEST(AesGcmMode, DetectsAadTamper)
{
    CtrDrbg rng(12);
    AesGcm gcm(rng.bytes(16));
    Bytes iv = rng.bytes(12);
    Bytes msg = rng.bytes(32);
    Bytes aad = bytesFromString("device=u200;partition=rp0");
    GcmSealed sealed = gcm.seal(iv, aad, msg);

    Bytes badAad = bytesFromString("device=u200;partition=rp1");
    EXPECT_FALSE(gcm.open(iv, badAad, sealed.ciphertext, sealed.tag));
    EXPECT_FALSE(
        gcm.open(iv, ByteView(), sealed.ciphertext, sealed.tag));
}

TEST(AesGcmMode, DetectsIvMismatch)
{
    CtrDrbg rng(13);
    AesGcm gcm(rng.bytes(16));
    Bytes iv = rng.bytes(12);
    Bytes msg = rng.bytes(32);
    GcmSealed sealed = gcm.seal(iv, ByteView(), msg);

    Bytes otherIv = iv;
    otherIv[0] ^= 1;
    EXPECT_FALSE(gcm.open(otherIv, ByteView(), sealed.ciphertext,
                          sealed.tag));
}

TEST(AesGcmMode, NonTwelveByteIvSupported)
{
    CtrDrbg rng(14);
    AesGcm gcm(rng.bytes(32));
    Bytes iv = rng.bytes(16); // exercises the GHASH J0 derivation
    Bytes msg = rng.bytes(100);
    GcmSealed sealed = gcm.seal(iv, ByteView(), msg);
    auto opened = gcm.open(iv, ByteView(), sealed.ciphertext, sealed.tag);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, msg);
}

// --------------------------------------------------------------- CMAC

TEST(AesCmacMode, Rfc4493Example1EmptyMessage)
{
    Bytes key = hexDecode("2b7e151628aed2a6abf7158809cf4f3c");
    EXPECT_EQ(hexEncode(aesCmac(key, ByteView())),
              "bb1d6929e95937287fa37d129b756746");
}

TEST(AesCmacMode, Rfc4493Example2SixteenBytes)
{
    Bytes key = hexDecode("2b7e151628aed2a6abf7158809cf4f3c");
    Bytes msg = hexDecode("6bc1bee22e409f96e93d7e117393172a");
    EXPECT_EQ(hexEncode(aesCmac(key, msg)),
              "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(AesCmacMode, Rfc4493Example3FortyBytes)
{
    Bytes key = hexDecode("2b7e151628aed2a6abf7158809cf4f3c");
    Bytes msg = hexDecode(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411");
    EXPECT_EQ(hexEncode(aesCmac(key, msg)),
              "dfa66747de9ae63030ca32611497c827");
}

TEST(AesCmacMode, VerifyAcceptsAndRejects)
{
    Bytes key(16, 0x42);
    Bytes msg = bytesFromString("report body");
    Bytes tag = aesCmac(key, msg);
    EXPECT_TRUE(aesCmacVerify(key, msg, tag));

    Bytes badMsg = bytesFromString("report bodY");
    EXPECT_FALSE(aesCmacVerify(key, badMsg, tag));
    Bytes badTag = tag;
    badTag[0] ^= 1;
    EXPECT_FALSE(aesCmacVerify(key, msg, badTag));
    EXPECT_FALSE(aesCmacVerify(key, msg, ByteView()));
}

TEST(AesCmacMode, LengthExtensionBlocked)
{
    // Appending data must change the MAC (padding is unambiguous).
    Bytes key(16, 0x24);
    Bytes m1 = bytesFromString("abc");
    Bytes m2 = bytesFromString("abc\x80");
    EXPECT_NE(aesCmac(key, m1), aesCmac(key, m2));
}
