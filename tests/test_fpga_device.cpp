/**
 * @file
 * FPGA device-model tests: eFUSE, DNA, encrypted/plain configuration,
 * whole-partition overwrite (paper Observation 2), ICAP readback
 * gating (§5.1.2), and behavioural design instantiation.
 */

#include <gtest/gtest.h>

#include "bitstream/compiler.hpp"
#include "bitstream/encryptor.hpp"
#include "common/errors.hpp"
#include "crypto/random.hpp"
#include "fpga/device.hpp"
#include "pcie/transactions.hpp"
#include "shell/shell.hpp"
#include "sim/cost_model.hpp"

using namespace salus;
using namespace salus::fpga;

namespace {

struct Rig
{
    crypto::CtrDrbg rng{uint64_t(123)};
    DeviceModelInfo model = testModel();
    FpgaDevice device{testModel(), DeviceDna{0x1234567890abcULL}};
    Bytes deviceKey;

    Rig()
    {
        ensureBuiltinIps();
        deviceKey = rng.bytes(32);
        device.fuseKey(deviceKey);
    }

    netlist::Netlist
    loopbackDesign(const std::string &secret = "ssssssssssssssss")
    {
        netlist::Netlist nl("cl");
        netlist::Cell logic;
        logic.path = "cl/loop";
        logic.kind = netlist::CellKind::Logic;
        logic.behaviorId = kIpLoopback;
        logic.resources = {10, 10, 0, 0};
        nl.addCell(logic);
        netlist::Cell bram;
        bram.path = "cl/secret";
        bram.kind = netlist::CellKind::Bram;
        bram.resources = {0, 0, 1, 0};
        bram.init = bytesFromString(secret);
        nl.addCell(bram);
        return nl;
    }

    Bytes
    encryptedBlob(const netlist::Netlist &nl)
    {
        bitstream::Compiler compiler(model.name);
        auto compiled = compiler.compile(nl, model.partitions[0]);
        bitstream::EncryptedHeader header{model.name, 0};
        return bitstream::encryptBitstream(compiled.file, deviceKey,
                                           header, rng);
    }
};

} // namespace

TEST(FpgaDevice, EfuseIsOneShot)
{
    FpgaDevice dev(testModel(), DeviceDna{1});
    EXPECT_FALSE(dev.keyFused());
    Bytes key(32, 7);
    dev.fuseKey(key);
    EXPECT_TRUE(dev.keyFused());
    EXPECT_THROW(dev.fuseKey(key), DeviceError);
    EXPECT_THROW(FpgaDevice(testModel(), DeviceDna{2}).fuseKey(Bytes(16)),
                 DeviceError);
}

TEST(FpgaDevice, DnaMaskedTo57Bits)
{
    FpgaDevice dev(testModel(), DeviceDna{~0ULL});
    EXPECT_EQ(dev.dna().value, (uint64_t(1) << 57) - 1);
    EXPECT_EQ(dev.dna().bytes().size(), 8u);
}

TEST(FpgaDevice, EncryptedLoadHappyPath)
{
    Rig rig;
    Bytes blob = rig.encryptedBlob(rig.loopbackDesign());
    EXPECT_EQ(rig.device.loadEncryptedPartial(blob), LoadStatus::Ok);

    LoadedDesign *design = rig.device.design(0);
    ASSERT_NE(design, nullptr);
    EXPECT_EQ(design->design().findCell("cl/secret")->init,
              bytesFromString("ssssssssssssssss"));
    IpBehavior *loop = design->behaviorAt("cl/loop");
    ASSERT_NE(loop, nullptr);
    loop->writeRegister(0x00, 41);
    loop->writeRegister(0x08, 1);
    EXPECT_EQ(loop->readRegister(0x80), 42u);
}

TEST(FpgaDevice, LoadFailureModes)
{
    Rig rig;
    Bytes blob = rig.encryptedBlob(rig.loopbackDesign());

    // No key fused.
    FpgaDevice bare(testModel(), DeviceDna{5});
    EXPECT_EQ(bare.loadEncryptedPartial(blob), LoadStatus::NoKeyFused);

    // Wrong key (different device).
    FpgaDevice other(testModel(), DeviceDna{6});
    crypto::CtrDrbg rng2(uint64_t(9));
    other.fuseKey(rng2.bytes(32));
    EXPECT_EQ(other.loadEncryptedPartial(blob),
              LoadStatus::DecryptFailed);

    // Tampered ciphertext.
    Bytes tampered = blob;
    tampered[tampered.size() - 5] ^= 1;
    EXPECT_EQ(rig.device.loadEncryptedPartial(tampered),
              LoadStatus::DecryptFailed);

    // Garbage blob.
    EXPECT_EQ(rig.device.loadEncryptedPartial(Bytes(64, 3)),
              LoadStatus::MalformedBitstream);

    // Wrong device model in header.
    bitstream::Compiler compiler("some-other-device");
    auto compiled = compiler.compile(
        rig.loopbackDesign(),
        rig.model.partitions[0]);
    bitstream::EncryptedHeader header{"some-other-device", 0};
    Bytes wrongModel = bitstream::encryptBitstream(
        compiled.file, rig.deviceKey, header, rig.rng);
    EXPECT_EQ(rig.device.loadEncryptedPartial(wrongModel),
              LoadStatus::WrongDeviceModel);
}

TEST(FpgaDevice, CleartextLoadWorksForLegacyFlow)
{
    Rig rig;
    bitstream::Compiler compiler(rig.model.name);
    auto compiled = compiler.compile(rig.loopbackDesign(),
                                     rig.model.partitions[0]);
    EXPECT_EQ(rig.device.loadCleartextPartial(compiled.file),
              LoadStatus::Ok);
    EXPECT_NE(rig.device.design(0), nullptr);
}

TEST(FpgaDevice, PartialReconfigOverwritesWholePartition)
{
    // Observation 2: nothing from tenant A's design survives tenant
    // B's load, even cells B doesn't "use".
    Rig rig;
    ASSERT_EQ(rig.device.loadEncryptedPartial(rig.encryptedBlob(
                  rig.loopbackDesign("AAAAAAAAAAAAAAAA"))),
              LoadStatus::Ok);

    ASSERT_EQ(rig.device.loadEncryptedPartial(rig.encryptedBlob(
                  rig.loopbackDesign("BBBBBBBBBBBBBBBB"))),
              LoadStatus::Ok);

    LoadedDesign *design = rig.device.design(0);
    ASSERT_NE(design, nullptr);
    EXPECT_EQ(design->design().findCell("cl/secret")->init,
              bytesFromString("BBBBBBBBBBBBBBBB"));

    // The old secret is gone from configuration memory entirely.
    rig.device.setReadbackEnabled(true);
    Bytes frames = rig.device.readback(0);
    std::string hay(frames.begin(), frames.end());
    EXPECT_EQ(hay.find("AAAAAAAAAAAAAAAA"), std::string::npos);
    EXPECT_NE(hay.find("BBBBBBBBBBBBBBBB"), std::string::npos);
}

TEST(FpgaDevice, ReadbackGateBlocksConfigScan)
{
    Rig rig;
    ASSERT_EQ(rig.device.loadEncryptedPartial(
                  rig.encryptedBlob(rig.loopbackDesign())),
              LoadStatus::Ok);

    // Salus devices ship with readback off (§5.1.2).
    EXPECT_FALSE(rig.device.readbackEnabled());
    EXPECT_THROW(rig.device.readback(0), DeviceError);

    // A legacy ICAP with readback on exposes the configuration -- the
    // attack surface Salus requires the manufacturer to close.
    rig.device.setReadbackEnabled(true);
    Bytes frames = rig.device.readback(0);
    std::string hay(frames.begin(), frames.end());
    EXPECT_NE(hay.find("ssssssssssssssss"), std::string::npos);
}

TEST(FpgaDevice, ClearPartitionRemovesDesign)
{
    Rig rig;
    ASSERT_EQ(rig.device.loadEncryptedPartial(
                  rig.encryptedBlob(rig.loopbackDesign())),
              LoadStatus::Ok);
    ASSERT_NE(rig.device.design(0), nullptr);
    rig.device.clearPartition(0);
    EXPECT_EQ(rig.device.design(0), nullptr);
    EXPECT_THROW(rig.device.clearPartition(42), DeviceError);
}

TEST(FpgaDevice, UnknownBehaviorMakesDesignUnusable)
{
    Rig rig;
    netlist::Netlist nl("cl");
    netlist::Cell logic;
    logic.path = "cl/mystery";
    logic.kind = netlist::CellKind::Logic;
    logic.behaviorId = 0xdead;
    logic.resources = {1, 1, 0, 0};
    nl.addCell(logic);
    EXPECT_EQ(rig.device.loadEncryptedPartial(rig.encryptedBlob(nl)),
              LoadStatus::DesignUnusable);
    EXPECT_EQ(rig.device.design(0), nullptr);
}

TEST(DeviceDram, BoundsChecked)
{
    DeviceDram dram(1024);
    dram.write(0, Bytes{1, 2, 3});
    EXPECT_EQ(dram.read(0, 3), (Bytes{1, 2, 3}));
    dram.write(1021, Bytes{9, 9, 9});
    EXPECT_THROW(dram.write(1022, Bytes{1, 2, 3}), DeviceError);
    EXPECT_THROW(dram.read(1024, 1), DeviceError);
    EXPECT_THROW(dram.read(0, 1025), DeviceError);
}

TEST(ShellTest, RoutesWindowsAndChargesTime)
{
    Rig rig;
    sim::VirtualClock clock;
    sim::CostModel cost; // defaults
    shell::Shell sh(rig.device, clock, cost);

    ASSERT_EQ(sh.deployBitstream(rig.encryptedBlob(rig.loopbackDesign())),
              LoadStatus::Ok);
    EXPECT_GT(clock.now(), 0u);

    // Loopback design has no SM logic; the direct window reaches it,
    // the SM window reads as zero. Direct-window ops cost MMIO
    // latency; SM-window ops go through the driver path.
    sim::Nanos before = clock.now();
    sh.registerWrite(pcie::Window::Direct, 0x00, 7);
    sh.registerWrite(pcie::Window::Direct, 0x08, 8);
    EXPECT_EQ(sh.registerRead(pcie::Window::Direct, 0x80), 15u);
    EXPECT_EQ(sh.registerRead(pcie::Window::SmSecure, 0x80), 0u);
    EXPECT_EQ(clock.now() - before, 3 * cost.mmioLatency + cost.pcieRtt);

    // DMA reaches device DRAM.
    sh.dmaWrite(64, Bytes{5, 6, 7});
    EXPECT_EQ(sh.dmaRead(64, 3), (Bytes{5, 6, 7}));
}

TEST(FpgaDevice, AbortedEncryptedLoadFailsSafe)
{
    // A tampered encrypted load disturbs the partition before the GCM
    // tag check completes (streaming decryption): the device must end
    // up with NO design loaded, never with the previous one still
    // running (fail-safe, not fail-open).
    Rig rig;
    ASSERT_EQ(rig.device.loadEncryptedPartial(rig.encryptedBlob(
                  rig.loopbackDesign("AAAAAAAAAAAAAAAA"))),
              LoadStatus::Ok);
    ASSERT_NE(rig.device.design(0), nullptr);

    Bytes tampered = rig.encryptedBlob(
        rig.loopbackDesign("BBBBBBBBBBBBBBBB"));
    tampered[tampered.size() / 2] ^= 1;
    ASSERT_EQ(rig.device.loadEncryptedPartial(tampered),
              LoadStatus::DecryptFailed);

    EXPECT_EQ(rig.device.design(0), nullptr)
        << "previous design must not survive an aborted load";

    // And the partition's configuration memory really is blank.
    rig.device.setReadbackEnabled(true);
    Bytes frames = rig.device.readback(0);
    for (uint8_t b : frames)
        ASSERT_EQ(b, 0);
}
