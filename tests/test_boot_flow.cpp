/**
 * @file
 * End-to-end integration tests of the Salus secure boot flow
 * (paper Fig. 3 steps ①-⑨) on an honest platform, plus the secure
 * register channel (§4.5) and the virtual-time phase accounting.
 */

#include <gtest/gtest.h>

#include "bitstream/compiler.hpp"
#include "common/errors.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {1000, 2000, 4, 8};
    return accel;
}

} // namespace

TEST(BootFlow, HappyPathAttestsEverything)
{
    Testbed tb;
    tb.installCl(loopbackAccel());

    UserClient::Outcome outcome = tb.runDeployment();
    ASSERT_TRUE(outcome.ok) << outcome.failure;
    EXPECT_EQ(outcome.dataKey.size(), 32u);

    EXPECT_TRUE(tb.smApp().bootStatus().deployed);
    EXPECT_TRUE(tb.smApp().bootStatus().attested);
    EXPECT_TRUE(tb.smApp().haveDeviceKey());
    EXPECT_TRUE(tb.userApp().hasDataKey());
    EXPECT_EQ(tb.userApp().dataKey(), outcome.dataKey);

    // The CL really is loaded and usable.
    EXPECT_NE(tb.device().design(0), nullptr);
}

TEST(BootFlow, SecureRegisterChannelReachesAccelerator)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    // Write two scratch registers through the protected channel and
    // read back their sum from the loopback IP's adder register.
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 40));
    EXPECT_TRUE(tb.userApp().secureWrite(0x08, 2));
    auto sum = tb.userApp().secureRead(0x80);
    ASSERT_TRUE(sum.has_value());
    EXPECT_EQ(*sum, 42u);
}

TEST(BootFlow, DataKeyPushedThroughSecureChannel)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    ASSERT_TRUE(tb.userApp().pushDataKeyToCl(0x00));
    // The loopback accel stored the 4 words; confirm via secure reads.
    const Bytes &key = tb.userApp().dataKey();
    for (int i = 0; i < 4; ++i) {
        auto word = tb.userApp().secureRead(8 * i);
        ASSERT_TRUE(word.has_value());
        EXPECT_EQ(*word, loadLe64(key.data() + 8 * i)) << "word " << i;
    }
}

TEST(BootFlow, DirectWindowBypassesProtection)
{
    // §4.5: Salus also provides a direct unsecure interface; the
    // developer decides what runs over it.
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    tb.shell().registerWrite(pcie::Window::Direct, 0x00, 5);
    EXPECT_EQ(tb.shell().registerRead(pcie::Window::Direct, 0x00), 5u);
}

TEST(BootFlow, PhaseAccountingCoversFigure9Phases)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    const char *expected[] = {
        phases::kUserRa,          phases::kLocalAttest,
        phases::kDeviceKeyDist,   phases::kBitstreamVerifEnc,
        phases::kBitstreamManip,  phases::kClDeployment,
        phases::kClAuth,
    };
    for (const char *phase : expected) {
        EXPECT_GT(tb.clock().totalFor(phase), 0u)
            << "no time attributed to " << phase;
    }
    // Manipulation dominates CL deployment-side work (paper: 73.2% of
    // the full boot; with a test-scale bitstream the network phases
    // shrink relative to it much less, so just require dominance over
    // verification+encryption).
    EXPECT_GT(tb.clock().totalFor(phases::kBitstreamManip),
              tb.clock().totalFor(phases::kBitstreamVerifEnc));
}

TEST(BootFlow, FreshRotPerDeployment)
{
    // Two deployments of the SAME bitstream must inject different
    // attestation keys (per-deployment RoT, paper §3.2/§4.2).
    Testbed tb1(TestbedConfig{});
    TestbedConfig cfg2;
    cfg2.rngSeed = 2;
    Testbed tb2(cfg2);
    tb1.installCl(loopbackAccel());
    tb2.installCl(loopbackAccel());
    ASSERT_TRUE(tb1.runDeployment().ok);
    ASSERT_TRUE(tb2.runDeployment().ok);

    // Extract the injected keys from configuration memory (white-box:
    // enable readback on our own devices post-hoc).
    auto extractKey = [](Testbed &tb) {
        tb.device().setReadbackEnabled(true);
        Bytes frames = tb.device().readback(0);
        netlist::Netlist design = bitstream::extractDesign(frames);
        return design.findCell(tb.layout().keyAttestPath)->init;
    };
    Bytes k1 = extractKey(tb1);
    Bytes k2 = extractKey(tb2);
    EXPECT_EQ(k1.size(), kKeyAttestSize);
    EXPECT_NE(k1, k2);
    EXPECT_NE(k1, Bytes(kKeyAttestSize, 0)); // actually injected
}

TEST(BootFlow, SecondDeploymentOnSameDeviceWorks)
{
    // Multi-tenant rollover: a second runDeployment() reboots the CL
    // with fresh secrets on the same device.
    Testbed tb;
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    ASSERT_TRUE(tb.userApp().secureWrite(0x00, 1));

    UserClient::Outcome second = tb.runDeployment();
    ASSERT_TRUE(second.ok) << second.failure;
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 2));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 2u);
}

TEST(BootFlow, UtilizationIncludesSmLogic)
{
    Testbed tb;
    tb.installCl(loopbackAccel());
    netlist::ResourceVector total = tb.utilization();
    netlist::ResourceVector sm = smLogicResources();
    EXPECT_GE(total.luts, sm.luts + 1000);
    EXPECT_GE(total.brams, sm.brams); // includes the 3 secret BRAMs
}

TEST(BootFlow, RequiresInstalledCl)
{
    Testbed tb;
    EXPECT_THROW(tb.runDeployment(), SalusError);
}
