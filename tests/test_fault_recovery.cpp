/**
 * @file
 * Tests for the deterministic fault-injection fabric and the
 * self-healing deployment built on it: seeded fault plans replay
 * bit-for-bit, transport faults are retried with backoff charged to
 * the virtual clock, and security rejections (tampering) are never
 * retried into acceptance.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

std::unique_ptr<core::Testbed>
makeTestbed(core::TestbedConfig cfg = {})
{
    fpga::ensureBuiltinIps();
    core::SmLogic::registerIp();
    auto tb = std::make_unique<core::Testbed>(std::move(cfg));
    tb->installCl(loopbackAccel());
    return tb;
}

/**
 * The acceptance-criterion plan: >= 10% message loss on every link,
 * 10% corruption on the manufacturer's key responses, one failed
 * bitstream load and one configuration upset. Corruption is scoped to
 * the key-response link because corrupting *authenticated* payloads
 * (quotes, MACed registers) is indistinguishable from tampering and
 * correctly fails closed — that property has its own tests below.
 */
sim::FaultPlan
acceptancePlan(uint64_t seed)
{
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.add(sim::FaultRule::dropRpc(0.10));
    plan.add(sim::FaultRule::corruptRpc(0.10).on(
        core::endpoints::kManufacturer, core::endpoints::kCloudHost,
        "keyRequest"));
    plan.add(sim::FaultRule::bitstreamLoadFail(1));
    plan.add(sim::FaultRule::seu(0, 2 * 64 * 8 + 7));
    return plan;
}

} // namespace

// ------------------------------------------------- end-to-end healing

TEST(FaultRecovery, DeploymentHealsThroughAcceptancePlan)
{
    core::TestbedConfig cfg;
    cfg.faultPlan = acceptancePlan(7);
    auto tb = makeTestbed(std::move(cfg));

    auto out = tb->runDeployment();
    ASSERT_TRUE(out.ok) << out.failure;
    EXPECT_GE(out.attempts, 1);

    const sim::FaultStats &stats = tb->faultInjector().stats();
    EXPECT_EQ(stats.loadFailures, 1u);
    EXPECT_EQ(stats.seusInjected, 1u);
    EXPECT_GE(stats.rpcDropped, 1u);
    EXPECT_GE(stats.total(), 3u);

    // The healed platform is fully functional.
    EXPECT_TRUE(tb->userApp().secureWrite(0x00, 42));
    EXPECT_EQ(tb->userApp().secureRead(0x00), 42u);
}

TEST(FaultRecovery, SamePlanFailsClosedWithoutRetries)
{
    core::TestbedConfig cfg;
    cfg.faultPlan = acceptancePlan(7);
    cfg.retry = net::RetryPolicy::none();
    auto tb = makeTestbed(std::move(cfg));

    auto out = tb->runDeployment();
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.attempts, 1);
    EXPECT_TRUE(out.dataKey.empty());
    EXPECT_NE(out.failureClass, net::FailureClass::None);
}

TEST(FaultRecovery, DeterministicReplay)
{
    auto run = [] {
        core::TestbedConfig cfg;
        cfg.faultPlan = acceptancePlan(7);
        auto tb = makeTestbed(std::move(cfg));
        auto out = tb->runDeployment();
        return std::tuple{out.ok, out.attempts, out.failure,
                          tb->faultInjector().journal(),
                          tb->faultInjector().stats().total(),
                          tb->clock().now()};
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(std::get<0>(a), std::get<0>(b));
    EXPECT_EQ(std::get<1>(a), std::get<1>(b));
    EXPECT_EQ(std::get<2>(a), std::get<2>(b));
    // Bit-for-bit identical fault sequence, virtual time included.
    EXPECT_EQ(std::get<3>(a), std::get<3>(b));
    EXPECT_EQ(std::get<4>(a), std::get<4>(b));
    EXPECT_EQ(std::get<5>(a), std::get<5>(b));

    ASSERT_FALSE(std::get<3>(a).empty());
    for (const std::string &entry : std::get<3>(a))
        EXPECT_EQ(entry.rfind("t=", 0), 0u) << entry;
}

// ----------------------------------------------- bitstream load / SEU

TEST(FaultRecovery, LoadFailureRetriedToSuccess)
{
    core::TestbedConfig cfg;
    cfg.faultPlan.add(sim::FaultRule::bitstreamLoadFail(1));
    auto tb = makeTestbed(std::move(cfg));

    auto out = tb->runDeployment();
    ASSERT_TRUE(out.ok) << out.failure;
    EXPECT_EQ(tb->faultInjector().stats().loadFailures, 1u);
    EXPECT_TRUE(tb->smApp().reattestCl());
}

TEST(FaultRecovery, LoadFailureFailsClosedWithoutRetries)
{
    core::TestbedConfig cfg;
    cfg.faultPlan.add(sim::FaultRule::bitstreamLoadFail(1));
    cfg.retry = net::RetryPolicy::none();
    auto tb = makeTestbed(std::move(cfg));

    auto out = tb->runDeployment();
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.failure.find("DecryptFailed"), std::string::npos)
        << out.failure;
}

TEST(FaultRecovery, InjectedSeuIsScrubbable)
{
    core::TestbedConfig cfg;
    cfg.faultPlan.add(sim::FaultRule::seu(0, 5 * 64 * 8 + 3));
    auto tb = makeTestbed(std::move(cfg));

    ASSERT_TRUE(tb->runDeployment().ok);
    EXPECT_EQ(tb->faultInjector().stats().seusInjected, 1u);

    // The upset landed in configuration memory; frame ECC finds and
    // fixes it, and the shell charges the scrub pass to the clock.
    sim::Nanos before = tb->clock().now();
    auto report = tb->shell().scrubPartition();
    EXPECT_EQ(report.corrected, 1u);
    EXPECT_EQ(report.uncorrectable, 0u);
    EXPECT_GT(tb->clock().now(), before);
}

TEST(FaultRecovery, UncorrectableSeuHealedByRedeployment)
{
    auto tb = makeTestbed();
    ASSERT_TRUE(tb->runDeployment().ok);

    // Two upsets in one frame defeat the ECC: the design is taken
    // down and re-attestation fails...
    tb->device().injectSeu(0, 100);
    tb->device().injectSeu(0, 200);
    EXPECT_EQ(tb->device().scrub(0).uncorrectable, 1u);
    EXPECT_FALSE(tb->smApp().reattestCl());

    // ...but the next deployment re-encrypts and reloads the
    // bitstream, restoring service with fresh session secrets.
    auto healed = tb->runDeployment();
    ASSERT_TRUE(healed.ok) << healed.failure;
    EXPECT_TRUE(tb->smApp().reattestCl());
    EXPECT_TRUE(tb->userApp().secureWrite(0x08, 9));
    EXPECT_EQ(tb->userApp().secureRead(0x08), 9u);
}

// ------------------------------------------- secure register channel

TEST(FaultRecovery, LostRekeyStatusConverges)
{
    auto tb = makeTestbed();
    ASSERT_TRUE(tb->runDeployment().ok);
    core::UserEnclaveApp &user = tb->userApp();

    // The fabric rolls its keys but the completion read is lost: the
    // host cannot know whether the roll happened.
    tb->faultInjector().arm(
        sim::FaultRule::regFault(1.0).match("read").times(1));
    EXPECT_FALSE(user.rekeySession());

    // The next secure op is rejected under the old keys; the channel
    // probes the pending rolled keys and converges on them.
    EXPECT_TRUE(user.secureWrite(0x10, 77));
    EXPECT_EQ(user.secureRead(0x10), 77u);

    // Subsequent re-keys start from the converged state.
    EXPECT_TRUE(user.rekeySession());
    EXPECT_TRUE(user.secureWrite(0x10, 78));
    EXPECT_EQ(user.secureRead(0x10), 78u);
}

TEST(FaultRecovery, LostRegisterWriteRetriedWithFreshCounter)
{
    auto tb = makeTestbed();
    ASSERT_TRUE(tb->runDeployment().ok);
    auto &sh = tb->shell();

    uint64_t rejBefore = sh.registerRead(pcie::Window::SmSecure,
                                         core::kSmRegStatRegOpRejected);

    // One posted write vanishes on the bus: the fabric sees a garbled
    // request and rejects it WITHOUT advancing its freshness counter,
    // so the resealed retry (fresh counter, fresh MAC) goes through.
    tb->faultInjector().arm(
        sim::FaultRule::regFault(1.0).match("write").times(1));
    EXPECT_TRUE(tb->userApp().secureWrite(0x18, 5));
    EXPECT_EQ(tb->userApp().secureRead(0x18), 5u);

    EXPECT_GE(tb->faultInjector().stats().regFaults, 1u);
    EXPECT_GT(sh.registerRead(pcie::Window::SmSecure,
                              core::kSmRegStatRegOpRejected),
              rejBefore);
}

TEST(FaultRecovery, TamperingIsNeverRetriedIntoAcceptance)
{
    core::TestbedConfig cfg;
    cfg.maliciousShell = true; // honest plan until we arm it
    auto tb = makeTestbed(std::move(cfg));
    ASSERT_TRUE(tb->runDeployment().ok);
    auto &sh = tb->shell();

    uint64_t rejBefore = sh.registerRead(pcie::Window::SmSecure,
                                         core::kSmRegStatRegOpRejected);

    // Persistent man-in-the-middle on the secure register window:
    // every bounded retry is rejected; tampering never becomes an
    // accepted operation no matter how often it is retried.
    tb->maliciousShell()->plan().smWindowDataTamperMask = 0xff;
    EXPECT_FALSE(tb->userApp().secureWrite(0x20, 13));
    EXPECT_GT(sh.registerRead(pcie::Window::SmSecure,
                              core::kSmRegStatRegOpRejected),
              rejBefore);

    // Once the interference stops, the same session recovers (the
    // rejected counters were never consumed by the fabric).
    tb->maliciousShell()->plan().smWindowDataTamperMask = 0;
    EXPECT_TRUE(tb->userApp().secureWrite(0x20, 13));
    EXPECT_EQ(tb->userApp().secureRead(0x20), 13u);
}

// -------------------------------------------------- network substrate

namespace {

struct NetRig
{
    sim::VirtualClock clock;
    sim::CostModel cost;
    net::Network net{clock, cost};
    std::unique_ptr<sim::FaultInjector> inj;
    int handled = 0;
    Bytes lastSeen;

    explicit NetRig(sim::FaultPlan plan)
    {
        net.addEndpoint("a");
        net.addEndpoint("b");
        net.link("a", "b", sim::LinkKind::Wan);
        net.on("b", "ping", [this](ByteView req) {
            ++handled;
            lastSeen.assign(req.begin(), req.end());
            return Bytes(req.begin(), req.end());
        });
        inj = std::make_unique<sim::FaultInjector>(std::move(plan),
                                                   clock);
        net.setFaultInjector(inj.get());
    }
};

} // namespace

TEST(NetFaults, DropCarriesStructuredContext)
{
    sim::FaultPlan plan;
    plan.add(sim::FaultRule::dropRpc(1.0).times(1));
    NetRig rig(std::move(plan));

    Bytes req{1, 2, 3};
    try {
        rig.net.call("a", "b", "ping", req);
        FAIL() << "drop did not surface";
    } catch (const NetError &e) {
        EXPECT_EQ(e.context().from, "a");
        EXPECT_EQ(e.context().to, "b");
        EXPECT_EQ(e.context().method, "ping");
        EXPECT_NE(std::string(e.what()).find("a->b"),
                  std::string::npos);
    }
    EXPECT_EQ(rig.handled, 0);
    // The rule is exhausted; the link works again.
    EXPECT_EQ(rig.net.call("a", "b", "ping", req), req);
}

TEST(NetFaults, UnknownEndpointErrorNamesTheLink)
{
    NetRig rig(sim::FaultPlan{});
    try {
        rig.net.call("a", "nowhere", "ping", Bytes{});
        FAIL() << "missing endpoint accepted";
    } catch (const NetError &e) {
        EXPECT_EQ(e.context().to, "nowhere");
        EXPECT_EQ(e.context().method, "ping");
    }
}

TEST(NetFaults, CallWithRetryRecoversAndChargesBackoff)
{
    sim::FaultPlan plan;
    plan.add(sim::FaultRule::dropRpc(1.0).times(2));
    NetRig rig(std::move(plan));

    auto out = rig.net.callWithRetry("a", "b", "ping", Bytes{9},
                                     net::RetryPolicy::standard());
    ASSERT_TRUE(out.ok()) << out.error;
    EXPECT_EQ(out.attempts, 3);
    EXPECT_EQ(out.response, Bytes{9});
    EXPECT_GT(rig.clock.totalFor(net::kRetryBackoffPhase), 0u);
}

TEST(NetFaults, ExhaustedRetriesReportLastContext)
{
    sim::FaultPlan plan;
    plan.add(sim::FaultRule::dropRpc(1.0));
    NetRig rig(std::move(plan));

    net::RetryPolicy policy = net::RetryPolicy::standard();
    bool exhaustedHookFired = false;
    policy.onExhausted = [&](const ErrorContext &ctx) {
        exhaustedHookFired = true;
        EXPECT_EQ(ctx.attempt, policy.maxAttempts);
    };
    auto out = rig.net.callWithRetry("a", "b", "ping", Bytes{1},
                                     policy);
    EXPECT_FALSE(out.ok());
    // A bounded schedule exhausted by transport faults is PERSISTENT:
    // the caller must stop hammering and let the fleet supervisor
    // decide (failover, quarantine).
    EXPECT_EQ(out.failure, net::FailureClass::Persistent);
    EXPECT_TRUE(exhaustedHookFired);
    EXPECT_EQ(out.attempts, policy.maxAttempts);
    EXPECT_EQ(out.context.attempt, policy.maxAttempts);
    EXPECT_NE(out.error.find("attempts"), std::string::npos);
}

TEST(NetFaults, DeadlineSurfacesAsTimeout)
{
    sim::FaultPlan plan;
    plan.add(sim::FaultRule::delayRpc(1.0, 10 * sim::kSec));
    NetRig rig(std::move(plan));

    EXPECT_THROW(rig.net.call("a", "b", "ping", Bytes{1}, "",
                              1 * sim::kSec),
                 TimeoutError);
    // TimeoutError is-a NetError so legacy catch sites keep working.
    // With retries enabled the exhausted schedule reclassifies to
    // Persistent; the timeout itself stays visible in the message.
    net::RetryPolicy policy = net::RetryPolicy::standard();
    policy.deadline = 1 * sim::kSec;
    auto out = rig.net.callWithRetry("a", "b", "ping", Bytes{1},
                                     policy);
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.failure, net::FailureClass::Persistent);
    EXPECT_NE(out.error.find("exceeded deadline"), std::string::npos);

    // Without retries (single attempt) the class is untouched.
    net::RetryPolicy once = net::RetryPolicy::none();
    once.deadline = 1 * sim::kSec;
    auto single = rig.net.callWithRetry("a", "b", "ping", Bytes{1},
                                        once);
    EXPECT_FALSE(single.ok());
    EXPECT_EQ(single.failure, net::FailureClass::Timeout);
}

TEST(NetFaults, DuplicateDeliversPayloadTwice)
{
    sim::FaultPlan plan;
    plan.add(sim::FaultRule::duplicateRpc(1.0).times(1));
    NetRig rig(std::move(plan));

    EXPECT_EQ(rig.net.call("a", "b", "ping", Bytes{4}), Bytes{4});
    EXPECT_EQ(rig.handled, 2);
    EXPECT_EQ(rig.inj->stats().rpcDuplicated, 1u);
}

TEST(NetFaults, ReorderedMessageArrivesStaleBeforeTheNext)
{
    sim::FaultPlan plan;
    plan.add(sim::FaultRule::reorderRpc(1.0).times(1));
    NetRig rig(std::move(plan));

    // The held message looks like a loss to its sender...
    EXPECT_THROW(rig.net.call("a", "b", "ping", Bytes{1}), NetError);
    EXPECT_EQ(rig.handled, 0);

    // ...and is delivered stale ahead of the next call: the receiver
    // sees the old payload first, then the new one.
    EXPECT_EQ(rig.net.call("a", "b", "ping", Bytes{2}), Bytes{2});
    EXPECT_EQ(rig.handled, 2);
    EXPECT_EQ(rig.inj->stats().rpcReordered, 1u);
}

TEST(NetFaults, CorruptionFlipsExactlyTheConfiguredMask)
{
    sim::FaultPlan plan;
    plan.add(sim::FaultRule::corruptRpc(1.0, 0x20).match("ping").times(1));
    NetRig rig(std::move(plan));

    Bytes original{0, 0, 0, 0, 0, 0};
    rig.net.call("a", "b", "ping", original);
    ASSERT_EQ(rig.lastSeen.size(), original.size());
    uint8_t delta = 0;
    for (size_t i = 0; i < original.size(); ++i)
        delta ^= uint8_t(rig.lastSeen[i] ^ original[i]);
    EXPECT_EQ(delta, 0x20);
    EXPECT_EQ(rig.inj->stats().rpcCorrupted, 1u);
}

// ------------------------------------------------------ retry policy

TEST(RetryPolicy, BackoffDeterministicAndBounded)
{
    net::RetryPolicy p = net::RetryPolicy::standard();
    EXPECT_EQ(p.backoffBefore(1), 0u);
    for (int attempt = 2; attempt <= 10; ++attempt) {
        sim::Nanos a = p.backoffBefore(attempt);
        EXPECT_EQ(a, p.backoffBefore(attempt)) << attempt;
        EXPECT_GE(a, sim::Nanos(double(p.initialBackoff) *
                                (1.0 - p.jitterFraction)));
        EXPECT_LE(a, sim::Nanos(double(p.maxBackoff) *
                                (1.0 + p.jitterFraction)));
    }
    // Jitter decorrelates the attempts of different sessions.
    net::RetryPolicy q = p;
    q.jitterSeed = p.jitterSeed + 1;
    EXPECT_NE(p.backoffBefore(2), q.backoffBefore(2));

    EXPECT_FALSE(net::RetryPolicy::none().enabled());
    EXPECT_TRUE(p.enabled());
}

TEST(RetryPolicy, ErrorContextDescribesTheSite)
{
    ErrorContext ctx{"user", "cloud", "raRequest", 3};
    std::string d = ctx.describe();
    EXPECT_NE(d.find("user->cloud"), std::string::npos);
    EXPECT_NE(d.find("raRequest"), std::string::npos);
    EXPECT_TRUE(ErrorContext{}.empty());
    EXPECT_FALSE(ctx.empty());
}
