/**
 * @file
 * Tests for common utilities: hex codec, byte helpers, binary serde.
 */

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/hex.hpp"
#include "common/serde.hpp"

using namespace salus;

TEST(Hex, RoundtripAndCase)
{
    Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
    EXPECT_EQ(hexEncode(data), "0001abff10");
    EXPECT_EQ(hexDecode("0001ABff10"), data);
    EXPECT_EQ(hexDecode("00 01 ab ff 10"), data);
    EXPECT_EQ(hexDecode(""), Bytes());
}

TEST(Hex, RejectsMalformed)
{
    EXPECT_THROW(hexDecode("0g"), std::invalid_argument);
    EXPECT_THROW(hexDecode("abc"), std::invalid_argument);
}

TEST(BytesUtil, ConcatSliceXor)
{
    Bytes a = {1, 2}, b = {3}, c = {};
    EXPECT_EQ(concatBytes({a, b, c}), (Bytes{1, 2, 3}));

    Bytes big = {10, 20, 30, 40};
    EXPECT_EQ(sliceBytes(big, 1, 2), (Bytes{20, 30}));
    EXPECT_EQ(sliceBytes(big, 4, 0), Bytes());
    EXPECT_THROW(sliceBytes(big, 3, 2), std::out_of_range);
    EXPECT_THROW(sliceBytes(big, 5, 0), std::out_of_range);

    Bytes x = {0xff, 0x0f};
    xorInto(x, Bytes{0x0f, 0x0f});
    EXPECT_EQ(x, (Bytes{0xf0, 0x00}));
    EXPECT_THROW(xorInto(x, Bytes{1}), std::invalid_argument);
}

TEST(BytesUtil, EndianHelpers)
{
    uint8_t buf[8];
    storeBe32(buf, 0x01020304);
    EXPECT_EQ(loadBe32(buf), 0x01020304u);
    EXPECT_EQ(buf[0], 0x01);

    storeLe32(buf, 0x01020304);
    EXPECT_EQ(loadLe32(buf), 0x01020304u);
    EXPECT_EQ(buf[0], 0x04);

    storeBe64(buf, 0x0102030405060708ULL);
    EXPECT_EQ(loadBe64(buf), 0x0102030405060708ULL);
    storeLe64(buf, 0x0102030405060708ULL);
    EXPECT_EQ(loadLe64(buf), 0x0102030405060708ULL);
}

TEST(BytesUtil, SecureZero)
{
    Bytes b = {1, 2, 3};
    secureZero(b);
    EXPECT_EQ(b, (Bytes{0, 0, 0}));
}

TEST(BytesUtil, StringConversion)
{
    Bytes b = bytesFromString("hi");
    EXPECT_EQ(b, (Bytes{'h', 'i'}));
    EXPECT_EQ(stringFromBytes(b), "hi");
}

TEST(Serde, WriterReaderRoundtrip)
{
    BinaryWriter w;
    w.writeU8(0xab);
    w.writeU16(0x1234);
    w.writeU32(0xdeadbeef);
    w.writeU64(0x0102030405060708ULL);
    w.writeBytes(Bytes{9, 8, 7});
    w.writeString("salus");
    w.writeRaw(Bytes{0x55});

    BinaryReader r(w.data());
    EXPECT_EQ(r.readU8(), 0xab);
    EXPECT_EQ(r.readU16(), 0x1234);
    EXPECT_EQ(r.readU32(), 0xdeadbeefu);
    EXPECT_EQ(r.readU64(), 0x0102030405060708ULL);
    EXPECT_EQ(r.readBytes(), (Bytes{9, 8, 7}));
    EXPECT_EQ(r.readString(), "salus");
    EXPECT_EQ(r.readRaw(1), Bytes{0x55});
    EXPECT_TRUE(r.atEnd());
}

TEST(Serde, TruncationDetected)
{
    BinaryWriter w;
    w.writeU32(7);
    BinaryReader r(w.data());
    EXPECT_EQ(r.readU32(), 7u);
    EXPECT_THROW(r.readU8(), SerdeError);
}

TEST(Serde, HostileLengthPrefixRejected)
{
    // A length prefix larger than the remaining buffer must throw,
    // not allocate or overread.
    BinaryWriter w;
    w.writeU32(0xffffffffu);
    w.writeRaw(Bytes{1, 2, 3});
    BinaryReader r(w.data());
    EXPECT_THROW(r.readBytes(), SerdeError);

    BinaryReader r2(w.data());
    EXPECT_THROW(r2.readString(), SerdeError);
}

TEST(Serde, EmptyContainersRoundtrip)
{
    BinaryWriter w;
    w.writeBytes(ByteView());
    w.writeString("");
    BinaryReader r(w.data());
    EXPECT_EQ(r.readBytes(), Bytes());
    EXPECT_EQ(r.readString(), "");
    EXPECT_TRUE(r.atEnd());
}
