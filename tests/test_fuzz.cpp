/**
 * @file
 * Robustness/property sweeps: every parser and protocol endpoint that
 * consumes attacker-controlled bytes is fed randomized corruptions and
 * must fail *cleanly* (typed error or rejection — never a crash, hang
 * or false accept). Seeded DRBG keeps every run reproducible.
 */

#include <gtest/gtest.h>

#include <set>

#include "bitstream/compiler.hpp"
#include "bitstream/encryptor.hpp"
#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/backend.hpp"
#include "crypto/random.hpp"
#include "crypto/sha256.hpp"
#include "manufacturer/manufacturer.hpp"
#include "salus/broker.hpp"
#include "salus/dma_channel.hpp"
#include "salus/messages.hpp"
#include "salus/scenario.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"
#include "tee/local_attest.hpp"
#include "tee/quote.hpp"

using namespace salus;

namespace {

/** Flips 1-4 random bits/bytes of a buffer. */
Bytes
corrupt(ByteView data, crypto::CtrDrbg &rng)
{
    Bytes out(data.begin(), data.end());
    if (out.empty())
        return out;
    size_t edits = 1 + rng.below(4);
    for (size_t i = 0; i < edits; ++i)
        out[rng.below(out.size())] ^= uint8_t(1 + rng.below(255));
    return out;
}

} // namespace

TEST(Fuzz, BitstreamFileParserNeverAcceptsCorruption)
{
    crypto::CtrDrbg rng(uint64_t(1001));
    netlist::Netlist design("top");
    netlist::Cell cell;
    cell.path = "top/x";
    cell.kind = netlist::CellKind::Bram;
    cell.resources = {0, 0, 1, 0};
    cell.init = rng.bytes(32);
    design.addCell(cell);

    bitstream::PartitionGeometry g;
    g.frameCount = 64;
    g.frameSize = 64;
    g.capacity = {100, 100, 10, 10};
    bitstream::Compiler compiler("fuzz-dev");
    Bytes valid = compiler.compile(design, g).file;

    for (int i = 0; i < 300; ++i) {
        Bytes bad = corrupt(valid, rng);
        if (bad == valid)
            continue;
        EXPECT_THROW(bitstream::Bitstream::fromFile(bad),
                     BitstreamError)
            << "iteration " << i;
    }
    // Truncations at every length class.
    for (size_t len : {size_t(0), size_t(3), size_t(17),
                       valid.size() / 2, valid.size() - 1}) {
        EXPECT_THROW(bitstream::Bitstream::fromFile(
                         ByteView(valid.data(), len)),
                     BitstreamError);
    }
    // The untouched file still parses (sanity).
    EXPECT_NO_THROW(bitstream::Bitstream::fromFile(valid));
}

TEST(Fuzz, EncryptedBitstreamNeverDecryptsWhenCorrupted)
{
    crypto::CtrDrbg rng(uint64_t(1002));
    Bytes key = rng.bytes(32);
    Bytes payload = rng.bytes(4096);
    Bytes blob = bitstream::encryptBitstream(
        payload, key, bitstream::EncryptedHeader{"dev", 0}, rng);

    for (int i = 0; i < 300; ++i) {
        Bytes bad = corrupt(blob, rng);
        if (bad == blob)
            continue;
        std::optional<Bytes> opened;
        try {
            opened = bitstream::decryptBitstream(bad, key);
        } catch (const SalusError &) {
            continue; // clean failure
        }
        EXPECT_FALSE(opened.has_value()) << "iteration " << i;
    }
    // Random noise of assorted sizes.
    for (size_t len : {size_t(0), size_t(1), size_t(16), size_t(333)}) {
        EXPECT_FALSE(
            bitstream::decryptBitstream(rng.bytes(len), key)
                .has_value());
    }
}

TEST(Fuzz, QuoteVerifierRejectsAllCorruptions)
{
    crypto::CtrDrbg rng(uint64_t(1003));
    manufacturer::Manufacturer mft(rng);
    tee::TeePlatform platform("p", rng);
    mft.provisionPlatform(platform);

    struct E : tee::Enclave
    {
        using tee::Enclave::createQuote;
        using tee::Enclave::Enclave;
    } enclave(platform, tee::EnclaveImage{"e", "s", 1,
                                          bytesFromString("code")});

    Bytes validWire = enclave.createQuote(Bytes(16, 1)).serialize();
    ASSERT_TRUE(mft.verificationService()
                    .verify(tee::Quote::deserialize(validWire))
                    .ok);

    for (int i = 0; i < 300; ++i) {
        Bytes bad = corrupt(validWire, rng);
        if (bad == validWire)
            continue;
        try {
            tee::Quote q = tee::Quote::deserialize(bad);
            EXPECT_FALSE(mft.verificationService().verify(q).ok)
                << "iteration " << i;
        } catch (const SalusError &) {
            // malformed wire: clean typed failure
        }
    }
}

TEST(Fuzz, KeyDistributionSurvivesGarbageRequests)
{
    crypto::CtrDrbg rng(uint64_t(1004));
    manufacturer::Manufacturer mft(rng);

    for (int i = 0; i < 200; ++i) {
        manufacturer::KeyRequest req;
        req.deviceDna = rng.nextU64();
        req.quote = rng.bytes(rng.below(200));
        req.wrapPubKey = rng.bytes(rng.below(128)); // incl. oversize
        manufacturer::KeyResponse resp = mft.handleKeyRequest(req);
        EXPECT_NE(resp.status, 0) << "iteration " << i;
        EXPECT_TRUE(resp.wrappedKey.empty());
    }
}

TEST(Fuzz, LocalAttestationRejectsRandomTranscripts)
{
    crypto::CtrDrbg rng(uint64_t(1005));
    tee::TeePlatform platform("p", rng);
    struct E : tee::Enclave
    {
        using tee::Enclave::Enclave;
    } a(platform, tee::EnclaveImage{"a", "s", 1, bytesFromString("ca")}),
        b(platform, tee::EnclaveImage{"b", "s", 1, bytesFromString("cb")});

    for (int i = 0; i < 100; ++i) {
        tee::LocalAttestResponder resp(b, a.measurement());
        Bytes junk1 = rng.bytes(rng.below(128));
        auto msg2 = resp.answer(junk1);
        if (msg2) {
            // Parsable msg1 shapes may elicit a response, but the
            // handshake must never complete from junk.
            EXPECT_FALSE(resp.confirm(rng.bytes(rng.below(128))));
        }
        EXPECT_FALSE(resp.established());

        tee::LocalAttestInitiator init(a, b.measurement());
        init.start();
        EXPECT_FALSE(init.finish(rng.bytes(rng.below(256))).has_value());
        EXPECT_FALSE(init.established());
    }
}

TEST(Fuzz, ChannelSealOpenRejectsAllTampering)
{
    crypto::CtrDrbg rng(uint64_t(1006));
    Bytes key = rng.bytes(32);

    for (int i = 0; i < 200; ++i) {
        uint64_t seq = rng.nextU64() % 1000;
        Bytes plain = rng.bytes(rng.below(96));
        Bytes sealed = core::channelSeal(key, "dir-a", seq, plain);

        // Correct open works.
        auto ok = core::channelOpen(key, "dir-a", seq, sealed);
        ASSERT_TRUE(ok.has_value());
        EXPECT_EQ(*ok, plain);

        // Any corruption, wrong direction, or wrong sequence fails.
        Bytes bad = corrupt(sealed, rng);
        if (bad != sealed) {
            EXPECT_FALSE(
                core::channelOpen(key, "dir-a", seq, bad).has_value());
        }
        EXPECT_FALSE(
            core::channelOpen(key, "dir-b", seq, sealed).has_value());
        EXPECT_FALSE(core::channelOpen(key, "dir-a", seq + 1, sealed)
                         .has_value());
    }
}

TEST(Fuzz, NetlistRoundtripRandomDesigns)
{
    crypto::CtrDrbg rng(uint64_t(1007));
    for (int iter = 0; iter < 50; ++iter) {
        netlist::Netlist nl("top" + std::to_string(iter));
        size_t cellCount = 1 + rng.below(20);
        for (size_t c = 0; c < cellCount; ++c) {
            netlist::Cell cell;
            cell.path = "top/c" + std::to_string(c);
            cell.kind = netlist::CellKind(rng.below(3));
            cell.resources = {uint32_t(rng.below(1000)),
                              uint32_t(rng.below(1000)),
                              uint32_t(rng.below(16)),
                              uint32_t(rng.below(8))};
            cell.init = rng.bytes(rng.below(64));
            cell.behaviorId = uint32_t(rng.below(100));
            cell.params = rng.bytes(rng.below(32));
            nl.addCell(std::move(cell));
        }
        netlist::Netlist back =
            netlist::Netlist::deserialize(nl.serialize());
        EXPECT_EQ(back.digest(), nl.digest()) << "iteration " << iter;
        EXPECT_EQ(back.cells().size(), nl.cells().size());
        EXPECT_EQ(back.totalResources().luts, nl.totalResources().luts);
    }
}

TEST(Fuzz, JournalParserNeverCrashesOnCorruption)
{
    crypto::CtrDrbg rng(uint64_t(1011));

    // A realistic journal: two devices, one mid-rekey, retired keys.
    core::SmJournal j;
    j.version = 9;
    j.haveMetadata = 1;
    j.metadata = rng.bytes(48);
    j.deviceKeys.emplace_back(0x1111ull, rng.bytes(32));
    j.deviceKeys.emplace_back(0x2222ull, rng.bytes(32));
    for (uint32_t id = 0; id < 2; ++id) {
        core::SmJournalDevice d;
        d.deviceId = id;
        d.dna = 0x1111ull * (id + 1);
        d.deployed = 1;
        d.attested = id == 0;
        d.haveSecrets = id == 0;
        if (d.haveSecrets) {
            d.keyAttest = rng.bytes(16);
            d.keySession = rng.bytes(48);
            d.ctrBase = 100;
            d.ctrReserve = 164;
            d.havePendingRekey = 1;
            d.pendingRekeyMacKey = rng.bytes(32);
            d.pendingRekeyNonce = 7;
        }
        j.devices.push_back(d);
    }
    j.retiredFingerprints.push_back(rng.bytes(32));
    j.retiredFingerprints.push_back(rng.bytes(32));
    Bytes valid = j.serialize();

    // Random corruptions: typed rejection or a clean parse — never a
    // crash, hang or unbounded allocation. (A content-byte flip that
    // still parses is fine at this layer; the enclave seal covers
    // integrity before these bytes are ever trusted.)
    for (int i = 0; i < 300; ++i) {
        Bytes bad = corrupt(valid, rng);
        try {
            core::SmJournal parsed = core::SmJournal::deserialize(bad);
            (void)parsed;
        } catch (const SerdeError &) {
            // expected for structural damage
        }
    }
    // Truncations at every length class must throw, not crash.
    for (size_t len = 0; len < valid.size(); ++len) {
        EXPECT_THROW(core::SmJournal::deserialize(
                         ByteView(valid.data(), len)),
                     SerdeError)
            << "length " << len;
    }
    // Pure garbage of assorted sizes.
    for (int i = 0; i < 200; ++i) {
        Bytes junk = rng.bytes(rng.below(256));
        try {
            core::SmJournal::deserialize(junk);
        } catch (const SerdeError &) {
        }
    }
    // The untouched journal still round-trips (sanity).
    core::SmJournal back = core::SmJournal::deserialize(valid);
    EXPECT_EQ(back.serialize(), valid);
}

TEST(Fuzz, SmChannelEndpointSurvivesGarbage)
{
    fpga::ensureBuiltinIps();
    core::SmLogic::registerIp();
    core::Testbed tb;
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    tb.installCl(accel);
    ASSERT_TRUE(tb.runDeployment().ok);

    crypto::CtrDrbg rng(uint64_t(1008));
    for (int i = 0; i < 200; ++i) {
        Bytes junk = rng.bytes(rng.below(128));
        EXPECT_TRUE(tb.smApp().channelRequest(junk).empty());
    }
    // The legitimate channel still works afterwards.
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 5));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 5u);
}

TEST(Fuzz, RegisterInterfaceSweepNeverCrashes)
{
    // Sweep every register of both windows with random writes, then
    // confirm the platform still functions.
    fpga::ensureBuiltinIps();
    core::SmLogic::registerIp();
    core::Testbed tb;
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    tb.installCl(accel);
    ASSERT_TRUE(tb.runDeployment().ok);

    crypto::CtrDrbg rng(uint64_t(1009));
    for (int i = 0; i < 500; ++i) {
        auto window = rng.below(2) ? pcie::Window::SmSecure
                                   : pcie::Window::Direct;
        uint32_t addr = uint32_t(rng.below(0x200));
        if (rng.below(2))
            tb.shell().registerWrite(window, addr, rng.nextU64());
        else
            tb.shell().registerRead(window, addr);
    }
    // The SM logic may have consumed hostile commands, but the secure
    // channel must still be intact (counters only move forward).
    EXPECT_TRUE(tb.userApp().secureWrite(0x08, 77));
    EXPECT_EQ(tb.userApp().secureRead(0x08), 77u);
}

TEST(Fuzz, SecureChannelStatefulShadowModel)
{
    // Stateful fuzz: a random interleaving of legitimate channel
    // operations, re-keys, attacker replays and garbage commands.
    // Invariant: a legitimate read always returns the shadow model's
    // value, i.e. no attacker action ever silently mutates or rolls
    // back accelerator state.
    fpga::ensureBuiltinIps();
    core::SmLogic::registerIp();

    core::TestbedConfig cfg;
    cfg.maliciousShell = true;
    core::Testbed tb(cfg);
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    tb.installCl(accel);
    ASSERT_TRUE(tb.runDeployment().ok);

    crypto::CtrDrbg rng(uint64_t(4242));
    std::map<uint32_t, uint64_t> shadow; // scratch regs 0x00..0x78
    auto randomScratchAddr = [&] {
        return uint32_t(rng.below(16)) * 8;
    };

    int legitimateOps = 0;
    for (int step = 0; step < 400; ++step) {
        switch (rng.below(6)) {
          case 0:
          case 1: { // legitimate write
            uint32_t addr = randomScratchAddr();
            uint64_t value = rng.nextU64();
            ASSERT_TRUE(tb.userApp().secureWrite(addr, value))
                << "step " << step;
            shadow[addr] = value;
            ++legitimateOps;
            break;
          }
          case 2: { // legitimate read, checked against the shadow
            uint32_t addr = randomScratchAddr();
            auto got = tb.userApp().secureRead(addr);
            ASSERT_TRUE(got.has_value()) << "step " << step;
            uint64_t expect =
                shadow.count(addr) ? shadow[addr] : 0;
            ASSERT_EQ(*got, expect) << "step " << step;
            ++legitimateOps;
            break;
          }
          case 3: // attacker replays everything recorded so far
            tb.maliciousShell()->replayRecordedSmWrites();
            break;
          case 4: { // attacker injects garbage SM commands
            auto &sh = tb.shell();
            for (int j = 0; j < 3; ++j) {
                sh.registerWrite(pcie::Window::SmSecure,
                                 uint32_t(rng.below(0x60)),
                                 rng.nextU64());
            }
            sh.registerWrite(pcie::Window::SmSecure, core::kSmRegCmd,
                             rng.below(6));
            break;
          }
          case 5: // legitimate session re-key
            ASSERT_TRUE(tb.userApp().rekeySession())
                << "step " << step;
            break;
        }
    }
    EXPECT_GT(legitimateOps, 50);

    // Final sweep: every shadowed register still holds its value.
    for (const auto &[addr, value] : shadow)
        EXPECT_EQ(tb.userApp().secureRead(addr), value)
            << "addr 0x" << std::hex << addr;
}

TEST(Fuzz, BatchParserNeverCrashesOrFalselyAccepts)
{
    // The fabric-side burst parser consumes attacker-controlled bytes
    // (session id, stride base, payload, MAC). Random and mutated
    // bursts must be rejected cleanly; only the genuine seal opens.
    using namespace core::regchan;
    crypto::CtrDrbg rng(uint64_t(2024));
    Bytes aes = rng.bytes(16);
    Bytes mac = rng.bytes(32);

    for (int i = 0; i < 300; ++i) {
        SealedRegBatch junk;
        junk.sessionId = uint32_t(rng.nextU64());
        junk.ctrBase = rng.nextU64();
        junk.payload = rng.bytes(rng.below(6 * kRegBatchBlock));
        junk.mac = rng.nextU64();
        EXPECT_FALSE(openBatch(aes, mac, junk).has_value());

        SealedBatchResponse junkRsp;
        junkRsp.payload = rng.bytes(rng.below(6 * kRegBatchBlock));
        junkRsp.mac = rng.nextU64();
        EXPECT_FALSE(openBatchResponse(aes, mac,
                                       uint32_t(rng.nextU64()),
                                       rng.nextU64(), rng.below(8),
                                       junkRsp)
                         .has_value());
    }

    std::vector<RegOp> ops;
    for (uint32_t i = 0; i < 8; ++i)
        ops.push_back({i % 2 == 0, 8 * i, rng.nextU64()});
    SealedRegBatch good = sealBatch(aes, mac, 1, 1000, ops);
    for (int i = 0; i < 300; ++i) {
        SealedRegBatch bad = good;
        switch (rng.below(4)) {
          case 0:
            bad.payload = corrupt(good.payload, rng);
            break;
          case 1:
            bad.mac ^= uint64_t(1) << rng.below(64);
            break;
          case 2:
            bad.sessionId ^= uint32_t(1 + rng.below(0xffff));
            break;
          case 3:
            bad.ctrBase ^= uint64_t(1) << rng.below(64);
            break;
        }
        EXPECT_FALSE(openBatch(aes, mac, bad).has_value());
    }
    EXPECT_TRUE(openBatch(aes, mac, good).has_value());
}

TEST(Fuzz, BurstRegisterSweepNeverWedgesTheFabric)
{
    // Random traffic against the burst FIFO registers and the batch/
    // open-session commands must never crash the SM logic or wedge
    // the legitimate batched channel.
    fpga::ensureBuiltinIps();
    core::SmLogic::registerIp();
    core::Testbed tb;
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    tb.installCl(accel);
    ASSERT_TRUE(tb.runDeployment().ok);

    crypto::CtrDrbg rng(uint64_t(3030));
    auto &sh = tb.shell();
    for (int i = 0; i < 400; ++i) {
        switch (rng.below(5)) {
          case 0:
            sh.registerWrite(pcie::Window::SmSecure,
                             core::kSmRegBurstIn, rng.nextU64());
            break;
          case 1:
            sh.registerRead(pcie::Window::SmSecure,
                            core::kSmRegBurstOut);
            break;
          case 2:
            sh.registerWrite(pcie::Window::SmSecure,
                             core::kSmRegBurstReset, 0);
            break;
          case 3: { // garbage batch command
            for (int r = 0; r < 4; ++r)
                sh.registerWrite(pcie::Window::SmSecure,
                                 core::kSmRegIn0 + 8 * r,
                                 rng.nextU64());
            sh.registerWrite(pcie::Window::SmSecure, core::kSmRegCmd,
                             core::kSmCmdSecureBatch);
            break;
          }
          case 4: // garbage open-session command
            sh.registerWrite(pcie::Window::SmSecure, core::kSmRegCmd,
                             core::kSmCmdOpenSession);
            break;
        }
    }

    // Both channel paths still work after the sweep.
    auto results = tb.smApp().secureRegBatch(
        0, {{true, 0x00, 99}, {false, 0x00, 0}});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, 0);
    EXPECT_EQ(results[1].data, 99u);
    EXPECT_TRUE(tb.userApp().secureWrite(0x08, 7));
    EXPECT_EQ(tb.userApp().secureRead(0x08), 7u);
}

TEST(Fuzz, BrokerRequestDecodeNeverCrashesOrFalselyAccepts)
{
    crypto::CtrDrbg rng(uint64_t(6001));
    core::BrokerRequest valid;
    valid.kind = core::BrokerRequest::Kind::SubmitOp;
    valid.tenant = 2;
    valid.session = 3;
    valid.op = {true, 0x10, 0x1234};
    Bytes wire = valid.serialize();

    for (int i = 0; i < 400; ++i) {
        Bytes bad = corrupt(wire, rng);
        if (rng.below(4) == 0)
            bad.resize(rng.below(bad.size() + 1));
        try {
            core::BrokerRequest back =
                core::BrokerRequest::deserialize(bad);
            // Accepted garbage must still decode to a sane request: a
            // defined kind, never a truncated/oversized frame.
            EXPECT_GE(uint8_t(back.kind), 1);
            EXPECT_LE(uint8_t(back.kind), 3);
        } catch (const SalusError &) {
            // typed rejection — the expected outcome
        }
    }
    // Pure-noise frames of every small length.
    for (size_t len = 0; len < 40; ++len) {
        Bytes noise = rng.bytes(len);
        try {
            (void)core::BrokerRequest::deserialize(noise);
        } catch (const SalusError &) {
        }
    }
}

TEST(Fuzz, ScenarioParserNeverCrashesOnMangledCampaigns)
{
    crypto::CtrDrbg rng(uint64_t(6002));
    const std::string seedFile =
        "[scenario]\nname = fuzz\nseed = 3\nsweeps = 8\n"
        "[broker]\nmax_total_queued_ops = 64\n"
        "[tenant a]\nweight = 2\npattern = flood\nops_per_sweep = 4\n"
        "[fault]\nkind = seu\npartition = 0\nbit = 2567\n"
        "[action]\nkind = rekey\nat_sweep = 2\n"
        "[expect]\ncompleted_min = 1\n";

    for (int i = 0; i < 400; ++i) {
        Bytes mangled = corrupt(
            ByteView(reinterpret_cast<const uint8_t *>(seedFile.data()),
                     seedFile.size()),
            rng);
        if (rng.below(4) == 0)
            mangled.resize(rng.below(mangled.size() + 1));
        std::string text(mangled.begin(), mangled.end());
        try {
            core::Scenario sc = core::parseScenario(text);
            // A parse that survives mangling must still be in-bounds
            // (the validator runs inside parseScenario).
            EXPECT_GE(sc.sweeps, 1u);
            EXPECT_LE(sc.devices, 16u);
            EXPECT_LE(sc.tenants.size(), 16u);
        } catch (const SalusError &) {
            // ScenarioError — typo-level strictness is the contract
        }
    }
}

TEST(Fuzz, DmaDescriptorDecodeNeverCrashesOrFalselyAccepts)
{
    crypto::CtrDrbg rng(uint64_t(6003));
    Bytes aes = rng.bytes(16);
    Bytes mac = rng.bytes(32);
    core::dmachan::DmaDescriptor d;
    d.sessionId = 1;
    d.seq = 3;
    d.ctrBase = 3 * core::dmachan::kDmaCtrStride;
    d.sg = {{0x1000, 512}, {0x2000, 512}};
    d.payload = rng.bytes(1024);
    core::dmachan::cryptDmaPayload(aes, false, d.ctrBase,
                                   d.payload.data(), d.payload.size());
    Bytes valid = core::dmachan::encodeDescriptor(mac, d);

    for (int i = 0; i < 400; ++i) {
        Bytes bad = corrupt(valid, rng);
        if (rng.below(4) == 0)
            bad.resize(rng.below(bad.size() + 1));
        if (bad == valid)
            continue;
        try {
            core::dmachan::DmaDescriptor back =
                core::dmachan::decodeDescriptor(bad);
            // A parse that survives mangling stays inside the wire
            // format's bounds — and NEVER carries a valid MAC.
            EXPECT_LE(back.sg.size(), core::dmachan::kDmaMaxSg);
            EXPECT_LE(back.payload.size(),
                      core::dmachan::kDmaMaxPayload);
            EXPECT_FALSE(core::dmachan::verifyDescriptorMac(mac, bad))
                << "iteration " << i;
        } catch (const SalusError &) {
            // typed rejection — the expected outcome
        }
    }
    for (size_t len = 0; len < 64; ++len) {
        Bytes noise = rng.bytes(len);
        try {
            (void)core::dmachan::decodeDescriptor(noise);
        } catch (const SalusError &) {
        }
    }
    EXPECT_NO_THROW(core::dmachan::decodeDescriptor(valid));
    EXPECT_TRUE(core::dmachan::verifyDescriptorMac(mac, valid));
}

// ---- libFuzzer entry points -----------------------------------------
// The CI fuzz-smoke job builds one fuzz_<entry> binary per function
// below (see the SALUS_FUZZERS option in tests/CMakeLists.txt and
// tests/fuzz_main.cpp) and runs each for a fixed-seed 30 s burst.
// Every entry wraps one parser/endpoint that consumes attacker-
// controlled bytes; the contract is the same as the sweeps above —
// typed rejection or clean parse, never a crash, hang or leak. The
// entries compile under plain gcc too (they are ordinary functions),
// so the tier-1 build keeps them from rotting.

extern "C" int
salus_fuzz_bitstream_file(const uint8_t *data, size_t size)
{
    try {
        (void)bitstream::Bitstream::fromFile(ByteView(data, size));
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_encrypted_bitstream(const uint8_t *data, size_t size)
{
    static const Bytes key(32, 0x5a);
    try {
        (void)bitstream::decryptBitstream(ByteView(data, size),
                                          key);
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_quote(const uint8_t *data, size_t size)
{
    try {
        (void)tee::Quote::deserialize(ByteView(data, size));
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_journal(const uint8_t *data, size_t size)
{
    try {
        (void)core::SmJournal::deserialize(ByteView(data, size));
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_netlist(const uint8_t *data, size_t size)
{
    try {
        (void)netlist::Netlist::deserialize(ByteView(data, size));
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_channel_open(const uint8_t *data, size_t size)
{
    static const Bytes key(32, 0x3c);
    try {
        (void)core::channelOpen(key, "fuzz", 0,
                                ByteView(data, size));
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_migration_ticket(const uint8_t *data, size_t size)
{
    try {
        (void)core::MigrationTicket::deserialize(ByteView(data, size));
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_placement_state(const uint8_t *data, size_t size)
{
    try {
        (void)core::Placement::deserializeState(ByteView(data, size));
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_broker_request(const uint8_t *data, size_t size)
{
    try {
        (void)core::BrokerRequest::deserialize(ByteView(data, size));
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_scenario_file(const uint8_t *data, size_t size)
{
    std::string text(reinterpret_cast<const char *>(data), size);
    try {
        (void)core::parseScenario(text);
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_dma_descriptor(const uint8_t *data, size_t size)
{
    static const Bytes mac(32, 0x77);
    try {
        (void)core::dmachan::decodeDescriptor(ByteView(data, size));
        (void)core::dmachan::verifyDescriptorMac(mac,
                                                 ByteView(data, size));
    } catch (const SalusError &) {
    }
    return 0;
}

extern "C" int
salus_fuzz_dma_window(const uint8_t *data, size_t size)
{
    // The fuzz input scripts a hostile fabric under the sliding-window
    // engine: one byte per delivered descriptor decides drop/accept,
    // one per ack readback decides forgery. Exhausted input reads as 0
    // (always-drop, forged acks), so every run is bounded by the
    // engine's attempt cap — the contract is termination with a typed
    // report, never a hang.
    size_t cursor = 0;
    auto nextByte = [&]() -> uint8_t {
        return cursor < size ? data[cursor++] : 0;
    };
    uint64_t applied = 0;
    std::set<uint64_t> buffered;
    core::dmachan::DmaWindowHooks hooks;
    hooks.deliver = [&](uint64_t seq, const Bytes &) {
        uint8_t b = nextByte();
        if (b % 4 == 0 || seq < applied)
            return; // lost on the wire / replay ignored
        buffered.insert(seq);
        while (buffered.count(applied)) {
            buffered.erase(applied);
            ++applied;
        }
    };
    hooks.readAck = [&](uint64_t &ackSeq) {
        if (nextByte() % 7 == 0)
            return false; // forged ack
        ackSeq = applied;
        return true;
    };
    core::dmachan::DmaWindowEngine::Options opts;
    opts.window = 1 + nextByte() % core::dmachan::kDmaMaxWindow;
    opts.maxAttempts = 1 + nextByte() % 8;
    std::vector<core::dmachan::DmaDescriptorWork> work;
    size_t n = 1 + nextByte() % 32;
    for (size_t i = 0; i < n; ++i) {
        core::dmachan::DmaDescriptorWork w;
        w.seq = i;
        w.payloadBytes = 64;
        w.seal = [i] { return Bytes(64, uint8_t(i)); };
        work.push_back(std::move(w));
    }
    core::dmachan::DmaWindowEngine engine(hooks, opts);
    (void)engine.run(work);
    return 0;
}

extern "C" int
salus_fuzz_aes_backend(const uint8_t *data, size_t size)
{
    // Differential harness: the same AES-CTR and AES-GCM operations
    // run through the dispatch-selected backend and the forced-scalar
    // reference; any byte of disagreement traps. On hosts without the
    // ISA extensions both runs take the scalar path and the harness
    // degrades to a (still useful) determinism check.
    if (size < 2)
        return 0;
    size_t keyLen = size_t(16) + 8 * (data[0] % 3); // 16/24/32
    size_t ivLen = (data[1] % 2) ? 12 : 16;
    size_t need = 2 + keyLen + 16;
    if (size < need)
        return 0;
    Bytes key(data + 2, data + 2 + keyLen);
    Bytes ctrBlock(data + 2 + keyLen, data + 2 + keyLen + 16);
    size_t msgLen = std::min<size_t>(size - need, 4096);
    Bytes msg(data + need, data + need + msgLen);

    crypto::setForceScalar(false);
    Bytes fastCtr = crypto::aesCtrCrypt(key, ctrBlock, msg);
    crypto::AesGcm gcm(key);
    crypto::GcmSealed fastGcm =
        gcm.seal(ByteView(ctrBlock).subspan(0, ivLen), ctrBlock, msg);

    crypto::setForceScalar(true);
    Bytes slowCtr = crypto::aesCtrCrypt(key, ctrBlock, msg);
    crypto::GcmSealed slowGcm =
        gcm.seal(ByteView(ctrBlock).subspan(0, ivLen), ctrBlock, msg);
    crypto::setForceScalar(false);

    if (fastCtr != slowCtr || fastGcm.ciphertext != slowGcm.ciphertext ||
        fastGcm.tag != slowGcm.tag)
        __builtin_trap(); // backends must be bit-identical
    return 0;
}

extern "C" int
salus_fuzz_sha_backend(const uint8_t *data, size_t size)
{
    // SHA-256 differential: one-shot and chunked updates through both
    // backends must agree bit for bit.
    if (size < 1)
        return 0;
    size_t chunk = 1 + data[0] % 128;
    ByteView msg(data + 1, size - 1);

    crypto::setForceScalar(false);
    Bytes fast = crypto::Sha256::digest(msg);

    crypto::setForceScalar(true);
    Bytes slow = crypto::Sha256::digest(msg);
    crypto::Sha256 chunked;
    for (size_t off = 0; off < msg.size(); off += chunk)
        chunked.update(msg.subspan(off, std::min(chunk,
                                                 msg.size() - off)));
    Bytes slowChunked = chunked.finish();
    crypto::setForceScalar(false);

    if (fast != slow || fast != slowChunked)
        __builtin_trap(); // backends must be bit-identical
    return 0;
}

TEST(Fuzz, AesBackendDifferentialSweep)
{
    // Drives the libFuzzer entry with seeded random inputs so the
    // scalar/hardware equivalence check runs in every tier-1 build,
    // not just the clang fuzz-smoke job.
    crypto::CtrDrbg rng(0xd1ff01);
    for (int i = 0; i < 200; ++i) {
        Bytes input = rng.bytes(2 + 48 + 16 + rng.below(512));
        salus_fuzz_aes_backend(input.data(), input.size());
    }
}

TEST(Fuzz, ShaBackendDifferentialSweep)
{
    crypto::CtrDrbg rng(0xd1ff02);
    for (int i = 0; i < 200; ++i) {
        Bytes input = rng.bytes(1 + rng.below(1024));
        salus_fuzz_sha_backend(input.data(), input.size());
    }
}
