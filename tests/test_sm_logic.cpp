/**
 * @file
 * Focused SM-logic and register-channel tests (paper §5.1, Fig. 4a,
 * §4.5): the attestation FSM, the secure register channel crypto, and
 * the monotonic-counter freshness rules — exercised at the register
 * level, without the surrounding boot flow.
 */

#include <gtest/gtest.h>

#include "bitstream/compiler.hpp"
#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "crypto/random.hpp"
#include "crypto/sha256.hpp"
#include "fpga/device.hpp"
#include "salus/cl_builder.hpp"
#include "salus/reg_channel.hpp"
#include "salus/secrets.hpp"
#include "salus/sm_logic.hpp"

using namespace salus;
using namespace salus::core;

namespace {

/** Builds a device with a loaded, secret-injected Salus CL. */
struct Rig
{
    crypto::CtrDrbg rng{uint64_t(404)};
    fpga::DeviceModelInfo model = fpga::testModel();
    fpga::FpgaDevice device{fpga::testModel(),
                            fpga::DeviceDna{0xabcdef012345ULL}};
    Bytes deviceKey;
    ClLayout layout;
    ClSecrets secrets;
    fpga::IpBehavior *sm = nullptr;

    Rig()
    {
        fpga::ensureBuiltinIps();
        SmLogic::registerIp();
        deviceKey = rng.bytes(32);
        device.fuseKey(deviceKey);

        netlist::Cell accel;
        accel.path = "engine";
        accel.kind = netlist::CellKind::Logic;
        accel.behaviorId = fpga::kIpLoopback;
        accel.resources = {100, 100, 0, 0};
        ClDesign design = buildClDesign("cl", accel);
        layout = design.layout;

        bitstream::Compiler compiler(model.name);
        auto compiled =
            compiler.compile(design.netlist, model.partitions[0]);

        secrets = ClSecrets::generate(rng);
        bitstream::Manipulator::patchCell(compiled.file,
                                          compiled.logicLocations,
                                          layout.keyAttestPath,
                                          secrets.keyAttest);
        bitstream::Manipulator::patchCell(compiled.file,
                                          compiled.logicLocations,
                                          layout.keySessionPath,
                                          secrets.keySession);
        bitstream::Manipulator::patchCell(compiled.file,
                                          compiled.logicLocations,
                                          layout.ctrSessionPath,
                                          secrets.ctrBytes());

        bitstream::EncryptedHeader header{model.name, 0};
        Bytes blob = bitstream::encryptBitstream(compiled.file,
                                                 deviceKey, header, rng);
        EXPECT_EQ(device.loadEncryptedPartial(blob),
                  fpga::LoadStatus::Ok);
        sm = device.design(0)->behaviorAt(layout.smCellPath);
        EXPECT_NE(sm, nullptr);
    }

    uint64_t dna() const { return 0xabcdef012345ULL; }

    /** Drives one attestation exchange; returns the status register. */
    uint64_t
    attest(uint64_t nonce, uint64_t macReq, uint64_t *rspNonce = nullptr,
           uint64_t *rspMac = nullptr)
    {
        sm->writeRegister(kSmRegIn0, nonce);
        sm->writeRegister(kSmRegIn1, macReq);
        sm->writeRegister(kSmRegCmd, kSmCmdAttest);
        if (rspNonce)
            *rspNonce = sm->readRegister(kSmRegOut0);
        if (rspMac)
            *rspMac = sm->readRegister(kSmRegOut1);
        return sm->readRegister(kSmRegStatus);
    }

    /** Drives one sealed register op; returns the status register. */
    uint64_t
    secureOp(const regchan::SealedRegRequest &req,
             regchan::SealedRegResponse *rsp = nullptr)
    {
        sm->writeRegister(kSmRegIn0, req.ctr);
        sm->writeRegister(kSmRegIn1, req.ct0);
        sm->writeRegister(kSmRegIn2, req.ct1);
        sm->writeRegister(kSmRegIn3, req.mac);
        sm->writeRegister(kSmRegCmd, kSmCmdSecureReg);
        if (rsp) {
            rsp->ct0 = sm->readRegister(kSmRegOut0);
            rsp->ct1 = sm->readRegister(kSmRegOut1);
            rsp->mac = sm->readRegister(kSmRegOut2);
        }
        return sm->readRegister(kSmRegStatus);
    }
};

} // namespace

TEST(SmLogicTest, AttestationHappyPath)
{
    Rig rig;
    uint64_t nonce = 0x1111222233334444ull;
    uint64_t macReq =
        regchan::attestRequestMac(rig.secrets.keyAttest, nonce,
                                  rig.dna());
    uint64_t rspNonce = 0, rspMac = 0;
    EXPECT_EQ(rig.attest(nonce, macReq, &rspNonce, &rspMac),
              kSmStatusOk);
    EXPECT_EQ(rspNonce, nonce + 1);
    EXPECT_EQ(rspMac, regchan::attestResponseMac(rig.secrets.keyAttest,
                                                 nonce, rig.dna()));
}

TEST(SmLogicTest, AttestationRejectsWrongMacOrKey)
{
    Rig rig;
    uint64_t nonce = 7;

    // Wrong MAC entirely.
    uint64_t rspMac = 1;
    EXPECT_EQ(rig.attest(nonce, 0xdeadbeef, nullptr, &rspMac),
              kSmStatusRejected);
    EXPECT_EQ(rspMac, 0u) << "rejection must not leak MAC material";

    // MAC computed under a different key (e.g. attacker guess).
    Bytes wrongKey(16, 0x42);
    uint64_t macReq = regchan::attestRequestMac(wrongKey, nonce,
                                                rig.dna());
    EXPECT_EQ(rig.attest(nonce, macReq), kSmStatusRejected);
}

TEST(SmLogicTest, AttestationBindsDeviceDna)
{
    // The MAC covers DeviceDNA: a request computed for a DIFFERENT
    // device (CSP bait-and-switch, §4.3) is rejected by this one.
    Rig rig;
    uint64_t nonce = 9;
    uint64_t macOtherDevice = regchan::attestRequestMac(
        rig.secrets.keyAttest, nonce, rig.dna() ^ 0x1);
    EXPECT_EQ(rig.attest(nonce, macOtherDevice), kSmStatusRejected);
}

TEST(SmLogicTest, SecretsNotReadableOverBus)
{
    Rig rig;
    // Scan the whole register window; no read may return any 8-byte
    // slice of the attestation or session keys.
    std::vector<uint64_t> keyWords;
    for (size_t off = 0; off + 8 <= rig.secrets.keyAttest.size(); off++)
        keyWords.push_back(loadLe64(rig.secrets.keyAttest.data() + off));
    for (size_t off = 0; off + 8 <= rig.secrets.keySession.size(); off++)
        keyWords.push_back(
            loadLe64(rig.secrets.keySession.data() + off));

    for (uint32_t addr = 0; addr < 0x100; addr += 8) {
        uint64_t v = rig.sm->readRegister(addr);
        for (uint64_t kw : keyWords)
            ASSERT_NE(v, kw) << "key material readable at 0x"
                             << std::hex << addr;
    }
}

TEST(SmLogicTest, SecureRegReadWrite)
{
    Rig rig;
    uint64_t ctr = rig.secrets.ctrBase + 1;

    regchan::RegOp write{true, 0x00, 0x1234};
    regchan::SealedRegResponse rsp;
    EXPECT_EQ(rig.secureOp(
                  regchan::sealRequest(rig.secrets.sessionAesKey(),
                                       rig.secrets.sessionMacKey(), ctr,
                                       write),
                  &rsp),
              kSmStatusOk);
    auto opened = regchan::openResponse(rig.secrets.sessionAesKey(),
                                        rig.secrets.sessionMacKey(),
                                        ctr, rsp);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->first, 0);

    ++ctr;
    regchan::RegOp read{false, 0x00, 0};
    EXPECT_EQ(rig.secureOp(
                  regchan::sealRequest(rig.secrets.sessionAesKey(),
                                       rig.secrets.sessionMacKey(), ctr,
                                       read),
                  &rsp),
              kSmStatusOk);
    opened = regchan::openResponse(rig.secrets.sessionAesKey(),
                                   rig.secrets.sessionMacKey(), ctr,
                                   rsp);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->second, 0x1234u);
}

TEST(SmLogicTest, CounterRulesEnforced)
{
    Rig rig;
    uint64_t ctr = rig.secrets.ctrBase + 5;
    regchan::RegOp op{true, 0x08, 1};
    auto req = regchan::sealRequest(rig.secrets.sessionAesKey(),
                                    rig.secrets.sessionMacKey(), ctr, op);

    EXPECT_EQ(rig.secureOp(req), kSmStatusOk);
    // Exact replay: rejected.
    EXPECT_EQ(rig.secureOp(req), kSmStatusRejected);
    // Counter below the base: rejected even with a valid MAC.
    auto stale = regchan::sealRequest(rig.secrets.sessionAesKey(),
                                      rig.secrets.sessionMacKey(),
                                      rig.secrets.ctrBase, op);
    EXPECT_EQ(rig.secureOp(stale), kSmStatusRejected);
    // Skipping forward is fine (lost messages tolerated).
    auto ahead = regchan::sealRequest(rig.secrets.sessionAesKey(),
                                      rig.secrets.sessionMacKey(),
                                      ctr + 100, op);
    EXPECT_EQ(rig.secureOp(ahead), kSmStatusOk);
}

TEST(SmLogicTest, TamperedSealedRequestRejected)
{
    Rig rig;
    uint64_t ctr = rig.secrets.ctrBase + 1;
    regchan::RegOp op{true, 0x00, 42};
    auto req = regchan::sealRequest(rig.secrets.sessionAesKey(),
                                    rig.secrets.sessionMacKey(), ctr, op);

    auto flipCt = req;
    flipCt.ct0 ^= 1;
    EXPECT_EQ(rig.secureOp(flipCt), kSmStatusRejected);

    auto flipMac = req;
    flipMac.mac ^= 1;
    EXPECT_EQ(rig.secureOp(flipMac), kSmStatusRejected);

    // Changing the counter invalidates the MAC too (ctr is MACed).
    auto flipCtr = req;
    flipCtr.ctr += 1;
    EXPECT_EQ(rig.secureOp(flipCtr), kSmStatusRejected);
}

TEST(SmLogicTest, UnknownCommandRejected)
{
    Rig rig;
    rig.sm->writeRegister(kSmRegCmd, 99);
    EXPECT_EQ(rig.sm->readRegister(kSmRegStatus), kSmStatusRejected);
}

// ---------------------------------------------------- regchan crypto

TEST(RegChannel, SealOpenRoundtrip)
{
    crypto::CtrDrbg rng(uint64_t(5));
    Bytes aes = rng.bytes(16), mac = rng.bytes(32);

    for (uint64_t ctr : {1ull, 77ull, ~0ull}) {
        regchan::RegOp op{true, 0xabcd, 0x1122334455667788ull};
        auto req = regchan::sealRequest(aes, mac, ctr, op);
        auto back = regchan::openRequest(aes, mac, req);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->isWrite, op.isWrite);
        EXPECT_EQ(back->addr, op.addr);
        EXPECT_EQ(back->data, op.data);
    }
}

TEST(RegChannel, RequestsAndResponsesDomainSeparated)
{
    // A request ciphertext replayed as a response (reflection attack)
    // must not verify: directions use distinct MAC labels and CTR
    // blocks.
    crypto::CtrDrbg rng(uint64_t(6));
    Bytes aes = rng.bytes(16), mac = rng.bytes(32);
    auto req = regchan::sealRequest(aes, mac, 10,
                                    regchan::RegOp{false, 0, 0});
    regchan::SealedRegResponse fakeRsp{req.ct0, req.ct1, req.mac};
    EXPECT_FALSE(
        regchan::openResponse(aes, mac, 10, fakeRsp).has_value());
}

TEST(RegChannel, WrongKeysFail)
{
    crypto::CtrDrbg rng(uint64_t(7));
    Bytes aes = rng.bytes(16), mac = rng.bytes(32);
    auto req = regchan::sealRequest(aes, mac, 3,
                                    regchan::RegOp{true, 4, 5});

    Bytes otherMac = rng.bytes(32);
    EXPECT_FALSE(regchan::openRequest(aes, otherMac, req).has_value());

    // Wrong AES key with right MAC key: MAC still verifies (MAC is
    // over ciphertext) but the decrypted op is garbage -- this is why
    // both halves of Key_session come from the same injection.
    Bytes otherAes = rng.bytes(16);
    auto opened = regchan::openRequest(otherAes, mac, req);
    ASSERT_TRUE(opened.has_value());
    EXPECT_FALSE(opened->isWrite == true && opened->addr == 4 &&
                 opened->data == 5);
}

TEST(RegChannel, AttestMacsDifferPerNonceKeyDna)
{
    Bytes k1(16, 1), k2(16, 2);
    EXPECT_NE(regchan::attestRequestMac(k1, 5, 9),
              regchan::attestRequestMac(k2, 5, 9));
    EXPECT_NE(regchan::attestRequestMac(k1, 5, 9),
              regchan::attestRequestMac(k1, 6, 9));
    EXPECT_NE(regchan::attestRequestMac(k1, 5, 9),
              regchan::attestRequestMac(k1, 5, 8));
    // Request and response MACs are distinct (N vs N+1).
    EXPECT_NE(regchan::attestRequestMac(k1, 5, 9),
              regchan::attestResponseMac(k1, 5, 9));
    // Direction domain separation: a response MAC for N can never be
    // replayed as a request MAC for N+1.
    EXPECT_NE(regchan::attestResponseMac(k1, 5, 9),
              regchan::attestRequestMac(k1, 6, 9));
}
