/**
 * @file
 * Ed25519 tests: RFC 8032 public-key derivation vectors, signature
 * determinism, verification properties and rejection paths.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/hex.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/random.hpp"

using namespace salus;
using namespace salus::crypto;

TEST(Ed25519, Rfc8032Test1PublicKey)
{
    Bytes seed = hexDecode("9d61b19deffd5a60ba844af492ec2cc4"
                           "4449c5697b326919703bac031cae7f60");
    EXPECT_EQ(hexEncode(ed25519PublicKey(seed)),
              "d75a980182b10ab7d54bfed3c964073a"
              "0ee172f3daa62325af021a68f707511a");
}

TEST(Ed25519, Rfc8032Test2PublicKey)
{
    Bytes seed = hexDecode("4ccd089b28ff96da9db6c346ec114e0f"
                           "5b8a319f35aba624da8cf6ed4fb8a6fb");
    EXPECT_EQ(hexEncode(ed25519PublicKey(seed)),
              "3d4017c3e843895a92b70aa74d1b7ebc"
              "9c982ccf2ec4968cc0cd55f12af4660c");
}

TEST(Ed25519, Rfc8032Test1SignatureVerifies)
{
    Bytes seed = hexDecode("9d61b19deffd5a60ba844af492ec2cc4"
                           "4449c5697b326919703bac031cae7f60");
    Bytes pub = ed25519PublicKey(seed);
    Bytes sig = ed25519Sign(seed, ByteView());
    EXPECT_EQ(sig.size(), kEd25519SigSize);
    EXPECT_TRUE(ed25519Verify(pub, ByteView(), sig));
}

TEST(Ed25519, SignaturesAreDeterministic)
{
    CtrDrbg rng(31);
    Ed25519KeyPair kp = ed25519Generate(rng);
    Bytes msg = bytesFromString("attestation quote body");
    EXPECT_EQ(ed25519Sign(kp.seed, msg), ed25519Sign(kp.seed, msg));
}

TEST(Ed25519, SignVerifyRoundtripVariousLengths)
{
    CtrDrbg rng(32);
    Ed25519KeyPair kp = ed25519Generate(rng);
    for (size_t len : {size_t(0), size_t(1), size_t(32), size_t(100),
                       size_t(1000)}) {
        Bytes msg = rng.bytes(len);
        Bytes sig = ed25519Sign(kp.seed, msg);
        EXPECT_TRUE(ed25519Verify(kp.publicKey, msg, sig))
            << "len=" << len;
    }
}

TEST(Ed25519, RejectsTamperedMessage)
{
    CtrDrbg rng(33);
    Ed25519KeyPair kp = ed25519Generate(rng);
    Bytes msg = rng.bytes(64);
    Bytes sig = ed25519Sign(kp.seed, msg);

    Bytes bad = msg;
    bad[10] ^= 1;
    EXPECT_FALSE(ed25519Verify(kp.publicKey, bad, sig));
}

TEST(Ed25519, RejectsTamperedSignature)
{
    CtrDrbg rng(34);
    Ed25519KeyPair kp = ed25519Generate(rng);
    Bytes msg = rng.bytes(64);
    Bytes sig = ed25519Sign(kp.seed, msg);

    for (size_t i : {size_t(0), size_t(31), size_t(32), size_t(63)}) {
        Bytes bad = sig;
        bad[i] ^= 1;
        EXPECT_FALSE(ed25519Verify(kp.publicKey, msg, bad))
            << "byte=" << i;
    }
}

TEST(Ed25519, RejectsWrongKey)
{
    CtrDrbg rng(35);
    Ed25519KeyPair kp1 = ed25519Generate(rng);
    Ed25519KeyPair kp2 = ed25519Generate(rng);
    Bytes msg = rng.bytes(40);
    Bytes sig = ed25519Sign(kp1.seed, msg);
    EXPECT_FALSE(ed25519Verify(kp2.publicKey, msg, sig));
}

TEST(Ed25519, RejectsMalformedInputs)
{
    CtrDrbg rng(36);
    Ed25519KeyPair kp = ed25519Generate(rng);
    Bytes msg = rng.bytes(10);
    Bytes sig = ed25519Sign(kp.seed, msg);

    EXPECT_FALSE(ed25519Verify(Bytes(31), msg, sig));
    EXPECT_FALSE(ed25519Verify(kp.publicKey, msg, Bytes(63)));
    EXPECT_FALSE(ed25519Verify(kp.publicKey, msg, Bytes(64, 0xff)));
    EXPECT_THROW(ed25519Sign(Bytes(31), msg), CryptoError);
    EXPECT_THROW(ed25519PublicKey(Bytes(33)), CryptoError);
}

TEST(Ed25519, RejectsNonCanonicalS)
{
    // Flipping high bits of S so S >= L must be rejected (signature
    // malleability defense).
    CtrDrbg rng(37);
    Ed25519KeyPair kp = ed25519Generate(rng);
    Bytes msg = rng.bytes(20);
    Bytes sig = ed25519Sign(kp.seed, msg);
    Bytes bad = sig;
    bad[63] |= 0xf0; // push S far above L
    EXPECT_FALSE(ed25519Verify(kp.publicKey, msg, bad));
}

TEST(Ed25519, DistinctMessagesDistinctSignatures)
{
    CtrDrbg rng(38);
    Ed25519KeyPair kp = ed25519Generate(rng);
    Bytes s1 = ed25519Sign(kp.seed, bytesFromString("m1"));
    Bytes s2 = ed25519Sign(kp.seed, bytesFromString("m2"));
    EXPECT_NE(s1, s2);
}
