/**
 * @file
 * libFuzzer driver shim. Each fuzz_<entry> binary is this file
 * compiled with -DSALUS_FUZZ_ENTRY=salus_fuzz_<entry> and linked
 * against the entry points defined at the bottom of test_fuzz.cpp
 * (see the SALUS_FUZZERS option in tests/CMakeLists.txt). libFuzzer
 * supplies main(); we forward its inputs to the selected entry.
 */

#include <cstddef>
#include <cstdint>

#ifndef SALUS_FUZZ_ENTRY
#error "build with -DSALUS_FUZZ_ENTRY=<salus_fuzz_* symbol>"
#endif

extern "C" int SALUS_FUZZ_ENTRY(const uint8_t *data, size_t size);

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    return SALUS_FUZZ_ENTRY(data, size);
}
