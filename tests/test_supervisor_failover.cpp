/**
 * @file
 * Fleet supervision tests: the per-device health breaker, MAC'd
 * heartbeats, attested session failover with key-freshness
 * guarantees, SM-enclave crash recovery (journal sweep + rollback
 * rejection), and the serde round trips of every fleet message.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <tuple>

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "fpga/health.hpp"
#include "obs/trace.hpp"
#include "salus/sm_logic.hpp"
#include "salus/supervisor.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel(const char *name = "engine")
{
    netlist::Cell accel;
    accel.path = name;
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {100, 100, 0, 0};
    return accel;
}

/** Aggressive breaker tuning so tests trip in a handful of polls. */
fpga::HealthPolicy
fastHealth()
{
    fpga::HealthPolicy h;
    h.windowSize = 4;
    h.minSamples = 2;
    h.degradeThreshold = 0.3;
    h.quarantineThreshold = 0.6;
    h.probationAfter = 200 * sim::kMs;
    h.probationSuccesses = 2;
    return h;
}

} // namespace

// ---- HealthTracker unit behaviour -----------------------------------

TEST(HealthTracker, EscalatesThroughDegradedToQuarantined)
{
    fpga::HealthTracker t(fastHealth());
    EXPECT_EQ(t.state(), fpga::HealthState::Healthy);

    t.recordSuccess(0);
    t.recordFailure(1 * sim::kMs, "lost probe");
    // 1/2 failures >= 0.3 => degraded (but not yet 0.6 with 2 samples?
    // 0.5 < 0.6, so degraded only).
    EXPECT_EQ(t.state(), fpga::HealthState::Degraded);

    t.recordFailure(2 * sim::kMs, "lost probe");
    // window 3 samples, rate 2/3 >= 0.6 => quarantined.
    EXPECT_EQ(t.state(), fpga::HealthState::Quarantined);
    EXPECT_FALSE(t.permanentlyQuarantined());
    EXPECT_GE(t.transitions().size(), 2u);
}

TEST(HealthTracker, DegradedRecoversWhenRateDrops)
{
    fpga::HealthTracker t(fastHealth());
    t.recordSuccess(0);
    t.recordFailure(1, "x");
    EXPECT_EQ(t.state(), fpga::HealthState::Degraded);
    // Successes push the failure out of the 4-sample window.
    t.recordSuccess(2);
    t.recordSuccess(3);
    t.recordSuccess(4);
    t.recordSuccess(5);
    EXPECT_EQ(t.state(), fpga::HealthState::Healthy);
}

TEST(HealthTracker, ProbationReinstatesAfterCooldown)
{
    fpga::HealthPolicy h = fastHealth();
    fpga::HealthTracker t(h);
    t.recordFailure(0, "a");
    t.recordFailure(1, "b");
    ASSERT_EQ(t.state(), fpga::HealthState::Quarantined);

    // Before the cool-down: still quarantined.
    t.tick(h.probationAfter / 2);
    EXPECT_EQ(t.state(), fpga::HealthState::Quarantined);

    t.tick(2 + h.probationAfter);
    ASSERT_EQ(t.state(), fpga::HealthState::Probation);

    t.recordSuccess(3 + h.probationAfter);
    EXPECT_EQ(t.state(), fpga::HealthState::Probation);
    t.recordSuccess(4 + h.probationAfter);
    EXPECT_EQ(t.state(), fpga::HealthState::Healthy);
}

TEST(HealthTracker, ProbationFailureRequarantines)
{
    fpga::HealthPolicy h = fastHealth();
    fpga::HealthTracker t(h);
    t.recordFailure(0, "a");
    t.recordFailure(1, "b");
    t.tick(2 + h.probationAfter);
    ASSERT_EQ(t.state(), fpga::HealthState::Probation);
    t.recordFailure(3 + h.probationAfter, "relapse");
    EXPECT_EQ(t.state(), fpga::HealthState::Quarantined);
}

TEST(HealthTracker, ForgeryQuarantinesPermanentlyNoProbation)
{
    fpga::HealthPolicy h = fastHealth();
    fpga::HealthTracker t(h);
    t.recordSuccess(0);
    t.recordForgery(1, "MAC mismatch");
    EXPECT_EQ(t.state(), fpga::HealthState::Quarantined);
    EXPECT_TRUE(t.permanentlyQuarantined());
    // No amount of cool-down earns a forging shell probation.
    t.tick(10 * h.probationAfter);
    EXPECT_EQ(t.state(), fpga::HealthState::Quarantined);
}

// ---- Fleet message serde --------------------------------------------

TEST(FleetSerde, HeartbeatFramesRoundTrip)
{
    HeartbeatRequest req;
    req.deviceId = 7;
    req.nonce = 0x1122334455667788ull;
    HeartbeatRequest req2 = HeartbeatRequest::deserialize(req.serialize());
    EXPECT_EQ(req2.deviceId, req.deviceId);
    EXPECT_EQ(req2.nonce, req.nonce);

    HeartbeatResponse rsp;
    rsp.reachable = 1;
    rsp.authentic = 0;
    rsp.count = 42;
    rsp.nonceEcho = req.nonce + 1;
    rsp.failure = "heartbeat response MAC forged";
    HeartbeatResponse rsp2 =
        HeartbeatResponse::deserialize(rsp.serialize());
    EXPECT_EQ(rsp2.reachable, 1);
    EXPECT_EQ(rsp2.authentic, 0);
    EXPECT_EQ(rsp2.count, 42u);
    EXPECT_EQ(rsp2.nonceEcho, rsp.nonceEcho);
    EXPECT_EQ(rsp2.failure, rsp.failure);

    // Truncation dies in serde, not in the caller.
    Bytes whole = rsp.serialize();
    Bytes cut(whole.begin(), whole.begin() + 3);
    EXPECT_THROW(HeartbeatResponse::deserialize(cut), SerdeError);
    // Out-of-range flags are rejected.
    whole[0] = 9;
    EXPECT_THROW(HeartbeatResponse::deserialize(whole), SerdeError);
}

TEST(FleetSerde, FailoverRecordRoundTrips)
{
    FailoverRecord rec;
    rec.fromDevice = 0;
    rec.toDevice = 2;
    rec.atNanos = 123456789;
    rec.reason = "no heartbeat (status 0)";
    rec.oldFingerprint = Bytes(32, 0xaa);
    rec.newFingerprint = Bytes(32, 0xbb);
    rec.attested = 1;
    rec.attempts = 1;
    FailoverRecord rec2 = FailoverRecord::deserialize(rec.serialize());
    EXPECT_EQ(rec2.fromDevice, rec.fromDevice);
    EXPECT_EQ(rec2.toDevice, rec.toDevice);
    EXPECT_EQ(rec2.atNanos, rec.atNanos);
    EXPECT_EQ(rec2.reason, rec.reason);
    EXPECT_EQ(rec2.oldFingerprint, rec.oldFingerprint);
    EXPECT_EQ(rec2.newFingerprint, rec.newFingerprint);
    EXPECT_EQ(rec2.attested, 1);
    EXPECT_EQ(rec2.attempts, 1u);
}

TEST(FleetSerde, SmJournalRoundTripsAllFields)
{
    SmJournal j;
    j.version = 17;
    j.haveMetadata = 1;
    j.metadata = Bytes{1, 2, 3};
    j.deviceKeys.emplace_back(0xd00dull, Bytes(32, 0x11));
    j.deviceKeys.emplace_back(0xbeefull, Bytes(32, 0x22));
    SmJournalDevice d;
    d.deviceId = 1;
    d.dna = 0xbeef;
    d.deployed = 1;
    d.attested = 1;
    d.haveSecrets = 1;
    d.keyAttest = Bytes(16, 0x33);
    d.keySession = Bytes(48, 0x44);
    d.ctrBase = 1000;
    d.ctrReserve = 1064;
    d.havePendingRekey = 1;
    d.pendingRekeyMacKey = Bytes(32, 0x55);
    d.pendingRekeyNonce = 77;
    j.devices.push_back(d);
    j.activeDevice = 1;
    j.retiredFingerprints.push_back(Bytes(32, 0x66));

    SmJournal j2 = SmJournal::deserialize(j.serialize());
    EXPECT_EQ(j2.version, 17u);
    EXPECT_EQ(j2.haveMetadata, 1);
    EXPECT_EQ(j2.metadata, j.metadata);
    ASSERT_EQ(j2.deviceKeys.size(), 2u);
    EXPECT_EQ(j2.deviceKeys[1].first, 0xbeefull);
    EXPECT_EQ(j2.deviceKeys[1].second, Bytes(32, 0x22));
    ASSERT_EQ(j2.devices.size(), 1u);
    EXPECT_EQ(j2.devices[0].dna, 0xbeefull);
    EXPECT_EQ(j2.devices[0].keyAttest, d.keyAttest);
    EXPECT_EQ(j2.devices[0].keySession, d.keySession);
    EXPECT_EQ(j2.devices[0].ctrReserve, 1064u);
    EXPECT_EQ(j2.devices[0].pendingRekeyNonce, 77u);
    EXPECT_EQ(j2.activeDevice, 1u);
    ASSERT_EQ(j2.retiredFingerprints.size(), 1u);
    EXPECT_EQ(j2.retiredFingerprints[0], Bytes(32, 0x66));
}

TEST(FleetSerde, SmJournalRejectsGarbage)
{
    SmJournal j;
    j.version = 1;
    Bytes good = j.serialize();

    Bytes badMagic = good;
    badMagic[0] ^= 0xff;
    EXPECT_THROW(SmJournal::deserialize(badMagic), SerdeError);

    Bytes cut(good.begin(), good.begin() + 5);
    EXPECT_THROW(SmJournal::deserialize(cut), SerdeError);

    // A wrong-size device key must be refused.
    SmJournal k;
    k.version = 1;
    k.deviceKeys.emplace_back(1ull, Bytes(31, 0));
    EXPECT_THROW(SmJournal::deserialize(k.serialize()), SerdeError);
}

// ---- Typed-error parity ---------------------------------------------

TEST(ErrorContextParity, BitstreamTeeAndFailoverErrorsCarryContext)
{
    ErrorContext ctx{"sm-enclave", "device-0", "deploy", 2};

    BitstreamError be("crc mismatch", ctx);
    EXPECT_NE(std::string(be.what()).find("sm-enclave->device-0"),
              std::string::npos);
    EXPECT_EQ(be.context().method, "deploy");
    EXPECT_EQ(be.context().attempt, 2);

    TeeError te("seal refused", ctx);
    EXPECT_NE(std::string(te.what()).find("deploy"), std::string::npos);
    EXPECT_EQ(te.context().to, "device-0");

    FailoverError fe("session moved", ctx);
    EXPECT_NE(std::string(fe.what()).find("failover:"),
              std::string::npos);
    EXPECT_EQ(fe.context().from, "sm-enclave");

    SmCrashError ce("before journal write 3");
    EXPECT_NE(std::string(ce.what()).find("sm-crash:"),
              std::string::npos);
}

// ---- Heartbeats against a live testbed ------------------------------

TEST(Heartbeat, ActiveDeviceAnswersWithMonotoneBeatCount)
{
    TestbedConfig cfg;
    cfg.rngSeed = 3;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    auto r1 = tb.smApp().heartbeatDevice(0);
    EXPECT_TRUE(r1.ok()) << r1.failure;
    auto r2 = tb.smApp().heartbeatDevice(0);
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(r2.count, r1.count + 1); // replayed "alive" can't pass
}

TEST(Heartbeat, SparesAnswerPlainReachabilityProbe)
{
    TestbedConfig cfg;
    cfg.rngSeed = 4;
    cfg.deviceCount = 2;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    auto spare = tb.smApp().heartbeatDevice(1);
    EXPECT_TRUE(spare.ok()) << spare.failure;

    auto unknown = tb.smApp().heartbeatDevice(9);
    EXPECT_FALSE(unknown.reachable);
}

TEST(Heartbeat, DeadDeviceIsUnreachable)
{
    TestbedConfig cfg;
    cfg.rngSeed = 5;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    tb.faultInjector().arm(sim::FaultRule::deviceDead(0));
    auto r = tb.smApp().heartbeatDevice(0);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.authentic);
}

TEST(Heartbeat, ForgingShellIsDetectedAndPermanentlyQuarantined)
{
    TestbedConfig cfg;
    cfg.rngSeed = 6;
    cfg.maliciousShell = true;
    cfg.attackPlan.forgeHeartbeats = true;
    cfg.health = fastHealth();
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    // The shell swallows the probe and fabricates "alive" — but it
    // cannot compute the response MAC without Key_attest.
    auto r = tb.smApp().heartbeatDevice(0);
    EXPECT_TRUE(r.reachable);
    EXPECT_FALSE(r.authentic);

    tb.supervisor().pollOnce();
    EXPECT_EQ(tb.supervisor().state(0),
              fpga::HealthState::Quarantined);
    EXPECT_TRUE(tb.supervisor().tracker(0).permanentlyQuarantined());
}

// ---- Expected-monotone beat floor (replay regression) ---------------

namespace {

/** A scripted supervisor: the probe function replays whatever the
 *  test puts in `script[device]`, no testbed involved. */
struct ScriptedFleet
{
    sim::VirtualClock clock;
    std::map<uint32_t, std::deque<SmEnclaveApp::HeartbeatResult>> script;
    uint32_t active = 0;

    SupervisorDeps deps(uint32_t deviceCount)
    {
        SupervisorDeps d;
        d.clock = &clock;
        d.deviceCount = deviceCount;
        d.health = fastHealth();
        d.activeDevice = [this] { return active; };
        d.probe = [this](uint32_t dev) {
            auto &q = script[dev];
            if (q.empty())
                return SmEnclaveApp::HeartbeatResult{};
            SmEnclaveApp::HeartbeatResult r = q.front();
            q.pop_front();
            return r;
        };
        return d;
    }

    static SmEnclaveApp::HeartbeatResult beat(uint64_t count)
    {
        SmEnclaveApp::HeartbeatResult r;
        r.reachable = true;
        r.authentic = true;
        r.count = count;
        return r;
    }

    static SmEnclaveApp::HeartbeatResult dead()
    {
        SmEnclaveApp::HeartbeatResult r;
        r.failure = "no response";
        return r;
    }
};

} // namespace

TEST(BeatFloor, StaleReplayAfterProbationReinstatementIsRejected)
{
    // The attack this floor exists for: a man-in-the-middle captures
    // an authentic MAC'd heartbeat while the device is healthy, waits
    // for the device to be quarantined and reinstated via probation,
    // then replays the capture to keep a dead device looking alive.
    // The floor is deliberately KEPT across the quarantine, so the
    // replayed count <= floor reads as a forgery.
    ScriptedFleet fleet;
    FleetSupervisor sup(fleet.deps(1));

    // Healthy polls raise the floor to 3.
    for (uint64_t c : {1, 2, 3})
        fleet.script[0].push_back(ScriptedFleet::beat(c));
    for (int i = 0; i < 3; ++i)
        sup.pollOnce();
    ASSERT_EQ(sup.state(0), fpga::HealthState::Healthy);

    // The device dies; the breaker quarantines it (three failures
    // push the 4-sample window past the 0.6 threshold).
    for (int i = 0; i < 3; ++i) {
        fleet.script[0].push_back(ScriptedFleet::dead());
        sup.pollOnce();
    }
    ASSERT_EQ(sup.state(0), fpga::HealthState::Quarantined);
    ASSERT_FALSE(sup.tracker(0).permanentlyQuarantined());

    // Cool-down passes; the next poll offers probation and probes.
    fleet.clock.advance(fastHealth().probationAfter + sim::kMs);
    fleet.script[0].push_back(ScriptedFleet::beat(3)); // replayed
    sup.pollOnce();

    // The stale capture is authentic but at the floor: forgery,
    // permanent quarantine — the replay bought the attacker nothing.
    EXPECT_EQ(sup.state(0), fpga::HealthState::Quarantined);
    EXPECT_TRUE(sup.tracker(0).permanentlyQuarantined());
    EXPECT_NE(sup.tracker(0).lastReason().find("stale heartbeat"),
              std::string::npos);
}

TEST(BeatFloor, FreshCountAfterProbationIsAcceptedAboveFloor)
{
    // Control for the replay test: a genuinely recovered device keeps
    // counting past the floor and earns reinstatement normally.
    ScriptedFleet fleet;
    FleetSupervisor sup(fleet.deps(1));

    for (uint64_t c : {1, 2, 3})
        fleet.script[0].push_back(ScriptedFleet::beat(c));
    for (int i = 0; i < 3; ++i)
        sup.pollOnce();
    for (int i = 0; i < 3; ++i) {
        fleet.script[0].push_back(ScriptedFleet::dead());
        sup.pollOnce();
    }
    ASSERT_EQ(sup.state(0), fpga::HealthState::Quarantined);

    fleet.clock.advance(fastHealth().probationAfter + sim::kMs);
    fleet.script[0].push_back(ScriptedFleet::beat(4));
    fleet.script[0].push_back(ScriptedFleet::beat(5));
    sup.pollOnce();
    sup.pollOnce();
    EXPECT_EQ(sup.state(0), fpga::HealthState::Healthy);
}

TEST(BeatFloor, ResetsOnNewDeploymentEpochAfterMigration)
{
    // A redeployed device restarts its fabric beat counter at 1. The
    // floor must be forgotten exactly then — and only then — or the
    // fresh epoch's first beats would be misread as replays.
    ScriptedFleet fleet;
    SupervisorDeps deps = fleet.deps(2);
    deps.migrate = [&fleet](uint32_t, uint32_t to, const std::string &) {
        MigrationRecord rec;
        rec.attested = 1;
        fleet.active = to;
        return rec;
    };
    FleetSupervisor sup(std::move(deps));

    // Device 0 serves with a high beat count; device 1 idles as a
    // spare (spares answer count 0 until deployed).
    for (uint64_t c : {40, 41}) {
        fleet.script[0].push_back(ScriptedFleet::beat(c));
        fleet.script[1].push_back(ScriptedFleet::beat(0));
    }
    sup.pollOnce();
    sup.pollOnce();

    // Planned move 0 -> 1, then back 1 -> 0 (rolling-upgrade shape).
    sup.migrateActiveTo(1, "drain for upgrade");
    ASSERT_EQ(fleet.active, 1u);
    fleet.script[0].push_back(ScriptedFleet::beat(0)); // now the spare
    fleet.script[1].push_back(ScriptedFleet::beat(1)); // fresh epoch
    sup.pollOnce();
    EXPECT_EQ(sup.state(1), fpga::HealthState::Healthy);

    sup.migrateActiveTo(0, "upgrade done, move back");
    ASSERT_EQ(fleet.active, 0u);
    ASSERT_EQ(sup.migrations().size(), 2u);

    // Device 0 was redeployed: count 1 despite the old floor of 41.
    // Accepted — the migration reset the expectation.
    fleet.script[0].push_back(ScriptedFleet::beat(1));
    fleet.script[1].push_back(ScriptedFleet::beat(0));
    sup.pollOnce();
    EXPECT_EQ(sup.state(0), fpga::HealthState::Healthy);
    EXPECT_FALSE(sup.tracker(0).permanentlyQuarantined());
}

// ---- Deterministic attested failover --------------------------------

namespace {

struct FailoverRun
{
    bool deployOk = false;
    uint64_t clockEnd = 0;
    Bytes oldFp;
    Bytes newFp;
    bool oldRetired = false;
    bool newRetired = false;
    uint32_t activeAfter = 0;
    size_t failovers = 0;
    FailoverRecord rec;
    bool postWriteOk = false;
    uint64_t postRead = 0;
    uint64_t newDeviceRegOps = 0;
    std::string traceJson;   ///< full Chrome trace of the scenario
    std::string metricsText; ///< deterministic metrics dump
};

FailoverRun
runFailoverScenario(uint64_t seed)
{
    FailoverRun run;
    TestbedConfig cfg;
    cfg.rngSeed = seed;
    cfg.deviceCount = 3;
    cfg.health = fastHealth();
    Testbed tb(cfg);

    // The whole scenario runs traced: the seed sweep below byte-
    // compares the exported trace/metrics across same-seed runs.
    obs::TraceRecorder recorder(tb.clock());
    obs::MetricsRegistry metricsReg;
    auto scenario = [&] {
        tb.installCl(loopbackAccel());
        run.deployOk = tb.runDeployment().ok;
        if (!run.deployOk)
            return;
        EXPECT_TRUE(tb.userApp().secureWrite(0x00, 41));
        run.oldFp = tb.smApp().secretsFingerprint();

        // Warm watchdog view: everything healthy.
        tb.supervisor().runFor(50 * sim::kMs);
        EXPECT_TRUE(tb.supervisor().failovers().empty());

        // Kill device 0 mid-session.
        tb.faultInjector().arm(sim::FaultRule::deviceDead(0));
        tb.supervisor().runFor(300 * sim::kMs);

        run.failovers = tb.supervisor().failovers().size();
        if (run.failovers > 0)
            run.rec = tb.supervisor().failovers().front();
        run.activeAfter = tb.smApp().activeDevice();
        run.newFp = tb.smApp().secretsFingerprint();
        run.oldRetired = tb.smApp().everRetiredFingerprint(run.oldFp);
        run.newRetired = tb.smApp().everRetiredFingerprint(run.newFp);

        // The session continues on the spare.
        run.postWriteOk = tb.userApp().secureWrite(0x00, 77);
        auto value = tb.userApp().secureRead(0x00);
        run.postRead = value.value_or(0);
        run.newDeviceRegOps = tb.shell(run.activeAfter)
                                  .registerRead(pcie::Window::SmSecure,
                                                kSmRegStatRegOpOk);
        run.clockEnd = tb.clock().now();
    };
    {
        obs::ObsScope scope(&recorder, &metricsReg);
        scenario();
    }
    run.traceJson = recorder.chromeTraceJson();
    run.metricsText = metricsReg.renderText();
    return run;
}

} // namespace

TEST(Failover, DeadDeviceFailsOverWithFreshAttestedSession)
{
    FailoverRun run = runFailoverScenario(7);
    ASSERT_TRUE(run.deployOk);
    ASSERT_EQ(run.failovers, 1u);
    EXPECT_EQ(run.rec.fromDevice, 0u);
    EXPECT_EQ(run.rec.toDevice, run.activeAfter);
    EXPECT_NE(run.activeAfter, 0u);
    // The cascaded attestation re-ran end to end on the new device.
    EXPECT_EQ(run.rec.attested, 1);

    // Key freshness: the dead device's session secrets are retired,
    // the new session's never were, and the two share no fingerprint.
    ASSERT_FALSE(run.oldFp.empty());
    ASSERT_FALSE(run.newFp.empty());
    EXPECT_NE(run.oldFp, run.newFp);
    EXPECT_TRUE(run.oldRetired);
    EXPECT_FALSE(run.newRetired);
    EXPECT_EQ(run.rec.oldFingerprint, run.oldFp);
    EXPECT_EQ(run.rec.newFingerprint, run.newFp);

    // Traffic continues — and the new device's SM logic counted
    // exactly our two post-failover channel ops (write + read).
    EXPECT_TRUE(run.postWriteOk);
    EXPECT_EQ(run.postRead, 77u);
    EXPECT_EQ(run.newDeviceRegOps, 2u);
}

TEST(Failover, SameSeedRunsAreBitForBitIdentical)
{
    FailoverRun a = runFailoverScenario(7);
    FailoverRun b = runFailoverScenario(7);
    EXPECT_EQ(a.clockEnd, b.clockEnd);
    EXPECT_EQ(a.rec.atNanos, b.rec.atNanos);
    EXPECT_EQ(a.rec.toDevice, b.rec.toDevice);
    EXPECT_EQ(a.oldFp, b.oldFp);
    EXPECT_EQ(a.newFp, b.newFp);
    EXPECT_EQ(a.postRead, b.postRead);

    // The exported observability artifacts are part of the replay
    // contract: same seed ⇒ byte-identical trace and metrics dump.
    ASSERT_GT(a.traceJson.size(), 1000u);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.metricsText, b.metricsText);

    // A different seed derives different key material. (The trace can
    // legitimately coincide: span timing comes from the cost model,
    // not from the seeded key bytes.)
    FailoverRun c = runFailoverScenario(8);
    ASSERT_TRUE(c.deployOk);
    EXPECT_NE(c.newFp, a.newFp);
}

TEST(Failover, GuardedOpSurfacesTypedFailoverError)
{
    TestbedConfig cfg;
    cfg.rngSeed = 9;
    cfg.deviceCount = 2;
    cfg.health = fastHealth();
    cfg.health.minSamples = 1;
    cfg.health.quarantineThreshold = 0.5;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    ASSERT_TRUE(tb.userApp().secureWrite(0x08, 1));

    tb.faultInjector().arm(sim::FaultRule::deviceDead(0));

    bool threw = false;
    try {
        tb.supervisor().guardedOp(
            [&] { return tb.userApp().secureWrite(0x08, 2); },
            "secureWrite");
    } catch (const FailoverError &e) {
        threw = true;
        EXPECT_EQ(e.context().method, "secureWrite");
        EXPECT_NE(std::string(e.what()).find("not auto-replayed"),
                  std::string::npos);
    }
    ASSERT_TRUE(threw);

    // The session failed over to the spare with a fresh attestation;
    // the interrupted write never committed anywhere and the caller
    // re-issues it explicitly on the new session (exactly-once).
    EXPECT_EQ(tb.smApp().activeDevice(), 1u);
    EXPECT_TRUE(tb.smApp().bootStatus().ok());
    EXPECT_TRUE(tb.userApp().secureWrite(0x08, 2));
    EXPECT_EQ(tb.userApp().secureRead(0x08), 2u);
    EXPECT_EQ(tb.shell(1).registerRead(pcie::Window::SmSecure,
                                       kSmRegStatRegOpOk),
              2u);
}

TEST(Failover, NoSpareLeavesSessionDownButRecorded)
{
    TestbedConfig cfg;
    cfg.rngSeed = 10;
    cfg.deviceCount = 1;
    cfg.health = fastHealth();
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    tb.faultInjector().arm(sim::FaultRule::deviceDead(0));
    tb.supervisor().runFor(200 * sim::kMs);
    EXPECT_EQ(tb.supervisor().state(0),
              fpga::HealthState::Quarantined);
    EXPECT_TRUE(tb.supervisor().failovers().empty());
}

// ---- SM-enclave crash recovery --------------------------------------

namespace {

/** The canonical session whose journal writes the sweep enumerates:
 *  deploy (key-fetch + attest commits), traffic, an explicit rekey
 *  commit, more traffic. */
void
runJournaledSession(Testbed &tb)
{
    tb.installCl(loopbackAccel());
    UserClient::Outcome out = tb.runDeployment();
    if (!out.ok)
        throw SalusError("deployment failed: " + out.failure);
    if (!tb.userApp().secureWrite(0x00, 1))
        throw SalusError("write failed");
    if (!tb.userApp().rekeySession())
        throw SalusError("rekey failed");
    if (!tb.userApp().secureWrite(0x00, 2))
        throw SalusError("write failed");
}

int
baselineJournalWrites()
{
    static int n = [] {
        TestbedConfig cfg;
        cfg.rngSeed = 11;
        Testbed tb(cfg);
        runJournaledSession(tb);
        return int(tb.smApp().journalWrites());
    }();
    return n;
}

} // namespace

class SmCrashSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(SmCrashSweep, EveryJournalStepRecoversConsistently)
{
    auto [step, afterPersist] = GetParam();
    ASSERT_GE(baselineJournalWrites(), 3)
        << "scenario no longer journals enough steps to sweep";
    if (step >= baselineJournalWrites())
        GTEST_SKIP() << "scenario only journals "
                     << baselineJournalWrites() << " steps";

    TestbedConfig cfg;
    cfg.rngSeed = 11;
    cfg.faultPlan.add(
        sim::FaultRule::smCrash(uint64_t(step), afterPersist));
    Testbed tb(cfg);

    bool crashed = false;
    try {
        runJournaledSession(tb);
    } catch (const SmCrashError &) {
        crashed = true;
    }
    ASSERT_TRUE(crashed) << "armed crash at step " << step
                         << " never fired";

    SmEnclaveApp::RecoveryReport rep = tb.crashAndRecoverSmApp();
    // Honest host: every crash point recovers to a consistent
    // deployment table (or a genuine fresh start when the crash
    // preceded the very first persist). Never fail-closed, never a
    // partially adopted journal.
    EXPECT_TRUE(rep.status == SmEnclaveApp::RecoveryStatus::Recovered ||
                rep.status == SmEnclaveApp::RecoveryStatus::NoJournal)
        << rep.detail;
    EXPECT_FALSE(tb.smApp().failedClosed());
    EXPECT_EQ(rep.reattestFailures, 0u);

    // And the platform serves attested traffic again end to end.
    UserClient::Outcome out = tb.runDeployment();
    ASSERT_TRUE(out.ok) << out.failure;
    EXPECT_TRUE(tb.userApp().secureWrite(0x10, 5));
    EXPECT_EQ(tb.userApp().secureRead(0x10), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    AllJournalSteps, SmCrashSweep,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>> &info) {
        return "step" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "_postStore" : "_preStore");
    });

TEST(SmCrashRecovery, RecoveredInstanceSkipsManufacturerRoundTrip)
{
    TestbedConfig cfg;
    cfg.rngSeed = 12;
    Testbed tb(cfg);
    runJournaledSession(tb);
    ASSERT_TRUE(tb.smApp().haveDeviceKey());

    auto rep = tb.crashAndRecoverSmApp();
    ASSERT_EQ(rep.status, SmEnclaveApp::RecoveryStatus::Recovered)
        << rep.detail;
    // Key_device came back from the sealed journal, and the device
    // the journal claimed attested was re-attested before serving.
    EXPECT_TRUE(tb.smApp().haveDeviceKey());
    EXPECT_TRUE(tb.smApp().bootStatus().attested);
    EXPECT_EQ(rep.reattestFailures, 0u);
}

TEST(SmCrashRecovery, RolledBackJournalIsRejectedAndFailsClosed)
{
    TestbedConfig cfg;
    cfg.rngSeed = 13;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    Bytes stale = tb.sealedJournal();
    ASSERT_FALSE(stale.empty());
    // Advance the journal (and the platform monotonic counter).
    ASSERT_TRUE(tb.userApp().rekeySession());
    ASSERT_NE(tb.sealedJournal(), stale);

    // Malicious host restores the older sealed blob.
    tb.sealedJournal() = stale;
    auto rep = tb.crashAndRecoverSmApp();
    EXPECT_EQ(rep.status, SmEnclaveApp::RecoveryStatus::RolledBack);
    EXPECT_TRUE(tb.smApp().failedClosed());

    // Failed closed: no boot, no channel traffic.
    UserClient::Outcome out = tb.runDeployment();
    EXPECT_FALSE(out.ok);
}

TEST(SmCrashRecovery, MissingOrCorruptJournalFailsClosed)
{
    TestbedConfig cfg;
    cfg.rngSeed = 14;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    // Deleted journal with a non-zero counter => rollback.
    Bytes saved = tb.sealedJournal();
    tb.sealedJournal().clear();
    auto repMissing = tb.crashAndRecoverSmApp();
    EXPECT_EQ(repMissing.status,
              SmEnclaveApp::RecoveryStatus::RolledBack);
    EXPECT_TRUE(tb.smApp().failedClosed());

    // Bit-flipped sealed blob => corrupt (seal authentication fails).
    tb.sealedJournal() = saved;
    tb.sealedJournal()[tb.sealedJournal().size() / 2] ^= 0x40;
    auto repCorrupt = tb.crashAndRecoverSmApp();
    EXPECT_EQ(repCorrupt.status, SmEnclaveApp::RecoveryStatus::Corrupt);
    EXPECT_TRUE(tb.smApp().failedClosed());
}
