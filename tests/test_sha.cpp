/**
 * @file
 * SHA-256 / SHA-512 known-answer tests (FIPS 180-4 examples) and
 * streaming-equivalence properties.
 */

#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/random.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

using namespace salus;
using namespace salus::crypto;

TEST(Sha256, EmptyMessage)
{
    EXPECT_EQ(hexEncode(Sha256::digest(ByteView())),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(hexEncode(Sha256::digest(bytesFromString("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(hexEncode(Sha256::digest(bytesFromString(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                  "mnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Bytes chunk(1000, uint8_t('a'));
    Sha256 h;
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(hexEncode(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha512, EmptyMessage)
{
    EXPECT_EQ(hexEncode(Sha512::digest(ByteView())),
              "cf83e1357eefb8bdf1542850d66d8007"
              "d620e4050b5715dc83f4a921d36ce9ce"
              "47d0d13c5d85f2b0ff8318d2877eec2f"
              "63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc)
{
    EXPECT_EQ(hexEncode(Sha512::digest(bytesFromString("abc"))),
              "ddaf35a193617abacc417349ae204131"
              "12e6fa4e89a97ea20a9eeee64b55d39a"
              "2192992a274fc1a836ba3c23a3feebbd"
              "454d4423643ce80e2a9ac94fa54ca49f");
}

/**
 * Hashing a message in arbitrary chunkings must equal the one-shot
 * digest — exercises the buffered-update paths.
 */
class ShaChunking : public ::testing::TestWithParam<size_t>
{};

TEST_P(ShaChunking, MatchesOneShot256)
{
    CtrDrbg rng(42);
    Bytes msg = rng.bytes(3001);
    Bytes expected = Sha256::digest(msg);

    Sha256 h;
    size_t chunk = GetParam();
    for (size_t off = 0; off < msg.size(); off += chunk) {
        size_t n = std::min(chunk, msg.size() - off);
        h.update(ByteView(msg.data() + off, n));
    }
    EXPECT_EQ(h.finish(), expected);
}

TEST_P(ShaChunking, MatchesOneShot512)
{
    CtrDrbg rng(43);
    Bytes msg = rng.bytes(3001);
    Bytes expected = Sha512::digest(msg);

    Sha512 h;
    size_t chunk = GetParam();
    for (size_t off = 0; off < msg.size(); off += chunk) {
        size_t n = std::min(chunk, msg.size() - off);
        h.update(ByteView(msg.data() + off, n));
    }
    EXPECT_EQ(h.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ShaChunking,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128,
                                           129, 1000));

TEST(Sha256, ContextResetsAfterFinish)
{
    Sha256 h;
    h.update(bytesFromString("abc"));
    Bytes first = h.finish();
    h.update(bytesFromString("abc"));
    EXPECT_EQ(h.finish(), first);
}

TEST(Sha256, BoundaryLengthsAroundPadding)
{
    // 55/56/57 and 63/64/65 bytes exercise the padding split points.
    for (size_t len : {size_t(55), size_t(56), size_t(57), size_t(63),
                       size_t(64), size_t(65), size_t(119), size_t(120)}) {
        Bytes msg(len, uint8_t(0x5a));
        Bytes d1 = Sha256::digest(msg);
        Sha256 h;
        h.update(ByteView(msg.data(), len / 2));
        h.update(ByteView(msg.data() + len / 2, len - len / 2));
        EXPECT_EQ(h.finish(), d1) << "len=" << len;
    }
}
