/**
 * @file
 * Tests for the simulation substrate itself: virtual clock semantics,
 * phase attribution, cost-model helpers, duration formatting, logging
 * levels — plus a paper-scale (32 MiB bitstream) smoke deployment.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"

using namespace salus;
using namespace salus::sim;

TEST(VirtualClockTest, AdvanceAndAttribution)
{
    VirtualClock clock;
    EXPECT_EQ(clock.now(), 0u);

    clock.spend("alpha", 100);
    clock.advance(50);
    clock.spend("beta", 25);
    clock.spend("alpha", 5);

    EXPECT_EQ(clock.now(), 180u);
    EXPECT_EQ(clock.totalFor("alpha"), 105u);
    EXPECT_EQ(clock.totalFor("beta"), 25u);
    EXPECT_EQ(clock.totalFor("gamma"), 0u);
    ASSERT_EQ(clock.trace().size(), 3u);
    EXPECT_EQ(clock.trace()[1].start, 150u);

    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
    EXPECT_TRUE(clock.trace().empty());
}

TEST(VirtualClockTest, PhaseStackSemantics)
{
    VirtualClock clock;
    EXPECT_EQ(clock.currentPhase(), "(untracked)");
    {
        ScopedPhase outer(clock, "outer");
        EXPECT_EQ(clock.currentPhase(), "outer");
        clock.spend(10);
        {
            ScopedPhase inner(clock, "inner");
            EXPECT_EQ(clock.currentPhase(), "inner");
            clock.spend(7);
        }
        EXPECT_EQ(clock.currentPhase(), "outer");
    }
    EXPECT_EQ(clock.currentPhase(), "(untracked)");
    clock.spend(3);

    EXPECT_EQ(clock.totalFor("outer"), 10u);
    EXPECT_EQ(clock.totalFor("inner"), 7u);
    EXPECT_EQ(clock.totalFor("(untracked)"), 3u);

    clock.popPhase(); // extra pop on empty stack is harmless
}

TEST(FormatNanosTest, HumanUnits)
{
    EXPECT_EQ(formatNanos(500), "500 ns");
    EXPECT_EQ(formatNanos(1500), "1.5 us");
    EXPECT_EQ(formatNanos(2 * kMs), "2.00 ms");
    EXPECT_EQ(formatNanos(3 * kSec + 140 * kMs), "3.14 s");
}

TEST(CostModelTest, TransferAndRpcScale)
{
    CostModel cost;
    EXPECT_EQ(transferTime(0.0, 100), 0u);
    EXPECT_EQ(transferTime(1e9, 1000000000), kSec);

    // RPC = RTT + payload time; bigger payload on a slower link costs
    // more, and the WAN RTT dominates small messages.
    Nanos tiny = cost.rpc(LinkKind::Wan, 10, 10);
    Nanos big = cost.rpc(LinkKind::Wan, 10 << 20, 10);
    EXPECT_GE(tiny, cost.wanRtt);
    EXPECT_GT(big, tiny);
    EXPECT_LT(cost.rpc(LinkKind::Loopback, 10, 10), tiny);
    EXPECT_LT(cost.rpc(LinkKind::Pcie, 10, 10), tiny);
}

TEST(CostModelTest, CalibrationAnchorsHold)
{
    // The paper-derived invariants the Figure 9 bench relies on.
    CostModel cost;
    const size_t slr = 32u << 20;

    // Manipulation ~13.8 s and verify+encrypt ~725 ms on 32 MiB.
    EXPECT_NEAR(double(cost.bitstreamManipulation(slr)) / double(kSec),
                13.79, 0.3);
    EXPECT_NEAR(double(cost.bitstreamVerifyEncrypt(slr)) / double(kMs),
                725.0, 30.0);

    // Local attestation in the hundreds of microseconds.
    EXPECT_GT(cost.localAttestation(), 100 * kUs);
    EXPECT_LT(cost.localAttestation(), 3 * kMs);

    // CL attestation near the paper's 1.3 ms.
    EXPECT_GT(cost.clAttestation(), 300 * kUs);
    EXPECT_LT(cost.clAttestation(), 3 * kMs);

    // ShEF CL attestation on 32 MiB lands near the paper's 5.1 s.
    Nanos shef = cost.shefClAttestation(slr);
    EXPECT_GT(shef, 3 * kSec);
    EXPECT_LT(shef, 8 * kSec);
}

TEST(LogTest, LevelsFilter)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    // These must be cheap no-ops below the level (no observable
    // output assertions possible here; exercise the paths).
    logf(LogLevel::Debug, "test", "invisible ", 42);
    logf(LogLevel::Error, "test", "visible once in error runs");
    setLogLevel(LogLevel::Off);
    logf(LogLevel::Error, "test", "fully off");
    setLogLevel(old);
}

TEST(PaperScaleSmoke, FullBootOnU200ScaledDevice)
{
    // The exact configuration the Figure 9 bench uses: a 32 MiB
    // partial bitstream with real crypto end to end. Slowest test in
    // the suite (~1-2 s); guards the bench against bit-rot.
    fpga::ensureBuiltinIps();
    core::SmLogic::registerIp();

    core::TestbedConfig cfg;
    cfg.deviceModel = fpga::u200ScaledModel();
    core::Testbed tb(cfg);

    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {19735, 20169, 326, 512};
    tb.installCl(accel);
    EXPECT_EQ(tb.storedBitstream().size(),
              (32u << 20) + bitstream::bitstreamBodyOffset(
                                cfg.deviceModel.name) +
                  4);

    auto outcome = tb.runDeployment();
    ASSERT_TRUE(outcome.ok) << outcome.failure;

    // Virtual total in the paper's ballpark (18.8 s +- model detail).
    EXPECT_GT(tb.clock().now(), 15 * kSec);
    EXPECT_LT(tb.clock().now(), 25 * kSec);

    // Manipulation is the dominant phase (73.2% in the paper).
    Nanos manip =
        tb.clock().totalFor(core::phases::kBitstreamManip);
    EXPECT_GT(double(manip), 0.6 * double(tb.clock().now()));
}
