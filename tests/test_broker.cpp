/**
 * @file
 * Weighted-DRR scheduler and tenant broker tests: proportional
 * service, the enforced starvation bound under adversarial submit
 * patterns, the bit-for-bit equal-weight regression against the
 * original round-robin order, per-session backpressure accounting,
 * broker quotas / rate limits / overload shedding, the BrokerRequest
 * wire format, and the policy-rejections-are-never-retried contract.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "fpga/ip.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "salus/broker.hpp"
#include "salus/scheduler.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

/** (session, ops) pairs in dispatch order. */
using SliceLog = std::vector<std::pair<uint32_t, size_t>>;

/** Scheduler whose dispatch succeeds and logs every slice. */
BatchScheduler::Dispatch
loggingDispatch(SliceLog &log)
{
    return [&log](uint32_t session,
                  const std::vector<regchan::RegOp> &ops) {
        log.push_back({session, ops.size()});
        return std::vector<regchan::BatchResult>(ops.size());
    };
}

void
fill(BatchScheduler &sched, uint32_t session, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(sched.submit(session, {true, 0x00, i}, nullptr),
                  BatchScheduler::Submit::Accepted);
}

} // namespace

// ------------------------------------------- weighted DRR scheduling

TEST(WeightedScheduler, EqualWeightsReproduceRoundRobinBitForBit)
{
    // The exact slice sequence the pre-DRR rotating round-robin
    // produced for queue depths {5, 70, 33} at maxBatchOps = 32. Any
    // deviation with equal weights is a scheduling regression.
    SliceLog log;
    BatchScheduler::Config cfg;
    cfg.queueCapacity = 128;
    cfg.maxBatchOps = 32;
    BatchScheduler sched(loggingDispatch(log), cfg);
    sched.addSession(0);
    sched.addSession(1);
    sched.addSession(2);
    fill(sched, 0, 5);
    fill(sched, 1, 70);
    fill(sched, 2, 33);

    EXPECT_EQ(sched.drain(), 108u);
    SliceLog expected = {{0, 5}, {1, 32}, {2, 32},
                         {1, 32}, {2, 1}, {1, 6}};
    EXPECT_EQ(log, expected);
}

TEST(WeightedScheduler, ServiceIsProportionalToWeights)
{
    SliceLog log;
    BatchScheduler::Config cfg;
    cfg.queueCapacity = 1024;
    cfg.maxBatchOps = 32;
    BatchScheduler sched(loggingDispatch(log), cfg);
    sched.addSession(1, 1);
    sched.addSession(2, 3);
    EXPECT_EQ(sched.weightOf(2), 3u);
    EXPECT_EQ(sched.totalWeight(), 4u);

    // Both flooded: weight 3 must receive exactly 3x the ops of
    // weight 1 on every sweep (96 vs 32 with maxBatchOps = 32).
    fill(sched, 1, 1024);
    fill(sched, 2, 1024);
    for (int sweep = 0; sweep < 4; ++sweep)
        sched.pumpOnce();
    EXPECT_EQ(sched.dispatchedFor(1), 4u * 32u);
    EXPECT_EQ(sched.dispatchedFor(2), 4u * 96u);
    for (const auto &[id, n] : log)
        EXPECT_EQ(n, id == 1 ? 32u : 96u);
}

TEST(WeightedScheduler, SliceNeverExceedsWireFormatBurstCap)
{
    // A huge weight earns a quantum above the hardware burst limit;
    // the slice must clamp to regchan::kMaxBatchOps and carry the
    // unspent credit (bounded to one extra quantum) instead.
    SliceLog log;
    BatchScheduler::Config cfg;
    cfg.queueCapacity = 4096;
    cfg.maxBatchOps = 64;
    BatchScheduler sched(loggingDispatch(log), cfg);
    sched.addSession(1, 8); // quantum 512 > burst cap 256
    fill(sched, 1, 4000);
    sched.pumpOnce();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].second, regchan::kMaxBatchOps);
    // Carried credit tops the next sweep's grant up to the 2x cap,
    // still clamped to the wire limit per slice.
    sched.pumpOnce();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[1].second, regchan::kMaxBatchOps);
}

TEST(WeightedScheduler, StarvationBoundHoldsUnderHeavyFlood)
{
    // Adversarial pattern 1: one maximal-weight tenant floods while a
    // weight-1 tenant trickles. The light tenant must be served
    // within ceil(W_total / w) sweeps of becoming backlogged — with
    // DRR it is served every sweep it waits in.
    SliceLog log;
    BatchScheduler::Config cfg;
    cfg.queueCapacity = 8192;
    cfg.maxBatchOps = 16;
    BatchScheduler sched(loggingDispatch(log), cfg);
    sched.addSession(1, kMaxSessionWeight);
    sched.addSession(2, 1);

    for (int sweep = 0; sweep < 64; ++sweep) {
        for (int i = 0; i < 256; ++i)
            sched.submit(1, {true, 0, 0}, nullptr);
        sched.submit(2, {true, 8, 0}, nullptr);
        sched.pumpOnce();
        EXPECT_GT(sched.dispatchedFor(2), uint64_t(sweep));
    }
    uint64_t bound = (sched.totalWeight() + 1 - 1) / 1;
    EXPECT_LE(sched.sessionStats(2).maxSweepsWaited, bound);
    // DRR actually serves every backlogged session every sweep.
    EXPECT_EQ(sched.sessionStats(2).maxSweepsWaited, 1u);
    EXPECT_EQ(sched.sessionStats(2).dispatchedOps, 64u);
}

TEST(WeightedScheduler, StarvationBoundHoldsForBurstyOnOffTenant)
{
    // Adversarial pattern 2: an on/off tenant that goes idle (losing
    // any carried credit) and then bursts must still be served the
    // first sweep it is backlogged again.
    SliceLog log;
    BatchScheduler::Config cfg;
    cfg.queueCapacity = 8192;
    cfg.maxBatchOps = 16;
    BatchScheduler sched(loggingDispatch(log), cfg);
    sched.addSession(1, 4);
    sched.addSession(2, 1);

    for (int sweep = 0; sweep < 60; ++sweep) {
        for (int i = 0; i < 128; ++i)
            sched.submit(1, {true, 0, 0}, nullptr);
        if (sweep % 7 == 0)
            for (int i = 0; i < 40; ++i)
                sched.submit(2, {true, 8, 0}, nullptr);
        sched.pumpOnce();
    }
    uint64_t bound = (sched.totalWeight() + 1 - 1) / 1; // ceil(5/1)
    EXPECT_LE(sched.sessionStats(2).maxSweepsWaited, bound);
    EXPECT_GT(sched.sessionStats(2).dispatchedOps, 0u);
}

TEST(WeightedScheduler, StarvationBoundHoldsWithAllTenantsBacklogged)
{
    // Adversarial pattern 3: every session flooded at once with a
    // spread of weights; every one must keep its contractual bound.
    SliceLog log;
    BatchScheduler::Config cfg;
    cfg.queueCapacity = 16384;
    cfg.maxBatchOps = 8;
    BatchScheduler sched(loggingDispatch(log), cfg);
    const uint32_t weights[] = {1, 2, 4, 8};
    for (uint32_t i = 0; i < 4; ++i)
        sched.addSession(i + 1, weights[i]);

    for (int sweep = 0; sweep < 48; ++sweep) {
        for (uint32_t i = 1; i <= 4; ++i)
            for (int k = 0; k < 100; ++k)
                sched.submit(i, {true, 0, 0}, nullptr);
        sched.pumpOnce();
    }
    uint32_t totalW = sched.totalWeight();
    ASSERT_EQ(totalW, 15u);
    for (uint32_t i = 0; i < 4; ++i) {
        uint64_t bound = (totalW + weights[i] - 1) / weights[i];
        EXPECT_LE(sched.sessionStats(i + 1).maxSweepsWaited, bound)
            << "session " << i + 1;
    }
    // Proportionality held too (every sweep dispatched w*8 per session).
    EXPECT_EQ(sched.dispatchedFor(4), 8u * sched.dispatchedFor(1));
}

TEST(WeightedScheduler, PerSessionBackpressureCountersAndMetrics)
{
    obs::MetricsRegistry reg;
    obs::ObsScope scope(nullptr, &reg);

    int refusals = 2;
    SliceLog log;
    BatchScheduler::Config cfg;
    cfg.queueCapacity = 4;
    cfg.maxBatchOps = 4;
    BatchScheduler sched(
        [&](uint32_t session, const std::vector<regchan::RegOp> &ops)
            -> std::vector<regchan::BatchResult> {
            if (session == 1 && refusals-- > 0)
                throw DispatchBackpressure("device saturated");
            log.push_back({session, ops.size()});
            return std::vector<regchan::BatchResult>(ops.size());
        },
        cfg);
    sched.addSession(1);
    sched.addSession(2);
    fill(sched, 1, 4);
    fill(sched, 2, 2);
    // Session 1's queue is full: the 5th submit is refused per-session.
    EXPECT_EQ(sched.submit(1, {true, 0, 0}, nullptr),
              BatchScheduler::Submit::Backpressure);

    // Sweep 1: session 1 refused twice (initial + one retry), session
    // 2 drains. Sweep 2: session 1 drains.
    sched.pumpOnce();
    sched.pumpOnce();

    const BatchScheduler::SessionStats &s1 = sched.sessionStats(1);
    EXPECT_EQ(s1.rejectedBackpressure, 1u);
    EXPECT_EQ(s1.dispatchBackpressure, 2u);
    EXPECT_EQ(s1.retriedSlices, 1u);
    EXPECT_EQ(s1.dispatchedOps, 4u);
    EXPECT_EQ(sched.sessionStats(2).dispatchBackpressure, 0u);
    EXPECT_EQ(sched.sessionStats(2).dispatchedOps, 2u);

    // Mirrored per-session metrics (noisy-neighbour attribution).
    EXPECT_EQ(reg.counter("scheduler.session1.backpressure"), 1u);
    EXPECT_EQ(reg.counter("scheduler.session1.dispatch_backpressure"),
              2u);
    EXPECT_EQ(reg.counter("scheduler.session1.retried_slices"), 1u);
    EXPECT_EQ(reg.counter("scheduler.session2.dispatch_backpressure"),
              0u);
    // Aggregates unchanged by the per-session split.
    EXPECT_EQ(sched.stats().dispatchBackpressure, 2u);
    EXPECT_EQ(sched.stats().retriedSlices, 1u);
}

// --------------------------------------------------- broker policies

namespace {

struct BrokerRig
{
    Testbed tb;
    Broker broker;

    explicit BrokerRig(Broker::Config cfg = Broker::Config(),
                       uint64_t seed = 1)
        : tb(makeConfig(seed)), broker(tb, cfg)
    {
        fpga::ensureBuiltinIps();
        SmLogic::registerIp();
        tb.installCl(loopbackAccel());
        EXPECT_TRUE(tb.runDeployment().ok);
    }

    static TestbedConfig makeConfig(uint64_t seed)
    {
        fpga::ensureBuiltinIps();
        SmLogic::registerIp();
        TestbedConfig cfg;
        cfg.rngSeed = seed;
        return cfg;
    }
};

} // namespace

TEST(Broker, SessionQuotaAndGlobalTableAreEnforced)
{
    Broker::Config cfg;
    cfg.maxTotalSessions = 2;
    BrokerRig rig(cfg);

    TenantPolicy one;
    one.maxSessions = 1;
    uint32_t a = rig.broker.registerTenant("a", one);
    TenantPolicy two;
    two.maxSessions = 4; // above the global table cap
    uint32_t b = rig.broker.registerTenant("b", two);

    uint32_t s1 = rig.broker.openSession(a);
    EXPECT_GE(s1, 1u);
    // Per-tenant quota wall first, typed + context-tagged.
    try {
        rig.broker.openSession(a);
        FAIL() << "expected QuotaExceeded";
    } catch (const QuotaExceeded &e) {
        EXPECT_NE(std::string(e.what()).find("max sessions"),
                  std::string::npos);
        EXPECT_EQ(e.context().from, "tenant-" + std::to_string(a));
    }
    // Global session table next.
    rig.broker.openSession(b);
    EXPECT_THROW(rig.broker.openSession(b), Overloaded);
    EXPECT_EQ(rig.broker.openSessions(), 2u);
    EXPECT_EQ(rig.broker.tenantStats(a).quotaRejected, 1u);
    EXPECT_EQ(rig.broker.tenantStats(b).shedRejected, 1u);
}

TEST(Broker, QueuedOpQuotaIsPerTenantAndDrainsThrough)
{
    BrokerRig rig;
    TenantPolicy p;
    p.maxQueuedOps = 8;
    uint32_t t = rig.broker.registerTenant("quota", p);
    uint32_t s = rig.broker.openSession(t);

    for (int i = 0; i < 8; ++i)
        rig.broker.submit(t, s, {true, 0x00, uint64_t(i)});
    EXPECT_EQ(rig.broker.queuedFor(t), 8u);
    EXPECT_THROW(rig.broker.submit(t, s, {true, 0x00, 9}),
                 QuotaExceeded);

    EXPECT_EQ(rig.broker.drainAll(), 8u);
    EXPECT_EQ(rig.broker.queuedFor(t), 0u);
    EXPECT_EQ(rig.broker.tenantStats(t).admitted, 8u);
    EXPECT_EQ(rig.broker.tenantStats(t).completed, 8u);
    // The wall clears once the backlog drained.
    rig.broker.submit(t, s, {true, 0x00, 10});
    EXPECT_EQ(rig.broker.drainAll(), 1u);
}

TEST(Broker, TokenBucketRateLimitIsDeterministicOnVirtualClock)
{
    BrokerRig rig;
    TenantPolicy p;
    p.maxQueuedOps = 64;
    p.ratePerSec = 1000; // 1 token per virtual millisecond
    p.burst = 4;
    uint32_t t = rig.broker.registerTenant("limited", p);
    uint32_t s = rig.broker.openSession(t);

    for (int i = 0; i < 4; ++i)
        rig.broker.submit(t, s, {true, 0x00, uint64_t(i)});
    EXPECT_THROW(rig.broker.submit(t, s, {true, 0x00, 4}), RateLimited);
    EXPECT_EQ(rig.broker.tenantStats(t).rateRejected, 1u);

    // Virtual time refills the bucket exactly: +3 ms = 3 tokens.
    rig.tb.clock().advance(3 * sim::kMs);
    for (int i = 0; i < 3; ++i)
        rig.broker.submit(t, s, {true, 0x00, uint64_t(i)});
    EXPECT_THROW(rig.broker.submit(t, s, {true, 0x00, 8}), RateLimited);
    EXPECT_EQ(rig.broker.drainAll(), 7u);
}

TEST(Broker, OverloadShedsLowestWeightTenantFirstAndRecovers)
{
    Broker::Config cfg;
    cfg.maxTotalQueuedOps = 8;
    cfg.shedLowWater = 2;
    BrokerRig rig(cfg);

    TenantPolicy heavy;
    heavy.weight = 4;
    heavy.maxQueuedOps = 64;
    TenantPolicy light;
    light.weight = 1;
    light.maxQueuedOps = 64;
    uint32_t hi = rig.broker.registerTenant("hi", heavy);
    uint32_t lo = rig.broker.registerTenant("lo", light);
    uint32_t hs = rig.broker.openSession(hi);
    uint32_t ls = rig.broker.openSession(lo);

    for (int i = 0; i < 4; ++i) {
        rig.broker.submit(hi, hs, {true, 0x00, uint64_t(i)});
        rig.broker.submit(lo, ls, {true, 0x08, uint64_t(i)});
    }
    // Backlog (8) is at the high water mark: the next pump sheds the
    // LOWEST weight tenant — and only that one.
    rig.broker.pump();
    EXPECT_TRUE(rig.broker.tenantShed(lo));
    EXPECT_FALSE(rig.broker.tenantShed(hi));
    EXPECT_THROW(rig.broker.submit(lo, ls, {true, 0x08, 9}), Overloaded);
    EXPECT_EQ(rig.broker.tenantStats(lo).shedRejected, 1u);

    // In-flight ops were never dropped: everything admitted completes,
    // and the drained backlog readmits the shed tenant.
    rig.broker.drainAll();
    EXPECT_EQ(rig.broker.tenantStats(lo).completed, 4u);
    EXPECT_EQ(rig.broker.tenantStats(hi).completed, 4u);
    EXPECT_EQ(rig.broker.shedLevel(), 0u);
    EXPECT_FALSE(rig.broker.tenantShed(lo));
    rig.broker.submit(lo, ls, {true, 0x08, 10});
    EXPECT_EQ(rig.broker.drainAll(), 1u);
}

TEST(Broker, ClosedSessionRefusesSubmitsAndFreesQuota)
{
    BrokerRig rig;
    TenantPolicy p;
    p.maxSessions = 1;
    uint32_t t = rig.broker.registerTenant("t", p);
    uint32_t s = rig.broker.openSession(t);
    rig.broker.submit(t, s, {true, 0x00, 1});
    rig.broker.closeSession(t, s);
    EXPECT_THROW(rig.broker.submit(t, s, {true, 0x00, 2}), SalusError);
    // The queued op still completes — close never drops work.
    EXPECT_EQ(rig.broker.drainAll(), 1u);
    // And the quota slot is free for a fresh session.
    uint32_t s2 = rig.broker.openSession(t);
    EXPECT_NE(s2, s);
}

// ------------------------------------------------ wire format + codes

TEST(BrokerRequest, SerializeDeserializeRoundTrips)
{
    BrokerRequest req;
    req.kind = BrokerRequest::Kind::SubmitOp;
    req.tenant = 3;
    req.session = 7;
    req.op = {true, 0x40, 0xdeadbeefcafe};
    Bytes wire = req.serialize();
    BrokerRequest back = BrokerRequest::deserialize(wire);
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.tenant, 3u);
    EXPECT_EQ(back.session, 7u);
    EXPECT_EQ(back.op.isWrite, true);
    EXPECT_EQ(back.op.addr, 0x40u);
    EXPECT_EQ(back.op.data, 0xdeadbeefcafeull);
}

TEST(BrokerRequest, MalformedInputsAreTypedErrors)
{
    BrokerRequest req;
    req.kind = BrokerRequest::Kind::OpenSession;
    req.tenant = 1;
    Bytes wire = req.serialize();

    Bytes truncated(wire.begin(), wire.end() - 1);
    EXPECT_THROW(BrokerRequest::deserialize(truncated), SalusError);

    Bytes badMagic = wire;
    badMagic[0] ^= 0xff;
    EXPECT_THROW(BrokerRequest::deserialize(badMagic), SalusError);

    Bytes trailing = wire;
    trailing.push_back(0);
    EXPECT_THROW(BrokerRequest::deserialize(trailing), SalusError);

    Bytes badKind = wire;
    badKind[3] = 0x7f;
    EXPECT_THROW(BrokerRequest::deserialize(badKind), SalusError);
}

TEST(Broker, HandleMapsPolicyVerdictsToWireStatusCodes)
{
    BrokerRig rig;
    TenantPolicy p;
    p.maxSessions = 1;
    p.maxQueuedOps = 2;
    uint32_t t = rig.broker.registerTenant("wire", p);

    BrokerRequest open;
    open.kind = BrokerRequest::Kind::OpenSession;
    open.tenant = t;
    Broker::Response r = rig.broker.handle(open);
    EXPECT_EQ(r.status, kBrokerOk);
    uint32_t session = r.session;

    // Quota rejection comes back as a status code, not an exception.
    EXPECT_EQ(rig.broker.handle(open).status, kBrokerQuotaExceeded);

    BrokerRequest sub;
    sub.kind = BrokerRequest::Kind::SubmitOp;
    sub.tenant = t;
    sub.session = session;
    sub.op = {true, 0x00, 1};
    EXPECT_EQ(rig.broker.handle(sub).status, kBrokerOk);
    EXPECT_EQ(rig.broker.handle(sub).status, kBrokerOk);
    EXPECT_EQ(rig.broker.handle(sub).status, kBrokerQuotaExceeded);

    BrokerRequest unknown = sub;
    unknown.tenant = 99;
    EXPECT_EQ(rig.broker.handle(unknown).status, kBrokerUnknownTenant);

    BrokerRequest badSession = sub;
    badSession.session = 42;
    EXPECT_EQ(rig.broker.handle(badSession).status, kBrokerBadRequest);

    EXPECT_EQ(rig.broker.drainAll(), 2u);
}

// -------------------------------- policy rejections are never retried

TEST(PolicyRejection, CallWithRetryStopsOnFirstPolicyVerdict)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    int calls = 0;
    tb.network().on(endpoints::kCloudHost, "brokeredOp",
                    [&calls](ByteView) -> Bytes {
                        ++calls;
                        throw RateLimited(
                            "tenant over budget",
                            ErrorContext{"tenant-1", "broker", "submit",
                                         0});
                    });

    net::RetryPolicy retry = net::RetryPolicy::standard();
    net::CallOutcome out = tb.network().callWithRetry(
        endpoints::kUserClient, endpoints::kCloudHost, "brokeredOp",
        Bytes{1}, retry, "test");
    // One attempt only: the verdict is deterministic, unlike a
    // transport fault which would burn the whole schedule.
    EXPECT_EQ(out.attempts, 1);
    EXPECT_EQ(out.failure, net::FailureClass::Policy);
    EXPECT_EQ(calls, 1);
    EXPECT_NE(out.error.find("rate limited"), std::string::npos);
    EXPECT_EQ(out.context.from, "tenant-1");
    EXPECT_EQ(std::string(net::failureClassName(out.failure)), "policy");
}

TEST(PolicyRejection, UserClientNeverRetriesPolicyRefusals)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    tb.installCl(loopbackAccel());

    int raCalls = 0;
    tb.network().on(endpoints::kCloudHost, "raRequest",
                    [&raCalls](ByteView) -> Bytes {
                        ++raCalls;
                        throw QuotaExceeded("deployment quota reached");
                    });

    UserClient::Outcome out = tb.runDeployment();
    EXPECT_FALSE(out.ok);
    // A transport fault here would be retried (standard schedule is 4
    // attempts); the policy refusal must stop the client cold.
    EXPECT_EQ(out.attempts, 1);
    EXPECT_EQ(out.failureClass, net::FailureClass::Policy);
    EXPECT_EQ(raCalls, 1);
    EXPECT_NE(out.failure.find("refused by policy"), std::string::npos);
}

TEST(PolicyRejection, TransportFaultsStillRetryUnlikePolicy)
{
    // Contrast case: the same endpoint throwing NetError IS retried.
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    int calls = 0;
    tb.network().on(endpoints::kCloudHost, "brokeredOp",
                    [&calls](ByteView) -> Bytes {
                        ++calls;
                        throw NetError("flaky");
                    });
    net::RetryPolicy retry = net::RetryPolicy::standard();
    net::CallOutcome out = tb.network().callWithRetry(
        endpoints::kUserClient, endpoints::kCloudHost, "brokeredOp",
        Bytes{1}, retry, "test");
    EXPECT_EQ(out.attempts, retry.maxAttempts);
    EXPECT_EQ(out.failure, net::FailureClass::Persistent);
    EXPECT_EQ(calls, retry.maxAttempts);
}

// ----------------------------------------- slice latency observation

TEST(Broker, SchedulerStampsSliceLatencyFromVirtualClock)
{
    BrokerRig rig;
    TenantPolicy p;
    p.maxQueuedOps = 64;
    uint32_t t = rig.broker.registerTenant("timed", p);
    uint32_t s = rig.broker.openSession(t);
    for (int i = 0; i < 8; ++i)
        rig.broker.submit(t, s, {true, 0x00, uint64_t(i)});
    rig.broker.pump();
    // The burst crossed the secure channel: real virtual time passed
    // and was attributed to this session's slice.
    EXPECT_GT(rig.tb.scheduler().sessionStats(s).sliceNanosLast, 0u);
    EXPECT_EQ(rig.tb.scheduler().sessionStats(s).dispatchedBatches, 1u);
}
