/**
 * @file
 * Accelerator tests: kernel correctness properties, memory-interface
 * encryption, and the full four-mode execution matrix of §6.4 on
 * every Table 4 workload.
 */

#include <gtest/gtest.h>

#include "accel/accel_ip.hpp"
#include "accel/mem_crypto.hpp"
#include "accel/runner.hpp"
#include "common/errors.hpp"
#include "common/hex.hpp"
#include "common/serde.hpp"

using namespace salus;
using namespace salus::accel;

namespace {

constexpr double kTestScale = 0.15;

std::unique_ptr<core::Testbed>
makeDeployedTestbed(const WorkloadSpec &spec, bool malicious = false,
                    shell::AttackPlan plan = {})
{
    AccelIp::registerAll();
    core::TestbedConfig cfg;
    cfg.maliciousShell = malicious;
    cfg.attackPlan = plan;
    auto tb = std::make_unique<core::Testbed>(cfg);
    tb->installCl(accelCellFor(spec));
    return tb;
}

} // namespace

// ------------------------------------------------- kernel properties

TEST(Kernels, DeterministicGenerationAndExecution)
{
    for (const auto &spec : allWorkloads()) {
        Bytes in1 = generateInput(spec.id, 7, kTestScale);
        Bytes in2 = generateInput(spec.id, 7, kTestScale);
        EXPECT_EQ(in1, in2) << spec.name;
        EXPECT_NE(in1, generateInput(spec.id, 8, kTestScale))
            << spec.name;
        EXPECT_EQ(runKernel(spec.id, in1), runKernel(spec.id, in2))
            << spec.name;
        EXPECT_GT(kernelOps(spec.id, in1), 0u) << spec.name;
    }
}

TEST(Kernels, RejectGarbageInputs)
{
    for (const auto &spec : allWorkloads()) {
        EXPECT_THROW(runKernel(spec.id, Bytes(3, 1)), SalusError)
            << spec.name;
        Bytes truncated = generateInput(spec.id, 1, kTestScale);
        truncated.resize(truncated.size() / 2);
        EXPECT_THROW(runKernel(spec.id, truncated), SalusError)
            << spec.name;
    }
}

TEST(Kernels, ConvZeroImageGivesZeroOutput)
{
    Bytes input = generateInput(KernelId::Conv, 3, kTestScale);
    BinaryReader r(input);
    uint32_t w = r.readU32(), h = r.readU32(), ic = r.readU32(),
             oc = r.readU32();
    size_t weightBytes = size_t(9) * ic * oc * 4;
    // Zero the image portion (after header + weights).
    size_t imageOff = 16 + weightBytes;
    std::fill(input.begin() + imageOff, input.end(), 0);

    Bytes out = runKernel(KernelId::Conv, input);
    EXPECT_EQ(out.size(), size_t(w) * h * oc * 4);
    for (uint8_t b : out)
        ASSERT_EQ(b, 0);
}

TEST(Kernels, AffineIdentityPreservesInterior)
{
    // Identity matrix: output == input wherever sampling stays in
    // bounds.
    BinaryWriter w;
    const uint32_t dim = 64;
    w.writeU32(dim);
    w.writeU32(dim);
    float m[6] = {1, 0, 0, 0, 1, 0};
    for (float v : m) {
        uint32_t raw;
        std::memcpy(&raw, &v, 4);
        w.writeU32(raw);
    }
    crypto::CtrDrbg rng(uint64_t(4));
    Bytes img = rng.bytes(dim * dim);
    w.writeRaw(img);

    Bytes out = runKernel(KernelId::Affine, w.data());
    ASSERT_EQ(out.size(), img.size());
    for (uint32_t y = 1; y + 1 < dim; ++y)
        for (uint32_t x = 1; x + 1 < dim; ++x)
            ASSERT_EQ(out[y * dim + x], img[y * dim + x])
                << "(" << x << "," << y << ")";
}

TEST(Kernels, RenderingEmptySceneIsBlack)
{
    BinaryWriter w;
    w.writeU32(0);   // no triangles
    w.writeU32(64);  // fb 64x64
    Bytes out = runKernel(KernelId::Rendering, w.data());
    EXPECT_EQ(out.size(), 64u * 64u);
    for (uint8_t px : out)
        ASSERT_EQ(px, 0);
}

TEST(Kernels, RenderingDrawsSomething)
{
    Bytes input = generateInput(KernelId::Rendering, 5, kTestScale);
    Bytes fb = runKernel(KernelId::Rendering, input);
    size_t lit = 0;
    for (uint8_t px : fb)
        lit += px != 0;
    EXPECT_GT(lit, fb.size() / 100) << "scene rendered mostly black";
}

TEST(Kernels, NnSearchFindsExactMatch)
{
    // Build a tiny instance where query 0 equals point 3 exactly.
    const uint32_t n = 8, q = 1, d = 4;
    BinaryWriter w;
    w.writeU32(n);
    w.writeU32(q);
    w.writeU32(d);
    auto writeF = [&](float f) {
        uint32_t raw;
        std::memcpy(&raw, &f, 4);
        w.writeU32(raw);
    };
    for (uint32_t p = 0; p < n; ++p)
        for (uint32_t i = 0; i < d; ++i)
            writeF(float(p) + 0.1f * float(i));
    for (uint32_t i = 0; i < d; ++i)
        writeF(float(3) + 0.1f * float(i)); // == point 3

    Bytes out = runKernel(KernelId::NnSearch, w.data());
    BinaryReader r(out);
    EXPECT_EQ(r.readU32(), 3u);
    EXPECT_EQ(r.readU32(), 0u); // distance bits == +0.0f
}

TEST(Kernels, FaceDetectOutputFixedSize)
{
    Bytes input = generateInput(KernelId::FaceDetect, 6, kTestScale);
    Bytes out = runKernel(KernelId::FaceDetect, input);
    EXPECT_EQ(out.size(), 4u + 256u * 6u);
    BinaryReader r(out);
    EXPECT_LE(r.readU32(), 256u);
}

// --------------------------------------------------- memory crypto

TEST(MemCrypto, RoundtripAndDomainSeparation)
{
    crypto::CtrDrbg rng(uint64_t(11));
    Bytes key = rng.bytes(32);
    Bytes data = rng.bytes(1000);

    Bytes ct = memCrypt(key, 1, Dir::Input, data);
    EXPECT_NE(ct, data);
    EXPECT_EQ(memCrypt(key, 1, Dir::Input, ct), data);

    // Different direction and different job id give different streams.
    EXPECT_NE(memCrypt(key, 1, Dir::Output, data), ct);
    EXPECT_NE(memCrypt(key, 2, Dir::Input, data), ct);
}

// ------------------------------------------- four-mode execution

class WorkloadMatrix : public ::testing::TestWithParam<KernelId>
{};

TEST_P(WorkloadMatrix, AllModesProduceReferenceOutput)
{
    const WorkloadSpec &spec = workload(GetParam());
    WorkloadRunner runner(spec.id, 42, kTestScale);

    RunResult cpu = runner.runCpuPlain();
    EXPECT_TRUE(cpu.outputCorrect) << spec.name;

    RunResult cpuTee = runner.runCpuTee();
    EXPECT_TRUE(cpuTee.outputCorrect) << spec.name;
    // TEE mode is never free: boundary crypto + EPC traffic +
    // enclave transitions add modelled overhead on top of its own
    // measured compute. (Comparing against cpu.totalTime would race
    // two separate wall-clock measurements and flake under load.)
    EXPECT_GT(cpuTee.overheadTime, 0) << spec.name;
    EXPECT_GE(cpuTee.totalTime, cpuTee.computeTime) << spec.name;

    sim::CostModel cost;
    RunResult fpga = runner.runFpgaPlain(cost);
    EXPECT_TRUE(fpga.outputCorrect) << spec.name;

    auto tbp = makeDeployedTestbed(spec);
    core::Testbed &tb = *tbp;
    ASSERT_TRUE(tb.runDeployment().ok) << spec.name;
    RunResult fpgaTee = runner.runFpgaTee(tb);
    EXPECT_TRUE(fpgaTee.outputCorrect) << spec.name;

    // Paper Table 6 shape: the FPGA TEE overhead is bounded (inline
    // AES at line rate; only control-path cost), while the CPU TEE
    // pays crypto + EPC on the data path.
    EXPECT_LT(double(fpgaTee.totalTime),
              1.6 * double(fpga.totalTime) + 5.0 * double(sim::kMs))
        << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadMatrix,
    ::testing::Values(KernelId::Conv, KernelId::Affine,
                      KernelId::Rendering, KernelId::FaceDetect,
                      KernelId::NnSearch),
    [](const ::testing::TestParamInfo<KernelId> &info) {
        return kernelName(info.param);
    });

TEST(AccelPipeline, DramHoldsOnlyCiphertext)
{
    const WorkloadSpec &spec = workload(KernelId::Affine);
    auto tbp = makeDeployedTestbed(spec);
    core::Testbed &tb = *tbp;
    ASSERT_TRUE(tb.runDeployment().ok);

    WorkloadRunner runner(spec.id, 9, kTestScale);
    RunResult res = runner.runFpgaTee(tb);
    ASSERT_TRUE(res.outputCorrect);

    // Scan device DRAM for any 64-byte window of the plaintext input
    // or reference output: there must be none (§6.4 memory encryption;
    // threat-model attack 2 sees ciphertext only).
    const Bytes &dram = tb.device().dram().raw();
    std::string hay(dram.begin(), dram.end());
    std::string inputChunk(runner.input().begin() + 64,
                           runner.input().begin() + 128);
    std::string outputChunk(runner.reference().begin() + 64,
                            runner.reference().begin() + 128);
    EXPECT_EQ(hay.find(inputChunk), std::string::npos);
    EXPECT_EQ(hay.find(outputChunk), std::string::npos);
}

TEST(AccelPipeline, DmaTamperCorruptsOutputVisibly)
{
    // Threat model attack 2: the shell flips DMA bytes. With CTR
    // encryption the job completes but the plaintext is garbage, so
    // the output no longer matches the reference -- the integrity
    // burden the paper delegates to the developer (§3.1).
    const WorkloadSpec &spec = workload(KernelId::Affine);
    shell::AttackPlan plan;
    plan.tamperDma = true;
    auto tbp = makeDeployedTestbed(spec, true, plan);
    core::Testbed &tb = *tbp;
    ASSERT_TRUE(tb.runDeployment().ok);

    WorkloadRunner runner(spec.id, 10, kTestScale);
    // Either the kernel chokes on the corrupted (decrypted-garbage)
    // input and reports an error, or it completes with an output that
    // no longer matches the reference -- both make the tamper visible.
    try {
        RunResult res = runner.runFpgaTee(tb);
        EXPECT_FALSE(res.outputCorrect);
    } catch (const SalusError &e) {
        EXPECT_NE(std::string(e.what()).find("error"),
                  std::string::npos);
    }
}

TEST(AccelPipeline, AccelErrorSurfacesInStatus)
{
    const WorkloadSpec &spec = workload(KernelId::Conv);
    auto tbp = makeDeployedTestbed(spec);
    core::Testbed &tb = *tbp;
    ASSERT_TRUE(tb.runDeployment().ok);

    // Launch with a nonsensical input length: STATUS reads error.
    auto &sh = tb.shell();
    sh.registerWrite(pcie::Window::Direct, kAccRegInputAddr, 0);
    sh.registerWrite(pcie::Window::Direct, kAccRegInputLen, 5);
    sh.registerWrite(pcie::Window::Direct, kAccRegOutputAddr, 4096);
    sh.registerWrite(pcie::Window::Direct, kAccRegFlags, 0);
    sh.registerWrite(pcie::Window::Direct, kAccRegCmd, 1);
    EXPECT_EQ(sh.registerRead(pcie::Window::Direct, kAccRegStatus),
              kAccStatusError);
}

TEST(AccelPipeline, KeyRegistersNotReadable)
{
    const WorkloadSpec &spec = workload(KernelId::Conv);
    auto tbp = makeDeployedTestbed(spec);
    core::Testbed &tb = *tbp;
    ASSERT_TRUE(tb.runDeployment().ok);
    ASSERT_TRUE(tb.userApp().pushDataKeyToCl(kAccRegKey0));

    // The data key went in over the secure channel; the direct window
    // cannot read it back.
    for (uint32_t off = 0; off < 32; off += 8) {
        EXPECT_EQ(tb.shell().registerRead(pcie::Window::Direct,
                                          kAccRegKey0 + off),
                  0u);
    }
}

// ------------------------------------------- scale sweep properties

class KernelScaleSweep
    : public ::testing::TestWithParam<std::tuple<KernelId, int>>
{};

TEST_P(KernelScaleSweep, InvariantsHoldAcrossSizes)
{
    auto [id, scalePct] = GetParam();
    double scale = scalePct / 100.0;

    Bytes input = generateInput(id, 11, scale);
    Bytes output = runKernel(id, input);
    EXPECT_FALSE(output.empty());

    // Deterministic at every size.
    EXPECT_EQ(runKernel(id, input), output);

    // Work grows (weakly) with scale.
    if (scalePct > 10) {
        Bytes smaller = generateInput(id, 11, 0.1);
        EXPECT_GE(kernelOps(id, input), kernelOps(id, smaller));
        EXPECT_GE(input.size(), smaller.size());
    }

    // Memory encryption is size-transparent at this size.
    Bytes key(32, 0x77);
    EXPECT_EQ(memCrypt(key, 9, Dir::Input,
                       memCrypt(key, 9, Dir::Input, input)),
              input);

    // Authenticated mode roundtrips at this size too.
    auto opened = memOpenAuth(
        key, 9, Dir::Output, memSealAuth(key, 9, Dir::Output, output));
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, output);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelScaleSweep,
    ::testing::Combine(::testing::Values(KernelId::Conv, KernelId::Affine,
                                         KernelId::Rendering,
                                         KernelId::FaceDetect,
                                         KernelId::NnSearch),
                       ::testing::Values(10, 20, 35)),
    [](const ::testing::TestParamInfo<std::tuple<KernelId, int>> &info) {
        return std::string(kernelName(std::get<0>(info.param))) +
               "_scale" + std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------- golden regression

#include "crypto/sha256.hpp"

TEST(Kernels, GoldenOutputDigests)
{
    // Regression guard: a silent change to any kernel's numerics (or
    // to the input generator / DRBG) shifts these digests. If a
    // change is INTENTIONAL, regenerate them (see the digests' seed
    // and scale below).
    struct Golden
    {
        KernelId id;
        const char *digest;
    };
    const Golden goldens[] = {
        {KernelId::Conv,
         "785a55458c2944b7fbd9e18142802fe5"
         "d3791b7ee596ffca855218f01170ad97"},
        {KernelId::Affine,
         "ebd2d59578d9b258b4be73a19f6c702c"
         "2782b5e1320bcba5face625f214ce870"},
        {KernelId::Rendering,
         "05db6d19367670cc6754235a72163b69"
         "ea1a4ec194ff17ca32ddcc0f8cd98330"},
        {KernelId::FaceDetect,
         "7e8f3ddcaf196e659dce9e8e3b263ddf"
         "5421c46fa5ffdf96056390fcfc78d3e7"},
        {KernelId::NnSearch,
         "9bfc8b87d8f98d1343d767f5af824379"
         "a02d9788badc091ae09764a16efb3312"},
    };
    for (const auto &g : goldens) {
        Bytes in = generateInput(g.id, 2024, 0.2);
        Bytes out = runKernel(g.id, in);
        EXPECT_EQ(hexEncode(crypto::Sha256::digest(out)), g.digest)
            << kernelName(g.id);
    }
}

TEST(RunnerErrors, FpgaTeeRequiresDeployment)
{
    AccelIp::registerAll();
    core::Testbed tb;
    tb.installCl(accelCellFor(workload(KernelId::Affine)));
    // No runDeployment(): the runner must refuse, not crash.
    WorkloadRunner runner(KernelId::Affine, 1, kTestScale);
    EXPECT_THROW(runner.runFpgaTee(tb), SalusError);
}
