/**
 * @file
 * Scenario-engine soak tests: every gallery campaign under
 * scenarios/ must pass its own [expect] invariants AND be
 * byte-identical across two same-seed runs (obs trace + metrics
 * dump). An inline campaign proves that a brand-new chaos
 * composition needs only a text file — no C++. Parser error paths
 * round out the strict-INI contract (typos fail loudly).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "salus/scenario.hpp"

using namespace salus;
using namespace salus::core;

#ifndef SALUS_SCENARIO_DIR
#define SALUS_SCENARIO_DIR "scenarios"
#endif

namespace {

/** Runs a campaign twice and enforces pass + byte determinism. */
void
runTwiceAndCheck(const Scenario &sc)
{
    ScenarioOutcome first = runScenario(sc);
    EXPECT_TRUE(first.deployOk) << sc.name << ": deployment failed";
    for (const std::string &v : first.violations)
        ADD_FAILURE() << sc.name << ": " << v;
    EXPECT_TRUE(first.passed());

    ScenarioOutcome second = runScenario(sc);
    // Same seed, same file: the full observability record must match
    // byte for byte — this is the determinism contract campaigns are
    // debugged and triaged against.
    EXPECT_EQ(first.traceJson, second.traceJson)
        << sc.name << ": trace diverged between same-seed runs";
    EXPECT_EQ(first.metricsText, second.metricsText)
        << sc.name << ": metrics diverged between same-seed runs";
    EXPECT_EQ(first.completed, second.completed);
    EXPECT_EQ(first.clockEnd, second.clockEnd);
}

std::string
galleryPath(const char *file)
{
    return std::string(SALUS_SCENARIO_DIR) + "/" + file;
}

} // namespace

// ------------------------------------------------------- gallery runs

TEST(ScenarioGallery, NoisyNeighbourPassesAndIsDeterministic)
{
    runTwiceAndCheck(parseScenarioFile(galleryPath("noisy_neighbour.scn")));
}

TEST(ScenarioGallery, SeuStormPassesAndIsDeterministic)
{
    runTwiceAndCheck(parseScenarioFile(galleryPath("seu_storm.scn")));
}

TEST(ScenarioGallery, MassRekeyPassesAndIsDeterministic)
{
    runTwiceAndCheck(parseScenarioFile(galleryPath("mass_rekey.scn")));
}

TEST(ScenarioGallery, BrokerOverloadShedsAndRecovers)
{
    Scenario sc = parseScenarioFile(galleryPath("broker_overload.scn"));
    ScenarioOutcome out = runScenario(sc);
    EXPECT_TRUE(out.passed());
    for (const std::string &v : out.violations)
        ADD_FAILURE() << v;
    // The overload campaign's defining arc, beyond its own [expect]
    // block: someone was shed, nobody stayed shed.
    EXPECT_GT(out.shedRejected, 0u);
    EXPECT_EQ(out.shedLevelEnd, 0u);
    runTwiceAndCheck(sc);
}

// -------------------------------------- campaigns are data, not C++

TEST(ScenarioEngine, InlineTextCampaignRunsWithoutAnyNewCode)
{
    // A composition no gallery file exercises (packet loss + delay on
    // a bursty two-tenant mix), built purely from text: the proof
    // that new chaos campaigns are data.
    const std::string text = R"(
[scenario]
name = inline-smoke
seed = 2024
devices = 1
sweeps = 12
poll_every = 3

[tenant fast]
weight = 2
max_queued_ops = 64
pattern = flood
ops_per_sweep = 16

[tenant slow]
weight = 1
max_queued_ops = 64
pattern = burst
ops_per_sweep = 8
burst_on = 2
burst_off = 2

[fault]
kind = delay_rpc
probability = 0.2
delay_us = 150

[expect]
completed_min = 100
no_starvation = 1
)";
    Scenario sc = parseScenario(text);
    EXPECT_EQ(sc.name, "inline-smoke");
    EXPECT_EQ(sc.tenants.size(), 2u);
    ASSERT_EQ(sc.faults.size(), 1u);
    EXPECT_EQ(sc.faults[0].kind, "delay_rpc");
    runTwiceAndCheck(sc);
}

TEST(ScenarioEngine, ExpectViolationsAreReportedNotThrown)
{
    const std::string text = R"(
[scenario]
name = unreachable-bar
seed = 5
sweeps = 4

[tenant t]
pattern = trickle
ops_per_sweep = 2

[expect]
completed_min = 1000000
)";
    ScenarioOutcome out = runScenario(parseScenario(text));
    EXPECT_TRUE(out.deployOk);
    EXPECT_FALSE(out.passed());
    ASSERT_EQ(out.violations.size(), 1u);
    EXPECT_NE(out.violations[0].find("completed"), std::string::npos);
}

// ------------------------------------------------ strict-INI parsing

TEST(ScenarioParser, UnknownKeysAndSectionsAreErrors)
{
    EXPECT_THROW(parseScenario("[scenario]\nname = x\nbogus_key = 1\n"),
                 ScenarioError);
    EXPECT_THROW(parseScenario("[scenario]\nname = x\n[warp_drive]\n"),
                 ScenarioError);
    EXPECT_THROW(
        parseScenario("[scenario]\nname = x\n[tenant a]\nvelocity = 9\n"),
        ScenarioError);
}

TEST(ScenarioParser, MalformedValuesAreErrorsWithLineNumbers)
{
    try {
        parseScenario("[scenario]\nname = x\nsweeps = banana\n");
        FAIL() << "expected ScenarioError";
    } catch (const ScenarioError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
    // Out-of-bounds values are rejected even when numerically valid.
    EXPECT_THROW(parseScenario("[scenario]\nname = x\ndevices = 99\n"),
                 ScenarioError);
    EXPECT_THROW(parseScenario("[scenario]\nname = x\nsweeps = 0\n"),
                 ScenarioError);
    // Probabilities live in [0, 1].
    EXPECT_THROW(parseScenario("[scenario]\nname = x\n[fault]\n"
                               "kind = drop_rpc\nprobability = 1.5\n"),
                 ScenarioError);
}

TEST(ScenarioParser, StructuralMistakesAreErrors)
{
    // Missing [scenario] section entirely.
    EXPECT_THROW(parseScenario("[tenant a]\npattern = idle\n"),
                 ScenarioError);
    // Key before any section header.
    EXPECT_THROW(parseScenario("name = x\n[scenario]\n"), ScenarioError);
    // Duplicate tenant names would make stats ambiguous.
    EXPECT_THROW(parseScenario("[scenario]\nname = x\n"
                               "[tenant a]\n[tenant a]\n"),
                 ScenarioError);
    // Unknown fault kind / traffic pattern.
    EXPECT_THROW(parseScenario("[scenario]\nname = x\n[fault]\n"
                               "kind = gamma_rays\n"),
                 ScenarioError);
    EXPECT_THROW(parseScenario("[scenario]\nname = x\n[tenant a]\n"
                               "pattern = sideways\n"),
                 ScenarioError);
    // replay action requires the malicious shell to be enabled.
    EXPECT_THROW(parseScenario("[scenario]\nname = x\n[action]\n"
                               "kind = replay\nat_sweep = 1\n"),
                 ScenarioError);
}

TEST(ScenarioParser, GalleryFilesParseCleanlyFromDisk)
{
    const char *files[] = {"noisy_neighbour.scn", "seu_storm.scn",
                           "mass_rekey.scn", "broker_overload.scn"};
    for (const char *f : files) {
        Scenario fromDisk = parseScenarioFile(galleryPath(f));
        EXPECT_FALSE(fromDisk.name.empty()) << f;
        EXPECT_FALSE(fromDisk.tenants.empty()) << f;
    }
    EXPECT_THROW(parseScenarioFile(galleryPath("missing.scn")),
                 ScenarioError);
}
