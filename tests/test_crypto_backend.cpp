/**
 * @file
 * Differential and edge-case tests for the runtime-dispatched crypto
 * backends: scalar vs hardware bit-equality across primitives,
 * keystream continuity across the 128-bit counter's low-word carry,
 * GCM's 32-bit counter wrap at 2^32, and the split-call regression
 * for the batched CTR keystream.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "common/hex.hpp"
#include "crypto/aes.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/backend.hpp"
#include "crypto/random.hpp"
#include "crypto/sha256.hpp"

using namespace salus;
using namespace salus::crypto;

namespace {

/** Prints which backend this binary actually dispatched to. */
class BackendBanner : public ::testing::Environment
{
  public:
    void
    SetUp() override
    {
        std::printf("[ backend  ] %s\n", backendSummary().c_str());
    }
};

const ::testing::Environment *const kBanner =
    ::testing::AddGlobalTestEnvironment(new BackendBanner);

/** Pins the scalar path for one scope, restoring the prior override
 *  state (NOT unconditionally re-enabling hardware) on exit. */
struct ScopedForceScalar
{
    bool prev;
    ScopedForceScalar() : prev(forceScalar()) { setForceScalar(true); }
    ~ScopedForceScalar() { setForceScalar(prev); }
};

bool
anyHardware()
{
    const BackendInfo &b = backendInfo();
    return b.aesni || b.pclmul || b.shani;
}

/** 128-bit big-endian add of a small delta (test-local reference). */
void
refAdd128(uint8_t ctr[16], uint64_t delta)
{
    for (int i = 15; i >= 0 && delta != 0; --i) {
        uint64_t sum = uint64_t(ctr[i]) + (delta & 0xff);
        ctr[i] = uint8_t(sum);
        delta = (delta >> 8) + (sum >> 8);
    }
}

/** Reference CTR keystream: block i is E_K(counter0 + i), computed
 *  one block at a time through the public single-block entry. */
Bytes
refCtrKeystream(const Aes &aes, const uint8_t counter0[16],
                size_t blocks)
{
    Bytes out(blocks * kAesBlockSize);
    for (size_t i = 0; i < blocks; ++i) {
        uint8_t ctr[16];
        std::memcpy(ctr, counter0, 16);
        refAdd128(ctr, i);
        aes.encryptBlock(ctr, out.data() + i * kAesBlockSize);
    }
    return out;
}

} // namespace

// ---- AesCtr split-call regression (the byte-at-a-time bugfix) --------

TEST(CryptoBackend, CtrSplitCallsMatchOneShot)
{
    CtrDrbg rng(0xc7a11);
    Bytes key = rng.bytes(16);
    Bytes iv = rng.bytes(16);
    Bytes data = rng.bytes(1021); // deliberately not block-aligned

    for (int scalar = 0; scalar < 2; ++scalar) {
        std::optional<ScopedForceScalar> force;
        if (scalar)
            force.emplace();

        Bytes oneShot = data;
        AesCtr whole(key, iv);
        whole.crypt(oneShot.data(), oneShot.size());

        // Odd split points exercise every head/tail alignment of the
        // word-wise XOR against the batched keystream buffer.
        const size_t cuts[] = {1, 3, 7, 13, 16, 17, 31, 64, 127, 255};
        for (size_t cut : cuts) {
            Bytes split = data;
            AesCtr ctr(key, iv);
            size_t off = 0;
            while (off < split.size()) {
                size_t n = std::min(cut, split.size() - off);
                ctr.crypt(split.data() + off, n);
                off += n;
            }
            EXPECT_EQ(split, oneShot)
                << "split at " << cut << " scalar=" << scalar;
        }
    }
}

TEST(CryptoBackend, CtrMatchesReferenceKeystream)
{
    CtrDrbg rng(0xc7a12);
    for (size_t keyLen : {size_t(16), size_t(24), size_t(32)}) {
        Bytes key = rng.bytes(keyLen);
        Bytes iv = rng.bytes(16);
        Aes aes(key);
        Bytes expect = refCtrKeystream(aes, iv.data(), 32);

        for (int scalar = 0; scalar < 2; ++scalar) {
            std::optional<ScopedForceScalar> force;
            if (scalar)
                force.emplace();
            Bytes ks(32 * kAesBlockSize, 0);
            AesCtr ctr(key, iv);
            ctr.crypt(ks.data(), ks.size());
            EXPECT_EQ(ks, expect)
                << "keyLen=" << keyLen << " scalar=" << scalar;
        }
    }
}

// ---- Counter carry edges ---------------------------------------------

TEST(CryptoBackend, CtrKeystreamContinuousAcrossLow64Carry)
{
    CtrDrbg rng(0xc7a13);
    Bytes key = rng.bytes(16);
    // Counter starts 3 blocks below the low-64-bit carry, so the
    // batched refill crosses it mid-batch.
    Bytes iv = hexDecode("0011223344556677fffffffffffffffd");

    Aes aes(key);
    Bytes expect = refCtrKeystream(aes, iv.data(), 16);
    for (int scalar = 0; scalar < 2; ++scalar) {
        std::optional<ScopedForceScalar> force;
        if (scalar)
            force.emplace();
        Bytes ks(16 * kAesBlockSize, 0);
        AesCtr ctr(key, iv);
        ctr.crypt(ks.data(), ks.size());
        EXPECT_EQ(ks, expect) << "scalar=" << scalar;
    }
}

TEST(CryptoBackend, CtrKeystreamContinuousAcrossFullWrap)
{
    CtrDrbg rng(0xc7a14);
    Bytes key = rng.bytes(16);
    // One block below all-ones: the increment wraps the whole 128-bit
    // counter to zero.
    Bytes iv = hexDecode("ffffffffffffffffffffffffffffffff");

    Aes aes(key);
    uint8_t c0[16];
    std::memcpy(c0, iv.data(), 16);
    Bytes expect(2 * kAesBlockSize);
    aes.encryptBlock(c0, expect.data());
    uint8_t zero[16] = {};
    aes.encryptBlock(zero, expect.data() + kAesBlockSize);

    for (int scalar = 0; scalar < 2; ++scalar) {
        std::optional<ScopedForceScalar> force;
        if (scalar)
            force.emplace();
        Bytes ks(2 * kAesBlockSize, 0);
        AesCtr ctr(key, iv);
        ctr.crypt(ks.data(), ks.size());
        EXPECT_EQ(ks, expect) << "scalar=" << scalar;
    }
}

TEST(CryptoBackend, CtrSeekAcrossCarryMatchesSequential)
{
    CtrDrbg rng(0xc7a15);
    Bytes key = rng.bytes(16);
    Bytes iv = hexDecode("8899aabbccddeefffffffffffffffffa");

    Bytes sequential(12 * kAesBlockSize, 0);
    AesCtr seq(key, iv);
    seq.crypt(sequential.data(), sequential.size());

    // Seek straight past the carry (block 8 lands above the low-word
    // wrap) and expect the same keystream as sequential consumption.
    AesCtr seeked(key, iv);
    seeked.seekBlock(8);
    Bytes tail(4 * kAesBlockSize, 0);
    seeked.crypt(tail.data(), tail.size());
    EXPECT_EQ(tail, Bytes(sequential.begin() + 8 * kAesBlockSize,
                          sequential.end()));
}

TEST(CryptoBackend, GcmCounterWrapsAt32Bits)
{
    CtrDrbg rng(0xc7a16);
    for (size_t keyLen : {size_t(16), size_t(32)}) {
        Bytes key = rng.bytes(keyLen);
        AesGcm gcm(key);
        Aes aes(key);
        Bytes plain = rng.bytes(256);

        // Pin the 32-bit counter word just below 2^32: block i of the
        // keystream uses low32 = (0xfffffffd + 1 + i) mod 2^32, so the
        // run wraps to 0 after two blocks while the upper 96 bits MUST
        // stay untouched (inc32, not a 128-bit increment).
        uint8_t j0[16];
        std::memcpy(j0, rng.bytes(12).data(), 12);
        j0[12] = 0xff;
        j0[13] = 0xff;
        j0[14] = 0xff;
        j0[15] = 0xfd;

        Bytes expect = plain;
        for (size_t i = 0; i * 16 < expect.size(); ++i) {
            uint8_t ctr[16];
            std::memcpy(ctr, j0, 16);
            uint32_t low = (uint32_t(j0[12]) << 24) |
                           (uint32_t(j0[13]) << 16) |
                           (uint32_t(j0[14]) << 8) | uint32_t(j0[15]);
            uint32_t v = low + 1 + uint32_t(i); // wraps mod 2^32
            ctr[12] = uint8_t(v >> 24);
            ctr[13] = uint8_t(v >> 16);
            ctr[14] = uint8_t(v >> 8);
            ctr[15] = uint8_t(v);
            uint8_t ks[16];
            aes.encryptBlock(ctr, ks);
            for (size_t b = 0; b < 16 && i * 16 + b < expect.size(); ++b)
                expect[i * 16 + b] ^= ks[b];
        }

        for (int scalar = 0; scalar < 2; ++scalar) {
            std::optional<ScopedForceScalar> force;
            if (scalar)
                force.emplace();
            Bytes out;
            gcm.ctrCryptRaw(j0, plain, out);
            EXPECT_EQ(out, expect)
                << "keyLen=" << keyLen << " scalar=" << scalar;
        }
    }
}

// ---- Scalar vs hardware differential ---------------------------------

TEST(CryptoBackend, GcmSealAgreesAcrossBackends)
{
    if (!anyHardware())
        GTEST_SKIP() << "no hardware backend on this host";
    CtrDrbg rng(0xc7a17);
    for (size_t len : {size_t(0), size_t(1), size_t(16), size_t(17),
                       size_t(255), size_t(4096)}) {
        Bytes key = rng.bytes(32);
        Bytes iv = rng.bytes(len % 2 ? 12 : 31); // both IV paths
        Bytes aad = rng.bytes(len % 3 ? 21 : 0);
        Bytes plain = rng.bytes(len);

        AesGcm gcm(key);
        GcmSealed hw = gcm.seal(iv, aad, plain);
        GcmSealed sc;
        {
            ScopedForceScalar force;
            sc = gcm.seal(iv, aad, plain);
        }
        EXPECT_EQ(hw.ciphertext, sc.ciphertext) << "len=" << len;
        EXPECT_EQ(hw.tag, sc.tag) << "len=" << len;

        // Cross-open: hardware-sealed must verify on the scalar path
        // and vice versa.
        {
            ScopedForceScalar force;
            auto opened = gcm.open(iv, aad, hw.ciphertext, hw.tag);
            ASSERT_TRUE(opened.has_value()) << "len=" << len;
            EXPECT_EQ(*opened, plain);
        }
        auto opened = gcm.open(iv, aad, sc.ciphertext, sc.tag);
        ASSERT_TRUE(opened.has_value()) << "len=" << len;
        EXPECT_EQ(*opened, plain);
    }
}

TEST(CryptoBackend, Sha256AgreesAcrossBackends)
{
    if (!anyHardware())
        GTEST_SKIP() << "no hardware backend on this host";
    CtrDrbg rng(0xc7a18);
    // Every length through two compression blocks, plus bulk sizes
    // that hit the multi-block fast path.
    for (size_t len = 0; len <= 130; ++len) {
        Bytes msg = rng.bytes(len);
        Bytes hw = Sha256::digest(msg);
        ScopedForceScalar force;
        EXPECT_EQ(Sha256::digest(msg), hw) << "len=" << len;
    }
    for (size_t len : {size_t(4096), size_t(100000)}) {
        Bytes msg = rng.bytes(len);
        Bytes hw = Sha256::digest(msg);
        ScopedForceScalar force;
        EXPECT_EQ(Sha256::digest(msg), hw) << "len=" << len;
    }
}

TEST(CryptoBackend, Sha256StreamingChunksMatchOneShot)
{
    CtrDrbg rng(0xc7a19);
    Bytes msg = rng.bytes(1000);
    Bytes oneShot = Sha256::digest(msg);
    for (int scalar = 0; scalar < 2; ++scalar) {
        std::optional<ScopedForceScalar> force;
        if (scalar)
            force.emplace();
        for (size_t cut : {size_t(1), size_t(17), size_t(63), size_t(64),
                           size_t(65), size_t(200)}) {
            Sha256 h;
            size_t off = 0;
            while (off < msg.size()) {
                size_t n = std::min(cut, msg.size() - off);
                h.update(ByteView(msg).subspan(off, n));
                off += n;
            }
            EXPECT_EQ(h.finish(), oneShot)
                << "cut=" << cut << " scalar=" << scalar;
        }
    }
}

TEST(CryptoBackend, EncryptBlocksAgreesAcrossBackends)
{
    if (!backendInfo().aesni)
        GTEST_SKIP() << "no AES-NI on this host";
    CtrDrbg rng(0xc7a1a);
    for (size_t keyLen : {size_t(16), size_t(24), size_t(32)}) {
        Bytes key = rng.bytes(keyLen);
        Aes aes(key);
        // Cover the scalar remainder of the 8/16-wide pipelines.
        for (size_t blocks :
             {size_t(1), size_t(7), size_t(8), size_t(9), size_t(16),
              size_t(17), size_t(33)}) {
            Bytes in = rng.bytes(blocks * kAesBlockSize);
            Bytes hw(in.size()), sc(in.size());
            aes.encryptBlocks(in.data(), hw.data(), blocks);
            {
                ScopedForceScalar force;
                aes.encryptBlocks(in.data(), sc.data(), blocks);
            }
            EXPECT_EQ(hw, sc)
                << "keyLen=" << keyLen << " blocks=" << blocks;
        }
    }
}

// ---- KATs against the forced-scalar path -----------------------------
//
// The rest of the suite runs every NIST vector against whatever the
// dispatcher selected (hardware on CI runners); these pin the scalar
// reference to the same answers even when hardware is active, so a
// broken fallback cannot hide behind a healthy fast path.

TEST(CryptoBackend, ScalarKatsStayGreenUnderOverride)
{
    ScopedForceScalar force;

    Aes aes(hexDecode("000102030405060708090a0b0c0d0e0f"));
    Bytes ct(16);
    Bytes pt = hexDecode("00112233445566778899aabbccddeeff");
    aes.encryptBlock(pt.data(), ct.data());
    EXPECT_EQ(hexEncode(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");

    // SP 800-38A F.5.1 CTR-AES128, first block.
    Bytes ctrOut = aesCtrCrypt(
        hexDecode("2b7e151628aed2a6abf7158809cf4f3c"),
        hexDecode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"),
        hexDecode("6bc1bee22e409f96e93d7e117393172a"));
    EXPECT_EQ(hexEncode(ctrOut), "874d6191b620e3261bef6864990db6ce");

    EXPECT_EQ(hexEncode(Sha256::digest(bytesFromString("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}
