/**
 * @file
 * Tests for the second wave of substrate extensions: DCAP collateral
 * (TCB info / QE identity / caching), configuration-memory SEU
 * injection + ECC scrubbing, session re-keying, and I/O statistics.
 */

#include <gtest/gtest.h>

#include "bitstream/compiler.hpp"
#include "common/errors.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "fpga/ip.hpp"
#include "manufacturer/manufacturer.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"
#include "tee/collateral.hpp"

using namespace salus;
using namespace salus::tee;

// ------------------------------------------------------- collateral

namespace {

struct CollateralRig
{
    crypto::CtrDrbg rng{uint64_t(555)};
    CollateralService pcs{bytesFromString("mft-root-seed"), "icelake"};
    TeePlatform platform{"plat-c", rng};
    manufacturer::Manufacturer mft{rng};

    struct E : Enclave
    {
        using Enclave::createQuote;
        using Enclave::Enclave;
    };
    std::unique_ptr<E> enclave;

    CollateralRig()
    {
        pcs.setQeIdentity(platform.quotingTarget(), 1);
        // PCK issued by the same root the collateral service uses.
        PckCertificate cert;
        cert.platformId = platform.platformId();
        cert.attestPublicKey = platform.attestationPublicKey();
        cert.tcbSvn = platform.cpuSvn();
        crypto::Ed25519KeyPair root;
        root.seed = crypto::hmacSha256(bytesFromString("mft-root-seed"),
                                       bytesFromString("pcs"));
        root.publicKey = crypto::ed25519PublicKey(root.seed);
        cert.signature =
            crypto::ed25519Sign(root.seed, cert.signedPortion());
        platform.installPckCertificate(cert);

        enclave = std::make_unique<E>(
            platform,
            EnclaveImage{"e", "s", 1, bytesFromString("app-code")});
    }
};

} // namespace

TEST(Collateral, FullVerificationHappyPath)
{
    CollateralRig rig;
    CollateralBundle bundle = rig.pcs.issue(0, 24 * 3600 * sim::kSec);
    Quote q = rig.enclave->createQuote(bytesFromString("nonce"));

    QuoteVerdict v = verifyQuoteWithCollateral(
        q, bundle, rig.pcs.rootPublicKey(), sim::Nanos(1000));
    ASSERT_TRUE(v.ok) << v.reason;
    EXPECT_EQ(v.body.mrenclave, rig.enclave->measurement());
}

TEST(Collateral, SerializationRoundtrip)
{
    CollateralRig rig;
    CollateralBundle b = rig.pcs.issue(7, 100 * sim::kSec);
    TcbInfo t = TcbInfo::deserialize(b.tcbInfo.serialize());
    EXPECT_EQ(t.family, "icelake");
    EXPECT_EQ(t.issuedAt, 7u);
    EXPECT_EQ(t.signature, b.tcbInfo.signature);
    QeIdentity qi = QeIdentity::deserialize(b.qeIdentity.serialize());
    EXPECT_EQ(qi.qeMeasurement, b.qeIdentity.qeMeasurement);
    EXPECT_THROW(TcbInfo::deserialize(Bytes(3)), TeeError);
    EXPECT_THROW(QeIdentity::deserialize(Bytes(3)), TeeError);
}

TEST(Collateral, ExpiryEnforced)
{
    CollateralRig rig;
    CollateralBundle bundle = rig.pcs.issue(0, 100 * sim::kSec);
    Quote q = rig.enclave->createQuote(ByteView());

    // Within validity: ok. After nextUpdate: rejected.
    EXPECT_TRUE(verifyQuoteWithCollateral(q, bundle,
                                          rig.pcs.rootPublicKey(),
                                          50 * sim::kSec)
                    .ok);
    QuoteVerdict v = verifyQuoteWithCollateral(
        q, bundle, rig.pcs.rootPublicKey(), 200 * sim::kSec);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.reason.find("expired"), std::string::npos);
}

TEST(Collateral, TcbRecoveryInvalidatesOldPlatforms)
{
    // The manufacturer raises the family's minimum SVN (a TCB
    // recovery event): quotes from unpatched platforms stop passing.
    CollateralRig rig;
    Quote q = rig.enclave->createQuote(ByteView());

    rig.pcs.setMinCpuSvn(5); // platform is at SVN 1
    CollateralBundle strict = rig.pcs.issue(0, 100 * sim::kSec);
    QuoteVerdict v = verifyQuoteWithCollateral(
        q, strict, rig.pcs.rootPublicKey(), 10);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.reason.find("TCB"), std::string::npos);
}

TEST(Collateral, ForgedCollateralAndWrongQeRejected)
{
    CollateralRig rig;
    CollateralBundle bundle = rig.pcs.issue(0, 100 * sim::kSec);
    Quote q = rig.enclave->createQuote(ByteView());

    CollateralBundle badTcb = bundle;
    badTcb.tcbInfo.minCpuSvn = 0; // edit after signing
    EXPECT_FALSE(verifyQuoteWithCollateral(q, badTcb,
                                           rig.pcs.rootPublicKey(), 10)
                     .ok);

    CollateralBundle badQe = bundle;
    badQe.qeIdentity.signature[0] ^= 1;
    EXPECT_FALSE(verifyQuoteWithCollateral(q, badQe,
                                           rig.pcs.rootPublicKey(), 10)
                     .ok);

    // A quote claiming a different quoting enclave is rejected.
    Quote alien = q;
    alien.qeMeasurement = crypto::Sha256::digest(
        bytesFromString("rogue-qe"));
    // (signature now invalid too, but the QE check fires first)
    EXPECT_FALSE(verifyQuoteWithCollateral(alien, bundle,
                                           rig.pcs.rootPublicKey(), 10)
                     .ok);
}

TEST(Collateral, CacheFetchesOnlyOnExpiry)
{
    CollateralRig rig;
    size_t issued = 0;
    CollateralCache cache([&](sim::Nanos now) {
        ++issued;
        return rig.pcs.issue(now, 100 * sim::kSec);
    });

    cache.get(0);
    cache.get(10);
    cache.get(99 * sim::kSec);
    EXPECT_EQ(cache.fetchCount(), 1u);
    cache.get(100 * sim::kSec); // expired -> refetch
    EXPECT_EQ(cache.fetchCount(), 2u);
    EXPECT_EQ(issued, 2u);
}

// --------------------------------------------------------- SEU / ECC

namespace {

struct SeuRig
{
    crypto::CtrDrbg rng{uint64_t(808)};
    std::unique_ptr<core::Testbed> tb;

    SeuRig()
    {
        fpga::ensureBuiltinIps();
        core::SmLogic::registerIp();
        tb = std::make_unique<core::Testbed>();
        netlist::Cell accel;
        accel.path = "engine";
        accel.kind = netlist::CellKind::Logic;
        accel.behaviorId = fpga::kIpLoopback;
        accel.resources = {10, 10, 0, 0};
        tb->installCl(accel);
        EXPECT_TRUE(tb->runDeployment().ok);
    }
};

} // namespace

TEST(SeuScrub, CleanPartitionScrubsClean)
{
    SeuRig rig;
    auto report = rig.tb->device().scrub(0);
    EXPECT_GT(report.framesScanned, 0u);
    EXPECT_EQ(report.corrected, 0u);
    EXPECT_EQ(report.uncorrectable, 0u);
}

TEST(SeuScrub, SingleBitUpsetsCorrected)
{
    SeuRig rig;
    fpga::FpgaDevice &dev = rig.tb->device();

    // Inject SEUs into three different frames.
    dev.injectSeu(0, 5);
    dev.injectSeu(0, 64 * 8 + 17);      // frame 1
    dev.injectSeu(0, 10 * 64 * 8 + 99); // frame 10

    auto report = dev.scrub(0);
    EXPECT_EQ(report.corrected, 3u);
    EXPECT_EQ(report.uncorrectable, 0u);

    // The design still works and a second scrub is clean.
    EXPECT_TRUE(rig.tb->smApp().reattestCl());
    auto again = dev.scrub(0);
    EXPECT_EQ(again.corrected, 0u);
    EXPECT_EQ(again.uncorrectable, 0u);
}

TEST(SeuScrub, DoubleUpsetInOneFrameIsFatal)
{
    SeuRig rig;
    fpga::FpgaDevice &dev = rig.tb->device();

    dev.injectSeu(0, 100);
    dev.injectSeu(0, 200); // same frame 0 (64-byte frames)

    auto report = dev.scrub(0);
    EXPECT_EQ(report.uncorrectable, 1u);
    // SEM semantics: the partition's design is taken down; a reload
    // is required (and the heartbeat notices).
    EXPECT_EQ(dev.design(0), nullptr);
    EXPECT_FALSE(rig.tb->smApp().reattestCl());
}

TEST(SeuScrub, ApiErrors)
{
    SeuRig rig;
    EXPECT_THROW(rig.tb->device().injectSeu(9, 0), DeviceError);
    EXPECT_THROW(rig.tb->device().injectSeu(0, 1ull << 40), DeviceError);
    EXPECT_THROW(rig.tb->device().scrub(9), DeviceError);
}

// ----------------------------------------------------------- re-key

TEST(Rekey, SessionContinuesUnderNewKeys)
{
    SeuRig rig; // deployed platform
    core::UserEnclaveApp &user = rig.tb->userApp();

    ASSERT_TRUE(user.secureWrite(0x00, 1));
    ASSERT_TRUE(user.rekeySession());
    ASSERT_TRUE(user.secureWrite(0x00, 2));
    EXPECT_EQ(user.secureRead(0x00), 2u);

    // Several consecutive rekeys keep converging.
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(user.rekeySession()) << i;
        ASSERT_TRUE(user.secureWrite(0x08, 10 + i)) << i;
    }
    EXPECT_EQ(user.secureRead(0x08), 14u);
}

TEST(Rekey, OldKeyTrafficRejectedAfterRoll)
{
    // White-box: craft a valid request under the ORIGINAL session
    // keys, roll the session, then submit the stale request: the SM
    // logic must reject it (keys are gone).
    SeuRig rig;
    fpga::FpgaDevice &dev = rig.tb->device();
    core::UserEnclaveApp &user = rig.tb->userApp();

    dev.setReadbackEnabled(true);
    netlist::Netlist design = bitstream::extractDesign(dev.readback(0));
    Bytes session =
        design.findCell(rig.tb->layout().keySessionPath)->init;
    Bytes oldAes = sliceBytes(session, 0, 16);
    Bytes oldMac = sliceBytes(session, 16, 32);
    Bytes ctrCell =
        design.findCell(rig.tb->layout().ctrSessionPath)->init;
    uint64_t ctrBase = loadLe64(ctrCell.data());

    ASSERT_TRUE(user.rekeySession());

    auto stale = core::regchan::sealRequest(
        oldAes, oldMac, ctrBase + 1000,
        core::regchan::RegOp{true, 0x00, 0xbad});
    auto &sh = rig.tb->shell();
    sh.registerWrite(pcie::Window::SmSecure, core::kSmRegIn0, stale.ctr);
    sh.registerWrite(pcie::Window::SmSecure, core::kSmRegIn1, stale.ct0);
    sh.registerWrite(pcie::Window::SmSecure, core::kSmRegIn2, stale.ct1);
    sh.registerWrite(pcie::Window::SmSecure, core::kSmRegIn3, stale.mac);
    sh.registerWrite(pcie::Window::SmSecure, core::kSmRegCmd,
                     core::kSmCmdSecureReg);
    EXPECT_EQ(sh.registerRead(pcie::Window::SmSecure, core::kSmRegStatus),
              core::kSmStatusRejected);
}

TEST(Rekey, RequiresAttestedSession)
{
    fpga::ensureBuiltinIps();
    core::SmLogic::registerIp();
    core::Testbed tb;
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    tb.installCl(accel);
    // Before deployment there is nothing to rekey.
    EXPECT_FALSE(tb.smApp().rekeySession());
}

// ------------------------------------------------------ diagnostics

TEST(Diagnostics, SmLogicCountersTrackOutcomes)
{
    SeuRig rig;
    auto &sh = rig.tb->shell();
    auto counter = [&](uint32_t reg) {
        return sh.registerRead(pcie::Window::SmSecure, reg);
    };

    uint64_t okBefore = counter(core::kSmRegStatRegOpOk);
    uint64_t rejBefore = counter(core::kSmRegStatRegOpRejected);

    ASSERT_TRUE(rig.tb->userApp().secureWrite(0x00, 9));
    // Garbage secure-reg command: rejected.
    sh.registerWrite(pcie::Window::SmSecure, core::kSmRegIn0, ~0ull);
    sh.registerWrite(pcie::Window::SmSecure, core::kSmRegCmd,
                     core::kSmCmdSecureReg);

    EXPECT_EQ(counter(core::kSmRegStatRegOpOk), okBefore + 1);
    EXPECT_GE(counter(core::kSmRegStatRegOpRejected), rejBefore + 1);
    EXPECT_GE(counter(core::kSmRegStatAttestOk), 1u);
}

TEST(Diagnostics, ShellIoStatsAccumulate)
{
    SeuRig rig;
    auto &sh = rig.tb->shell();
    auto before = sh.ioStats();

    sh.registerWrite(pcie::Window::Direct, 0x00, 1);
    sh.registerRead(pcie::Window::Direct, 0x00);
    sh.dmaWrite(0, Bytes(100, 1));
    sh.dmaRead(0, 40);

    const auto &after = sh.ioStats();
    EXPECT_EQ(after.registerWrites, before.registerWrites + 1);
    EXPECT_EQ(after.registerReads, before.registerReads + 1);
    EXPECT_EQ(after.dmaBytesToDevice, before.dmaBytesToDevice + 100);
    EXPECT_EQ(after.dmaBytesFromDevice, before.dmaBytesFromDevice + 40);
    EXPECT_GE(after.deployments, 1u);
}
