/**
 * @file
 * Manufacturer key-distribution tests (paper step ④) and RPC network
 * tests (tap/interposer/latency accounting).
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/x25519.hpp"
#include "manufacturer/manufacturer.hpp"
#include "net/network.hpp"
#include "tee/platform.hpp"

using namespace salus;
using namespace salus::manufacturer;

namespace {

class SmLikeEnclave : public tee::Enclave
{
  public:
    using tee::Enclave::createQuote;
    using tee::Enclave::Enclave;
    using tee::Enclave::rng;
};

tee::EnclaveImage
smImage()
{
    tee::EnclaveImage img;
    img.name = "sm";
    img.signer = "vendor";
    img.code = bytesFromString("sm-code");
    return img;
}

struct Rig
{
    crypto::CtrDrbg rng{uint64_t(31)};
    Manufacturer mft{rng};
    tee::TeePlatform platform{"plat-1", rng};
    std::unique_ptr<fpga::FpgaDevice> device;
    std::unique_ptr<SmLikeEnclave> sm;

    Rig()
    {
        mft.provisionPlatform(platform);
        device = mft.manufactureFpga(fpga::testModel());
        sm = std::make_unique<SmLikeEnclave>(platform, smImage());
        mft.allowSmEnclave(sm->measurement());
    }

    KeyRequest
    validRequest()
    {
        crypto::X25519KeyPair eph = crypto::x25519Generate(sm->rng());
        KeyRequest req;
        req.deviceDna = device->dna().value;
        req.quote = sm->createQuote(eph.publicKey).serialize();
        req.wrapPubKey = eph.publicKey;
        wrapPriv = eph.privateKey;
        return req;
    }

    Bytes wrapPriv;
};

Bytes
unwrap(const KeyResponse &resp, ByteView wrapPriv)
{
    Bytes wrapKey = crypto::deriveSessionKey(
        wrapPriv, resp.serverEphPub, "salus-keydist-v1", 32);
    crypto::AesGcm gcm(wrapKey);
    auto key = gcm.open(resp.iv, ByteView(), resp.wrappedKey, resp.tag);
    return key ? *key : Bytes();
}

} // namespace

TEST(Manufacturer, DeviceProvisioning)
{
    Rig rig;
    EXPECT_TRUE(rig.device->keyFused());
    EXPECT_FALSE(rig.device->readbackEnabled());
    EXPECT_TRUE(rig.mft.knowsDevice(rig.device->dna().value));
    EXPECT_FALSE(rig.mft.knowsDevice(0xdeadbeef));

    // Two devices get distinct DNAs.
    auto second = rig.mft.manufactureFpga(fpga::testModel());
    EXPECT_NE(second->dna().value, rig.device->dna().value);
}

TEST(Manufacturer, KeyReleaseToAttestedSm)
{
    Rig rig;
    KeyRequest req = rig.validRequest();
    KeyResponse resp = rig.mft.handleKeyRequest(req);
    ASSERT_EQ(resp.status, 0) << resp.reason;

    Bytes key = unwrap(resp, rig.wrapPriv);
    ASSERT_EQ(key.size(), 32u);

    // The released key actually opens bitstreams for that device:
    // encrypt something tiny and let the device decrypt-load it (the
    // full path is covered by integration tests; here we just check
    // key equality indirectly through a GCM roundtrip).
    crypto::AesGcm gcm(key);
    auto sealed = gcm.seal(Bytes(12, 1), ByteView(),
                           bytesFromString("x"));
    EXPECT_TRUE(gcm.open(Bytes(12, 1), ByteView(), sealed.ciphertext,
                         sealed.tag)
                    .has_value());
}

TEST(Manufacturer, RefusesUnknownDevice)
{
    Rig rig;
    KeyRequest req = rig.validRequest();
    req.deviceDna ^= 1;
    KeyResponse resp = rig.mft.handleKeyRequest(req);
    EXPECT_NE(resp.status, 0);
    EXPECT_NE(resp.reason.find("DNA"), std::string::npos);
}

TEST(Manufacturer, RefusesUnapprovedEnclave)
{
    Rig rig;
    SmLikeEnclave rogue(rig.platform, [] {
        tee::EnclaveImage img;
        img.name = "rogue";
        img.signer = "vendor";
        img.code = bytesFromString("rogue-code");
        return img;
    }());

    crypto::X25519KeyPair eph = crypto::x25519Generate(rogue.rng());
    KeyRequest req;
    req.deviceDna = rig.device->dna().value;
    req.quote = rogue.createQuote(eph.publicKey).serialize();
    req.wrapPubKey = eph.publicKey;

    KeyResponse resp = rig.mft.handleKeyRequest(req);
    EXPECT_NE(resp.status, 0);
    EXPECT_NE(resp.reason.find("approved"), std::string::npos);
}

TEST(Manufacturer, RefusesUnboundWrapKey)
{
    // The OS swaps in its own wrap key after the quote was made:
    // the reportData binding catches it.
    Rig rig;
    KeyRequest req = rig.validRequest();
    crypto::CtrDrbg osRng(uint64_t(666));
    req.wrapPubKey = crypto::x25519Generate(osRng).publicKey;

    KeyResponse resp = rig.mft.handleKeyRequest(req);
    EXPECT_NE(resp.status, 0);
    EXPECT_NE(resp.reason.find("bound"), std::string::npos);
}

TEST(Manufacturer, RefusesGarbageQuote)
{
    Rig rig;
    KeyRequest req = rig.validRequest();
    req.quote = Bytes(40, 9);
    KeyResponse resp = rig.mft.handleKeyRequest(req);
    EXPECT_NE(resp.status, 0);
}

TEST(Manufacturer, WireFormatsRoundtrip)
{
    Rig rig;
    KeyRequest req = rig.validRequest();
    KeyRequest back = KeyRequest::deserialize(req.serialize());
    EXPECT_EQ(back.deviceDna, req.deviceDna);
    EXPECT_EQ(back.quote, req.quote);
    EXPECT_EQ(back.wrapPubKey, req.wrapPubKey);

    KeyResponse resp = rig.mft.handleKeyRequest(req);
    KeyResponse rback = KeyResponse::deserialize(resp.serialize());
    EXPECT_EQ(rback.status, resp.status);
    EXPECT_EQ(rback.wrappedKey, resp.wrappedKey);
}

// ------------------------------------------------------------ network

TEST(NetworkTest, DispatchAndTiming)
{
    sim::VirtualClock clock;
    sim::CostModel cost;
    net::Network net(clock, cost);
    net.addEndpoint("a");
    net.addEndpoint("b");
    net.link("a", "b", sim::LinkKind::Wan);
    net.on("b", "echo", [](ByteView req) {
        return Bytes(req.begin(), req.end());
    });

    Bytes resp = net.call("a", "b", "echo", Bytes{1, 2, 3}, "phase-x");
    EXPECT_EQ(resp, (Bytes{1, 2, 3}));
    EXPECT_GE(clock.totalFor("phase-x"), cost.wanRtt);

    EXPECT_THROW(net.call("a", "b", "nope", ByteView()), NetError);
    EXPECT_THROW(net.call("a", "c", "echo", ByteView()), NetError);
    EXPECT_THROW(net.on("c", "x", nullptr), NetError);
    EXPECT_THROW(net.link("a", "zz", sim::LinkKind::Wan), NetError);
}

TEST(NetworkTest, NoLinkNoCall)
{
    sim::VirtualClock clock;
    sim::CostModel cost;
    net::Network net(clock, cost);
    net.addEndpoint("a");
    net.addEndpoint("b");
    net.on("b", "m", [](ByteView) { return Bytes(); });
    EXPECT_THROW(net.call("a", "b", "m", ByteView()), NetError);
}

TEST(NetworkTest, TapObservesBothDirections)
{
    sim::VirtualClock clock;
    sim::CostModel cost;
    net::Network net(clock, cost);
    net.addEndpoint("a");
    net.addEndpoint("b");
    net.link("a", "b", sim::LinkKind::IntraCloud);
    net.on("b", "m", [](ByteView) { return Bytes{9}; });

    std::vector<std::string> seen;
    net.setTap([&](const std::string &from, const std::string &to,
                   const std::string &method, ByteView) {
        seen.push_back(from + ">" + to + ":" + method);
    });
    net.call("a", "b", "m", Bytes{1});
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "a>b:m");
    EXPECT_EQ(seen[1], "b>a:m:response");
}

TEST(NetworkTest, InterposerCanTamperAndDrop)
{
    sim::VirtualClock clock;
    sim::CostModel cost;
    net::Network net(clock, cost);
    net.addEndpoint("a");
    net.addEndpoint("b");
    net.link("a", "b", sim::LinkKind::Wan);
    net.on("b", "m", [](ByteView req) {
        return Bytes(req.begin(), req.end());
    });

    net.setInterposer([](const std::string &, const std::string &,
                         const std::string &method, Bytes &payload) {
        if (method == "m" && !payload.empty())
            payload[0] ^= 0xff;
        return true;
    });
    EXPECT_EQ(net.call("a", "b", "m", Bytes{0x0f})[0], 0xf0);

    net.setInterposer([](const std::string &, const std::string &,
                         const std::string &, Bytes &) { return false; });
    EXPECT_THROW(net.call("a", "b", "m", Bytes{1}), NetError);
}
