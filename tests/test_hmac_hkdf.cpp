/**
 * @file
 * HMAC (RFC 4231) and HKDF (RFC 5869) known-answer tests.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/hex.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

using namespace salus;
using namespace salus::crypto;

TEST(Hmac, Rfc4231Case1Sha256)
{
    Bytes key(20, 0x0b);
    Bytes data = bytesFromString("Hi There");
    EXPECT_EQ(hexEncode(hmacSha256(key, data)),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2Sha256)
{
    Bytes key = bytesFromString("Jefe");
    Bytes data = bytesFromString("what do ya want for nothing?");
    EXPECT_EQ(hexEncode(hmacSha256(key, data)),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case1Sha512)
{
    Bytes key(20, 0x0b);
    Bytes data = bytesFromString("Hi There");
    EXPECT_EQ(hexEncode(hmacSha512(key, data)),
              "87aa7cdea5ef619d4ff0b4241a1d6cb0"
              "2379f4e2ce4ec2787ad0b30545e17cde"
              "daa833b7d6b8a702038b274eaea3f4e4"
              "be9d914eeb61f1702e696c203a126854");
}

TEST(Hmac, LongKeyGetsHashed)
{
    // A key longer than the block size must be pre-hashed; verify the
    // two paths agree via the definition: HMAC(K) == HMAC(H(K)).
    Bytes longKey(200, 0x61);
    Bytes data = bytesFromString("message");
    Bytes viaLong = hmacSha256(longKey, data);

    Bytes hashed = Sha256::digest(longKey);
    Bytes viaHashed = hmacSha256(hashed, data);
    EXPECT_EQ(viaLong, viaHashed);
}

TEST(Hmac, KeySensitivity)
{
    Bytes data = bytesFromString("payload");
    Bytes k1(32, 0x01), k2(32, 0x01);
    k2[31] ^= 1;
    EXPECT_NE(hmacSha256(k1, data), hmacSha256(k2, data));
}

TEST(Hkdf, Rfc5869Case1)
{
    Bytes ikm(22, 0x0b);
    Bytes salt = hexDecode("000102030405060708090a0b0c");
    Bytes info = hexDecode("f0f1f2f3f4f5f6f7f8f9");

    Bytes prk = hkdfExtract(salt, ikm);
    EXPECT_EQ(hexEncode(prk),
              "077709362c2e32df0ddc3f0dc47bba63"
              "90b6c73bb50f9c3122ec844ad7c2b3e5");

    Bytes okm = hkdfExpand(prk, info, 42);
    EXPECT_EQ(hexEncode(okm),
              "3cb25f25faacd57a90434f64d0362f2a"
              "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
              "34007208d5b887185865");
}

TEST(Hkdf, ExpandLengthEdgeCases)
{
    Bytes prk = hkdfExtract(Bytes(32, 1), Bytes(32, 2));
    EXPECT_EQ(hkdfExpand(prk, ByteView(), 0).size(), 0u);
    EXPECT_EQ(hkdfExpand(prk, ByteView(), 1).size(), 1u);
    EXPECT_EQ(hkdfExpand(prk, ByteView(), 32).size(), 32u);
    EXPECT_EQ(hkdfExpand(prk, ByteView(), 33).size(), 33u);
    EXPECT_EQ(hkdfExpand(prk, ByteView(), 255 * 32).size(), 255u * 32u);
    EXPECT_THROW(hkdfExpand(prk, ByteView(), 255 * 32 + 1), CryptoError);
}

TEST(Hkdf, PrefixConsistency)
{
    // Expanding to 64 bytes must begin with the 32-byte expansion.
    Bytes prk = hkdfExtract(Bytes(16, 9), Bytes(16, 7));
    Bytes info = bytesFromString("ctx");
    Bytes short32 = hkdfExpand(prk, info, 32);
    Bytes long64 = hkdfExpand(prk, info, 64);
    EXPECT_EQ(Bytes(long64.begin(), long64.begin() + 32), short32);
}

TEST(Hkdf, InfoSeparatesDomains)
{
    Bytes prk = hkdfExtract(Bytes(16, 3), Bytes(16, 4));
    EXPECT_NE(hkdfExpand(prk, bytesFromString("a"), 32),
              hkdfExpand(prk, bytesFromString("b"), 32));
}
