/**
 * @file
 * Netlist model, bitstream compiler, manipulator and encryptor tests —
 * the substrate for Salus's RoT injection (paper §2.3, §4.2).
 */

#include <gtest/gtest.h>

#include "bitstream/compiler.hpp"
#include "bitstream/crc32.hpp"
#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "common/errors.hpp"
#include "common/hex.hpp"
#include "crypto/random.hpp"
#include "crypto/sha256.hpp"

using namespace salus;
using namespace salus::netlist;
using namespace salus::bitstream;

namespace {

PartitionGeometry
smallGeometry()
{
    PartitionGeometry g;
    g.partitionId = 0;
    g.frameStart = 100;
    g.frameCount = 256;
    g.frameSize = 64;
    g.capacity = {10000, 20000, 100, 50};
    return g;
}

Netlist
sampleDesign(const std::string &secret = "0123456789abcdef")
{
    Netlist nl("top");
    Cell logic;
    logic.path = "top/engine";
    logic.kind = CellKind::Logic;
    logic.behaviorId = 7;
    logic.resources = {100, 200, 0, 2};
    nl.addCell(logic);

    Cell bram;
    bram.path = "top/secret";
    bram.kind = CellKind::Bram;
    bram.resources = {0, 0, 1, 0};
    bram.init = bytesFromString(secret);
    nl.addCell(bram);
    return nl;
}

} // namespace

// ------------------------------------------------------------ netlist

TEST(Netlist, SerializeRoundtrip)
{
    Netlist nl = sampleDesign();
    Netlist back = Netlist::deserialize(nl.serialize());
    EXPECT_EQ(back.top(), "top");
    ASSERT_EQ(back.cells().size(), 2u);
    EXPECT_EQ(back.cells()[0].path, "top/engine");
    EXPECT_EQ(back.cells()[0].behaviorId, 7u);
    EXPECT_EQ(back.cells()[1].init, bytesFromString("0123456789abcdef"));
    EXPECT_EQ(back.digest(), nl.digest());
}

TEST(Netlist, RejectsDuplicatePathsAndGarbage)
{
    Netlist nl = sampleDesign();
    Cell dup;
    dup.path = "top/engine";
    EXPECT_THROW(nl.addCell(dup), BitstreamError);
    EXPECT_THROW(Netlist::deserialize(Bytes{1, 2, 3}), BitstreamError);
}

TEST(Netlist, ResourceAccounting)
{
    Netlist nl = sampleDesign();
    ResourceVector total = nl.totalResources();
    EXPECT_EQ(total.luts, 100u);
    EXPECT_EQ(total.registers, 200u);
    EXPECT_EQ(total.brams, 1u);
    EXPECT_EQ(total.dsps, 2u);

    EXPECT_EQ(nl.resourcesUnder("top/engine").luts, 100u);
    EXPECT_EQ(nl.resourcesUnder("top/secret").brams, 1u);
    EXPECT_EQ(nl.resourcesUnder("nope").luts, 0u);

    ResourceVector cap{100, 200, 1, 2};
    EXPECT_TRUE(total.fitsWithin(cap));
    cap.brams = 0;
    EXPECT_FALSE(total.fitsWithin(cap));
}

TEST(Netlist, SpanTrackingMatchesSerialization)
{
    Netlist nl = sampleDesign("s3cr3t-contents!");
    std::vector<BramSpan> spans;
    Bytes wire = nl.serializeWithSpans(spans);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].path, "top/secret");
    Bytes extracted(wire.begin() + spans[0].offset,
                    wire.begin() + spans[0].offset + spans[0].length);
    EXPECT_EQ(extracted, bytesFromString("s3cr3t-contents!"));
}

// ------------------------------------------------------------- crc32

TEST(Crc32, KnownValueAndSensitivity)
{
    // CRC-32("123456789") = 0xcbf43926 (classic check value).
    EXPECT_EQ(crc32(bytesFromString("123456789")), 0xcbf43926u);
    EXPECT_EQ(crc32(ByteView()), 0u);
    EXPECT_NE(crc32(bytesFromString("a")), crc32(bytesFromString("b")));
}

// ----------------------------------------------------------- compiler

TEST(Compiler, FileSizeDependsOnlyOnGeometry)
{
    // Paper §6.3: "a partial CL bitstream's size is only determined by
    // the area reserved for the CL", regardless of design contents.
    Compiler compiler("dev-x");
    auto small = compiler.compile(sampleDesign("aaaaaaaaaaaaaaaa"),
                                  smallGeometry());
    Netlist bigger = sampleDesign("bbbbbbbbbbbbbbbb");
    Cell extra;
    extra.path = "top/extra";
    extra.kind = CellKind::Logic;
    extra.behaviorId = 9;
    extra.resources = {500, 100, 0, 0};
    bigger.addCell(extra);
    auto big = compiler.compile(bigger, smallGeometry());

    EXPECT_EQ(small.file.size(), big.file.size());
    EXPECT_EQ(small.file.size(),
              Bitstream::fromFile(small.file).body.size() +
                  bitstreamBodyOffset("dev-x") + 4);
}

TEST(Compiler, PlacementIsContentDependent)
{
    Compiler compiler("dev-x");
    auto a = compiler.compile(sampleDesign("aaaaaaaaaaaaaaaa"),
                              smallGeometry());
    auto b = compiler.compile(sampleDesign("cccccccccccccccc"),
                              smallGeometry());
    auto ea = a.logicLocations.find("top/secret");
    auto eb = b.logicLocations.find("top/secret");
    ASSERT_TRUE(ea && eb);
    // Different designs place the BRAM at different offsets, which is
    // why Loc_keyattest must ship per-design (paper §4.2).
    EXPECT_NE(ea->fileOffset, eb->fileOffset);
}

TEST(Compiler, LogicLocationPointsAtInitBytes)
{
    Compiler compiler("dev-x");
    auto out = compiler.compile(sampleDesign("findme-1234567!!"),
                                smallGeometry());
    auto entry = out.logicLocations.find("top/secret");
    ASSERT_TRUE(entry.has_value());
    Bytes atLoc = Manipulator::readCell(out.file, out.logicLocations,
                                        "top/secret");
    EXPECT_EQ(atLoc, bytesFromString("findme-1234567!!"));
}

TEST(Compiler, RejectsOverCapacityDesigns)
{
    Netlist nl = sampleDesign();
    Cell fat;
    fat.path = "top/fat";
    fat.kind = CellKind::Logic;
    fat.behaviorId = 3;
    fat.resources = {1000000, 0, 0, 0};
    nl.addCell(fat);
    Compiler compiler("dev-x");
    EXPECT_THROW(compiler.compile(nl, smallGeometry()), BitstreamError);
}

TEST(Compiler, RejectsDesignsLargerThanPartitionFrames)
{
    Netlist nl("top");
    Cell bram;
    bram.path = "top/huge";
    bram.kind = CellKind::Bram;
    bram.resources = {0, 0, 1, 0};
    bram.init = Bytes(64 * 1024, 0x42); // larger than 16 KiB body
    nl.addCell(bram);
    PartitionGeometry tiny = smallGeometry();
    tiny.frameCount = 16; // 1 KiB
    Compiler compiler("dev-x");
    EXPECT_THROW(compiler.compile(nl, tiny), BitstreamError);
}

TEST(Compiler, ExtractDesignRecoversNetlist)
{
    Compiler compiler("dev-x");
    auto out = compiler.compile(sampleDesign(), smallGeometry());
    Bitstream bs = Bitstream::fromFile(out.file);
    Netlist recovered = extractDesign(bs.body);
    EXPECT_EQ(recovered.digest(), sampleDesign().digest());

    EXPECT_THROW(extractDesign(Bytes(100, 0)), BitstreamError);
}

// ------------------------------------------------------------- format

TEST(BitstreamFormat, ParseValidatesStructure)
{
    Compiler compiler("dev-x");
    auto out = compiler.compile(sampleDesign(), smallGeometry());

    Bitstream bs = Bitstream::fromFile(out.file);
    EXPECT_EQ(bs.deviceModel, "dev-x");
    EXPECT_EQ(bs.frameCount, 256u);
    EXPECT_EQ(bs.frameSize, 64u);

    // CRC corruption is detected.
    Bytes bad = out.file;
    bad[bad.size() / 2] ^= 1;
    EXPECT_THROW(Bitstream::fromFile(bad), BitstreamError);
    EXPECT_FALSE(fileCrcValid(bad));

    // Truncation is detected.
    Bytes trunc(out.file.begin(), out.file.end() - 10);
    EXPECT_THROW(Bitstream::fromFile(trunc), BitstreamError);

    // Wrong magic is detected.
    Bytes magic = out.file;
    magic[0] = 'X';
    refreshFileCrc(magic);
    EXPECT_THROW(Bitstream::fromFile(magic), BitstreamError);
}

// --------------------------------------------------------- manipulator

TEST(Manipulator, PatchCellInjectsAndRepairsCrc)
{
    Compiler compiler("dev-x");
    auto out = compiler.compile(sampleDesign("0000000000000000"),
                                smallGeometry());

    Bytes newSecret = bytesFromString("fresh-rot-keyval");
    Manipulator::patchCell(out.file, out.logicLocations, "top/secret",
                           newSecret);

    // CRC still valid, file parses, and the loaded design sees the
    // new init value -- the whole point of bitstream-level injection.
    EXPECT_TRUE(fileCrcValid(out.file));
    Bitstream bs = Bitstream::fromFile(out.file);
    Netlist recovered = extractDesign(bs.body);
    EXPECT_EQ(recovered.findCell("top/secret")->init, newSecret);
}

TEST(Manipulator, ErrorsOnBadInput)
{
    Compiler compiler("dev-x");
    auto out = compiler.compile(sampleDesign(), smallGeometry());

    EXPECT_THROW(Manipulator::patchCell(out.file, out.logicLocations,
                                        "top/nothere", Bytes(16)),
                 BitstreamError);
    EXPECT_THROW(Manipulator::patchCell(out.file, out.logicLocations,
                                        "top/secret", Bytes(15)),
                 BitstreamError);

    LogicLocationFile hostile;
    hostile.add({"top/secret", out.file.size() + 10, 16});
    EXPECT_THROW(Manipulator::patchCell(out.file, hostile, "top/secret",
                                        Bytes(16)),
                 BitstreamError);
}

TEST(LogicLocation, SerializeRoundtrip)
{
    LogicLocationFile ll;
    ll.add({"a/b/c", 1234, 16});
    ll.add({"d/e", 99, 48});
    LogicLocationFile back =
        LogicLocationFile::deserialize(ll.serialize());
    ASSERT_EQ(back.entries().size(), 2u);
    EXPECT_EQ(back.find("a/b/c")->fileOffset, 1234u);
    EXPECT_EQ(back.find("d/e")->length, 48u);
    EXPECT_FALSE(back.find("nope").has_value());
    EXPECT_THROW(LogicLocationFile::deserialize(Bytes(3, 9)),
                 BitstreamError);
}

// ----------------------------------------------------------- encryptor

class EncryptorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        rng_ = std::make_unique<crypto::CtrDrbg>(uint64_t(77));
        key_ = rng_->bytes(32);
        Compiler compiler("dev-x");
        compiled_ = compiler.compile(sampleDesign(), smallGeometry());
        header_.deviceModel = "dev-x";
        header_.partitionId = 0;
    }

    std::unique_ptr<crypto::CtrDrbg> rng_;
    Bytes key_;
    CompiledDesign compiled_;
    EncryptedHeader header_;
};

TEST_F(EncryptorTest, RoundtripAndHeaderPeek)
{
    Bytes blob =
        encryptBitstream(compiled_.file, key_, header_, *rng_);
    EncryptedHeader peeked = peekEncryptedHeader(blob);
    EXPECT_EQ(peeked.deviceModel, "dev-x");
    EXPECT_EQ(peeked.partitionId, 0u);

    auto plain = decryptBitstream(blob, key_);
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(*plain, compiled_.file);
}

TEST_F(EncryptorTest, CiphertextHidesPlaintext)
{
    Bytes blob =
        encryptBitstream(compiled_.file, key_, header_, *rng_);
    // The known plaintext secret must not appear in the ciphertext.
    std::string hay = hexEncode(blob);
    std::string needle = hexEncode(bytesFromString("0123456789abcdef"));
    EXPECT_EQ(hay.find(needle), std::string::npos);
}

TEST_F(EncryptorTest, WrongKeyAndTamperRejected)
{
    Bytes blob =
        encryptBitstream(compiled_.file, key_, header_, *rng_);

    Bytes otherKey = rng_->bytes(32);
    EXPECT_FALSE(decryptBitstream(blob, otherKey).has_value());

    Bytes tampered = blob;
    tampered[tampered.size() / 2] ^= 0x40;
    EXPECT_FALSE(decryptBitstream(tampered, key_).has_value());

    // Header (AAD) tamper also invalidates the whole blob.
    Bytes headerTamper = blob;
    headerTamper[6] ^= 1; // inside deviceModel string
    EXPECT_FALSE(decryptBitstream(headerTamper, key_).has_value());

    EXPECT_FALSE(decryptBitstream(Bytes(10, 1), key_).has_value());
}

TEST_F(EncryptorTest, RequiresAes256Key)
{
    EXPECT_THROW(
        encryptBitstream(compiled_.file, Bytes(16), header_, *rng_),
        CryptoError);
}

TEST_F(EncryptorTest, FreshIvPerEncryption)
{
    Bytes b1 = encryptBitstream(compiled_.file, key_, header_, *rng_);
    Bytes b2 = encryptBitstream(compiled_.file, key_, header_, *rng_);
    EXPECT_NE(b1, b2);
}

TEST(Netlist, ResourcePrefixRespectsHierarchyBoundaries)
{
    Netlist nl("top");
    Cell a;
    a.path = "top/a";
    a.kind = CellKind::Logic;
    a.resources = {1, 0, 0, 0};
    nl.addCell(a);
    Cell ab;
    ab.path = "top/ab";
    ab.kind = CellKind::Logic;
    ab.resources = {10, 0, 0, 0};
    nl.addCell(ab);
    Cell aChild;
    aChild.path = "top/a/child";
    aChild.kind = CellKind::Logic;
    aChild.resources = {100, 0, 0, 0};
    nl.addCell(aChild);

    EXPECT_EQ(nl.resourcesUnder("top/a").luts, 101u);
    EXPECT_EQ(nl.resourcesUnder("top/ab").luts, 10u);
    EXPECT_EQ(nl.resourcesUnder("top").luts, 111u);
}

TEST(Compiler, DeterministicOutput)
{
    // Same design + geometry => bit-identical bitstream and logic
    // locations (required for the digest H workflow: the developer's
    // H must match any reproducing build).
    Compiler compiler("dev-x");
    auto a = compiler.compile(sampleDesign("deterministic!!!"),
                              smallGeometry());
    auto b = compiler.compile(sampleDesign("deterministic!!!"),
                              smallGeometry());
    EXPECT_EQ(a.file, b.file);
    EXPECT_EQ(a.logicLocations.serialize(),
              b.logicLocations.serialize());
}
