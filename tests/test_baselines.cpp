/**
 * @file
 * Baseline-scheme tests: ShEF-style PKE remote attestation and
 * SGX-FPGA-style PUF/CRP multi-stage attestation, including the
 * properties Table 1 and §4.4.1 contrast against Salus.
 */

#include <gtest/gtest.h>

#include "baseline/sgx_fpga.hpp"
#include "baseline/shef.hpp"
#include "crypto/sha256.hpp"
#include "fpga/ip.hpp"
#include "salus/sim_hooks.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::baseline;

// ----------------------------------------------------------- ShEF

namespace {

Bytes
rootSeed()
{
    return bytesFromString("shef-manufacturer-root-seed");
}

} // namespace

TEST(Shef, AttestAndVerifyHappyPath)
{
    crypto::CtrDrbg rng(uint64_t(1));
    ShefDevice device("shef-dev-1", rootSeed(), rng);

    Bytes bitstream = rng.bytes(4096);
    Bytes nonce = rng.bytes(16);
    sim::VirtualClock clock;
    sim::CostModel cost;

    ShefAttestation att =
        device.loadAndAttest(bitstream, nonce, &clock, cost);

    ShefVerifier verifier(shefManufacturerRoot(rootSeed()).publicKey,
                          crypto::Sha256::digest(bitstream));
    EXPECT_TRUE(verifier.verify(att, nonce, &clock, cost));
    EXPECT_GT(clock.now(), 0u);
}

TEST(Shef, RejectsWrongMeasurementForgeryAndStaleNonce)
{
    crypto::CtrDrbg rng(uint64_t(2));
    ShefDevice device("shef-dev-1", rootSeed(), rng);
    sim::CostModel cost;

    Bytes bitstream = rng.bytes(4096);
    Bytes nonce = rng.bytes(16);
    ShefAttestation att =
        device.loadAndAttest(bitstream, nonce, nullptr, cost);

    Bytes rootPub = shefManufacturerRoot(rootSeed()).publicKey;

    // Wrong expected measurement (trojan CL).
    ShefVerifier wrongMeas(rootPub, crypto::Sha256::digest(
                                        bytesFromString("other")));
    EXPECT_FALSE(wrongMeas.verify(att, nonce, nullptr, cost));

    ShefVerifier verifier(rootPub, crypto::Sha256::digest(bitstream));

    // Replayed attestation under a fresh nonce.
    Bytes otherNonce = rng.bytes(16);
    EXPECT_FALSE(verifier.verify(att, otherNonce, nullptr, cost));

    // Forged signature.
    ShefAttestation forged = att;
    forged.signature[0] ^= 1;
    EXPECT_FALSE(verifier.verify(forged, nonce, nullptr, cost));

    // Device cert not from the manufacturer.
    crypto::CtrDrbg evilRng(uint64_t(3));
    ShefDevice evil("shef-dev-1", bytesFromString("evil-root"), evilRng);
    ShefAttestation evilAtt =
        evil.loadAndAttest(bitstream, nonce, nullptr, cost);
    EXPECT_FALSE(verifier.verify(evilAtt, nonce, nullptr, cost));
}

TEST(Shef, BootCheaperThanSalusButNeedsExtraHardware)
{
    // §6.3: ShEF boots in ~5.1 s vs Salus ~18.8 s (no manipulation,
    // no enclave-hosted tooling) -- but only because of the BootROM
    // keypair hardware Salus does without. Reproduce the ordering.
    crypto::CtrDrbg rng(uint64_t(4));
    ShefDevice device("d", rootSeed(), rng);
    sim::CostModel cost;

    Bytes bitstream = rng.bytes(32u << 20); // paper-scale 32 MiB
    Bytes nonce = rng.bytes(16);
    sim::VirtualClock clock;
    ShefAttestation att =
        device.loadAndAttest(bitstream, nonce, &clock, cost);
    ShefVerifier verifier(shefManufacturerRoot(rootSeed()).publicKey,
                          crypto::Sha256::digest(bitstream));
    ASSERT_TRUE(verifier.verify(att, nonce, &clock, cost));

    sim::Nanos shefBoot = clock.now();
    // ShEF's modelled boot sits in the right ballpark (~5 s square).
    EXPECT_GT(shefBoot, 2 * sim::kSec);
    EXPECT_LT(shefBoot, 10 * sim::kSec);
    // And is cheaper than Salus's modelled manipulation alone.
    EXPECT_LT(shefBoot, cost.bitstreamManipulation(32u << 20));
}

// -------------------------------------------------------- SGX-FPGA

TEST(SgxFpga, PufIsDeviceUniqueAndDeterministic)
{
    PufDevice a(111), b(222);
    EXPECT_EQ(a.respond(5), a.respond(5));
    EXPECT_NE(a.respond(5), a.respond(6));
    EXPECT_NE(a.respond(5), b.respond(5));
}

TEST(SgxFpga, CrpAuthenticatesOnlyEnrolledDevice)
{
    crypto::CtrDrbg rng(uint64_t(5));
    PufDevice real(111), clone(112);

    CrpDatabase db;
    db.enroll(real, 8, rng);
    EXPECT_EQ(db.remaining(), 8u);

    EXPECT_TRUE(db.authenticate(real));
    EXPECT_EQ(db.remaining(), 7u); // single-use pairs
    EXPECT_FALSE(db.authenticate(clone));

    // Database exhaustion: the finite CRP budget is a real
    // operational limit of the scheme.
    for (int i = 0; i < 6; ++i)
        db.authenticate(real);
    EXPECT_EQ(db.remaining(), 0u);
    EXPECT_FALSE(db.authenticate(real));
}

TEST(SgxFpga, EnrollmentIsDeviceCoupled)
{
    // The database enrolled on device A is useless for device B --
    // the dev/deploy coupling of Table 1: the developer must touch
    // the exact rented die.
    crypto::CtrDrbg rng(uint64_t(6));
    PufDevice deviceA(1), deviceB(2);
    CrpDatabase db;
    db.enroll(deviceA, 4, rng);
    EXPECT_FALSE(db.authenticate(deviceB));
}

TEST(SgxFpga, MultiStageAttestationLeavesAGap)
{
    // §4.4.1: the client's report arrives BEFORE the CL attestation
    // completes; the trust gap is nonzero.
    crypto::CtrDrbg rng(uint64_t(7));
    PufDevice device(9);
    CrpDatabase db;
    db.enroll(device, 4, rng);

    sim::VirtualClock clock;
    sim::CostModel cost;
    SgxFpgaTimeline t = runSgxFpgaFlow(db, device, clock, cost);

    EXPECT_TRUE(t.clAuthentic);
    EXPECT_GT(t.clAttestedAt, t.reportIssuedAt);
    EXPECT_GT(t.gap(), 0u);
}

TEST(SgxFpga, SalusCascadedAttestationClosesTheGap)
{
    // In Salus the user-enclave quote is generated only after the CL
    // attestation: the final "User RA" work follows the last "CL
    // Authentication" slice in the timeline.
    fpga::ensureBuiltinIps();
    core::Testbed tb;
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    tb.installCl(accel);
    ASSERT_TRUE(tb.runDeployment().ok);

    const auto &trace = tb.clock().trace();
    ptrdiff_t lastClAuth = -1, lastUserRa = -1;
    for (ptrdiff_t i = 0; i < ptrdiff_t(trace.size()); ++i) {
        if (trace[i].phase == core::phases::kClAuth)
            lastClAuth = i;
        if (trace[i].phase == core::phases::kUserRa)
            lastUserRa = i;
    }
    ASSERT_GE(lastClAuth, 0);
    ASSERT_GE(lastUserRa, 0);
    EXPECT_GT(lastUserRa, lastClAuth)
        << "report generation must follow CL attestation";
}
