/**
 * @file
 * Simulated TEE tests: measurement, EREPORT/local attestation, quote
 * generation and DCAP-style verification, sealing (paper §2.1).
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "crypto/random.hpp"
#include "tee/local_attest.hpp"
#include "tee/platform.hpp"
#include "tee/quote_verifier.hpp"

using namespace salus;
using namespace salus::tee;

namespace {

EnclaveImage
image(const std::string &name, const std::string &code)
{
    EnclaveImage img;
    img.name = name;
    img.signer = "test-vendor";
    img.code = bytesFromString(code);
    return img;
}

/** Minimal concrete enclave exposing the protected intrinsics. */
class TestEnclave : public Enclave
{
  public:
    using Enclave::Enclave;
    using Enclave::createQuote;
    using Enclave::createReport;
    using Enclave::rng;
    using Enclave::seal;
    using Enclave::unseal;
    using Enclave::verifyLocalReport;
};

struct Rig
{
    crypto::CtrDrbg rng{uint64_t(55)};
    TeePlatform platform{"plat-A", rng};
    crypto::Ed25519KeyPair rootCa = crypto::ed25519Generate(rng);

    void
    provision(TeePlatform &p)
    {
        PckCertificate cert;
        cert.platformId = p.platformId();
        cert.attestPublicKey = p.attestationPublicKey();
        cert.tcbSvn = p.cpuSvn();
        cert.signature =
            crypto::ed25519Sign(rootCa.seed, cert.signedPortion());
        p.installPckCertificate(cert);
    }
};

} // namespace

TEST(TeePlatformTest, MeasurementIsCodeHash)
{
    Rig rig;
    TestEnclave a(rig.platform, image("a", "code-1"));
    TestEnclave b(rig.platform, image("b", "code-1"));
    TestEnclave c(rig.platform, image("c", "code-2"));
    // Same code = same measurement, regardless of debug name.
    EXPECT_EQ(a.measurement(), b.measurement());
    EXPECT_NE(a.measurement(), c.measurement());
    EXPECT_EQ(a.measurement().size(), 32u);
}

TEST(TeePlatformTest, LocalReportVerifiesOnlyAtTarget)
{
    Rig rig;
    TestEnclave prover(rig.platform, image("p", "prover-code"));
    TestEnclave verifier(rig.platform, image("v", "verifier-code"));
    TestEnclave bystander(rig.platform, image("o", "other-code"));

    Report r = prover.createReport(verifier.measurement(),
                                   bytesFromString("hello"));
    EXPECT_TRUE(verifier.verifyLocalReport(r));
    EXPECT_FALSE(bystander.verifyLocalReport(r));
    EXPECT_EQ(r.body.mrenclave, prover.measurement());
    EXPECT_EQ(r.body.reportData, padReportData(bytesFromString("hello")));

    // Tampering with the body invalidates the MAC.
    Report bad = r;
    bad.body.reportData[0] ^= 1;
    EXPECT_FALSE(verifier.verifyLocalReport(bad));
}

TEST(TeePlatformTest, CrossPlatformReportsFail)
{
    Rig rig;
    TeePlatform other("plat-B", rig.rng);
    TestEnclave prover(other, image("p", "prover-code"));
    TestEnclave verifier(rig.platform, image("v", "verifier-code"));

    // Same binaries, different machine: local attestation must fail,
    // that is exactly what it proves (paper §2.1).
    Report r = prover.createReport(verifier.measurement(),
                                   bytesFromString("x"));
    EXPECT_FALSE(verifier.verifyLocalReport(r));
}

TEST(TeePlatformTest, ReportDataSizeLimit)
{
    Rig rig;
    TestEnclave e(rig.platform, image("e", "code"));
    EXPECT_THROW(e.createReport(e.measurement(), Bytes(65)), TeeError);
    EXPECT_EQ(padReportData(Bytes(64, 1)).size(), 64u);
    EXPECT_THROW(padReportData(Bytes(65)), TeeError);
}

TEST(TeePlatformTest, QuoteLifecycle)
{
    Rig rig;
    rig.provision(rig.platform);
    TestEnclave e(rig.platform, image("e", "app-code"));

    Quote q = e.createQuote(bytesFromString("nonce-binding"));
    QuoteVerificationService qvs(rig.rootCa.publicKey);
    QuoteVerdict v = qvs.verify(q);
    ASSERT_TRUE(v.ok) << v.reason;
    EXPECT_EQ(v.body.mrenclave, e.measurement());
    EXPECT_EQ(v.body.reportData,
              padReportData(bytesFromString("nonce-binding")));

    // Serialization roundtrip preserves verifiability.
    Quote back = Quote::deserialize(q.serialize());
    EXPECT_TRUE(qvs.verify(back).ok);
}

TEST(TeePlatformTest, QuoteRequiresProvisioning)
{
    Rig rig; // platform NOT provisioned
    TestEnclave e(rig.platform, image("e", "app-code"));
    EXPECT_THROW(e.createQuote(ByteView()), TeeError);
}

TEST(QuoteVerifier, RejectsForgedAndRevoked)
{
    Rig rig;
    rig.provision(rig.platform);
    TestEnclave e(rig.platform, image("e", "app-code"));
    Quote q = e.createQuote(bytesFromString("d"));

    QuoteVerificationService qvs(rig.rootCa.publicKey);

    // Tampered body.
    Quote bad = q;
    bad.body.mrenclave[0] ^= 1;
    EXPECT_FALSE(qvs.verify(bad).ok);

    // Self-signed PCK (attacker makes up a platform).
    crypto::CtrDrbg arng(uint64_t(7));
    crypto::Ed25519KeyPair fakeRoot = crypto::ed25519Generate(arng);
    Quote fake = q;
    fake.pck.signature = crypto::ed25519Sign(fakeRoot.seed,
                                             fake.pck.signedPortion());
    EXPECT_FALSE(qvs.verify(fake).ok);

    // Revocation.
    QuoteVerificationService qvs2(rig.rootCa.publicKey);
    qvs2.revokePlatform("plat-A");
    EXPECT_FALSE(qvs2.verify(q).ok);

    // TCB too old.
    QuoteVerificationService qvs3(rig.rootCa.publicKey,
                                  /*minTcbSvn=*/5);
    auto v = qvs3.verify(q);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.reason.find("TCB"), std::string::npos);
}

TEST(Sealing, RoundtripAndIdentityBinding)
{
    Rig rig;
    TestEnclave a(rig.platform, image("a", "code-a"));
    TestEnclave b(rig.platform, image("b", "code-b"));

    Bytes secret = bytesFromString("sealed state");
    Bytes blob = a.seal(secret);
    auto back = a.unseal(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, secret);

    // A different enclave identity cannot unseal.
    EXPECT_FALSE(b.unseal(blob).has_value());

    // Tampered blob rejected.
    Bytes bad = blob;
    bad[bad.size() - 1] ^= 1;
    EXPECT_FALSE(a.unseal(bad).has_value());
    EXPECT_FALSE(a.unseal(Bytes(5)).has_value());
}

// ------------------------------------------------- local attestation

struct LaRig : public Rig
{
    TestEnclave user{platform, image("user", "user-code")};
    TestEnclave sm{platform, image("sm", "sm-code")};
};

TEST(LocalAttestation, MutualHandshakeEstablishesSameKey)
{
    LaRig rig;
    LocalAttestInitiator init(rig.user, rig.sm.measurement());
    LocalAttestResponder resp(rig.sm, rig.user.measurement());

    Bytes msg1 = init.start();
    auto msg2 = resp.answer(msg1);
    ASSERT_TRUE(msg2.has_value());
    auto msg3 = init.finish(*msg2);
    ASSERT_TRUE(msg3.has_value());
    ASSERT_TRUE(resp.confirm(*msg3));

    EXPECT_TRUE(init.established());
    EXPECT_TRUE(resp.established());
    EXPECT_EQ(init.session().key, resp.session().key);
    EXPECT_EQ(init.session().key.size(), 32u);
    EXPECT_EQ(init.session().peer, rig.sm.measurement());
    EXPECT_EQ(resp.session().peer, rig.user.measurement());
}

TEST(LocalAttestation, WrongResponderIdentityRejected)
{
    LaRig rig;
    TestEnclave impostor(rig.platform, image("x", "impostor-code"));

    LocalAttestInitiator init(rig.user, rig.sm.measurement());
    LocalAttestResponder evil(impostor, Measurement{});

    Bytes msg1 = init.start();
    auto msg2 = evil.answer(msg1);
    ASSERT_TRUE(msg2.has_value());
    // The impostor is on the right platform but has the wrong
    // measurement; the initiator pins the SM build and refuses.
    EXPECT_FALSE(init.finish(*msg2).has_value());
    EXPECT_FALSE(init.established());
}

TEST(LocalAttestation, TamperedMessagesRejected)
{
    LaRig rig;
    LocalAttestInitiator init(rig.user, rig.sm.measurement());
    LocalAttestResponder resp(rig.sm, rig.user.measurement());

    Bytes msg1 = init.start();
    auto msg2 = resp.answer(msg1);
    ASSERT_TRUE(msg2.has_value());

    // OS flips a bit in msg2 (report or ephemeral key).
    for (size_t pos : {size_t(8), msg2->size() / 2, msg2->size() - 1}) {
        Bytes bad = *msg2;
        bad[pos] ^= 1;
        EXPECT_FALSE(init.finish(bad).has_value()) << "pos=" << pos;
    }

    // Untampered msg2 still works afterwards (no state poisoning).
    auto msg3 = init.finish(*msg2);
    ASSERT_TRUE(msg3.has_value());

    // Tampered msg3 rejected by responder.
    Bytes bad3 = *msg3;
    bad3[bad3.size() / 2] ^= 1;
    EXPECT_FALSE(resp.confirm(bad3));
    EXPECT_TRUE(resp.confirm(*msg3));
}

TEST(LocalAttestation, CrossPlatformHandshakeFails)
{
    LaRig rig;
    TeePlatform otherPlatform("plat-B", rig.rng);
    TestEnclave remoteSm(otherPlatform, image("sm", "sm-code"));

    LocalAttestInitiator init(rig.user, remoteSm.measurement());
    LocalAttestResponder resp(remoteSm, rig.user.measurement());

    Bytes msg1 = init.start();
    auto msg2 = resp.answer(msg1);
    ASSERT_TRUE(msg2.has_value());
    // Same code, wrong machine: report key differs, MAC fails.
    EXPECT_FALSE(init.finish(*msg2).has_value());
}

TEST(LocalAttestation, GarbageInputsHandled)
{
    LaRig rig;
    LocalAttestResponder resp(rig.sm, rig.user.measurement());
    EXPECT_FALSE(resp.answer(Bytes(3, 1)).has_value());
    EXPECT_FALSE(resp.confirm(Bytes(10, 2)));

    LocalAttestInitiator init(rig.user, rig.sm.measurement());
    init.start();
    EXPECT_FALSE(init.finish(Bytes(7, 3)).has_value());
}
