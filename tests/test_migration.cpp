/**
 * @file
 * Fleet placement and live-migration tests: the power-of-two-choices
 * placement (determinism, balance, eligibility, fuzz-hardened state
 * serde), the SM enclave's MAC'd migration ticket (tamper and replay
 * rejection), the end-to-end live move with the scheduler parked,
 * rolling-upgrade drain with graceful no-capacity degradation, the
 * same-seed byte-identical trace contract, and a crash-injection
 * sweep over every journal write of a migrating session.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "fpga/health.hpp"
#include "obs/trace.hpp"
#include "salus/placement.hpp"
#include "salus/sm_logic.hpp"
#include "salus/supervisor.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {100, 100, 0, 0};
    return accel;
}

fpga::HealthPolicy
fastHealth()
{
    fpga::HealthPolicy h;
    h.windowSize = 4;
    h.minSamples = 2;
    h.degradeThreshold = 0.3;
    h.quarantineThreshold = 0.6;
    h.probationAfter = 200 * sim::kMs;
    h.probationSuccesses = 2;
    return h;
}

} // namespace

// ---- Placement unit behaviour ---------------------------------------

TEST(Placement, SameSeedPlacesIdentically)
{
    Placement a(8, 42);
    Placement b(8, 42);
    for (uint64_t s = 0; s < 100; ++s)
        EXPECT_EQ(a.place(s), b.place(s)) << "session " << s;
    EXPECT_EQ(a.sessionCount(), 100u);

    // A different seed shards differently somewhere.
    Placement c(8, 43);
    bool differs = false;
    for (uint64_t s = 0; s < 100; ++s)
        differs |= c.place(s) != a.deviceOf(s);
    EXPECT_TRUE(differs);
}

TEST(Placement, PowerOfTwoChoicesKeepsTheFleetBalanced)
{
    Placement p(4, 7);
    for (uint64_t s = 0; s < 400; ++s)
        p.place(s);

    uint32_t total = 0, lo = 400, hi = 0;
    for (uint32_t d = 0; d < 4; ++d) {
        total += p.load(d);
        lo = std::min(lo, p.load(d));
        hi = std::max(hi, p.load(d));
    }
    EXPECT_EQ(total, 400u);
    // Two choices with exact load counts keeps the spread tiny
    // (theory says O(log log n); give it generous slack).
    EXPECT_LE(hi - lo, 10u);
}

TEST(Placement, IneligibleDevicesTakeNoNewSessions)
{
    Placement p(3, 1);
    p.setEligible(0, false);
    for (uint64_t s = 0; s < 30; ++s)
        EXPECT_NE(p.place(s), 0u);
    EXPECT_EQ(p.load(0), 0u);

    // Draining: migrate() always moves sessions off an ineligible
    // device, spreading them over what remains.
    p.setEligible(0, true);
    p.setEligible(1, false);
    for (uint64_t s : p.sessionsOn(1))
        EXPECT_NE(p.migrate(s), 1u);
    EXPECT_TRUE(p.sessionsOn(1).empty());
    EXPECT_EQ(p.load(1), 0u);
    EXPECT_EQ(p.sessionCount(), 30u);

    // With nothing eligible, placement degrades to a typed error.
    p.setEligible(0, false);
    p.setEligible(2, false);
    EXPECT_THROW(p.place(999), MigrationError);
    EXPECT_THROW(p.pickTarget(999), MigrationError);
}

TEST(Placement, ReleaseAndPickTargetAccounting)
{
    Placement p(2, 5);
    uint32_t d = p.place(1);
    EXPECT_TRUE(p.placed(1));
    EXPECT_EQ(p.deviceOf(1), d);
    EXPECT_EQ(p.load(d), 1u);

    // pickTarget never mutates.
    uint32_t t = p.pickTarget(2);
    EXPECT_LT(t, 2u);
    EXPECT_EQ(p.sessionCount(), 1u);

    p.release(1);
    p.release(1); // idempotent
    EXPECT_FALSE(p.placed(1));
    EXPECT_EQ(p.load(d), 0u);
    EXPECT_THROW(p.deviceOf(1), SalusError);
    EXPECT_THROW(p.migrate(1), MigrationError);
}

TEST(Placement, StateSerdeRoundTripsAndRejectsGarbage)
{
    Placement p(5, 99);
    p.setEligible(3, false);
    for (uint64_t s = 10; s < 30; ++s)
        p.place(s);

    Placement q = Placement::deserializeState(p.serializeState());
    EXPECT_EQ(q.deviceCount(), 5u);
    EXPECT_EQ(q.sessionCount(), 20u);
    EXPECT_FALSE(q.eligible(3));
    for (uint64_t s = 10; s < 30; ++s)
        EXPECT_EQ(q.deviceOf(s), p.deviceOf(s));
    for (uint32_t d = 0; d < 5; ++d)
        EXPECT_EQ(q.load(d), p.load(d));
    // The adopted state keeps placing the same way.
    EXPECT_EQ(q.place(1000), p.place(1000));

    Bytes good = p.serializeState();
    Bytes badMagic = good;
    badMagic[0] ^= 0xff;
    EXPECT_THROW(Placement::deserializeState(badMagic), SerdeError);
    Bytes cut(good.begin(), good.begin() + 9);
    EXPECT_THROW(Placement::deserializeState(cut), SerdeError);

    // Out-of-pool assignments and duplicate sessions are refused.
    BinaryWriter w;
    w.writeU32(0x53504c43);
    w.writeU32(2);
    w.writeU64(0);
    w.writeU8(1);
    w.writeU8(1);
    w.writeU32(1);
    w.writeU64(77);
    w.writeU32(9); // device 9 of 2
    EXPECT_THROW(Placement::deserializeState(w.take()), SerdeError);

    BinaryWriter w2;
    w2.writeU32(0x53504c43);
    w2.writeU32(2);
    w2.writeU64(0);
    w2.writeU8(1);
    w2.writeU8(1);
    w2.writeU32(2);
    w2.writeU64(77);
    w2.writeU32(0);
    w2.writeU64(77); // duplicate session
    w2.writeU32(1);
    EXPECT_THROW(Placement::deserializeState(w2.take()), SerdeError);
}

// ---- Migration message serde ----------------------------------------

TEST(MigrationSerde, TicketRoundTripsAndRejectsGarbage)
{
    MigrationTicket t;
    t.fromDevice = 0;
    t.toDevice = 2;
    t.fromDna = 0x1111;
    t.toDna = 0x2222;
    t.nonce = 0xfeedbeef;
    t.sourceFingerprint = Bytes(32, 0xab);
    t.mac = 0xdeadd00d;

    MigrationTicket t2 = MigrationTicket::deserialize(t.serialize());
    EXPECT_EQ(t2.fromDevice, t.fromDevice);
    EXPECT_EQ(t2.toDevice, t.toDevice);
    EXPECT_EQ(t2.fromDna, t.fromDna);
    EXPECT_EQ(t2.toDna, t.toDna);
    EXPECT_EQ(t2.nonce, t.nonce);
    EXPECT_EQ(t2.sourceFingerprint, t.sourceFingerprint);
    EXPECT_EQ(t2.mac, t.mac);

    Bytes good = t.serialize();
    Bytes badMagic = good;
    badMagic[0] ^= 0xff;
    EXPECT_THROW(MigrationTicket::deserialize(badMagic), SerdeError);
    Bytes cut(good.begin(), good.begin() + 11);
    EXPECT_THROW(MigrationTicket::deserialize(cut), SerdeError);

    MigrationTicket absurd = t;
    absurd.toDevice = Placement::kMaxDevices;
    EXPECT_THROW(MigrationTicket::deserialize(absurd.serialize()),
                 SerdeError);
    MigrationTicket shortFp = t;
    shortFp.sourceFingerprint = Bytes(16, 0xab);
    EXPECT_THROW(MigrationTicket::deserialize(shortFp.serialize()),
                 SerdeError);
}

TEST(MigrationSerde, RecordRoundTripsAndRejectsBadFlag)
{
    MigrationRecord m;
    m.fromDevice = 1;
    m.toDevice = 0;
    m.atNanos = 555;
    m.reason = "rolling upgrade";
    m.oldFingerprint = Bytes(32, 0x01);
    m.newFingerprint = Bytes(32, 0x02);
    m.attested = 1;
    m.parkedOps = 12;

    MigrationRecord m2 = MigrationRecord::deserialize(m.serialize());
    EXPECT_EQ(m2.fromDevice, 1u);
    EXPECT_EQ(m2.toDevice, 0u);
    EXPECT_EQ(m2.atNanos, 555u);
    EXPECT_EQ(m2.reason, m.reason);
    EXPECT_EQ(m2.oldFingerprint, m.oldFingerprint);
    EXPECT_EQ(m2.newFingerprint, m.newFingerprint);
    EXPECT_EQ(m2.attested, 1);
    EXPECT_EQ(m2.parkedOps, 12u);

    MigrationRecord bad = m;
    bad.attested = 9;
    EXPECT_THROW(MigrationRecord::deserialize(bad.serialize()),
                 SerdeError);
}

// ---- Ticket security at the SM enclave ------------------------------

TEST(MigrationTicketSecurity, TamperedTicketsAreRefused)
{
    TestbedConfig cfg;
    cfg.rngSeed = 21;
    cfg.deviceCount = 2;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    // Every field is bound by the MAC (or checked against the SM's
    // own view): flipping any one of them kills the ticket. The
    // supervisor relays these, so refusal is a false, not a throw.
    auto tampered = [&](auto &&mutate) {
        MigrationTicket t = tb.smApp().issueMigrationTicket(1);
        mutate(t);
        return tb.smApp().commitMigration(t);
    };
    EXPECT_FALSE(tampered([](MigrationTicket &t) { t.toDna ^= 1; }));
    EXPECT_FALSE(tampered([](MigrationTicket &t) { t.fromDna ^= 1; }));
    EXPECT_FALSE(tampered([](MigrationTicket &t) { t.nonce ^= 1; }));
    EXPECT_FALSE(tampered([](MigrationTicket &t) { t.mac ^= 1; }));
    EXPECT_FALSE(tampered(
        [](MigrationTicket &t) { t.sourceFingerprint[0] ^= 1; }));
    // Redirecting the move to a different device than authorized.
    EXPECT_FALSE(tampered([](MigrationTicket &t) { t.fromDevice = 1; }));

    // The untampered ticket still commits: nothing above burned it.
    MigrationTicket good = tb.smApp().issueMigrationTicket(1);
    EXPECT_TRUE(tb.smApp().commitMigration(good));
    EXPECT_EQ(tb.smApp().activeDevice(), 1u);

    // Replay: the commit retired the epoch the ticket is bound to.
    EXPECT_FALSE(tb.smApp().commitMigration(good));
}

TEST(MigrationTicketSecurity, IssueRefusesMisuse)
{
    TestbedConfig cfg;
    cfg.rngSeed = 22;
    cfg.deviceCount = 2;
    Testbed tb(cfg);

    // No live attested session yet.
    EXPECT_THROW(tb.smApp().issueMigrationTicket(1), MigrationError);

    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    // Self-migration and out-of-pool targets are refused.
    EXPECT_THROW(tb.smApp().issueMigrationTicket(0), MigrationError);
    EXPECT_THROW(tb.smApp().issueMigrationTicket(9), MigrationError);
}

// ---- Live migration end to end --------------------------------------

TEST(LiveMigration, ActiveSessionMovesWithParkedQueueAndFreshKeys)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    TestbedConfig cfg;
    cfg.rngSeed = 23;
    cfg.deviceCount = 3;
    cfg.health = fastHealth();
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    ASSERT_TRUE(tb.userApp().secureWrite(0x00, 41));
    Bytes oldFp = tb.smApp().secretsFingerprint();

    // Ops queued (not yet pumped) ride through the move parked.
    BatchScheduler &sched = tb.scheduler();
    std::vector<uint8_t> statuses;
    uint64_t readBack = 0;
    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(sched.submit(0, {true, 0x08, 70ull + uint64_t(i)},
                               [&](uint8_t st, uint64_t) {
                                   statuses.push_back(st);
                               }),
                  BatchScheduler::Submit::Accepted);
    ASSERT_EQ(sched.submit(0, {false, 0x08, 0},
                           [&](uint8_t st, uint64_t data) {
                               statuses.push_back(st);
                               readBack = data;
                           }),
              BatchScheduler::Submit::Accepted);

    MigrationRecord rec =
        tb.supervisor().migrateActiveTo(2, "load balancing");
    EXPECT_EQ(rec.fromDevice, 0u);
    EXPECT_EQ(rec.toDevice, 2u);
    EXPECT_EQ(rec.attested, 1);
    EXPECT_EQ(rec.parkedOps, 4u);
    EXPECT_EQ(rec.reason, "load balancing");
    EXPECT_EQ(tb.smApp().activeDevice(), 2u);
    ASSERT_EQ(tb.supervisor().migrations().size(), 1u);

    // Key freshness: the source epoch is tombstoned, the target runs
    // under secrets that never served anywhere else.
    ASSERT_FALSE(oldFp.empty());
    EXPECT_EQ(rec.oldFingerprint, oldFp);
    EXPECT_TRUE(tb.smApp().everRetiredFingerprint(oldFp));
    EXPECT_NE(rec.newFingerprint, oldFp);
    EXPECT_FALSE(
        tb.smApp().everRetiredFingerprint(rec.newFingerprint));

    // The parked ops were released and complete on the TARGET device.
    EXPECT_FALSE(sched.parked());
    EXPECT_EQ(sched.drain(), 4u);
    ASSERT_EQ(statuses.size(), 4u);
    for (uint8_t st : statuses)
        EXPECT_EQ(st, 0);
    EXPECT_EQ(readBack, 72u);
    EXPECT_EQ(tb.shell(2).registerRead(pcie::Window::SmSecure,
                                       kSmRegStatBatchOps),
              4u);
    EXPECT_EQ(tb.shell(0).registerRead(pcie::Window::SmSecure,
                                       kSmRegStatBatchOps),
              0u);

    // Plain channel traffic continues on the new device too.
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 77));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 77u);
}

TEST(LiveMigration, SupervisorRefusesUnusableTargets)
{
    TestbedConfig cfg;
    cfg.rngSeed = 24;
    cfg.deviceCount = 2;
    cfg.health = fastHealth();
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);
    Bytes fp = tb.smApp().secretsFingerprint();

    EXPECT_THROW(tb.supervisor().migrateActiveTo(0, "self"),
                 MigrationError);
    EXPECT_THROW(tb.supervisor().migrateActiveTo(9, "ghost"),
                 MigrationError);

    // Refusals happen before anything is touched: same epoch, same
    // device, traffic uninterrupted.
    EXPECT_EQ(tb.smApp().activeDevice(), 0u);
    EXPECT_EQ(tb.smApp().secretsFingerprint(), fp);
    EXPECT_TRUE(tb.supervisor().migrations().empty());
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 5));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 5u);
}

// ---- Rolling upgrades -----------------------------------------------

TEST(RollingUpgrade, DrainMovesEverythingAndMaintenanceHolds)
{
    TestbedConfig cfg;
    cfg.rngSeed = 25;
    cfg.deviceCount = 3;
    cfg.health = fastHealth();
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    Placement placement(3, cfg.rngSeed);
    for (uint64_t s = 1; s <= 12; ++s)
        placement.place(s);
    uint32_t wasOnZero = placement.load(0);

    size_t moved =
        tb.supervisor().drainForUpgrade(0, placement, "shell update");
    EXPECT_EQ(moved, wasOnZero);
    EXPECT_TRUE(placement.sessionsOn(0).empty());
    EXPECT_FALSE(placement.eligible(0));
    EXPECT_EQ(placement.sessionCount(), 12u);

    // The REAL session (it was serving on device 0) live-migrated.
    ASSERT_EQ(tb.supervisor().migrations().size(), 1u);
    EXPECT_NE(tb.smApp().activeDevice(), 0u);
    EXPECT_EQ(tb.supervisor().migrations()[0].attested, 1);

    // Maintenance quarantine holds across the watchdog: no probation
    // while the operator is reflashing the shell.
    EXPECT_EQ(tb.supervisor().state(0),
              fpga::HealthState::Quarantined);
    EXPECT_TRUE(tb.supervisor().tracker(0).inMaintenance());
    tb.supervisor().runFor(3 * fastHealth().probationAfter);
    EXPECT_EQ(tb.supervisor().state(0),
              fpga::HealthState::Quarantined);

    // Upgrade done: the device earns its way back through probation
    // and takes new placements again.
    tb.supervisor().completeUpgrade(0, placement);
    EXPECT_TRUE(placement.eligible(0));
    EXPECT_EQ(tb.supervisor().state(0), fpga::HealthState::Probation);
    // Each poll spends network RTT virtual time well past the
    // heartbeat period, so count polls instead of wall time: two
    // clean probes serve out probation (probationSuccesses = 2).
    tb.supervisor().pollOnce();
    tb.supervisor().pollOnce();
    EXPECT_EQ(tb.supervisor().state(0), fpga::HealthState::Healthy);

    // Traffic never stopped.
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 9));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 9u);
}

TEST(RollingUpgrade, NoCapacityDegradesGracefully)
{
    TestbedConfig cfg;
    cfg.rngSeed = 26;
    cfg.deviceCount = 1;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    ASSERT_TRUE(tb.runDeployment().ok);

    Placement placement(1, cfg.rngSeed);
    placement.place(1);

    // Draining the only device must refuse up front: eligibility is
    // restored, nothing migrated, the session keeps serving.
    EXPECT_THROW(
        tb.supervisor().drainForUpgrade(0, placement, "no room"),
        MigrationError);
    EXPECT_TRUE(placement.eligible(0));
    EXPECT_EQ(placement.deviceOf(1), 0u);
    EXPECT_TRUE(tb.supervisor().migrations().empty());
    EXPECT_EQ(tb.supervisor().state(0), fpga::HealthState::Healthy);
    EXPECT_TRUE(tb.userApp().secureWrite(0x00, 3));
    EXPECT_EQ(tb.userApp().secureRead(0x00), 3u);
}

// ---- Same-seed determinism (replay contract) ------------------------

namespace {

struct MigrationRun
{
    bool deployOk = false;
    uint64_t clockEnd = 0;
    Bytes oldFp;
    Bytes newFp;
    uint32_t activeAfter = 0;
    size_t migrations = 0;
    uint64_t postRead = 0;
    std::string traceJson;
    std::string metricsText;
};

/** The rolling-upgrade scenario the robustness-soak seed sweep runs:
 *  deploy, drain device 0 (live-migrating the active session), finish
 *  the upgrade, keep serving. Fully traced for byte comparison. */
MigrationRun
runUpgradeScenario(uint64_t seed)
{
    MigrationRun run;
    TestbedConfig cfg;
    cfg.rngSeed = seed;
    cfg.deviceCount = 3;
    cfg.health = fastHealth();
    Testbed tb(cfg);

    obs::TraceRecorder recorder(tb.clock());
    obs::MetricsRegistry metricsReg;
    {
        obs::ObsScope scope(&recorder, &metricsReg);
        tb.installCl(loopbackAccel());
        run.deployOk = tb.runDeployment().ok;
        if (run.deployOk) {
            EXPECT_TRUE(tb.userApp().secureWrite(0x00, 1));
            run.oldFp = tb.smApp().secretsFingerprint();

            Placement placement(3, seed);
            for (uint64_t s = 1; s <= 8; ++s)
                placement.place(s);
            tb.supervisor().drainForUpgrade(0, placement,
                                            "rolling upgrade");
            tb.supervisor().runFor(50 * sim::kMs);
            tb.supervisor().completeUpgrade(0, placement);

            run.migrations = tb.supervisor().migrations().size();
            run.activeAfter = tb.smApp().activeDevice();
            run.newFp = tb.smApp().secretsFingerprint();
            EXPECT_TRUE(tb.userApp().secureWrite(0x00, 2));
            run.postRead = tb.userApp().secureRead(0x00).value_or(0);
            run.clockEnd = tb.clock().now();
        }
    }
    run.traceJson = recorder.chromeTraceJson();
    run.metricsText = metricsReg.renderText();
    return run;
}

} // namespace

TEST(LiveMigration, SameSeedUpgradeRunsAreBitForBitIdentical)
{
    MigrationRun a = runUpgradeScenario(27);
    MigrationRun b = runUpgradeScenario(27);
    ASSERT_TRUE(a.deployOk);
    EXPECT_EQ(a.migrations, 1u);
    EXPECT_NE(a.activeAfter, 0u);
    EXPECT_EQ(a.postRead, 2u);
    EXPECT_NE(a.oldFp, a.newFp);

    EXPECT_EQ(a.clockEnd, b.clockEnd);
    EXPECT_EQ(a.activeAfter, b.activeAfter);
    EXPECT_EQ(a.oldFp, b.oldFp);
    EXPECT_EQ(a.newFp, b.newFp);
    ASSERT_GT(a.traceJson.size(), 1000u);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.metricsText, b.metricsText);

    // A different seed derives different key material.
    MigrationRun c = runUpgradeScenario(28);
    ASSERT_TRUE(c.deployOk);
    EXPECT_NE(c.newFp, a.newFp);
}

// ---- Crash-injection sweep over a migrating session -----------------

namespace {

/** The canonical migrating session the sweep enumerates journal
 *  writes of: deploy, traffic, live-migrate 0 -> 1, traffic.
 *  `preFp` reports the source epoch's fingerprint (captured right
 *  before the migration) even when a crash interrupts the move. */
void
runMigratingSession(Testbed &tb, Bytes &preFp)
{
    tb.installCl(loopbackAccel());
    UserClient::Outcome out = tb.runDeployment();
    if (!out.ok)
        throw SalusError("deployment failed: " + out.failure);
    if (!tb.userApp().secureWrite(0x00, 1))
        throw SalusError("write failed");
    preFp = tb.smApp().secretsFingerprint();
    tb.supervisor().migrateActiveTo(1, "sweep migration");
    if (!tb.userApp().secureWrite(0x00, 2))
        throw SalusError("write failed");
}

int
baselineMigrationJournalWrites()
{
    static int n = [] {
        TestbedConfig cfg;
        cfg.rngSeed = 31;
        cfg.deviceCount = 2;
        Testbed tb(cfg);
        Bytes fp;
        runMigratingSession(tb, fp);
        return int(tb.smApp().journalWrites());
    }();
    return n;
}

} // namespace

class MigrationCrashSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(MigrationCrashSweep, EveryJournalStepFailsClosedOrCompletes)
{
    auto [step, afterPersist] = GetParam();
    ASSERT_GE(baselineMigrationJournalWrites(), 4)
        << "scenario no longer journals enough steps to sweep";
    if (step >= baselineMigrationJournalWrites())
        GTEST_SKIP() << "scenario only journals "
                     << baselineMigrationJournalWrites() << " steps";

    TestbedConfig cfg;
    cfg.rngSeed = 31;
    cfg.deviceCount = 2;
    cfg.faultPlan.add(
        sim::FaultRule::smCrash(uint64_t(step), afterPersist));
    Testbed tb(cfg);

    Bytes preFp;
    bool crashed = false;
    try {
        runMigratingSession(tb, preFp);
    } catch (const SmCrashError &) {
        crashed = true;
    }
    ASSERT_TRUE(crashed) << "armed crash at step " << step
                         << " never fired";

    // Honest host: every crash point recovers consistent (or a fresh
    // start when the crash preceded the first persist) — never a
    // partially adopted migration.
    SmEnclaveApp::RecoveryReport rep = tb.crashAndRecoverSmApp();
    EXPECT_TRUE(rep.status == SmEnclaveApp::RecoveryStatus::Recovered ||
                rep.status == SmEnclaveApp::RecoveryStatus::NoJournal)
        << rep.detail;
    EXPECT_FALSE(tb.smApp().failedClosed());
    EXPECT_EQ(rep.reattestFailures, 0u);

    // The recovered table lands in exactly one of two states: the
    // migration committed (active = target, source epoch tombstoned)
    // or it failed closed on the source (active = source). Either
    // way the source epoch's keys are never live on two devices.
    uint32_t active = tb.smApp().activeDevice();
    EXPECT_TRUE(active == 0 || active == 1);
    if (!preFp.empty() && active == 1) {
        EXPECT_TRUE(tb.smApp().everRetiredFingerprint(preFp))
            << "migration adopted without tombstoning the source";
    }
    Bytes liveFp = tb.smApp().secretsFingerprint();
    if (!liveFp.empty()) {
        EXPECT_FALSE(tb.smApp().everRetiredFingerprint(liveFp));
    }

    // And the fleet serves attested traffic again end to end.
    UserClient::Outcome out = tb.runDeployment();
    ASSERT_TRUE(out.ok) << out.failure;
    EXPECT_TRUE(tb.userApp().secureWrite(0x10, 5));
    EXPECT_EQ(tb.userApp().secureRead(0x10), 5u);
    Bytes finalFp = tb.smApp().secretsFingerprint();
    ASSERT_FALSE(finalFp.empty());
    EXPECT_FALSE(tb.smApp().everRetiredFingerprint(finalFp));
}

INSTANTIATE_TEST_SUITE_P(
    AllMigrationJournalSteps, MigrationCrashSweep,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>> &info) {
        return "step" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "_postStore" : "_preStore");
    });
