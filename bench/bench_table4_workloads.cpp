/**
 * @file
 * Reproduces paper Table 4: the benchmarking applications — generated
 * from the live workload registry, with the actual evaluation input
 * sizes and the §6.4 memory-encryption policy per application.
 */

#include <cstdio>

#include "accel/kernels.hpp"
#include "accel/workloads.hpp"
#include "bench_util.hpp"

using namespace salus;
using namespace salus::accel;

namespace {

const char *
description(KernelId id)
{
    switch (id) {
      case KernelId::Conv:
        return "Single convolution layer over a 3x3x256 kernel";
      case KernelId::Affine:
        return "Affine transformation on a 512x512 image";
      case KernelId::Rendering:
        return "Render 2D images from 3D models (z-buffered)";
      case KernelId::FaceDetect:
        return "Viola-Jones face detection (integral images)";
      case KernelId::NnSearch:
        return "Nearest-neighbour linear search";
      default:
        return "?";
    }
}

const char *
sourceAnalog(KernelId id)
{
    switch (id) {
      case KernelId::Conv:
      case KernelId::Affine:
      case KernelId::NnSearch:
        return "Xilinx SDAccel example (reimplemented)";
      case KernelId::Rendering:
      case KernelId::FaceDetect:
        return "Rosetta (reimplemented)";
      default:
        return "?";
    }
}

} // namespace

int
main()
{
    bench::banner("Table 4: benchmarking applications");

    std::printf("%-11s %-48s %-34s %-22s %10s %10s\n", "app",
                "description", "source analog", "memory encryption",
                "in (B)", "MACs");
    for (const auto &spec : allWorkloads()) {
        Bytes input = generateInput(spec.id, 1, spec.benchScale);
        std::printf("%-11s %-48s %-34s %-22s %10zu %10.1fM\n",
                    spec.name, description(spec.id),
                    sourceAnalog(spec.id),
                    outputEncrypted(spec.id) ? "input & output"
                                             : "input only",
                    input.size(),
                    double(kernelOps(spec.id, input)) / 1e6);
    }
    std::printf("\nmemory-encryption policy per paper 6.4: ML kernels "
                "(Conv, FaceDetect, NNSearch) encrypt inbound traffic "
                "only; Affine and Rendering protect both directions.\n");
    return 0;
}
