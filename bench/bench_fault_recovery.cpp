/**
 * @file
 * Robustness sweep for the fault-injection fabric: deployment success
 * rate and virtual-time cost as a function of message-loss rate, with
 * the self-healing retry schedule on vs. off. Also reports the cost
 * of healing through the combined acceptance scenario (lossy links +
 * one failed bitstream load + one configuration upset).
 *
 * Everything runs on the virtual clock with seeded fault plans, so
 * the table is deterministic across machines and runs.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

struct TrialResult
{
    bool ok = false;
    int attempts = 0;
    sim::Nanos bootTime = 0;
    sim::Nanos backoffTime = 0;
    uint64_t faults = 0;
};

TrialResult
runTrial(double dropRate, uint64_t seed, const net::RetryPolicy &retry)
{
    TestbedConfig cfg;
    cfg.rngSeed = seed;
    cfg.retry = retry;
    cfg.faultPlan.seed = seed;
    if (dropRate > 0)
        cfg.faultPlan.add(sim::FaultRule::dropRpc(dropRate));

    Testbed tb(cfg);
    tb.installCl(loopbackAccel());

    auto outcome = tb.runDeployment();
    TrialResult r;
    r.ok = outcome.ok;
    r.attempts = outcome.attempts;
    r.bootTime = tb.clock().now();
    r.backoffTime = tb.clock().totalFor(net::kRetryBackoffPhase);
    r.faults = tb.faultInjector().stats().total();
    return r;
}

void
sweep(const char *label, const net::RetryPolicy &retry)
{
    const double rates[] = {0.0, 0.05, 0.10, 0.20, 0.30};
    const int kTrials = 25;

    std::printf("\n%s (maxAttempts=%d, %d seeds per point)\n", label,
                retry.maxAttempts, kTrials);
    std::printf("%-10s %-10s %-10s %-14s %-14s %s\n", "drop-rate",
                "success", "attempts", "boot (ms)", "backoff (ms)",
                "faults");
    for (double rate : rates) {
        int ok = 0, attempts = 0;
        sim::Nanos boot = 0, backoff = 0;
        uint64_t faults = 0;
        for (int t = 0; t < kTrials; ++t) {
            TrialResult r = runTrial(rate, 1000 + t, retry);
            ok += r.ok ? 1 : 0;
            attempts += r.attempts;
            boot += r.bootTime;
            backoff += r.backoffTime;
            faults += r.faults;
        }
        std::printf("%-10.0f %3d/%-6d %-10.2f %-14.2f %-14.2f %.1f\n",
                    rate * 100, ok, kTrials,
                    double(attempts) / kTrials,
                    bench::ms(boot) / kTrials,
                    bench::ms(backoff) / kTrials,
                    double(faults) / kTrials);
    }
}

} // namespace

int
main()
{
    bench::banner("Fault recovery: deployment under lossy links");
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    sweep("self-healing retries", net::RetryPolicy::standard());
    sweep("retries disabled (fail-closed)", net::RetryPolicy::none());

    // ---- combined acceptance scenario -------------------------------
    bench::banner(
        "Combined scenario: 10% loss + failed load + one SEU");
    {
        TestbedConfig cfg;
        cfg.faultPlan.seed = 7;
        cfg.faultPlan.add(sim::FaultRule::dropRpc(0.10));
        cfg.faultPlan.add(sim::FaultRule::bitstreamLoadFail(1));
        cfg.faultPlan.add(sim::FaultRule::seu(0, 2 * 64 * 8 + 7));
        Testbed tb(cfg);
        tb.installCl(loopbackAccel());

        auto outcome = tb.runDeployment();
        const sim::FaultStats &stats = tb.faultInjector().stats();
        std::printf("deployment: %s after %d attempt(s)\n",
                    outcome.ok ? "recovered" : "FAILED",
                    outcome.attempts);
        std::printf("injected faults: %llu rpc drops, %llu load "
                    "failures, %llu SEUs\n",
                    (unsigned long long)stats.rpcDropped,
                    (unsigned long long)stats.loadFailures,
                    (unsigned long long)stats.seusInjected);
        std::printf("virtual boot time: %.2f ms (%.2f ms of it retry "
                    "backoff)\n",
                    bench::ms(tb.clock().now()),
                    bench::ms(tb.clock().totalFor(
                        net::kRetryBackoffPhase)));
        std::printf("fault journal:\n");
        for (const std::string &line : tb.faultInjector().journal())
            std::printf("  %s\n", line.c_str());
        if (!outcome.ok)
            return 1;
    }
    return 0;
}
