/**
 * @file
 * Reproduces paper Figure 8: the floor planning of shell and CL on
 * the FPGA — rendered from the device model's actual partition
 * geometry, plus the multi-RP layout of §4.7.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "fpga/device.hpp"

using namespace salus;
using namespace salus::fpga;

namespace {

void
renderDevice(const DeviceModelInfo &model)
{
    std::printf("\ndevice %s: %u frames x %u B = %.1f MiB configuration "
                "memory, %.0f MiB DRAM\n",
                model.name.c_str(), model.totalFrames, model.frameSize,
                double(model.totalFrames) * model.frameSize / (1 << 20),
                double(model.dramBytes) / (1 << 20));

    // Scale the frame space onto an 64-column bar.
    const int cols = 64;
    std::string bar(cols, 'S'); // static area (shell) by default
    for (const auto &rp : model.partitions) {
        int start = int(int64_t(rp.frameStart) * cols /
                        model.totalFrames);
        int end = int(int64_t(rp.frameStart + rp.frameCount) * cols /
                      model.totalFrames);
        for (int i = start; i < end && i < cols; ++i)
            bar[i] = char('0' + rp.partitionId % 10);
    }
    std::printf("  [%s]\n", bar.c_str());
    std::printf("  S = static area (shell: DMA, interconnect, DDR "
                "controllers)\n");
    for (const auto &rp : model.partitions) {
        std::printf("  %u = reconfigurable partition %u: frames "
                    "%u..%u (%.1f MiB partial bitstream), capacity "
                    "%u LUT / %u FF / %u BRAM\n",
                    rp.partitionId, rp.partitionId, rp.frameStart,
                    rp.frameStart + rp.frameCount - 1,
                    double(rp.bodyBytes()) / (1 << 20),
                    rp.capacity.luts, rp.capacity.registers,
                    rp.capacity.brams);
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 8: floor planning of shell and CL");

    std::printf("paper: one of the U200's three super logic regions "
                "is reserved as the RP (~1/3 of the device), the rest "
                "hosts the shell.\n");
    renderDevice(u200ScaledModel());

    std::printf("\n-- multi-RP variant (paper 4.7 extension) --\n");
    renderDevice(testModelMultiRp(3));
    return 0;
}
