/**
 * @file
 * Reproduces paper Table 2: the step-by-step analogy between Intel
 * SGX local attestation and Salus CL attestation — by actually
 * executing both protocols and printing each mapped step with live
 * values.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "bitstream/compiler.hpp"
#include "common/hex.hpp"
#include "fpga/ip.hpp"
#include "salus/reg_channel.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"
#include "tee/local_attest.hpp"

using namespace salus;
using namespace salus::core;

namespace {

class DemoEnclave : public tee::Enclave
{
  public:
    using tee::Enclave::Enclave;
};

std::string
prefix(ByteView b, size_t n = 8)
{
    return hexEncode(ByteView(b.data(), std::min(n, b.size()))) + "..";
}

} // namespace

int
main()
{
    bench::banner("Table 2: Salus CL attestation vs SGX local "
                  "attestation, executed side by side");

    // ---- left column: SGX local attestation --------------------------
    crypto::CtrDrbg rng(uint64_t(9));
    tee::TeePlatform platform("demo-platform", rng);
    tee::EnclaveImage verifierImg{"verifier", "v", 1,
                                  bytesFromString("verifier-code")};
    tee::EnclaveImage proverImg{"prover", "v", 1,
                                bytesFromString("prover-code")};
    DemoEnclave verifier(platform, verifierImg);
    DemoEnclave prover(platform, proverImg);

    tee::LocalAttestInitiator init(verifier, prover.measurement());
    tee::LocalAttestResponder resp(prover, verifier.measurement());
    Bytes msg1 = init.start();
    Bytes msg2 = *resp.answer(msg1);
    Bytes msg3 = *init.finish(msg2);
    bool laOk = resp.confirm(msg3);

    // ---- right column: Salus CL attestation --------------------------
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    Testbed tb;
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {100, 100, 0, 0};
    tb.installCl(accel);
    if (!tb.runDeployment().ok) {
        std::printf("deployment failed\n");
        return 1;
    }

    // White-box: read the injected Key_attest back out of config
    // memory so the bench can narrate the protocol explicitly.
    tb.device().setReadbackEnabled(true);
    netlist::Netlist loaded =
        bitstream::extractDesign(tb.device().readback(0));
    Bytes keyAttest = loaded.findCell(tb.layout().keyAttestPath)->init;
    uint64_t dna = tb.device().dna().value;

    uint64_t nonce = 0x517a1u;
    uint64_t macReq = regchan::attestRequestMac(keyAttest, nonce, dna);
    auto &sh = tb.shell();
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, nonce);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, macReq);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdAttest);
    uint64_t st = sh.registerRead(pcie::Window::SmSecure, kSmRegStatus);
    uint64_t macRsp = sh.registerRead(pcie::Window::SmSecure,
                                      kSmRegOut1);
    bool clOk = st == kSmStatusOk &&
                macRsp == regchan::attestResponseMac(keyAttest, nonce,
                                                     dna);

    // ---- the analogy table --------------------------------------------
    std::printf("\n%-44s | %s\n", "Intel SGX local attestation",
                "Salus CL attestation");
    std::printf("%-44s | %s\n",
                ("verifier challenge (MRENCLAVE " +
                 prefix(prover.measurement()) + ")")
                    .c_str(),
                ("SM enclave nonce N = 0x" +
                 hexEncode(Bytes{uint8_t(nonce >> 16),
                                 uint8_t(nonce >> 8), uint8_t(nonce)}))
                    .c_str());
    std::printf("%-44s | %s\n", "prover EGETKEY -> report key (hidden)",
                ("SM logic reads Key_attest BRAM (" +
                 prefix(keyAttest, 4) + ", never on the bus)")
                    .c_str());
    std::printf("%-44s | SM logic MAC over (N+1, DNA) = %016llx\n",
                "prover EREPORT: CMAC over report body",
                static_cast<unsigned long long>(macRsp));
    std::printf("%-44s | %s\n", "report sent to verifier enclave",
                "response registers read back over PCIe");
    std::printf("%-44s | %s\n", "verifier EGETKEY -> same report key",
                "SM enclave holds the Key_attest it injected");
    std::printf("%-44s | %s\n",
                laOk ? "verifier CMAC check: PASS"
                     : "verifier CMAC check: FAIL",
                clOk ? "SM enclave SipHash check: PASS"
                     : "SM enclave SipHash check: FAIL");

    return laOk && clOk ? 0 : 1;
}
