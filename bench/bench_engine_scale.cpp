/**
 * @file
 * Event-engine scale bench: sweeps the fleet simulation (sessions x
 * devices) up to 10,000 sessions across 256 devices, measuring how
 * many engine events the deterministic run loop dispatches per
 * wall-clock second and how far virtual time advances. Every point
 * must satisfy the fleet model's own invariants (all sessions finish,
 * byte counts add up, per-lane busy span sums match the cost-model
 * totals within 1%).
 *
 * Doubles as the determinism proof at scale: the largest point runs
 * TWICE with the same seed and its trace + metrics artifacts must be
 * byte-identical (also re-checked by CI's determinism-gate job, which
 * runs the whole binary twice and diffs the exported files).
 *
 * Gates (self-enforced, exit non-zero on violation):
 *   - >= 50k events/sec dispatch rate at every sweep point
 *   - the 10k x 256 point completes in under 120 s of wall clock
 *   - same-seed artifacts byte-identical at the largest point
 *
 * Results are published as hand-rolled JSON (BENCH_engine_scale.json,
 * or argv[1]). Wall-clock-derived gates are deliberately NOT wired
 * into the perf-regression baseline (they depend on runner hardware);
 * the events/sec floor is conservative enough to flag only order-of-
 * magnitude regressions.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "salus/fleet_sim.hpp"

using namespace salus;
using namespace salus::core;

namespace {

int violations = 0;

void
check(bool ok, const char *what)
{
    if (ok)
        return;
    ++violations;
    std::printf("  VIOLATION: %s\n", what);
}

struct PointResult
{
    uint32_t sessions = 0;
    uint32_t devices = 0;
    double wallSecs = 0;
    double eventsPerSec = 0;
    uint64_t events = 0;
    uint64_t maxQueued = 0;
    double virtualMs = 0;
    double regSpanMs = 0;
    double dmaSpanMs = 0;
    bool ok = false;
};

FleetSimConfig
configFor(uint32_t sessions, uint32_t devices)
{
    FleetSimConfig cfg;
    cfg.seed = 42;
    cfg.sessions = sessions;
    cfg.devices = devices;
    return cfg;
}

PointResult
runPoint(uint32_t sessions, uint32_t devices,
         FleetSimReport *keep = nullptr)
{
    FleetSimConfig cfg = configFor(sessions, devices);
    FleetSimReport report;
    double secs =
        bench::wallSeconds([&] { report = runFleetSim(cfg); });

    PointResult r;
    r.sessions = sessions;
    r.devices = devices;
    r.wallSecs = secs;
    r.events = report.eventsDispatched;
    r.eventsPerSec =
        secs > 0 ? double(report.eventsDispatched) / secs : 0;
    r.maxQueued = report.maxQueued;
    r.virtualMs = bench::ms(report.virtualEnd);
    r.regSpanMs = bench::ms(report.spanRegNanos);
    r.dmaSpanMs = bench::ms(report.spanDmaNanos);
    r.ok = report.ok;
    for (const std::string &v : report.violations)
        std::printf("  fleet violation (%ux%u): %s\n", sessions,
                    devices, v.c_str());
    if (keep)
        *keep = std::move(report);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Deterministic event engine: fleet scale sweep");

    struct SweepPoint
    {
        uint32_t sessions;
        uint32_t devices;
    };
    const SweepPoint kSweep[] = {{1000, 16}, {4000, 64}, {10000, 256}};

    std::vector<PointResult> sweep;
    std::printf("%-10s %-9s %-10s %-12s %-10s %-10s %s\n", "sessions",
                "devices", "events", "events/sec", "wall(s)",
                "queued", "virtual(ms)");
    for (const SweepPoint &p : kSweep) {
        PointResult r = runPoint(p.sessions, p.devices);
        check(r.ok, "fleet invariants violated at sweep point");
        std::printf("%-10u %-9u %-10llu %-12.0f %-10.2f %-10llu %.1f\n",
                    r.sessions, r.devices,
                    static_cast<unsigned long long>(r.events),
                    r.eventsPerSec, r.wallSecs,
                    static_cast<unsigned long long>(r.maxQueued),
                    r.virtualMs);
        check(r.eventsPerSec >= 50000.0,
              "dispatch rate below the 50k events/sec floor");
        sweep.push_back(r);
    }

    // ---- Determinism at scale: same seed, twice, byte-compared ------
    FleetSimReport first;
    FleetSimReport second;
    PointResult big1 = runPoint(10000, 256, &first);
    PointResult big2 = runPoint(10000, 256, &second);
    check(big1.ok && big2.ok, "determinism rerun failed invariants");
    check(big1.wallSecs < 120.0 && big2.wallSecs < 120.0,
          "10k x 256 point exceeded the 120 s wall-clock ceiling");
    bool identical = first.traceJson == second.traceJson &&
                     first.metricsText == second.metricsText;
    check(identical,
          "same-seed fleet runs are not byte-identical at 10k x 256");
    std::printf("\n10k x 256 determinism rerun: %llu events, "
                "trace %zu bytes, metrics %zu bytes, identical=%s\n",
                static_cast<unsigned long long>(
                    first.eventsDispatched),
                first.traceJson.size(), first.metricsText.size(),
                identical ? "yes" : "NO");
    std::printf("span sums vs cost model: reg %.1f/%.1f ms, dma "
                "%.1f/%.1f ms (spans/expected)\n",
                bench::ms(first.spanRegNanos),
                bench::ms(first.expectedRegNanos),
                bench::ms(first.spanDmaNanos),
                bench::ms(first.expectedDmaNanos));

    FILE *tf = std::fopen("TRACE_engine_scale.json", "w");
    if (tf) {
        std::fwrite(first.traceJson.data(), 1, first.traceJson.size(),
                    tf);
        std::fclose(tf);
    }
    FILE *mf = std::fopen("METRICS_engine_scale.txt", "w");
    if (mf) {
        std::fwrite(first.metricsText.data(), 1,
                    first.metricsText.size(), mf);
        std::fclose(mf);
    }
    check(tf != nullptr && mf != nullptr,
          "cannot write trace/metrics artifacts");

    // ---- JSON artifact ----------------------------------------------
    const char *outPath =
        argc > 1 ? argv[1] : "BENCH_engine_scale.json";
    FILE *f = std::fopen(outPath, "w");
    if (!f) {
        std::printf("cannot open %s\n", outPath);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"engine_scale\",\n");
    std::fprintf(f, "  \"violations\": %d,\n", violations);
    std::fprintf(f, "  \"deterministic\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
        const PointResult &p = sweep[i];
        std::fprintf(
            f,
            "    {\"sessions\": %u, \"devices\": %u, \"events\": %llu, "
            "\"events_per_sec\": %.0f, \"wall_secs\": %.3f, "
            "\"max_queued\": %llu, \"virtual_ms\": %.1f, "
            "\"reg_span_ms\": %.1f, \"dma_span_ms\": %.1f}%s\n",
            p.sessions, p.devices,
            static_cast<unsigned long long>(p.events), p.eventsPerSec,
            p.wallSecs, static_cast<unsigned long long>(p.maxQueued),
            p.virtualMs, p.regSpanMs, p.dmaSpanMs,
            i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", outPath);

    if (violations) {
        std::printf("ENGINE SCALE BENCH FAILED: %d violation(s)\n",
                    violations);
        return 1;
    }
    std::printf("all %zu sweep points passed\n", sweep.size());
    return 0;
}
