/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: aligned
 * table printing and wall-clock measurement.
 */

#ifndef SALUS_BENCH_BENCH_UTIL_HPP
#define SALUS_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdio>
#include <string>

#include "sim/clock.hpp"

namespace salus::bench {

/** Prints a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Milliseconds with 2 decimals from virtual nanos. */
inline double
ms(sim::Nanos n)
{
    return double(n) / 1e6;
}

/** Measures a callable's real wall-clock time in seconds. */
template <typename F>
double
wallSeconds(F &&fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

} // namespace salus::bench

#endif // SALUS_BENCH_BENCH_UTIL_HPP
