/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: aligned
 * table printing and wall-clock measurement.
 */

#ifndef SALUS_BENCH_BENCH_UTIL_HPP
#define SALUS_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>

#include "obs/trace.hpp"
#include "sim/clock.hpp"

namespace salus::bench {

/** Prints a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Milliseconds with 2 decimals from virtual nanos. */
inline double
ms(sim::Nanos n)
{
    return double(n) / 1e6;
}

/** Measures a callable's real wall-clock time in seconds. */
template <typename F>
double
wallSeconds(F &&fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

/**
 * RAII trace + metrics capture over one virtual clock, for benches
 * that publish observability artifacts next to their JSON results.
 * Construction installs the recorder globally (see obs::ObsScope);
 * stop() (or destruction) uninstalls it so the artifacts can be
 * exported and later points run untraced.
 */
class ObsCapture
{
  public:
    explicit ObsCapture(sim::VirtualClock &clock) : recorder_(clock)
    {
        scope_.emplace(&recorder_, &metrics_);
    }

    obs::TraceRecorder &trace() { return recorder_; }
    obs::MetricsRegistry &metrics() { return metrics_; }

    /** Uninstalls the capture (idempotent). */
    void stop() { scope_.reset(); }

    /** Writes TRACE_<name>.json and METRICS_<name>.txt into the
     *  current directory. @return false if either write failed. */
    bool writeArtifacts(const std::string &name)
    {
        stop();
        std::string tracePath = "TRACE_" + name + ".json";
        std::string metricsPath = "METRICS_" + name + ".txt";
        bool ok = recorder_.writeChromeTrace(tracePath);
        ok = metrics_.writeText(metricsPath) && ok;
        if (ok)
            std::printf("wrote %s (%zu events) and %s\n",
                        tracePath.c_str(), recorder_.events().size(),
                        metricsPath.c_str());
        else
            std::printf("cannot write %s / %s\n", tracePath.c_str(),
                        metricsPath.c_str());
        return ok;
    }

  private:
    obs::TraceRecorder recorder_;
    obs::MetricsRegistry metrics_;
    std::optional<obs::ObsScope> scope_;
};

} // namespace salus::bench

#endif // SALUS_BENCH_BENCH_UTIL_HPP
