/**
 * @file
 * Reproduces paper Figure 9 (execution time of CL booting) and the
 * §6.3 ShEF boot-time comparison.
 *
 * Three views are reported:
 *   1. MODEL: the virtual-clock phase breakdown of a full secure boot
 *      on a paper-scale device (32 MiB partial bitstream), using the
 *      calibrated cost model — this reproduces the figure's shape.
 *   2. PAPER: the numbers read off Figure 9 for comparison.
 *   3. NATIVE: real measured time of this repo's own bitstream
 *      verification / manipulation / encryption on the same artifact
 *      (showing what replacing RapidWright-under-Occlum with native
 *      enclave code would buy — see EXPERIMENTS.md).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "baseline/shef.hpp"
#include "bench_util.hpp"
#include "salus/boot_report.hpp"
#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "crypto/sha256.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;


int
main()
{
    bench::banner("Figure 9: CL secure-boot time breakdown");

    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    TestbedConfig cfg;
    cfg.deviceModel = fpga::u200ScaledModel(); // 32 MiB RP bitstream
    Testbed tb(cfg);
    bench::ObsCapture capture(tb.clock());

    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {19735, 20169, 326, 512}; // Conv-like footprint
    tb.installCl(accel);

    std::printf("partial bitstream size: %.1f MiB\n",
                double(tb.storedBitstream().size()) / (1 << 20));

    double bootWall = bench::wallSeconds([&] {
        auto outcome = tb.runDeployment();
        if (!outcome.ok) {
            std::printf("BOOT FAILED: %s\n", outcome.failure.c_str());
            std::exit(1);
        }
    });

    BootReport report = buildBootReport(tb.clock());
    std::printf("\n%s", report.render().c_str());
    double modelTotal = double(report.modelTotal) / 1e6;
    std::printf("(paper reports 18835 ms total; dominant phase must be "
                "bitstream manipulation)\n");
    std::printf("harness wall-clock: %.2f s (real crypto on 32 MiB)\n",
                bootWall);

    // ---- Trace artifact + span-sum cross-check ----------------------
    // Every clock slice was mirrored into the trace as a Clock-leaf
    // span, so per-phase span sums must agree with the cost-model
    // totals the report is built from (acceptance: within 1%).
    capture.writeArtifacts("fig9_boot_breakdown");
    for (const BootPhaseRow &row : report.rows) {
        double spanMs =
            double(capture.trace().phaseTotal(row.phase)) / 1e6;
        double clockMs = double(row.modelTime) / 1e6;
        double limit = clockMs / 100.0;
        if (std::fabs(spanMs - clockMs) > limit) {
            std::printf("TRACE MISMATCH: phase '%s' spans %.3f ms vs "
                        "clock %.3f ms\n",
                        row.phase.c_str(), spanMs, clockMs);
            return 1;
        }
    }
    std::printf("trace span sums match the phase breakdown "
                "(%zu phases within 1%%)\n",
                report.rows.size());

    // ---- §6.3 ShEF comparison ---------------------------------------
    bench::banner("ShEF baseline boot (paper: ~5.1 s)");
    {
        crypto::CtrDrbg rng(uint64_t(2));
        baseline::ShefDevice device(
            "shef-dev", bytesFromString("shef-root"), rng);
        sim::VirtualClock clock;
        sim::CostModel cost;

        const Bytes &bitstream = tb.storedBitstream();
        Bytes nonce = rng.bytes(16);
        auto att = device.loadAndAttest(bitstream, nonce, &clock, cost);
        baseline::ShefVerifier verifier(
            baseline::shefManufacturerRoot(bytesFromString("shef-root"))
                .publicKey,
            crypto::Sha256::digest(bitstream));
        bool ok = verifier.verify(att, nonce, &clock, cost);
        std::printf("ShEF modelled boot: %.2f ms (verify=%s)\n",
                    bench::ms(clock.now()), ok ? "ok" : "FAILED");
        std::printf("Salus modelled boot: %.2f ms  ->  Salus/ShEF = "
                    "%.2fx (paper: 18.8/5.1 = 3.7x)\n",
                    modelTotal, modelTotal / bench::ms(clock.now()));
    }

    // ---- NATIVE: this repo's own bitstream tooling --------------------
    bench::banner("Native bitstream-operation times (same 32 MiB file)");
    {
        Bytes file = tb.storedBitstream();
        auto ll = bitstream::LogicLocationFile::deserialize(
            tb.metadata().logicLocations);

        double tDigest = bench::wallSeconds(
            [&] { (void)crypto::Sha256::digest(file); });
        double tManip = bench::wallSeconds([&] {
            bitstream::Manipulator::patchCell(
                file, ll, tb.layout().keyAttestPath,
                Bytes(core::kKeyAttestSize, 0x42));
        });
        crypto::CtrDrbg rng(uint64_t(3));
        Bytes key = rng.bytes(32);
        double tEncrypt = bench::wallSeconds([&] {
            (void)bitstream::encryptBitstream(
                file, key,
                bitstream::EncryptedHeader{
                    tb.device().model().name, 0},
                rng);
        });
        std::printf("digest (SHA-256):        %8.1f ms\n",
                    tDigest * 1e3);
        std::printf("manipulation (+CRC fix): %8.1f ms   (paper: "
                    "13787 ms with RapidWright-in-Occlum)\n",
                    tManip * 1e3);
        std::printf("encryption (AES-GCM-256):%8.1f ms\n",
                    tEncrypt * 1e3);
    }
    return 0;
}
