/**
 * @file
 * Reproduces paper Table 5: resource-utilization breakdown of each
 * benchmark CL (accelerator + SM logic) against the reconfigurable
 * partition's capacity, from the compiled netlists.
 */

#include <cstdio>

#include "accel/accel_ip.hpp"
#include "accel/workloads.hpp"
#include "bench_util.hpp"
#include "bitstream/compiler.hpp"
#include "salus/cl_builder.hpp"
#include "salus/sm_logic.hpp"

using namespace salus;
using namespace salus::accel;

int
main()
{
    bench::banner("Table 5: resource utilization breakdown of CL");

    AccelIp::registerAll();
    core::SmLogic::registerIp();

    fpga::DeviceModelInfo model = fpga::u200ScaledModel();
    const auto &rp = model.partitions[0];

    std::printf("%-14s %10s %10s %9s   (%% of RP capacity)\n", "logic",
                "LUT", "Register", "BRAM");
    std::printf("%-14s %10u %10u %9u\n", "Total CL", rp.capacity.luts,
                rp.capacity.registers, rp.capacity.brams);

    auto pct = [](uint32_t used, uint32_t cap) {
        return 100.0 * double(used) / double(cap);
    };

    for (const auto &spec : allWorkloads()) {
        core::ClDesign design = core::buildClDesign(
            std::string(spec.name) + "_top", accelCellFor(spec));

        // The accelerator alone (everything under <top>/accel).
        netlist::ResourceVector accelRes =
            design.netlist.resourcesUnder(std::string(spec.name) +
                                          "_top/accel");
        std::printf("%-14s %10u %10u %9u   (%.0f%% / %.0f%% / %.0f%%)\n",
                    spec.name, accelRes.luts, accelRes.registers,
                    accelRes.brams, pct(accelRes.luts, rp.capacity.luts),
                    pct(accelRes.registers, rp.capacity.registers),
                    pct(accelRes.brams, rp.capacity.brams));

        // Sanity: the full CL (accel + SM logic) compiles into the RP.
        bitstream::Compiler compiler(model.name);
        auto compiled = compiler.compile(design.netlist, rp);
        if (compiled.file.empty()) {
            std::printf("  COMPILE FAILED for %s\n", spec.name);
            return 1;
        }
    }

    netlist::ResourceVector sm = core::smLogicResources();
    std::printf("%-14s %10u %10u %9u   (%.0f%% / %.0f%% / %.0f%%)\n",
                "SM Logic", sm.luts, sm.registers, sm.brams,
                pct(sm.luts, rp.capacity.luts),
                pct(sm.registers, rp.capacity.registers),
                pct(sm.brams, rp.capacity.brams));

    std::printf("\npaper Table 5 reference: SM logic 27667 LUT (8%%), "
                "29631 Reg (4%%), 88 BRAM (13%%)\n");
    return 0;
}
