/**
 * @file
 * Ablations of Salus's design choices — each of the paper's three
 * "Solutions" (§1) is compared against the alternative it rejected,
 * with numbers from this platform:
 *
 *   1. RoT injection by bitstream manipulation   vs. recompilation
 *   2. symmetric (local-attestation-style) CL    vs. PKE remote
 *      attestation                                   attestation
 *   3. cascaded attestation                      vs. multi-stage
 *   +  sealed device-key caching (extension)     vs. re-fetching
 *   +  readback-disabled ICAP (§5.1.2)           vs. legacy ICAP
 */

#include <cstdio>

#include "baseline/sgx_fpga.hpp"
#include "bench_util.hpp"
#include "bitstream/compiler.hpp"
#include "bitstream/manipulator.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/siphash.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {100, 100, 0, 0};
    return accel;
}

} // namespace

int
main()
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    crypto::CtrDrbg rng(uint64_t(5));

    // ---- 1. Manipulation vs recompilation ----------------------------
    bench::banner("Ablation 1 (Solution 1): RoT injection mechanism");
    {
        // The naive alternative (paper §1, Challenge 1): hardcode the
        // key in RTL and rerun synthesis + place & route. An SLR-scale
        // Vivado P&R run is hours; 2 h is a charitable constant.
        const double recompileSeconds = 2 * 3600.0;

        ClDesign design = buildClDesign("abl", loopbackAccel());
        fpga::DeviceModelInfo model = fpga::u200ScaledModel();
        bitstream::Compiler compiler(model.name);
        auto compiled =
            compiler.compile(design.netlist, model.partitions[0]);

        double manipSeconds = bench::wallSeconds([&] {
            bitstream::Manipulator::patchCell(
                compiled.file, compiled.logicLocations,
                design.layout.keyAttestPath, Bytes(kKeyAttestSize, 1));
        });
        sim::CostModel cost;
        double rapidwrightSeconds =
            double(cost.bitstreamManipulation(compiled.file.size())) /
            double(sim::kSec);

        std::printf("  recompile (RTL key + P&R):      %10.1f s "
                    "(model; also breaks IP confidentiality)\n",
                    recompileSeconds);
        std::printf("  RapidWright-in-Occlum (paper):  %10.1f s "
                    "(x%.0f faster than recompiling)\n",
                    rapidwrightSeconds,
                    recompileSeconds / rapidwrightSeconds);
        std::printf("  this repo's native manipulator: %10.3f s "
                    "(x%.0f faster than recompiling)\n",
                    manipSeconds, recompileSeconds / manipSeconds);
    }

    // ---- 2. Symmetric vs PKE CL attestation --------------------------
    bench::banner("Ablation 2 (Solution 2): CL attestation crypto");
    {
        const int iters = 2000;
        Bytes key = rng.bytes(16);
        Bytes msg = rng.bytes(17);
        double sipSeconds = bench::wallSeconds([&] {
            for (int i = 0; i < iters; ++i) {
                msg[0] = uint8_t(i);
                (void)crypto::sipHash24(key, msg);
            }
        }) / iters;

        crypto::Ed25519KeyPair kp = crypto::ed25519Generate(rng);
        const int pkIters = 50;
        double pkeSeconds = bench::wallSeconds([&] {
            for (int i = 0; i < pkIters; ++i) {
                msg[0] = uint8_t(i);
                Bytes sig = crypto::ed25519Sign(kp.seed, msg);
                (void)crypto::ed25519Verify(kp.publicKey, msg, sig);
            }
        }) / pkIters;

        sim::CostModel cost;
        std::printf("  SipHash MAC pair (Salus):       %10.2f us "
                    "compute + %.2f ms bus  (no CA, no network)\n",
                    sipSeconds * 1e6 * 2,
                    bench::ms(cost.clAttestation()));
        std::printf("  Ed25519 sign+verify (ShEF-ish): %10.2f us "
                    "compute + %.2f ms CA round trips over WAN\n",
                    pkeSeconds * 1e6,
                    bench::ms(sim::Nanos(cost.shefCaRoundTrips) *
                                  cost.rpc(sim::LinkKind::Wan, 1024,
                                           8192) +
                              cost.rpc(sim::LinkKind::Wan, 256, 4096)));
        std::printf("  (plus ShEF requires the developer online as a "
                    "CA during deployment)\n");
    }

    // ---- 3. Cascaded vs multi-stage attestation ----------------------
    bench::banner("Ablation 3 (Solution 3): attestation protocol");
    {
        sim::CostModel cost;
        sim::VirtualClock clock;
        baseline::PufDevice device(1);
        baseline::CrpDatabase db;
        db.enroll(device, 4, rng);
        auto timeline = baseline::runSgxFpgaFlow(db, device, clock, cost);
        std::printf("  multi-stage (SGX-FPGA style): report at %.0f ms, "
                    "CL attested at %.0f ms -> %.1f ms trust gap\n",
                    bench::ms(timeline.reportIssuedAt),
                    bench::ms(timeline.clAttestedAt),
                    bench::ms(timeline.gap()));

        Testbed tb;
        tb.installCl(loopbackAccel());
        if (!tb.runDeployment().ok)
            return 1;
        std::printf("  cascaded (Salus): report generation is ordered "
                    "after CL attestation -> gap = 0 ms by "
                    "construction\n");
    }

    // ---- 4. Sealed device-key cache (extension) -----------------------
    bench::banner("Ablation 4 (extension): sealed device-key caching");
    {
        Testbed tb;
        tb.installCl(loopbackAccel());
        if (!tb.runDeployment().ok)
            return 1;
        sim::Nanos firstBootKeyPhase =
            tb.clock().totalFor(phases::kDeviceKeyDist);

        Bytes sealed = tb.smApp().exportSealedDeviceKey();
        if (!tb.restartSmApp(sealed))
            return 1;
        sim::Nanos before = tb.clock().totalFor(phases::kDeviceKeyDist);
        if (!tb.runDeployment().ok)
            return 1;
        sim::Nanos redeployKeyPhase =
            tb.clock().totalFor(phases::kDeviceKeyDist) - before;

        std::printf("  cold boot key distribution:   %8.1f ms\n",
                    bench::ms(firstBootKeyPhase));
        std::printf("  redeploy with sealed cache:   %8.1f ms "
                    "(manufacturer untouched)\n",
                    bench::ms(redeployKeyPhase));
    }

    // ---- 5. Readback gate ----------------------------------------------
    bench::banner("Ablation 5 (§5.1.2): ICAP readback");
    {
        TestbedConfig cfg;
        cfg.maliciousShell = true;
        Testbed tb(cfg);
        tb.installCl(loopbackAccel());
        if (!tb.runDeployment().ok)
            return 1;
        auto blocked = tb.maliciousShell()->tryConfigScan();
        tb.device().setReadbackEnabled(true);
        auto leaked = tb.maliciousShell()->tryConfigScan();
        std::printf("  Salus ICAP (readback off): scan leaks %zu "
                    "bytes\n",
                    blocked ? blocked->size() : 0);
        std::printf("  legacy ICAP (readback on): scan leaks %zu bytes "
                    "including Key_attest -> full attestation "
                    "forgery\n",
                    leaked ? leaked->size() : 0);
    }

    return 0;
}
