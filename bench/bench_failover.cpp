/**
 * @file
 * Failover latency bench + invariant soak: kills the active device in
 * an N-device fleet across many seeds and measures, on the virtual
 * clock, how long the platform takes from the kill to the first
 * post-failover secure register write on the spare — broken down by
 * phase (detection via the heartbeat breaker, then each leg of the
 * re-run cascaded attestation).
 *
 * The bench doubles as the CI soak gate: every seed's run is executed
 * TWICE and must be bit-for-bit identical, every failover must land on
 * a spare with fresh attested secrets (zero reuse of the dead
 * device's key material), and the post-failover session must serve
 * traffic. Any violation exits non-zero.
 *
 * Results are published as hand-rolled JSON (BENCH_failover.json, or
 * argv[1]) for the CI artifact.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fpga/ip.hpp"
#include "salus/sim_hooks.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

int violations = 0;

void
check(bool ok, uint64_t seed, const char *what)
{
    if (ok)
        return;
    ++violations;
    std::printf("  VIOLATION seed=%llu: %s\n",
                (unsigned long long)seed, what);
}

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

/** The phases the failover path can spend virtual time in. */
const char *const kPhases[] = {
    "Fleet Heartbeat",
    phases::kUserRa,
    phases::kLocalAttest,
    phases::kDeviceKeyDist,
    phases::kBitstreamVerifEnc,
    phases::kBitstreamManip,
    phases::kClDeployment,
    phases::kClAuth,
    net::kRetryBackoffPhase,
};
constexpr size_t kPhaseCount = sizeof(kPhases) / sizeof(kPhases[0]);

struct RunResult
{
    bool ok = false;
    uint64_t seed = 0;
    uint32_t toDevice = 0;
    sim::Nanos killAt = 0;      ///< device 0 dies
    sim::Nanos detectAt = 0;    ///< breaker quarantines, failover starts
    sim::Nanos recoveredAt = 0; ///< cascaded attestation done on spare
    sim::Nanos firstWriteAt = 0; ///< first secure write committed
    Bytes oldFp;
    Bytes newFp;
    sim::Nanos phase[kPhaseCount] = {};
};

RunResult
runOnce(uint64_t seed)
{
    RunResult r;
    r.seed = seed;
    TestbedConfig cfg;
    cfg.rngSeed = seed;
    cfg.deviceCount = 3;
    cfg.health.windowSize = 4;
    cfg.health.minSamples = 2;
    cfg.health.degradeThreshold = 0.3;
    cfg.health.quarantineThreshold = 0.6;

    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    if (!tb.runDeployment().ok)
        return r;
    if (!tb.userApp().secureWrite(0x00, seed))
        return r;
    r.oldFp = tb.smApp().secretsFingerprint();

    // Warm the watchdog so the kill lands on a healthy fleet.
    tb.supervisor().runFor(50 * sim::kMs);
    if (!tb.supervisor().failovers().empty())
        return r;

    sim::Nanos phaseBase[kPhaseCount];
    for (size_t i = 0; i < kPhaseCount; ++i)
        phaseBase[i] = tb.clock().totalFor(kPhases[i]);

    r.killAt = tb.clock().now();
    tb.faultInjector().arm(sim::FaultRule::deviceDead(0));

    // Watchdog polls until the breaker trips; pollOnce() performs the
    // attested failover synchronously when it does.
    for (int polls = 0;
         tb.supervisor().failovers().empty() && polls < 200; ++polls)
        tb.supervisor().pollOnce();
    if (tb.supervisor().failovers().size() != 1)
        return r;
    const FailoverRecord &rec = tb.supervisor().failovers().front();
    r.detectAt = rec.atNanos;
    r.recoveredAt = tb.clock().now();
    r.toDevice = rec.toDevice;
    r.newFp = tb.smApp().secretsFingerprint();

    // First post-failover secure register write on the fresh session.
    if (!tb.userApp().secureWrite(0x00, seed + 1))
        return r;
    auto readBack = tb.userApp().secureRead(0x00);
    if (!readBack || *readBack != seed + 1)
        return r;
    r.firstWriteAt = tb.clock().now();

    for (size_t i = 0; i < kPhaseCount; ++i)
        r.phase[i] = tb.clock().totalFor(kPhases[i]) - phaseBase[i];

    r.ok = rec.attested == 1 && r.toDevice != 0 &&
           r.oldFp != r.newFp &&
           tb.smApp().everRetiredFingerprint(r.oldFp) &&
           !tb.smApp().everRetiredFingerprint(r.newFp);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Attested session failover: latency + invariants");
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    const int kSeeds = 24;
    const uint64_t kSeedBase = 4200;

    std::vector<RunResult> runs;
    std::printf("%-8s %-10s %-12s %-12s %-12s %s\n", "seed",
                "detect", "redeploy", "write", "total (ms)", "spare");
    for (int i = 0; i < kSeeds; ++i) {
        uint64_t seed = kSeedBase + uint64_t(i);
        RunResult a = runOnce(seed);
        RunResult b = runOnce(seed);
        check(a.ok, seed, "failover invariants violated");
        check(a.killAt == b.killAt && a.detectAt == b.detectAt &&
                  a.recoveredAt == b.recoveredAt &&
                  a.firstWriteAt == b.firstWriteAt &&
                  a.newFp == b.newFp && a.toDevice == b.toDevice,
              seed, "same-seed runs are not bit-for-bit identical");
        if (!a.ok)
            continue;
        std::printf("%-8llu %-10.2f %-12.2f %-12.2f %-12.2f %u\n",
                    (unsigned long long)seed,
                    bench::ms(a.detectAt - a.killAt),
                    bench::ms(a.recoveredAt - a.detectAt),
                    bench::ms(a.firstWriteAt - a.recoveredAt),
                    bench::ms(a.firstWriteAt - a.killAt), a.toDevice);
        runs.push_back(a);
    }

    if (runs.empty()) {
        std::printf("no successful runs\n");
        return 1;
    }

    sim::Nanos detSum = 0, redepSum = 0, totSum = 0;
    sim::Nanos detMin = ~0ull, detMax = 0, totMin = ~0ull, totMax = 0;
    sim::Nanos phaseSum[kPhaseCount] = {};
    for (const RunResult &r : runs) {
        sim::Nanos det = r.detectAt - r.killAt;
        sim::Nanos tot = r.firstWriteAt - r.killAt;
        detSum += det;
        redepSum += r.recoveredAt - r.detectAt;
        totSum += tot;
        detMin = det < detMin ? det : detMin;
        detMax = det > detMax ? det : detMax;
        totMin = tot < totMin ? tot : totMin;
        totMax = tot > totMax ? tot : totMax;
        for (size_t i = 0; i < kPhaseCount; ++i)
            phaseSum[i] += r.phase[i];
    }
    const double n = double(runs.size());
    std::printf("\nmean detection %.2f ms, mean redeploy %.2f ms, "
                "mean kill->first-write %.2f ms (%zu/%d seeds)\n",
                bench::ms(detSum) / n, bench::ms(redepSum) / n,
                bench::ms(totSum) / n, runs.size(), kSeeds);

    // ---- JSON artifact ----------------------------------------------
    const char *outPath =
        argc > 1 ? argv[1] : "BENCH_failover.json";
    FILE *f = std::fopen(outPath, "w");
    if (!f) {
        std::printf("cannot open %s\n", outPath);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"failover\",\n");
    std::fprintf(f, "  \"seeds\": %d,\n  \"succeeded\": %zu,\n",
                 kSeeds, runs.size());
    std::fprintf(f, "  \"violations\": %d,\n  \"unit\": \"ms\",\n",
                 violations);
    std::fprintf(f,
                 "  \"detection_ms\": {\"mean\": %.3f, \"min\": %.3f, "
                 "\"max\": %.3f},\n",
                 bench::ms(detSum) / n, bench::ms(detMin),
                 bench::ms(detMax));
    std::fprintf(f, "  \"redeploy_ms\": {\"mean\": %.3f},\n",
                 bench::ms(redepSum) / n);
    std::fprintf(f,
                 "  \"kill_to_first_write_ms\": {\"mean\": %.3f, "
                 "\"min\": %.3f, \"max\": %.3f},\n",
                 bench::ms(totSum) / n, bench::ms(totMin),
                 bench::ms(totMax));
    std::fprintf(f, "  \"phases_ms\": {\n");
    for (size_t i = 0; i < kPhaseCount; ++i)
        std::fprintf(f, "    \"%s\": %.3f%s\n", kPhases[i],
                     bench::ms(phaseSum[i]) / n,
                     i + 1 < kPhaseCount ? "," : "");
    std::fprintf(f, "  },\n  \"runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
        const RunResult &r = runs[i];
        std::fprintf(f,
                     "    {\"seed\": %llu, \"detect_ms\": %.3f, "
                     "\"redeploy_ms\": %.3f, \"total_ms\": %.3f, "
                     "\"spare\": %u}%s\n",
                     (unsigned long long)r.seed,
                     bench::ms(r.detectAt - r.killAt),
                     bench::ms(r.recoveredAt - r.detectAt),
                     bench::ms(r.firstWriteAt - r.killAt), r.toDevice,
                     i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"gates\": {\n");
    std::fprintf(f,
                 "    \"detection_ms_mean\": {\"value\": %.3f, "
                 "\"direction\": \"lower\"},\n",
                 bench::ms(detSum) / n);
    std::fprintf(f,
                 "    \"kill_to_first_write_ms_mean\": {\"value\": "
                 "%.3f, \"direction\": \"lower\"}\n",
                 bench::ms(totSum) / n);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", outPath);

    if (violations || runs.size() != size_t(kSeeds)) {
        std::printf("FAILOVER SOAK FAILED: %d violation(s), %zu/%d "
                    "seeds succeeded\n",
                    violations, runs.size(), kSeeds);
        return 1;
    }
    std::printf("all invariants held across %d seeds x 2 runs\n",
                kSeeds);
    return 0;
}
