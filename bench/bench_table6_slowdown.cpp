/**
 * @file
 * Reproduces paper Table 6: slowdown of the CPU TEE and the FPGA TEE
 * relative to their unprotected baselines, for Conv, Rendering and
 * FaceDetect. The shape to reproduce: CPU TEE slowdown grows for
 * compute-light kernels (up to ~4.4x), FPGA TEE slowdown stays near
 * 1.0x because the memory-interface AES runs at line rate.
 */

#include <cstdio>

#include "accel/accel_ip.hpp"
#include "accel/runner.hpp"
#include "bench_util.hpp"
#include "salus/sm_logic.hpp"

using namespace salus;
using namespace salus::accel;

namespace {

struct PaperRow
{
    KernelId id;
    double cpuSlowdown;  ///< paper Table 6
    double fpgaSlowdown; ///< paper Table 6
};

const PaperRow kPaper[] = {
    {KernelId::Conv, 1.01, 1.00},
    {KernelId::Rendering, 4.38, 1.05},
    {KernelId::FaceDetect, 3.50, 1.03},
};

} // namespace

int
main()
{
    bench::banner("Table 6: slowdown of CPU TEE and FPGA TEE");

    AccelIp::registerAll();
    core::SmLogic::registerIp();

    std::printf("%-12s | %10s %10s %9s (paper) | %10s %10s %9s "
                "(paper)\n",
                "workload", "CPU (ms)", "CPU+TEE", "slowdn",
                "FPGA (ms)", "FPGA+TEE", "slowdn");

    for (const auto &row : kPaper) {
        const WorkloadSpec &spec = workload(row.id);
        WorkloadRunner runner(spec.id, 7, spec.benchScale);

        // Take the median-ish of 3 CPU runs to steady the measurement.
        RunResult cpu = runner.runCpuPlain();
        for (int i = 0; i < 2; ++i) {
            RunResult again = runner.runCpuPlain();
            if (again.totalTime < cpu.totalTime)
                cpu = again;
        }
        RunResult cpuTee = runner.runCpuTee();
        for (int i = 0; i < 2; ++i) {
            RunResult again = runner.runCpuTee();
            if (again.totalTime < cpuTee.totalTime)
                cpuTee = again;
        }

        sim::CostModel cost;
        RunResult fpga = runner.runFpgaPlain(cost);

        core::Testbed tb;
        tb.installCl(accelCellFor(spec));
        auto outcome = tb.runDeployment();
        if (!outcome.ok) {
            std::printf("%s deployment failed: %s\n", spec.name,
                        outcome.failure.c_str());
            return 1;
        }
        RunResult fpgaTee = runner.runFpgaTee(tb);

        if (!cpu.outputCorrect || !cpuTee.outputCorrect ||
            !fpga.outputCorrect || !fpgaTee.outputCorrect) {
            std::printf("%s: output mismatch in some mode\n", spec.name);
            return 1;
        }

        double cpuSlow = double(cpuTee.totalTime) / double(cpu.totalTime);
        double fpgaSlow =
            double(fpgaTee.totalTime) / double(fpga.totalTime);
        std::printf("%-12s | %10.2f %10.2f %6.2fx (%4.2fx) | %10.2f "
                    "%10.2f %6.2fx (%4.2fx)\n",
                    spec.name, bench::ms(cpu.totalTime),
                    bench::ms(cpuTee.totalTime), cpuSlow,
                    row.cpuSlowdown, bench::ms(fpga.totalTime),
                    bench::ms(fpgaTee.totalTime), fpgaSlow,
                    row.fpgaSlowdown);
    }

    std::printf("\nshape check: CPU-TEE slowdown >> FPGA-TEE slowdown "
                "for compute-light kernels; FPGA-TEE stays near 1x\n");
    return 0;
}
