/**
 * @file
 * Reproduces paper Table 1: comparison with existing FPGA TEE works.
 * The three schemes this repo implements (Salus, a ShEF-style
 * standalone TEE, an SGX-FPGA-style PUF scheme) are *executed* and
 * their distinguishing properties demonstrated live; the MeetGo and
 * Ambassy rows share ShEF's standalone/extra-hardware profile and are
 * reported from the paper.
 */

#include <cstdio>

#include "baseline/sgx_fpga.hpp"
#include "baseline/shef.hpp"
#include "bench_util.hpp"
#include "crypto/sha256.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

int
main()
{
    bench::banner("Table 1: comparison with existing FPGA TEE works");

    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    crypto::CtrDrbg rng(uint64_t(1));
    sim::CostModel cost;

    // ---- SGX-FPGA-style: heterogeneous, no extra hardware, but
    // dev/deploy coupled (CRP DB bound to the physical die) and a
    // multi-stage attestation gap.
    bool sgxFpgaCoupled;
    sim::Nanos sgxFpgaGap;
    {
        baseline::PufDevice rented(1), other(2);
        baseline::CrpDatabase db;
        db.enroll(rented, 8, rng); // developer had to touch `rented`
        sgxFpgaCoupled = !db.authenticate(other) && db.authenticate(rented);

        baseline::CrpDatabase db2;
        db2.enroll(rented, 8, rng);
        sim::VirtualClock clock;
        auto timeline = baseline::runSgxFpgaFlow(db2, rented, clock, cost);
        sgxFpgaGap = timeline.gap();
    }

    // ---- ShEF-style: standalone, needs BootROM-key hardware,
    // dev/deploy independent (any device of the fleet verifies).
    double shefAttestMs;
    {
        baseline::ShefDevice device("shef-1",
                                    bytesFromString("shef-root"), rng);
        Bytes bitstream = rng.bytes(1 << 20);
        Bytes nonce = rng.bytes(16);
        sim::VirtualClock clock;
        auto att = device.loadAndAttest(bitstream, nonce, &clock, cost);
        baseline::ShefVerifier verifier(
            baseline::shefManufacturerRoot(bytesFromString("shef-root"))
                .publicKey,
            crypto::Sha256::digest(bitstream));
        bool ok = verifier.verify(att, nonce, &clock, cost);
        shefAttestMs = ok ? bench::ms(clock.now()) : -1.0;
    }

    // ---- Salus: heterogeneous, COTS hardware only, independent
    // dev/deploy (the same CL artifact deploys on any device), and a
    // zero attestation gap (cascaded report).
    double salusClAttestMs;
    bool salusIndependent;
    {
        // Deploy the SAME CL artifact on two different devices.
        netlist::Cell accel;
        accel.path = "engine";
        accel.kind = netlist::CellKind::Logic;
        accel.behaviorId = fpga::kIpLoopback;
        accel.resources = {100, 100, 0, 0};

        TestbedConfig cfgA;
        cfgA.rngSeed = 10;
        Testbed tbA(cfgA);
        tbA.installCl(accel);
        bool okA = tbA.runDeployment().ok;

        TestbedConfig cfgB;
        cfgB.rngSeed = 11; // different device DNA + device key
        Testbed tbB(cfgB);
        tbB.installCl(accel);
        bool okB = tbB.runDeployment().ok;
        salusIndependent = okA && okB;
        salusClAttestMs =
            bench::ms(tbA.clock().totalFor(phases::kClAuth));
    }

    std::printf("%-12s %-6s %-10s %-13s %s\n", "work", "type",
                "extra hw", "indep. d/d", "measured property");
    std::printf("%-12s %-6s %-10s %-13s gap = %.1f ms before CL "
                "attested; CRP die-coupled: %s\n",
                "SGX-FPGA", "HE", "no", "NO (coupled)",
                bench::ms(sgxFpgaGap), sgxFpgaCoupled ? "yes" : "no");
    std::printf("%-12s %-6s %-10s %-13s CL attestation %.1f ms (PKE + "
                "CA)\n",
                "ShEF", "SA", "YES", "yes", shefAttestMs);
    std::printf("%-12s %-6s %-10s %-13s (paper: same profile as "
                "ShEF)\n",
                "MeetGo", "SA", "YES", "yes");
    std::printf("%-12s %-6s %-10s %-13s (paper: same profile as "
                "ShEF)\n",
                "Ambassy", "SA", "YES", "yes");
    std::printf("%-12s %-6s %-10s %-13s CL attestation %.2f ms "
                "(symmetric), gap = 0, same artifact on 2 devices: "
                "%s\n",
                "Salus", "HE", "no", "yes", salusClAttestMs,
                salusIndependent ? "ok" : "FAILED");
    return 0;
}
