/**
 * @file
 * Microbenchmarks of the crypto substrate (google-benchmark). These
 * are the primitives on Salus's critical paths: AES-GCM (bitstream
 * encryption), SHA-256 (digest H), SipHash (SM logic MACs), AES-CTR
 * (memory/register channel), X25519/Ed25519 (attestation).
 */

#include <benchmark/benchmark.h>

#include "crypto/aes_cmac.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/hmac.hpp"
#include "crypto/random.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/siphash.hpp"
#include "crypto/x25519.hpp"

using namespace salus;
using namespace salus::crypto;

namespace {

Bytes
testData(size_t n)
{
    CtrDrbg rng(uint64_t(n) * 31 + 7);
    return rng.bytes(n);
}

void
BM_Sha256(benchmark::State &state)
{
    Bytes data = testData(size_t(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::digest(data));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(1 << 20);

void
BM_Sha512(benchmark::State &state)
{
    Bytes data = testData(size_t(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha512::digest(data));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(1 << 20);

void
BM_AesGcmSeal(benchmark::State &state)
{
    Bytes data = testData(size_t(state.range(0)));
    AesGcm gcm(testData(32));
    Bytes iv = testData(12);
    for (auto _ : state)
        benchmark::DoNotOptimize(gcm.seal(iv, ByteView(), data));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(1024)->Arg(1 << 20);

void
BM_AesCtr(benchmark::State &state)
{
    Bytes data = testData(size_t(state.range(0)));
    Bytes key = testData(32);
    Bytes ctr = testData(16);
    for (auto _ : state)
        benchmark::DoNotOptimize(aesCtrCrypt(key, ctr, data));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(1024)->Arg(1 << 20);

void
BM_AesCmac(benchmark::State &state)
{
    Bytes data = testData(size_t(state.range(0)));
    Bytes key = testData(16);
    for (auto _ : state)
        benchmark::DoNotOptimize(aesCmac(key, data));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesCmac)->Arg(1024);

void
BM_SipHash(benchmark::State &state)
{
    Bytes data = testData(size_t(state.range(0)));
    Bytes key = testData(16);
    for (auto _ : state)
        benchmark::DoNotOptimize(sipHash24(key, data));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_SipHash)->Arg(16)->Arg(1024);

void
BM_HmacSha256(benchmark::State &state)
{
    Bytes data = testData(size_t(state.range(0)));
    Bytes key = testData(32);
    for (auto _ : state)
        benchmark::DoNotOptimize(hmacSha256(key, data));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(24)->Arg(1024);

void
BM_X25519SharedSecret(benchmark::State &state)
{
    CtrDrbg rng(uint64_t(1));
    X25519KeyPair a = x25519Generate(rng);
    X25519KeyPair b = x25519Generate(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            x25519Shared(a.privateKey, b.publicKey));
}
BENCHMARK(BM_X25519SharedSecret);

void
BM_Ed25519Sign(benchmark::State &state)
{
    CtrDrbg rng(uint64_t(2));
    Ed25519KeyPair kp = ed25519Generate(rng);
    Bytes msg = testData(256);
    for (auto _ : state)
        benchmark::DoNotOptimize(ed25519Sign(kp.seed, msg));
}
BENCHMARK(BM_Ed25519Sign);

void
BM_Ed25519Verify(benchmark::State &state)
{
    CtrDrbg rng(uint64_t(3));
    Ed25519KeyPair kp = ed25519Generate(rng);
    Bytes msg = testData(256);
    Bytes sig = ed25519Sign(kp.seed, msg);
    for (auto _ : state)
        benchmark::DoNotOptimize(ed25519Verify(kp.publicKey, msg, sig));
}
BENCHMARK(BM_Ed25519Verify);

} // namespace

BENCHMARK_MAIN();
