/**
 * @file
 * Crypto hot-path microbench: measures real wall-clock MB/s for the
 * primitives on Salus's data planes — AES-CTR (register/DMA channel),
 * AES-GCM seal (bitstream + bulk data), SHA-256 (digests) — through
 * the dispatch-selected backend AND the forced-scalar reference, and
 * reports the speedup ratio per primitive/size.
 *
 * Doubles as a correctness-of-dispatch gate: with AES-NI detected the
 * hardware path must beat scalar by >=5x (AES-CTR) and >=4x (AES-GCM)
 * at 4 KiB, and with SHA-NI SHA-256 must beat scalar by >=2x at 1 MiB.
 * Any violation exits non-zero.
 *
 * Results are published as hand-rolled JSON (BENCH_crypto_micro.json,
 * or argv[1]) with a "gates" section consumed by
 * tools/check_bench_regression.py. Only the fast-vs-scalar ratios are
 * gated — they self-normalize across machine speeds, where absolute
 * MB/s would flake on shared CI runners; the absolute numbers are
 * still recorded in "points" for eyeballing.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "crypto/aes_ctr.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/backend.hpp"
#include "crypto/random.hpp"
#include "crypto/sha256.hpp"

using namespace salus;
using namespace salus::crypto;

namespace {

int violations = 0;

void
check(bool ok, const char *what)
{
    if (ok)
        return;
    ++violations;
    std::printf("  VIOLATION: %s\n", what);
}

/** Best-of-3 wall-clock throughput of fn (>=30 ms per round). */
template <typename F>
double
throughputMBs(F &&fn, size_t bytesPerCall)
{
    using Clock = std::chrono::steady_clock;
    fn(); // warm-up (key schedules, page faults)
    double best = 0;
    for (int round = 0; round < 3; ++round) {
        size_t calls = 0;
        auto start = Clock::now();
        double secs = 0;
        do {
            fn();
            ++calls;
            secs = std::chrono::duration<double>(Clock::now() - start)
                       .count();
        } while (secs < 0.03);
        best = std::max(best,
                        double(bytesPerCall) * double(calls) / secs /
                            1e6);
    }
    return best;
}

struct Point
{
    std::string primitive;
    std::string gate; ///< JSON gate key for the speedup ratio.
    size_t bytes = 0;
    double fastMBs = 0;
    double scalarMBs = 0;
    double speedup = 0;
};

/** Measures one primitive under dispatch and under forced scalar. */
template <typename F>
Point
measure(const char *primitive, const char *gate, size_t bytes, F &&fn)
{
    Point p;
    p.primitive = primitive;
    p.gate = gate;
    p.bytes = bytes;
    setForceScalar(false);
    p.fastMBs = throughputMBs(fn, bytes);
    setForceScalar(true);
    p.scalarMBs = throughputMBs(fn, bytes);
    setForceScalar(false);
    p.speedup = p.scalarMBs > 0 ? p.fastMBs / p.scalarMBs : 0;
    std::printf("%-10s %8zu B   %10.1f MB/s   %10.1f MB/s   %6.2fx\n",
                p.primitive.c_str(), p.bytes, p.fastMBs, p.scalarMBs,
                p.speedup);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("\n=== Crypto hot-path microbench ===\n");
    std::printf("backend: %s\n\n", backendSummary().c_str());
    BackendInfo info = backendInfo();

    CtrDrbg rng(uint64_t(0xbe9c4));
    Bytes key = rng.bytes(32);
    Bytes ctr = rng.bytes(16);
    Bytes iv = rng.bytes(12);
    AesGcm gcm(key);

    std::printf("%-10s %10s   %15s   %15s   %7s\n", "primitive",
                "size", "dispatch", "scalar", "speedup");
    std::vector<Point> points;
    for (size_t size : {size_t(4096), size_t(1) << 20}) {
        Bytes data = rng.bytes(size);
        const char *suffix = size == 4096 ? "4k" : "1m";
        std::string ctrGate =
            std::string("ctr_") + suffix + "_speedup_x";
        std::string gcmGate =
            std::string("gcm_") + suffix + "_speedup_x";
        std::string shaGate =
            std::string("sha_") + suffix + "_speedup_x";
        points.push_back(measure("aes_ctr", ctrGate.c_str(), size,
                                 [&] {
                                     Bytes out =
                                         aesCtrCrypt(key, ctr, data);
                                 }));
        points.push_back(measure("aes_gcm", gcmGate.c_str(), size,
                                 [&] {
                                     GcmSealed s = gcm.seal(
                                         iv, ByteView(), data);
                                 }));
        points.push_back(measure("sha256", shaGate.c_str(), size,
                                 [&] {
                                     Bytes d = Sha256::digest(data);
                                 }));
    }

    auto find = [&](const char *primitive, size_t bytes) -> Point & {
        for (Point &p : points)
            if (p.primitive == primitive && p.bytes == bytes)
                return p;
        static Point none;
        return none;
    };

    // Hardware acceptance floors (only meaningful when the ISA
    // extension is actually present; on scalar-only hosts both runs
    // take the same path and the ratio sits at ~1x by construction).
    if (info.aesni) {
        check(find("aes_ctr", 4096).speedup >= 5.0,
              "AES-CTR 4 KiB below the 5x hardware-vs-scalar floor");
        check(find("aes_gcm", 4096).speedup >= 4.0,
              "AES-GCM 4 KiB below the 4x hardware-vs-scalar floor");
    } else {
        std::printf("no AES-NI: skipping AES speedup floors\n");
    }
    if (info.shani) {
        check(find("sha256", size_t(1) << 20).speedup >= 2.0,
              "SHA-256 1 MiB below the 2x hardware-vs-scalar floor");
    } else {
        std::printf("no SHA-NI: skipping SHA speedup floor\n");
    }
    for (const Point &p : points) {
        check(p.fastMBs > 1.0 && p.scalarMBs > 1.0,
              "throughput below 1 MB/s sanity floor");
    }

    // ---- JSON artifact ----------------------------------------------
    const char *outPath =
        argc > 1 ? argv[1] : "BENCH_crypto_micro.json";
    FILE *f = std::fopen(outPath, "w");
    if (!f) {
        std::printf("cannot open %s\n", outPath);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"crypto_micro\",\n");
    std::fprintf(f, "  \"backend\": \"%s\",\n",
                 backendSummary().c_str());
    std::fprintf(
        f,
        "  \"cpu\": {\"aesni\": %d, \"vaes\": %d, \"pclmul\": %d, "
        "\"shani\": %d},\n",
        info.aesni ? 1 : 0, info.vaes ? 1 : 0, info.pclmul ? 1 : 0,
        info.shani ? 1 : 0);
    std::fprintf(f, "  \"violations\": %d,\n", violations);
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(f,
                     "    {\"primitive\": \"%s\", \"bytes\": %zu, "
                     "\"fast_mb_s\": %.1f, \"scalar_mb_s\": %.1f, "
                     "\"speedup_x\": %.2f}%s\n",
                     p.primitive.c_str(), p.bytes, p.fastMBs,
                     p.scalarMBs, p.speedup,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"gates\": {\n");
    for (size_t i = 0; i < points.size(); ++i) {
        std::fprintf(f,
                     "    \"%s\": {\"value\": %.2f, "
                     "\"direction\": \"higher\"}%s\n",
                     points[i].gate.c_str(), points[i].speedup,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", outPath);

    if (violations) {
        std::printf("CRYPTO MICROBENCH FAILED: %d violation(s)\n",
                    violations);
        return 1;
    }
    std::printf("all crypto speedup floors passed\n");
    return 0;
}
