/**
 * @file
 * Live-migration bench + invariant soak: planned session moves across
 * fleets of 2/4/8 devices, many seeds each, measuring on the virtual
 * clock the quiesce-to-first-write migration latency (p99 across the
 * sweep is the CI gate) and the fleet's batched secure-channel
 * throughput right after the move (parked ops must flow again).
 *
 * The bench doubles as a CI soak gate: every seed runs TWICE and must
 * be bit-for-bit identical, every migration must land attested on the
 * target with the source epoch tombstoned (zero key reuse), and the
 * parked queue must complete on the target. Any violation exits
 * non-zero.
 *
 * Results are published as hand-rolled JSON (BENCH_migration.json, or
 * argv[1]) for the CI artifact.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fpga/ip.hpp"
#include "salus/sim_hooks.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

int violations = 0;

void
check(bool ok, uint64_t seed, const char *what)
{
    if (ok)
        return;
    ++violations;
    std::printf("  VIOLATION seed=%llu: %s\n",
                (unsigned long long)seed, what);
}

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

constexpr size_t kPostOps = 64; ///< batched ops pushed after the move

struct RunResult
{
    bool ok = false;
    uint64_t seed = 0;
    uint32_t devices = 0;
    uint32_t toDevice = 0;
    sim::Nanos startAt = 0;      ///< migrateActiveTo entered
    sim::Nanos migratedAt = 0;   ///< record returned (re-attested)
    sim::Nanos firstWriteAt = 0; ///< first parked op committed
    uint64_t parkedOps = 0;
    double opsPerSec = 0; ///< batched throughput after the move
    Bytes oldFp;
    Bytes newFp;
};

RunResult
runOnce(uint64_t seed, uint32_t devices)
{
    RunResult r;
    r.seed = seed;
    r.devices = devices;
    TestbedConfig cfg;
    cfg.rngSeed = seed;
    cfg.deviceCount = devices;

    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    if (!tb.runDeployment().ok)
        return r;
    if (!tb.userApp().secureWrite(0x00, seed))
        return r;
    r.oldFp = tb.smApp().secretsFingerprint();

    // Park a few ops in the scheduler so the move carries real work.
    BatchScheduler &sched = tb.scheduler();
    size_t completed = 0;
    for (int i = 0; i < 8; ++i)
        if (sched.submit(0, {true, 0x08, seed + uint64_t(i)},
                         [&](uint8_t st, uint64_t) {
                             completed += st == 0 ? 1 : 0;
                         }) != BatchScheduler::Submit::Accepted)
            return r;

    // The planned move: device 0 -> the highest-id device (always a
    // real hop whatever the pool size).
    uint32_t target = devices - 1;
    r.startAt = tb.clock().now();
    MigrationRecord rec;
    try {
        rec = tb.supervisor().migrateActiveTo(target, "bench move");
    } catch (const SalusError &) {
        return r;
    }
    r.migratedAt = tb.clock().now();
    r.toDevice = rec.toDevice;
    r.parkedOps = rec.parkedOps;
    r.newFp = tb.smApp().secretsFingerprint();

    // The parked queue drains onto the target, then a throughput
    // burst: ops per virtual second over kPostOps batched ops.
    if (sched.drain() != 8 || completed != 8)
        return r;
    r.firstWriteAt = tb.clock().now();
    size_t burstDone = 0;
    for (size_t i = 0; i < kPostOps; ++i)
        if (sched.submit(0, {true, 0x10, i},
                         [&](uint8_t st, uint64_t) {
                             burstDone += st == 0 ? 1 : 0;
                         }) != BatchScheduler::Submit::Accepted)
            return r;
    sim::Nanos burstStart = tb.clock().now();
    if (sched.drain() != kPostOps || burstDone != kPostOps)
        return r;
    sim::Nanos burstNanos = tb.clock().now() - burstStart;
    if (burstNanos == 0)
        return r;
    r.opsPerSec = double(kPostOps) * 1e9 / double(burstNanos);

    r.ok = rec.attested == 1 && r.toDevice == target &&
           r.parkedOps == 8 && r.oldFp != r.newFp &&
           tb.smApp().everRetiredFingerprint(r.oldFp) &&
           !tb.smApp().everRetiredFingerprint(r.newFp);
    return r;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    size_t idx = size_t(p * double(values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Live migration: latency p99 + fleet throughput");
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    const uint32_t kDeviceCounts[] = {2, 4, 8};
    const int kSeeds = 12;
    const uint64_t kSeedBase = 6100;

    std::vector<RunResult> runs;
    std::vector<double> latenciesMs; ///< across ALL device counts
    struct FleetRow
    {
        uint32_t devices;
        double meanMs;
        double p99Ms;
        double opsPerSec;
        size_t succeeded;
    };
    std::vector<FleetRow> rows;

    for (uint32_t devices : kDeviceCounts) {
        std::vector<double> fleetMs;
        double opsSum = 0;
        size_t succeeded = 0;
        std::printf("\n-- %u devices --\n", devices);
        std::printf("%-8s %-12s %-12s %-14s %s\n", "seed",
                    "migrate", "to-write", "ops/s", "target");
        for (int i = 0; i < kSeeds; ++i) {
            uint64_t seed = kSeedBase + uint64_t(devices) * 100 +
                            uint64_t(i);
            RunResult a = runOnce(seed, devices);
            RunResult b = runOnce(seed, devices);
            check(a.ok, seed, "migration invariants violated");
            check(a.startAt == b.startAt &&
                      a.migratedAt == b.migratedAt &&
                      a.firstWriteAt == b.firstWriteAt &&
                      a.newFp == b.newFp && a.toDevice == b.toDevice,
                  seed, "same-seed runs are not bit-for-bit identical");
            if (!a.ok)
                continue;
            double mig = bench::ms(a.firstWriteAt - a.startAt);
            std::printf("%-8llu %-12.2f %-12.2f %-14.0f %u\n",
                        (unsigned long long)seed,
                        bench::ms(a.migratedAt - a.startAt), mig,
                        a.opsPerSec, a.toDevice);
            fleetMs.push_back(mig);
            latenciesMs.push_back(mig);
            opsSum += a.opsPerSec;
            ++succeeded;
            runs.push_back(a);
        }
        double meanMs = 0;
        for (double v : fleetMs)
            meanMs += v;
        meanMs = fleetMs.empty() ? 0 : meanMs / double(fleetMs.size());
        rows.push_back({devices, meanMs, percentile(fleetMs, 0.99),
                        succeeded ? opsSum / double(succeeded) : 0,
                        succeeded});
    }

    if (runs.empty()) {
        std::printf("no successful runs\n");
        return 1;
    }

    double p99 = percentile(latenciesMs, 0.99);
    double meanOps = 0;
    for (const FleetRow &row : rows)
        meanOps += row.opsPerSec;
    meanOps /= double(rows.size());
    std::printf("\nmigration p99 %.2f ms across %zu runs; mean fleet "
                "throughput %.0f ops/s\n",
                p99, latenciesMs.size(), meanOps);

    // ---- JSON artifact ----------------------------------------------
    const char *outPath =
        argc > 1 ? argv[1] : "BENCH_migration.json";
    FILE *f = std::fopen(outPath, "w");
    if (!f) {
        std::printf("cannot open %s\n", outPath);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"migration\",\n");
    std::fprintf(f, "  \"seeds_per_fleet\": %d,\n", kSeeds);
    std::fprintf(f, "  \"succeeded\": %zu,\n", runs.size());
    std::fprintf(f, "  \"violations\": %d,\n  \"unit\": \"ms\",\n",
                 violations);
    std::fprintf(f, "  \"migration_ms_p99\": %.3f,\n", p99);
    std::fprintf(f, "  \"fleets\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const FleetRow &row = rows[i];
        std::fprintf(f,
                     "    {\"devices\": %u, \"migration_ms_mean\": "
                     "%.3f, \"migration_ms_p99\": %.3f, "
                     "\"ops_per_sec\": %.0f, \"succeeded\": %zu}%s\n",
                     row.devices, row.meanMs, row.p99Ms, row.opsPerSec,
                     row.succeeded, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"gates\": {\n");
    std::fprintf(f,
                 "    \"migration_ms_p99\": {\"value\": %.3f, "
                 "\"direction\": \"lower\"},\n",
                 p99);
    std::fprintf(f,
                 "    \"fleet_ops_per_sec_mean\": {\"value\": %.0f, "
                 "\"direction\": \"higher\"}\n",
                 meanOps);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", outPath);

    size_t expected = size_t(kSeeds) *
                      (sizeof(kDeviceCounts) / sizeof(kDeviceCounts[0]));
    if (violations || runs.size() != expected) {
        std::printf("MIGRATION SOAK FAILED: %d violation(s), %zu/%zu "
                    "runs succeeded\n",
                    violations, runs.size(), expected);
        return 1;
    }
    std::printf("all invariants held across %zu runs x 2\n", expected);
    return 0;
}
