/**
 * @file
 * QoS isolation bench + gate: measures what a noisy neighbour costs a
 * light interactive tenant under the weighted scheduler, on the
 * virtual clock. For each seed the light tenant (8 ops/sweep) runs
 * twice through the broker — solo, then sharing the device at EQUAL
 * weight with a flooding tenant — and we record the virtual time the
 * secure channel spends serving the light tenant's slice each sweep.
 *
 * The isolation contract gated here: the light tenant's p99 slice
 * service time under contention stays within 1.5x of its solo p99
 * (weights 1:1 — no priority, just fair sweeps), the light tenant is
 * served EVERY sweep it is backlogged (DRR starvation bound), and
 * same-seed runs are bit-for-bit identical. Any violation exits
 * non-zero; the JSON artifact feeds the CI perf-regression gate
 * (bench/baselines/BENCH_qos_isolation.json).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fpga/ip.hpp"
#include "salus/broker.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

int violations = 0;

void
check(bool ok, uint64_t seed, const char *what)
{
    if (ok)
        return;
    ++violations;
    std::printf("  VIOLATION seed=%llu: %s\n", (unsigned long long)seed,
                what);
}

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

constexpr int kSweeps = 40;
constexpr int kLightOpsPerSweep = 8;
constexpr int kHeavyOpsPerSweep = 96;

struct RunResult
{
    bool ok = false;
    /** Light tenant's slice service nanos, one sample per sweep. */
    std::vector<sim::Nanos> lightSlice;
    uint64_t lightCompleted = 0;
    uint64_t heavyCompleted = 0;
    uint64_t heavyQuotaRejected = 0;
    uint64_t lightMaxSweepsWaited = 0;
    sim::Nanos clockEnd = 0;
};

RunResult
runOnce(uint64_t seed, bool contended)
{
    RunResult r;
    TestbedConfig cfg;
    cfg.rngSeed = seed;
    Testbed tb(cfg);
    tb.installCl(loopbackAccel());
    if (!tb.runDeployment().ok)
        return r;

    Broker broker(tb);
    TenantPolicy lightPolicy;
    lightPolicy.weight = 1;
    lightPolicy.maxQueuedOps = 128;
    uint32_t light = broker.registerTenant("light", lightPolicy);
    uint32_t lightSession = broker.openSession(light);

    uint32_t heavy = 0, heavySession = 0;
    if (contended) {
        TenantPolicy heavyPolicy;
        heavyPolicy.weight = 1; // EQUAL weight: isolation, not priority
        heavyPolicy.maxQueuedOps = 64;
        heavy = broker.registerTenant("heavy", heavyPolicy);
        heavySession = broker.openSession(heavy);
    }

    for (int sweep = 0; sweep < kSweeps; ++sweep) {
        if (contended) {
            for (int i = 0; i < kHeavyOpsPerSweep; ++i) {
                try {
                    broker.submit(heavy, heavySession,
                                  {true, 0x00, uint64_t(i)});
                } catch (const PolicyError &) {
                    break; // quota wall — the flooder's own problem
                }
            }
        }
        for (int i = 0; i < kLightOpsPerSweep; ++i)
            broker.submit(light, lightSession,
                          {true, 0x08, uint64_t(sweep) << 8 | i});
        broker.pump();

        const BatchScheduler::SessionStats &st =
            tb.scheduler().sessionStats(lightSession);
        r.lightSlice.push_back(st.sliceNanosLast);
        // Starvation bound: the light tenant's 8 ops were served THIS
        // sweep, never parked behind the flooder's backlog.
        if (st.dispatchedOps !=
            uint64_t(kLightOpsPerSweep) * uint64_t(sweep + 1))
            return r;
    }
    broker.drainAll();

    r.lightCompleted = broker.tenantStats(light).completed;
    r.lightMaxSweepsWaited =
        tb.scheduler().sessionStats(lightSession).maxSweepsWaited;
    if (contended) {
        r.heavyCompleted = broker.tenantStats(heavy).completed;
        r.heavyQuotaRejected = broker.tenantStats(heavy).quotaRejected;
    }
    r.clockEnd = tb.clock().now();
    r.ok = r.lightCompleted ==
               uint64_t(kLightOpsPerSweep) * uint64_t(kSweeps) &&
           r.lightMaxSweepsWaited <= 1;
    return r;
}

sim::Nanos
p99(std::vector<sim::Nanos> samples)
{
    std::sort(samples.begin(), samples.end());
    size_t idx = (samples.size() * 99 + 99) / 100;
    idx = idx == 0 ? 0 : idx - 1;
    return samples[std::min(idx, samples.size() - 1)];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner(
        "QoS isolation: light tenant vs noisy neighbour (weights 1:1)");
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    const int kSeeds = 8;
    const uint64_t kSeedBase = 7700;

    std::vector<sim::Nanos> soloSamples, contendedSamples;
    uint64_t heavyCompleted = 0, heavyQuotaRejected = 0;
    int succeeded = 0;

    std::printf("%-8s %-14s %-14s %-12s %s\n", "seed", "solo p99",
                "contended p99", "ratio", "heavy done");
    for (int i = 0; i < kSeeds; ++i) {
        uint64_t seed = kSeedBase + uint64_t(i);
        RunResult solo = runOnce(seed, false);
        RunResult soloAgain = runOnce(seed, false);
        RunResult cont = runOnce(seed, true);
        RunResult contAgain = runOnce(seed, true);
        check(solo.ok, seed, "solo run violated the light-tenant SLO");
        check(cont.ok, seed,
              "contended run violated the light-tenant SLO");
        check(solo.lightSlice == soloAgain.lightSlice &&
                  solo.clockEnd == soloAgain.clockEnd,
              seed, "solo same-seed runs are not bit-for-bit identical");
        check(cont.lightSlice == contAgain.lightSlice &&
                  cont.clockEnd == contAgain.clockEnd,
              seed,
              "contended same-seed runs are not bit-for-bit identical");
        if (!solo.ok || !cont.ok)
            continue;
        ++succeeded;
        soloSamples.insert(soloSamples.end(), solo.lightSlice.begin(),
                           solo.lightSlice.end());
        contendedSamples.insert(contendedSamples.end(),
                                cont.lightSlice.begin(),
                                cont.lightSlice.end());
        heavyCompleted += cont.heavyCompleted;
        heavyQuotaRejected += cont.heavyQuotaRejected;
        double ratio = double(p99(cont.lightSlice)) /
                       double(p99(solo.lightSlice));
        std::printf("%-8llu %-14.3f %-14.3f %-12.3f %llu\n",
                    (unsigned long long)seed,
                    bench::ms(p99(solo.lightSlice)),
                    bench::ms(p99(cont.lightSlice)), ratio,
                    (unsigned long long)cont.heavyCompleted);
    }

    if (succeeded == 0) {
        std::printf("no successful runs\n");
        return 1;
    }

    sim::Nanos soloP99 = p99(soloSamples);
    sim::Nanos contendedP99 = p99(contendedSamples);
    double ratio = double(contendedP99) / double(soloP99);
    std::printf("\nlight tenant slice p99: solo %.3f ms, contended "
                "%.3f ms, ratio %.3f (SLO <= 1.5)\n",
                bench::ms(soloP99), bench::ms(contendedP99), ratio);
    std::printf("noisy neighbour: %llu completed, %llu quota-rejected "
                "across %d seeds\n",
                (unsigned long long)heavyCompleted,
                (unsigned long long)heavyQuotaRejected, kSeeds);

    // The headline isolation SLO is enforced HERE, not just gated
    // against a baseline drift in CI.
    check(ratio <= 1.5, kSeedBase,
          "contended p99 exceeds 1.5x solo p99");

    const char *outPath =
        argc > 1 ? argv[1] : "BENCH_qos_isolation.json";
    FILE *f = std::fopen(outPath, "w");
    if (!f) {
        std::printf("cannot open %s\n", outPath);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"qos_isolation\",\n");
    std::fprintf(f, "  \"seeds\": %d,\n  \"succeeded\": %d,\n", kSeeds,
                 succeeded);
    std::fprintf(f, "  \"violations\": %d,\n  \"unit\": \"ms\",\n",
                 violations);
    std::fprintf(f, "  \"sweeps_per_run\": %d,\n", kSweeps);
    std::fprintf(f, "  \"light_ops_per_sweep\": %d,\n",
                 kLightOpsPerSweep);
    std::fprintf(f, "  \"heavy_ops_per_sweep\": %d,\n",
                 kHeavyOpsPerSweep);
    std::fprintf(f, "  \"light_slice_p99_solo_ms\": %.6f,\n",
                 bench::ms(soloP99));
    std::fprintf(f, "  \"light_slice_p99_contended_ms\": %.6f,\n",
                 bench::ms(contendedP99));
    std::fprintf(f, "  \"p99_ratio\": %.6f,\n", ratio);
    std::fprintf(f, "  \"heavy_completed\": %llu,\n",
                 (unsigned long long)heavyCompleted);
    std::fprintf(f, "  \"heavy_quota_rejected\": %llu,\n",
                 (unsigned long long)heavyQuotaRejected);
    std::fprintf(f, "  \"gates\": {\n");
    std::fprintf(f,
                 "    \"light_slice_p99_contended_ms\": "
                 "{\"value\": %.6f, \"direction\": \"lower\"},\n",
                 bench::ms(contendedP99));
    std::fprintf(f,
                 "    \"p99_ratio\": {\"value\": %.6f, "
                 "\"direction\": \"lower\"}\n",
                 ratio);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", outPath);

    return violations == 0 ? 0 : 1;
}
