/**
 * @file
 * Secure DMA data-plane throughput bench: sweeps window size x
 * transfer size over the pipelined descriptor engine, measuring on
 * the virtual clock. For every (window, bytes) point it drives one
 * bulk dmaWrite through the SM enclave and reports bytes/s, the
 * descriptor count, the window-occupancy high-water mark and the
 * crypto vs transport breakdown (DMA Crypto / DMA Transport phases),
 * plus the fraction of keystream precompute hidden behind the wire.
 *
 * Doubles as a correctness gate: every transfer must complete with
 * status 0, the destination DRAM must hold the exact payload, the
 * clock must advance by exactly the engine's reported exposed crypto
 * plus transport, and the window=4 pipeline must beat window=1 by at
 * least 3x bytes/s at 1 MiB (crypto for burst N overlapped with
 * transport for burst N-1). Any violation exits non-zero.
 *
 * Results are published as hand-rolled JSON
 * (BENCH_dma_throughput.json, or argv[1]) with a "gates" section
 * consumed by tools/check_bench_regression.py.
 */

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fpga/ip.hpp"
#include "salus/dma_channel.hpp"
#include "salus/sim_hooks.hpp"
#include "salus/sm_enclave.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

int violations = 0;

void
check(bool ok, const char *what)
{
    if (ok)
        return;
    ++violations;
    std::printf("  VIOLATION: %s\n", what);
}

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

Bytes
pattern(size_t n, uint8_t salt)
{
    Bytes out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = uint8_t(i * 31 + salt);
    return out;
}

/** Destination base: user data stays below the 2 MiB staging rings. */
constexpr uint64_t kDstAddr = 0x8000;

struct PointResult
{
    uint32_t window = 0;
    size_t bytes = 0;
    double elapsedMs = 0;
    double bytesPerSec = 0;
    uint32_t descriptors = 0;
    uint32_t maxInFlight = 0;
    double overlap = 0;
    double cryptoMs = 0;
    double hiddenCryptoMs = 0;
    double transportMs = 0;
    bool ok = false;
};

/** Filled by the traced rerun of one sweep point (the measured sweep
 *  itself always runs untraced, keeping the perf gates honest). */
struct TracedArtifacts
{
    std::string traceJson;
    std::string metricsText;
    double cryptoSpanMs = 0;
    double cryptoClockMs = 0;
    double transportSpanMs = 0;
    double transportClockMs = 0;
};

PointResult
runPoint(uint32_t window, size_t bytes,
         TracedArtifacts *traced = nullptr)
{
    PointResult r;
    r.window = window;
    r.bytes = bytes;

    TestbedConfig cfg;
    cfg.rngSeed = 9000 + window * 100 + bytes / 1024;
    Testbed tb(cfg);
    std::optional<bench::ObsCapture> capture;
    if (traced)
        capture.emplace(tb.clock());
    tb.installCl(loopbackAccel());
    if (!tb.runDeployment().ok)
        return r;

    Bytes data = pattern(bytes, uint8_t(window));
    sim::Nanos startAt = tb.clock().now();
    sim::Nanos cryptoBase = tb.clock().totalFor(phases::kDmaCrypto);
    sim::Nanos transportBase =
        tb.clock().totalFor(phases::kDmaTransport);

    SmEnclaveApp::DmaOptions opts;
    opts.windowSize = window;
    dmachan::DmaTransferReport rep =
        tb.smApp().dmaWrite(0, kDstAddr, data, opts);
    sim::Nanos elapsed = tb.clock().now() - startAt;

    bool allOk = rep.status == 0 && rep.bytes == bytes &&
                 elapsed > 0 &&
                 tb.shell().dmaPostedRead(kDstAddr, bytes) == data &&
                 elapsed == rep.cryptoNanos + rep.transportNanos;

    const double secs = double(elapsed) / 1e9;
    r.elapsedMs = bench::ms(elapsed);
    r.bytesPerSec = double(bytes) / secs;
    r.descriptors = rep.descriptors;
    r.maxInFlight = rep.maxInFlight;
    r.overlap = rep.overlapFraction();
    r.cryptoMs = bench::ms(tb.clock().totalFor(phases::kDmaCrypto) -
                           cryptoBase);
    r.hiddenCryptoMs = bench::ms(rep.hiddenCryptoNanos);
    r.transportMs = bench::ms(
        tb.clock().totalFor(phases::kDmaTransport) - transportBase);
    r.ok = allOk;

    if (traced) {
        capture->stop();
        // The capture was installed before deployment, so it mirrored
        // every clock slice of the run: full-run span sums must match
        // the clock's own phase totals.
        traced->traceJson = capture->trace().chromeTraceJson();
        traced->metricsText = capture->metrics().renderText();
        traced->cryptoSpanMs = bench::ms(
            capture->trace().phaseTotal(phases::kDmaCrypto));
        traced->cryptoClockMs =
            bench::ms(tb.clock().totalFor(phases::kDmaCrypto));
        traced->transportSpanMs = bench::ms(
            capture->trace().phaseTotal(phases::kDmaTransport));
        traced->transportClockMs =
            bench::ms(tb.clock().totalFor(phases::kDmaTransport));
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Pipelined secure DMA data plane: throughput sweep");
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    const uint32_t kWindows[] = {1, 2, 4, 8};
    const size_t kSizes[] = {64 * 1024, 256 * 1024, 1024 * 1024};

    std::vector<PointResult> sweep;
    std::printf("%-8s %-10s %-12s %-6s %-9s %-9s %-10s %-10s %s\n",
                "window", "KiB", "MB/s", "desc", "inflight", "overlap",
                "crypto", "hidden", "transport (ms)");
    for (uint32_t window : kWindows) {
        for (size_t bytes : kSizes) {
            PointResult p = runPoint(window, bytes);
            check(p.ok, "sweep point failed (bad status or readback)");
            if (!p.ok)
                continue;
            std::printf("%-8u %-10zu %-12.1f %-6u %-9u %-9.2f %-10.3f "
                        "%-10.3f %.3f\n",
                        p.window, p.bytes / 1024, p.bytesPerSec / 1e6,
                        p.descriptors, p.maxInFlight, p.overlap,
                        p.cryptoMs, p.hiddenCryptoMs, p.transportMs);
            sweep.push_back(p);
        }
    }

    auto find = [&](uint32_t window, size_t bytes) -> PointResult * {
        for (PointResult &p : sweep)
            if (p.window == window && p.bytes == bytes)
                return &p;
        return nullptr;
    };
    constexpr size_t kMiB = 1024 * 1024;
    PointResult *w1 = find(1, kMiB);
    PointResult *w4 = find(4, kMiB);
    PointResult *w8 = find(8, kMiB);
    check(w1 && w4 && w8, "gate configurations missing");
    double speedup = 0;
    if (w1 && w4 && w1->bytesPerSec > 0) {
        speedup = w4->bytesPerSec / w1->bytesPerSec;
        std::printf("\nwindow=4 vs window=1 (1 MiB): %.1fx bytes/s\n",
                    speedup);
        check(speedup >= 3.0,
              "window=4 speedup below the 3x acceptance floor");
    }

    // ---- Traced rerun: artifacts + determinism ----------------------
    // One mid-sweep point is rerun with tracing enabled (twice, same
    // seed) to publish trace/metrics artifacts and to enforce that
    // (a) per-phase span sums match the cost model within 1% and
    // (b) same-seed traces are byte-identical.
    {
        TracedArtifacts first;
        TracedArtifacts second;
        PointResult t1 = runPoint(4, 256 * 1024, &first);
        PointResult t2 = runPoint(4, 256 * 1024, &second);
        check(t1.ok && t2.ok, "traced point failed");
        check(first.traceJson == second.traceJson,
              "same-seed traces are not byte-identical");
        check(first.metricsText == second.metricsText,
              "same-seed metrics dumps are not byte-identical");
        auto within1pct = [](double spans, double clock) {
            return std::fabs(spans - clock) <= clock / 100.0;
        };
        check(within1pct(first.cryptoSpanMs, first.cryptoClockMs),
              "DMA crypto span sum off the cost model by more than 1%");
        check(
            within1pct(first.transportSpanMs, first.transportClockMs),
            "DMA transport span sum off the cost model by more than 1%");
        std::printf("\ntraced point (window 4, 256 KiB): crypto "
                    "%.3f/%.3f ms, transport %.3f/%.3f ms "
                    "(spans/clock), deterministic=%s\n",
                    first.cryptoSpanMs, first.cryptoClockMs,
                    first.transportSpanMs, first.transportClockMs,
                    first.traceJson == second.traceJson ? "yes" : "NO");
        FILE *tf = std::fopen("TRACE_dma_throughput.json", "w");
        if (tf) {
            std::fwrite(first.traceJson.data(), 1,
                        first.traceJson.size(), tf);
            std::fclose(tf);
        }
        FILE *mf = std::fopen("METRICS_dma_throughput.txt", "w");
        if (mf) {
            std::fwrite(first.metricsText.data(), 1,
                        first.metricsText.size(), mf);
            std::fclose(mf);
        }
        check(tf != nullptr && mf != nullptr,
              "cannot write trace/metrics artifacts");
    }

    // ---- JSON artifact ----------------------------------------------
    const char *outPath =
        argc > 1 ? argv[1] : "BENCH_dma_throughput.json";
    FILE *f = std::fopen(outPath, "w");
    if (!f) {
        std::printf("cannot open %s\n", outPath);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"dma_throughput\",\n");
    std::fprintf(f, "  \"violations\": %d,\n", violations);
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
        const PointResult &p = sweep[i];
        std::fprintf(
            f,
            "    {\"window\": %u, \"bytes\": %zu, "
            "\"elapsed_ms\": %.3f, \"bytes_per_sec\": %.1f, "
            "\"descriptors\": %u, \"max_in_flight\": %u, "
            "\"overlap_fraction\": %.3f, \"crypto_ms\": %.3f, "
            "\"hidden_crypto_ms\": %.3f, \"transport_ms\": %.3f}%s\n",
            p.window, p.bytes, p.elapsedMs, p.bytesPerSec,
            p.descriptors, p.maxInFlight, p.overlap, p.cryptoMs,
            p.hiddenCryptoMs, p.transportMs,
            i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"gates\": {\n");
    std::fprintf(f,
                 "    \"dma_bytes_per_sec_w1_1mib\": {\"value\": %.1f, "
                 "\"direction\": \"higher\"},\n",
                 w1 ? w1->bytesPerSec : 0.0);
    std::fprintf(f,
                 "    \"dma_bytes_per_sec_w4_1mib\": {\"value\": %.1f, "
                 "\"direction\": \"higher\"},\n",
                 w4 ? w4->bytesPerSec : 0.0);
    std::fprintf(f,
                 "    \"dma_bytes_per_sec_w8_1mib\": {\"value\": %.1f, "
                 "\"direction\": \"higher\"},\n",
                 w8 ? w8->bytesPerSec : 0.0);
    std::fprintf(f,
                 "    \"dma_overlap_fraction_w8_1mib\": "
                 "{\"value\": %.3f, \"direction\": \"higher\"},\n",
                 w8 ? w8->overlap : 0.0);
    std::fprintf(f,
                 "    \"dma_window4_speedup_x\": {\"value\": %.2f, "
                 "\"direction\": \"higher\"}\n",
                 speedup);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", outPath);

    if (violations) {
        std::printf("DMA THROUGHPUT BENCH FAILED: %d violation(s)\n",
                    violations);
        return 1;
    }
    std::printf("all %zu sweep points passed\n", sweep.size());
    return 0;
}
