/**
 * @file
 * Microbenchmarks of the attestation machinery (google-benchmark):
 * local attestation handshakes, quote generation/verification, CL
 * attestation register exchanges, and secure register channel ops.
 * These underpin the Figure 9 "negligible" phases (836 us local
 * attestation, 1.3 ms CL attestation).
 */

#include <benchmark/benchmark.h>

#include "fpga/ip.hpp"
#include "salus/reg_channel.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"
#include "tee/local_attest.hpp"

using namespace salus;
using namespace salus::core;

namespace {

class DemoEnclave : public tee::Enclave
{
  public:
    using tee::Enclave::createQuote;
    using tee::Enclave::Enclave;
};

tee::EnclaveImage
img(const char *name)
{
    return tee::EnclaveImage{name, "v", 1,
                             bytesFromString(std::string(name) +
                                             "-code")};
}

void
BM_LocalAttestHandshake(benchmark::State &state)
{
    crypto::CtrDrbg rng(uint64_t(1));
    tee::TeePlatform platform("p", rng);
    DemoEnclave a(platform, img("a"));
    DemoEnclave b(platform, img("b"));

    for (auto _ : state) {
        tee::LocalAttestInitiator init(a, b.measurement());
        tee::LocalAttestResponder resp(b, a.measurement());
        Bytes m1 = init.start();
        auto m2 = resp.answer(m1);
        auto m3 = init.finish(*m2);
        benchmark::DoNotOptimize(resp.confirm(*m3));
    }
}
BENCHMARK(BM_LocalAttestHandshake);

void
BM_QuoteGenerate(benchmark::State &state)
{
    crypto::CtrDrbg rng(uint64_t(2));
    manufacturer::Manufacturer mft(rng);
    tee::TeePlatform platform("p", rng);
    mft.provisionPlatform(platform);
    DemoEnclave e(platform, img("e"));

    for (auto _ : state)
        benchmark::DoNotOptimize(e.createQuote(Bytes(32, 1)));
}
BENCHMARK(BM_QuoteGenerate);

void
BM_QuoteVerify(benchmark::State &state)
{
    crypto::CtrDrbg rng(uint64_t(3));
    manufacturer::Manufacturer mft(rng);
    tee::TeePlatform platform("p", rng);
    mft.provisionPlatform(platform);
    DemoEnclave e(platform, img("e"));
    tee::Quote q = e.createQuote(Bytes(32, 1));

    for (auto _ : state)
        benchmark::DoNotOptimize(mft.verificationService().verify(q));
}
BENCHMARK(BM_QuoteVerify);

void
BM_ClAttestationMacPair(benchmark::State &state)
{
    // The pure crypto cost of one Fig. 4a exchange (both MACs).
    Bytes key(16, 0x5a);
    uint64_t nonce = 1;
    for (auto _ : state) {
        uint64_t req = regchan::attestRequestMac(key, nonce, 42);
        benchmark::DoNotOptimize(req);
        benchmark::DoNotOptimize(
            regchan::attestResponseMac(key, nonce, 42));
        ++nonce;
    }
}
BENCHMARK(BM_ClAttestationMacPair);

/** Full-system fixture for register-level benchmarks. */
struct DeployedPlatform
{
    std::unique_ptr<Testbed> tb;

    DeployedPlatform()
    {
        fpga::ensureBuiltinIps();
        SmLogic::registerIp();
        tb = std::make_unique<Testbed>();
        netlist::Cell accel;
        accel.path = "engine";
        accel.kind = netlist::CellKind::Logic;
        accel.behaviorId = fpga::kIpLoopback;
        accel.resources = {100, 100, 0, 0};
        tb->installCl(accel);
        if (!tb->runDeployment().ok)
            std::abort();
    }
};

void
BM_SecureRegisterWrite(benchmark::State &state)
{
    static DeployedPlatform platform;
    uint64_t v = 0;
    for (auto _ : state) {
        if (!platform.tb->userApp().secureWrite(0x00, ++v))
            std::abort();
    }
}
BENCHMARK(BM_SecureRegisterWrite);

void
BM_DirectRegisterWrite(benchmark::State &state)
{
    static DeployedPlatform platform;
    uint64_t v = 0;
    for (auto _ : state)
        platform.tb->shell().registerWrite(pcie::Window::Direct, 0x00,
                                           ++v);
}
BENCHMARK(BM_DirectRegisterWrite);

void
BM_FullSecureBoot(benchmark::State &state)
{
    // End-to-end deployment on the (small) test-scale device: every
    // iteration manufactures a fresh platform and walks all 9 steps.
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    uint64_t seed = 1;
    for (auto _ : state) {
        TestbedConfig cfg;
        cfg.rngSeed = ++seed;
        Testbed tb(cfg);
        netlist::Cell accel;
        accel.path = "engine";
        accel.kind = netlist::CellKind::Logic;
        accel.behaviorId = fpga::kIpLoopback;
        accel.resources = {100, 100, 0, 0};
        tb.installCl(accel);
        if (!tb.runDeployment().ok)
            std::abort();
    }
}
BENCHMARK(BM_FullSecureBoot)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
