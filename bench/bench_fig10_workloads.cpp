/**
 * @file
 * Reproduces paper Figure 10: normalized execution time of the five
 * realistic workloads on a CPU TEE (SGX) vs the FPGA TEE (Salus).
 * The paper reports Salus speedups of 1.17x - 15.64x over SGX; the
 * reproduction must keep the ordering (every workload at least breaks
 * even, compute-light kernels gain the most relative to their CPU-TEE
 * penalty).
 */

#include <cstdio>

#include "accel/accel_ip.hpp"
#include "accel/runner.hpp"
#include "bench_util.hpp"
#include "salus/sm_logic.hpp"

using namespace salus;
using namespace salus::accel;

int
main()
{
    bench::banner(
        "Figure 10: workloads on CPU TEE (SGX) vs FPGA TEE (Salus)");

    AccelIp::registerAll();
    core::SmLogic::registerIp();

    std::printf("%-12s %12s %12s %10s %14s\n", "workload", "SGX (ms)",
                "Salus (ms)", "speedup", "normalized");

    for (const auto &spec : allWorkloads()) {
        WorkloadRunner runner(spec.id, 2026, spec.benchScale);

        // Best-of-3 steadies the real CPU-side measurement.
        RunResult sgx = runner.runCpuTee();
        for (int rep = 0; rep < 2; ++rep) {
            RunResult again = runner.runCpuTee();
            if (again.totalTime < sgx.totalTime)
                sgx = again;
        }
        if (!sgx.outputCorrect) {
            std::printf("%s: CPU-TEE output mismatch\n", spec.name);
            return 1;
        }

        core::TestbedConfig cfg;
        core::Testbed tb(cfg);
        tb.installCl(accelCellFor(spec));
        auto outcome = tb.runDeployment();
        if (!outcome.ok) {
            std::printf("%s: deployment failed: %s\n", spec.name,
                        outcome.failure.c_str());
            return 1;
        }
        RunResult salus = runner.runFpgaTee(tb);
        if (!salus.outputCorrect) {
            std::printf("%s: FPGA-TEE output mismatch\n", spec.name);
            return 1;
        }

        double speedup =
            double(sgx.totalTime) / double(salus.totalTime);
        std::printf("%-12s %12.2f %12.2f %9.2fx %14.3f\n", spec.name,
                    bench::ms(sgx.totalTime), bench::ms(salus.totalTime),
                    speedup, 1.0 / speedup);
    }

    std::printf("\npaper reference: speedups 1.17x (Conv) to 15.64x, "
                "all workloads favour the FPGA TEE\n");
    return 0;
}
