/**
 * @file
 * Secure-channel throughput bench: sweeps batch size x session count
 * over the batched register channel and the multi-session scheduler,
 * measuring on the virtual clock. For every (sessions, batch) point it
 * drives `kOpsPerSession` write/read pairs per session through the
 * BatchScheduler and reports ops/s, bytes/s, per-op latency p50/p99
 * and the crypto vs transport breakdown (Channel Crypto / Channel
 * Transport phases).
 *
 * Doubles as a correctness gate: every op must complete with status 0,
 * every read must return the session's last written value, and the
 * batch=32 single-session configuration must beat batch=1 by at least
 * 5x ops/s (the PCIe round trip amortized across the burst). Any
 * violation exits non-zero.
 *
 * Results are published as hand-rolled JSON
 * (BENCH_channel_throughput.json, or argv[1]) with a "gates" section
 * consumed by tools/check_bench_regression.py.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fpga/ip.hpp"
#include "salus/sim_hooks.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

int violations = 0;

void
check(bool ok, const char *what)
{
    if (ok)
        return;
    ++violations;
    std::printf("  VIOLATION: %s\n", what);
}

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {10, 10, 0, 0};
    return accel;
}

constexpr size_t kOpsPerSession = 256;

struct PointResult
{
    uint32_t sessions = 0;
    size_t batch = 0;
    size_t ops = 0;
    double elapsedMs = 0;
    double opsPerSec = 0;
    double bytesPerSec = 0;
    double p50Us = 0;
    double p99Us = 0;
    double cryptoMs = 0;
    double transportMs = 0;
    bool ok = false;
};

/** Filled by the traced rerun of one sweep point (the measured sweep
 *  itself always runs untraced, keeping the perf gates honest). */
struct TracedArtifacts
{
    std::string traceJson;
    std::string metricsText;
    double cryptoSpanMs = 0;
    double cryptoClockMs = 0;
    double transportSpanMs = 0;
    double transportClockMs = 0;
};

PointResult
runPoint(uint32_t sessions, size_t batch,
         TracedArtifacts *traced = nullptr)
{
    PointResult r;
    r.sessions = sessions;
    r.batch = batch;

    TestbedConfig cfg;
    cfg.rngSeed = 7000 + sessions * 100 + batch;
    cfg.schedulerMaxBatchOps = batch;
    cfg.schedulerQueueCapacity = kOpsPerSession;
    Testbed tb(cfg);
    std::optional<bench::ObsCapture> capture;
    if (traced)
        capture.emplace(tb.clock());
    tb.installCl(loopbackAccel());
    if (!tb.runDeployment().ok)
        return r;

    // Tenant sessions join the booted platform with their own LA
    // channel and derived fabric keys.
    for (uint32_t s = 1; s < sessions; ++s) {
        uint32_t peer = tb.addUserSession();
        if (!tb.userApp(peer).attachToPlatform())
            return r;
    }

    BatchScheduler &sched = tb.scheduler();

    // Per-session scratch register in the loopback accelerator (16
    // regs at addr = 8*idx), so sessions never stomp each other.
    struct OpRecord
    {
        sim::Nanos submittedAt = 0;
        sim::Nanos doneAt = 0;
        uint8_t status = 0xff;
        uint64_t data = 0;
        bool isRead = false;
        uint64_t expect = 0;
    };
    std::vector<std::vector<OpRecord>> records(sessions);

    sim::Nanos startAt = tb.clock().now();
    sim::Nanos cryptoBase =
        tb.clock().totalFor(phases::kChanCrypto);
    sim::Nanos transportBase =
        tb.clock().totalFor(phases::kChanTransport);

    for (uint32_t s = 0; s < sessions; ++s) {
        records[s].resize(kOpsPerSession);
        uint32_t addr = 8 * s;
        for (size_t i = 0; i < kOpsPerSession; ++i) {
            OpRecord &rec = records[s][i];
            rec.submittedAt = tb.clock().now();
            regchan::RegOp op;
            uint64_t value = (uint64_t(s) << 32) | uint64_t(i / 2);
            if (i % 2 == 0) {
                op = {true, addr, value};
            } else {
                op = {false, addr, 0};
                rec.isRead = true;
                rec.expect = value;
            }
            sim::VirtualClock &clk = tb.clock();
            auto submit = sched.submit(
                s, op,
                [&rec, &clk](uint8_t status, uint64_t data) {
                    rec.status = status;
                    rec.data = data;
                    rec.doneAt = clk.now();
                });
            if (submit != BatchScheduler::Submit::Accepted)
                return r;
        }
    }

    size_t completed = sched.drain();
    sim::Nanos elapsed = tb.clock().now() - startAt;

    r.ops = sessions * kOpsPerSession;
    if (completed != r.ops || elapsed == 0)
        return r;

    std::vector<sim::Nanos> latencies;
    latencies.reserve(r.ops);
    bool allOk = true;
    for (uint32_t s = 0; s < sessions; ++s) {
        for (const OpRecord &rec : records[s]) {
            allOk = allOk && rec.status == 0;
            if (rec.isRead)
                allOk = allOk && rec.data == rec.expect;
            latencies.push_back(rec.doneAt - rec.submittedAt);
        }
    }
    std::sort(latencies.begin(), latencies.end());

    const double secs = double(elapsed) / 1e9;
    // Wire bytes: one 16-byte AES block per op in each direction.
    const double wireBytes = double(r.ops) * 32.0;
    r.elapsedMs = bench::ms(elapsed);
    r.opsPerSec = double(r.ops) / secs;
    r.bytesPerSec = wireBytes / secs;
    r.p50Us = double(latencies[latencies.size() / 2]) / 1e3;
    r.p99Us = double(latencies[latencies.size() * 99 / 100]) / 1e3;
    r.cryptoMs =
        bench::ms(tb.clock().totalFor(phases::kChanCrypto) - cryptoBase);
    r.transportMs = bench::ms(
        tb.clock().totalFor(phases::kChanTransport) - transportBase);
    r.ok = allOk;

    if (traced) {
        capture->stop();
        // The capture was installed before deployment, so it mirrored
        // every clock slice of the run: full-run span sums must match
        // the clock's own phase totals.
        traced->traceJson = capture->trace().chromeTraceJson();
        traced->metricsText = capture->metrics().renderText();
        traced->cryptoSpanMs = bench::ms(
            capture->trace().phaseTotal(phases::kChanCrypto));
        traced->cryptoClockMs =
            bench::ms(tb.clock().totalFor(phases::kChanCrypto));
        traced->transportSpanMs = bench::ms(
            capture->trace().phaseTotal(phases::kChanTransport));
        traced->transportClockMs =
            bench::ms(tb.clock().totalFor(phases::kChanTransport));
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner(
        "Batched secure register channel: throughput sweep");
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    const uint32_t kSessionCounts[] = {1, 2, 4};
    const size_t kBatchSizes[] = {1, 2, 4, 8, 16, 32, 64};

    std::vector<PointResult> sweep;
    std::printf("%-9s %-7s %-12s %-14s %-10s %-10s %-10s %s\n",
                "sessions", "batch", "ops/s", "MB/s", "p50 (us)",
                "p99 (us)", "crypto", "transport (ms)");
    for (uint32_t sessions : kSessionCounts) {
        for (size_t batch : kBatchSizes) {
            PointResult p = runPoint(sessions, batch);
            check(p.ok, "sweep point failed (bad status or readback)");
            if (!p.ok)
                continue;
            std::printf(
                "%-9u %-7zu %-12.0f %-14.3f %-10.1f %-10.1f %-10.3f "
                "%.3f\n",
                p.sessions, p.batch, p.opsPerSec,
                p.bytesPerSec / 1e6, p.p50Us, p.p99Us, p.cryptoMs,
                p.transportMs);
            sweep.push_back(p);
        }
    }

    auto find = [&](uint32_t sessions, size_t batch) -> PointResult * {
        for (PointResult &p : sweep)
            if (p.sessions == sessions && p.batch == batch)
                return &p;
        return nullptr;
    };
    PointResult *s1b1 = find(1, 1);
    PointResult *s1b32 = find(1, 32);
    PointResult *s4b32 = find(4, 32);
    check(s1b1 && s1b32 && s4b32, "gate configurations missing");
    double speedup = 0;
    if (s1b1 && s1b32 && s1b1->opsPerSec > 0) {
        speedup = s1b32->opsPerSec / s1b1->opsPerSec;
        std::printf("\nbatch=32 vs batch=1 (1 session): %.1fx ops/s\n",
                    speedup);
        check(speedup >= 5.0,
              "batch=32 speedup below the 5x acceptance floor");
    }

    // ---- Traced rerun: artifacts + determinism ----------------------
    // One mid-sweep point is rerun with tracing enabled (twice, same
    // seed) to publish trace/metrics artifacts and to enforce that
    // (a) per-phase span sums match the cost model within 1% and
    // (b) same-seed traces are byte-identical.
    {
        TracedArtifacts first;
        TracedArtifacts second;
        PointResult t1 = runPoint(2, 8, &first);
        PointResult t2 = runPoint(2, 8, &second);
        check(t1.ok && t2.ok, "traced point failed");
        check(first.traceJson == second.traceJson,
              "same-seed traces are not byte-identical");
        check(first.metricsText == second.metricsText,
              "same-seed metrics dumps are not byte-identical");
        auto within1pct = [](double spans, double clock) {
            return std::fabs(spans - clock) <= clock / 100.0;
        };
        check(within1pct(first.cryptoSpanMs, first.cryptoClockMs),
              "crypto span sum off the cost model by more than 1%");
        check(within1pct(first.transportSpanMs, first.transportClockMs),
              "transport span sum off the cost model by more than 1%");
        std::printf("\ntraced point (2 sessions, batch 8): crypto "
                    "%.3f/%.3f ms, transport %.3f/%.3f ms "
                    "(spans/clock), deterministic=%s\n",
                    first.cryptoSpanMs, first.cryptoClockMs,
                    first.transportSpanMs, first.transportClockMs,
                    first.traceJson == second.traceJson ? "yes" : "NO");
        FILE *tf = std::fopen("TRACE_channel_throughput.json", "w");
        if (tf) {
            std::fwrite(first.traceJson.data(), 1,
                        first.traceJson.size(), tf);
            std::fclose(tf);
        }
        FILE *mf = std::fopen("METRICS_channel_throughput.txt", "w");
        if (mf) {
            std::fwrite(first.metricsText.data(), 1,
                        first.metricsText.size(), mf);
            std::fclose(mf);
        }
        check(tf != nullptr && mf != nullptr,
              "cannot write trace/metrics artifacts");
    }

    // ---- JSON artifact ----------------------------------------------
    const char *outPath =
        argc > 1 ? argv[1] : "BENCH_channel_throughput.json";
    FILE *f = std::fopen(outPath, "w");
    if (!f) {
        std::printf("cannot open %s\n", outPath);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"channel_throughput\",\n");
    std::fprintf(f, "  \"ops_per_session\": %zu,\n", kOpsPerSession);
    std::fprintf(f, "  \"violations\": %d,\n", violations);
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
        const PointResult &p = sweep[i];
        std::fprintf(
            f,
            "    {\"sessions\": %u, \"batch\": %zu, \"ops\": %zu, "
            "\"elapsed_ms\": %.3f, \"ops_per_sec\": %.1f, "
            "\"bytes_per_sec\": %.1f, \"p50_us\": %.2f, "
            "\"p99_us\": %.2f, \"crypto_ms\": %.3f, "
            "\"transport_ms\": %.3f}%s\n",
            p.sessions, p.batch, p.ops, p.elapsedMs, p.opsPerSec,
            p.bytesPerSec, p.p50Us, p.p99Us, p.cryptoMs, p.transportMs,
            i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"gates\": {\n");
    std::fprintf(f,
                 "    \"s1_b1_ops_per_sec\": {\"value\": %.1f, "
                 "\"direction\": \"higher\"},\n",
                 s1b1 ? s1b1->opsPerSec : 0.0);
    std::fprintf(f,
                 "    \"s1_b32_ops_per_sec\": {\"value\": %.1f, "
                 "\"direction\": \"higher\"},\n",
                 s1b32 ? s1b32->opsPerSec : 0.0);
    std::fprintf(f,
                 "    \"s4_b32_ops_per_sec\": {\"value\": %.1f, "
                 "\"direction\": \"higher\"},\n",
                 s4b32 ? s4b32->opsPerSec : 0.0);
    std::fprintf(f,
                 "    \"batch32_speedup_x\": {\"value\": %.2f, "
                 "\"direction\": \"higher\"}\n",
                 speedup);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", outPath);

    if (violations) {
        std::printf("CHANNEL THROUGHPUT BENCH FAILED: %d violation(s)\n",
                    violations);
        return 1;
    }
    std::printf("all %zu sweep points passed\n", sweep.size());
    return 0;
}
