/**
 * @file
 * Reproduces paper Table 3: protection of secrets in the secure CL
 * booting flow. For every step ①-⑨ the corresponding attack from the
 * threat model is executed against a fresh platform, and the row is
 * "protected" iff the flow detects/neutralizes it (the executable
 * form of §4.6's security analysis).
 */

#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "bitstream/compiler.hpp"
#include "common/hex.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {100, 100, 0, 0};
    return accel;
}

struct Row
{
    const char *steps;
    const char *operation;
    const char *secret;
    const char *attack;
    std::function<bool()> protectedCheck; ///< true = attack defeated
};

} // namespace

int
main()
{
    bench::banner("Table 3: protection of secrets in secure CL booting");

    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    std::vector<Row> rows;

    rows.push_back({"(1)(2)", "Remote Attest.", "H, Loc",
                    "MITM corrupts the quote in the RA response",
                    [] {
                        Testbed tb;
                        tb.installCl(loopbackAccel());
                        tb.network().setInterposer(
                            [](const std::string &, const std::string &,
                               const std::string &m, Bytes &p) {
                                if (m == "raRequest:response" &&
                                    p.size() > 80)
                                    p[80] ^= 1;
                                return true;
                            });
                        return !tb.runDeployment().ok;
                    }});

    rows.push_back({"(3)", "Local Attest.", "H, Loc",
                    "OS tampers with the metadata crossing the LA "
                    "channel",
                    [] {
                        // Corrupt the digest the user enclave would
                        // forward: the SM enclave then deploys nothing
                        // (digest mismatch) and the report says so.
                        Testbed tb;
                        tb.installCl(loopbackAccel());
                        tb.metadata().digestH[5] ^= 1;
                        return !tb.runDeployment().ok;
                    }});

    rows.push_back({"(4)", "Remote Attest.", "Key_device",
                    "OS swaps its own wrap key into the key request",
                    [] {
                        // Covered in depth by unit tests; here the
                        // manufacturer path demonstrates the binding:
                        // any quote/wrap-key mismatch is refused, so
                        // the device key never reaches a non-enclave.
                        Testbed tb;
                        tb.installCl(loopbackAccel());
                        manufacturer::KeyRequest req;
                        req.deviceDna = tb.device().dna().value;
                        req.quote = Bytes(64, 7); // OS-forged quote
                        req.wrapPubKey = Bytes(32, 9);
                        auto resp = tb.mft().handleKeyRequest(req);
                        return resp.status != 0;
                    }});

    rows.push_back({"(5)", "Bit. Verification", "Bitstream",
                    "cloud storage substitutes a trojan bitstream",
                    [] {
                        Testbed tb;
                        tb.installCl(loopbackAccel());
                        tb.storedBitstream()[2000] ^= 0xff;
                        auto outcome = tb.runDeployment();
                        return !outcome.ok &&
                               outcome.failure.find("digest") !=
                                   std::string::npos;
                    }});

    rows.push_back({"(6)(7)", "Bit. Manip. + Enc.", "Key_attest",
                    "shell records the deployed blob and scans it for "
                    "the injected key",
                    [] {
                        TestbedConfig cfg;
                        cfg.maliciousShell = true;
                        Testbed tb(cfg);
                        tb.installCl(loopbackAccel());
                        if (!tb.runDeployment().ok)
                            return false;
                        tb.device().setReadbackEnabled(true);
                        Bytes key = bitstream::extractDesign(
                                        tb.device().readback(0))
                                        .findCell(tb.layout()
                                                      .keyAttestPath)
                                        ->init;
                        std::string blob = hexEncode(
                            tb.maliciousShell()->capturedBitstream());
                        return blob.find(hexEncode(key)) ==
                               std::string::npos;
                    }});

    rows.push_back({"(8)", "CL Loading", "Key_attest",
                    "shell flips bits in the encrypted bitstream",
                    [] {
                        TestbedConfig cfg;
                        cfg.maliciousShell = true;
                        cfg.attackPlan.tamperBitstream = true;
                        cfg.attackPlan.tamperOffset = 12345;
                        Testbed tb(cfg);
                        tb.installCl(loopbackAccel());
                        return !tb.runDeployment().ok;
                    }});

    rows.push_back({"(8)", "CL Loading", "Key_attest",
                    "shell substitutes its own CL entirely",
                    [] {
                        TestbedConfig cfg;
                        cfg.maliciousShell = true;
                        Testbed tb(cfg);
                        tb.installCl(loopbackAccel());
                        tb.maliciousShell()->plan().substituteBitstream =
                            tb.storedBitstream(); // plaintext replay
                        return !tb.runDeployment().ok;
                    }});

    rows.push_back({"(9)", "CL Attestation", "Key_attest",
                    "shell forges/corrupts attestation registers",
                    [] {
                        TestbedConfig cfg;
                        cfg.maliciousShell = true;
                        cfg.attackPlan.smWindowDataTamperMask = 1;
                        Testbed tb(cfg);
                        tb.installCl(loopbackAccel());
                        return !tb.runDeployment().ok;
                    }});

    rows.push_back({"runtime", "Secure Reg. Channel", "Key_session",
                    "shell replays recorded register writes",
                    [] {
                        TestbedConfig cfg;
                        cfg.maliciousShell = true;
                        Testbed tb(cfg);
                        tb.installCl(loopbackAccel());
                        if (!tb.runDeployment().ok)
                            return false;
                        if (!tb.userApp().secureWrite(0x00, 111))
                            return false;
                        if (!tb.userApp().secureWrite(0x00, 222))
                            return false;
                        tb.maliciousShell()->replayRecordedSmWrites();
                        return tb.userApp().secureRead(0x00) == 222u;
                    }});

    std::printf("%-8s %-22s %-12s protected?  attack\n", "steps",
                "operation", "secret");
    bool allProtected = true;
    for (const auto &row : rows) {
        bool ok = row.protectedCheck();
        allProtected = allProtected && ok;
        std::printf("%-8s %-22s %-12s %-11s %s\n", row.steps,
                    row.operation, row.secret, ok ? "YES" : "** NO **",
                    row.attack);
    }
    std::printf("\n%s\n", allProtected
                              ? "all Table 3 protections hold"
                              : "SOME PROTECTIONS FAILED");
    return allProtected ? 0 : 1;
}
