/**
 * @file
 * Microbenchmarks of the bitstream toolchain (google-benchmark):
 * compile, digest, manipulate, encrypt, decrypt-load at several
 * partition sizes — the native numbers behind the Figure 9
 * model-vs-native discussion in EXPERIMENTS.md.
 */

#include <benchmark/benchmark.h>

#include "bitstream/compiler.hpp"
#include "bitstream/encryptor.hpp"
#include "bitstream/manipulator.hpp"
#include "crypto/random.hpp"
#include "crypto/sha256.hpp"
#include "fpga/device.hpp"
#include "salus/cl_builder.hpp"
#include "salus/secrets.hpp"
#include "salus/sm_logic.hpp"

using namespace salus;
using namespace salus::bitstream;

namespace {

/** Partition with frameCount chosen to hit the requested body size. */
PartitionGeometry
geometryFor(size_t bodyBytes)
{
    PartitionGeometry g;
    g.partitionId = 0;
    g.frameStart = 0;
    g.frameSize = 256;
    g.frameCount = uint32_t(bodyBytes / g.frameSize);
    g.capacity = {355040, 710080, 696, 2265};
    return g;
}

core::ClDesign
sampleCl()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {1000, 1000, 4, 0};
    return core::buildClDesign("bench_top", accel);
}

void
BM_BitstreamCompile(benchmark::State &state)
{
    core::ClDesign design = sampleCl();
    PartitionGeometry geometry = geometryFor(size_t(state.range(0)));
    Compiler compiler("bench-dev");
    for (auto _ : state)
        benchmark::DoNotOptimize(
            compiler.compile(design.netlist, geometry));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_BitstreamCompile)->Arg(1 << 20)->Arg(8 << 20);

void
BM_BitstreamDigest(benchmark::State &state)
{
    core::ClDesign design = sampleCl();
    Compiler compiler("bench-dev");
    auto compiled = compiler.compile(design.netlist,
                                     geometryFor(size_t(state.range(0))));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            crypto::Sha256::digest(compiled.file));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_BitstreamDigest)->Arg(1 << 20)->Arg(8 << 20);

void
BM_BitstreamManipulate(benchmark::State &state)
{
    core::ClDesign design = sampleCl();
    Compiler compiler("bench-dev");
    auto compiled = compiler.compile(design.netlist,
                                     geometryFor(size_t(state.range(0))));
    Bytes newKey(core::kKeyAttestSize, 0x42);
    for (auto _ : state) {
        Manipulator::patchCell(compiled.file, compiled.logicLocations,
                               design.layout.keyAttestPath, newKey);
        benchmark::DoNotOptimize(compiled.file.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_BitstreamManipulate)->Arg(1 << 20)->Arg(8 << 20);

void
BM_BitstreamEncrypt(benchmark::State &state)
{
    core::ClDesign design = sampleCl();
    Compiler compiler("bench-dev");
    auto compiled = compiler.compile(design.netlist,
                                     geometryFor(size_t(state.range(0))));
    crypto::CtrDrbg rng(uint64_t(1));
    Bytes key = rng.bytes(32);
    EncryptedHeader header{"bench-dev", 0};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            encryptBitstream(compiled.file, key, header, rng));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_BitstreamEncrypt)->Arg(1 << 20)->Arg(8 << 20);

void
BM_DeviceDecryptLoad(benchmark::State &state)
{
    // The fabric side: GCM-open + whole-partition configure + design
    // instantiation.
    fpga::ensureBuiltinIps();
    core::SmLogic::registerIp();

    size_t body = size_t(state.range(0));
    fpga::DeviceModelInfo model;
    model.name = "bench-dev";
    model.frameSize = 256;
    model.totalFrames = uint32_t(body / 256) * 2;
    model.dramBytes = 1 << 20;
    PartitionGeometry g = geometryFor(body);
    g.frameStart = uint32_t(body / 256);
    model.partitions.push_back(g);

    crypto::CtrDrbg rng(uint64_t(2));
    fpga::FpgaDevice device(model, fpga::DeviceDna{1234});
    Bytes key = rng.bytes(32);
    device.fuseKey(key);

    core::ClDesign design = sampleCl();
    Compiler compiler("bench-dev");
    auto compiled = compiler.compile(design.netlist, g);
    core::ClSecrets secrets = core::ClSecrets::generate(rng);
    Manipulator::patchCell(compiled.file, compiled.logicLocations,
                           design.layout.keyAttestPath,
                           secrets.keyAttest);
    Manipulator::patchCell(compiled.file, compiled.logicLocations,
                           design.layout.keySessionPath,
                           secrets.keySession);
    Manipulator::patchCell(compiled.file, compiled.logicLocations,
                           design.layout.ctrSessionPath,
                           secrets.ctrBytes());
    Bytes blob = encryptBitstream(compiled.file, key,
                                  EncryptedHeader{"bench-dev", 0}, rng);

    for (auto _ : state) {
        if (device.loadEncryptedPartial(blob) != fpga::LoadStatus::Ok)
            std::abort();
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_DeviceDecryptLoad)->Arg(1 << 20)->Arg(8 << 20);

void
BM_SeuScrub(benchmark::State &state)
{
    // Scrub pass over a clean partition (the periodic SEM-IP duty).
    fpga::ensureBuiltinIps();
    core::SmLogic::registerIp();

    size_t body = size_t(state.range(0));
    fpga::DeviceModelInfo model;
    model.name = "bench-dev";
    model.frameSize = 256;
    model.totalFrames = uint32_t(body / 256) * 2;
    model.dramBytes = 1 << 20;
    PartitionGeometry g = geometryFor(body);
    g.frameStart = uint32_t(body / 256);
    model.partitions.push_back(g);

    crypto::CtrDrbg rng(uint64_t(5));
    fpga::FpgaDevice device(model, fpga::DeviceDna{77});
    Bytes key = rng.bytes(32);
    device.fuseKey(key);
    core::ClDesign design = sampleCl();
    Compiler compiler("bench-dev");
    auto compiled = compiler.compile(design.netlist, g);
    Bytes blob = encryptBitstream(compiled.file, key,
                                  EncryptedHeader{"bench-dev", 0}, rng);
    if (device.loadEncryptedPartial(blob) != fpga::LoadStatus::Ok)
        std::abort();

    for (auto _ : state) {
        auto report = device.scrub(0);
        if (report.uncorrectable)
            std::abort();
        benchmark::DoNotOptimize(report.framesScanned);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_SeuScrub)->Arg(1 << 20)->Arg(8 << 20);

} // namespace

BENCHMARK_MAIN();
