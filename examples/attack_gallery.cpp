/**
 * @file
 * Attack gallery: every adversary from the threat model (paper §3.1)
 * takes a shot at the platform, and the program narrates how each
 * attack is detected or neutralized. This is DESIGN.md §5's security
 * argument, live.
 *
 *   $ ./attack_gallery
 */

#include <cstdio>

#include "common/hex.hpp"
#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

int failures = 0;

void
report(const char *attack, bool defended, const std::string &detail)
{
    std::printf("  [%s] %-46s %s\n", defended ? "DEFENDED" : "BREACHED",
                attack, detail.c_str());
    if (!defended)
        ++failures;
}

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {100, 100, 0, 0};
    return accel;
}

} // namespace

int
main()
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    std::printf("=== Salus attack gallery ===\n\n");

    std::printf("1. Malicious shell flips one bit in the encrypted "
                "bitstream during loading:\n");
    {
        TestbedConfig cfg;
        cfg.maliciousShell = true;
        cfg.attackPlan.tamperBitstream = true;
        cfg.attackPlan.tamperOffset = 31337;
        Testbed tb(cfg);
        tb.installCl(loopbackAccel());
        auto outcome = tb.runDeployment();
        report("bitstream tamper at load time", !outcome.ok,
               outcome.failure);
    }

    std::printf("\n2. Cloud storage serves a different CL than the "
                "one the data owner expects:\n");
    {
        Testbed tb;
        tb.installCl(loopbackAccel());
        tb.storedBitstream()[4242] ^= 0x80;
        auto outcome = tb.runDeployment();
        report("trojan bitstream from storage", !outcome.ok,
               outcome.failure);
    }

    std::printf("\n3. Shell records and replays secure-channel "
                "register writes:\n");
    {
        TestbedConfig cfg;
        cfg.maliciousShell = true;
        Testbed tb(cfg);
        tb.installCl(loopbackAccel());
        if (!tb.runDeployment().ok)
            return 1;
        tb.userApp().secureWrite(0x00, 1111);
        tb.userApp().secureWrite(0x00, 2222);
        size_t replayed = tb.maliciousShell()->replayRecordedSmWrites();
        auto value = tb.userApp().secureRead(0x00);
        report("replay of recorded transactions",
               value.has_value() && *value == 2222,
               "replayed " + std::to_string(replayed) +
                   " txns; register still holds the latest value");
    }

    std::printf("\n4. Shell snoops every bus transaction looking for "
                "the data key:\n");
    {
        TestbedConfig cfg;
        cfg.maliciousShell = true;
        Testbed tb(cfg);
        tb.installCl(loopbackAccel());
        if (!tb.runDeployment().ok)
            return 1;
        tb.userApp().pushDataKeyToCl(0x20);
        bool leaked = false;
        const Bytes &key = tb.userApp().dataKey();
        for (const auto &txn : tb.maliciousShell()->snoopLog()) {
            for (int i = 0; i < 4; ++i)
                leaked |= txn.data == loadLe64(key.data() + 8 * i);
        }
        report("bus snooping for key material", !leaked,
               std::to_string(tb.maliciousShell()->snoopLog().size()) +
                   " transactions observed, zero plaintext key words");
    }

    std::printf("\n5. Shell attempts an ICAP configuration-memory "
                "scan:\n");
    {
        TestbedConfig cfg;
        cfg.maliciousShell = true;
        Testbed tb(cfg);
        tb.installCl(loopbackAccel());
        if (!tb.runDeployment().ok)
            return 1;
        auto scan = tb.maliciousShell()->tryConfigScan();
        report("ICAP readback scan", !scan.has_value(),
               "readback disabled by the Salus ICAP IP (paper 5.1.2)");

        // ...and what would happen on a legacy device:
        tb.device().setReadbackEnabled(true);
        auto legacyScan = tb.maliciousShell()->tryConfigScan();
        std::printf("     (legacy ICAP would leak %zu bytes of "
                    "configuration -- the attack Salus closes)\n",
                    legacyScan ? legacyScan->size() : 0);
    }

    std::printf("\n6. Network MITM corrupts the attestation report on "
                "the WAN:\n");
    {
        Testbed tb;
        tb.installCl(loopbackAccel());
        tb.network().setInterposer(
            [](const std::string &, const std::string &,
               const std::string &method, Bytes &payload) {
                if (method == "raRequest:response" && payload.size() > 99)
                    payload[99] ^= 4;
                return true;
            });
        auto outcome = tb.runDeployment();
        report("quote tamper in flight", !outcome.ok, outcome.failure);
    }

    std::printf("\n7. CSP reports a stale (revoked) platform:\n");
    {
        Testbed tb;
        tb.installCl(loopbackAccel());
        tb.mft().verificationService().revokePlatform("platform-1");
        auto outcome = tb.runDeployment();
        report("revoked platform attestation key", !outcome.ok,
               outcome.failure);
    }

    std::printf("\n8. Flaky network: 10%% of all messages vanish in "
                "flight (not an attack -- yet):\n");
    {
        TestbedConfig cfg;
        cfg.faultPlan.seed = 17;
        cfg.faultPlan.add(sim::FaultRule::dropRpc(0.10));
        Testbed tb(cfg);
        tb.installCl(loopbackAccel());
        auto outcome = tb.runDeployment();
        report("10% message loss (transient)", outcome.ok,
               "recovered: " +
                   std::to_string(
                       tb.faultInjector().stats().rpcDropped) +
                   " message(s) lost, " +
                   std::to_string(outcome.attempts) +
                   " deployment attempt(s)");

        // The same retry machinery must NOT help an adversary who
        // corrupts every attestation response: security rejections
        // are terminal, so the deployment fails closed instead of
        // retrying the tamper into acceptance.
        TestbedConfig evil;
        evil.faultPlan.seed = 11;
        evil.faultPlan.add(sim::FaultRule::corruptRpc(1.0).on(
            endpoints::kCloudHost, endpoints::kUserClient,
            "raRequest:response"));
        Testbed tb2(evil);
        tb2.installCl(loopbackAccel());
        auto tampered = tb2.runDeployment();
        report("persistent response tampering", !tampered.ok,
               tampered.failure + " [" +
                   net::failureClassName(tampered.failureClass) + "]");
    }

    std::printf("\n9. Host rolls the SM enclave's sealed journal back "
                "to resurrect retired session keys:\n");
    {
        Testbed tb;
        tb.installCl(loopbackAccel());
        if (!tb.runDeployment().ok)
            return 1;
        Bytes stale = tb.sealedJournal();
        tb.userApp().rekeySession(); // journal (and counter) advance
        tb.sealedJournal() = stale;  // host restores the older blob
        auto recovery = tb.crashAndRecoverSmApp();
        bool rejected =
            recovery.status ==
                SmEnclaveApp::RecoveryStatus::RolledBack &&
            tb.smApp().failedClosed() && !tb.runDeployment().ok;
        report("journal rollback on SM restart", rejected,
               "version " + std::to_string(recovery.version) +
                   " < monotonic counter " +
                   std::to_string(recovery.counter) +
                   "; enclave fails closed");
    }

    std::printf("\n10. Malicious shell forges heartbeats for a dead "
                "device to keep it in service:\n");
    {
        TestbedConfig cfg;
        cfg.maliciousShell = true;
        cfg.attackPlan.forgeHeartbeats = true;
        cfg.health.minSamples = 1;
        Testbed tb(cfg);
        tb.installCl(loopbackAccel());
        if (!tb.runDeployment().ok)
            return 1;
        auto beat = tb.smApp().heartbeatDevice(0);
        tb.supervisor().pollOnce();
        bool quarantined =
            tb.supervisor().state(0) == fpga::HealthState::Quarantined &&
            tb.supervisor().tracker(0).permanentlyQuarantined();
        report("forged liveness heartbeats",
               beat.reachable && !beat.authentic && quarantined,
               "response MAC fails under Key_attest; device "
               "permanently quarantined");
    }

    std::printf("\n%s\n", failures == 0
                              ? "All attacks defended."
                              : "SOME ATTACKS SUCCEEDED -- see above.");
    return failures == 0 ? 0 : 1;
}
