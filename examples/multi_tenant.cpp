/**
 * @file
 * Multi-tenant rollover on one physical FPGA: tenant A deploys, runs,
 * and is torn down; tenant B deploys a different CL on the same
 * device. Demonstrates the properties that make per-deployment RoT
 * injection the right design (paper §2.3, §3.2):
 *
 *  - the device key is multiplexed across tenants without ever being
 *    re-fused or shown to either of them;
 *  - every deployment gets a FRESH Key_attest, so nothing tenant A
 *    learned helps against tenant B;
 *  - partial reconfiguration wipes the whole partition: no state of
 *    tenant A survives for tenant B to read (Observation 2).
 *
 *   $ ./multi_tenant
 */

#include <cstdio>

#include "bitstream/compiler.hpp"
#include "fpga/ip.hpp"
#include "salus/reg_channel.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

namespace {

netlist::Cell
accelNamed(const char *name)
{
    netlist::Cell accel;
    accel.path = name;
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {500, 500, 2, 0};
    return accel;
}

Bytes
injectedKeyAttest(Testbed &tb)
{
    // White-box inspection for the demo: read the injected RoT out of
    // configuration memory (our own device; readback re-enabled).
    bool was = tb.device().readbackEnabled();
    tb.device().setReadbackEnabled(true);
    netlist::Netlist design =
        bitstream::extractDesign(tb.device().readback(0));
    Bytes key = design.findCell(tb.layout().keyAttestPath)->init;
    tb.device().setReadbackEnabled(was);
    return key;
}

} // namespace

int
main()
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    Testbed tb; // ONE device, shared across tenants
    std::printf("device DNA: %014llx (key fused once at "
                "manufacturing)\n\n",
                static_cast<unsigned long long>(tb.device().dna().value));

    // ---- Tenant A ------------------------------------------------------
    std::printf("tenant A deploys 'alpha_engine'...\n");
    tb.installCl(accelNamed("alpha_engine"));
    if (!tb.runDeployment().ok)
        return 1;
    Bytes keyA = injectedKeyAttest(tb);
    tb.userApp().secureWrite(0x00, 0xA11CE);
    std::printf("  attested; Key_attest(A) = %02x%02x... (fresh "
                "per-deployment RoT)\n",
                keyA[0], keyA[1]);

    // Tenant A (or the shell on its behalf) records the attestation
    // key material it could observe -- which is none, but let's also
    // save the session state it DID legitimately hold.
    uint64_t tenantAStoredValue =
        tb.userApp().secureRead(0x00).value_or(0);
    std::printf("  tenant A state in CL register 0x00: %llx\n",
                static_cast<unsigned long long>(tenantAStoredValue));

    // ---- Tenant B on the same silicon ----------------------------------
    std::printf("\ntenant B deploys 'beta_engine' on the SAME "
                "device...\n");
    tb.installCl(accelNamed("beta_engine"));
    if (!tb.runDeployment().ok)
        return 1;
    Bytes keyB = injectedKeyAttest(tb);
    std::printf("  attested; Key_attest(B) = %02x%02x...\n", keyB[0],
                keyB[1]);

    if (keyA == keyB) {
        std::printf("  ERROR: RoT was reused across deployments!\n");
        return 1;
    }
    std::printf("  fresh RoT per deployment: Key_attest(A) != "
                "Key_attest(B)\n");

    // Whole-partition overwrite: tenant A's register state is gone.
    auto regNow = tb.userApp().secureRead(0x00);
    std::printf("  CL register 0x00 after reconfiguration: %llx "
                "(tenant A state wiped)\n",
                static_cast<unsigned long long>(regNow.value_or(0)));
    if (regNow.value_or(0) == tenantAStoredValue) {
        std::printf("  ERROR: tenant A state survived!\n");
        return 1;
    }

    // Tenant A's stale key is useless against tenant B's CL: a forged
    // attestation request MACed under Key_attest(A) is rejected.
    uint64_t nonce = 7;
    uint64_t staleMac = regchan::attestRequestMac(
        keyA, nonce, tb.device().dna().value);
    auto &sh = tb.shell();
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn0, nonce);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegIn1, staleMac);
    sh.registerWrite(pcie::Window::SmSecure, kSmRegCmd, kSmCmdAttest);
    uint64_t status = sh.registerRead(pcie::Window::SmSecure,
                                      kSmRegStatus);
    std::printf("  stale-key attestation against tenant B's CL: %s\n",
                status == kSmStatusRejected ? "rejected" : "ACCEPTED?!");

    std::printf("\nmulti-tenant rollover complete: isolation held.\n");
    return status == kSmStatusRejected ? 0 : 1;
}
