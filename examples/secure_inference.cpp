/**
 * @file
 * Secure ML inference on a rented cloud FPGA — the scenario the
 * paper's introduction motivates: a data owner offloads a convolution
 * layer to FaaS without the CSP ever seeing weights or feature maps.
 *
 * The input feature maps travel encrypted (AES-CTR under the data key
 * delivered through the attested channel), the accelerator decrypts
 * at its memory interface, and the result is verified against a
 * trusted CPU reference.
 *
 *   $ ./secure_inference
 */

#include <cstdio>

#include "accel/accel_ip.hpp"
#include "accel/runner.hpp"
#include "salus/sm_logic.hpp"

using namespace salus;
using namespace salus::accel;

int
main()
{
    AccelIp::registerAll();
    core::SmLogic::registerIp();

    const WorkloadSpec &spec = workload(KernelId::Conv);
    std::printf("workload: %s (3x3 convolution layer, %u LUT / %u FF / "
                "%u BRAM)\n",
                spec.name, spec.resources.luts, spec.resources.registers,
                spec.resources.brams);

    // Platform + CL deployment with full attestation.
    core::Testbed tb;
    tb.installCl(accelCellFor(spec));
    auto outcome = tb.runDeployment();
    if (!outcome.ok) {
        std::printf("deployment failed: %s\n", outcome.failure.c_str());
        return 1;
    }
    std::printf("cascaded attestation ok -- CL verified before any "
                "data left the client\n");

    // Generate a private inference request and run it through the
    // secure pipeline.
    WorkloadRunner runner(spec.id, /*seed=*/1, /*scale=*/0.4);
    std::printf("input: %zu bytes of feature maps + weights "
                "(ciphertext on the bus and in device DRAM)\n",
                runner.input().size());

    RunResult fpga = runner.runFpgaTee(tb);
    std::printf("FPGA TEE inference: %-10s  output %zu bytes, %s\n",
                sim::formatNanos(fpga.totalTime).c_str(),
                fpga.outputBytes,
                fpga.outputCorrect ? "matches trusted reference"
                                   : "OUTPUT MISMATCH");

    // Compare with running the same job inside the CPU enclave.
    RunResult cpu = runner.runCpuTee();
    std::printf("CPU TEE reference:  %-10s  (speedup %.2fx)\n",
                sim::formatNanos(cpu.totalTime).c_str(),
                double(cpu.totalTime) / double(fpga.totalTime));

    return fpga.outputCorrect ? 0 : 1;
}
