/**
 * @file
 * Quickstart: the smallest complete Salus deployment.
 *
 * One simulated platform is assembled (manufacturer, TEE-enabled
 * host, FPGA, shell, networks), a custom logic design is integrated
 * with the SM logic and compiled, and the data owner runs the
 * single-round-trip cascaded attestation before using the secure
 * register channel.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "fpga/ip.hpp"
#include "salus/sm_logic.hpp"
#include "salus/testbed.hpp"

using namespace salus;
using namespace salus::core;

int
main()
{
    // The behavioural IPs a device can instantiate must be registered
    // once per process (the "HDK" contents).
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();

    // 1. Assemble a cloud platform: manufacturer provisions the TEE
    //    and fuses a key into a fresh FPGA; the CSP boots shell +
    //    enclaves; network links user <-> cloud <-> manufacturer.
    Testbed tb;

    // 2. "Development": integrate an accelerator with the SM logic
    //    and compile the CL. The loopback IP is a stand-in for your
    //    accelerator; see secure_inference.cpp for a real one.
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {1000, 2000, 4, 8};
    tb.installCl(accel);
    std::printf("CL compiled: %zu-byte partial bitstream, digest-bound "
                "metadata published\n",
                tb.storedBitstream().size());

    // 3. "Deployment": the data owner's client drives the whole
    //    cascaded attestation -- RoT injection, encrypted CL load,
    //    CL attestation, quote verification, data-key upload.
    UserClient::Outcome outcome = tb.runDeployment();
    if (!outcome.ok) {
        std::printf("deployment failed: %s\n", outcome.failure.c_str());
        return 1;
    }
    std::printf("platform attested; data key delivered to the user "
                "enclave\n");

    // 4. Use the secure register channel (paper §4.5): writes and
    //    reads are encrypted + authenticated end to end; the shell
    //    in the middle sees only ciphertext.
    tb.userApp().secureWrite(0x00, 40);
    tb.userApp().secureWrite(0x08, 2);
    auto sum = tb.userApp().secureRead(0x80);
    std::printf("secure channel: accel computed 40 + 2 = %llu\n",
                static_cast<unsigned long long>(sum.value_or(0)));

    std::printf("total modelled boot time: %s\n",
                sim::formatNanos(tb.clock().now()).c_str());
    return 0;
}
