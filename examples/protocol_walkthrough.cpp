/**
 * @file
 * Protocol walkthrough: paper Figure 3, executed one numbered step at
 * a time with narration — the secure RoT injection and CL booting
 * flow driven manually through the public APIs instead of the
 * Testbed's one-call client. Useful as executable documentation of
 * who talks to whom, over which channel, holding which secret.
 *
 *   $ ./protocol_walkthrough
 */

#include <cstdio>

#include "salus/salus.hpp"

using namespace salus;
using namespace salus::core;

namespace {

void
step(const char *number, const char *text)
{
    std::printf("\n(%s) %s\n", number, text);
}

} // namespace

int
main()
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    crypto::CtrDrbg rng(uint64_t(2026));

    std::printf("=== Salus secure boot, step by step (Fig. 3) ===\n");

    // ---------------- manufacturing phase -----------------------------
    step("mfg", "device manufacturing: random Key_device fused into "
                "eFUSE, DNA recorded, readback-disabled ICAP");
    manufacturer::Manufacturer mft(rng);
    tee::TeePlatform platform("walkthrough-host", rng);
    mft.provisionPlatform(platform);
    mft.allowSmEnclave(SmEnclaveApp::defaultMeasurement());
    auto device = mft.manufactureFpga(fpga::testModel());
    std::printf("    device DNA %014llx, key known only to the "
                "manufacturer's distribution service\n",
                static_cast<unsigned long long>(device->dna().value));

    // ---------------- development phase --------------------------------
    step("dev", "developer integrates the SM logic HDK, compiles the "
                "CL, records H and Loc_*, signs the release");
    DeveloperKit developer("walkthrough-dev", rng);
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {1000, 1000, 4, 0};
    ClArtifact artifact =
        developer.develop("walkthrough-v1", accel, device->model());
    std::printf("    artifact: %zu-byte bitstream, H = %02x%02x..., "
                "signed by the developer\n",
                artifact.bitstream.size(),
                ClMetadata::deserialize(artifact.metadata).digestH[0],
                ClMetadata::deserialize(artifact.metadata).digestH[1]);

    // ---------------- deployment phase ---------------------------------
    sim::VirtualClock clock;
    sim::CostModel cost;
    net::Network network(clock, cost);
    network.addEndpoint(endpoints::kUserClient);
    network.addEndpoint(endpoints::kCloudHost);
    network.addEndpoint(endpoints::kManufacturer);
    network.link(endpoints::kUserClient, endpoints::kCloudHost,
                 sim::LinkKind::Wan);
    network.link(endpoints::kCloudHost, endpoints::kManufacturer,
                 sim::LinkKind::IntraCloud);

    shell::Shell shell(*device, clock, cost);

    step("1", "CSP boots the instance: user enclave + SM enclave are "
              "loaded on the TEE-enabled host");
    if (!verifyArtifact(artifact, developer.publicKey())) {
        std::printf("artifact verification failed\n");
        return 1;
    }
    Bytes storedBitstream = artifact.bitstream; // cloud storage copy

    SmEnclaveDeps smDeps;
    smDeps.shell = &shell;
    smDeps.network = &network;
    smDeps.selfEndpoint = endpoints::kCloudHost;
    smDeps.manufacturerEndpoint = endpoints::kManufacturer;
    smDeps.instanceDeviceDna = device->dna().value;
    smDeps.fetchBitstream = [&] { return storedBitstream; };
    SmEnclaveApp smApp(platform, smDeps);

    SmTransport transport;
    transport.la1 = [&](ByteView m) { return smApp.laAnswer(m); };
    transport.la3 = [&](ByteView m) { return smApp.laConfirm(m); };
    transport.channel = [&](ByteView m) {
        return smApp.channelRequest(m);
    };
    UserEnclaveApp userApp(platform, UserEnclaveApp::defaultImage(),
                           SmEnclaveApp::defaultMeasurement(), transport);

    network.on(endpoints::kManufacturer, "keyRequest", [&](ByteView req) {
        return mft
            .handleKeyRequest(manufacturer::KeyRequest::deserialize(req))
            .serialize();
    });
    network.on(endpoints::kCloudHost, "raRequest", [&](ByteView req) {
        return userApp.handleRaRequest(req);
    });
    network.on(endpoints::kCloudHost, "dataKey", [&](ByteView req) {
        Bytes ack(1);
        ack[0] = userApp.acceptDataKey(req) ? 1 : 0;
        return ack;
    });

    step("2", "data owner sends the RA request + bitstream metadata "
              "(H, Loc_*) over the WAN");
    step("3..7", "inside that one round trip: local attestation, "
                 "metadata hand-off, Key_device release to the "
                 "attested SM enclave, digest check, RoT injection by "
                 "bitstream manipulation, encryption, CL load, and "
                 "the SipHash CL attestation");
    ClientConfig cfg;
    cfg.expectedUserEnclave = userApp.measurement();
    cfg.expectedSm = SmEnclaveApp::defaultMeasurement();
    cfg.metadata = ClMetadata::deserialize(artifact.metadata);
    cfg.selfEndpoint = endpoints::kUserClient;
    cfg.cloudEndpoint = endpoints::kCloudHost;
    UserClient client(cfg, mft.verificationService(), network, rng);
    UserClient::Outcome outcome = client.deployAndAttest();
    if (!outcome.ok) {
        std::printf("deployment failed: %s\n", outcome.failure.c_str());
        return 1;
    }

    step("8", "deferred RA report received and verified by the client "
              "-> it covers user enclave + SM enclave + CL in one "
              "quote (cascaded attestation)");
    step("9", "data owner uploads the data key, wrapped to the "
              "attested enclave; runtime traffic flows over the "
              "secure register channel");
    userApp.secureWrite(0x00, 20);
    userApp.secureWrite(0x08, 22);
    std::printf("    secure channel sanity: 20 + 22 = %llu\n",
                static_cast<unsigned long long>(
                    userApp.secureRead(0x80).value_or(0)));

    std::printf("\nshell telemetry: %llu register ops, %llu B DMA, "
                "%llu deployment(s) -- all opaque ciphertext\n",
                static_cast<unsigned long long>(
                    shell.ioStats().registerReads +
                    shell.ioStats().registerWrites),
                static_cast<unsigned long long>(
                    shell.ioStats().dmaBytesToDevice +
                    shell.ioStats().dmaBytesFromDevice),
                static_cast<unsigned long long>(
                    shell.ioStats().deployments));
    std::printf("virtual boot time: %s\n",
                sim::formatNanos(clock.now()).c_str());
    return 0;
}
