#!/usr/bin/env python3
"""Perf-regression gate for the BENCH_*.json artifacts.

Compares a freshly produced bench JSON against the committed baseline
in bench/baselines/. Every gate in the baseline's "gates" section is
checked with a relative threshold (default +-15%):

  direction "higher": fail when current < baseline * (1 - threshold)
  direction "lower":  fail when current > baseline * (1 + threshold)

Gates may be written either as {"value": x, "direction": "higher"} or
as a bare number (then --key must supply the direction). Additional
dotted-path keys outside the gates section can be checked with
--key path.to.value:direction.

Exit status: 0 all gates pass, 1 regression or malformed input.

A gate present in the baseline but MISSING from the fresh JSON is a
named failure (one per missing gate), never a pass: a bench that stops
emitting a metric must not sail through the perf gate.

--self-test degrades every baseline gate by 20% in memory and asserts
the checker flags each one, then deletes every gate from a synthetic
current and asserts each deletion is flagged too -- run in CI so a
silently broken gate cannot pass.

Refreshing baselines (intentional perf change): rebuild, run the bench
binaries, then either run with --update (rewrites the baseline's gate
values in place from --current, keeping directions and every other
field) or copy the new JSONs over bench/baselines/ manually. Commit
the refreshed baselines in the same PR as the change that moved the
numbers. The CI workflow_dispatch input "refresh-baselines" runs
--update and publishes the result as an artifact.
"""

import argparse
import json
import sys


def dig(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


def as_gate(raw, fallback_direction=None):
    """Normalizes a gate entry to (value, direction)."""
    if isinstance(raw, dict):
        return float(raw["value"]), raw.get(
            "direction", fallback_direction or "higher"
        )
    return float(raw), (fallback_direction or "higher")


def check_gate(name, base_value, cur_value, direction, threshold):
    """Returns an error string, or None when the gate passes."""
    if direction == "higher":
        floor = base_value * (1.0 - threshold)
        if cur_value < floor:
            return (
                f"{name}: {cur_value:.3f} < floor {floor:.3f} "
                f"(baseline {base_value:.3f}, -{threshold:.0%})"
            )
    elif direction == "lower":
        ceil = base_value * (1.0 + threshold)
        if cur_value > ceil:
            return (
                f"{name}: {cur_value:.3f} > ceiling {ceil:.3f} "
                f"(baseline {base_value:.3f}, +{threshold:.0%})"
            )
    else:
        return f"{name}: unknown direction {direction!r}"
    return None


def collect_gates(baseline, current, keys):
    """Yields (name, base_value, cur_value, direction) for every gate.

    A gate the current JSON no longer carries yields cur_value None so
    the caller reports EVERY missing metric as a named failure instead
    of aborting on the first one."""
    gates = baseline.get("gates", {})
    for name, raw in gates.items():
        base_value, direction = as_gate(raw)
        try:
            cur_raw = dig(current, f"gates.{name}")
        except KeyError:
            yield name, base_value, None, direction
            continue
        cur_value, _ = as_gate(cur_raw, direction)
        yield name, base_value, cur_value, direction
    for spec in keys:
        if ":" not in spec:
            raise ValueError(f"--key {spec!r}: expected path:direction")
        path, direction = spec.rsplit(":", 1)
        base_value, _ = as_gate(dig(baseline, path), direction)
        try:
            cur_value, _ = as_gate(dig(current, path), direction)
        except KeyError:
            yield path, base_value, None, direction
            continue
        yield path, base_value, cur_value, direction


def run_checks(baseline, current, keys, threshold):
    failures = []
    checked = 0
    for name, base, cur, direction in collect_gates(
        baseline, current, keys
    ):
        checked += 1
        if cur is None:
            err = (
                f"{name}: missing from current bench JSON "
                f"(baseline {base:.3f})"
            )
            print(f"  [FAIL] {name} ({direction}): "
                  f"baseline {base:.3f} -> MISSING")
            failures.append(err)
            continue
        err = check_gate(name, base, cur, direction, threshold)
        arrow = "FAIL" if err else "ok"
        print(
            f"  [{arrow:>4}] {name} ({direction}): "
            f"baseline {base:.3f} -> current {cur:.3f}"
        )
        if err:
            failures.append(err)
    return checked, failures


def self_test(baseline, keys, threshold):
    """Degrades every gate past the threshold and asserts detection,
    then deletes every gate and asserts each deletion is flagged."""
    degrade = threshold + 0.05  # 20% at the default 15% threshold
    missed = []
    checked = 0
    for name, base, _cur, direction in collect_gates(
        baseline, baseline, keys
    ):
        checked += 1
        bad = (
            base * (1.0 - degrade)
            if direction == "higher"
            else base * (1.0 + degrade)
        )
        err = check_gate(name, base, bad, direction, threshold)
        if err is None:
            missed.append(
                f"{name}: {degrade:.0%} degradation NOT detected"
            )
    if not checked:
        print("self-test: no gates found", file=sys.stderr)
        return 1
    # Deleted-metric case: a current JSON with an empty gates section
    # must produce one named failure per baseline gate.
    gutted = {
        k: ({} if k == "gates" else v) for k, v in baseline.items()
    }
    deleted = 0
    for name, _base, cur, _direction in collect_gates(
        baseline, gutted, []
    ):
        if cur is not None:
            missed.append(f"{name}: deletion NOT detected")
        else:
            deleted += 1
    if missed:
        for m in missed:
            print(f"self-test FAILED: {m}", file=sys.stderr)
        return 1
    print(
        f"self-test passed: {degrade:.0%} degradation detected on "
        f"all {checked} gate(s), deletion detected on {deleted}"
    )
    return 0


def update_baseline(baseline, current, path):
    """Rewrites the baseline's gate values from the current run.

    Directions and non-gate fields (metadata, raw samples) are kept;
    only the measured values move. Returns the number of gates
    refreshed."""
    updated = 0
    gates = baseline.get("gates", {})
    for name, raw in gates.items():
        cur_value, _ = as_gate(
            dig(current, f"gates.{name}"), as_gate(raw)[1]
        )
        if isinstance(raw, dict):
            raw["value"] = cur_value
        else:
            gates[name] = cur_value
        updated += 1
    if not updated:
        print("no gates found to update", file=sys.stderr)
        return 0
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"updated {updated} gate(s) in {path}")
    return updated


def main():
    ap = argparse.ArgumentParser(
        description="Bench perf-regression gate"
    )
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current")
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument(
        "--key",
        action="append",
        default=[],
        metavar="PATH:DIRECTION",
        help="extra dotted-path gate, e.g. detection_ms.mean:lower",
    )
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline's gate values from --current "
        "instead of gating",
    )
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.self_test:
        return self_test(baseline, args.key, args.threshold)

    if not args.current:
        ap.error("--current is required unless --self-test")
    with open(args.current) as f:
        current = json.load(f)

    if args.update:
        try:
            updated = update_baseline(
                baseline, current, args.baseline
            )
        except (KeyError, ValueError, TypeError) as e:
            print(f"cannot update baseline: {e}", file=sys.stderr)
            return 1
        return 0 if updated else 1

    print(
        f"checking {args.current} against {args.baseline} "
        f"(threshold {args.threshold:.0%})"
    )
    try:
        checked, failures = run_checks(
            baseline, current, args.key, args.threshold
        )
    except (KeyError, ValueError, TypeError) as e:
        print(f"malformed gate or missing key: {e}", file=sys.stderr)
        return 1
    if not checked:
        print("no gates found to check", file=sys.stderr)
        return 1
    if failures:
        print(f"\nPERF REGRESSION ({len(failures)} gate(s)):")
        for fail in failures:
            print(f"  {fail}")
        return 1
    print(f"all {checked} gate(s) within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
