/**
 * @file
 * salus_cli — command-line driver over the whole simulation, for
 * poking at the platform without writing code:
 *
 *   salus_cli boot [--paper-scale] [--seed N]
 *   salus_cli attack <tamper|substitute|storage|replay|snoop|scan|
 *                     mitm|revoke>
 *   salus_cli workload <Conv|Affine|Rendering|FaceDetect|NNSearch>
 *                     [--scale PCT]
 *   salus_cli inspect
 *   salus_cli help
 *
 * Any command accepts `--trace-out FILE` (Chrome trace_event JSON for
 * chrome://tracing / Perfetto) and `--metrics-out FILE` (text metrics
 * dump); see docs/OBSERVABILITY.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "accel/accel_ip.hpp"
#include "accel/runner.hpp"
#include "obs/trace.hpp"
#include "salus/boot_report.hpp"
#include "salus/salus.hpp"
#include "salus/scenario.hpp"

using namespace salus;
using namespace salus::core;

namespace {

std::string g_traceOut;   // --trace-out FILE (empty = disabled)
std::string g_metricsOut; // --metrics-out FILE (empty = disabled)

/**
 * Enables tracing/metrics over a testbed's clock for the duration of
 * one command when the user asked for either output file, and writes
 * the artifacts on destruction.
 */
class CliObs
{
  public:
    explicit CliObs(sim::VirtualClock &clock)
    {
        if (g_traceOut.empty() && g_metricsOut.empty())
            return;
        recorder_ = std::make_unique<obs::TraceRecorder>(clock);
        metrics_ = std::make_unique<obs::MetricsRegistry>();
        scope_ = std::make_unique<obs::ObsScope>(recorder_.get(),
                                                 metrics_.get());
    }

    ~CliObs()
    {
        if (!recorder_)
            return;
        scope_.reset(); // uninstall before exporting
        if (!g_traceOut.empty()) {
            if (recorder_->writeChromeTrace(g_traceOut))
                std::printf("trace: %s (%zu events)\n",
                            g_traceOut.c_str(),
                            recorder_->events().size());
            else
                std::printf("trace: cannot write %s\n",
                            g_traceOut.c_str());
        }
        if (!g_metricsOut.empty()) {
            if (metrics_->writeText(g_metricsOut))
                std::printf("metrics: %s\n", g_metricsOut.c_str());
            else
                std::printf("metrics: cannot write %s\n",
                            g_metricsOut.c_str());
        }
    }

  private:
    std::unique_ptr<obs::TraceRecorder> recorder_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    std::unique_ptr<obs::ObsScope> scope_;
};

netlist::Cell
loopbackAccel()
{
    netlist::Cell accel;
    accel.path = "engine";
    accel.kind = netlist::CellKind::Logic;
    accel.behaviorId = fpga::kIpLoopback;
    accel.resources = {1000, 1000, 4, 0};
    return accel;
}

int
cmdBoot(const std::vector<std::string> &args)
{
    TestbedConfig cfg;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--paper-scale")
            cfg.deviceModel = fpga::u200ScaledModel();
        else if (args[i] == "--seed" && i + 1 < args.size())
            cfg.rngSeed = std::stoull(args[++i]);
    }

    Testbed tb(cfg);
    CliObs obsOut(tb.clock());
    tb.installCl(loopbackAccel());
    std::printf("bitstream: %.2f MiB, device DNA %014llx\n",
                double(tb.storedBitstream().size()) / (1 << 20),
                static_cast<unsigned long long>(tb.device().dna().value));

    UserClient::Outcome outcome = tb.runDeployment();
    if (!outcome.ok) {
        std::printf("BOOT FAILED: %s\n", outcome.failure.c_str());
        return 1;
    }
    std::printf("boot ok; cascaded report verified; data key "
                "delivered\n\n%s",
                buildBootReport(tb.clock()).render().c_str());
    return 0;
}

int
cmdAttack(const std::vector<std::string> &args)
{
    if (args.empty()) {
        std::printf("attack name required\n");
        return 2;
    }
    const std::string &name = args[0];

    TestbedConfig cfg;
    cfg.maliciousShell = true;
    if (name == "tamper") {
        cfg.attackPlan.tamperBitstream = true;
        cfg.attackPlan.tamperOffset = 4040;
    }
    Testbed tb(cfg);
    CliObs obsOut(tb.clock());
    tb.installCl(loopbackAccel());

    if (name == "substitute") {
        tb.maliciousShell()->plan().substituteBitstream =
            tb.storedBitstream();
    } else if (name == "storage") {
        tb.storedBitstream()[512] ^= 0xff;
    } else if (name == "revoke") {
        tb.mft().verificationService().revokePlatform("platform-1");
    } else if (name == "mitm") {
        tb.network().setInterposer(
            [](const std::string &, const std::string &,
               const std::string &method, Bytes &payload) {
                if (method == "raRequest:response" && payload.size() > 70)
                    payload[70] ^= 1;
                return true;
            });
    }

    UserClient::Outcome outcome = tb.runDeployment();

    if (name == "replay") {
        if (!outcome.ok) {
            std::printf("setup failed: %s\n", outcome.failure.c_str());
            return 1;
        }
        tb.userApp().secureWrite(0x00, 1);
        tb.userApp().secureWrite(0x00, 2);
        size_t n = tb.maliciousShell()->replayRecordedSmWrites();
        bool held = tb.userApp().secureRead(0x00) == 2u;
        std::printf("replayed %zu transactions; state %s\n", n,
                    held ? "held (attack defeated)" : "ROLLED BACK");
        return held ? 0 : 1;
    }
    if (name == "snoop") {
        if (!outcome.ok) {
            std::printf("setup failed: %s\n", outcome.failure.c_str());
            return 1;
        }
        tb.userApp().pushDataKeyToCl(0x20);
        const Bytes &key = tb.userApp().dataKey();
        size_t leaks = 0;
        for (const auto &txn : tb.maliciousShell()->snoopLog()) {
            for (int i = 0; i < 4; ++i)
                leaks += txn.data == loadLe64(key.data() + 8 * i);
        }
        std::printf("%zu transactions snooped, %zu plaintext key words "
                    "seen\n",
                    tb.maliciousShell()->snoopLog().size(), leaks);
        return leaks == 0 ? 0 : 1;
    }
    if (name == "scan") {
        auto frames = tb.maliciousShell()->tryConfigScan();
        std::printf("ICAP scan %s\n",
                    frames ? "LEAKED CONFIGURATION" : "blocked");
        return frames ? 1 : 0;
    }

    // Boot-time attacks: defended == deployment refused.
    bool defended = !outcome.ok;
    std::printf("attack '%s': %s (%s)\n", name.c_str(),
                defended ? "defended" : "NOT DEFENDED",
                outcome.failure.empty() ? "boot succeeded"
                                        : outcome.failure.c_str());
    return defended ? 0 : 1;
}

int
cmdWorkload(const std::vector<std::string> &args)
{
    if (args.empty()) {
        std::printf("workload name required\n");
        return 2;
    }
    const accel::WorkloadSpec *spec = nullptr;
    for (const auto &w : accel::allWorkloads()) {
        if (args[0] == w.name)
            spec = &w;
    }
    if (!spec) {
        std::printf("unknown workload '%s'\n", args[0].c_str());
        return 2;
    }
    double scale = spec->benchScale;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--scale" && i + 1 < args.size())
            scale = std::stod(args[++i]) / 100.0;
    }

    accel::WorkloadRunner runner(spec->id, 1, scale);
    std::printf("%s @ scale %.2f: %zu input bytes\n", spec->name, scale,
                runner.input().size());

    accel::RunResult cpu = runner.runCpuPlain();
    accel::RunResult cpuTee = runner.runCpuTee();
    sim::CostModel cost;
    accel::RunResult fpga = runner.runFpgaPlain(cost);

    Testbed tb;
    CliObs obsOut(tb.clock());
    tb.installCl(accel::accelCellFor(*spec));
    if (!tb.runDeployment().ok) {
        std::printf("deployment failed\n");
        return 1;
    }
    accel::RunResult fpgaTee = runner.runFpgaTee(tb);

    for (const auto *r : {&cpu, &cpuTee, &fpga, &fpgaTee}) {
        std::printf("  %-10s %12s  output %s\n", r->mode.c_str(),
                    sim::formatNanos(r->totalTime).c_str(),
                    r->outputCorrect ? "ok" : "MISMATCH");
    }
    return 0;
}

int
cmdRunScenario(const std::vector<std::string> &args)
{
    if (args.empty()) {
        std::printf("scenario file required\n");
        return 2;
    }
    bool once = false;
    bool onEngine = false;
    bool seedOverride = false;
    uint64_t seed = 0;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--once") {
            once = true;
        } else if (args[i] == "--engine") {
            onEngine = true;
        } else if (args[i] == "--seed" && i + 1 < args.size()) {
            seedOverride = true;
            seed = std::strtoull(args[i + 1].c_str(), nullptr, 0);
            ++i;
        }
    }

    Scenario sc;
    try {
        sc = parseScenarioFile(args[0]);
    } catch (const SalusError &e) {
        std::printf("parse error: %s\n", e.what());
        return 2;
    }
    if (seedOverride)
        sc.seed = seed;

    std::printf("scenario '%s': seed %llu, %u device(s), %u sweeps, "
                "%zu tenant(s)\n",
                sc.name.c_str(),
                static_cast<unsigned long long>(sc.seed), sc.devices,
                sc.sweeps, sc.tenants.size());

    ScenarioOutcome out =
        onEngine ? runScenarioOnEngine(sc) : runScenario(sc);
    // Determinism is part of the contract: unless --once, the
    // campaign runs twice and the obs artifacts must byte-match.
    bool identical = true;
    if (!once) {
        ScenarioOutcome again =
            onEngine ? runScenarioOnEngine(sc) : runScenario(sc);
        identical = out.traceJson == again.traceJson &&
                    out.metricsText == again.metricsText;
    }

    std::printf("  %-12s %10s %10s %8s %8s %8s\n", "tenant",
                "admitted", "completed", "quota", "rate", "shed");
    for (const auto &[name, ts] : out.tenants)
        std::printf("  %-12s %10llu %10llu %8llu %8llu %8llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(ts.admitted),
                    static_cast<unsigned long long>(ts.completed),
                    static_cast<unsigned long long>(ts.quotaRejected),
                    static_cast<unsigned long long>(ts.rateRejected),
                    static_cast<unsigned long long>(ts.shedRejected));
    std::printf("completed %llu, failovers %llu, SEUs %llu, max sweeps "
                "waited %llu, shed level %zu, virtual end %s\n",
                static_cast<unsigned long long>(out.completed),
                static_cast<unsigned long long>(out.failovers),
                static_cast<unsigned long long>(out.seusInjected),
                static_cast<unsigned long long>(out.maxSweepsWaited),
                out.shedLevelEnd,
                sim::formatNanos(out.clockEnd).c_str());
    if (out.dmaJobs)
        std::printf("dma jobs %llu, dma bytes %llu\n",
                    static_cast<unsigned long long>(out.dmaJobs),
                    static_cast<unsigned long long>(out.dmaBytes));

    if (!g_traceOut.empty()) {
        std::FILE *f = std::fopen(g_traceOut.c_str(), "wb");
        if (f) {
            std::fwrite(out.traceJson.data(), 1, out.traceJson.size(),
                        f);
            std::fclose(f);
            std::printf("trace: %s\n", g_traceOut.c_str());
        }
    }
    if (!g_metricsOut.empty()) {
        std::FILE *f = std::fopen(g_metricsOut.c_str(), "wb");
        if (f) {
            std::fwrite(out.metricsText.data(), 1,
                        out.metricsText.size(), f);
            std::fclose(f);
            std::printf("metrics: %s\n", g_metricsOut.c_str());
        }
    }

    for (const std::string &v : out.violations)
        std::printf("VIOLATION: %s\n", v.c_str());
    if (!identical)
        std::printf("VIOLATION: same-seed reruns diverged (trace or "
                    "metrics not byte-identical)\n");
    bool ok = out.passed() && identical;
    std::printf("scenario '%s': %s\n", sc.name.c_str(),
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

int
cmdInspect()
{
    fpga::DeviceModelInfo model = fpga::u200ScaledModel();
    const auto &rp = model.partitions[0];
    std::printf("device model %s\n", model.name.c_str());
    std::printf("  frames: %u x %u B (RP: %u frames = %.1f MiB "
                "partial bitstream)\n",
                model.totalFrames, model.frameSize, rp.frameCount,
                double(rp.bodyBytes()) / (1 << 20));
    std::printf("  RP capacity: %u LUT / %u FF / %u BRAM\n",
                rp.capacity.luts, rp.capacity.registers,
                rp.capacity.brams);
    netlist::ResourceVector sm = smLogicResources();
    std::printf("  SM logic: %u LUT / %u FF / %u BRAM (+3 key BRAMs)\n",
                sm.luts, sm.registers, sm.brams);
    std::printf("workloads:");
    for (const auto &w : accel::allWorkloads())
        std::printf(" %s", w.name);
    std::printf("\n");
    return 0;
}

void
usage()
{
    std::printf(
        "salus_cli — drive the Salus CPU-FPGA TEE simulation\n\n"
        "  boot [--paper-scale] [--seed N]   full secure deployment\n"
        "  attack <name>                     run a threat-model "
        "attack:\n"
        "        tamper substitute storage replay snoop scan mitm "
        "revoke\n"
        "  workload <name> [--scale PCT]     run one Table 4 workload "
        "in all modes\n"
        "  run-scenario FILE [--once] [--seed N] [--engine]\n"
        "                                    run a declarative chaos "
        "campaign\n"
        "        (docs/SCENARIOS.md; default runs twice and checks "
        "byte-identical traces)\n"
        "  inspect                           device + workload "
        "inventory\n\n"
        "global options:\n"
        "  --trace-out FILE    write a Chrome trace_event JSON trace\n"
        "  --metrics-out FILE  write a text metrics dump\n");
}

} // namespace

int
main(int argc, char **argv)
{
    fpga::ensureBuiltinIps();
    SmLogic::registerIp();
    accel::AccelIp::registerAll();

    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    for (size_t i = 0; i < args.size();) {
        if (args[i] == "--trace-out" && i + 1 < args.size()) {
            g_traceOut = args[i + 1];
            args.erase(args.begin() + long(i), args.begin() + long(i + 2));
        } else if (args[i] == "--metrics-out" && i + 1 < args.size()) {
            g_metricsOut = args[i + 1];
            args.erase(args.begin() + long(i), args.begin() + long(i + 2));
        } else {
            ++i;
        }
    }

    if (cmd == "boot")
        return cmdBoot(args);
    if (cmd == "attack")
        return cmdAttack(args);
    if (cmd == "workload")
        return cmdWorkload(args);
    if (cmd == "run-scenario")
        return cmdRunScenario(args);
    if (cmd == "inspect")
        return cmdInspect();
    usage();
    return cmd == "help" ? 0 : 2;
}
