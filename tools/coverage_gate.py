#!/usr/bin/env python3
"""Line-coverage gate over gcov's JSON intermediate format.

Walks a build directory for .gcda counters (written by a --coverage
build after running the test suite), asks gcov for the JSON report of
every translation unit, and aggregates per-source-file line coverage
(union across TUs, so a header counts as covered when ANY test binary
executed the line).

The gate compares total line coverage for files under --source-prefix
against the checked-in baseline (tools/coverage_baseline.json) and
fails when it drops more than --slack percentage points below it
(default 2.0). Refresh the baseline with --update after intentionally
adding hard-to-cover code, in the same PR.

--self-test exercises the comparison logic with synthetic numbers (a
drop just past the slack must fail, anything above must pass) so a
broken gate can never silently pass in CI.

When GITHUB_STEP_SUMMARY is set, a markdown summary (total coverage,
floor, ten least-covered files) is appended to the CI job summary.

Exit status: 0 gate passed, 1 regression / no data / malformed input.
"""

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        out.extend(
            os.path.abspath(os.path.join(root, f))
            for f in files
            if f.endswith(".gcda")
        )
    return sorted(out)


def run_gcov(gcda_batch, build_dir):
    """Returns the parsed JSON documents for one batch of .gcda files."""
    cmd = ["gcov", "--stdout", "--json-format"] + gcda_batch
    proc = subprocess.run(
        cmd,
        cwd=build_dir,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        check=False,
    )
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return docs


def collect_coverage(build_dir, repo_root, source_prefix):
    """Aggregates {source file: {line: hit}} under source_prefix."""
    gcda = find_gcda(build_dir)
    if not gcda:
        return {}, 0
    lines_by_file = {}
    batch = 64
    for i in range(0, len(gcda), batch):
        for doc in run_gcov(gcda[i : i + batch], build_dir):
            for entry in doc.get("files", []):
                path = entry.get("file", "")
                if not os.path.isabs(path):
                    path = os.path.join(build_dir, path)
                rel = os.path.relpath(os.path.normpath(path), repo_root)
                if not rel.startswith(source_prefix):
                    continue
                hits = lines_by_file.setdefault(rel, {})
                for ln in entry.get("lines", []):
                    no = ln.get("line_number")
                    if no is None:
                        continue
                    hits[no] = hits.get(no, 0) + int(
                        ln.get("count", 0)
                    )
    return lines_by_file, len(gcda)


def file_pct(hits):
    total = len(hits)
    covered = sum(1 for c in hits.values() if c > 0)
    return covered, total, (100.0 * covered / total if total else 0.0)


def total_pct(lines_by_file):
    covered = sum(
        sum(1 for c in hits.values() if c > 0)
        for hits in lines_by_file.values()
    )
    total = sum(len(hits) for hits in lines_by_file.values())
    return covered, total, (100.0 * covered / total if total else 0.0)


def gate(current, baseline, slack):
    """Returns an error string, or None when the gate passes."""
    floor = baseline - slack
    if current < floor:
        return (
            f"line coverage {current:.2f}% is below the floor "
            f"{floor:.2f}% (baseline {baseline:.2f}% - {slack:.1f})"
        )
    return None


def self_test(slack):
    baseline = 90.0
    cases = [
        (baseline, None),
        (baseline - slack + 0.1, None),
        (baseline - slack - 0.1, "fail"),
        (baseline - slack - 10.0, "fail"),
    ]
    for current, expect in cases:
        err = gate(current, baseline, slack)
        if (err is None) != (expect is None):
            print(
                f"self-test FAILED: baseline {baseline} current "
                f"{current} slack {slack} -> {err!r}",
                file=sys.stderr,
            )
            return 1
    print(
        f"self-test passed: a synthetic drop past {slack:.1f} points "
        "is detected and smaller moves pass"
    )
    return 0


def write_summary(pct, floor, baseline, worst, gcda_count, passed):
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        state = "passed" if passed else "**FAILED**"
        f.write("## Coverage gate\n\n")
        f.write(
            f"Line coverage **{pct:.2f}%** vs floor {floor:.2f}% "
            f"(baseline {baseline:.2f}%) — {state} "
            f"({gcda_count} .gcda files)\n\n"
        )
        f.write("| least-covered files | lines | coverage |\n")
        f.write("|---|---|---|\n")
        for rel, (covered, total, p) in worst:
            f.write(f"| `{rel}` | {covered}/{total} | {p:.1f}% |\n")


def main():
    ap = argparse.ArgumentParser(description="Line-coverage gate")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument(
        "--baseline", default="tools/coverage_baseline.json"
    )
    ap.add_argument("--source-prefix", default="src/")
    ap.add_argument(
        "--slack",
        type=float,
        default=2.0,
        help="allowed drop below the baseline, in percentage points",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="write the measured coverage as the new baseline",
    )
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.slack)

    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    lines_by_file, gcda_count = collect_coverage(
        args.build_dir, repo_root, args.source_prefix
    )
    if not lines_by_file:
        print(
            f"no coverage data for {args.source_prefix!r} under "
            f"{args.build_dir!r} — build with --coverage and run the "
            "tests first",
            file=sys.stderr,
        )
        return 1

    covered, total, pct = total_pct(lines_by_file)
    per_file = {
        rel: file_pct(hits)
        for rel, hits in lines_by_file.items()
        if hits  # headers with no executable lines are not interesting
    }
    worst = sorted(per_file.items(), key=lambda kv: kv[1][2])[:10]

    print(
        f"line coverage: {pct:.2f}% ({covered}/{total} lines in "
        f"{len(per_file)} files, {gcda_count} .gcda inputs)"
    )
    print("least-covered files:")
    for rel, (c, t, p) in worst:
        print(f"  {p:6.1f}%  {c:>5}/{t:<5}  {rel}")

    if args.update:
        baseline_doc = {
            "line_coverage_pct": round(pct, 2),
            "source_prefix": args.source_prefix,
            "note": "refresh with: tools/coverage_gate.py --update "
            "(coverage build + full ctest first)",
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline_doc, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {args.baseline} = {pct:.2f}%")
        return 0

    try:
        with open(args.baseline) as f:
            baseline = float(json.load(f)["line_coverage_pct"])
    except (OSError, KeyError, ValueError) as e:
        print(f"cannot read baseline: {e}", file=sys.stderr)
        return 1

    err = gate(pct, baseline, args.slack)
    write_summary(
        pct,
        baseline - args.slack,
        baseline,
        worst,
        gcda_count,
        err is None,
    )
    if err:
        print(f"COVERAGE REGRESSION: {err}", file=sys.stderr)
        return 1
    print(
        f"gate passed: {pct:.2f}% >= floor "
        f"{baseline - args.slack:.2f}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
