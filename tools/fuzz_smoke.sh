#!/usr/bin/env bash
# Fuzz-smoke driver for CI: runs a fixed-seed libFuzzer burst on every
# harness in FUZZ_TARGETS and fails LOUDLY when the set on disk
# diverges from the list below in either direction:
#
#   - a listed binary is missing  -> the build dropped a fuzzer (the
#     old inline `for f in build/tests/fuzz_*` glob silently skipped
#     it and the job stayed green)
#   - an unlisted fuzz_* binary exists -> someone added an entry to
#     tests/CMakeLists.txt without registering it here, so CI would
#     never build or run it via --targets
#
# The list below is the single source of truth for the CI job: the
# build step compiles `fuzz_smoke.sh --targets` and the run step
# executes this script, so drift against tests/CMakeLists.txt's
# SALUS_FUZZ_ENTRIES surfaces as one of the two loud failures above.
#
# Usage:
#   fuzz_smoke.sh [DIR]       smoke-run every fuzzer in DIR
#                             (default build/tests); FUZZ_SECONDS
#                             overrides the 30 s per-target budget
#   fuzz_smoke.sh --targets   print the target list (for the CI
#                             `cmake --build --target` step)
#   fuzz_smoke.sh --self-test verify both failure modes actually fail
#                             using a hermetic dir of stub binaries
set -euo pipefail

FUZZ_TARGETS=(
    fuzz_bitstream_file
    fuzz_encrypted_bitstream
    fuzz_quote
    fuzz_journal
    fuzz_netlist
    fuzz_channel_open
    fuzz_migration_ticket
    fuzz_placement_state
    fuzz_broker_request
    fuzz_scenario_file
    fuzz_dma_descriptor
    fuzz_dma_window
    fuzz_aes_backend
    fuzz_sha_backend
)

check_inventory() {
    local dir=$1 bad=0 name t listed
    for t in "${FUZZ_TARGETS[@]}"; do
        if [ ! -x "$dir/$t" ]; then
            echo "fuzz-smoke: MISSING fuzzer binary: $dir/$t" >&2
            bad=1
        fi
    done
    shopt -s nullglob
    for f in "$dir"/fuzz_*; do
        [ -x "$f" ] || continue
        name=${f##*/}
        listed=0
        for t in "${FUZZ_TARGETS[@]}"; do
            if [ "$name" = "$t" ]; then listed=1; fi
        done
        if [ "$listed" = 0 ]; then
            echo "fuzz-smoke: UNLISTED fuzzer binary: $f" \
                 "(add it to FUZZ_TARGETS in tools/fuzz_smoke.sh)" >&2
            bad=1
        fi
    done
    shopt -u nullglob
    return "$bad"
}

run_smoke() {
    local dir=$1 secs=${FUZZ_SECONDS:-30} t
    check_inventory "$dir" || return 1
    for t in "${FUZZ_TARGETS[@]}"; do
        echo "=== $dir/$t"
        "$dir/$t" -seed=1 -max_total_time="$secs" -print_final_stats=1
    done
}

make_stub() {
    printf '#!/bin/sh\nexit 0\n' > "$1"
    chmod +x "$1"
}

SELF_TEST_DIR=""

self_test() {
    SELF_TEST_DIR=$(mktemp -d)
    trap 'rm -rf "$SELF_TEST_DIR"' EXIT
    local tmp=$SELF_TEST_DIR
    local t
    for t in "${FUZZ_TARGETS[@]}"; do
        make_stub "$tmp/$t"
    done

    echo "self-test 1/3: complete stub set must pass"
    if ! run_smoke "$tmp" > /dev/null; then
        echo "self-test FAILED: complete set was rejected" >&2
        return 1
    fi

    echo "self-test 2/3: deleting ${FUZZ_TARGETS[0]} must fail"
    rm "$tmp/${FUZZ_TARGETS[0]}"
    if run_smoke "$tmp" > /dev/null 2>&1; then
        echo "self-test FAILED: missing binary was not detected" >&2
        return 1
    fi
    make_stub "$tmp/${FUZZ_TARGETS[0]}"

    echo "self-test 3/3: an unlisted fuzz_bogus binary must fail"
    make_stub "$tmp/fuzz_bogus"
    if run_smoke "$tmp" > /dev/null 2>&1; then
        echo "self-test FAILED: unlisted binary was not detected" >&2
        return 1
    fi

    echo "fuzz-smoke self-test OK"
}

case "${1:-}" in
--targets)
    echo "${FUZZ_TARGETS[*]}"
    ;;
--self-test)
    self_test
    ;;
--help | -h)
    sed -n '2,22p' "$0"
    ;;
*)
    run_smoke "${1:-build/tests}"
    ;;
esac
