/**
 * @file
 * Malicious shell behaviours implementing the threat-model attacks of
 * paper §3.1 / Table 3. Each knob corresponds to a concrete attack
 * the security tests and the Table 3 bench exercise:
 *
 *  - bitstream tampering / substitution  (integrity attack at boot, ①)
 *  - register snooping                   (confidentiality on PCIe, ③)
 *  - register data tampering             (integrity on PCIe, ③)
 *  - transaction replay                  (freshness on PCIe, ③)
 *  - configuration-memory scan           (ICAP readback, §5.1.2)
 *
 * The malicious shell also keeps a copy of every bitstream blob it is
 * asked to deploy — the CSP can always do that — so tests can assert
 * the blob alone is useless without Key_device.
 */

#ifndef SALUS_SHELL_ATTACKS_HPP
#define SALUS_SHELL_ATTACKS_HPP

#include <optional>
#include <vector>

#include "shell/shell.hpp"

namespace salus::shell {

/** Attack configuration for a MaliciousShell. */
struct AttackPlan
{
    /** XOR this mask into the blob byte at `tamperOffset` pre-load. */
    bool tamperBitstream = false;
    size_t tamperOffset = 0;
    uint8_t tamperMask = 0x01;

    /** Replace the deployed blob entirely with `substitute`. */
    std::optional<Bytes> substituteBitstream;

    /** Record every register transaction (always-on snooping). */
    bool snoopRegisters = true;

    /** XOR register data crossing the SM window with this mask. */
    uint64_t smWindowDataTamperMask = 0;

    /** XOR register data crossing the direct window with this mask. */
    uint64_t directWindowDataTamperMask = 0;

    /** Tamper with DMA payloads (flip first byte). */
    bool tamperDma = false;

    /**
     * Masking attack on fleet supervision: swallow heartbeat commands
     * before they reach the fabric and fabricate plausible "alive"
     * responses (status ok, nonce echo, running beat count). The
     * forged response MAC cannot be computed without Key_attest, so
     * the supervisor's MAC check must quarantine the device instead
     * of trusting the shell's word.
     */
    bool forgeHeartbeats = false;
};

/** A shell under CSP-adversary control. */
class MaliciousShell : public Shell
{
  public:
    MaliciousShell(fpga::FpgaDevice &device, sim::VirtualClock &clock,
                   const sim::CostModel &cost, AttackPlan plan,
                   uint32_t partitionId = 0);

    fpga::LoadStatus deployBitstream(ByteView blob) override;
    uint64_t registerRead(pcie::Window window, uint32_t addr) override;
    void registerWrite(pcie::Window window, uint32_t addr,
                       uint64_t data) override;
    void registerBurstWrite(pcie::Window window, uint32_t addr,
                            const uint64_t *words, size_t count) override;
    void registerBurstRead(pcie::Window window, uint32_t addr,
                           uint64_t *words, size_t count) override;
    void dmaWrite(uint64_t addr, ByteView data) override;
    Bytes dmaRead(uint64_t addr, size_t len) override;

    /** Every register transaction observed so far. */
    const std::vector<pcie::RegisterTxn> &snoopLog() const
    {
        return snoopLog_;
    }

    /** The last bitstream blob the host asked us to deploy. */
    const Bytes &capturedBitstream() const { return capturedBitstream_; }

    /**
     * Replays all previously recorded SM-window writes in order —
     * the freshness attack on the secure register channel.
     * @return number of transactions replayed.
     */
    size_t replayRecordedSmWrites();

    /**
     * Attempts an ICAP scan of the partition's configuration memory
     * (the attack §5.1.2 closes by disabling readback).
     * @return frames when readback is enabled, nullopt when blocked.
     */
    std::optional<Bytes> tryConfigScan();

    AttackPlan &plan() { return plan_; }

  private:
    AttackPlan plan_;
    std::vector<pcie::RegisterTxn> snoopLog_;
    Bytes capturedBitstream_;
    // Heartbeat-forging state: the last nonce the host loaded and
    // whether the next SM-window reads should be fabricated.
    uint64_t forgeNonce_ = 0;
    uint64_t forgeCount_ = 0;
    bool forging_ = false;
};

} // namespace salus::shell

#endif // SALUS_SHELL_ATTACKS_HPP
