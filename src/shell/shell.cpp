#include "shell/shell.hpp"

#include "obs/trace.hpp"

namespace salus::shell {

Shell::Shell(fpga::FpgaDevice &device, sim::VirtualClock &clock,
             const sim::CostModel &cost, uint32_t partitionId)
    : device_(device), clock_(clock), cost_(cost),
      partitionId_(partitionId)
{
}

fpga::LoadStatus
Shell::deployBitstream(ByteView blob)
{
    obs::Span span(obs::Category::Shell, "deploy_bitstream",
                   uint64_t(blob.size()));
    obs::count("shell.deployments");
    clock_.spend(cost_.bitstreamDeployment(blob.size()));
    ++stats_.deployments;
    return device_.loadEncryptedPartial(blob);
}

fpga::IpBehavior *
Shell::route(pcie::Window window)
{
    fpga::LoadedDesign *design = device_.design(partitionId_);
    if (!design)
        return nullptr;

    // Window routing mirrors the paper's Fig. 5 floorplan: the SM
    // logic block fronts the secure window; any other logic cell is
    // the accelerator behind the direct window.
    const netlist::Netlist &nl = design->design();
    for (const auto &cell : nl.cells()) {
        if (cell.kind != netlist::CellKind::Logic || cell.behaviorId == 0)
            continue;
        bool isSm = cell.behaviorId == fpga::kIpSmLogic;
        if ((window == pcie::Window::SmSecure) == isSm)
            return design->behaviorAt(cell.path);
    }
    return nullptr;
}

uint64_t
Shell::registerRead(pcie::Window window, uint32_t addr)
{
    // Secure-window accesses go through the driver's ioctl path; the
    // direct window is userspace-mapped MMIO (paper Fig. 5).
    clock_.spend(window == pcie::Window::SmSecure ? cost_.pcieRtt
                                                  : cost_.mmioLatency);
    ++stats_.registerReads;
    obs::count("shell.register_reads");
    if (fault_ && fault_->onRegisterOp(false, addr, deviceIndex_)) {
        // The completion was lost/garbled on the bus; the driver
        // surfaces whatever the timed-out TLP left behind.
        return fault_->garbageWord();
    }
    fpga::IpBehavior *target = route(window);
    return target ? target->readRegister(addr) : 0;
}

void
Shell::registerWrite(pcie::Window window, uint32_t addr, uint64_t data)
{
    clock_.spend(window == pcie::Window::SmSecure ? cost_.pcieRtt
                                                  : cost_.mmioLatency);
    ++stats_.registerWrites;
    obs::count("shell.register_writes");
    if (fault_ && fault_->onRegisterOp(true, addr, deviceIndex_))
        return; // posted write lost in flight
    fpga::IpBehavior *target = route(window);
    if (target)
        target->writeRegister(addr, data);
}

void
Shell::registerBurstWrite(pcie::Window window, uint32_t addr,
                          const uint64_t *words, size_t count)
{
    obs::Span span(obs::Category::Shell, "burst_write",
                   uint64_t(count));
    obs::count("shell.burst_words_written", count);
    // One round trip for the whole burst; the payload itself only
    // pays wire time. Faults are still per-word: a glitched TLP loses
    // individual beats, not the entire burst.
    clock_.spend((window == pcie::Window::SmSecure ? cost_.pcieRtt
                                                   : cost_.mmioLatency) +
                 sim::transferTime(cost_.pcieBandwidth, count * 8));
    ++stats_.burstWrites;
    stats_.burstWordsWritten += count;
    fpga::IpBehavior *target = route(window);
    for (size_t i = 0; i < count; ++i) {
        if (fault_ && fault_->onRegisterOp(true, addr, deviceIndex_))
            continue; // this beat lost in flight
        if (target)
            target->writeRegister(addr, words[i]);
    }
}

void
Shell::registerBurstRead(pcie::Window window, uint32_t addr,
                         uint64_t *words, size_t count)
{
    obs::Span span(obs::Category::Shell, "burst_read",
                   uint64_t(count));
    obs::count("shell.burst_words_read", count);
    clock_.spend((window == pcie::Window::SmSecure ? cost_.pcieRtt
                                                   : cost_.mmioLatency) +
                 sim::transferTime(cost_.pcieBandwidth, count * 8));
    ++stats_.burstReads;
    stats_.burstWordsRead += count;
    fpga::IpBehavior *target = route(window);
    for (size_t i = 0; i < count; ++i) {
        if (fault_ && fault_->onRegisterOp(false, addr, deviceIndex_)) {
            words[i] = fault_->garbageWord();
            continue;
        }
        words[i] = target ? target->readRegister(addr) : 0;
    }
}

fpga::FpgaDevice::ScrubReport
Shell::scrubPartition()
{
    obs::Span span(obs::Category::Shell, "scrub_partition");
    obs::count("shell.scrub_passes");
    clock_.spend(cost_.seuScrubPass);
    return device_.scrub(partitionId_);
}

void
Shell::dmaWrite(uint64_t addr, ByteView data)
{
    obs::Span span(obs::Category::Shell, "dma_write",
                   uint64_t(data.size()));
    obs::count("shell.dma_bytes_to_device", data.size());
    clock_.spend(cost_.pcieRtt +
                 sim::transferTime(cost_.pcieBandwidth, data.size()));
    stats_.dmaBytesToDevice += data.size();
    device_.dram().write(addr, data);
}

Bytes
Shell::dmaRead(uint64_t addr, size_t len)
{
    obs::Span span(obs::Category::Shell, "dma_read", uint64_t(len));
    obs::count("shell.dma_bytes_from_device", len);
    clock_.spend(cost_.pcieRtt +
                 sim::transferTime(cost_.pcieBandwidth, len));
    stats_.dmaBytesFromDevice += len;
    return device_.dram().read(addr, len);
}

void
Shell::dmaPostedWrite(uint64_t addr, ByteView data)
{
    obs::count("shell.dma_bytes_to_device", data.size());
    stats_.dmaBytesToDevice += data.size();
    device_.dram().write(addr, data);
}

Bytes
Shell::dmaPostedRead(uint64_t addr, size_t len)
{
    obs::count("shell.dma_bytes_from_device", len);
    stats_.dmaBytesFromDevice += len;
    return device_.dram().read(addr, len);
}

void
Shell::dmaPostedRegWrite(pcie::Window window, uint32_t addr,
                         uint64_t data)
{
    ++stats_.registerWrites;
    obs::count("shell.register_writes");
    fpga::IpBehavior *target = route(window);
    if (target)
        target->writeRegister(addr, data);
}

uint64_t
Shell::dmaPostedRegRead(pcie::Window window, uint32_t addr)
{
    ++stats_.registerReads;
    obs::count("shell.register_reads");
    fpga::IpBehavior *target = route(window);
    return target ? target->readRegister(addr) : 0;
}

} // namespace salus::shell
