/**
 * @file
 * The CSP-maintained shell (paper §2.2): the privileged "OS" of the
 * FPGA. It programs the reconfigurable partition through the
 * configuration port, and proxies all host I/O — register windows and
 * DMA — to the loaded custom logic.
 *
 * The honest implementation below forwards faithfully. The threat
 * model places the attacker *here*; see attacks.hpp for the malicious
 * variants used in security tests and the Table 3 bench.
 */

#ifndef SALUS_SHELL_SHELL_HPP
#define SALUS_SHELL_SHELL_HPP

#include <string>

#include "fpga/device.hpp"
#include "pcie/transactions.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "sim/fault.hpp"

namespace salus::shell {

/** Host-facing shell interface. */
class Shell
{
  public:
    Shell(fpga::FpgaDevice &device, sim::VirtualClock &clock,
          const sim::CostModel &cost, uint32_t partitionId = 0);
    virtual ~Shell() = default;

    /**
     * Deploys a (normally encrypted) partial bitstream into the
     * partition this shell manages. Charges PCIe transfer plus
     * configuration time to the active phase.
     */
    virtual fpga::LoadStatus deployBitstream(ByteView blob);

    /** MMIO register read through the chosen window. */
    virtual uint64_t registerRead(pcie::Window window, uint32_t addr);

    /** MMIO register write through the chosen window. */
    virtual void registerWrite(pcie::Window window, uint32_t addr,
                               uint64_t data);

    /**
     * Burst register write: delivers `count` 64-bit words to one FIFO
     * address back to back. One bus transaction (a single round trip
     * plus wire time for the payload), not `count` of them — this is
     * what the batched secure channel amortizes its crypto against.
     */
    virtual void registerBurstWrite(pcie::Window window, uint32_t addr,
                                    const uint64_t *words, size_t count);

    /** Burst register read: pops `count` words from one FIFO address. */
    virtual void registerBurstRead(pcie::Window window, uint32_t addr,
                                   uint64_t *words, size_t count);

    /** DMA host -> device DRAM. */
    virtual void dmaWrite(uint64_t addr, ByteView data);

    /** DMA device DRAM -> host. */
    virtual Bytes dmaRead(uint64_t addr, size_t len);

    /**
     * Posted (zero-clock) DMA and doorbell primitives for the
     * pipelined data plane. The window engine owns all time
     * attribution for these paths — it charges wire time and stalls
     * itself so crypto/transport overlap is modelled explicitly —
     * and faults on this plane are descriptor-granularity
     * (FaultInjector::onDmaDescriptor), not per-TLP, so the posted
     * paths never consult the register fault hook.
     */
    virtual void dmaPostedWrite(uint64_t addr, ByteView data);

    /** Posted counterpart of dmaRead: no clock spend, no RTT. */
    virtual Bytes dmaPostedRead(uint64_t addr, size_t len);

    /** Posted doorbell register write (engine charges the time). */
    virtual void dmaPostedRegWrite(pcie::Window window, uint32_t addr,
                                   uint64_t data);

    /** Posted completion/ack register read (engine charges the time). */
    virtual uint64_t dmaPostedRegRead(pcie::Window window, uint32_t addr);

    /**
     * Runs one frame-ECC scrub pass over this shell's partition (the
     * SEM IP the recovery path leans on) and charges the pass time.
     * @throws DeviceError when the partition has no configured frames.
     */
    virtual fpga::FpgaDevice::ScrubReport scrubPartition();

    /**
     * Wires the deterministic fault fabric: register transactions may
     * be lost on the bus (writes silently dropped, reads returning
     * garbage), exactly the failure surface active PCIe attacks use.
     */
    void setFaultInjector(sim::FaultInjector *injector)
    {
        fault_ = injector;
    }

    /** Fleet position of the device behind this shell; scopes
     *  device-targeted fault rules (DeviceDead, RegFault.onDevice). */
    void setDeviceIndex(uint32_t index) { deviceIndex_ = index; }
    uint32_t deviceIndex() const { return deviceIndex_; }

    uint32_t partitionId() const { return partitionId_; }
    fpga::FpgaDevice &device() { return device_; }

    /** I/O accounting the shell keeps (CSP-visible telemetry). */
    struct IoStats
    {
        uint64_t registerReads = 0;
        uint64_t registerWrites = 0;
        uint64_t burstWrites = 0;
        uint64_t burstReads = 0;
        uint64_t burstWordsWritten = 0;
        uint64_t burstWordsRead = 0;
        uint64_t dmaBytesToDevice = 0;
        uint64_t dmaBytesFromDevice = 0;
        uint64_t deployments = 0;
    };

    const IoStats &ioStats() const { return stats_; }

  protected:
    /** Resolves the logic cell behind a window (may be null). */
    fpga::IpBehavior *route(pcie::Window window);

    fpga::FpgaDevice &device_;
    sim::VirtualClock &clock_;
    const sim::CostModel &cost_;
    uint32_t partitionId_;
    uint32_t deviceIndex_ = 0;
    IoStats stats_;
    sim::FaultInjector *fault_ = nullptr;
};

} // namespace salus::shell

#endif // SALUS_SHELL_SHELL_HPP
