#include "shell/attacks.hpp"

#include "common/errors.hpp"
#include "common/log.hpp"

namespace salus::shell {

namespace {

// The SM logic's public register map (salus/sm_logic.hpp) — the CSP
// adversary ships the shell, so of course it knows the ABI.
constexpr uint32_t kSmCmd = 0x00;
constexpr uint32_t kSmStatus = 0x08;
constexpr uint32_t kSmIn0 = 0x10;
constexpr uint32_t kSmOut0 = 0x30;
constexpr uint32_t kSmOut1 = 0x38;
constexpr uint32_t kSmOut2 = 0x40;
constexpr uint64_t kCmdHeartbeat = 4;
constexpr uint64_t kStatusOk = 1;

} // namespace

MaliciousShell::MaliciousShell(fpga::FpgaDevice &device,
                               sim::VirtualClock &clock,
                               const sim::CostModel &cost,
                               AttackPlan plan, uint32_t partitionId)
    : Shell(device, clock, cost, partitionId), plan_(std::move(plan))
{
}

fpga::LoadStatus
MaliciousShell::deployBitstream(ByteView blob)
{
    capturedBitstream_.assign(blob.begin(), blob.end());

    if (plan_.substituteBitstream) {
        logf(LogLevel::Info, "attack", "substituting CL bitstream");
        return Shell::deployBitstream(*plan_.substituteBitstream);
    }
    if (plan_.tamperBitstream) {
        Bytes tampered(blob.begin(), blob.end());
        if (!tampered.empty()) {
            size_t off = plan_.tamperOffset % tampered.size();
            tampered[off] ^= plan_.tamperMask;
        }
        logf(LogLevel::Info, "attack", "tampering CL bitstream at ",
             plan_.tamperOffset);
        return Shell::deployBitstream(tampered);
    }
    return Shell::deployBitstream(blob);
}

uint64_t
MaliciousShell::registerRead(pcie::Window window, uint32_t addr)
{
    if (forging_ && window == pcie::Window::SmSecure) {
        // Fabricate an "alive" heartbeat without touching the fabric.
        // The response MAC is the best the shell can do without
        // Key_attest: a keyless hash of the nonce.
        uint64_t fake = 0;
        switch (addr) {
          case kSmStatus:
            fake = kStatusOk;
            break;
          case kSmOut0:
            fake = forgeNonce_ + 1;
            break;
          case kSmOut1:
            fake = ++forgeCount_;
            break;
          case kSmOut2:
            fake = (forgeNonce_ + forgeCount_) *
                   0x9e3779b97f4a7c15ull; // no Key_attest, no SipHash
            break;
          default:
            break;
        }
        if (plan_.snoopRegisters)
            snoopLog_.push_back({false, window, addr, fake});
        return fake;
    }
    uint64_t value = Shell::registerRead(window, addr);
    uint64_t mask = window == pcie::Window::SmSecure
                        ? plan_.smWindowDataTamperMask
                        : plan_.directWindowDataTamperMask;
    value ^= mask;
    if (plan_.snoopRegisters)
        snoopLog_.push_back({false, window, addr, value});
    return value;
}

void
MaliciousShell::registerWrite(pcie::Window window, uint32_t addr,
                              uint64_t data)
{
    if (plan_.forgeHeartbeats && window == pcie::Window::SmSecure) {
        if (addr == kSmIn0)
            forgeNonce_ = data;
        if (addr == kSmCmd) {
            if (data == kCmdHeartbeat) {
                // Swallow the probe; the fabric never sees it.
                forging_ = true;
                if (plan_.snoopRegisters)
                    snoopLog_.push_back({true, window, addr, data});
                logf(LogLevel::Info, "attack",
                     "forging heartbeat response");
                return;
            }
            forging_ = false;
        }
    }
    uint64_t mask = window == pcie::Window::SmSecure
                        ? plan_.smWindowDataTamperMask
                        : plan_.directWindowDataTamperMask;
    uint64_t effective = data ^ mask;
    if (plan_.snoopRegisters)
        snoopLog_.push_back({true, window, addr, effective});
    Shell::registerWrite(window, addr, effective);
}

void
MaliciousShell::registerBurstWrite(pcie::Window window, uint32_t addr,
                                   const uint64_t *words, size_t count)
{
    // The shell sees every beat of a burst exactly like it sees every
    // single-word write: snoop it, optionally flip bits in flight.
    uint64_t mask = window == pcie::Window::SmSecure
                        ? plan_.smWindowDataTamperMask
                        : plan_.directWindowDataTamperMask;
    std::vector<uint64_t> effective(words, words + count);
    for (auto &w : effective) {
        w ^= mask;
        if (plan_.snoopRegisters)
            snoopLog_.push_back({true, window, addr, w});
    }
    Shell::registerBurstWrite(window, addr, effective.data(), count);
}

void
MaliciousShell::registerBurstRead(pcie::Window window, uint32_t addr,
                                  uint64_t *words, size_t count)
{
    Shell::registerBurstRead(window, addr, words, count);
    uint64_t mask = window == pcie::Window::SmSecure
                        ? plan_.smWindowDataTamperMask
                        : plan_.directWindowDataTamperMask;
    for (size_t i = 0; i < count; ++i) {
        words[i] ^= mask;
        if (plan_.snoopRegisters)
            snoopLog_.push_back({false, window, addr, words[i]});
    }
}

void
MaliciousShell::dmaWrite(uint64_t addr, ByteView data)
{
    if (plan_.tamperDma && !data.empty()) {
        Bytes tampered(data.begin(), data.end());
        tampered[0] ^= 0xff;
        Shell::dmaWrite(addr, tampered);
        return;
    }
    Shell::dmaWrite(addr, data);
}

Bytes
MaliciousShell::dmaRead(uint64_t addr, size_t len)
{
    Bytes out = Shell::dmaRead(addr, len);
    if (plan_.tamperDma && !out.empty())
        out[0] ^= 0xff;
    return out;
}

size_t
MaliciousShell::replayRecordedSmWrites()
{
    // Copy first: the replayed writes themselves get snooped.
    std::vector<pcie::RegisterTxn> recorded = snoopLog_;
    size_t replayed = 0;
    for (const auto &txn : recorded) {
        if (!txn.isWrite || txn.window != pcie::Window::SmSecure)
            continue;
        Shell::registerWrite(txn.window, txn.addr, txn.data);
        ++replayed;
    }
    logf(LogLevel::Info, "attack", "replayed ", replayed,
         " SM-window writes");
    return replayed;
}

std::optional<Bytes>
MaliciousShell::tryConfigScan()
{
    try {
        return device_.readback(partitionId_);
    } catch (const DeviceError &) {
        logf(LogLevel::Info, "attack",
             "config scan blocked: readback disabled");
        return std::nullopt;
    }
}

} // namespace salus::shell
