#include "common/serde.hpp"

namespace salus {

void
BinaryWriter::writeU8(uint8_t v)
{
    buf_.push_back(v);
}

void
BinaryWriter::writeU16(uint16_t v)
{
    buf_.push_back(uint8_t(v));
    buf_.push_back(uint8_t(v >> 8));
}

void
BinaryWriter::writeU32(uint32_t v)
{
    uint8_t tmp[4];
    storeLe32(tmp, v);
    buf_.insert(buf_.end(), tmp, tmp + 4);
}

void
BinaryWriter::writeU64(uint64_t v)
{
    uint8_t tmp[8];
    storeLe64(tmp, v);
    buf_.insert(buf_.end(), tmp, tmp + 8);
}

void
BinaryWriter::writeRaw(ByteView data)
{
    if (!data.empty())
        buf_.insert(buf_.end(), data.begin(), data.end());
}

void
BinaryWriter::writeBytes(ByteView data)
{
    writeU32(uint32_t(data.size()));
    writeRaw(data);
}

void
BinaryWriter::writeString(const std::string &s)
{
    writeU32(uint32_t(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

const uint8_t *
BinaryReader::need(size_t n)
{
    if (remaining() < n)
        throw SerdeError("truncated input");
    const uint8_t *p = data_.data() + pos_;
    pos_ += n;
    return p;
}

uint8_t
BinaryReader::readU8()
{
    return *need(1);
}

uint16_t
BinaryReader::readU16()
{
    const uint8_t *p = need(2);
    return uint16_t(p[0]) | (uint16_t(p[1]) << 8);
}

uint32_t
BinaryReader::readU32()
{
    return loadLe32(need(4));
}

uint64_t
BinaryReader::readU64()
{
    return loadLe64(need(8));
}

Bytes
BinaryReader::readRaw(size_t n)
{
    const uint8_t *p = need(n);
    return Bytes(p, p + n);
}

Bytes
BinaryReader::readBytes()
{
    uint32_t n = readU32();
    if (n > remaining())
        throw SerdeError("length prefix exceeds buffer");
    return readRaw(n);
}

std::string
BinaryReader::readString()
{
    uint32_t n = readU32();
    if (n > remaining())
        throw SerdeError("length prefix exceeds buffer");
    const uint8_t *p = need(n);
    return std::string(p, p + n);
}

} // namespace salus
