/**
 * @file
 * Tiny leveled logger. Protocol components use it to narrate boot and
 * attestation flows; tests silence it by default.
 */

#ifndef SALUS_COMMON_LOG_HPP
#define SALUS_COMMON_LOG_HPP

#include <sstream>
#include <string>

namespace salus {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Sets the global minimum level that is actually printed. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/** Emits one line at the given level with a component tag. */
void logLine(LogLevel level, const std::string &tag,
             const std::string &msg);

namespace detail {

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    format(os, rest...);
}

} // namespace detail

/** Streams all arguments into one log line (no-op below the level). */
template <typename... Args>
void
logf(LogLevel level, const std::string &tag, const Args &...args)
{
    if (level < logLevel())
        return;
    std::ostringstream os;
    detail::format(os, args...);
    logLine(level, tag, os.str());
}

} // namespace salus

#endif // SALUS_COMMON_LOG_HPP
