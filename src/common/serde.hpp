/**
 * @file
 * Minimal binary serialization used by RPC messages, bitstream headers,
 * attestation reports and quotes. Little-endian, length-prefixed.
 */

#ifndef SALUS_COMMON_SERDE_HPP
#define SALUS_COMMON_SERDE_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"
#include "common/errors.hpp"

namespace salus {

/** Appends primitive values to an owned byte buffer. */
class BinaryWriter
{
  public:
    BinaryWriter() = default;

    void writeU8(uint8_t v);
    void writeU16(uint16_t v);
    void writeU32(uint32_t v);
    void writeU64(uint64_t v);
    /** Writes raw bytes with no length prefix. */
    void writeRaw(ByteView data);
    /** Writes a u32 length prefix followed by the bytes. */
    void writeBytes(ByteView data);
    /** Writes a u32 length prefix followed by the UTF-8 string. */
    void writeString(const std::string &s);

    const Bytes &data() const { return buf_; }
    Bytes take() { return std::move(buf_); }

  private:
    Bytes buf_;
};

/**
 * Reads primitive values back out of a byte view.
 *
 * All read methods throw SerdeError on truncated input, which protocol
 * code treats as a malformed (possibly attacker-corrupted) message.
 */
class BinaryReader
{
  public:
    explicit BinaryReader(ByteView data) : data_(data) {}

    uint8_t readU8();
    uint16_t readU16();
    uint32_t readU32();
    uint64_t readU64();
    /** Reads exactly n raw bytes. */
    Bytes readRaw(size_t n);
    /** Reads a u32 length prefix then that many bytes. */
    Bytes readBytes();
    /** Reads a u32 length prefix then that many chars. */
    std::string readString();

    /** Bytes not yet consumed. */
    size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return remaining() == 0; }

  private:
    const uint8_t *need(size_t n);

    ByteView data_;
    size_t pos_ = 0;
};

/** Thrown when deserialization hits truncated or oversized input. */
class SerdeError : public SalusError
{
  public:
    explicit SerdeError(const std::string &what)
        : SalusError("serde: " + what)
    {}
};

} // namespace salus

#endif // SALUS_COMMON_SERDE_HPP
