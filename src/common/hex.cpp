#include "common/hex.hpp"

#include <cctype>
#include <stdexcept>

namespace salus {

std::string
hexEncode(ByteView data)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (uint8_t b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

namespace {

int
nibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

Bytes
hexDecode(const std::string &hex)
{
    Bytes out;
    out.reserve(hex.size() / 2);
    int hi = -1;
    for (char c : hex) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        int n = nibble(c);
        if (n < 0)
            throw std::invalid_argument("hexDecode: bad character");
        if (hi < 0) {
            hi = n;
        } else {
            out.push_back(uint8_t((hi << 4) | n));
            hi = -1;
        }
    }
    if (hi >= 0)
        throw std::invalid_argument("hexDecode: odd digit count");
    return out;
}

} // namespace salus
