#include "common/bytes.hpp"

#include <stdexcept>

namespace salus {

Bytes
bytesFromString(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

std::string
stringFromBytes(ByteView data)
{
    return std::string(data.begin(), data.end());
}

Bytes
concatBytes(std::initializer_list<ByteView> parts)
{
    size_t total = 0;
    for (const auto &p : parts)
        total += p.size();
    Bytes out;
    out.reserve(total);
    for (const auto &p : parts)
        out.insert(out.end(), p.begin(), p.end());
    return out;
}

Bytes
sliceBytes(ByteView data, size_t offset, size_t len)
{
    if (offset > data.size() || len > data.size() - offset)
        throw std::out_of_range("sliceBytes: range outside buffer");
    return Bytes(data.begin() + offset, data.begin() + offset + len);
}

void
xorInto(Bytes &a, ByteView b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("xorInto: size mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] ^= b[i];
}

void
secureZero(uint8_t *p, size_t n)
{
    volatile uint8_t *vp = p;
    for (size_t i = 0; i < n; ++i)
        vp[i] = 0;
}

void
secureZero(Bytes &b)
{
    if (!b.empty())
        secureZero(b.data(), b.size());
}

uint32_t
loadBe32(const uint8_t *p)
{
    return (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
           (uint32_t(p[2]) << 8) | uint32_t(p[3]);
}

void
storeBe32(uint8_t *p, uint32_t v)
{
    p[0] = uint8_t(v >> 24);
    p[1] = uint8_t(v >> 16);
    p[2] = uint8_t(v >> 8);
    p[3] = uint8_t(v);
}

uint64_t
loadBe64(const uint8_t *p)
{
    return (uint64_t(loadBe32(p)) << 32) | loadBe32(p + 4);
}

void
storeBe64(uint8_t *p, uint64_t v)
{
    storeBe32(p, uint32_t(v >> 32));
    storeBe32(p + 4, uint32_t(v));
}

uint32_t
loadLe32(const uint8_t *p)
{
    return uint32_t(p[0]) | (uint32_t(p[1]) << 8) |
           (uint32_t(p[2]) << 16) | (uint32_t(p[3]) << 24);
}

void
storeLe32(uint8_t *p, uint32_t v)
{
    p[0] = uint8_t(v);
    p[1] = uint8_t(v >> 8);
    p[2] = uint8_t(v >> 16);
    p[3] = uint8_t(v >> 24);
}

uint64_t
loadLe64(const uint8_t *p)
{
    return uint64_t(loadLe32(p)) | (uint64_t(loadLe32(p + 4)) << 32);
}

void
storeLe64(uint8_t *p, uint64_t v)
{
    storeLe32(p, uint32_t(v));
    storeLe32(p + 4, uint32_t(v >> 32));
}

} // namespace salus
