/**
 * @file
 * Hexadecimal encoding/decoding helpers.
 */

#ifndef SALUS_COMMON_HEX_HPP
#define SALUS_COMMON_HEX_HPP

#include <string>

#include "common/bytes.hpp"

namespace salus {

/** Encodes bytes as lowercase hex. */
std::string hexEncode(ByteView data);

/**
 * Decodes a hex string (case-insensitive, optional whitespace).
 * @throws std::invalid_argument on malformed input.
 */
Bytes hexDecode(const std::string &hex);

} // namespace salus

#endif // SALUS_COMMON_HEX_HPP
