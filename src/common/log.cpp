#include "common/log.hpp"

#include <cstdio>

namespace salus {

namespace {

LogLevel gLevel = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DBG";
      case LogLevel::Info: return "INF";
      case LogLevel::Warn: return "WRN";
      case LogLevel::Error: return "ERR";
      default: return "???";
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
logLine(LogLevel level, const std::string &tag, const std::string &msg)
{
    if (level < gLevel)
        return;
    std::fprintf(stderr, "[%s] %-12s %s\n", levelName(level), tag.c_str(),
                 msg.c_str());
}

} // namespace salus
