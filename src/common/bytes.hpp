/**
 * @file
 * Core byte-buffer aliases and helpers used across the code base.
 */

#ifndef SALUS_COMMON_BYTES_HPP
#define SALUS_COMMON_BYTES_HPP

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace salus {

/** Owning byte buffer. */
using Bytes = std::vector<uint8_t>;

/** Non-owning read-only view over bytes. */
using ByteView = std::span<const uint8_t>;

/** Builds a Bytes buffer from a C string (no terminating NUL). */
Bytes bytesFromString(const std::string &s);

/** Renders a byte buffer as a std::string (may contain NULs). */
std::string stringFromBytes(ByteView data);

/** Concatenates any number of byte views into a fresh buffer. */
Bytes concatBytes(std::initializer_list<ByteView> parts);

/** Returns data[offset, offset+len); throws std::out_of_range if OOB. */
Bytes sliceBytes(ByteView data, size_t offset, size_t len);

/** XORs b into a (a ^= b); sizes must match. */
void xorInto(Bytes &a, ByteView b);

/** Overwrites the buffer with zeros (best-effort secure wipe). */
void secureZero(Bytes &b);

/** Overwrites a raw region with zeros (best-effort secure wipe). */
void secureZero(uint8_t *p, size_t n);

/** Reads a big-endian 32-bit word. */
uint32_t loadBe32(const uint8_t *p);

/** Writes a big-endian 32-bit word. */
void storeBe32(uint8_t *p, uint32_t v);

/** Reads a big-endian 64-bit word. */
uint64_t loadBe64(const uint8_t *p);

/** Writes a big-endian 64-bit word. */
void storeBe64(uint8_t *p, uint64_t v);

/** Reads a little-endian 32-bit word. */
uint32_t loadLe32(const uint8_t *p);

/** Writes a little-endian 32-bit word. */
void storeLe32(uint8_t *p, uint32_t v);

/** Reads a little-endian 64-bit word. */
uint64_t loadLe64(const uint8_t *p);

/** Writes a little-endian 64-bit word. */
void storeLe64(uint8_t *p, uint64_t v);

} // namespace salus

#endif // SALUS_COMMON_BYTES_HPP
