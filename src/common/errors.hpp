/**
 * @file
 * Exception hierarchy. Exceptions indicate misuse or internal errors;
 * expected protocol outcomes (failed attestation, rejected MAC, ...)
 * are reported through status values, never exceptions.
 */

#ifndef SALUS_COMMON_ERRORS_HPP
#define SALUS_COMMON_ERRORS_HPP

#include <stdexcept>
#include <string>

namespace salus {

/** Base for all salus exceptions. */
class SalusError : public std::runtime_error
{
  public:
    explicit SalusError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Bad key size, bad nonce size, invalid cipher state, etc. */
class CryptoError : public SalusError
{
  public:
    explicit CryptoError(const std::string &what)
        : SalusError("crypto: " + what)
    {}
};

/** Structural errors in bitstreams or netlists. */
class BitstreamError : public SalusError
{
  public:
    explicit BitstreamError(const std::string &what)
        : SalusError("bitstream: " + what)
    {}
};

/** Device-model misuse (bad frame address, no such partition, ...). */
class DeviceError : public SalusError
{
  public:
    explicit DeviceError(const std::string &what)
        : SalusError("device: " + what)
    {}
};

/** TEE-platform misuse (enclave not loaded, bad key request, ...). */
class TeeError : public SalusError
{
  public:
    explicit TeeError(const std::string &what)
        : SalusError("tee: " + what)
    {}
};

/** RPC/network-layer misuse (unknown endpoint, no handler, ...). */
class NetError : public SalusError
{
  public:
    explicit NetError(const std::string &what)
        : SalusError("net: " + what)
    {}
};

} // namespace salus

#endif // SALUS_COMMON_ERRORS_HPP
