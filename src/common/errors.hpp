/**
 * @file
 * Exception hierarchy. Exceptions indicate misuse or internal errors;
 * expected protocol outcomes (failed attestation, rejected MAC, ...)
 * are reported through status values, never exceptions.
 */

#ifndef SALUS_COMMON_ERRORS_HPP
#define SALUS_COMMON_ERRORS_HPP

#include <stdexcept>
#include <string>

namespace salus {

/** Base for all salus exceptions. */
class SalusError : public std::runtime_error
{
  public:
    explicit SalusError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Bad key size, bad nonce size, invalid cipher state, etc. */
class CryptoError : public SalusError
{
  public:
    explicit CryptoError(const std::string &what)
        : SalusError("crypto: " + what)
    {}
};

/**
 * Structured context a transport error carries: which link and method
 * failed, and on which attempt — so retry layers and logs never have
 * to parse it back out of the message string.
 */
struct ErrorContext
{
    std::string from;
    std::string to;
    std::string method;
    int attempt = 0;

    bool empty() const
    {
        return from.empty() && to.empty() && method.empty();
    }

    std::string describe() const
    {
        if (empty())
            return "";
        std::string s = " [" + from + "->" + to;
        if (!method.empty())
            s += " " + method;
        if (attempt > 0)
            s += " attempt " + std::to_string(attempt);
        return s + "]";
    }
};

/** Structural errors in bitstreams or netlists. */
class BitstreamError : public SalusError
{
  public:
    explicit BitstreamError(const std::string &what)
        : SalusError("bitstream: " + what)
    {}

    BitstreamError(const std::string &what, ErrorContext context)
        : SalusError("bitstream: " + what + context.describe()),
          context_(std::move(context))
    {}

    const ErrorContext &context() const { return context_; }

  private:
    ErrorContext context_;
};

/** Device-model misuse (bad frame address, no such partition, ...). */
class DeviceError : public SalusError
{
  public:
    explicit DeviceError(const std::string &what)
        : SalusError("device: " + what)
    {}
};

/** TEE-platform misuse (enclave not loaded, bad key request, ...). */
class TeeError : public SalusError
{
  public:
    explicit TeeError(const std::string &what)
        : SalusError("tee: " + what)
    {}

    TeeError(const std::string &what, ErrorContext context)
        : SalusError("tee: " + what + context.describe()),
          context_(std::move(context))
    {}

    const ErrorContext &context() const { return context_; }

  private:
    ErrorContext context_;
};

/** RPC/network-layer failures (unknown endpoint, dropped message, ...). */
class NetError : public SalusError
{
  public:
    explicit NetError(const std::string &what)
        : SalusError("net: " + what)
    {}

    NetError(const std::string &what, ErrorContext context)
        : SalusError("net: " + what + context.describe()),
          context_(std::move(context))
    {}

    const ErrorContext &context() const { return context_; }

  protected:
    // For subclasses that build their own prefix.
    NetError(const std::string &rendered, ErrorContext context, int)
        : SalusError(rendered), context_(std::move(context))
    {}

  private:
    ErrorContext context_;
};

/**
 * A call exceeded its virtual-time deadline. Derives from NetError so
 * existing transport-failure handlers keep working; retry layers that
 * care can catch it first (timeouts re-run with a fresh nonce).
 */
class TimeoutError : public NetError
{
  public:
    TimeoutError(const std::string &what, ErrorContext context = {})
        : NetError("net: timeout: " + what + context.describe(),
                   std::move(context), 0)
    {}
};

/**
 * An operation's completion is indeterminate because the device it
 * was issued against was quarantined (and possibly failed over) while
 * the result was outstanding. The op was NOT silently re-issued on
 * the replacement device — non-idempotent accelerator ops must land
 * exactly once, so the caller decides whether to re-issue on the
 * fresh session.
 */
class FailoverError : public SalusError
{
  public:
    FailoverError(const std::string &what, ErrorContext context = {})
        : SalusError("failover: " + what + context.describe()),
          context_(std::move(context))
    {}

    const ErrorContext &context() const { return context_; }

  private:
    ErrorContext context_;
};

/**
 * A planned live migration could not move the session: no eligible
 * target device, a refused migration ticket, or a failed
 * re-attestation on the target. The session is left where the failure
 * found it (on the source when the ticket never committed), so the
 * caller can keep serving or retry with a different target.
 */
class MigrationError : public SalusError
{
  public:
    MigrationError(const std::string &what, ErrorContext context = {})
        : SalusError("migration: " + what + context.describe()),
          context_(std::move(context))
    {}

    const ErrorContext &context() const { return context_; }

  private:
    ErrorContext context_;
};

/**
 * Base of the broker's per-tenant policy rejections. A policy
 * rejection is deterministic — the broker applied the tenant's
 * configured quota/rate/overload policy to a well-formed request — so
 * it is NEVER retryable: replaying the same request cannot change the
 * verdict, and a retry loop hammering a policy wall is exactly the
 * noisy-neighbour behaviour the policy exists to stop. RetryPolicy
 * layers classify these as FailureClass::Policy and return
 * immediately (unlike transport faults).
 */
class PolicyError : public SalusError
{
  public:
    explicit PolicyError(const std::string &what,
                         ErrorContext context = {})
        : SalusError("policy: " + what + context.describe()),
          context_(std::move(context))
    {}

    const ErrorContext &context() const { return context_; }

  protected:
    // For subclasses that build their own prefix.
    PolicyError(const std::string &rendered, ErrorContext context, int)
        : SalusError(rendered), context_(std::move(context))
    {}

  private:
    ErrorContext context_;
};

/** A tenant asked for more than its configured share (session slots,
 *  queued ops). Freed capacity — not retries — unblocks it. */
class QuotaExceeded : public PolicyError
{
  public:
    explicit QuotaExceeded(const std::string &what,
                           ErrorContext context = {})
        : PolicyError("policy: quota exceeded: " + what +
                          context.describe(),
                      std::move(context), 0)
    {}
};

/** A tenant outran its token bucket. Tokens refill on the VIRTUAL
 *  clock, so only simulated time passing — never a retry loop —
 *  earns new admissions. */
class RateLimited : public PolicyError
{
  public:
    explicit RateLimited(const std::string &what,
                         ErrorContext context = {})
        : PolicyError("policy: rate limited: " + what +
                          context.describe(),
                      std::move(context), 0)
    {}
};

/** The broker as a whole is over capacity and is shedding this
 *  tenant's new work (lowest weight first) to protect the rest.
 *  In-flight and already-queued secure ops are never dropped. */
class Overloaded : public PolicyError
{
  public:
    explicit Overloaded(const std::string &what,
                        ErrorContext context = {})
        : PolicyError("policy: overloaded: " + what +
                          context.describe(),
                      std::move(context), 0)
    {}
};

/**
 * The SM enclave process died mid-operation (an injected
 * `sm_crash_at<step>` fault). Tests catch this, rebuild the enclave
 * and drive the journal-based recovery path.
 */
class SmCrashError : public SalusError
{
  public:
    explicit SmCrashError(const std::string &what)
        : SalusError("sm-crash: " + what)
    {}
};

} // namespace salus

#endif // SALUS_COMMON_ERRORS_HPP
