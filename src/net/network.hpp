/**
 * @file
 * In-process RPC fabric standing in for the paper's gRPC deployment
 * (§5.2). Endpoints register method handlers; calls are synchronous
 * and charge virtual time according to the link class between the two
 * endpoints (WAN for the user client, intra-cloud for the manufacturer
 * server, loopback between co-located processes).
 *
 * A tap hook observes every payload in flight — the "network attacker
 * snooping" of the threat model (Fig. 2) — so tests can assert that
 * secrets never cross a link in plaintext.
 */

#ifndef SALUS_NET_NETWORK_HPP
#define SALUS_NET_NETWORK_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "net/retry.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "sim/fault.hpp"

namespace salus::net {

/** Handles one RPC method; returns the response payload. */
using Handler = std::function<Bytes(ByteView request)>;

/** Observes (and may record) traffic; cannot modify it. */
using Tap = std::function<void(const std::string &from,
                               const std::string &to,
                               const std::string &method,
                               ByteView payload)>;

/**
 * Mutates traffic in flight — used to model active man-in-the-middle
 * attacks on a link in tests. Returning false drops the message.
 */
using Interposer = std::function<bool(const std::string &from,
                                      const std::string &to,
                                      const std::string &method,
                                      Bytes &payload)>;

/** Synchronous RPC network with latency accounting. */
class Network
{
  public:
    Network(sim::VirtualClock &clock, const sim::CostModel &cost)
        : clock_(clock), cost_(cost)
    {}

    /** Declares an endpoint by name. */
    void addEndpoint(const std::string &name);

    /** Sets the link class between two endpoints (symmetric). */
    void link(const std::string &a, const std::string &b,
              sim::LinkKind kind);

    /** Registers a method handler on an endpoint. */
    void on(const std::string &endpoint, const std::string &method,
            Handler handler);

    /**
     * Performs a synchronous call, advancing the virtual clock and
     * attributing the time to `phase` (or "network" if empty).
     * @param deadline optional per-call virtual-time budget; when
     *        nonzero and exceeded (e.g. by injected delay faults) the
     *        call throws TimeoutError after charging the time.
     * @throws NetError for unknown endpoints/methods, missing links,
     *         or injected drops; TimeoutError past the deadline. Both
     *         carry an ErrorContext naming the link and method.
     */
    Bytes call(const std::string &from, const std::string &to,
               const std::string &method, ByteView request,
               const std::string &phase = "", sim::Nanos deadline = 0);

    /**
     * call() wrapped in a RetryPolicy: transport faults and timeouts
     * are retried with exponential backoff charged to the virtual
     * clock; the typed outcome reports the final failure class and
     * attempt count. Only use for idempotent or fresh-per-attempt
     * requests — security rejections never reach this layer (they are
     * responses, not transport errors).
     */
    CallOutcome callWithRetry(const std::string &from,
                              const std::string &to,
                              const std::string &method, ByteView request,
                              const RetryPolicy &policy,
                              const std::string &phase = "");

    /** Installs a passive observer over all traffic. */
    void setTap(Tap tap) { tap_ = std::move(tap); }

    /** Installs an active man-in-the-middle on all traffic. */
    void setInterposer(Interposer ip) { interposer_ = std::move(ip); }

    /** Wires the deterministic fault fabric (nullptr = fault-free).
     *  Injected drops surface as NetError exactly like interposer
     *  drops, so honest and malicious paths share one mechanism. */
    void setFaultInjector(sim::FaultInjector *injector)
    {
        fault_ = injector;
    }

    sim::VirtualClock &clock() { return clock_; }
    const sim::CostModel &cost() const { return cost_; }

  private:
    /** A message held back by a reorder fault, delivered stale. */
    struct HeldMessage
    {
        std::string from, to, method;
        Bytes payload;
    };

    sim::LinkKind linkKind(const std::string &a,
                           const std::string &b) const;
    void deliverHeld();

    sim::VirtualClock &clock_;
    const sim::CostModel &cost_;
    std::map<std::string, std::map<std::string, Handler>> handlers_;
    std::map<std::pair<std::string, std::string>, sim::LinkKind> links_;
    Tap tap_;
    Interposer interposer_;
    sim::FaultInjector *fault_ = nullptr;
    std::vector<HeldMessage> held_;
    bool delivering_ = false;
};

} // namespace salus::net

#endif // SALUS_NET_NETWORK_HPP
