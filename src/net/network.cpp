#include "net/network.hpp"

#include "common/errors.hpp"
#include "common/log.hpp"

namespace salus::net {

void
Network::addEndpoint(const std::string &name)
{
    handlers_.try_emplace(name);
}

void
Network::link(const std::string &a, const std::string &b,
              sim::LinkKind kind)
{
    if (!handlers_.count(a) || !handlers_.count(b))
        throw NetError("link between unknown endpoints " + a + "," + b);
    links_[{a, b}] = kind;
    links_[{b, a}] = kind;
}

void
Network::on(const std::string &endpoint, const std::string &method,
            Handler handler)
{
    auto it = handlers_.find(endpoint);
    if (it == handlers_.end())
        throw NetError("unknown endpoint " + endpoint);
    it->second[method] = std::move(handler);
}

sim::LinkKind
Network::linkKind(const std::string &a, const std::string &b) const
{
    auto it = links_.find({a, b});
    if (it == links_.end())
        throw NetError("no link between " + a + " and " + b,
                       ErrorContext{a, b, "", 0});
    return it->second;
}

void
Network::deliverHeld()
{
    if (delivering_ || held_.empty())
        return;
    delivering_ = true;
    std::vector<HeldMessage> pending;
    pending.swap(held_);
    for (HeldMessage &m : pending) {
        auto nodeIt = handlers_.find(m.to);
        if (nodeIt == handlers_.end())
            continue;
        auto methodIt = nodeIt->second.find(m.method);
        if (methodIt == nodeIt->second.end())
            continue;
        if (tap_)
            tap_(m.from, m.to, m.method + ":stale", m.payload);
        try {
            // Stale (reordered) delivery: the response, if any, goes
            // nowhere — the original caller already gave up on it.
            // Replay/freshness defenses at the receiver must cope.
            methodIt->second(m.payload);
        } catch (const SalusError &e) {
            logf(LogLevel::Debug, "net", "stale delivery rejected: ",
                 e.what());
        }
    }
    delivering_ = false;
}

Bytes
Network::call(const std::string &from, const std::string &to,
              const std::string &method, ByteView request,
              const std::string &phase, sim::Nanos deadline)
{
    // Reordered messages from earlier calls arrive (stale) first.
    deliverHeld();

    ErrorContext ctx{from, to, method, 0};
    auto nodeIt = handlers_.find(to);
    if (nodeIt == handlers_.end())
        throw NetError("unknown endpoint " + to, ctx);
    auto methodIt = nodeIt->second.find(method);
    if (methodIt == nodeIt->second.end())
        throw NetError("endpoint " + to + " has no method " + method,
                       ctx);

    sim::LinkKind kind = linkKind(from, to);
    const std::string phaseName =
        phase.empty() ? clock_.currentPhase() : phase;
    sim::Nanos start = clock_.now();

    Bytes req(request.begin(), request.end());
    if (tap_)
        tap_(from, to, method, req);
    bool duplicate = false;
    if (fault_) {
        sim::RpcFault f = fault_->onRpc(from, to, method, req);
        if (f.delay)
            clock_.spend(phaseName, f.delay);
        if (f.drop) {
            clock_.spend(phaseName, cost_.rpc(kind, req.size(), 0));
            throw NetError("message dropped on link " + from + "->" + to,
                           ctx);
        }
        if (f.reorder) {
            // The fabric holds the message and delivers it out of
            // order before the next call; this attempt sees a loss.
            held_.push_back({from, to, method, req});
            clock_.spend(phaseName, cost_.rpc(kind, req.size(), 0));
            throw NetError("message reordered (held) on link " + from +
                               "->" + to,
                           ctx);
        }
        duplicate = f.duplicate;
    }
    if (interposer_) {
        if (!interposer_(from, to, method, req))
            throw NetError("message dropped on link " + from + "->" + to,
                           ctx);
    }

    Bytes response = methodIt->second(req);
    if (duplicate) {
        // Receiver sees the payload twice; the second response is the
        // one the caller observes (exercises handler idempotency).
        response = methodIt->second(req);
    }

    if (tap_)
        tap_(to, from, method + ":response", response);
    if (fault_) {
        sim::RpcFault f =
            fault_->onRpc(to, from, method + ":response", response);
        if (f.delay)
            clock_.spend(phaseName, f.delay);
        if (f.drop || f.reorder) {
            clock_.spend(phaseName,
                         cost_.rpc(kind, req.size(), response.size()));
            throw NetError("response dropped on link " + to + "->" + from,
                           ctx);
        }
    }
    if (interposer_) {
        if (!interposer_(to, from, method + ":response", response))
            throw NetError("response dropped on link " + to + "->" + from,
                           ctx);
    }

    clock_.spend(phaseName, cost_.rpc(kind, request.size(),
                                      response.size()));
    if (deadline && clock_.now() - start > deadline)
        throw TimeoutError("call exceeded deadline of " +
                               sim::formatNanos(deadline),
                           ctx);
    return response;
}

CallOutcome
Network::callWithRetry(const std::string &from, const std::string &to,
                       const std::string &method, ByteView request,
                       const RetryPolicy &policy, const std::string &phase)
{
    CallOutcome out;
    int attempts = policy.maxAttempts < 1 ? 1 : policy.maxAttempts;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        out.attempts = attempt;
        if (attempt > 1) {
            clock_.spend(kRetryBackoffPhase,
                         policy.backoffBefore(attempt));
            logf(LogLevel::Debug, "net", "retrying ", method, " (",
                 attempt, "/", attempts, ")");
        }
        try {
            out.response = call(from, to, method, request, phase,
                                policy.deadline);
            out.failure = FailureClass::None;
            out.error.clear();
            out.context = ErrorContext{};
            return out;
        } catch (const TimeoutError &e) {
            out.failure = FailureClass::Timeout;
            out.error = e.what();
            out.context = e.context();
            out.context.attempt = attempt;
        } catch (const PolicyError &e) {
            // Deterministic policy verdict (quota/rate/overload): a
            // retry replays the same request into the same wall, so
            // the schedule stops here — unlike transport faults.
            out.failure = FailureClass::Policy;
            out.error = e.what();
            out.context = e.context();
            out.context.attempt = attempt;
            return out;
        } catch (const NetError &e) {
            out.failure = FailureClass::Transport;
            out.error = e.what();
            out.context = e.context();
            out.context.attempt = attempt;
        }
    }
    out.error += " (after " + std::to_string(out.attempts) + " attempts)";
    if (policy.enabled()) {
        // A bounded schedule was exhausted by transport-class faults:
        // classify as persistent so the caller escalates to its
        // supervisor instead of hammering the same device/link.
        out.failure = FailureClass::Persistent;
        if (policy.onExhausted)
            policy.onExhausted(out.context);
    }
    return out;
}

} // namespace salus::net
