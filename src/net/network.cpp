#include "net/network.hpp"

#include "common/errors.hpp"

namespace salus::net {

void
Network::addEndpoint(const std::string &name)
{
    handlers_.try_emplace(name);
}

void
Network::link(const std::string &a, const std::string &b,
              sim::LinkKind kind)
{
    if (!handlers_.count(a) || !handlers_.count(b))
        throw NetError("link between unknown endpoints " + a + "," + b);
    links_[{a, b}] = kind;
    links_[{b, a}] = kind;
}

void
Network::on(const std::string &endpoint, const std::string &method,
            Handler handler)
{
    auto it = handlers_.find(endpoint);
    if (it == handlers_.end())
        throw NetError("unknown endpoint " + endpoint);
    it->second[method] = std::move(handler);
}

sim::LinkKind
Network::linkKind(const std::string &a, const std::string &b) const
{
    auto it = links_.find({a, b});
    if (it == links_.end())
        throw NetError("no link between " + a + " and " + b);
    return it->second;
}

Bytes
Network::call(const std::string &from, const std::string &to,
              const std::string &method, ByteView request,
              const std::string &phase)
{
    auto nodeIt = handlers_.find(to);
    if (nodeIt == handlers_.end())
        throw NetError("unknown endpoint " + to);
    auto methodIt = nodeIt->second.find(method);
    if (methodIt == nodeIt->second.end())
        throw NetError("endpoint " + to + " has no method " + method);

    sim::LinkKind kind = linkKind(from, to);

    Bytes req(request.begin(), request.end());
    if (tap_)
        tap_(from, to, method, req);
    if (interposer_) {
        if (!interposer_(from, to, method, req))
            throw NetError("message dropped on link " + from + "->" + to);
    }

    Bytes response = methodIt->second(req);

    if (tap_)
        tap_(to, from, method + ":response", response);
    if (interposer_) {
        if (!interposer_(to, from, method + ":response", response))
            throw NetError("response dropped on link " + to + "->" + from);
    }

    clock_.spend(phase.empty() ? clock_.currentPhase() : phase,
                 cost_.rpc(kind, request.size(), response.size()));
    return response;
}

} // namespace salus::net
