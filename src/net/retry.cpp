#include "net/retry.hpp"

#include "sim/fault.hpp"

namespace salus::net {

const char *
failureClassName(FailureClass f)
{
    switch (f) {
      case FailureClass::None:
        return "none";
      case FailureClass::Transport:
        return "transport";
      case FailureClass::Timeout:
        return "timeout";
      case FailureClass::Security:
        return "security";
      case FailureClass::Policy:
        return "policy";
      case FailureClass::Persistent:
        return "persistent";
    }
    return "?";
}

sim::Nanos
RetryPolicy::backoffBefore(int attempt) const
{
    if (attempt <= 1)
        return 0;
    double base = double(initialBackoff);
    for (int i = 2; i < attempt; ++i)
        base *= backoffMultiplier;
    if (base > double(maxBackoff))
        base = double(maxBackoff);
    // Deterministic jitter in [1 - j, 1 + j): same seed, same schedule.
    uint64_t state = jitterSeed ^ (uint64_t(attempt) * 0x9e3779b9ull);
    double unit = double(sim::splitmix64(state) >> 11) * 0x1.0p-53;
    double factor = 1.0 + jitterFraction * (2.0 * unit - 1.0);
    double jittered = base * factor;
    if (jittered < 0)
        jittered = 0;
    return sim::Nanos(jittered);
}

RetryPolicy
RetryPolicy::none()
{
    RetryPolicy p;
    p.maxAttempts = 1;
    p.deadline = 0;
    return p;
}

RetryPolicy
RetryPolicy::standard()
{
    RetryPolicy p;
    p.maxAttempts = 4;
    p.initialBackoff = 50 * sim::kMs;
    p.backoffMultiplier = 2.0;
    p.maxBackoff = 2 * sim::kSec;
    p.jitterFraction = 0.25;
    p.deadline = 0;
    return p;
}

} // namespace salus::net
