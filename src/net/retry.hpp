/**
 * @file
 * Bounded retry with exponential backoff for the RPC fabric and the
 * protocol drivers built on it. Backoff and jitter are charged to the
 * VIRTUAL clock, and jitter comes from a seeded splitmix64 stream, so
 * a retried run is exactly as reproducible as a fault-free one.
 *
 * Typed outcomes keep the crucial distinction the threat model
 * demands: transport faults (drops, timeouts) are retryable, security
 * rejections (bad MAC, failed attestation, refused key release) are
 * terminal and must never be silently retried into acceptance.
 */

#ifndef SALUS_NET_RETRY_HPP
#define SALUS_NET_RETRY_HPP

#include <functional>
#include <string>

#include "common/bytes.hpp"
#include "common/errors.hpp"
#include "sim/clock.hpp"

namespace salus::net {

/** Why an operation ultimately failed. */
enum class FailureClass : uint8_t {
    None = 0,  ///< succeeded
    Transport, ///< message lost/garbled in flight — retryable
    Timeout,   ///< per-call deadline exceeded — retryable, new nonce
    Security,  ///< verification/policy rejection — NEVER retried
    /** A broker policy rejection (QuotaExceeded / RateLimited /
     *  Overloaded): deterministic, so NEVER retried — only freed
     *  capacity or virtual time passing can change the verdict. */
    Policy,
    /** A bounded retry schedule was exhausted by transport-class
     *  failures: the fault is no longer plausibly transient. The
     *  caller must NOT keep hammering the same device — a fleet
     *  supervisor decides quarantine/failover (see salus::core::
     *  Supervisor). Reported only when retries were enabled. */
    Persistent,
};

const char *failureClassName(FailureClass f);

/** Retry schedule: bounded attempts, exponential backoff + jitter. */
struct RetryPolicy
{
    /** Total attempts including the first; 1 disables retries. */
    int maxAttempts = 1;
    sim::Nanos initialBackoff = 50 * sim::kMs;
    double backoffMultiplier = 2.0;
    sim::Nanos maxBackoff = 2 * sim::kSec;
    /** +/- fraction of deterministic jitter applied to each backoff. */
    double jitterFraction = 0.25;
    /** Per-call virtual-time deadline; 0 disables the check. */
    sim::Nanos deadline = 0;
    /** Seed for the jitter stream (mixed with the attempt number). */
    uint64_t jitterSeed = 0x5a105f4b;

    /**
     * Fleet-aware hook: invoked once when the schedule is exhausted
     * by transport-class failures (the outcome is then classified
     * FailureClass::Persistent). Lets a supervisor observe persistent
     * per-device failure without the caller owning failover policy.
     */
    std::function<void(const ErrorContext &)> onExhausted;

    bool enabled() const { return maxAttempts > 1; }

    /** Backoff charged before attempt N (N >= 2); deterministic. */
    sim::Nanos backoffBefore(int attempt) const;

    /** No retries, no deadline — the seed repo's behaviour. */
    static RetryPolicy none();

    /** Default self-healing schedule: 4 attempts, 50 ms..2 s. */
    static RetryPolicy standard();
};

/** Phase label retry backoff is charged to on the virtual clock. */
inline const char *const kRetryBackoffPhase = "Retry Backoff";

/** Typed result of a (possibly retried) call. */
struct CallOutcome
{
    FailureClass failure = FailureClass::Transport;
    Bytes response;
    std::string error;
    int attempts = 0;
    /** Structured context of the last failure (empty on success). */
    ErrorContext context;

    bool ok() const { return failure == FailureClass::None; }
};

} // namespace salus::net

#endif // SALUS_NET_RETRY_HPP
