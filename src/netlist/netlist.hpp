/**
 * @file
 * Post-synthesis netlist model. A custom logic (CL) design is a flat
 * list of hierarchically named cells: logic cells that reference a
 * behavioural IP implementation by id (the simulator's stand-in for
 * LUT configuration), BRAM cells that carry initialization contents,
 * and interface cells. Each cell carries a resource vector so Table 5
 * style utilization reports come from the design itself.
 *
 * The SM logic reserves BRAM cells for Key_attest / Key_session /
 * Ctr_session; the bitstream compiler records their placed locations
 * in a logic-location file so the SM enclave can patch them at the
 * bitstream level (paper §2.3, §4.2).
 */

#ifndef SALUS_NETLIST_NETLIST_HPP
#define SALUS_NETLIST_NETLIST_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace salus::netlist {

/** FPGA resource consumption (paper Table 5 columns plus DSP). */
struct ResourceVector
{
    uint32_t luts = 0;
    uint32_t registers = 0;
    uint32_t brams = 0;
    uint32_t dsps = 0;

    ResourceVector &operator+=(const ResourceVector &o);

    /** True when every component fits within `capacity`. */
    bool fitsWithin(const ResourceVector &capacity) const;
};

/** Component-wise sum. */
ResourceVector operator+(ResourceVector a, const ResourceVector &b);

/** Kind of a netlist cell. */
enum class CellKind : uint8_t {
    Logic = 0, ///< behavioural logic block (references the IP catalog)
    Bram = 1,  ///< block RAM with initialization contents
    Iface = 2, ///< interface stub (AXI ports etc.), no behaviour
};

/** One placed-and-routed cell. */
struct Cell
{
    std::string path;   ///< hierarchical name, '/'-separated
    CellKind kind = CellKind::Logic;
    ResourceVector resources;
    /** BRAM initialization contents (Bram cells only). */
    Bytes init;
    /** Behaviour id into the IP catalog (Logic cells only). */
    uint32_t behaviorId = 0;
    /** Free-form parameter blob handed to the behaviour model. */
    Bytes params;
};

/** Location of one BRAM cell's init bytes inside a serialization. */
struct BramSpan
{
    std::string path;
    size_t offset; ///< byte offset of the init contents
    size_t length; ///< init length in bytes
};

/** A complete CL design as emitted by "synthesis". */
class Netlist
{
  public:
    Netlist() = default;
    explicit Netlist(std::string topName) : top_(std::move(topName)) {}

    const std::string &top() const { return top_; }
    void setTop(std::string name) { top_ = std::move(name); }

    /** Appends a cell; paths must be unique. */
    void addCell(Cell cell);

    const std::vector<Cell> &cells() const { return cells_; }
    std::vector<Cell> &cells() { return cells_; }

    /** Looks a cell up by hierarchical path. */
    const Cell *findCell(const std::string &path) const;
    Cell *findCell(const std::string &path);

    /** Total resource usage over all cells. */
    ResourceVector totalResources() const;

    /** Resource usage of cells under the given hierarchy prefix. */
    ResourceVector resourcesUnder(const std::string &prefix) const;

    /** Deterministic wire encoding (used by the compiler). */
    Bytes serialize() const;

    /**
     * Serializes and reports where each BRAM cell's init bytes landed,
     * so the bitstream compiler can emit a logic-location file.
     */
    Bytes serializeWithSpans(std::vector<BramSpan> &spans) const;

    /** Parses a serialized netlist; throws BitstreamError on garbage. */
    static Netlist deserialize(ByteView data);

    /** SHA-256 over the serialized form. */
    Bytes digest() const;

  private:
    std::string top_;
    std::vector<Cell> cells_;
};

} // namespace salus::netlist

#endif // SALUS_NETLIST_NETLIST_HPP
