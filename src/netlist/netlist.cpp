#include "netlist/netlist.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace salus::netlist {

ResourceVector &
ResourceVector::operator+=(const ResourceVector &o)
{
    luts += o.luts;
    registers += o.registers;
    brams += o.brams;
    dsps += o.dsps;
    return *this;
}

ResourceVector
operator+(ResourceVector a, const ResourceVector &b)
{
    a += b;
    return a;
}

bool
ResourceVector::fitsWithin(const ResourceVector &capacity) const
{
    return luts <= capacity.luts && registers <= capacity.registers &&
           brams <= capacity.brams && dsps <= capacity.dsps;
}

void
Netlist::addCell(Cell cell)
{
    if (findCell(cell.path))
        throw BitstreamError("duplicate cell path: " + cell.path);
    cells_.push_back(std::move(cell));
}

const Cell *
Netlist::findCell(const std::string &path) const
{
    for (const auto &c : cells_) {
        if (c.path == path)
            return &c;
    }
    return nullptr;
}

Cell *
Netlist::findCell(const std::string &path)
{
    return const_cast<Cell *>(
        static_cast<const Netlist *>(this)->findCell(path));
}

ResourceVector
Netlist::totalResources() const
{
    ResourceVector total;
    for (const auto &c : cells_)
        total += c.resources;
    return total;
}

ResourceVector
Netlist::resourcesUnder(const std::string &prefix) const
{
    ResourceVector total;
    for (const auto &c : cells_) {
        // Match on hierarchy boundaries only: "top/a" covers
        // "top/a" and "top/a/x" but not "top/ab".
        if (c.path == prefix ||
            (c.path.size() > prefix.size() &&
             c.path.compare(0, prefix.size(), prefix) == 0 &&
             c.path[prefix.size()] == '/')) {
            total += c.resources;
        }
    }
    return total;
}

Bytes
Netlist::serialize() const
{
    std::vector<BramSpan> ignored;
    return serializeWithSpans(ignored);
}

Bytes
Netlist::serializeWithSpans(std::vector<BramSpan> &spans) const
{
    spans.clear();
    BinaryWriter w;
    w.writeString(top_);
    w.writeU32(uint32_t(cells_.size()));
    for (const auto &c : cells_) {
        w.writeString(c.path);
        w.writeU8(uint8_t(c.kind));
        w.writeU32(c.resources.luts);
        w.writeU32(c.resources.registers);
        w.writeU32(c.resources.brams);
        w.writeU32(c.resources.dsps);
        if (c.kind == CellKind::Bram) {
            // The init contents begin right after the length prefix.
            spans.push_back(
                {c.path, w.data().size() + 4, c.init.size()});
        }
        w.writeBytes(c.init);
        w.writeU32(c.behaviorId);
        w.writeBytes(c.params);
    }
    return w.take();
}

Netlist
Netlist::deserialize(ByteView data)
{
    try {
        BinaryReader r(data);
        Netlist n(r.readString());
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            Cell c;
            c.path = r.readString();
            uint8_t kind = r.readU8();
            if (kind > uint8_t(CellKind::Iface))
                throw BitstreamError("bad cell kind");
            c.kind = CellKind(kind);
            c.resources.luts = r.readU32();
            c.resources.registers = r.readU32();
            c.resources.brams = r.readU32();
            c.resources.dsps = r.readU32();
            c.init = r.readBytes();
            c.behaviorId = r.readU32();
            c.params = r.readBytes();
            n.addCell(std::move(c));
        }
        return n;
    } catch (const SerdeError &e) {
        throw BitstreamError(std::string("netlist parse: ") + e.what());
    }
}

Bytes
Netlist::digest() const
{
    return crypto::Sha256::digest(serialize());
}

} // namespace salus::netlist
