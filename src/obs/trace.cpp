#include "obs/trace.hpp"

#include <cstdio>

namespace salus::obs {

namespace {

const char *const kCategoryNames[kCategoryCount] = {
    "boot",      "attestation", "bitstream",  "channel",
    "scheduler", "supervisor",  "shell",      "clock",
};

/** Globals read by the one-branch fast-path helpers. The simulator is
 *  single-threaded by construction (virtual clock), so plain pointers
 *  suffice — the TSan CI job keeps that assumption honest. */
TraceRecorder *g_tracer = nullptr;
MetricsRegistry *g_metrics = nullptr;

/** Minimal JSON string escaping (names are internal identifiers and
 *  phase labels; quotes/backslashes/control bytes get escaped). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/** Nanoseconds rendered as microseconds with exact .3 fraction —
 *  integer math only, so output never depends on float rounding. */
std::string
tsMicros(sim::Nanos ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return buf;
}

} // namespace

const char *
categoryName(Category cat)
{
    return kCategoryNames[static_cast<size_t>(cat)];
}

TraceRecorder::TraceRecorder(sim::VirtualClock &clock)
    : clock_(clock)
{
}

uint32_t
TraceRecorder::beginSpan(Category cat, std::string name)
{
    SpanEvent ev;
    ev.id = nextId_++;
    ev.parent = open_.empty() ? 0 : open_.back().id;
    ev.cat = cat;
    ev.name = std::move(name);
    ev.begin = clock_.now();
    open_.push_back(std::move(ev));
    return open_.back().id;
}

uint32_t
TraceRecorder::beginSpan(Category cat, std::string name, uint64_t value)
{
    uint32_t id = beginSpan(cat, std::move(name));
    open_.back().hasValue = true;
    open_.back().value = value;
    return id;
}

void
TraceRecorder::endSpan(uint32_t id)
{
    // Unwind to (and including) `id`; RAII callers always hit the top.
    while (!open_.empty()) {
        SpanEvent ev = std::move(open_.back());
        open_.pop_back();
        uint32_t closed = ev.id;
        ev.end = clock_.now();
        events_.push_back(std::move(ev));
        if (closed == id)
            return;
    }
}

void
TraceRecorder::instant(Category cat, std::string name)
{
    SpanEvent ev;
    ev.id = nextId_++;
    ev.parent = open_.empty() ? 0 : open_.back().id;
    ev.cat = cat;
    ev.instant = true;
    ev.name = std::move(name);
    ev.begin = ev.end = clock_.now();
    events_.push_back(std::move(ev));
}

void
TraceRecorder::instant(Category cat, std::string name, uint64_t value)
{
    instant(cat, std::move(name));
    events_.back().hasValue = true;
    events_.back().value = value;
}

void
TraceRecorder::completeSpan(Category cat, std::string name,
                            sim::Nanos begin, sim::Nanos end,
                            uint64_t value)
{
    SpanEvent ev;
    ev.id = nextId_++;
    ev.parent = 0; // root: interleaved lanes don't nest
    ev.cat = cat;
    ev.name = std::move(name);
    ev.begin = begin;
    ev.end = std::max(begin, end);
    ev.hasValue = value != 0;
    ev.value = value;
    events_.push_back(std::move(ev));
}

sim::Nanos
TraceRecorder::namedTotal(std::string_view name) const
{
    sim::Nanos total = 0;
    for (const SpanEvent &ev : events_) {
        if (ev.name == name)
            total += ev.end - ev.begin;
    }
    return total;
}

void
TraceRecorder::onSpend(const sim::PhaseRecord &record)
{
    SpanEvent ev;
    ev.id = nextId_++;
    ev.parent = open_.empty() ? 0 : open_.back().id;
    ev.cat = Category::Clock;
    ev.name = record.phase;
    ev.begin = record.start;
    ev.end = record.start + record.duration;
    events_.push_back(std::move(ev));
}

sim::Nanos
TraceRecorder::phaseTotal(std::string_view phase) const
{
    sim::Nanos total = 0;
    for (const SpanEvent &ev : events_) {
        if (ev.cat == Category::Clock && ev.name == phase)
            total += ev.end - ev.begin;
    }
    return total;
}

std::string
TraceRecorder::chromeTraceJson() const
{
    std::string out =
        "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":"
        "\"salus-obs\",\"clock\":\"virtual\",\"unit\":\"ns\"},"
        "\"traceEvents\":[\n";
    char buf[256];

    // One named track per category, emitted unconditionally so the
    // header never depends on which components happened to run.
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
                  "\"process_name\",\"args\":{\"name\":\"salus-sim\"}}");
    out += buf;
    for (size_t i = 0; i < kCategoryCount; ++i) {
        std::snprintf(
            buf, sizeof(buf),
            ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,\"name\":"
            "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
            i + 1, kCategoryNames[i]);
        out += buf;
    }

    for (const SpanEvent &ev : events_) {
        size_t tid = static_cast<size_t>(ev.cat) + 1;
        std::string name = jsonEscape(ev.name);
        if (ev.instant) {
            std::snprintf(
                buf, sizeof(buf),
                ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":%zu,\"ts\":%s,"
                "\"s\":\"t\",\"name\":\"%s\",\"cat\":\"%s\"",
                tid, tsMicros(ev.begin).c_str(), name.c_str(),
                categoryName(ev.cat));
        } else {
            std::snprintf(
                buf, sizeof(buf),
                ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%zu,\"ts\":%s,"
                "\"dur\":%s,\"name\":\"%s\",\"cat\":\"%s\"",
                tid, tsMicros(ev.begin).c_str(),
                tsMicros(ev.end - ev.begin).c_str(), name.c_str(),
                categoryName(ev.cat));
        }
        out += buf;
        if (ev.hasValue) {
            std::snprintf(
                buf, sizeof(buf),
                ",\"args\":{\"id\":%u,\"parent\":%u,\"v\":%llu}}",
                ev.id, ev.parent,
                static_cast<unsigned long long>(ev.value));
        } else {
            std::snprintf(buf, sizeof(buf),
                          ",\"args\":{\"id\":%u,\"parent\":%u}}",
                          ev.id, ev.parent);
        }
        out += buf;
    }
    out += "\n]}\n";
    return out;
}

bool
TraceRecorder::writeChromeTrace(const std::string &path) const
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = chromeTraceJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    return std::fclose(f) == 0 && written == json.size();
}

// ---- Global enablement ------------------------------------------------

TraceRecorder *
tracer()
{
    return g_tracer;
}

MetricsRegistry *
metrics()
{
    return g_metrics;
}

ObsScope::ObsScope(TraceRecorder *recorder, MetricsRegistry *registry)
    : prevTracer_(g_tracer), prevMetrics_(g_metrics),
      recorder_(recorder)
{
    g_tracer = recorder;
    g_metrics = registry;
    if (recorder_) {
        // The clock is non-const here by construction: recorders are
        // built over the clock they observe.
        auto &clock = const_cast<sim::VirtualClock &>(recorder_->clock());
        prevObserver_ = clock.spendObserver();
        clock.setSpendObserver(recorder_);
    }
}

ObsScope::~ObsScope()
{
    if (recorder_) {
        auto &clock = const_cast<sim::VirtualClock &>(recorder_->clock());
        clock.setSpendObserver(prevObserver_);
    }
    g_tracer = prevTracer_;
    g_metrics = prevMetrics_;
}

} // namespace salus::obs
