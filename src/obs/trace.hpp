/**
 * @file
 * Deterministic tracing over the virtual clock. A TraceRecorder holds
 * RAII spans (begin/end stamped on sim::VirtualClock, nested parent
 * ids, per-component categories) plus the leaf phase slices it taps
 * from the clock's SpendObserver hook, and exports Chrome
 * `trace_event` JSON for chrome://tracing / Perfetto.
 *
 * Tracing is compiled in but DISABLED by default: components emit
 * through the free helpers below, which read one global pointer — a
 * hot path pays a single predictable branch when tracing is off, and
 * never allocates. Because every timestamp is virtual, two same-seed
 * runs export byte-identical traces (enforced by tests and benches).
 */

#ifndef SALUS_OBS_TRACE_HPP
#define SALUS_OBS_TRACE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/clock.hpp"

namespace salus::obs {

/** Per-component trace categories (one Perfetto track each). */
enum class Category : uint8_t {
    Boot,        ///< deployment driver, secure boot, device key dist.
    Attestation, ///< RA / LA / CL attestation cascade
    Bitstream,   ///< build, verify, RoT injection, encrypt, load
    Channel,     ///< secure register channel (single ops + bursts)
    Scheduler,   ///< batch scheduler sweeps and backpressure
    Supervisor,  ///< fleet heartbeats, health, failover
    Shell,       ///< PCIe/MMIO transactions and DMA
    Clock,       ///< leaf cost-model slices mirrored from the clock
};

constexpr size_t kCategoryCount = 8;

/** Stable lowercase category name ("boot", "channel", ...). */
const char *categoryName(Category cat);

/** One completed trace event (span, instant marker or clock slice). */
struct SpanEvent
{
    uint32_t id = 0;
    uint32_t parent = 0; ///< enclosing span id; 0 = root
    Category cat = Category::Boot;
    bool instant = false;  ///< zero-duration marker
    bool hasValue = false; ///< carries the "v" argument
    uint64_t value = 0;    ///< e.g. batch op count, byte count
    std::string name;
    sim::Nanos begin = 0;
    sim::Nanos end = 0;
};

/** Records spans against one virtual clock and exports them. */
class TraceRecorder final : public sim::SpendObserver
{
  public:
    explicit TraceRecorder(sim::VirtualClock &clock);

    /** Opens a span nested under the innermost open span. */
    uint32_t beginSpan(Category cat, std::string name);
    uint32_t beginSpan(Category cat, std::string name, uint64_t value);

    /** Closes a span. Out-of-order ids unwind (and close) every span
     *  opened after `id`, keeping the stack consistent. */
    void endSpan(uint32_t id);

    /** Emits a zero-duration marker at the current virtual time. */
    void instant(Category cat, std::string name);
    void instant(Category cat, std::string name, uint64_t value);

    /**
     * Appends an already-finished root-level span with explicit
     * timestamps. Event-driven actors use this for busy periods that
     * INTERLEAVE across actors (a device lane's coalesced busy span
     * overlaps other lanes'), which the strictly-nesting RAII stack
     * cannot represent. `end` is clamped up to `begin`.
     */
    void completeSpan(Category cat, std::string name, sim::Nanos begin,
                      sim::Nanos end, uint64_t value = 0);

    /** Sum of completed span durations with this exact name (any
     *  category) — the scale bench's span-sum-vs-cost-model check. */
    sim::Nanos namedTotal(std::string_view name) const;

    /** sim::SpendObserver: mirrors a clock slice as a Clock leaf. */
    void onSpend(const sim::PhaseRecord &record) override;

    const sim::VirtualClock &clock() const { return clock_; }

    /** Completed events, in completion order (Chrome convention). */
    const std::vector<SpanEvent> &events() const { return events_; }
    size_t openSpans() const { return open_.size(); }

    /** Sum of the Clock leaf slices with this exact phase name —
     *  matches VirtualClock::totalFor for phases spent while the
     *  recorder was tapped. */
    sim::Nanos phaseTotal(std::string_view phase) const;

    /** Chrome trace_event JSON (complete "X" events + instants, one
     *  metadata thread per category). Deterministic byte-for-byte. */
    std::string chromeTraceJson() const;

    /** Writes chromeTraceJson() to a file. @return false on I/O. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    sim::VirtualClock &clock_;
    std::vector<SpanEvent> events_;
    std::vector<SpanEvent> open_; ///< stack of open spans
    uint32_t nextId_ = 1;
};

// ---- Global enablement (one branch when off) -------------------------

/** The installed recorder, or nullptr when tracing is disabled. */
TraceRecorder *tracer();

/** The installed metrics registry, or nullptr when disabled. */
MetricsRegistry *metrics();

/**
 * RAII enablement: installs the recorder/registry globally and taps
 * the recorder into its clock; the destructor restores whatever was
 * installed before (scopes nest). Either pointer may be null.
 */
class ObsScope
{
  public:
    ObsScope(TraceRecorder *recorder, MetricsRegistry *registry);
    ~ObsScope();
    ObsScope(const ObsScope &) = delete;
    ObsScope &operator=(const ObsScope &) = delete;

  private:
    TraceRecorder *prevTracer_;
    MetricsRegistry *prevMetrics_;
    sim::SpendObserver *prevObserver_ = nullptr;
    TraceRecorder *recorder_;
};

/** RAII span; a complete no-op (single branch) when tracing is off. */
class Span
{
  public:
    Span(Category cat, const char *name)
        : rec_(tracer())
    {
        if (rec_)
            id_ = rec_->beginSpan(cat, name);
    }
    Span(Category cat, const char *name, uint64_t value)
        : rec_(tracer())
    {
        if (rec_)
            id_ = rec_->beginSpan(cat, name, value);
    }
    ~Span()
    {
        if (rec_)
            rec_->endSpan(id_);
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    TraceRecorder *rec_;
    uint32_t id_ = 0;
};

/** Zero-duration marker; no-op when tracing is off. */
inline void
mark(Category cat, const char *name)
{
    if (TraceRecorder *r = tracer())
        r->instant(cat, name);
}

inline void
mark(Category cat, const char *name, uint64_t value)
{
    if (TraceRecorder *r = tracer())
        r->instant(cat, name, value);
}

/** Counter increment; no-op when metrics are off. */
inline void
count(const char *name, uint64_t delta = 1)
{
    if (MetricsRegistry *m = metrics())
        m->add(name, delta);
}

/** Histogram observation; no-op when metrics are off. */
inline void
observe(const char *name, uint64_t value)
{
    if (MetricsRegistry *m = metrics())
        m->observe(name, value);
}

} // namespace salus::obs

#endif // SALUS_OBS_TRACE_HPP
