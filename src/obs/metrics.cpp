#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace salus::obs {

Histogram::Histogram(std::vector<uint64_t> upperBounds)
    : bounds(std::move(upperBounds))
{
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());
    counts.assign(bounds.size() + 1, 0);
}

void
Histogram::observe(uint64_t value)
{
    size_t idx = std::lower_bound(bounds.begin(), bounds.end(), value) -
                 bounds.begin();
    ++counts[idx];
    ++total;
    sum += value;
}

void
MetricsRegistry::add(std::string_view name, uint64_t delta)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        counters_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

uint64_t
MetricsRegistry::counter(std::string_view name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::vector<uint64_t> bounds)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name),
                          Histogram(std::move(bounds)))
                 .first;
    }
    return it->second;
}

void
MetricsRegistry::observe(std::string_view name, uint64_t value)
{
    histogram(name, defaultBounds()).observe(value);
}

const Histogram *
MetricsRegistry::findHistogram(std::string_view name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

const std::vector<uint64_t> &
MetricsRegistry::defaultBounds()
{
    static const std::vector<uint64_t> kBounds = {
        1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
    return kBounds;
}

std::string
MetricsRegistry::renderText() const
{
    char line[160];
    std::string out = "# salus-metrics v1\n";
    for (const auto &[name, value] : counters_) {
        std::snprintf(line, sizeof(line), "counter %s %llu\n",
                      name.c_str(),
                      static_cast<unsigned long long>(value));
        out += line;
    }
    for (const auto &[name, h] : histograms_) {
        std::snprintf(line, sizeof(line),
                      "histogram %s count %llu sum %llu\n",
                      name.c_str(),
                      static_cast<unsigned long long>(h.total),
                      static_cast<unsigned long long>(h.sum));
        out += line;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            std::snprintf(
                line, sizeof(line), "  le %llu %llu\n",
                static_cast<unsigned long long>(h.bounds[i]),
                static_cast<unsigned long long>(h.counts[i]));
            out += line;
        }
        std::snprintf(line, sizeof(line), "  le +inf %llu\n",
                      static_cast<unsigned long long>(h.counts.back()));
        out += line;
    }
    return out;
}

bool
MetricsRegistry::writeText(const std::string &path) const
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string text = renderText();
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    return std::fclose(f) == 0 && written == text.size();
}

void
MetricsRegistry::clear()
{
    counters_.clear();
    histograms_.clear();
}

} // namespace salus::obs
