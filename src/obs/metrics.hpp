/**
 * @file
 * Deterministic metrics: named monotonic counters and fixed-bucket
 * histograms. Everything is integer-valued (op counts, virtual
 * nanoseconds), so the text dump is byte-identical across same-seed
 * runs — no float formatting in the hot path or the artifact.
 *
 * Naming rules (docs/OBSERVABILITY.md): lowercase dotted
 * `component.metric` names, e.g. "scheduler.backpressure".
 */

#ifndef SALUS_OBS_METRICS_HPP
#define SALUS_OBS_METRICS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace salus::obs {

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * value <= bounds[i] (first matching bound); one implicit overflow
 * bucket catches everything above the largest bound. Bounds are fixed
 * at registration — observing never allocates.
 */
struct Histogram
{
    std::vector<uint64_t> bounds; ///< ascending upper bounds
    std::vector<uint64_t> counts; ///< bounds.size() + 1 buckets
    uint64_t total = 0;           ///< number of observations
    uint64_t sum = 0;             ///< sum of observed values

    explicit Histogram(std::vector<uint64_t> upperBounds);
    void observe(uint64_t value);
};

/** Registry of counters and histograms with a deterministic dump. */
class MetricsRegistry
{
  public:
    /** Increments a counter (created at zero on first use). */
    void add(std::string_view name, uint64_t delta = 1);

    /** Current counter value (0 when never incremented). */
    uint64_t counter(std::string_view name) const;

    /**
     * Registers a histogram with explicit bucket bounds; returns the
     * existing one (bounds unchanged) when already registered.
     */
    Histogram &histogram(std::string_view name,
                         std::vector<uint64_t> bounds);

    /** Records a value; auto-registers with the default power-of-two
     *  bounds when the name is new. */
    void observe(std::string_view name, uint64_t value);

    const Histogram *findHistogram(std::string_view name) const;

    size_t counterCount() const { return counters_.size(); }
    size_t histogramCount() const { return histograms_.size(); }

    /** Deterministic text dump (names sorted lexicographically). */
    std::string renderText() const;

    /** Writes renderText() to a file. @return false on I/O error. */
    bool writeText(const std::string &path) const;

    void clear();

    /** Default bounds for observe() auto-registration: powers of two
     *  1..4096 (suited to op counts and queue depths). */
    static const std::vector<uint64_t> &defaultBounds();

  private:
    std::map<std::string, uint64_t, std::less<>> counters_;
    std::map<std::string, Histogram, std::less<>> histograms_;
};

} // namespace salus::obs

#endif // SALUS_OBS_METRICS_HPP
