#include "tee/collateral.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/hmac.hpp"

namespace salus::tee {

Bytes
TcbInfo::signedPortion() const
{
    BinaryWriter w;
    w.writeString(family);
    w.writeU16(minCpuSvn);
    w.writeU64(issuedAt);
    w.writeU64(nextUpdate);
    return w.take();
}

Bytes
TcbInfo::serialize() const
{
    BinaryWriter w;
    w.writeBytes(signedPortion());
    w.writeBytes(signature);
    return w.take();
}

TcbInfo
TcbInfo::deserialize(ByteView data)
{
    try {
        BinaryReader outer(data);
        Bytes signedPart = outer.readBytes();
        TcbInfo t;
        t.signature = outer.readBytes();
        BinaryReader r(signedPart);
        t.family = r.readString();
        t.minCpuSvn = r.readU16();
        t.issuedAt = r.readU64();
        t.nextUpdate = r.readU64();
        return t;
    } catch (const SerdeError &e) {
        throw TeeError(std::string("tcb info parse: ") + e.what());
    }
}

Bytes
QeIdentity::signedPortion() const
{
    BinaryWriter w;
    w.writeBytes(qeMeasurement);
    w.writeU16(minIsvSvn);
    w.writeU64(issuedAt);
    w.writeU64(nextUpdate);
    return w.take();
}

Bytes
QeIdentity::serialize() const
{
    BinaryWriter w;
    w.writeBytes(signedPortion());
    w.writeBytes(signature);
    return w.take();
}

QeIdentity
QeIdentity::deserialize(ByteView data)
{
    try {
        BinaryReader outer(data);
        Bytes signedPart = outer.readBytes();
        QeIdentity q;
        q.signature = outer.readBytes();
        BinaryReader r(signedPart);
        q.qeMeasurement = r.readBytes();
        q.minIsvSvn = r.readU16();
        q.issuedAt = r.readU64();
        q.nextUpdate = r.readU64();
        return q;
    } catch (const SerdeError &e) {
        throw TeeError(std::string("qe identity parse: ") + e.what());
    }
}

CollateralService::CollateralService(Bytes rootSeed, std::string family)
    : family_(std::move(family))
{
    // Derive the signing pair deterministically from the seed so the
    // same manufacturer identity can be reconstructed.
    root_.seed = crypto::hmacSha256(rootSeed, bytesFromString("pcs"));
    root_.publicKey = crypto::ed25519PublicKey(root_.seed);
}

void
CollateralService::setQeIdentity(Measurement qeMeasurement,
                                 uint16_t minIsvSvn)
{
    qeMeasurement_ = std::move(qeMeasurement);
    qeMinIsvSvn_ = minIsvSvn;
}

CollateralBundle
CollateralService::issue(sim::Nanos now, sim::Nanos validity) const
{
    CollateralBundle b;
    b.tcbInfo.family = family_;
    b.tcbInfo.minCpuSvn = minCpuSvn_;
    b.tcbInfo.issuedAt = now;
    b.tcbInfo.nextUpdate = now + validity;
    b.tcbInfo.signature =
        crypto::ed25519Sign(root_.seed, b.tcbInfo.signedPortion());

    b.qeIdentity.qeMeasurement = qeMeasurement_;
    b.qeIdentity.minIsvSvn = qeMinIsvSvn_;
    b.qeIdentity.issuedAt = now;
    b.qeIdentity.nextUpdate = now + validity;
    b.qeIdentity.signature =
        crypto::ed25519Sign(root_.seed, b.qeIdentity.signedPortion());
    return b;
}

QuoteVerdict
verifyQuoteWithCollateral(const Quote &quote,
                          const CollateralBundle &bundle,
                          ByteView rootPublicKey, sim::Nanos now)
{
    QuoteVerdict v;

    // --- collateral authenticity and freshness ------------------------
    if (!crypto::ed25519Verify(rootPublicKey,
                               bundle.tcbInfo.signedPortion(),
                               bundle.tcbInfo.signature)) {
        v.reason = "TCB info signature invalid";
        return v;
    }
    if (!crypto::ed25519Verify(rootPublicKey,
                               bundle.qeIdentity.signedPortion(),
                               bundle.qeIdentity.signature)) {
        v.reason = "QE identity signature invalid";
        return v;
    }
    if (now < bundle.tcbInfo.issuedAt || now >= bundle.tcbInfo.nextUpdate) {
        v.reason = "TCB info expired";
        return v;
    }
    if (now < bundle.qeIdentity.issuedAt ||
        now >= bundle.qeIdentity.nextUpdate) {
        v.reason = "QE identity expired";
        return v;
    }

    // --- QE identity ----------------------------------------------------
    if (quote.qeMeasurement != bundle.qeIdentity.qeMeasurement) {
        v.reason = "quote produced by an unrecognized quoting enclave";
        return v;
    }
    if (quote.qeIsvSvn < bundle.qeIdentity.minIsvSvn) {
        v.reason = "quoting enclave below minimum SVN";
        return v;
    }

    // --- platform chain + TCB level --------------------------------------
    if (quote.pck.platformId != quote.platformId) {
        v.reason = "platform id mismatch between quote and PCK cert";
        return v;
    }
    if (!crypto::ed25519Verify(rootPublicKey, quote.pck.signedPortion(),
                               quote.pck.signature)) {
        v.reason = "PCK certificate not signed by manufacturer root";
        return v;
    }
    if (quote.body.cpuSvn < bundle.tcbInfo.minCpuSvn) {
        v.reason = "platform TCB out of date per TCB info";
        return v;
    }
    if (!crypto::ed25519Verify(quote.pck.attestPublicKey,
                               quote.signedPortion(), quote.signature)) {
        v.reason = "quote signature invalid";
        return v;
    }

    v.ok = true;
    v.body = quote.body;
    return v;
}

const CollateralBundle &
CollateralCache::get(sim::Nanos now)
{
    bool stale = !cached_ || now >= cached_->tcbInfo.nextUpdate ||
                 now >= cached_->qeIdentity.nextUpdate;
    if (stale) {
        cached_ = fetch_(now);
        ++fetchCount_;
    }
    return *cached_;
}

} // namespace salus::tee
