/**
 * @file
 * DCAP verification collateral — the data a verifier must fetch from
 * the manufacturer before it can judge a quote, and the reason the
 * paper's RA phases are network-dominated (§6.3: the user client
 * "connects to the DCAP server through a wide-area network").
 *
 * Modeled after Intel's PCS/PCCS scheme:
 *   - TcbInfo:    signed statement of the minimum platform security
 *                 version currently considered up to date, with an
 *                 issuance/expiry window;
 *   - QeIdentity: signed identity of the quoting enclave whose
 *                 signatures are trustworthy;
 *   - CollateralService: the manufacturer-side issuer;
 *   - CollateralCache: verifier-side caching (a PCCS), which turns
 *                 the per-verification WAN round trips into a one-time
 *                 cost until expiry (ablation-benched).
 */

#ifndef SALUS_TEE_COLLATERAL_HPP
#define SALUS_TEE_COLLATERAL_HPP

#include <functional>
#include <optional>

#include "crypto/ed25519.hpp"
#include "sim/clock.hpp"
#include "tee/quote.hpp"
#include "tee/quote_verifier.hpp"

namespace salus::tee {

/** Signed minimum-TCB statement for a platform family. */
struct TcbInfo
{
    std::string family;     ///< platform family (FMSPC analog)
    uint16_t minCpuSvn = 0; ///< lowest SVN considered up to date
    sim::Nanos issuedAt = 0;
    sim::Nanos nextUpdate = 0; ///< expiry of this statement
    Bytes signature;           ///< manufacturer root

    Bytes signedPortion() const;
    Bytes serialize() const;
    static TcbInfo deserialize(ByteView data);
};

/** Signed identity of the trustworthy quoting enclave build. */
struct QeIdentity
{
    Measurement qeMeasurement;
    uint16_t minIsvSvn = 0;
    sim::Nanos issuedAt = 0;
    sim::Nanos nextUpdate = 0;
    Bytes signature;

    Bytes signedPortion() const;
    Bytes serialize() const;
    static QeIdentity deserialize(ByteView data);
};

/** Everything a verifier needs besides the quote itself. */
struct CollateralBundle
{
    TcbInfo tcbInfo;
    QeIdentity qeIdentity;
};

/** Manufacturer-side collateral issuer (PCS analog). */
class CollateralService
{
  public:
    /**
     * @param rootSeed the manufacturer root signing seed.
     * @param family the platform family this service covers.
     */
    CollateralService(Bytes rootSeed, std::string family);

    /** Current root public key (verifiers pin this). */
    const Bytes &rootPublicKey() const { return root_.publicKey; }

    /** Raises the family's minimum acceptable SVN (TCB recovery). */
    void setMinCpuSvn(uint16_t svn) { minCpuSvn_ = svn; }

    /** Declares the trustworthy QE build. */
    void setQeIdentity(Measurement qeMeasurement, uint16_t minIsvSvn);

    /** Issues a collateral bundle valid for `validity` from `now`. */
    CollateralBundle issue(sim::Nanos now, sim::Nanos validity) const;

  private:
    crypto::Ed25519KeyPair root_;
    std::string family_;
    uint16_t minCpuSvn_ = 1;
    Measurement qeMeasurement_;
    uint16_t qeMinIsvSvn_ = 0;
};

/**
 * Full collateral-based quote verification, as a DCAP verifier
 * library would do it: collateral signatures and expiry, QE identity,
 * TCB level, PCK chain and quote signature.
 */
QuoteVerdict verifyQuoteWithCollateral(const Quote &quote,
                                       const CollateralBundle &bundle,
                                       ByteView rootPublicKey,
                                       sim::Nanos now);

/**
 * Verifier-side collateral cache (PCCS analog). Refreshes through a
 * fetch callback only when the cached bundle is missing or expired,
 * so steady-state verifications cost no network round trips.
 */
class CollateralCache
{
  public:
    using Fetch = std::function<CollateralBundle(sim::Nanos now)>;

    explicit CollateralCache(Fetch fetch) : fetch_(std::move(fetch)) {}

    /** Returns a valid bundle, fetching iff needed. */
    const CollateralBundle &get(sim::Nanos now);

    /** Number of upstream fetches performed so far. */
    size_t fetchCount() const { return fetchCount_; }

  private:
    Fetch fetch_;
    std::optional<CollateralBundle> cached_;
    size_t fetchCount_ = 0;
};

} // namespace salus::tee

#endif // SALUS_TEE_COLLATERAL_HPP
