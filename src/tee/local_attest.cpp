#include "tee/local_attest.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace salus::tee {

namespace {

constexpr size_t kNonceSize = 16;

/** Transcript hash binding a report to the DH exchange. */
Bytes
binding(ByteView nonce, ByteView ephA, ByteView ephB, const char *role)
{
    return crypto::Sha256::digest(concatBytes(
        {nonce, ephA, ephB, bytesFromString(role)}));
}

Bytes
sessionKey(ByteView shared, ByteView nonce, const Measurement &initiator,
           const Measurement &responder)
{
    Bytes info = concatBytes(
        {bytesFromString("salus-la-v1"), initiator, responder});
    return crypto::hkdf(nonce, shared, info, 32);
}

} // namespace

LocalAttestInitiator::LocalAttestInitiator(Enclave &self,
                                           Measurement expectedPeer)
    : self_(self), expectedPeer_(std::move(expectedPeer))
{
}

Bytes
LocalAttestInitiator::start()
{
    nonce_ = self_.rng().bytes(kNonceSize);
    crypto::X25519KeyPair kp = crypto::x25519Generate(self_.rng());
    ephPriv_ = kp.privateKey;
    ephPub_ = kp.publicKey;

    BinaryWriter w;
    w.writeBytes(self_.measurement());
    w.writeBytes(nonce_);
    w.writeBytes(ephPub_);
    return w.take();
}

std::optional<Bytes>
LocalAttestInitiator::finish(ByteView msg2)
{
    Report report;
    Bytes peerEph;
    try {
        BinaryReader r(msg2);
        report = Report::deserialize(r.readBytes());
        peerEph = r.readBytes();
    } catch (const SalusError &) {
        return std::nullopt;
    }
    if (peerEph.size() != crypto::kX25519KeySize)
        return std::nullopt;

    // 1. The report must be MACed with *our* report key (same
    //    platform), 2. carry the expected peer measurement, and
    //    3. bind this very DH exchange.
    if (!self_.verifyLocalReport(report))
        return std::nullopt;
    if (report.body.mrenclave != expectedPeer_)
        return std::nullopt;
    Bytes expectBind =
        padReportData(binding(nonce_, ephPub_, peerEph, "responder"));
    if (report.body.reportData != expectBind)
        return std::nullopt;

    Bytes shared;
    try {
        shared = crypto::x25519Shared(ephPriv_, peerEph);
    } catch (const CryptoError &) {
        return std::nullopt;
    }
    session_.key = sessionKey(shared, nonce_, self_.measurement(),
                              report.body.mrenclave);
    session_.peer = report.body.mrenclave;
    established_ = true;
    secureZero(shared);

    Report confirm = self_.createReport(
        report.body.mrenclave,
        binding(nonce_, peerEph, ephPub_, "initiator"));
    BinaryWriter w;
    w.writeBytes(confirm.serialize());
    return w.take();
}

LocalAttestResponder::LocalAttestResponder(Enclave &self,
                                           Measurement expectedPeer)
    : self_(self), expectedPeer_(std::move(expectedPeer))
{
}

std::optional<Bytes>
LocalAttestResponder::answer(ByteView msg1)
{
    try {
        BinaryReader r(msg1);
        claimedPeer_ = r.readBytes();
        nonce_ = r.readBytes();
        peerEphPub_ = r.readBytes();
    } catch (const SalusError &) {
        return std::nullopt;
    }
    if (claimedPeer_.size() != 32 || nonce_.size() != kNonceSize ||
        peerEphPub_.size() != crypto::kX25519KeySize) {
        return std::nullopt;
    }

    crypto::X25519KeyPair kp = crypto::x25519Generate(self_.rng());
    ephPriv_ = kp.privateKey;
    ephPub_ = kp.publicKey;

    Report report = self_.createReport(
        claimedPeer_, binding(nonce_, peerEphPub_, ephPub_, "responder"));

    BinaryWriter w;
    w.writeBytes(report.serialize());
    w.writeBytes(ephPub_);
    return w.take();
}

bool
LocalAttestResponder::confirm(ByteView msg3)
{
    Report report;
    try {
        BinaryReader r(msg3);
        report = Report::deserialize(r.readBytes());
    } catch (const SalusError &) {
        return false;
    }

    if (!self_.verifyLocalReport(report))
        return false;
    // Empty expectedPeer_ = accept any same-platform enclave (the SM
    // enclave's policy: it serves whichever user enclave the instance
    // runs; the *user* side always pins the SM measurement).
    if (!expectedPeer_.empty() && report.body.mrenclave != expectedPeer_)
        return false;
    if (report.body.mrenclave != claimedPeer_)
        return false;
    Bytes expectBind =
        padReportData(binding(nonce_, ephPub_, peerEphPub_, "initiator"));
    if (report.body.reportData != expectBind)
        return false;

    Bytes shared;
    try {
        shared = crypto::x25519Shared(ephPriv_, peerEphPub_);
    } catch (const CryptoError &) {
        return false;
    }
    session_.key = sessionKey(shared, nonce_, report.body.mrenclave,
                              self_.measurement());
    session_.peer = report.body.mrenclave;
    established_ = true;
    secureZero(shared);
    return true;
}

} // namespace salus::tee
