#include "tee/platform.hpp"

#include "common/errors.hpp"
#include "crypto/aes_cmac.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace salus::tee {

Bytes
padReportData(ByteView data)
{
    if (data.size() > kReportDataSize)
        throw TeeError("report data exceeds 64 bytes");
    Bytes out(data.begin(), data.end());
    out.resize(kReportDataSize, 0);
    return out;
}

Measurement
EnclaveImage::measure() const
{
    return crypto::Sha256::digest(code);
}

Measurement
EnclaveImage::signerMeasurement() const
{
    return crypto::Sha256::digest(bytesFromString(signer));
}

TeePlatform::TeePlatform(std::string platformId,
                         crypto::RandomSource &rng, uint16_t cpuSvn)
    : platformId_(std::move(platformId)), cpuSvn_(cpuSvn),
      rootSealKey_(rng.bytes(32)), attestKey_(crypto::ed25519Generate(rng))
{
    // The quoting facility has a fixed well-known measurement, like
    // Intel's signed QE.
    qeMeasurement_ =
        crypto::Sha256::digest(bytesFromString("salus-quoting-enclave"));
}

void
TeePlatform::installPckCertificate(PckCertificate cert)
{
    if (cert.attestPublicKey != attestKey_.publicKey)
        throw TeeError("PCK certificate is for a different platform");
    pck_ = std::move(cert);
    provisioned_ = true;
}

const PckCertificate &
TeePlatform::pckCertificate() const
{
    if (!provisioned_)
        throw TeeError("platform not provisioned with a PCK cert");
    return pck_;
}

uint64_t
TeePlatform::monotonicRead(const std::string &counterId) const
{
    auto it = monotonicCounters_.find(counterId);
    return it == monotonicCounters_.end() ? 0 : it->second;
}

uint64_t
TeePlatform::monotonicIncrement(const std::string &counterId)
{
    return ++monotonicCounters_[counterId];
}

void
TeePlatform::monotonicAdvanceTo(const std::string &counterId,
                                uint64_t value)
{
    uint64_t current = monotonicRead(counterId);
    if (value < current)
        throw TeeError("monotonic counter cannot move backward");
    if (value > current + 1)
        throw TeeError("monotonic counter advance exceeds one step");
    monotonicCounters_[counterId] = value;
}

Bytes
TeePlatform::reportKeyFor(const Measurement &mrenclave) const
{
    Bytes info = concatBytes({bytesFromString("REPORT"), mrenclave});
    Bytes key = crypto::hmacSha256(rootSealKey_, info);
    key.resize(16); // AES-128-CMAC report key, as in SGX
    return key;
}

Bytes
TeePlatform::sealKeyFor(const Measurement &mrenclave) const
{
    Bytes info = concatBytes({bytesFromString("SEAL"), mrenclave});
    return crypto::hmacSha256(rootSealKey_, info);
}

Quote
TeePlatform::generateQuote(const Report &report)
{
    if (!provisioned_)
        throw TeeError("cannot quote: platform not provisioned");

    // The QE locally verifies the report before signing, so only
    // enclaves on this very platform can be quoted.
    Bytes qeKey = reportKeyFor(qeMeasurement_);
    if (!crypto::aesCmacVerify(qeKey, report.body.serialize(),
                               report.mac)) {
        throw TeeError("quote request report failed verification");
    }

    Quote q;
    q.body = report.body;
    q.platformId = platformId_;
    q.qeMeasurement = qeMeasurement_;
    q.qeIsvSvn = 1;
    q.signature = crypto::ed25519Sign(attestKey_.seed, q.signedPortion());
    q.pck = pck_;
    return q;
}

Enclave::Enclave(TeePlatform &platform, EnclaveImage image)
    : platform_(platform), image_(std::move(image)),
      measurement_(image_.measure()),
      signer_(image_.signerMeasurement())
{
    // Per-enclave DRBG; unique per (platform, enclave, instance).
    Bytes seedMaterial = concatBytes(
        {platform_.rootSealKey_, measurement_,
         bytesFromString(
             std::to_string(platform_.enclaveInstances_++))});
    rng_ = std::make_unique<crypto::CtrDrbg>(seedMaterial);
}

Report
Enclave::createReport(const Measurement &target, ByteView reportData) const
{
    Report r;
    r.body.mrenclave = measurement_;
    r.body.mrsigner = signer_;
    r.body.isvSvn = image_.isvSvn;
    r.body.cpuSvn = platform_.cpuSvn();
    r.body.reportData = padReportData(reportData);
    // EREPORT derives the *target's* report key inside hardware; the
    // producing enclave never sees it.
    Bytes key = platform_.reportKeyFor(target);
    r.mac = crypto::aesCmac(key, r.body.serialize());
    secureZero(key);
    return r;
}

bool
Enclave::verifyLocalReport(const Report &report) const
{
    Bytes key = platform_.reportKeyFor(measurement_);
    bool ok = crypto::aesCmacVerify(key, report.body.serialize(),
                                    report.mac);
    secureZero(key);
    return ok;
}

Quote
Enclave::createQuote(ByteView reportData) const
{
    Report r = createReport(platform_.quotingTarget(), reportData);
    return platform_.generateQuote(r);
}

Bytes
Enclave::seal(ByteView plaintext) const
{
    Bytes key = platform_.sealKeyFor(measurement_);
    crypto::AesGcm gcm(key);
    Bytes iv = rng().bytes(12);
    crypto::GcmSealed sealed = gcm.seal(iv, ByteView(), plaintext);
    secureZero(key);
    return concatBytes({iv, sealed.tag, sealed.ciphertext});
}

std::optional<Bytes>
Enclave::unseal(ByteView sealed) const
{
    if (sealed.size() < 12 + 16)
        return std::nullopt;
    Bytes key = platform_.sealKeyFor(measurement_);
    crypto::AesGcm gcm(key);
    secureZero(key);
    return gcm.open(ByteView(sealed.data(), 12), ByteView(),
                    ByteView(sealed.data() + 28, sealed.size() - 28),
                    ByteView(sealed.data() + 12, 16));
}

} // namespace salus::tee
