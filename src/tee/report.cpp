#include "tee/report.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"

namespace salus::tee {

Bytes
ReportBody::serialize() const
{
    BinaryWriter w;
    w.writeBytes(mrenclave);
    w.writeBytes(mrsigner);
    w.writeU16(isvSvn);
    w.writeU16(cpuSvn);
    w.writeBytes(reportData);
    return w.take();
}

ReportBody
ReportBody::deserialize(ByteView data)
{
    try {
        BinaryReader r(data);
        ReportBody b;
        b.mrenclave = r.readBytes();
        b.mrsigner = r.readBytes();
        b.isvSvn = r.readU16();
        b.cpuSvn = r.readU16();
        b.reportData = r.readBytes();
        return b;
    } catch (const SerdeError &e) {
        throw TeeError(std::string("report body parse: ") + e.what());
    }
}

Bytes
Report::serialize() const
{
    BinaryWriter w;
    w.writeBytes(body.serialize());
    w.writeBytes(mac);
    return w.take();
}

Report
Report::deserialize(ByteView data)
{
    try {
        BinaryReader r(data);
        Report rep;
        rep.body = ReportBody::deserialize(r.readBytes());
        rep.mac = r.readBytes();
        return rep;
    } catch (const SerdeError &e) {
        throw TeeError(std::string("report parse: ") + e.what());
    }
}

} // namespace salus::tee
