#include "tee/quote.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"

namespace salus::tee {

Bytes
PckCertificate::signedPortion() const
{
    BinaryWriter w;
    w.writeString(platformId);
    w.writeBytes(attestPublicKey);
    w.writeU16(tcbSvn);
    return w.take();
}

Bytes
PckCertificate::serialize() const
{
    BinaryWriter w;
    w.writeBytes(signedPortion());
    w.writeBytes(signature);
    return w.take();
}

PckCertificate
PckCertificate::deserialize(ByteView data)
{
    try {
        BinaryReader outer(data);
        Bytes signedPart = outer.readBytes();
        PckCertificate cert;
        cert.signature = outer.readBytes();
        BinaryReader r(signedPart);
        cert.platformId = r.readString();
        cert.attestPublicKey = r.readBytes();
        cert.tcbSvn = r.readU16();
        return cert;
    } catch (const SerdeError &e) {
        throw TeeError(std::string("pck parse: ") + e.what());
    }
}

Bytes
Quote::signedPortion() const
{
    BinaryWriter w;
    w.writeBytes(body.serialize());
    w.writeString(platformId);
    w.writeBytes(qeMeasurement);
    w.writeU16(qeIsvSvn);
    return w.take();
}

Bytes
Quote::serialize() const
{
    BinaryWriter w;
    w.writeBytes(signedPortion());
    w.writeBytes(signature);
    w.writeBytes(pck.serialize());
    return w.take();
}

Quote
Quote::deserialize(ByteView data)
{
    try {
        BinaryReader outer(data);
        Bytes signedPart = outer.readBytes();
        Quote q;
        q.signature = outer.readBytes();
        q.pck = PckCertificate::deserialize(outer.readBytes());
        BinaryReader r(signedPart);
        q.body = ReportBody::deserialize(r.readBytes());
        q.platformId = r.readString();
        q.qeMeasurement = r.readBytes();
        q.qeIsvSvn = r.readU16();
        return q;
    } catch (const SerdeError &e) {
        throw TeeError(std::string("quote parse: ") + e.what());
    }
}

} // namespace salus::tee
