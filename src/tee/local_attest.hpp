/**
 * @file
 * Mutual local attestation with session-key establishment — the
 * EGETKEY/EREPORT challenge-response of paper Fig. 1 extended with the
 * ECDH exchange the prototype uses (§5.2.2: "the two enclaves exchange
 * a symmetric key using ECDH").
 *
 * Three serialized messages cross the untrusted OS:
 *   msg1: initiator measurement + nonce + X25519 ephemeral
 *   msg2: responder report (bound to transcript) + its ephemeral
 *   msg3: initiator report (bound to transcript, confirms key)
 *
 * Both sides end with the same 32-byte session key iff both reports
 * verify and each peer's measurement equals the expected one. Any
 * tampering by the OS flips a binding hash and the handshake fails —
 * properties the test suite exercises directly.
 */

#ifndef SALUS_TEE_LOCAL_ATTEST_HPP
#define SALUS_TEE_LOCAL_ATTEST_HPP

#include <optional>

#include "tee/platform.hpp"

namespace salus::tee {

/** Established secure-channel state. */
struct LocalSession
{
    Bytes key;            ///< 32-byte shared session key
    Measurement peer;     ///< verified peer measurement
};

/** The enclave that starts the handshake (user enclave in Salus). */
class LocalAttestInitiator
{
  public:
    /**
     * @param self the enclave running this code.
     * @param expectedPeer measurement the responder must prove.
     */
    LocalAttestInitiator(Enclave &self, Measurement expectedPeer);

    /** Produces msg1. */
    Bytes start();

    /**
     * Consumes msg2 and produces msg3 on success.
     * @return msg3, or nullopt when the responder failed attestation.
     */
    std::optional<Bytes> finish(ByteView msg2);

    /** Valid only after a successful finish(). */
    const LocalSession &session() const { return session_; }
    bool established() const { return established_; }

  private:
    Enclave &self_;
    Measurement expectedPeer_;
    Bytes nonce_;
    Bytes ephPriv_, ephPub_;
    LocalSession session_;
    bool established_ = false;
};

/** The enclave that answers the handshake (SM enclave in Salus). */
class LocalAttestResponder
{
  public:
    LocalAttestResponder(Enclave &self, Measurement expectedPeer);

    /** Consumes msg1 and produces msg2; nullopt on malformed input. */
    std::optional<Bytes> answer(ByteView msg1);

    /**
     * Consumes msg3; true when the initiator proved itself and the
     * session is established on this side too.
     */
    bool confirm(ByteView msg3);

    const LocalSession &session() const { return session_; }
    bool established() const { return established_; }

  private:
    Enclave &self_;
    Measurement expectedPeer_;
    Bytes nonce_;
    Bytes ephPriv_, ephPub_;
    Bytes peerEphPub_;
    Measurement claimedPeer_;
    LocalSession session_;
    bool established_ = false;
};

} // namespace salus::tee

#endif // SALUS_TEE_LOCAL_ATTEST_HPP
