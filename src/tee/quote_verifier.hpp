/**
 * @file
 * Quote verification service — the DCAP attestation service analog
 * (§6.1 uses an Alibaba-hosted DCAP server). Holds the manufacturer
 * root public key, a minimum acceptable TCB, and a platform
 * revocation list; verifies the certificate chain and quote signature
 * and hands back the attested report body.
 */

#ifndef SALUS_TEE_QUOTE_VERIFIER_HPP
#define SALUS_TEE_QUOTE_VERIFIER_HPP

#include <set>
#include <string>

#include "tee/quote.hpp"

namespace salus::tee {

/** Outcome of verifying a quote. */
struct QuoteVerdict
{
    bool ok = false;
    std::string reason; ///< failure explanation when !ok
    ReportBody body;    ///< attested contents when ok
};

/** Verifies quotes against the manufacturer's root of trust. */
class QuoteVerificationService
{
  public:
    /** @param rootPublicKey manufacturer root CA (Ed25519). */
    explicit QuoteVerificationService(Bytes rootPublicKey,
                                      uint16_t minTcbSvn = 1);

    /** Full chain verification: PCK cert, platform signature, TCB,
     *  revocation. */
    QuoteVerdict verify(const Quote &quote) const;

    /** Marks a platform's attestation key as revoked. */
    void revokePlatform(const std::string &platformId);

    /** Raises the minimum acceptable platform TCB. */
    void setMinTcbSvn(uint16_t svn) { minTcbSvn_ = svn; }

  private:
    Bytes rootPublicKey_;
    uint16_t minTcbSvn_;
    std::set<std::string> revoked_;
};

} // namespace salus::tee

#endif // SALUS_TEE_QUOTE_VERIFIER_HPP
