/**
 * @file
 * The simulated TEE-enabled CPU package (Intel SGX analog, paper §2.1).
 *
 * The platform holds fused root secrets and performs the operations
 * real hardware restricts to enclave mode: key derivation (EGETKEY),
 * report generation/verification (EREPORT + local attestation), and
 * quote generation through the quoting facility whose attestation key
 * the manufacturer certifies at provisioning time.
 *
 * Enclaves are C++ objects deriving from `Enclave`; the simulation's
 * isolation boundary is their class interface — anything a subclass
 * keeps private is "inside" the enclave, anything serialized out of a
 * public method crosses the untrusted boundary.
 */

#ifndef SALUS_TEE_PLATFORM_HPP
#define SALUS_TEE_PLATFORM_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/ed25519.hpp"
#include "crypto/random.hpp"
#include "tee/quote.hpp"
#include "tee/report.hpp"

namespace salus::tee {

/** What gets measured when an enclave is "loaded". */
struct EnclaveImage
{
    std::string name;   ///< human-readable identity (debug only)
    std::string signer; ///< vendor identity (hashed into MRSIGNER)
    uint16_t isvSvn = 1;
    Bytes code;         ///< stand-in for the measured code pages

    /** MRENCLAVE = SHA-256 over the code image. */
    Measurement measure() const;

    /** MRSIGNER analog = SHA-256 over the signer identity. */
    Measurement signerMeasurement() const;
};

class Enclave;

/** One TEE-enabled CPU package. */
class TeePlatform
{
  public:
    /**
     * @param platformId stable identity (PPID analog).
     * @param rng entropy for the root secrets.
     * @param cpuSvn the microcode/TCB level this platform runs at.
     */
    TeePlatform(std::string platformId, crypto::RandomSource &rng,
                uint16_t cpuSvn = 1);

    const std::string &platformId() const { return platformId_; }
    uint16_t cpuSvn() const { return cpuSvn_; }

    /** The attestation public key the manufacturer certifies. */
    const Bytes &attestationPublicKey() const
    {
        return attestKey_.publicKey;
    }

    /** Installs the manufacturer-issued PCK certificate. */
    void installPckCertificate(PckCertificate cert);
    const PckCertificate &pckCertificate() const;
    bool provisioned() const { return provisioned_; }

    /**
     * Generates a quote over a report targeted at the quoting
     * facility — the ECDSA/DCAP flow of §2.1.
     * @throws TeeError if the report does not verify or the platform
     *         was never provisioned.
     */
    Quote generateQuote(const Report &report);

    /** Measurement reports must target to be quotable. */
    const Measurement &quotingTarget() const { return qeMeasurement_; }

    // ---- Hardware monotonic counters --------------------------------
    // SGX platform-service counter analog: named, non-volatile,
    // forward-only. Enclaves version sealed state against them to
    // detect rollback of (untrusted) persistent storage across
    // restarts. Counters outlive enclave instances by construction —
    // they live on the platform, not in the enclave object.

    /** Current value of a named counter (0 if never touched). */
    uint64_t monotonicRead(const std::string &counterId) const;

    /** Atomically bumps a named counter; returns the new value. */
    uint64_t monotonicIncrement(const std::string &counterId);

    /**
     * Forward-only catch-up for the store-then-increment crash
     * window: a freshly unsealed journal may prove version
     * counter+1 was durably stored before the increment landed.
     * @throws TeeError when `value` is behind the counter or more
     *         than one step ahead (either would break rollback
     *         protection).
     */
    void monotonicAdvanceTo(const std::string &counterId, uint64_t value);

  private:
    friend class Enclave;

    /** EGETKEY: per-enclave report key (hardware-internal). */
    Bytes reportKeyFor(const Measurement &mrenclave) const;

    /** EGETKEY: per-enclave seal key (hardware-internal). */
    Bytes sealKeyFor(const Measurement &mrenclave) const;

    std::string platformId_;
    uint16_t cpuSvn_;
    Bytes rootSealKey_;
    crypto::Ed25519KeyPair attestKey_;
    Measurement qeMeasurement_;
    PckCertificate pck_;
    bool provisioned_ = false;
    std::map<std::string, uint64_t> monotonicCounters_;
    /** Loaded-enclave count; salts each instance's DRBG so a fresh
     *  instance of the same image never replays its predecessor's
     *  random stream (kept per-platform, not process-global, so two
     *  same-seed testbeds stay trace-identical). */
    uint64_t enclaveInstances_ = 0;
};

/**
 * Base class for enclave programs. Protected methods are the
 * "instructions" only code inside the enclave can execute.
 */
class Enclave
{
  public:
    Enclave(TeePlatform &platform, EnclaveImage image);
    virtual ~Enclave() = default;

    const Measurement &measurement() const { return measurement_; }
    const std::string &name() const { return image_.name; }
    TeePlatform &platform() { return platform_; }

  protected:
    /**
     * EREPORT: creates a report consumable by the enclave whose
     * measurement is `target`, binding up to 64 bytes of report data.
     */
    Report createReport(const Measurement &target,
                        ByteView reportData) const;

    /** Verifies a report that was targeted at *this* enclave. */
    bool verifyLocalReport(const Report &report) const;

    /** Quote over this enclave's identity (goes through the QE). */
    Quote createQuote(ByteView reportData) const;

    /** Seals data to this enclave's identity (AES-GCM). */
    Bytes seal(ByteView plaintext) const;

    /** Unseals; nullopt if tampered or sealed by another identity. */
    std::optional<Bytes> unseal(ByteView sealed) const;

    /** Enclave-private randomness (RDRAND analog). */
    crypto::RandomSource &rng() const { return *rng_; }

  private:
    // The LA helpers are enclave-side library code and use the
    // protected "instructions" on the enclave's behalf.
    friend class LocalAttestInitiator;
    friend class LocalAttestResponder;

    TeePlatform &platform_;
    EnclaveImage image_;
    Measurement measurement_;
    Measurement signer_;
    mutable std::unique_ptr<crypto::CtrDrbg> rng_;
};

/** Pads/truncates report data to the fixed 64-byte field. */
Bytes padReportData(ByteView data);

} // namespace salus::tee

#endif // SALUS_TEE_PLATFORM_HPP
