#include "tee/quote_verifier.hpp"

#include "crypto/ed25519.hpp"

namespace salus::tee {

QuoteVerificationService::QuoteVerificationService(Bytes rootPublicKey,
                                                   uint16_t minTcbSvn)
    : rootPublicKey_(std::move(rootPublicKey)), minTcbSvn_(minTcbSvn)
{
}

QuoteVerdict
QuoteVerificationService::verify(const Quote &quote) const
{
    QuoteVerdict v;

    if (quote.pck.platformId != quote.platformId) {
        v.reason = "platform id mismatch between quote and PCK cert";
        return v;
    }
    if (revoked_.count(quote.platformId)) {
        v.reason = "platform attestation key revoked";
        return v;
    }
    if (!crypto::ed25519Verify(rootPublicKey_, quote.pck.signedPortion(),
                               quote.pck.signature)) {
        v.reason = "PCK certificate not signed by manufacturer root";
        return v;
    }
    if (quote.pck.tcbSvn < minTcbSvn_) {
        v.reason = "platform TCB below minimum (out-of-date microcode)";
        return v;
    }
    if (quote.body.cpuSvn < minTcbSvn_) {
        v.reason = "quote generated at outdated CPU SVN";
        return v;
    }
    if (!crypto::ed25519Verify(quote.pck.attestPublicKey,
                               quote.signedPortion(), quote.signature)) {
        v.reason = "quote signature invalid";
        return v;
    }

    v.ok = true;
    v.body = quote.body;
    return v;
}

void
QuoteVerificationService::revokePlatform(const std::string &platformId)
{
    revoked_.insert(platformId);
}

} // namespace salus::tee
