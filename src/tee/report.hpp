/**
 * @file
 * Attestation report structures — the EREPORT output of the simulated
 * TEE (paper Fig. 1). A report binds an enclave's measurement and
 * 64 bytes of report data under an AES-CMAC keyed with the *target*
 * enclave's report key, exactly like SGX local attestation.
 */

#ifndef SALUS_TEE_REPORT_HPP
#define SALUS_TEE_REPORT_HPP

#include <string>

#include "common/bytes.hpp"

namespace salus::tee {

/** SHA-256 enclave measurement (MRENCLAVE analog). */
using Measurement = Bytes; // 32 bytes

/** Size of the free-form report-data field. */
constexpr size_t kReportDataSize = 64;

/** The MACed portion of a report. */
struct ReportBody
{
    Measurement mrenclave;  ///< measurement of the reporting enclave
    Measurement mrsigner;   ///< hash of the signing identity
    uint16_t isvSvn = 0;    ///< enclave security version
    uint16_t cpuSvn = 0;    ///< platform security version
    Bytes reportData;       ///< 64 bytes, caller-defined binding

    /** Canonical encoding covered by the MAC / quote signature. */
    Bytes serialize() const;
    static ReportBody deserialize(ByteView data);
};

/** A local-attestation report (EREPORT output). */
struct Report
{
    ReportBody body;
    Bytes mac; ///< AES-CMAC under the target enclave's report key

    Bytes serialize() const;
    static Report deserialize(ByteView data);
};

} // namespace salus::tee

#endif // SALUS_TEE_REPORT_HPP
