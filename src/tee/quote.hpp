/**
 * @file
 * DCAP-style quotes. A quote wraps an enclave report body with an
 * Ed25519 signature by the platform attestation key, plus the PCK-like
 * certificate chaining that key to the hardware manufacturer's root.
 * A data-center verification service (quote_verifier.hpp) checks the
 * chain — the analog of the Alibaba-hosted DCAP server in §6.1.
 */

#ifndef SALUS_TEE_QUOTE_HPP
#define SALUS_TEE_QUOTE_HPP

#include <string>

#include "tee/report.hpp"

namespace salus::tee {

/** Platform certificate: attestation key endorsed by the root CA. */
struct PckCertificate
{
    std::string platformId;
    Bytes attestPublicKey; ///< Ed25519, 32 bytes
    uint16_t tcbSvn = 0;   ///< platform TCB level at certification
    Bytes signature;       ///< manufacturer root over the fields above

    /** Encoding covered by the root signature. */
    Bytes signedPortion() const;
    Bytes serialize() const;
    static PckCertificate deserialize(ByteView data);
};

/** A remotely verifiable attestation quote. */
struct Quote
{
    ReportBody body;
    std::string platformId;
    /** Measurement of the quoting enclave that produced this quote;
     *  collateral-based verifiers check it against the published
     *  QE identity. */
    Measurement qeMeasurement;
    uint16_t qeIsvSvn = 0;
    Bytes signature; ///< platform attestation key over the above
    PckCertificate pck;

    /** Encoding covered by the platform signature. */
    Bytes signedPortion() const;
    Bytes serialize() const;
    static Quote deserialize(ByteView data);
};

} // namespace salus::tee

#endif // SALUS_TEE_QUOTE_HPP
