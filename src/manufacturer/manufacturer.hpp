/**
 * @file
 * The hardware manufacturer (paper §4.1): the trusted third party
 * that (a) fuses a random AES-256 device key into every FPGA at
 * manufacturing time, (b) maintains the DNA -> Key_device database
 * behind a key-distribution service, (c) certifies TEE platforms
 * (PCK issuance) and operates the quote-verification service, and
 * (d) releases the readback-disabled ICAP IP (modelled as devices
 * shipping with readback off).
 *
 * The key-distribution service only releases Key_device to a *remotely
 * attested* SM enclave (step ④ of Fig. 3): the request carries a quote
 * whose report data is the SM enclave's ephemeral X25519 public key,
 * and the key comes back wrapped so only that enclave can open it.
 */

#ifndef SALUS_MANUFACTURER_MANUFACTURER_HPP
#define SALUS_MANUFACTURER_MANUFACTURER_HPP

#include <map>
#include <memory>
#include <set>

#include "fpga/device.hpp"
#include "tee/platform.hpp"
#include "tee/quote_verifier.hpp"

namespace salus::manufacturer {

/** Wire format of a key request (serialized by the SM enclave). */
struct KeyRequest
{
    uint64_t deviceDna = 0;
    Bytes quote;      ///< serialized tee::Quote
    Bytes wrapPubKey; ///< SM enclave's ephemeral X25519 public key

    Bytes serialize() const;
    static KeyRequest deserialize(ByteView data);
};

/** Wire format of the key response. */
struct KeyResponse
{
    /** 0 = ok; 1 = refused (policy/verification — terminal);
     *  2 = request unparseable (transport-class — safe to retry). */
    uint8_t status = 1;
    std::string reason;  ///< failure explanation
    Bytes serverEphPub;  ///< server's X25519 ephemeral
    Bytes iv;            ///< GCM nonce for the wrapped key
    Bytes wrappedKey;    ///< ciphertext
    Bytes tag;           ///< GCM tag

    Bytes serialize() const;
    static KeyResponse deserialize(ByteView data);
};

/** The manufacturer and its services. */
class Manufacturer
{
  public:
    explicit Manufacturer(crypto::RandomSource &rng);

    /** Root CA public key (verifiers pin this). */
    const Bytes &rootPublicKey() const { return rootKey_.publicKey; }

    /** Certifies a TEE platform: issues and installs its PCK cert. */
    void provisionPlatform(tee::TeePlatform &platform);

    /**
     * Manufactures an FPGA: random DNA, random fused device key
     * recorded in the distribution database, readback disabled
     * (the Salus ICAP IP, §5.1.2).
     */
    std::unique_ptr<fpga::FpgaDevice>
    manufactureFpga(const fpga::DeviceModelInfo &model);

    /** The DCAP-analog verification service (shared with customers). */
    const tee::QuoteVerificationService &verificationService() const
    {
        return qvs_;
    }
    tee::QuoteVerificationService &verificationService() { return qvs_; }

    /** Whitelists an SM enclave build for key release. */
    void allowSmEnclave(const tee::Measurement &measurement);

    /**
     * Key-distribution endpoint: verifies the quote, checks the SM
     * measurement, and returns Key_device wrapped to the attested
     * enclave's ephemeral key. Never throws for attacker-controlled
     * input; failures come back in the response status.
     */
    KeyResponse handleKeyRequest(const KeyRequest &request);

    /** True when a DNA is in the database (test helper). */
    bool knowsDevice(uint64_t dna) const
    {
        return deviceKeys_.count(dna) != 0;
    }

  private:
    crypto::RandomSource &rng_;
    crypto::Ed25519KeyPair rootKey_;
    tee::QuoteVerificationService qvs_;
    std::map<uint64_t, Bytes> deviceKeys_;
    std::set<tee::Measurement> allowedSm_;
};

} // namespace salus::manufacturer

#endif // SALUS_MANUFACTURER_MANUFACTURER_HPP
