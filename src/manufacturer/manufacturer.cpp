#include "manufacturer/manufacturer.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"
#include "crypto/hmac.hpp"
#include "crypto/x25519.hpp"

namespace salus::manufacturer {

Bytes
KeyRequest::serialize() const
{
    BinaryWriter w;
    w.writeU64(deviceDna);
    w.writeBytes(quote);
    w.writeBytes(wrapPubKey);
    return w.take();
}

KeyRequest
KeyRequest::deserialize(ByteView data)
{
    BinaryReader r(data);
    KeyRequest req;
    req.deviceDna = r.readU64();
    req.quote = r.readBytes();
    req.wrapPubKey = r.readBytes();
    return req;
}

Bytes
KeyResponse::serialize() const
{
    BinaryWriter w;
    w.writeU8(status);
    w.writeString(reason);
    w.writeBytes(serverEphPub);
    w.writeBytes(iv);
    w.writeBytes(wrappedKey);
    w.writeBytes(tag);
    return w.take();
}

KeyResponse
KeyResponse::deserialize(ByteView data)
{
    BinaryReader r(data);
    KeyResponse resp;
    resp.status = r.readU8();
    resp.reason = r.readString();
    resp.serverEphPub = r.readBytes();
    resp.iv = r.readBytes();
    resp.wrappedKey = r.readBytes();
    resp.tag = r.readBytes();
    return resp;
}

Manufacturer::Manufacturer(crypto::RandomSource &rng)
    : rng_(rng), rootKey_(crypto::ed25519Generate(rng)),
      qvs_(rootKey_.publicKey)
{
}

void
Manufacturer::provisionPlatform(tee::TeePlatform &platform)
{
    tee::PckCertificate cert;
    cert.platformId = platform.platformId();
    cert.attestPublicKey = platform.attestationPublicKey();
    cert.tcbSvn = platform.cpuSvn();
    cert.signature =
        crypto::ed25519Sign(rootKey_.seed, cert.signedPortion());
    platform.installPckCertificate(std::move(cert));
}

std::unique_ptr<fpga::FpgaDevice>
Manufacturer::manufactureFpga(const fpga::DeviceModelInfo &model)
{
    fpga::DeviceDna dna{rng_.nextU64() & ((uint64_t(1) << 57) - 1)};
    auto device = std::make_unique<fpga::FpgaDevice>(model, dna);

    Bytes deviceKey = rng_.bytes(32);
    device->fuseKey(deviceKey);
    // Ships with the Salus ICAP IP: readback permanently off.
    device->setReadbackEnabled(false);

    deviceKeys_[device->dna().value] = std::move(deviceKey);
    return device;
}

void
Manufacturer::allowSmEnclave(const tee::Measurement &measurement)
{
    allowedSm_.insert(measurement);
}

KeyResponse
Manufacturer::handleKeyRequest(const KeyRequest &request)
{
    KeyResponse resp;

    auto deviceIt = deviceKeys_.find(request.deviceDna);
    if (deviceIt == deviceKeys_.end()) {
        resp.reason = "unknown device DNA";
        return resp;
    }

    tee::Quote quote;
    try {
        quote = tee::Quote::deserialize(request.quote);
    } catch (const TeeError &) {
        resp.reason = "malformed quote";
        return resp;
    }

    tee::QuoteVerdict verdict = qvs_.verify(quote);
    if (!verdict.ok) {
        resp.reason = "quote rejected: " + verdict.reason;
        return resp;
    }
    if (!allowedSm_.count(verdict.body.mrenclave)) {
        resp.reason = "enclave is not an approved SM build";
        return resp;
    }

    if (request.wrapPubKey.size() != crypto::kX25519KeySize) {
        resp.reason = "bad wrap key size";
        return resp;
    }
    // The quote must bind the wrap key: otherwise the OS could swap
    // in its own key and unwrap Key_device.
    if (verdict.body.reportData !=
        tee::padReportData(request.wrapPubKey)) {
        resp.reason = "wrap key not bound to quote";
        return resp;
    }

    crypto::X25519KeyPair eph = crypto::x25519Generate(rng_);
    Bytes wrapKey;
    try {
        wrapKey = crypto::deriveSessionKey(
            eph.privateKey, request.wrapPubKey, "salus-keydist-v1", 32);
    } catch (const CryptoError &) {
        resp.reason = "bad wrap key";
        return resp;
    }

    crypto::AesGcm gcm(wrapKey);
    Bytes iv = rng_.bytes(12);
    crypto::GcmSealed sealed =
        gcm.seal(iv, ByteView(), deviceIt->second);

    resp.status = 0;
    resp.serverEphPub = eph.publicKey;
    resp.iv = std::move(iv);
    resp.wrappedKey = std::move(sealed.ciphertext);
    resp.tag = std::move(sealed.tag);
    secureZero(wrapKey);
    return resp;
}

} // namespace salus::manufacturer
