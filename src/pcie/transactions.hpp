/**
 * @file
 * PCIe-level transaction types exchanged between the host and the
 * shell. Every one of these crosses the CSP-controlled shell, which
 * the threat model treats as an active adversary (§3.1 attack 3) —
 * protocol layers above must assume each field can be read, changed,
 * replayed or dropped.
 */

#ifndef SALUS_PCIE_TRANSACTIONS_HPP
#define SALUS_PCIE_TRANSACTIONS_HPP

#include <cstdint>

#include "common/bytes.hpp"

namespace salus::pcie {

/** Register windows the shell exposes to the host (paper Fig. 5). */
enum class Window : uint8_t {
    SmSecure = 0, ///< SM logic AXI4-Lite (secure register channel)
    Direct = 1,   ///< direct, unprotected accelerator interface
};

/** One MMIO register transaction. */
struct RegisterTxn
{
    bool isWrite = false;
    Window window = Window::SmSecure;
    uint32_t addr = 0;
    uint64_t data = 0; ///< write payload, or read result
};

/** One DMA transaction against device DRAM. */
struct DmaTxn
{
    bool toDevice = false;
    uint64_t addr = 0;
    size_t length = 0;
};

} // namespace salus::pcie

#endif // SALUS_PCIE_TRANSACTIONS_HPP
