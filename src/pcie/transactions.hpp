/**
 * @file
 * PCIe-level transaction types exchanged between the host and the
 * shell. Every one of these crosses the CSP-controlled shell, which
 * the threat model treats as an active adversary (§3.1 attack 3) —
 * protocol layers above must assume each field can be read, changed,
 * replayed or dropped.
 */

#ifndef SALUS_PCIE_TRANSACTIONS_HPP
#define SALUS_PCIE_TRANSACTIONS_HPP

#include <cstdint>

#include "common/bytes.hpp"

namespace salus::pcie {

/** Register windows the shell exposes to the host (paper Fig. 5). */
enum class Window : uint8_t {
    SmSecure = 0, ///< SM logic AXI4-Lite (secure register channel)
    Direct = 1,   ///< direct, unprotected accelerator interface
};

/** One MMIO register transaction. */
struct RegisterTxn
{
    bool isWrite = false;
    Window window = Window::SmSecure;
    uint32_t addr = 0;
    uint64_t data = 0; ///< write payload, or read result
};

/** One DMA transaction against device DRAM. */
struct DmaTxn
{
    bool toDevice = false;
    uint64_t addr = 0;
    size_t length = 0;
};

/**
 * One sealed-descriptor doorbell on the pipelined DMA plane. The host
 * stages the encoded descriptor in device DRAM with a posted DMA
 * write, then rings the SM logic's doorbell register with the staging
 * address; acks come back as a cumulative, MAC'd (seq, tag) pair. All
 * fields cross the malicious shell — integrity lives entirely in the
 * descriptor's own MAC, never in this envelope.
 */
struct DmaDescriptorTxn
{
    uint64_t seq = 0;         ///< descriptor sequence number
    uint64_t stagingAddr = 0; ///< where the sealed bytes were staged
    size_t encodedLength = 0; ///< sealed descriptor size in bytes
};

} // namespace salus::pcie

#endif // SALUS_PCIE_TRANSACTIONS_HPP
