/**
 * @file
 * SipHash-2-4 (Aumasson & Bernstein), 128-bit key, 64-bit tag.
 *
 * This is the paper's SM-logic MAC engine (§5.1.1): a lightweight
 * add-rotate-xor PRF cheap enough for FPGA fabric, secure as a MAC
 * while the key stays secret — which Salus's RoT injection guarantees.
 */

#ifndef SALUS_CRYPTO_SIPHASH_HPP
#define SALUS_CRYPTO_SIPHASH_HPP

#include <cstdint>

#include "common/bytes.hpp"

namespace salus::crypto {

/** SipHash key length in bytes. */
constexpr size_t kSipHashKeySize = 16;

/** SipHash-2-4 tag length in bytes. */
constexpr size_t kSipHashTagSize = 8;

/**
 * Computes the 64-bit SipHash-2-4 tag.
 * @param key exactly 16 bytes.
 * @throws CryptoError on wrong key size.
 */
uint64_t sipHash24(ByteView key, ByteView msg);

/** Tag as 8 little-endian bytes (wire format). */
Bytes sipHash24Bytes(ByteView key, ByteView msg);

/** Constant-time verification of an 8-byte tag. */
bool sipHash24Verify(ByteView key, ByteView msg, ByteView tag);

} // namespace salus::crypto

#endif // SALUS_CRYPTO_SIPHASH_HPP
