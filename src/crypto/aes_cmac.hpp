/**
 * @file
 * AES-CMAC (RFC 4493 / NIST SP 800-38B).
 *
 * Intel SGX local-attestation reports are MACed with AES-128-CMAC
 * under the report key (paper Fig. 1); the simulated TEE's EREPORT
 * does exactly the same.
 */

#ifndef SALUS_CRYPTO_AES_CMAC_HPP
#define SALUS_CRYPTO_AES_CMAC_HPP

#include "crypto/aes.hpp"

namespace salus::crypto {

/** CMAC tag length in bytes. */
constexpr size_t kCmacTagSize = 16;

/** Computes the 16-byte AES-CMAC of msg under key. */
Bytes aesCmac(ByteView key, ByteView msg);

/** Verifies in constant time. */
bool aesCmacVerify(ByteView key, ByteView msg, ByteView tag);

} // namespace salus::crypto

#endif // SALUS_CRYPTO_AES_CMAC_HPP
