/**
 * @file
 * SHA-512 (FIPS 180-4). Required by Ed25519 signatures, which sign the
 * DCAP-style quotes and the ShEF-baseline certificates.
 */

#ifndef SALUS_CRYPTO_SHA512_HPP
#define SALUS_CRYPTO_SHA512_HPP

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace salus::crypto {

/** Digest length of SHA-512 in bytes. */
constexpr size_t kSha512DigestSize = 64;

/** Streaming SHA-512 context. */
class Sha512
{
  public:
    Sha512() { reset(); }

    /** Resets to the initial state. */
    void reset();

    /** Absorbs more message bytes. */
    void update(ByteView data);

    /** Finalizes and returns the 64-byte digest; context then reset. */
    Bytes finish();

    /** One-shot convenience. */
    static Bytes digest(ByteView data);

  private:
    void compress(const uint8_t block[128]);

    std::array<uint64_t, 8> state_;
    uint8_t buf_[128];
    size_t bufLen_;
    uint64_t total_;
};

} // namespace salus::crypto

#endif // SALUS_CRYPTO_SHA512_HPP
