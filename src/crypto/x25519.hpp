/**
 * @file
 * X25519 Diffie-Hellman (RFC 7748).
 *
 * Used for the local-attestation key exchange between the user enclave
 * and the SM enclave (paper §5.2.2 uses ECDH), and for establishing
 * encrypted sessions between remote parties and enclaves.
 */

#ifndef SALUS_CRYPTO_X25519_HPP
#define SALUS_CRYPTO_X25519_HPP

#include "common/bytes.hpp"
#include "crypto/random.hpp"

namespace salus::crypto {

/** X25519 key and point size in bytes. */
constexpr size_t kX25519KeySize = 32;

/** Scalar multiplication: out = scalar * point (u-coordinates). */
void x25519(uint8_t out[32], const uint8_t scalar[32],
            const uint8_t point[32]);

/** An X25519 key pair. */
struct X25519KeyPair
{
    Bytes privateKey; ///< 32 bytes, clamped.
    Bytes publicKey;  ///< 32 bytes.
};

/** Generates a key pair from the given randomness source. */
X25519KeyPair x25519Generate(RandomSource &rng);

/**
 * Computes the shared secret scalar*peerPublic.
 * @throws CryptoError if the result is the all-zero point.
 */
Bytes x25519Shared(ByteView privateKey, ByteView peerPublic);

/**
 * Full session-key agreement: X25519 then HKDF-SHA256 with the given
 * context label. Both sides derive the same key.
 */
Bytes deriveSessionKey(ByteView privateKey, ByteView peerPublic,
                       const std::string &context, size_t keyLen);

} // namespace salus::crypto

#endif // SALUS_CRYPTO_X25519_HPP
