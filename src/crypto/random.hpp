/**
 * @file
 * Random sources. All key generation in enclaves, devices and tests
 * draws from a RandomSource so experiments are reproducible: protocol
 * code never touches the OS RNG directly.
 */

#ifndef SALUS_CRYPTO_RANDOM_HPP
#define SALUS_CRYPTO_RANDOM_HPP

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"

namespace salus::crypto {

/** Abstract byte generator. */
class RandomSource
{
  public:
    virtual ~RandomSource() = default;

    /** Fills the buffer with random bytes. */
    virtual void fill(uint8_t *out, size_t len) = 0;

    /** Returns n random bytes. */
    Bytes bytes(size_t n);

    /** Uniform uint64 (not bias-corrected; simulation use only). */
    uint64_t nextU64();

    /** Uniform value in [0, bound) for simulation decisions. */
    uint64_t below(uint64_t bound);
};

/**
 * Deterministic AES-256-CTR DRBG (SP 800-90A shaped). The same seed
 * always yields the same stream, which makes full platform runs
 * reproducible bit-for-bit.
 */
class CtrDrbg : public RandomSource
{
  public:
    /** Instantiates from arbitrary-length seed material. */
    explicit CtrDrbg(ByteView seed);

    /** Convenience: seed from a 64-bit value (tests, simulations). */
    explicit CtrDrbg(uint64_t seed);

    ~CtrDrbg() override;

    void fill(uint8_t *out, size_t len) override;

    /** Mixes fresh entropy into the state. */
    void reseed(ByteView seed);

  private:
    void update(ByteView providedData);

    uint8_t key_[32];
    uint8_t v_[16];
};

/** OS-entropy-backed source (std::random_device). */
class SystemRandom : public RandomSource
{
  public:
    void fill(uint8_t *out, size_t len) override;
};

} // namespace salus::crypto

#endif // SALUS_CRYPTO_RANDOM_HPP
