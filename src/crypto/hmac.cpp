#include "crypto/hmac.hpp"

#include "common/errors.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace salus::crypto {

namespace {

template <typename Hash, size_t BlockSize>
Bytes
hmac(ByteView key, ByteView msg)
{
    Bytes k(key.begin(), key.end());
    if (k.size() > BlockSize) {
        Hash h;
        h.update(k);
        k = h.finish();
    }
    k.resize(BlockSize, 0);

    Bytes ipad(BlockSize), opad(BlockSize);
    for (size_t i = 0; i < BlockSize; ++i) {
        ipad[i] = uint8_t(k[i] ^ 0x36);
        opad[i] = uint8_t(k[i] ^ 0x5c);
    }

    Hash inner;
    inner.update(ipad);
    inner.update(msg);
    Bytes innerDigest = inner.finish();

    Hash outer;
    outer.update(opad);
    outer.update(innerDigest);
    Bytes out = outer.finish();

    secureZero(k);
    secureZero(ipad);
    secureZero(opad);
    return out;
}

} // namespace

Bytes
hmacSha256(ByteView key, ByteView msg)
{
    return hmac<Sha256, 64>(key, msg);
}

Bytes
hmacSha512(ByteView key, ByteView msg)
{
    return hmac<Sha512, 128>(key, msg);
}

Bytes
hkdfExtract(ByteView salt, ByteView ikm)
{
    return hmacSha256(salt, ikm);
}

Bytes
hkdfExpand(ByteView prk, ByteView info, size_t length)
{
    if (length > 255 * kSha256DigestSize)
        throw CryptoError("hkdfExpand: output too long");

    Bytes out;
    out.reserve(length);
    Bytes t;
    uint8_t counter = 1;
    while (out.size() < length) {
        Bytes block = concatBytes({t, info, ByteView(&counter, 1)});
        t = hmacSha256(prk, block);
        size_t take = std::min(t.size(), length - out.size());
        out.insert(out.end(), t.begin(), t.begin() + take);
        ++counter;
    }
    return out;
}

Bytes
hkdf(ByteView salt, ByteView ikm, ByteView info, size_t length)
{
    return hkdfExpand(hkdfExtract(salt, ikm), info, length);
}

} // namespace salus::crypto
