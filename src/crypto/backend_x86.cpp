#include "crypto/backend_x86.hpp"

#ifdef SALUS_CRYPTO_HAVE_X86_BACKEND

#include <immintrin.h>

namespace salus::crypto::x86 {

namespace {

// ---- AES-NI / VAES ----------------------------------------------------

/** Loads the serialized round keys into xmm registers. AES-NI's
 *  aesenc round matches FIPS-197 exactly when the round key bytes are
 *  loaded as-is, which is precisely how Aes serializes its schedule
 *  (big-endian words = the spec's byte order). */
__attribute__((target("aes,sse2"))) inline void
loadRoundKeys(const uint8_t *rk, int rounds, __m128i k[15])
{
    for (int r = 0; r <= rounds; ++r)
        k[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rk + 16 * r));
}

/** 8-wide pipelined AES-NI ECB: the aesenc unit is fully pipelined,
 *  so eight independent blocks in flight hide its latency. */
__attribute__((target("aes,sse2"))) void
ecbAesni(const uint8_t *rk, int rounds, const uint8_t *in,
         uint8_t *out, size_t n)
{
    __m128i k[15];
    loadRoundKeys(rk, rounds, k);
    while (n >= 8) {
        __m128i b[8];
        for (int i = 0; i < 8; ++i) {
            b[i] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * i));
            b[i] = _mm_xor_si128(b[i], k[0]);
        }
        for (int r = 1; r < rounds; ++r)
            for (int i = 0; i < 8; ++i)
                b[i] = _mm_aesenc_si128(b[i], k[r]);
        for (int i = 0; i < 8; ++i) {
            b[i] = _mm_aesenclast_si128(b[i], k[rounds]);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * i),
                             b[i]);
        }
        in += 128;
        out += 128;
        n -= 8;
    }
    while (n > 0) {
        __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in));
        b = _mm_xor_si128(b, k[0]);
        for (int r = 1; r < rounds; ++r)
            b = _mm_aesenc_si128(b, k[r]);
        b = _mm_aesenclast_si128(b, k[rounds]);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out), b);
        in += 16;
        out += 16;
        --n;
    }
}

/** 16-wide VAES: two blocks per ymm register, eight registers in
 *  flight. Only the bulk; the tail falls back to the 128-bit path. */
__attribute__((target("vaes,avx2,aes"))) size_t
ecbVaes(const uint8_t *rk, int rounds, const uint8_t *in, uint8_t *out,
        size_t n)
{
    __m256i k[15];
    for (int r = 0; r <= rounds; ++r)
        k[r] = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rk + 16 * r)));
    size_t done = 0;
    while (n - done >= 16) {
        __m256i b[8];
        for (int i = 0; i < 8; ++i) {
            b[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                in + done * 16 + 32 * i));
            b[i] = _mm256_xor_si256(b[i], k[0]);
        }
        for (int r = 1; r < rounds; ++r)
            for (int i = 0; i < 8; ++i)
                b[i] = _mm256_aesenc_epi128(b[i], k[r]);
        for (int i = 0; i < 8; ++i) {
            b[i] = _mm256_aesenclast_epi128(b[i], k[rounds]);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(
                                    out + done * 16 + 32 * i),
                                b[i]);
        }
        done += 16;
    }
    _mm256_zeroupper();
    return done;
}

// ---- PCLMULQDQ GHASH --------------------------------------------------

/**
 * One GF(2^128) multiply in GHASH's representation. The scalar code
 * (and this one) stores field elements as the two big-endian-loaded
 * 64-bit halves, which makes the stored 128-bit integer the
 * bit-reversal of the polynomial: bit j holds the coefficient of
 * x^(127-j). The product of two bit-reversed polynomials is the
 * bit-reversed 255-bit carry-less product shifted left by one, after
 * which x^128..x^254 terms are folded twice through
 * x^128 = x^7 + x^2 + x + 1 (the GCM polynomial).
 */
__attribute__((target("pclmul,sse4.1"))) inline void
ghashMult(uint64_t &zh, uint64_t &zl, uint64_t hh, uint64_t hl)
{
    const __m128i a = _mm_set_epi64x(int64_t(zh), int64_t(zl));
    const __m128i b = _mm_set_epi64x(int64_t(hh), int64_t(hl));

    // Schoolbook 128x128 -> 255-bit carry-less product.
    const __m128i ll = _mm_clmulepi64_si128(a, b, 0x00);
    const __m128i hh2 = _mm_clmulepi64_si128(a, b, 0x11);
    const __m128i lh = _mm_clmulepi64_si128(a, b, 0x10);
    const __m128i hl2 = _mm_clmulepi64_si128(a, b, 0x01);
    const __m128i mid = _mm_xor_si128(lh, hl2);

    uint64_t p0 = uint64_t(_mm_cvtsi128_si64(ll));
    uint64_t p1 = uint64_t(_mm_extract_epi64(ll, 1)) ^
                  uint64_t(_mm_cvtsi128_si64(mid));
    uint64_t p2 = uint64_t(_mm_cvtsi128_si64(hh2)) ^
                  uint64_t(_mm_extract_epi64(mid, 1));
    uint64_t p3 = uint64_t(_mm_extract_epi64(hh2, 1));

    // Undo the bit-reversal's off-by-one: Q = P << 1 is the reversed
    // 256-bit product C (q3:q2 = rev(C_lo), q1:q0 = rev(C_hi)).
    uint64_t q0 = p0 << 1;
    uint64_t q1 = (p1 << 1) | (p0 >> 63);
    uint64_t q2 = (p2 << 1) | (p1 >> 63);
    uint64_t q3 = (p3 << 1) | (p2 >> 63);

    // Fold C_hi * (x^7 + x^2 + x + 1), truncated to degree <= 127:
    // multiplying by x^s is a right shift by s in this representation.
    uint64_t d1 = q1 ^ (q1 >> 1) ^ (q1 >> 2) ^ (q1 >> 7);
    uint64_t d0 = q0 ^ ((q0 >> 1) | (q1 << 63)) ^
                  ((q0 >> 2) | (q1 << 62)) ^ ((q0 >> 7) | (q1 << 57));

    // Second fold: the first fold overflows x^127 by at most six
    // terms e_m x^(128+m) (m = 0..5), with e_m = c_(121+m), plus
    // c_126 riding on m = 0 from the x^2 term. c_(127-j) is bit j of
    // q0, so all six live in q0's low bits.
    unsigned e = 0;
    for (int m = 0; m <= 5; ++m)
        e |= unsigned((q0 >> (6 - m)) & 1) << m;
    e ^= unsigned((q0 >> 1) & 1);
    // F = E(x) * (x^7 + x^2 + x + 1), degree <= 12.
    unsigned f = (e << 7) ^ (e << 2) ^ (e << 1) ^ e;
    // rev(F): degree-d terms land on bit 127 - d, all in the top word.
    uint64_t fh = 0;
    for (int d = 0; d <= 12; ++d)
        if ((f >> d) & 1)
            fh |= uint64_t(1) << (63 - d);

    zh = q3 ^ d1 ^ fh;
    zl = q2 ^ d0;
}

__attribute__((target("pclmul,sse4.1"))) void
ghashBlocks(uint64_t &yh, uint64_t &yl, const uint8_t *data, size_t n,
            uint64_t h0, uint64_t h1)
{
    uint64_t zh = yh, zl = yl;
    for (size_t i = 0; i < n; ++i, data += 16) {
        // Big-endian load == the scalar representation.
        uint64_t xh = 0, xl = 0;
        for (int j = 0; j < 8; ++j) {
            xh = (xh << 8) | data[j];
            xl = (xl << 8) | data[8 + j];
        }
        zh ^= xh;
        zl ^= xl;
        ghashMult(zh, zl, h0, h1);
    }
    yh = zh;
    yl = zl;
}

// ---- SHA-NI -----------------------------------------------------------

alignas(16) const uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

__attribute__((target("sha,ssse3,sse4.1"))) void
sha256Compress(uint32_t state[8], const uint8_t *data, size_t n)
{
    const __m128i kSwap = _mm_set_epi64x(
        int64_t(0x0c0d0e0f08090a0bULL), int64_t(0x0405060700010203ULL));

    // Repack {a..h} into the sha256rnds2 operand order (ABEF/CDGH).
    __m128i tmp =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(&state[0]));
    __m128i s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(&state[4]));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);       // CDAB
    s1 = _mm_shuffle_epi32(s1, 0x1B);         // EFGH
    __m128i s0 = _mm_alignr_epi8(tmp, s1, 8); // ABEF
    s1 = _mm_blend_epi16(s1, tmp, 0xF0);      // CDGH

    while (n > 0) {
        const __m128i save0 = s0;
        const __m128i save1 = s1;
        __m128i msg[4];
        for (int g = 0; g < 16; ++g) {
            __m128i m;
            if (g < 4) {
                m = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(data + 16 * g));
                m = _mm_shuffle_epi8(m, kSwap);
                msg[g] = m;
            } else {
                // W[4g..4g+3] from the four previous vectors.
                const __m128i x0 = msg[g % 4];
                const __m128i x1 = msg[(g + 1) % 4];
                const __m128i x2 = msg[(g + 2) % 4];
                const __m128i x3 = msg[(g + 3) % 4];
                m = _mm_sha256msg1_epu32(x0, x1);
                m = _mm_add_epi32(m, _mm_alignr_epi8(x3, x2, 4));
                m = _mm_sha256msg2_epu32(m, x3);
                msg[g % 4] = m;
            }
            const __m128i wk = _mm_add_epi32(
                m, _mm_load_si128(reinterpret_cast<const __m128i *>(
                       kSha256K + 4 * g)));
            s1 = _mm_sha256rnds2_epu32(s1, s0, wk);
            s0 = _mm_sha256rnds2_epu32(s0, s1,
                                       _mm_shuffle_epi32(wk, 0x0E));
        }
        s0 = _mm_add_epi32(s0, save0);
        s1 = _mm_add_epi32(s1, save1);
        data += 64;
        --n;
    }

    tmp = _mm_shuffle_epi32(s0, 0x1B); // FEBA
    s1 = _mm_shuffle_epi32(s1, 0xB1);  // DCHG
    s0 = _mm_blend_epi16(tmp, s1, 0xF0);
    s1 = _mm_alignr_epi8(s1, tmp, 8);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(&state[0]), s0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(&state[4]), s1);
}

} // namespace

void
aesniEcbEncrypt(const uint8_t *roundKeyBytes, int rounds,
                const uint8_t *in, uint8_t *out, size_t n,
                bool useVaes)
{
    size_t done = 0;
    if (useVaes && n >= 16)
        done = ecbVaes(roundKeyBytes, rounds, in, out, n);
    if (done < n)
        ecbAesni(roundKeyBytes, rounds, in + 16 * done,
                 out + 16 * done, n - done);
}

void
pclmulGhashBlocks(uint64_t &yh, uint64_t &yl, const uint8_t *data,
                  size_t n, uint64_t h0, uint64_t h1)
{
    ghashBlocks(yh, yl, data, n, h0, h1);
}

void
shaniSha256Compress(uint32_t state[8], const uint8_t *data, size_t n)
{
    sha256Compress(state, data, n);
}

} // namespace salus::crypto::x86

#endif // SALUS_CRYPTO_HAVE_X86_BACKEND
