#include "crypto/ed25519.hpp"

#include <cstring>

#include "common/errors.hpp"
#include "common/hex.hpp"
#include "crypto/f25519.hpp"
#include "crypto/sha512.hpp"

namespace salus::crypto {

namespace {

// --- Curve constants (edwards25519: -x^2 + y^2 = 1 + d x^2 y^2) ----

Fe
feFromHexBe(const char *hexBe)
{
    Bytes be = hexDecode(hexBe);
    uint8_t le[32];
    for (int i = 0; i < 32; ++i)
        le[i] = be[31 - i];
    return feFromBytes(le);
}

const Fe &
constD()
{
    static const Fe d = feFromHexBe(
        "52036cee2b6ffe738cc740797779e89800700a4d4141d8ab75eb4dca135978a3");
    return d;
}

const Fe &
constD2()
{
    static const Fe d2 = feAdd(constD(), constD());
    return d2;
}

const Fe &
constSqrtM1()
{
    static const Fe s = feFromHexBe(
        "2b8324804fc1df0b2b4d00993dfbd7a72f431806ad2fe478c4ee1b274a0ea0b0");
    return s;
}

// --- Group element (extended homogeneous coordinates) ---------------

struct Ge
{
    Fe x, y, z, t;
};

Ge
geIdentity()
{
    return Ge{feZero(), feOne(), feOne(), feZero()};
}

const Ge &
geBase()
{
    static const Ge b = [] {
        Ge g;
        g.x = feFromHexBe("216936d3cd6e53fec0a4e231fdd6dc5c"
                          "692cc7609525a7b2c9562d608f25d51a");
        g.y = feFromHexBe("66666666666666666666666666666666"
                          "66666666666666666666666666666658");
        g.z = feOne();
        g.t = feMul(g.x, g.y);
        return g;
    }();
    return b;
}

Ge
geAdd(const Ge &p, const Ge &q)
{
    Fe a = feMul(feSub(p.y, p.x), feSub(q.y, q.x));
    Fe b = feMul(feAdd(p.y, p.x), feAdd(q.y, q.x));
    Fe c = feMul(feMul(p.t, constD2()), q.t);
    Fe d = feMul(feAdd(p.z, p.z), q.z);
    Fe e = feSub(b, a);
    Fe f = feSub(d, c);
    Fe g = feAdd(d, c);
    Fe h = feAdd(b, a);
    return Ge{feMul(e, f), feMul(g, h), feMul(f, g), feMul(e, h)};
}

Ge
geDouble(const Ge &p)
{
    Fe a = feSquare(p.x);
    Fe b = feSquare(p.y);
    Fe zz = feSquare(p.z);
    Fe c = feAdd(zz, zz);
    Fe h = feAdd(a, b);
    Fe xy = feAdd(p.x, p.y);
    Fe e = feSub(h, feSquare(xy));
    Fe g = feSub(a, b);
    Fe f = feAdd(c, g);
    return Ge{feMul(e, f), feMul(g, h), feMul(f, g), feMul(e, h)};
}

/** scalar is 32 little-endian bytes; plain double-and-add. */
Ge
geScalarMul(const Ge &p, const uint8_t scalar[32])
{
    Ge r = geIdentity();
    for (int i = 255; i >= 0; --i) {
        r = geDouble(r);
        if ((scalar[i / 8] >> (i % 8)) & 1)
            r = geAdd(r, p);
    }
    return r;
}

Ge
geScalarMulBase(const uint8_t scalar[32])
{
    return geScalarMul(geBase(), scalar);
}

Ge
geNeg(const Ge &p)
{
    return Ge{feNeg(p.x), p.y, p.z, feNeg(p.t)};
}

void
geToBytes(uint8_t out[32], const Ge &p)
{
    Fe zInv = feInvert(p.z);
    Fe x = feMul(p.x, zInv);
    Fe y = feMul(p.y, zInv);
    feToBytes(out, y);
    if (feIsNegative(x))
        out[31] |= 0x80;
}

/** Decompresses a point; false if not on the curve. */
bool
geFromBytes(Ge &out, const uint8_t in[32])
{
    uint8_t yBytes[32];
    std::memcpy(yBytes, in, 32);
    bool xNegative = (yBytes[31] & 0x80) != 0;
    yBytes[31] &= 0x7f;

    Fe y = feFromBytes(yBytes);
    Fe y2 = feSquare(y);
    Fe u = feSub(y2, feOne());               // y^2 - 1
    Fe v = feAdd(feMul(constD(), y2), feOne()); // d*y^2 + 1

    // x = u * v^3 * (u * v^7)^((p-5)/8)
    Fe v3 = feMul(feSquare(v), v);
    Fe v7 = feMul(feSquare(v3), v);
    Fe x = feMul(feMul(u, v3), fePow2523(feMul(u, v7)));

    Fe vx2 = feMul(v, feSquare(x));
    if (!feEqual(vx2, u)) {
        if (feEqual(vx2, feNeg(u)))
            x = feMul(x, constSqrtM1());
        else
            return false;
    }

    if (feIsZero(x) && xNegative)
        return false; // -0 is not a valid encoding
    if (feIsNegative(x) != xNegative)
        x = feNeg(x);

    out.x = x;
    out.y = y;
    out.z = feOne();
    out.t = feMul(x, y);
    return true;
}

// --- Scalar arithmetic mod L ----------------------------------------
//
// L = 2^252 + 27742317777372353535851937790883648493. Scalars are
// handled as 544-bit little-endian limb arrays; reduction is binary
// shift-and-subtract (performance is irrelevant at protocol rates).

struct Wide
{
    uint32_t w[17]{}; // 544 bits, little-endian limbs

    static Wide
    fromBytes(ByteView b)
    {
        Wide r;
        for (size_t i = 0; i < b.size() && i < 68; ++i)
            r.w[i / 4] |= uint32_t(b[i]) << (8 * (i % 4));
        return r;
    }

    void
    toBytes32(uint8_t out[32]) const
    {
        for (int i = 0; i < 32; ++i)
            out[i] = uint8_t(w[i / 4] >> (8 * (i % 4)));
    }

    bool
    geq(const Wide &o) const
    {
        for (int i = 16; i >= 0; --i) {
            if (w[i] != o.w[i])
                return w[i] > o.w[i];
        }
        return true;
    }

    void
    sub(const Wide &o)
    {
        uint64_t borrow = 0;
        for (int i = 0; i < 17; ++i) {
            uint64_t d = uint64_t(w[i]) - o.w[i] - borrow;
            w[i] = uint32_t(d);
            borrow = (d >> 63) & 1;
        }
    }

    void
    shiftLeft1()
    {
        uint32_t carry = 0;
        for (int i = 0; i < 17; ++i) {
            uint32_t next = w[i] >> 31;
            w[i] = (w[i] << 1) | carry;
            carry = next;
        }
    }

    void
    shiftRight1()
    {
        uint32_t carry = 0;
        for (int i = 16; i >= 0; --i) {
            uint32_t next = w[i] & 1;
            w[i] = (w[i] >> 1) | (carry << 31);
            carry = next;
        }
    }

    int
    bitLength() const
    {
        for (int i = 16; i >= 0; --i) {
            if (w[i]) {
                int bits = 32 * i;
                uint32_t v = w[i];
                while (v) {
                    ++bits;
                    v >>= 1;
                }
                return bits;
            }
        }
        return 0;
    }
};

const Wide &
orderL()
{
    static const Wide l = [] {
        Bytes be = hexDecode("10000000000000000000000000000000"
                             "14def9dea2f79cd65812631a5cf5d3ed");
        Bytes le(be.rbegin(), be.rend());
        return Wide::fromBytes(le);
    }();
    return l;
}

/** n mod L via shift-and-subtract long division. */
void
scModL(Wide &n)
{
    const Wide &l = orderL();
    int shift = n.bitLength() - l.bitLength();
    if (shift < 0)
        return;
    Wide d = l;
    for (int i = 0; i < shift; ++i)
        d.shiftLeft1();
    for (int i = shift; i >= 0; --i) {
        if (n.geq(d))
            n.sub(d);
        d.shiftRight1();
    }
}

/** Reduces a 64-byte little-endian value mod L into 32 bytes. */
void
scReduce(uint8_t out[32], ByteView in64)
{
    Wide n = Wide::fromBytes(in64);
    scModL(n);
    n.toBytes32(out);
}

/** out = (a*b + c) mod L; all inputs 32-byte little-endian. */
void
scMulAdd(uint8_t out[32], const uint8_t a[32], const uint8_t b[32],
         const uint8_t c[32])
{
    // Schoolbook 256x256 multiply into 512 bits.
    uint32_t aw[8], bw[8];
    for (int i = 0; i < 8; ++i) {
        aw[i] = loadLe32(a + 4 * i);
        bw[i] = loadLe32(b + 4 * i);
    }
    uint64_t acc[17] = {};
    for (int i = 0; i < 8; ++i) {
        uint64_t carry = 0;
        for (int j = 0; j < 8; ++j) {
            uint64_t cur = acc[i + j] + uint64_t(aw[i]) * bw[j] + carry;
            acc[i + j] = cur & 0xffffffffULL;
            carry = cur >> 32;
        }
        acc[i + 8] += carry;
    }
    Wide n;
    uint64_t carry = 0;
    for (int i = 0; i < 17; ++i) {
        uint64_t cur = acc[i] + carry;
        n.w[i] = uint32_t(cur);
        carry = cur >> 32;
    }
    // Add c.
    carry = 0;
    for (int i = 0; i < 8; ++i) {
        uint64_t cur = uint64_t(n.w[i]) + loadLe32(c + 4 * i) + carry;
        n.w[i] = uint32_t(cur);
        carry = cur >> 32;
    }
    for (int i = 8; carry && i < 17; ++i) {
        uint64_t cur = uint64_t(n.w[i]) + carry;
        n.w[i] = uint32_t(cur);
        carry = cur >> 32;
    }
    scModL(n);
    n.toBytes32(out);
}

void
expandSeed(ByteView seed, uint8_t scalar[32], uint8_t prefix[32])
{
    Bytes h = Sha512::digest(seed);
    std::memcpy(scalar, h.data(), 32);
    std::memcpy(prefix, h.data() + 32, 32);
    scalar[0] &= 248;
    scalar[31] &= 63;
    scalar[31] |= 64;
    secureZero(h);
}

} // namespace

Bytes
ed25519PublicKey(ByteView seed)
{
    if (seed.size() != kEd25519KeySize)
        throw CryptoError("Ed25519 seed must be 32 bytes");
    uint8_t scalar[32], prefix[32];
    expandSeed(seed, scalar, prefix);
    Ge a = geScalarMulBase(scalar);
    Bytes pub(32);
    geToBytes(pub.data(), a);
    secureZero(scalar, 32);
    secureZero(prefix, 32);
    return pub;
}

Ed25519KeyPair
ed25519Generate(RandomSource &rng)
{
    Ed25519KeyPair kp;
    kp.seed = rng.bytes(kEd25519KeySize);
    kp.publicKey = ed25519PublicKey(kp.seed);
    return kp;
}

Bytes
ed25519Sign(ByteView seed, ByteView msg)
{
    if (seed.size() != kEd25519KeySize)
        throw CryptoError("Ed25519 seed must be 32 bytes");

    uint8_t scalar[32], prefix[32];
    expandSeed(seed, scalar, prefix);

    Bytes pub = ed25519PublicKey(seed);

    // r = H(prefix || msg) mod L
    Sha512 h;
    h.update(ByteView(prefix, 32));
    h.update(msg);
    Bytes rHash = h.finish();
    uint8_t r[32];
    scReduce(r, rHash);

    Ge rPoint = geScalarMulBase(r);
    uint8_t rEnc[32];
    geToBytes(rEnc, rPoint);

    // k = H(R || A || msg) mod L
    Sha512 h2;
    h2.update(ByteView(rEnc, 32));
    h2.update(pub);
    h2.update(msg);
    Bytes kHash = h2.finish();
    uint8_t k[32];
    scReduce(k, kHash);

    // S = (r + k * scalar) mod L
    uint8_t s[32];
    scMulAdd(s, k, scalar, r);

    Bytes sig(kEd25519SigSize);
    std::memcpy(sig.data(), rEnc, 32);
    std::memcpy(sig.data() + 32, s, 32);

    secureZero(scalar, 32);
    secureZero(prefix, 32);
    secureZero(r, 32);
    return sig;
}

bool
ed25519Verify(ByteView publicKey, ByteView msg, ByteView signature)
{
    if (publicKey.size() != kEd25519KeySize ||
        signature.size() != kEd25519SigSize) {
        return false;
    }

    Ge a;
    if (!geFromBytes(a, publicKey.data()))
        return false;
    Ge r;
    if (!geFromBytes(r, signature.data()))
        return false;

    // Reject S >= L.
    Wide s = Wide::fromBytes(ByteView(signature.data() + 32, 32));
    if (s.geq(orderL()))
        return false;

    uint8_t k[32];
    Sha512 h;
    h.update(ByteView(signature.data(), 32));
    h.update(publicKey);
    h.update(msg);
    Bytes kHash = h.finish();
    scReduce(k, kHash);

    // Check S*B == R + k*A  <=>  S*B + k*(-A) == R
    Ge lhs = geScalarMulBase(signature.data() + 32);
    Ge kNegA = geScalarMul(geNeg(a), k);
    Ge sum = geAdd(lhs, kNegA);

    uint8_t sumEnc[32];
    geToBytes(sumEnc, sum);
    uint8_t acc = 0;
    for (int i = 0; i < 32; ++i)
        acc |= uint8_t(sumEnc[i] ^ signature[i]);
    return acc == 0;
}

} // namespace salus::crypto
