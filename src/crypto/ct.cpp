#include "crypto/ct.hpp"

namespace salus::crypto {

bool
ctEqual(ByteView a, ByteView b)
{
    if (a.size() != b.size())
        return false;
    uint8_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i)
        acc |= uint8_t(a[i] ^ b[i]);
    return acc == 0;
}

} // namespace salus::crypto
