#include "crypto/siphash.hpp"

#include "common/errors.hpp"
#include "crypto/ct.hpp"

namespace salus::crypto {

namespace {

inline uint64_t
rotl(uint64_t x, int b)
{
    return (x << b) | (x >> (64 - b));
}

inline void
sipRound(uint64_t &v0, uint64_t &v1, uint64_t &v2, uint64_t &v3)
{
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
}

} // namespace

uint64_t
sipHash24(ByteView key, ByteView msg)
{
    if (key.size() != kSipHashKeySize)
        throw CryptoError("SipHash key must be 16 bytes");

    uint64_t k0 = loadLe64(key.data());
    uint64_t k1 = loadLe64(key.data() + 8);

    uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
    uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
    uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
    uint64_t v3 = 0x7465646279746573ULL ^ k1;

    size_t full = msg.size() / 8;
    for (size_t i = 0; i < full; ++i) {
        uint64_t m = loadLe64(msg.data() + 8 * i);
        v3 ^= m;
        sipRound(v0, v1, v2, v3);
        sipRound(v0, v1, v2, v3);
        v0 ^= m;
    }

    uint64_t last = uint64_t(msg.size() & 0xff) << 56;
    size_t rem = msg.size() % 8;
    for (size_t i = 0; i < rem; ++i)
        last |= uint64_t(msg[8 * full + i]) << (8 * i);
    v3 ^= last;
    sipRound(v0, v1, v2, v3);
    sipRound(v0, v1, v2, v3);
    v0 ^= last;

    v2 ^= 0xff;
    sipRound(v0, v1, v2, v3);
    sipRound(v0, v1, v2, v3);
    sipRound(v0, v1, v2, v3);
    sipRound(v0, v1, v2, v3);

    return v0 ^ v1 ^ v2 ^ v3;
}

Bytes
sipHash24Bytes(ByteView key, ByteView msg)
{
    Bytes out(kSipHashTagSize);
    storeLe64(out.data(), sipHash24(key, msg));
    return out;
}

bool
sipHash24Verify(ByteView key, ByteView msg, ByteView tag)
{
    Bytes expect = sipHash24Bytes(key, msg);
    return ctEqual(expect, tag);
}

} // namespace salus::crypto
