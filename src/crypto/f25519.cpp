#include "crypto/f25519.hpp"

#include <cstring>

namespace salus::crypto {

namespace {

using u128 = unsigned __int128;

constexpr uint64_t kMask51 = (uint64_t(1) << 51) - 1;

/** Reduces limbs below 2^52 after additions/multiplications. */
void
carry(Fe &f)
{
    for (int i = 0; i < 4; ++i) {
        f.v[i + 1] += f.v[i] >> 51;
        f.v[i] &= kMask51;
    }
    uint64_t c = f.v[4] >> 51;
    f.v[4] &= kMask51;
    f.v[0] += 19 * c;
    // One more ripple in case f.v[0] overflowed 51 bits.
    f.v[1] += f.v[0] >> 51;
    f.v[0] &= kMask51;
}

} // namespace

Fe
feZero()
{
    return Fe{};
}

Fe
feOne()
{
    Fe f;
    f.v[0] = 1;
    return f;
}

Fe
feFromBytes(const uint8_t b[32])
{
    Fe f;
    f.v[0] = loadLe64(b) & kMask51;
    f.v[1] = (loadLe64(b + 6) >> 3) & kMask51;
    f.v[2] = (loadLe64(b + 12) >> 6) & kMask51;
    f.v[3] = (loadLe64(b + 19) >> 1) & kMask51;
    f.v[4] = (loadLe64(b + 24) >> 12) & kMask51;
    return f;
}

void
feToBytes(uint8_t out[32], const Fe &f)
{
    Fe t = f;
    carry(t);
    carry(t);

    // Canonicalize: add 19, then if the result overflows 2^255 the
    // original was >= p; keep the reduced value.
    uint64_t l0 = t.v[0] + 19;
    uint64_t l1 = t.v[1] + (l0 >> 51);
    l0 &= kMask51;
    uint64_t l2 = t.v[2] + (l1 >> 51);
    l1 &= kMask51;
    uint64_t l3 = t.v[3] + (l2 >> 51);
    l2 &= kMask51;
    uint64_t l4 = t.v[4] + (l3 >> 51);
    l3 &= kMask51;
    uint64_t ge = l4 >> 51; // 1 iff t >= p
    l4 &= kMask51;

    uint64_t mask = 0 - ge;
    t.v[0] = (t.v[0] & ~mask) | (l0 & mask);
    t.v[1] = (t.v[1] & ~mask) | (l1 & mask);
    t.v[2] = (t.v[2] & ~mask) | (l2 & mask);
    t.v[3] = (t.v[3] & ~mask) | (l3 & mask);
    t.v[4] = (t.v[4] & ~mask) | (l4 & mask);

    // Pack 5 x 51 bits into 32 bytes.
    uint64_t q0 = t.v[0] | (t.v[1] << 51);
    uint64_t q1 = (t.v[1] >> 13) | (t.v[2] << 38);
    uint64_t q2 = (t.v[2] >> 26) | (t.v[3] << 25);
    uint64_t q3 = (t.v[3] >> 39) | (t.v[4] << 12);
    storeLe64(out, q0);
    storeLe64(out + 8, q1);
    storeLe64(out + 16, q2);
    storeLe64(out + 24, q3);
}

Fe
feAdd(const Fe &a, const Fe &b)
{
    Fe r;
    for (int i = 0; i < 5; ++i)
        r.v[i] = a.v[i] + b.v[i];
    carry(r);
    return r;
}

Fe
feSub(const Fe &a, const Fe &b)
{
    // a + 2p - b keeps limbs positive.
    Fe r;
    r.v[0] = a.v[0] + 0xfffffffffffdaULL - b.v[0];
    r.v[1] = a.v[1] + 0xffffffffffffeULL - b.v[1];
    r.v[2] = a.v[2] + 0xffffffffffffeULL - b.v[2];
    r.v[3] = a.v[3] + 0xffffffffffffeULL - b.v[3];
    r.v[4] = a.v[4] + 0xffffffffffffeULL - b.v[4];
    carry(r);
    return r;
}

Fe
feNeg(const Fe &a)
{
    return feSub(feZero(), a);
}

Fe
feMul(const Fe &a, const Fe &b)
{
    const uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                   a4 = a.v[4];
    const uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3],
                   b4 = b.v[4];
    const uint64_t b1x19 = 19 * b1, b2x19 = 19 * b2, b3x19 = 19 * b3,
                   b4x19 = 19 * b4;

    u128 r0 = u128(a0) * b0 + u128(a1) * b4x19 + u128(a2) * b3x19 +
              u128(a3) * b2x19 + u128(a4) * b1x19;
    u128 r1 = u128(a0) * b1 + u128(a1) * b0 + u128(a2) * b4x19 +
              u128(a3) * b3x19 + u128(a4) * b2x19;
    u128 r2 = u128(a0) * b2 + u128(a1) * b1 + u128(a2) * b0 +
              u128(a3) * b4x19 + u128(a4) * b3x19;
    u128 r3 = u128(a0) * b3 + u128(a1) * b2 + u128(a2) * b1 +
              u128(a3) * b0 + u128(a4) * b4x19;
    u128 r4 = u128(a0) * b4 + u128(a1) * b3 + u128(a2) * b2 +
              u128(a3) * b1 + u128(a4) * b0;

    Fe out;
    uint64_t c;
    c = uint64_t(r0 >> 51);
    out.v[0] = uint64_t(r0) & kMask51;
    r1 += c;
    c = uint64_t(r1 >> 51);
    out.v[1] = uint64_t(r1) & kMask51;
    r2 += c;
    c = uint64_t(r2 >> 51);
    out.v[2] = uint64_t(r2) & kMask51;
    r3 += c;
    c = uint64_t(r3 >> 51);
    out.v[3] = uint64_t(r3) & kMask51;
    r4 += c;
    c = uint64_t(r4 >> 51);
    out.v[4] = uint64_t(r4) & kMask51;
    out.v[0] += 19 * c;
    out.v[1] += out.v[0] >> 51;
    out.v[0] &= kMask51;
    return out;
}

Fe
feSquare(const Fe &a)
{
    return feMul(a, a);
}

Fe
feMulSmall(const Fe &a, uint64_t s)
{
    Fe r;
    u128 c = 0;
    for (int i = 0; i < 5; ++i) {
        u128 t = u128(a.v[i]) * s + c;
        r.v[i] = uint64_t(t) & kMask51;
        c = t >> 51;
    }
    r.v[0] += 19 * uint64_t(c);
    carry(r);
    return r;
}

Fe
fePow(const Fe &a, const uint8_t exponent[32])
{
    Fe result = feOne();
    bool started = false;
    for (int i = 255; i >= 0; --i) {
        if (started)
            result = feSquare(result);
        if ((exponent[i / 8] >> (i % 8)) & 1) {
            result = feMul(result, a);
            started = true;
        }
    }
    return result;
}

Fe
feInvert(const Fe &a)
{
    // p - 2 = 2^255 - 21
    static const uint8_t exp[32] = {
        0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
    };
    return fePow(a, exp);
}

Fe
fePow2523(const Fe &a)
{
    // (p - 5) / 8 = 2^252 - 3
    static const uint8_t exp[32] = {
        0xfd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f,
    };
    return fePow(a, exp);
}

bool
feIsZero(const Fe &a)
{
    uint8_t b[32];
    feToBytes(b, a);
    uint8_t acc = 0;
    for (int i = 0; i < 32; ++i)
        acc |= b[i];
    return acc == 0;
}

bool
feIsNegative(const Fe &a)
{
    uint8_t b[32];
    feToBytes(b, a);
    return (b[0] & 1) != 0;
}

bool
feEqual(const Fe &a, const Fe &b)
{
    uint8_t ba[32], bb[32];
    feToBytes(ba, a);
    feToBytes(bb, b);
    uint8_t acc = 0;
    for (int i = 0; i < 32; ++i)
        acc |= uint8_t(ba[i] ^ bb[i]);
    return acc == 0;
}

void
feCswap(Fe &a, Fe &b, uint64_t bit)
{
    uint64_t mask = 0 - bit;
    for (int i = 0; i < 5; ++i) {
        uint64_t t = mask & (a.v[i] ^ b.v[i]);
        a.v[i] ^= t;
        b.v[i] ^= t;
    }
}

} // namespace salus::crypto
