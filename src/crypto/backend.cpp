#include "crypto/backend.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define SALUS_CRYPTO_X86 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace salus::crypto {

namespace {

#ifdef SALUS_CRYPTO_X86

/** XCR0 via xgetbv — the OS must have enabled YMM state for any
 *  256-bit (VAES) path to be usable. */
uint64_t
readXcr0()
{
    uint32_t eax, edx;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (uint64_t(edx) << 32) | eax;
}

BackendInfo
probe()
{
    BackendInfo info;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return info;
    bool sse41 = (ecx & bit_SSE4_1) != 0;
    bool ssse3 = (ecx & bit_SSSE3) != 0;
    info.aesni = (ecx & bit_AES) != 0;
    info.pclmul = (ecx & bit_PCLMUL) != 0;
    bool osxsave = (ecx & bit_OSXSAVE) != 0;
    bool avxCpu = (ecx & bit_AVX) != 0;

    unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
    if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) {
        info.shani = (ebx7 & bit_SHA) != 0 && ssse3 && sse41;
        bool avx2 = (ebx7 & bit_AVX2) != 0;
        bool vaes = (ecx7 & bit_VAES) != 0;
        // YMM registers only survive context switches when the OS
        // opted in (XCR0 bits 1|2); otherwise 256-bit paths are off.
        bool ymmOs = osxsave && (readXcr0() & 0x6) == 0x6;
        info.vaes = vaes && avx2 && avxCpu && ymmOs && info.aesni;
    }
    return info;
}

#else

BackendInfo
probe()
{
    return BackendInfo{};
}

#endif // SALUS_CRYPTO_X86

bool
envForceScalar()
{
    const char *v = std::getenv("SALUS_FORCE_SCALAR");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/** Env is read once; the API override then owns the switch. */
bool &
forceScalarFlag()
{
    static bool flag = envForceScalar();
    return flag;
}

} // namespace

const BackendInfo &
backendInfo()
{
    static const BackendInfo info = probe();
    return info;
}

bool
forceScalar()
{
    return forceScalarFlag();
}

void
setForceScalar(bool on)
{
    forceScalarFlag() = on;
}

bool
aesBackendActive()
{
    return backendInfo().aesni && !forceScalar();
}

bool
ghashBackendActive()
{
    return backendInfo().pclmul && !forceScalar();
}

bool
sha256BackendActive()
{
    return backendInfo().shani && !forceScalar();
}

std::string
backendSummary()
{
    const BackendInfo &info = backendInfo();
    if (forceScalar())
        return "scalar (forced by SALUS_FORCE_SCALAR)";
    std::string ext;
    auto add = [&](bool have, const char *name) {
        if (!have)
            return;
        if (!ext.empty())
            ext += "+";
        ext += name;
    };
    add(info.aesni, "aesni");
    add(info.vaes, "vaes");
    add(info.pclmul, "pclmul");
    add(info.shani, "shani");
    if (ext.empty())
        return "scalar (no ISA extensions detected)";
    return "hardware (" + ext + ")";
}

} // namespace salus::crypto
