/**
 * @file
 * HMAC (RFC 2104) over SHA-256 and SHA-512, plus HKDF (RFC 5869).
 *
 * HMAC-SHA256 authenticates RPC payloads and attestation transcripts;
 * HKDF derives session keys from X25519 shared secrets.
 */

#ifndef SALUS_CRYPTO_HMAC_HPP
#define SALUS_CRYPTO_HMAC_HPP

#include "common/bytes.hpp"

namespace salus::crypto {

/** One-shot HMAC-SHA256; returns a 32-byte tag. */
Bytes hmacSha256(ByteView key, ByteView msg);

/** One-shot HMAC-SHA512; returns a 64-byte tag. */
Bytes hmacSha512(ByteView key, ByteView msg);

/** HKDF-Extract with SHA-256; returns the 32-byte PRK. */
Bytes hkdfExtract(ByteView salt, ByteView ikm);

/**
 * HKDF-Expand with SHA-256.
 * @param prk pseudorandom key from hkdfExtract.
 * @param info context string.
 * @param length output length, at most 255 * 32.
 */
Bytes hkdfExpand(ByteView prk, ByteView info, size_t length);

/** Extract-then-expand convenience. */
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, size_t length);

} // namespace salus::crypto

#endif // SALUS_CRYPTO_HMAC_HPP
