/**
 * @file
 * SHA-256 (FIPS 180-4). Used for enclave measurement (MRENCLAVE),
 * bitstream digests, HKDF, and quote report data.
 */

#ifndef SALUS_CRYPTO_SHA256_HPP
#define SALUS_CRYPTO_SHA256_HPP

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace salus::crypto {

/** Digest length of SHA-256 in bytes. */
constexpr size_t kSha256DigestSize = 32;

/** Streaming SHA-256 context. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Resets to the initial state. */
    void reset();

    /** Absorbs more message bytes. */
    void update(ByteView data);

    /** Finalizes and returns the 32-byte digest; context then reset. */
    Bytes finish();

    /** One-shot convenience. */
    static Bytes digest(ByteView data);

  private:
    void compress(const uint8_t block[64]);
    void compressMany(const uint8_t *blocks, size_t n);

    std::array<uint32_t, 8> state_;
    uint8_t buf_[64];
    size_t bufLen_;
    uint64_t total_;
};

} // namespace salus::crypto

#endif // SALUS_CRYPTO_SHA256_HPP
