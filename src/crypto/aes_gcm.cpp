#include "crypto/aes_gcm.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "common/errors.hpp"
#include "crypto/backend.hpp"
#include "crypto/backend_x86.hpp"
#include "crypto/ct.hpp"

namespace salus::crypto {

namespace {

/**
 * Shoup 4-bit table GHASH key schedule. All tables are derived from H
 * at construction: hh/hl[v] = v-interpreted-nibble * H, red4[r] = the
 * reduction polynomial contribution of 4 bits shifted out of the low
 * end (computed by simulating four single-bit reductions, no magic
 * constants).
 */
struct GhashTables
{
    uint64_t hh[16], hl[16], red4[16];

    GhashTables(uint64_t h0, uint64_t h1)
    {
        for (uint64_t r = 0; r < 16; ++r) {
            uint64_t zh = 0, zl = r;
            for (int b = 0; b < 4; ++b) {
                uint64_t lsb = zl & 1;
                zl = (zl >> 1) | (zh << 63);
                zh >>= 1;
                if (lsb)
                    zh ^= 0xe100000000000000ULL;
            }
            red4[r] = zh;
        }

        hh[8] = h0;
        hl[8] = h1;
        for (int i = 4; i > 0; i >>= 1) {
            uint64_t th = hh[i << 1], tl = hl[i << 1];
            uint64_t lsb = tl & 1;
            tl = (tl >> 1) | (th << 63);
            th >>= 1;
            if (lsb)
                th ^= 0xe100000000000000ULL;
            hh[i] = th;
            hl[i] = tl;
        }
        hh[0] = 0;
        hl[0] = 0;
        for (int i = 2; i < 16; i <<= 1) {
            for (int j = 1; j < i; ++j) {
                hh[i + j] = hh[i] ^ hh[j];
                hl[i + j] = hl[i] ^ hl[j];
            }
        }
    }

    /** (zh, zl) = X * H where X is the 16-byte block. */
    void
    mult(uint64_t &zh, uint64_t &zl, const uint8_t x[16]) const
    {
        uint8_t lo = x[15] & 0xf;
        uint8_t hi = x[15] >> 4;
        zh = hh[lo];
        zl = hl[lo];

        auto fold = [&](uint8_t nibble) {
            uint64_t rem = zl & 0xf;
            zl = (zl >> 4) | (zh << 60);
            zh = (zh >> 4) ^ red4[rem];
            zh ^= hh[nibble];
            zl ^= hl[nibble];
        };
        fold(hi);
        for (int i = 14; i >= 0; --i) {
            fold(x[i] & 0xf);
            fold(x[i] >> 4);
        }
    }
};

void
inc32(uint8_t ctr[16])
{
    uint32_t v = loadBe32(ctr + 12);
    storeBe32(ctr + 12, v + 1);
}

} // namespace

/** Streaming GHASH accumulator. With PCLMULQDQ active the blocks go
 *  through the carry-less-multiply backend and the Shoup tables are
 *  never built; the scalar tables are constructed lazily on the first
 *  scalar multiply (they cost more than hashing a short message). */
struct AesGcm::Ghash
{
    uint64_t h0, h1;
    std::optional<GhashTables> tables;
    uint64_t yh = 0, yl = 0;

    Ghash(uint64_t h0In, uint64_t h1In) : h0(h0In), h1(h1In) {}

    /** Absorbs n consecutive 16-byte blocks. */
    void
    blocks(const uint8_t *data, size_t n)
    {
#ifdef SALUS_CRYPTO_HAVE_X86_BACKEND
        if (ghashBackendActive()) {
            x86::pclmulGhashBlocks(yh, yl, data, n, h0, h1);
            return;
        }
#endif
        if (!tables)
            tables.emplace(h0, h1);
        for (size_t i = 0; i < n; ++i, data += 16) {
            uint8_t x[16];
            storeBe64(x, yh ^ loadBe64(data));
            storeBe64(x + 8, yl ^ loadBe64(data + 8));
            tables->mult(yh, yl, x);
        }
    }

    void
    block(const uint8_t b[16])
    {
        blocks(b, 1);
    }

    /** Absorbs data padded with zeros to a block boundary. */
    void
    absorbPadded(ByteView data)
    {
        size_t full = data.size() / 16;
        if (full)
            blocks(data.data(), full);
        size_t rem = data.size() % 16;
        if (rem) {
            uint8_t last[16] = {};
            std::memcpy(last, data.data() + 16 * full, rem);
            block(last);
        }
    }

    void
    lengths(uint64_t aadBytes, uint64_t textBytes)
    {
        uint8_t lenBlock[16];
        storeBe64(lenBlock, aadBytes * 8);
        storeBe64(lenBlock + 8, textBytes * 8);
        block(lenBlock);
    }

    void
    digest(uint8_t out[16]) const
    {
        storeBe64(out, yh);
        storeBe64(out + 8, yl);
    }
};

AesGcm::AesGcm(ByteView key) : aes_(key)
{
    uint8_t zero[16] = {};
    uint8_t h[16];
    aes_.encryptBlock(zero, h);
    h_[0] = loadBe64(h);
    h_[1] = loadBe64(h + 8);
    secureZero(h, 16);
}

void
AesGcm::deriveCounter0(ByteView iv, uint8_t j0[16]) const
{
    if (iv.size() == 12) {
        std::memcpy(j0, iv.data(), 12);
        storeBe32(j0 + 12, 1);
    } else {
        Ghash g(h_[0], h_[1]);
        g.absorbPadded(iv);
        g.lengths(0, iv.size());
        g.digest(j0);
    }
}

void
AesGcm::ctrCrypt(const uint8_t j0[16], ByteView in, Bytes &out) const
{
    // Counter blocks are generated in batches and encrypted through
    // the pipelined multi-block entry; the 32-bit wrapping inc32
    // semantics of GCM are preserved by incrementing per block.
    constexpr size_t kBatch = 32;
    uint8_t ctr[16];
    std::memcpy(ctr, j0, 16);
    out.resize(in.size());
    size_t off = 0;
    uint8_t counters[kBatch * 16];
    uint8_t ks[kBatch * 16];
    while (off < in.size()) {
        size_t blocks = std::min(
            kBatch, (in.size() - off + size_t(15)) / 16);
        for (size_t b = 0; b < blocks; ++b) {
            inc32(ctr);
            std::memcpy(counters + 16 * b, ctr, 16);
        }
        aes_.encryptBlocks(counters, ks, blocks);
        size_t n = std::min(blocks * 16, in.size() - off);
        size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            uint64_t d, k;
            std::memcpy(&d, in.data() + off + i, 8);
            std::memcpy(&k, ks + i, 8);
            d ^= k;
            std::memcpy(out.data() + off + i, &d, 8);
        }
        for (; i < n; ++i)
            out[off + i] = uint8_t(in[off + i] ^ ks[i]);
        off += n;
    }
    secureZero(ks, sizeof(ks));
}

void
AesGcm::ctrCryptRaw(const uint8_t j0[16], ByteView in, Bytes &out) const
{
    ctrCrypt(j0, in, out);
}

GcmSealed
AesGcm::seal(ByteView iv, ByteView aad, ByteView plaintext) const
{
    if (iv.empty())
        throw CryptoError("GCM IV must not be empty");

    uint8_t j0[16];
    deriveCounter0(iv, j0);

    GcmSealed out;
    ctrCrypt(j0, plaintext, out.ciphertext);

    Ghash g(h_[0], h_[1]);
    g.absorbPadded(aad);
    g.absorbPadded(out.ciphertext);
    g.lengths(aad.size(), out.ciphertext.size());
    uint8_t s[16];
    g.digest(s);

    uint8_t ekj0[16];
    aes_.encryptBlock(j0, ekj0);
    out.tag.resize(kGcmTagSize);
    for (int i = 0; i < 16; ++i)
        out.tag[i] = uint8_t(s[i] ^ ekj0[i]);
    return out;
}

std::optional<Bytes>
AesGcm::open(ByteView iv, ByteView aad, ByteView ciphertext,
             ByteView tag) const
{
    if (iv.empty())
        throw CryptoError("GCM IV must not be empty");
    if (tag.size() != kGcmTagSize)
        return std::nullopt;

    uint8_t j0[16];
    deriveCounter0(iv, j0);

    Ghash g(h_[0], h_[1]);
    g.absorbPadded(aad);
    g.absorbPadded(ciphertext);
    g.lengths(aad.size(), ciphertext.size());
    uint8_t s[16];
    g.digest(s);

    uint8_t ekj0[16];
    aes_.encryptBlock(j0, ekj0);
    uint8_t expect[16];
    for (int i = 0; i < 16; ++i)
        expect[i] = uint8_t(s[i] ^ ekj0[i]);

    if (!ctEqual(ByteView(expect, 16), tag))
        return std::nullopt;

    Bytes plain;
    ctrCrypt(j0, ciphertext, plain);
    return plain;
}

} // namespace salus::crypto
