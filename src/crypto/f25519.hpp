/**
 * @file
 * Arithmetic in GF(2^255 - 19) with 5 x 51-bit limbs.
 *
 * Shared by X25519 (enclave-to-enclave key exchange) and Ed25519
 * (quote and certificate signatures).
 */

#ifndef SALUS_CRYPTO_F25519_HPP
#define SALUS_CRYPTO_F25519_HPP

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace salus::crypto {

/** Field element; limbs kept below ~2^52 between operations. */
struct Fe
{
    std::array<uint64_t, 5> v{};
};

/** Returns the field element 0. */
Fe feZero();

/** Returns the field element 1. */
Fe feOne();

/** Loads 32 little-endian bytes (top bit ignored, per convention). */
Fe feFromBytes(const uint8_t b[32]);

/** Stores the canonical 32-byte little-endian encoding. */
void feToBytes(uint8_t out[32], const Fe &f);

Fe feAdd(const Fe &a, const Fe &b);
Fe feSub(const Fe &a, const Fe &b);
Fe feMul(const Fe &a, const Fe &b);
Fe feSquare(const Fe &a);

/** Multiplies by a small scalar (< 2^32). */
Fe feMulSmall(const Fe &a, uint64_t s);

/** Negation mod p. */
Fe feNeg(const Fe &a);

/** Raises a to the given little-endian 256-bit exponent. */
Fe fePow(const Fe &a, const uint8_t exponent[32]);

/** Multiplicative inverse (a^(p-2)); feInvert(0) == 0. */
Fe feInvert(const Fe &a);

/** a^((p-5)/8), used in square-root extraction. */
Fe fePow2523(const Fe &a);

/** True iff a == 0 mod p. */
bool feIsZero(const Fe &a);

/** True iff the canonical encoding's least-significant bit is 1. */
bool feIsNegative(const Fe &a);

/** True iff a == b mod p. */
bool feEqual(const Fe &a, const Fe &b);

/** Constant-time conditional swap (swap iff bit == 1). */
void feCswap(Fe &a, Fe &b, uint64_t bit);

} // namespace salus::crypto

#endif // SALUS_CRYPTO_F25519_HPP
