/**
 * @file
 * AES block cipher (FIPS 197), key sizes 128/192/256.
 *
 * This is the primitive underneath every mode in the repo: CTR (memory
 * and register-channel encryption), GCM (bitstream encryption, data
 * upload), and CMAC (SGX-style local-attestation report MACs).
 */

#ifndef SALUS_CRYPTO_AES_HPP
#define SALUS_CRYPTO_AES_HPP

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace salus::crypto {

/** AES block size in bytes. */
constexpr size_t kAesBlockSize = 16;

/**
 * Expanded-key AES context. Construct once per key, then encrypt or
 * decrypt any number of 16-byte blocks.
 */
class Aes
{
  public:
    /**
     * Expands the key schedule.
     * @param key 16, 24 or 32 bytes.
     * @throws CryptoError on any other key length.
     */
    explicit Aes(ByteView key);

    ~Aes();
    Aes(const Aes &) = delete;
    Aes &operator=(const Aes &) = delete;

    /** Encrypts one 16-byte block (in and out may alias). */
    void encryptBlock(const uint8_t in[16], uint8_t out[16]) const;

    /** Decrypts one 16-byte block (in and out may alias). */
    void decryptBlock(const uint8_t in[16], uint8_t out[16]) const;

    /** Number of rounds (10/12/14). */
    int rounds() const { return rounds_; }

  private:
    /** Round keys as 4-byte words, 4*(rounds+1) entries. */
    std::array<uint32_t, 60> roundKeys_{};
    int rounds_;
};

} // namespace salus::crypto

#endif // SALUS_CRYPTO_AES_HPP
