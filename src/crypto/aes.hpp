/**
 * @file
 * AES block cipher (FIPS 197), key sizes 128/192/256.
 *
 * This is the primitive underneath every mode in the repo: CTR (memory
 * and register-channel encryption), GCM (bitstream encryption, data
 * upload), and CMAC (SGX-style local-attestation report MACs).
 */

#ifndef SALUS_CRYPTO_AES_HPP
#define SALUS_CRYPTO_AES_HPP

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace salus::crypto {

/** AES block size in bytes. */
constexpr size_t kAesBlockSize = 16;

/**
 * Expanded-key AES context. Construct once per key, then encrypt or
 * decrypt any number of 16-byte blocks.
 */
class Aes
{
  public:
    /**
     * Expands the key schedule.
     * @param key 16, 24 or 32 bytes.
     * @throws CryptoError on any other key length.
     */
    explicit Aes(ByteView key);

    ~Aes();
    Aes(const Aes &) = delete;
    Aes &operator=(const Aes &) = delete;

    /** Encrypts one 16-byte block (in and out may alias). */
    void encryptBlock(const uint8_t in[16], uint8_t out[16]) const;

    /**
     * Encrypts n independent 16-byte blocks (ECB; in and out may
     * alias). This is the batched-dispatch entry every mode's hot
     * path funnels through: with AES-NI/VAES active the blocks are
     * pipelined 8/16-wide, otherwise they run through the scalar
     * block function one by one.
     */
    void encryptBlocks(const uint8_t *in, uint8_t *out, size_t n) const;

    /** Decrypts one 16-byte block (in and out may alias). */
    void decryptBlock(const uint8_t in[16], uint8_t out[16]) const;

    /** Number of rounds (10/12/14). */
    int rounds() const { return rounds_; }

  private:
    void encryptBlockScalar(const uint8_t in[16],
                            uint8_t out[16]) const;

    /** Round keys as 4-byte words, 4*(rounds+1) entries. */
    std::array<uint32_t, 60> roundKeys_{};
    /** The same schedule serialized as bytes (FIPS-197 order) — the
     *  form the AES-NI round instructions consume directly. Expanded
     *  once at construction, cached for the object's lifetime. */
    std::array<uint8_t, 240> roundKeyBytes_{};
    int rounds_;
};

} // namespace salus::crypto

#endif // SALUS_CRYPTO_AES_HPP
