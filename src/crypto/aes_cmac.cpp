#include "crypto/aes_cmac.hpp"

#include <cstring>

#include "crypto/ct.hpp"

namespace salus::crypto {

namespace {

/** Doubles a 128-bit value in GF(2^128) with the CMAC polynomial. */
void
dbl(uint8_t b[16])
{
    uint8_t carry = b[0] >> 7;
    for (int i = 0; i < 15; ++i)
        b[i] = uint8_t((b[i] << 1) | (b[i + 1] >> 7));
    b[15] = uint8_t(b[15] << 1);
    if (carry)
        b[15] ^= 0x87;
}

} // namespace

Bytes
aesCmac(ByteView key, ByteView msg)
{
    Aes aes(key);

    uint8_t l[16] = {};
    aes.encryptBlock(l, l);
    uint8_t k1[16], k2[16];
    std::memcpy(k1, l, 16);
    dbl(k1);
    std::memcpy(k2, k1, 16);
    dbl(k2);

    size_t n = (msg.size() + 15) / 16;
    bool complete = (n != 0) && (msg.size() % 16 == 0);
    if (n == 0)
        n = 1;

    uint8_t last[16];
    if (complete) {
        std::memcpy(last, msg.data() + 16 * (n - 1), 16);
        for (int i = 0; i < 16; ++i)
            last[i] ^= k1[i];
    } else {
        size_t rem = msg.size() - 16 * (n - 1);
        std::memset(last, 0, 16);
        if (rem)
            std::memcpy(last, msg.data() + 16 * (n - 1), rem);
        last[rem] = 0x80;
        for (int i = 0; i < 16; ++i)
            last[i] ^= k2[i];
    }

    uint8_t x[16] = {};
    for (size_t i = 0; i + 1 < n; ++i) {
        for (int j = 0; j < 16; ++j)
            x[j] ^= msg[16 * i + j];
        aes.encryptBlock(x, x);
    }
    for (int j = 0; j < 16; ++j)
        x[j] ^= last[j];
    aes.encryptBlock(x, x);

    Bytes out(x, x + 16);
    secureZero(k1, 16);
    secureZero(k2, 16);
    secureZero(l, 16);
    return out;
}

bool
aesCmacVerify(ByteView key, ByteView msg, ByteView tag)
{
    Bytes expect = aesCmac(key, msg);
    return ctEqual(expect, tag);
}

} // namespace salus::crypto
