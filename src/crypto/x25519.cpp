#include "crypto/x25519.hpp"

#include <cstring>

#include "common/errors.hpp"
#include "crypto/f25519.hpp"
#include "crypto/hmac.hpp"

namespace salus::crypto {

void
x25519(uint8_t out[32], const uint8_t scalar[32], const uint8_t point[32])
{
    uint8_t e[32];
    std::memcpy(e, scalar, 32);
    e[0] &= 248;
    e[31] &= 127;
    e[31] |= 64;

    Fe x1 = feFromBytes(point);
    Fe x2 = feOne(), z2 = feZero();
    Fe x3 = x1, z3 = feOne();

    uint64_t swap = 0;
    for (int t = 254; t >= 0; --t) {
        uint64_t bit = (e[t / 8] >> (t % 8)) & 1;
        swap ^= bit;
        feCswap(x2, x3, swap);
        feCswap(z2, z3, swap);
        swap = bit;

        Fe a = feAdd(x2, z2);
        Fe aa = feSquare(a);
        Fe b = feSub(x2, z2);
        Fe bb = feSquare(b);
        Fe e1 = feSub(aa, bb);
        Fe c = feAdd(x3, z3);
        Fe d = feSub(x3, z3);
        Fe da = feMul(d, a);
        Fe cb = feMul(c, b);
        Fe t0 = feAdd(da, cb);
        x3 = feSquare(t0);
        Fe t1 = feSub(da, cb);
        z3 = feMul(x1, feSquare(t1));
        x2 = feMul(aa, bb);
        z2 = feMul(e1, feAdd(aa, feMulSmall(e1, 121665)));
    }
    feCswap(x2, x3, swap);
    feCswap(z2, z3, swap);

    Fe result = feMul(x2, feInvert(z2));
    feToBytes(out, result);
    secureZero(e, sizeof(e));
}

X25519KeyPair
x25519Generate(RandomSource &rng)
{
    static const uint8_t basePoint[32] = {9};

    X25519KeyPair kp;
    kp.privateKey = rng.bytes(kX25519KeySize);
    kp.privateKey[0] &= 248;
    kp.privateKey[31] &= 127;
    kp.privateKey[31] |= 64;
    kp.publicKey.resize(kX25519KeySize);
    x25519(kp.publicKey.data(), kp.privateKey.data(), basePoint);
    return kp;
}

Bytes
x25519Shared(ByteView privateKey, ByteView peerPublic)
{
    if (privateKey.size() != kX25519KeySize ||
        peerPublic.size() != kX25519KeySize) {
        throw CryptoError("X25519 keys must be 32 bytes");
    }
    Bytes out(kX25519KeySize);
    x25519(out.data(), privateKey.data(), peerPublic.data());

    uint8_t acc = 0;
    for (uint8_t b : out)
        acc |= b;
    if (acc == 0)
        throw CryptoError("X25519: low-order peer public key");
    return out;
}

Bytes
deriveSessionKey(ByteView privateKey, ByteView peerPublic,
                 const std::string &context, size_t keyLen)
{
    Bytes shared = x25519Shared(privateKey, peerPublic);
    Bytes info = bytesFromString(context);
    Bytes key = hkdf(ByteView(), shared, info, keyLen);
    secureZero(shared);
    return key;
}

} // namespace salus::crypto
