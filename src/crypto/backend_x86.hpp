/**
 * @file
 * Raw x86-64 hardware crypto kernels (internal to src/crypto).
 *
 * Callers must gate every call on the matching backend predicate in
 * crypto/backend.hpp — these functions execute AES-NI / VAES /
 * PCLMULQDQ / SHA-NI instructions unconditionally and fault on CPUs
 * without them. They are compiled with per-function target
 * attributes, so the rest of the translation unit (and every other
 * file) stays baseline-ISA clean.
 *
 * All kernels are bit-identical to the scalar reference paths; the
 * differential fuzz entries and the forced-scalar CI run enforce it.
 */

#ifndef SALUS_CRYPTO_BACKEND_X86_HPP
#define SALUS_CRYPTO_BACKEND_X86_HPP

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#define SALUS_CRYPTO_HAVE_X86_BACKEND 1

namespace salus::crypto::x86 {

/**
 * AES-NI ECB encryption of n independent 16-byte blocks (in and out
 * may alias). roundKeyBytes holds the FIPS-197 round keys serialized
 * as bytes, 16 * (rounds + 1) of them; rounds is 10/12/14. Blocks are
 * pipelined 8-wide (the aesenc units on every AES-NI core overlap
 * independent blocks), with a VAES+AVX2 16-wide path when useVaes.
 */
void aesniEcbEncrypt(const uint8_t *roundKeyBytes, int rounds,
                     const uint8_t *in, uint8_t *out, size_t n,
                     bool useVaes);

/**
 * GHASH: absorbs n 16-byte blocks into the accumulator (yh, yl) under
 * hash key (h0, h1), all in the scalar code's representation (the
 * big-endian-loaded halves of the field elements). PCLMULQDQ
 * multiply + reflected reduction per block.
 */
void pclmulGhashBlocks(uint64_t &yh, uint64_t &yl, const uint8_t *data,
                       size_t n, uint64_t h0, uint64_t h1);

/**
 * SHA-256: compresses n consecutive 64-byte blocks into state
 * (the eight working variables a..h, natural order). SHA-NI.
 */
void shaniSha256Compress(uint32_t state[8], const uint8_t *data,
                         size_t n);

} // namespace salus::crypto::x86

#endif // x86-64

#endif // SALUS_CRYPTO_BACKEND_X86_HPP
