#include "crypto/aes.hpp"

#include "common/errors.hpp"
#include "crypto/backend.hpp"
#include "crypto/backend_x86.hpp"

namespace salus::crypto {

namespace {

const uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

struct InvSbox
{
    uint8_t tbl[256];

    InvSbox()
    {
        for (int i = 0; i < 256; ++i)
            tbl[kSbox[i]] = uint8_t(i);
    }
};

const InvSbox kInvSbox;

/**
 * Encryption T-tables (generated from the S-box at startup, nothing
 * hardcoded): Te0[x] = (2*S[x], S[x], S[x], 3*S[x]) packed big-endian;
 * the other three tables are byte rotations of Te0.
 */
struct EncTables
{
    uint32_t te0[256], te1[256], te2[256], te3[256];

    EncTables()
    {
        for (int i = 0; i < 256; ++i) {
            uint8_t s = kSbox[i];
            uint8_t s2 = uint8_t((s << 1) ^ ((s >> 7) * 0x1b));
            uint8_t s3 = uint8_t(s2 ^ s);
            uint32_t w = (uint32_t(s2) << 24) | (uint32_t(s) << 16) |
                         (uint32_t(s) << 8) | s3;
            te0[i] = w;
            te1[i] = (w >> 8) | (w << 24);
            te2[i] = (w >> 16) | (w << 16);
            te3[i] = (w >> 24) | (w << 8);
        }
    }
};

const EncTables kTe;

inline uint8_t
xtime(uint8_t x)
{
    return uint8_t((x << 1) ^ ((x >> 7) * 0x1b));
}

/** GF(2^8) multiply, only used with small constants. */
inline uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

inline uint32_t
subWord(uint32_t w)
{
    return (uint32_t(kSbox[(w >> 24) & 0xff]) << 24) |
           (uint32_t(kSbox[(w >> 16) & 0xff]) << 16) |
           (uint32_t(kSbox[(w >> 8) & 0xff]) << 8) |
           uint32_t(kSbox[w & 0xff]);
}

inline uint32_t
rotWord(uint32_t w)
{
    return (w << 8) | (w >> 24);
}

} // namespace

Aes::Aes(ByteView key)
{
    int nk;
    switch (key.size()) {
      case 16: nk = 4; rounds_ = 10; break;
      case 24: nk = 6; rounds_ = 12; break;
      case 32: nk = 8; rounds_ = 14; break;
      default:
        throw CryptoError("AES key must be 16/24/32 bytes");
    }

    const int nw = 4 * (rounds_ + 1);
    for (int i = 0; i < nk; ++i)
        roundKeys_[i] = loadBe32(key.data() + 4 * i);

    uint32_t rcon = 0x01000000;
    for (int i = nk; i < nw; ++i) {
        uint32_t temp = roundKeys_[i - 1];
        if (i % nk == 0) {
            temp = subWord(rotWord(temp)) ^ rcon;
            rcon = uint32_t(xtime(uint8_t(rcon >> 24))) << 24;
        } else if (nk > 6 && i % nk == 4) {
            temp = subWord(temp);
        }
        roundKeys_[i] = roundKeys_[i - nk] ^ temp;
    }

    // Cache the byte form once per key; the hardware backend loads
    // round keys straight from it on every encrypt call.
    for (int i = 0; i < nw; ++i)
        storeBe32(roundKeyBytes_.data() + 4 * i, roundKeys_[i]);
}

Aes::~Aes()
{
    secureZero(reinterpret_cast<uint8_t *>(roundKeys_.data()),
               roundKeys_.size() * sizeof(uint32_t));
    secureZero(roundKeyBytes_.data(), roundKeyBytes_.size());
}

namespace {

inline void
addRoundKey(uint8_t s[16], const uint32_t *rk)
{
    for (int c = 0; c < 4; ++c) {
        uint32_t w = rk[c];
        s[4 * c + 0] ^= uint8_t(w >> 24);
        s[4 * c + 1] ^= uint8_t(w >> 16);
        s[4 * c + 2] ^= uint8_t(w >> 8);
        s[4 * c + 3] ^= uint8_t(w);
    }
}

inline void
invShiftRows(uint8_t s[16])
{
    uint8_t t[16];
    for (int c = 0; c < 4; ++c)
        for (int r = 0; r < 4; ++r)
            t[4 * ((c + r) & 3) + r] = s[4 * c + r];
    std::memcpy(s, t, 16);
}

inline void
invMixColumns(uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        uint8_t *col = s + 4 * c;
        uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = uint8_t(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                         gmul(a3, 9));
        col[1] = uint8_t(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                         gmul(a3, 13));
        col[2] = uint8_t(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                         gmul(a3, 11));
        col[3] = uint8_t(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                         gmul(a3, 14));
    }
}

} // namespace

void
Aes::encryptBlock(const uint8_t in[16], uint8_t out[16]) const
{
#ifdef SALUS_CRYPTO_HAVE_X86_BACKEND
    if (aesBackendActive()) {
        x86::aesniEcbEncrypt(roundKeyBytes_.data(), rounds_, in, out,
                             1, false);
        return;
    }
#endif
    encryptBlockScalar(in, out);
}

void
Aes::encryptBlocks(const uint8_t *in, uint8_t *out, size_t n) const
{
#ifdef SALUS_CRYPTO_HAVE_X86_BACKEND
    if (aesBackendActive()) {
        x86::aesniEcbEncrypt(roundKeyBytes_.data(), rounds_, in, out,
                             n, backendInfo().vaes);
        return;
    }
#endif
    for (size_t i = 0; i < n; ++i)
        encryptBlockScalar(in + 16 * i, out + 16 * i);
}

void
Aes::encryptBlockScalar(const uint8_t in[16], uint8_t out[16]) const
{
    const uint32_t *rk = roundKeys_.data();
    uint32_t s0 = loadBe32(in) ^ rk[0];
    uint32_t s1 = loadBe32(in + 4) ^ rk[1];
    uint32_t s2 = loadBe32(in + 8) ^ rk[2];
    uint32_t s3 = loadBe32(in + 12) ^ rk[3];

    // T-table rounds with ShiftRows folded into the byte selection.
    for (int round = 1; round < rounds_; ++round) {
        rk += 4;
        uint32_t t0 = kTe.te0[s0 >> 24] ^ kTe.te1[(s1 >> 16) & 0xff] ^
                      kTe.te2[(s2 >> 8) & 0xff] ^ kTe.te3[s3 & 0xff] ^
                      rk[0];
        uint32_t t1 = kTe.te0[s1 >> 24] ^ kTe.te1[(s2 >> 16) & 0xff] ^
                      kTe.te2[(s3 >> 8) & 0xff] ^ kTe.te3[s0 & 0xff] ^
                      rk[1];
        uint32_t t2 = kTe.te0[s2 >> 24] ^ kTe.te1[(s3 >> 16) & 0xff] ^
                      kTe.te2[(s0 >> 8) & 0xff] ^ kTe.te3[s1 & 0xff] ^
                      rk[2];
        uint32_t t3 = kTe.te0[s3 >> 24] ^ kTe.te1[(s0 >> 16) & 0xff] ^
                      kTe.te2[(s1 >> 8) & 0xff] ^ kTe.te3[s2 & 0xff] ^
                      rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    rk += 4;
    uint32_t o0 = (uint32_t(kSbox[s0 >> 24]) << 24) |
                  (uint32_t(kSbox[(s1 >> 16) & 0xff]) << 16) |
                  (uint32_t(kSbox[(s2 >> 8) & 0xff]) << 8) |
                  kSbox[s3 & 0xff];
    uint32_t o1 = (uint32_t(kSbox[s1 >> 24]) << 24) |
                  (uint32_t(kSbox[(s2 >> 16) & 0xff]) << 16) |
                  (uint32_t(kSbox[(s3 >> 8) & 0xff]) << 8) |
                  kSbox[s0 & 0xff];
    uint32_t o2 = (uint32_t(kSbox[s2 >> 24]) << 24) |
                  (uint32_t(kSbox[(s3 >> 16) & 0xff]) << 16) |
                  (uint32_t(kSbox[(s0 >> 8) & 0xff]) << 8) |
                  kSbox[s1 & 0xff];
    uint32_t o3 = (uint32_t(kSbox[s3 >> 24]) << 24) |
                  (uint32_t(kSbox[(s0 >> 16) & 0xff]) << 16) |
                  (uint32_t(kSbox[(s1 >> 8) & 0xff]) << 8) |
                  kSbox[s2 & 0xff];
    storeBe32(out, o0 ^ rk[0]);
    storeBe32(out + 4, o1 ^ rk[1]);
    storeBe32(out + 8, o2 ^ rk[2]);
    storeBe32(out + 12, o3 ^ rk[3]);
}

void
Aes::decryptBlock(const uint8_t in[16], uint8_t out[16]) const
{
    uint8_t s[16];
    std::memcpy(s, in, 16);

    addRoundKey(s, roundKeys_.data() + 4 * rounds_);
    for (int round = rounds_ - 1; round >= 1; --round) {
        invShiftRows(s);
        for (auto &b : s)
            b = kInvSbox.tbl[b];
        addRoundKey(s, roundKeys_.data() + 4 * round);
        invMixColumns(s);
    }
    invShiftRows(s);
    for (auto &b : s)
        b = kInvSbox.tbl[b];
    addRoundKey(s, roundKeys_.data());

    std::memcpy(out, s, 16);
}

} // namespace salus::crypto
