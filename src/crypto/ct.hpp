/**
 * @file
 * Constant-time comparison helpers. Every MAC/tag/digest comparison in
 * protocol code must go through these, never operator==.
 */

#ifndef SALUS_CRYPTO_CT_HPP
#define SALUS_CRYPTO_CT_HPP

#include "common/bytes.hpp"

namespace salus::crypto {

/**
 * Compares two buffers in time independent of where they differ.
 * @return true iff both have the same length and contents.
 */
bool ctEqual(ByteView a, ByteView b);

} // namespace salus::crypto

#endif // SALUS_CRYPTO_CT_HPP
