#include "crypto/random.hpp"

#include <cstring>
#include <random>

#include "crypto/aes.hpp"
#include "crypto/sha512.hpp"

namespace salus::crypto {

Bytes
RandomSource::bytes(size_t n)
{
    Bytes out(n);
    if (n)
        fill(out.data(), n);
    return out;
}

uint64_t
RandomSource::nextU64()
{
    uint8_t tmp[8];
    fill(tmp, 8);
    return loadLe64(tmp);
}

uint64_t
RandomSource::below(uint64_t bound)
{
    if (bound == 0)
        return 0;
    return nextU64() % bound;
}

namespace {

void
incrementBe128(uint8_t v[16])
{
    for (int i = 15; i >= 0; --i) {
        if (++v[i] != 0)
            break;
    }
}

} // namespace

CtrDrbg::CtrDrbg(ByteView seed)
{
    std::memset(key_, 0, sizeof(key_));
    std::memset(v_, 0, sizeof(v_));
    reseed(seed);
}

CtrDrbg::CtrDrbg(uint64_t seed)
{
    std::memset(key_, 0, sizeof(key_));
    std::memset(v_, 0, sizeof(v_));
    uint8_t s[8];
    storeLe64(s, seed);
    reseed(ByteView(s, 8));
}

CtrDrbg::~CtrDrbg()
{
    secureZero(key_, sizeof(key_));
    secureZero(v_, sizeof(v_));
}

void
CtrDrbg::update(ByteView providedData)
{
    // Generate 48 bytes of keystream, XOR in provided data, and use
    // the result as the new (key, V) pair -- the SP 800-90A update.
    uint8_t temp[48];
    Aes aes(ByteView(key_, 32));
    for (int i = 0; i < 3; ++i) {
        incrementBe128(v_);
        aes.encryptBlock(v_, temp + 16 * i);
    }
    for (size_t i = 0; i < providedData.size() && i < 48; ++i)
        temp[i] ^= providedData[i];
    std::memcpy(key_, temp, 32);
    std::memcpy(v_, temp + 32, 16);
    secureZero(temp, sizeof(temp));
}

void
CtrDrbg::reseed(ByteView seed)
{
    // Condition arbitrary-length seed material through SHA-512 and use
    // the first 48 bytes as the derived seed.
    Bytes digest = Sha512::digest(seed);
    update(ByteView(digest.data(), 48));
    secureZero(digest);
}

void
CtrDrbg::fill(uint8_t *out, size_t len)
{
    Aes aes(ByteView(key_, 32));
    size_t off = 0;
    uint8_t block[16];
    while (off < len) {
        incrementBe128(v_);
        aes.encryptBlock(v_, block);
        size_t n = std::min(size_t(16), len - off);
        std::memcpy(out + off, block, n);
        off += n;
    }
    secureZero(block, sizeof(block));
    update(ByteView());
}

void
SystemRandom::fill(uint8_t *out, size_t len)
{
    static thread_local std::random_device rd;
    size_t off = 0;
    while (off < len) {
        uint32_t v = rd();
        size_t n = std::min(sizeof(v), len - off);
        std::memcpy(out + off, &v, n);
        off += n;
    }
}

} // namespace salus::crypto
