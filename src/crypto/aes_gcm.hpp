/**
 * @file
 * AES-GCM authenticated encryption (NIST SP 800-38D).
 *
 * This is the bitstream cipher: the SM enclave encrypts the manipulated
 * CL bitstream with AES-GCM-256 under Key_device (§5.2, xapp1267), and
 * the FPGA's internal decrypt engine opens it. It also protects bulk
 * data uploads from the data owner to the user enclave.
 */

#ifndef SALUS_CRYPTO_AES_GCM_HPP
#define SALUS_CRYPTO_AES_GCM_HPP

#include <optional>

#include "crypto/aes.hpp"

namespace salus::crypto {

/** GCM authentication tag length in bytes. */
constexpr size_t kGcmTagSize = 16;

/** Result of sealing: ciphertext plus authentication tag. */
struct GcmSealed
{
    Bytes ciphertext;
    Bytes tag; ///< 16 bytes.
};

/**
 * Authenticated encryption context for one key. Each seal/open call is
 * independent; the caller supplies a unique IV per seal.
 */
class AesGcm
{
  public:
    /** @param key AES key, 16/24/32 bytes. */
    explicit AesGcm(ByteView key);

    /**
     * Encrypts and authenticates.
     * @param iv nonce; 12 bytes is the fast path, other sizes hashed.
     * @param aad additional authenticated (but not encrypted) data.
     */
    GcmSealed seal(ByteView iv, ByteView aad, ByteView plaintext) const;

    /**
     * Verifies and decrypts.
     * @return plaintext, or std::nullopt when the tag does not verify
     *         (the normal "attacker tampered" outcome, not an error).
     */
    std::optional<Bytes> open(ByteView iv, ByteView aad,
                              ByteView ciphertext, ByteView tag) const;

    /**
     * White-box seam for counter-wrap KATs: runs the GCM CTR core
     * against an explicit pre-increment counter block J0 (the keystream
     * starts at inc32(J0)), which lets tests pin the 32-bit counter
     * word right below its 2^32 wrap — unreachable through seal(),
     * where J0 is derived from the IV.
     */
    void ctrCryptRaw(const uint8_t j0[16], ByteView in,
                     Bytes &out) const;

  private:
    struct Ghash;
    void deriveCounter0(ByteView iv, uint8_t j0[16]) const;
    void ctrCrypt(const uint8_t j0[16], ByteView in, Bytes &out) const;

    Aes aes_;
    uint64_t h_[2]; ///< GHASH key H = E_K(0), big-endian halves.
};

} // namespace salus::crypto

#endif // SALUS_CRYPTO_AES_GCM_HPP
