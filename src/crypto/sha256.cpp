#include "crypto/sha256.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/backend.hpp"
#include "crypto/backend_x86.hpp"

namespace salus::crypto {

namespace {

const uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t
rotr(uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

} // namespace

void
Sha256::reset()
{
    state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
              0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    bufLen_ = 0;
    total_ = 0;
}

void
Sha256::compress(const uint8_t block[64])
{
    uint32_t w[64];
    for (int i = 0; i < 16; ++i)
        w[i] = loadBe32(block + 4 * i);
    for (int i = 16; i < 64; ++i) {
        uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                      (w[i - 15] >> 3);
        uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                      (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

    for (int i = 0; i < 64; ++i) {
        uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t t1 = h + s1 + ch + kK[i] + w[i];
        uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

/** Runs n consecutive 64-byte blocks through the dispatch-selected
 *  compression function in one call. */
void
Sha256::compressMany(const uint8_t *blocks, size_t n)
{
#ifdef SALUS_CRYPTO_HAVE_X86_BACKEND
    if (sha256BackendActive()) {
        x86::shaniSha256Compress(state_.data(), blocks, n);
        return;
    }
#endif
    for (size_t i = 0; i < n; ++i)
        compress(blocks + 64 * i);
}

void
Sha256::update(ByteView data)
{
    if (data.empty())
        return;
    total_ += data.size();
    size_t off = 0;
    if (bufLen_ > 0) {
        size_t take = std::min(data.size(), size_t(64) - bufLen_);
        std::memcpy(buf_ + bufLen_, data.data(), take);
        bufLen_ += take;
        off = take;
        if (bufLen_ == 64) {
            compressMany(buf_, 1);
            bufLen_ = 0;
        }
    }
    size_t full = (data.size() - off) / 64;
    if (full > 0) {
        compressMany(data.data() + off, full);
        off += full * 64;
    }
    if (off < data.size()) {
        std::memcpy(buf_ + bufLen_, data.data() + off, data.size() - off);
        bufLen_ += data.size() - off;
    }
}

Bytes
Sha256::finish()
{
    uint64_t bitLen = total_ * 8;
    uint8_t pad[72] = {0x80};
    size_t padLen = (bufLen_ < 56) ? (56 - bufLen_) : (120 - bufLen_);
    update(ByteView(pad, padLen));
    uint8_t lenBytes[8];
    storeBe64(lenBytes, bitLen);
    update(ByteView(lenBytes, 8));

    Bytes out(kSha256DigestSize);
    for (int i = 0; i < 8; ++i)
        storeBe32(out.data() + 4 * i, state_[i]);
    reset();
    return out;
}

Bytes
Sha256::digest(ByteView data)
{
    Sha256 h;
    h.update(data);
    return h.finish();
}

} // namespace salus::crypto
