/**
 * @file
 * Runtime-dispatched hardware crypto backends.
 *
 * Every primitive in src/crypto keeps its portable scalar
 * implementation as the always-compiled, KAT-checked reference; on
 * x86-64 hosts with the matching ISA extensions the hot paths
 * dispatch to hardware kernels instead:
 *
 *   AES (ECB block / CTR keystream / GCM CTR)  -> AES-NI, VAES+AVX2
 *   GHASH (GCM authentication)                 -> PCLMULQDQ
 *   SHA-256 compression                        -> SHA-NI (+SSSE3/SSE4.1)
 *
 * Selection happens once per process from CPUID, and can be
 * overridden down to the scalar path with the SALUS_FORCE_SCALAR
 * environment variable (any value but "0") or the setForceScalar()
 * API (tests and the differential fuzzers flip it per call). The
 * scalar and hardware backends are bit-identical by contract; CI
 * enforces it with differential fuzz entries and a forced-scalar run
 * of the full test suite.
 */

#ifndef SALUS_CRYPTO_BACKEND_HPP
#define SALUS_CRYPTO_BACKEND_HPP

#include <string>

namespace salus::crypto {

/** ISA extensions detected at startup (independent of overrides). */
struct BackendInfo
{
    bool aesni = false;  ///< AES-NI (implies SSE2 on x86-64)
    bool vaes = false;   ///< VAES + AVX2, OS-enabled (XCR0 checks out)
    bool pclmul = false; ///< PCLMULQDQ
    bool shani = false;  ///< SHA extensions + SSSE3 + SSE4.1
};

/** Cached CPUID probe; all-false off x86-64. */
const BackendInfo &backendInfo();

/** True when the scalar fallback is forced (env or API override). */
bool forceScalar();

/**
 * API override: true pins every primitive to the scalar path, false
 * restores CPUID dispatch (the SALUS_FORCE_SCALAR environment value
 * only seeds the initial state). Takes effect on the next call into
 * any primitive — cached key schedules stay valid across flips.
 */
void setForceScalar(bool on);

/** Dispatch decisions actually taken by the primitives. */
bool aesBackendActive();
bool ghashBackendActive();
bool sha256BackendActive();

/**
 * One-line human-readable summary for test/bench preambles, e.g.
 * "hardware (aesni+vaes+pclmul+shani)" or "scalar (forced by
 * SALUS_FORCE_SCALAR)".
 */
std::string backendSummary();

} // namespace salus::crypto

#endif // SALUS_CRYPTO_BACKEND_HPP
