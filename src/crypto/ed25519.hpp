/**
 * @file
 * Ed25519 signatures (RFC 8032).
 *
 * Signs the DCAP-style attestation quotes issued by the simulated TEE
 * platform and the certificate chain of the ShEF baseline. The
 * manufacturer's verification service checks these signatures.
 */

#ifndef SALUS_CRYPTO_ED25519_HPP
#define SALUS_CRYPTO_ED25519_HPP

#include "common/bytes.hpp"
#include "crypto/random.hpp"

namespace salus::crypto {

/** Ed25519 seed/public-key size in bytes. */
constexpr size_t kEd25519KeySize = 32;

/** Ed25519 signature size in bytes. */
constexpr size_t kEd25519SigSize = 64;

/** An Ed25519 key pair (seed kept, expanded on use). */
struct Ed25519KeyPair
{
    Bytes seed;      ///< 32-byte private seed.
    Bytes publicKey; ///< 32-byte compressed public point.
};

/** Derives the public key from a 32-byte seed. */
Bytes ed25519PublicKey(ByteView seed);

/** Generates a fresh key pair. */
Ed25519KeyPair ed25519Generate(RandomSource &rng);

/** Signs msg; returns the 64-byte signature (R || S). */
Bytes ed25519Sign(ByteView seed, ByteView msg);

/** Verifies a signature; false on any malformed input. */
bool ed25519Verify(ByteView publicKey, ByteView msg, ByteView signature);

} // namespace salus::crypto

#endif // SALUS_CRYPTO_ED25519_HPP
