/**
 * @file
 * AES-CTR streaming cipher (NIST SP 800-38A).
 *
 * This is the paper's memory-traffic cipher: the CL accelerators add an
 * AES-CTR engine at the memory interface (§6.4), and the SM secure
 * register channel encrypts payloads with it (§4.5).
 *
 * Keystream is generated in batches of up to eight blocks per refill
 * (sized to the demand, so one-block register ops never over-generate)
 * and XORed over the data word-wise; with the AES-NI/VAES backend
 * active the batch is a single pipelined multi-block encrypt.
 */

#ifndef SALUS_CRYPTO_AES_CTR_HPP
#define SALUS_CRYPTO_AES_CTR_HPP

#include <optional>

#include "crypto/aes.hpp"

namespace salus::crypto {

/**
 * Streaming CTR context. The 16-byte counter block increments as a
 * 128-bit big-endian integer per encrypted block. Encryption and
 * decryption are the same operation.
 */
class AesCtr
{
  public:
    /** Keystream blocks generated per refill (matches the RegBatch
     *  stride and the DMA double-buffer refill granularity). */
    static constexpr size_t kBatchBlocks = 8;

    /**
     * @param key AES key, 16/24/32 bytes.
     * @param counterBlock initial 16-byte counter block.
     */
    AesCtr(ByteView key, ByteView counterBlock);

    /**
     * Borrows a caller-owned expanded key schedule instead of
     * expanding the key again — the per-session fast path of the
     * register and DMA channels. @p aes must outlive this object.
     */
    AesCtr(const Aes &aes, ByteView counterBlock);

    ~AesCtr();

    /** XORs the keystream over data in place. */
    void crypt(uint8_t *data, size_t len);

    /** Convenience: returns the transformed copy. */
    Bytes crypt(ByteView data);

    /** Skips keystream so independent offsets can be addressed. */
    void seekBlock(uint64_t blockIndex);

  private:
    void init(ByteView counterBlock);
    void refill(size_t wantBytes);

    std::optional<Aes> owned_;
    const Aes *aes_;
    uint8_t counter0_[16];
    uint8_t counter_[16];
    uint8_t keystream_[kBatchBlocks * kAesBlockSize];
    size_t used_;
    size_t avail_;
};

/** One-shot CTR transform. */
Bytes aesCtrCrypt(ByteView key, ByteView counterBlock, ByteView data);

} // namespace salus::crypto

#endif // SALUS_CRYPTO_AES_CTR_HPP
