#include "crypto/aes_ctr.hpp"

#include <cstring>

#include "common/errors.hpp"

namespace salus::crypto {

namespace {

void
incrementBe128(uint8_t ctr[16])
{
    for (int i = 15; i >= 0; --i) {
        if (++ctr[i] != 0)
            break;
    }
}

void
addBe128(uint8_t ctr[16], uint64_t delta)
{
    // Add delta to the low 64 bits, propagate carry into the high half.
    uint64_t low = loadBe64(ctr + 8);
    uint64_t sum = low + delta;
    storeBe64(ctr + 8, sum);
    if (sum < low) {
        uint64_t high = loadBe64(ctr);
        storeBe64(ctr, high + 1);
    }
}

} // namespace

AesCtr::AesCtr(ByteView key, ByteView counterBlock)
    : aes_(key), used_(kAesBlockSize)
{
    if (counterBlock.size() != kAesBlockSize)
        throw CryptoError("AES-CTR counter block must be 16 bytes");
    std::memcpy(counter0_, counterBlock.data(), kAesBlockSize);
    std::memcpy(counter_, counterBlock.data(), kAesBlockSize);
}

void
AesCtr::refill()
{
    aes_.encryptBlock(counter_, keystream_);
    incrementBe128(counter_);
    used_ = 0;
}

void
AesCtr::crypt(uint8_t *data, size_t len)
{
    for (size_t i = 0; i < len; ++i) {
        if (used_ == kAesBlockSize)
            refill();
        data[i] ^= keystream_[used_++];
    }
}

Bytes
AesCtr::crypt(ByteView data)
{
    Bytes out(data.begin(), data.end());
    crypt(out.data(), out.size());
    return out;
}

void
AesCtr::seekBlock(uint64_t blockIndex)
{
    std::memcpy(counter_, counter0_, kAesBlockSize);
    addBe128(counter_, blockIndex);
    used_ = kAesBlockSize;
}

Bytes
aesCtrCrypt(ByteView key, ByteView counterBlock, ByteView data)
{
    AesCtr ctr(key, counterBlock);
    return ctr.crypt(data);
}

} // namespace salus::crypto
