#include "crypto/aes_ctr.hpp"

#include <algorithm>
#include <cstring>

#include "common/errors.hpp"

namespace salus::crypto {

namespace {

void
incrementBe128(uint8_t ctr[16])
{
    for (int i = 15; i >= 0; --i) {
        if (++ctr[i] != 0)
            break;
    }
}

void
addBe128(uint8_t ctr[16], uint64_t delta)
{
    // Add delta to the low 64 bits, propagate carry into the high half.
    uint64_t low = loadBe64(ctr + 8);
    uint64_t sum = low + delta;
    storeBe64(ctr + 8, sum);
    if (sum < low) {
        uint64_t high = loadBe64(ctr);
        storeBe64(ctr, high + 1);
    }
}

} // namespace

AesCtr::AesCtr(ByteView key, ByteView counterBlock)
{
    owned_.emplace(key);
    aes_ = &*owned_;
    init(counterBlock);
}

AesCtr::AesCtr(const Aes &aes, ByteView counterBlock) : aes_(&aes)
{
    init(counterBlock);
}

AesCtr::~AesCtr()
{
    secureZero(keystream_, sizeof(keystream_));
}

void
AesCtr::init(ByteView counterBlock)
{
    if (counterBlock.size() != kAesBlockSize)
        throw CryptoError("AES-CTR counter block must be 16 bytes");
    std::memcpy(counter0_, counterBlock.data(), kAesBlockSize);
    std::memcpy(counter_, counterBlock.data(), kAesBlockSize);
    used_ = 0;
    avail_ = 0;
}

void
AesCtr::refill(size_t wantBytes)
{
    // Generate only as many blocks as the caller still needs (capped
    // at the batch): single-op register messages stay one encrypt,
    // bulk payloads get the full pipelined batch.
    size_t blocks = std::min(
        kBatchBlocks,
        (wantBytes + kAesBlockSize - 1) / kAesBlockSize);
    if (blocks == 0)
        blocks = 1;
    uint8_t counters[kBatchBlocks * kAesBlockSize];
    for (size_t i = 0; i < blocks; ++i) {
        std::memcpy(counters + i * kAesBlockSize, counter_,
                    kAesBlockSize);
        incrementBe128(counter_);
    }
    aes_->encryptBlocks(counters, keystream_, blocks);
    used_ = 0;
    avail_ = blocks * kAesBlockSize;
}

void
AesCtr::crypt(uint8_t *data, size_t len)
{
    size_t i = 0;
    while (i < len) {
        if (used_ == avail_)
            refill(len - i);
        size_t chunk = std::min(avail_ - used_, len - i);
        // Byte-granular head until the keystream cursor is 8-aligned
        // (only ever non-empty after a partial-block previous call).
        while ((used_ & 7) != 0 && chunk > 0) {
            data[i++] ^= keystream_[used_++];
            --chunk;
        }
        // Word-wise body: whole 64-bit lanes of keystream at a time.
        while (chunk >= 8) {
            uint64_t d, k;
            std::memcpy(&d, data + i, 8);
            std::memcpy(&k, keystream_ + used_, 8);
            d ^= k;
            std::memcpy(data + i, &d, 8);
            i += 8;
            used_ += 8;
            chunk -= 8;
        }
        // Byte-granular tail.
        while (chunk > 0) {
            data[i++] ^= keystream_[used_++];
            --chunk;
        }
    }
}

Bytes
AesCtr::crypt(ByteView data)
{
    Bytes out(data.begin(), data.end());
    crypt(out.data(), out.size());
    return out;
}

void
AesCtr::seekBlock(uint64_t blockIndex)
{
    std::memcpy(counter_, counter0_, kAesBlockSize);
    addBe128(counter_, blockIndex);
    used_ = 0;
    avail_ = 0;
}

Bytes
aesCtrCrypt(ByteView key, ByteView counterBlock, ByteView data)
{
    AesCtr ctr(key, counterBlock);
    return ctr.crypt(data);
}

} // namespace salus::crypto
