/**
 * @file
 * SGX-FPGA-style baseline (Xia et al., DAC'21) as characterized by the
 * paper (§1 Challenge 3, §3.2, §4.4.1): a heterogeneous CPU-FPGA TEE
 * whose RoT is a PUF challenge-response-pair (CRP) database, and whose
 * multi-stage attestation hands the client a report that covers only
 * the user enclave — the CL attestation completes *after* the report
 * is issued.
 *
 * Two properties of this scheme are reproduced and demonstrated by
 * tests/benches:
 *   1. dev/deploy coupling: the CRP database must be enrolled on the
 *      *specific* physical device the tenant will later rent;
 *   2. the attestation gap: a timeline where report issuance precedes
 *      CL attestation (Salus's cascaded attestation exists to close
 *      exactly this gap).
 */

#ifndef SALUS_BASELINE_SGX_FPGA_HPP
#define SALUS_BASELINE_SGX_FPGA_HPP

#include <map>

#include "crypto/random.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"

namespace salus::baseline {

/** A physically unclonable function bound to one device die. */
class PufDevice
{
  public:
    /** @param dieEntropy the device's unclonable physical state. */
    explicit PufDevice(uint64_t dieEntropy) : dieEntropy_(dieEntropy) {}

    /** Evaluates the PUF: response = f(die, challenge). */
    uint64_t respond(uint64_t challenge) const;

    uint64_t dieEntropy() const { return dieEntropy_; }

  private:
    uint64_t dieEntropy_;
};

/** The developer-enrolled challenge/response database. */
class CrpDatabase
{
  public:
    /**
     * Enrollment pass — requires physical access to THE device the
     * deployment will use (the Table 1 dev/deploy coupling).
     */
    void enroll(const PufDevice &device, size_t numPairs,
                crypto::RandomSource &rng);

    /** Number of unused pairs left (each authenticates once). */
    size_t remaining() const { return pairs_.size(); }

    /**
     * One authentication round: pops a pair, queries the device,
     * compares. Returns false on mismatch (wrong/cloned device).
     */
    bool authenticate(const PufDevice &device);

  private:
    std::map<uint64_t, uint64_t> pairs_;
};

/** Timeline of the multi-stage attestation (for the gap analysis). */
struct SgxFpgaTimeline
{
    sim::Nanos reportIssuedAt = 0; ///< client receives the RA report
    sim::Nanos clAttestedAt = 0;   ///< FPGA-side attestation completes
    bool clAuthentic = false;

    /** The window in which the client trusts an unattested platform. */
    sim::Nanos gap() const
    {
        return clAttestedAt > reportIssuedAt
                   ? clAttestedAt - reportIssuedAt
                   : 0;
    }
};

/**
 * Runs the SGX-FPGA-style multi-stage flow on a virtual clock:
 * user-enclave RA report first, CL (PUF) attestation afterwards.
 */
SgxFpgaTimeline runSgxFpgaFlow(CrpDatabase &db, const PufDevice &device,
                               sim::VirtualClock &clock,
                               const sim::CostModel &cost);

} // namespace salus::baseline

#endif // SALUS_BASELINE_SGX_FPGA_HPP
