#include "baseline/sgx_fpga.hpp"

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"

namespace salus::baseline {

uint64_t
PufDevice::respond(uint64_t challenge) const
{
    // An ideal (noise-free) strong PUF: a keyed PRF over the die
    // entropy. Real PUFs add noise + fuzzy extraction; irrelevant to
    // the protocol properties reproduced here.
    uint8_t key[32] = {};
    storeLe64(key, dieEntropy_);
    uint8_t msg[8];
    storeLe64(msg, challenge);
    Bytes mac = crypto::hmacSha256(ByteView(key, 32), ByteView(msg, 8));
    return loadLe64(mac.data());
}

void
CrpDatabase::enroll(const PufDevice &device, size_t numPairs,
                    crypto::RandomSource &rng)
{
    while (pairs_.size() < numPairs) {
        uint64_t challenge = rng.nextU64();
        pairs_[challenge] = device.respond(challenge);
    }
}

bool
CrpDatabase::authenticate(const PufDevice &device)
{
    if (pairs_.empty())
        return false;
    auto it = pairs_.begin();
    uint64_t challenge = it->first;
    uint64_t expected = it->second;
    pairs_.erase(it); // CRPs are single-use
    return device.respond(challenge) == expected;
}

SgxFpgaTimeline
runSgxFpgaFlow(CrpDatabase &db, const PufDevice &device,
               sim::VirtualClock &clock, const sim::CostModel &cost)
{
    SgxFpgaTimeline t;

    // Stage 1: user enclave remote attestation; the client receives
    // this report and, per the protocol, starts trusting the platform.
    clock.spend("SGX-FPGA: user enclave RA",
                cost.remoteAttestation(sim::LinkKind::Wan));
    t.reportIssuedAt = clock.now();

    // Stage 2: host enclave attests the SM-equivalent enclave.
    clock.spend("SGX-FPGA: enclave-to-enclave",
                cost.localAttestation());

    // Stage 3: FPGA PUF challenge-response over PCIe, only now.
    clock.spend("SGX-FPGA: PUF attestation",
                4 * cost.pcieRtt + 2 * cost.smLogicMac);
    t.clAuthentic = db.authenticate(device);
    t.clAttestedAt = clock.now();

    return t;
}

} // namespace salus::baseline
