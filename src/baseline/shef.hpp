/**
 * @file
 * ShEF-style baseline (Zhao et al., ASPLOS'22) as characterized by the
 * paper (§1 Challenge 2, §3.2, Table 1): a *standalone* FPGA TEE that
 * needs extra secure hardware — an embedded security kernel whose
 * BootROM holds a manufacturing-injected device keypair — and attests
 * the CL with public-key remote attestation through a certificate
 * authority (the CL developer).
 *
 * Reproduced here so Table 1 and the §6.3 boot-time comparison run
 * against real code: the device measures the bitstream on its slow
 * embedded core, signs with the BootROM key, and the verifier walks
 * the certificate chain over the WAN.
 */

#ifndef SALUS_BASELINE_SHEF_HPP
#define SALUS_BASELINE_SHEF_HPP

#include "crypto/ed25519.hpp"
#include "crypto/sha256.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"

namespace salus::baseline {

/** Certificate binding a device attestation key to the manufacturer. */
struct ShefDeviceCert
{
    std::string deviceId;
    Bytes devicePublicKey;
    Bytes signature; ///< by the manufacturer root

    Bytes signedPortion() const;
};

/** Signed measurement of a loaded CL. */
struct ShefAttestation
{
    Bytes measurement; ///< SHA-256 of the bitstream
    Bytes nonce;
    Bytes signature;   ///< by the device key
    ShefDeviceCert cert;

    Bytes signedPortion() const;
};

/** The FPGA with ShEF's extra security-kernel hardware. */
class ShefDevice
{
  public:
    ShefDevice(std::string deviceId, ByteView manufacturerRootSeed,
               crypto::RandomSource &rng);

    const ShefDeviceCert &cert() const { return cert_; }

    /**
     * Loads a CL and produces the signed measurement. Charges the
     * embedded core's hash + signature time to the clock.
     */
    ShefAttestation loadAndAttest(ByteView bitstream, ByteView nonce,
                                  sim::VirtualClock *clock,
                                  const sim::CostModel &cost);

  private:
    std::string deviceId_;
    crypto::Ed25519KeyPair deviceKey_; ///< BootROM-injected
    ShefDeviceCert cert_;
};

/** The CL developer acting as certificate authority (paper §1). */
class ShefVerifier
{
  public:
    ShefVerifier(Bytes manufacturerRootPub, Bytes expectedMeasurement);

    /**
     * Remote attestation check: cert chain + signature + measurement
     * + nonce. Charges WAN CA round trips to the clock.
     */
    bool verify(const ShefAttestation &att, ByteView nonce,
                sim::VirtualClock *clock,
                const sim::CostModel &cost) const;

  private:
    Bytes rootPub_;
    Bytes expectedMeasurement_;
};

/** Manufacturer root key derivation shared by device and verifier. */
crypto::Ed25519KeyPair shefManufacturerRoot(ByteView seed);

} // namespace salus::baseline

#endif // SALUS_BASELINE_SHEF_HPP
