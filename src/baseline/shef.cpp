#include "baseline/shef.hpp"

#include "common/serde.hpp"
#include "crypto/hmac.hpp"

namespace salus::baseline {

crypto::Ed25519KeyPair
shefManufacturerRoot(ByteView seed)
{
    Bytes material = crypto::hmacSha256(seed, ByteView());
    crypto::Ed25519KeyPair kp;
    kp.seed = material;
    kp.publicKey = crypto::ed25519PublicKey(kp.seed);
    return kp;
}

Bytes
ShefDeviceCert::signedPortion() const
{
    BinaryWriter w;
    w.writeString(deviceId);
    w.writeBytes(devicePublicKey);
    return w.take();
}

Bytes
ShefAttestation::signedPortion() const
{
    BinaryWriter w;
    w.writeBytes(measurement);
    w.writeBytes(nonce);
    return w.take();
}

ShefDevice::ShefDevice(std::string deviceId, ByteView manufacturerRootSeed,
                       crypto::RandomSource &rng)
    : deviceId_(std::move(deviceId)),
      deviceKey_(crypto::ed25519Generate(rng))
{
    crypto::Ed25519KeyPair root =
        shefManufacturerRoot(manufacturerRootSeed);
    cert_.deviceId = deviceId_;
    cert_.devicePublicKey = deviceKey_.publicKey;
    cert_.signature =
        crypto::ed25519Sign(root.seed, cert_.signedPortion());
}

ShefAttestation
ShefDevice::loadAndAttest(ByteView bitstream, ByteView nonce,
                          sim::VirtualClock *clock,
                          const sim::CostModel &cost)
{
    if (clock) {
        // Hash of the full bitstream on the embedded security kernel,
        // then one signature operation -- the dominant boot costs.
        clock->spend("ShEF: CL measurement",
                     sim::transferTime(cost.shefMeasureBytesPerSec,
                                       bitstream.size()));
        clock->spend("ShEF: signature", cost.shefSignatureOp);
    }

    ShefAttestation att;
    att.measurement = crypto::Sha256::digest(bitstream);
    att.nonce = Bytes(nonce.begin(), nonce.end());
    att.signature =
        crypto::ed25519Sign(deviceKey_.seed, att.signedPortion());
    att.cert = cert_;
    return att;
}

ShefVerifier::ShefVerifier(Bytes manufacturerRootPub,
                           Bytes expectedMeasurement)
    : rootPub_(std::move(manufacturerRootPub)),
      expectedMeasurement_(std::move(expectedMeasurement))
{
}

bool
ShefVerifier::verify(const ShefAttestation &att, ByteView nonce,
                     sim::VirtualClock *clock,
                     const sim::CostModel &cost) const
{
    if (clock) {
        // CA chain fetches + the verification round trip, over WAN.
        clock->spend("ShEF: CA round trips",
                     sim::Nanos(cost.shefCaRoundTrips) *
                             cost.rpc(sim::LinkKind::Wan, 1024, 8192) +
                         cost.rpc(sim::LinkKind::Wan, 256, 4096));
        clock->spend("ShEF: signature verification",
                     cost.shefSignatureOp);
    }

    if (!crypto::ed25519Verify(rootPub_, att.cert.signedPortion(),
                               att.cert.signature)) {
        return false;
    }
    if (!crypto::ed25519Verify(att.cert.devicePublicKey,
                               att.signedPortion(), att.signature)) {
        return false;
    }
    if (att.measurement != expectedMeasurement_)
        return false;
    if (att.nonce != Bytes(nonce.begin(), nonce.end()))
        return false;
    return true;
}

} // namespace salus::baseline
