/**
 * @file
 * Per-device health state machine for the fleet supervisor: a
 * sliding-window failure-rate circuit breaker with probation-based
 * reinstatement.
 *
 *   HEALTHY ──rate ≥ degrade──▶ DEGRADED ──rate ≥ quarantine──▶ QUARANTINED
 *      ▲                           │                                 │
 *      │◀───rate < degrade─────────┘                        cool-down elapses
 *      │                                                             ▼
 *      └──── N consecutive probe successes ────────────────────  PROBATION
 *                                        (any failure re-quarantines)
 *
 * Two failure grades feed the breaker:
 *  - *transient* failures (lost probe, garbage response) accumulate
 *    in the window and trip the rate thresholds;
 *  - *forgeries* (a liveness response whose MAC fails under
 *    Key_attest) are security events: the device's shell is actively
 *    lying, so quarantine is immediate and permanent — no probation.
 *
 * All timing runs on the virtual clock; every transition is recorded
 * with its timestamp so tests and the failover bench can reconstruct
 * detection latency deterministically.
 */

#ifndef SALUS_FPGA_HEALTH_HPP
#define SALUS_FPGA_HEALTH_HPP

#include <deque>
#include <string>
#include <vector>

#include "sim/clock.hpp"

namespace salus::fpga {

/** Supervisor-visible device condition. */
enum class HealthState : uint8_t {
    Healthy = 0,
    Degraded,    ///< elevated failure rate; still serving
    Quarantined, ///< pulled from service; sessions must fail over
    Probation,   ///< cool-down served; earning reinstatement
};

const char *healthStateName(HealthState state);

/** Circuit-breaker tuning. */
struct HealthPolicy
{
    /** Probe outcomes considered for the failure rate. */
    uint32_t windowSize = 8;
    /** Rates are not trusted below this many samples. */
    uint32_t minSamples = 3;
    /** Window failure rate tripping HEALTHY -> DEGRADED. */
    double degradeThreshold = 0.34;
    /** Window failure rate tripping -> QUARANTINED. */
    double quarantineThreshold = 0.67;
    /** Quarantine cool-down before PROBATION is offered. */
    sim::Nanos probationAfter = 500 * sim::kMs;
    /** Consecutive probation successes that reinstate to HEALTHY. */
    uint32_t probationSuccesses = 3;
};

/** One recorded state change. */
struct HealthTransition
{
    sim::Nanos at = 0;
    HealthState from = HealthState::Healthy;
    HealthState to = HealthState::Healthy;
    std::string reason;
};

/** The per-device breaker. */
class HealthTracker
{
  public:
    explicit HealthTracker(HealthPolicy policy = {});

    /** Successful, authentic probe. */
    void recordSuccess(sim::Nanos now);

    /** Transient probe failure (unreachable / garbage response). */
    void recordFailure(sim::Nanos now, const std::string &reason);

    /** Security failure: a liveness response that failed its MAC.
     *  Immediate, permanent quarantine — a forging shell must never
     *  earn its way back through probation. */
    void recordForgery(sim::Nanos now, const std::string &reason);

    /** Time-driven maintenance: offers PROBATION once a (non-
     *  permanent) quarantine has served its cool-down. Call before
     *  deciding whether to probe. */
    void tick(sim::Nanos now);

    /** Planned-maintenance quarantine (rolling upgrade): pulls the
     *  device from service without recording a failure. tick() will
     *  not offer probation until endMaintenance(). */
    void beginMaintenance(sim::Nanos now, const std::string &reason);
    /** Ends planned maintenance: a non-permanently-quarantined device
     *  goes to PROBATION and earns reinstatement with clean probes. */
    void endMaintenance(sim::Nanos now);
    bool inMaintenance() const { return maintenance_; }

    HealthState state() const { return state_; }
    bool permanentlyQuarantined() const { return permanent_; }
    /** Failure rate over the current window (0 when empty). */
    double failureRate() const;
    uint32_t samples() const { return uint32_t(window_.size()); }
    const std::string &lastReason() const { return lastReason_; }
    const std::vector<HealthTransition> &transitions() const
    {
        return transitions_;
    }

  private:
    void push(bool failed);
    void evaluate(sim::Nanos now, const std::string &reason);
    void transitionTo(sim::Nanos now, HealthState to,
                      const std::string &reason);

    HealthPolicy policy_;
    HealthState state_ = HealthState::Healthy;
    std::deque<bool> window_; ///< true = failure
    sim::Nanos quarantinedAt_ = 0;
    uint32_t probationStreak_ = 0;
    bool permanent_ = false;
    bool maintenance_ = false; ///< held quarantined for an upgrade
    std::string lastReason_;
    std::vector<HealthTransition> transitions_;
};

} // namespace salus::fpga

#endif // SALUS_FPGA_HEALTH_HPP
