#include "fpga/device.hpp"

#include <cstring>

#include "bitstream/compiler.hpp"
#include "bitstream/encryptor.hpp"
#include "common/errors.hpp"
#include "common/log.hpp"
#include "sim/fault.hpp"

namespace salus::fpga {

const bitstream::PartitionGeometry *
DeviceModelInfo::findPartition(uint32_t partitionId) const
{
    for (const auto &p : partitions) {
        if (p.partitionId == partitionId)
            return &p;
    }
    return nullptr;
}

DeviceModelInfo
u200ScaledModel()
{
    DeviceModelInfo m;
    m.name = "xcu200-sim";
    m.frameSize = 256;
    m.totalFrames = 3 * 131072; // one SLR of three is the RP
    m.dramBytes = 64ull << 20;

    bitstream::PartitionGeometry rp;
    rp.partitionId = 0;
    rp.frameStart = 2 * 131072;
    rp.frameCount = 131072; // 32 MiB partial bitstream (paper scale)
    rp.frameSize = m.frameSize;
    // Paper Table 5 "Total CL Resource" row.
    rp.capacity = {355040, 710080, 696, 2265};
    m.partitions.push_back(rp);
    return m;
}

DeviceModelInfo
testModel()
{
    DeviceModelInfo m;
    m.name = "xctest-sim";
    m.frameSize = 64;
    m.totalFrames = 3072;
    m.dramBytes = 4u << 20;

    bitstream::PartitionGeometry rp;
    rp.partitionId = 0;
    rp.frameStart = 2048;
    rp.frameCount = 1024; // 64 KiB partial bitstream
    rp.frameSize = m.frameSize;
    rp.capacity = {355040, 710080, 696, 2265};
    m.partitions.push_back(rp);
    return m;
}

DeviceModelInfo
testModelMultiRp(uint32_t rpCount)
{
    DeviceModelInfo m;
    m.name = "xctest-multi-sim";
    m.frameSize = 64;
    m.dramBytes = 4u << 20;

    const uint32_t framesPerRp = 1024; // 64 KiB per RP
    const uint32_t staticFrames = 2048;
    m.totalFrames = staticFrames + rpCount * framesPerRp;
    for (uint32_t i = 0; i < rpCount; ++i) {
        bitstream::PartitionGeometry rp;
        rp.partitionId = i;
        rp.frameStart = staticFrames + i * framesPerRp;
        rp.frameCount = framesPerRp;
        rp.frameSize = m.frameSize;
        rp.capacity = {355040, 710080, 696, 2265};
        m.partitions.push_back(rp);
    }
    return m;
}

const char *
loadStatusName(LoadStatus s)
{
    switch (s) {
      case LoadStatus::Ok: return "Ok";
      case LoadStatus::NoKeyFused: return "NoKeyFused";
      case LoadStatus::WrongDeviceModel: return "WrongDeviceModel";
      case LoadStatus::DecryptFailed: return "DecryptFailed";
      case LoadStatus::MalformedBitstream: return "MalformedBitstream";
      case LoadStatus::GeometryMismatch: return "GeometryMismatch";
      case LoadStatus::DesignUnusable: return "DesignUnusable";
      default: return "?";
    }
}

LoadedDesign::LoadedDesign(netlist::Netlist design,
                           const FabricServices &services)
    : design_(std::move(design))
{
    for (const auto &cell : design_.cells()) {
        if (cell.kind != netlist::CellKind::Logic || cell.behaviorId == 0)
            continue;
        behaviors_.emplace_back(
            cell.path,
            IpCatalog::global().instantiate(cell, design_, services));
    }
    for (auto &[path, behavior] : behaviors_)
        behavior->connect(*this);
}

IpBehavior *
LoadedDesign::behaviorAt(const std::string &cellPath)
{
    for (auto &[path, behavior] : behaviors_) {
        if (path == cellPath)
            return behavior.get();
    }
    return nullptr;
}

std::vector<std::string>
LoadedDesign::behaviorPaths() const
{
    std::vector<std::string> out;
    out.reserve(behaviors_.size());
    for (const auto &[path, behavior] : behaviors_)
        out.push_back(path);
    return out;
}

FpgaDevice::FpgaDevice(DeviceModelInfo model, DeviceDna dna)
    : model_(std::move(model)), dna_(dna), dram_(model_.dramBytes),
      configMem_(size_t(model_.totalFrames) * model_.frameSize, 0)
{
    dna_.value &= (uint64_t(1) << 57) - 1;
}

void
FpgaDevice::fuseKey(ByteView key32)
{
    if (keyFused_)
        throw DeviceError("eFUSE key already programmed");
    if (key32.size() != 32)
        throw DeviceError("eFUSE key must be 32 bytes (AES-256)");
    std::memcpy(efuse_, key32.data(), 32);
    keyFused_ = true;
}

LoadStatus
FpgaDevice::configureFrames(const bitstream::Bitstream &bs)
{
    const auto *part = model_.findPartition(bs.partitionId);
    if (!part || bs.frameStart != part->frameStart ||
        bs.frameCount != part->frameCount ||
        bs.frameSize != part->frameSize) {
        return LoadStatus::GeometryMismatch;
    }

    // Partial reconfiguration rewrites the ENTIRE partition: zeroize
    // first so nothing from the previous tenant can survive, then
    // write every frame the bitstream carries (which by construction
    // is every frame of the partition).
    size_t base = size_t(part->frameStart) * part->frameSize;
    size_t len = part->bodyBytes();
    std::memset(configMem_.data() + base, 0, len);
    std::memcpy(configMem_.data() + base, bs.body.data(), len);

    // Record per-frame ECC signatures, as the configuration engine
    // does while writing frames.
    std::vector<FrameEcc> ecc(part->frameCount);
    for (uint32_t f = 0; f < part->frameCount; ++f) {
        ecc[f] = frameEcc(configMem_.data() + base +
                              size_t(f) * part->frameSize,
                          part->frameSize);
    }
    ecc_[bs.partitionId] = std::move(ecc);

    designs_.erase(bs.partitionId);
    try {
        netlist::Netlist design = bitstream::extractDesign(
            ByteView(configMem_.data() + base, len));
        FabricServices services{dna_, &dram_};
        designs_[bs.partitionId] =
            std::make_unique<LoadedDesign>(std::move(design), services);
    } catch (const SalusError &e) {
        logf(LogLevel::Warn, "fpga", "partition ", bs.partitionId,
             " configured but design is unusable: ", e.what());
        return LoadStatus::DesignUnusable;
    }
    return LoadStatus::Ok;
}

LoadStatus
FpgaDevice::loadEncryptedPartial(ByteView blob)
{
    if (!keyFused_)
        return LoadStatus::NoKeyFused;

    bitstream::EncryptedHeader header;
    try {
        header = bitstream::peekEncryptedHeader(blob);
    } catch (const BitstreamError &) {
        return LoadStatus::MalformedBitstream;
    }
    if (header.deviceModel != model_.name)
        return LoadStatus::WrongDeviceModel;

    // A scheduled load fault models a bit flipped in flight: the GCM
    // tag check fails mid-stream, which (as below) leaves the
    // partition disturbed and therefore cleared.
    if (fault_ && fault_->onBitstreamLoad(deviceIndex_)) {
        if (model_.findPartition(header.partitionId))
            clearPartition(header.partitionId);
        return LoadStatus::DecryptFailed;
    }

    // Decryption happens inside the fabric; plaintext never leaves
    // this function except into configuration memory. As on real
    // devices, frames stream into the partition while the GCM tag is
    // still pending — an authentication failure aborts the load with
    // the partition already disturbed, so the model clears it
    // (fail-safe: a tampered load can never leave the PREVIOUS design
    // running, let alone a spliced one).
    auto plain = bitstream::decryptBitstream(blob, ByteView(efuse_, 32));
    if (!plain) {
        if (model_.findPartition(header.partitionId))
            clearPartition(header.partitionId);
        return LoadStatus::DecryptFailed;
    }

    bitstream::Bitstream bs;
    try {
        bs = bitstream::Bitstream::fromFile(*plain);
    } catch (const BitstreamError &) {
        if (model_.findPartition(header.partitionId))
            clearPartition(header.partitionId);
        return LoadStatus::MalformedBitstream;
    }
    if (bs.deviceModel != model_.name)
        return LoadStatus::WrongDeviceModel;
    // The clear header's routing claim is GCM-authenticated; the
    // decrypted bitstream must target the same partition.
    if (bs.partitionId != header.partitionId)
        return LoadStatus::GeometryMismatch;
    return configureFrames(bs);
}

LoadStatus
FpgaDevice::loadCleartextPartial(ByteView file)
{
    bitstream::Bitstream bs;
    try {
        bs = bitstream::Bitstream::fromFile(file);
    } catch (const BitstreamError &) {
        return LoadStatus::MalformedBitstream;
    }
    if (bs.deviceModel != model_.name)
        return LoadStatus::WrongDeviceModel;
    return configureFrames(bs);
}

Bytes
FpgaDevice::readback(uint32_t partitionId) const
{
    if (!readbackEnabled_) {
        throw DeviceError(
            "ICAP readback is disabled on this device (Salus §5.1.2)");
    }
    const auto *part = model_.findPartition(partitionId);
    if (!part)
        throw DeviceError("no such partition");
    size_t base = size_t(part->frameStart) * part->frameSize;
    return Bytes(configMem_.begin() + base,
                 configMem_.begin() + base + part->bodyBytes());
}

LoadedDesign *
FpgaDevice::design(uint32_t partitionId)
{
    applyPendingSeus();
    auto it = designs_.find(partitionId);
    return it == designs_.end() ? nullptr : it->second.get();
}

void
FpgaDevice::applyPendingSeus()
{
    if (!fault_)
        return;
    for (const auto &event : fault_->takePendingSeus(deviceIndex_)) {
        try {
            injectSeu(event.partition, event.bitIndex);
        } catch (const DeviceError &e) {
            logf(LogLevel::Warn, "fpga",
                 "scheduled SEU not applicable: ", e.what());
        }
    }
}

void
FpgaDevice::clearPartition(uint32_t partitionId)
{
    const auto *part = model_.findPartition(partitionId);
    if (!part)
        throw DeviceError("no such partition");
    size_t base = size_t(part->frameStart) * part->frameSize;
    std::memset(configMem_.data() + base, 0, part->bodyBytes());
    designs_.erase(partitionId);
    ecc_.erase(partitionId);
}

FpgaDevice::FrameEcc
FpgaDevice::frameEcc(const uint8_t *frame, size_t frameSize) const
{
    FrameEcc ecc;
    for (size_t byte = 0; byte < frameSize; ++byte) {
        uint8_t v = frame[byte];
        while (v) {
            int bit = __builtin_ctz(v);
            v = uint8_t(v & (v - 1));
            ecc.xorIndex ^= uint32_t(byte * 8 + bit + 1);
            ecc.parity ^= 1;
        }
    }
    return ecc;
}

void
FpgaDevice::injectSeu(uint32_t partitionId, uint64_t bitIndex)
{
    const auto *part = model_.findPartition(partitionId);
    if (!part)
        throw DeviceError("no such partition");
    if (bitIndex >= uint64_t(part->bodyBytes()) * 8)
        throw DeviceError("SEU bit index outside partition");
    size_t base = size_t(part->frameStart) * part->frameSize;
    configMem_[base + bitIndex / 8] ^= uint8_t(1 << (bitIndex % 8));
}

FpgaDevice::ScrubReport
FpgaDevice::scrub(uint32_t partitionId)
{
    const auto *part = model_.findPartition(partitionId);
    if (!part)
        throw DeviceError("no such partition");
    auto eccIt = ecc_.find(partitionId);
    if (eccIt == ecc_.end())
        throw DeviceError("partition has no configured frames to scrub");

    ScrubReport report;
    size_t base = size_t(part->frameStart) * part->frameSize;
    for (uint32_t f = 0; f < part->frameCount; ++f) {
        uint8_t *frame = configMem_.data() + base +
                         size_t(f) * part->frameSize;
        FrameEcc current = frameEcc(frame, part->frameSize);
        const FrameEcc &stored = eccIt->second[f];
        ++report.framesScanned;

        uint32_t diff = current.xorIndex ^ stored.xorIndex;
        bool parityFlip = current.parity != stored.parity;
        if (diff == 0 && !parityFlip)
            continue; // clean frame
        if (parityFlip && diff != 0) {
            // Odd number of flips with a located position: correct
            // the single-bit upset in place.
            uint32_t pos = diff - 1;
            if (pos < part->frameSize * 8) {
                frame[pos / 8] ^= uint8_t(1 << (pos % 8));
                FrameEcc repaired = frameEcc(frame, part->frameSize);
                if (repaired.xorIndex == stored.xorIndex &&
                    repaired.parity == stored.parity) {
                    ++report.corrected;
                    continue;
                }
            }
        }
        ++report.uncorrectable;
    }

    if (report.uncorrectable > 0) {
        // SEM-IP semantics: multi-bit upsets are fatal for the
        // partition; the design must be reloaded.
        logf(LogLevel::Warn, "fpga", "partition ", partitionId,
             " has uncorrectable configuration errors");
        designs_.erase(partitionId);
    }
    return report;
}

} // namespace salus::fpga
