#include "fpga/health.hpp"

namespace salus::fpga {

const char *
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Healthy:
        return "healthy";
      case HealthState::Degraded:
        return "degraded";
      case HealthState::Quarantined:
        return "quarantined";
      case HealthState::Probation:
        return "probation";
    }
    return "?";
}

HealthTracker::HealthTracker(HealthPolicy policy) : policy_(policy)
{
}

void
HealthTracker::transitionTo(sim::Nanos now, HealthState to,
                            const std::string &reason)
{
    if (to == state_)
        return;
    transitions_.push_back({now, state_, to, reason});
    state_ = to;
    lastReason_ = reason;
    if (to == HealthState::Quarantined) {
        quarantinedAt_ = now;
        window_.clear();
    }
    if (to == HealthState::Probation)
        probationStreak_ = 0;
}

void
HealthTracker::push(bool failed)
{
    window_.push_back(failed);
    while (window_.size() > policy_.windowSize)
        window_.pop_front();
}

double
HealthTracker::failureRate() const
{
    if (window_.empty())
        return 0.0;
    size_t failures = 0;
    for (bool f : window_)
        failures += f ? 1 : 0;
    return double(failures) / double(window_.size());
}

void
HealthTracker::evaluate(sim::Nanos now, const std::string &reason)
{
    if (window_.size() < policy_.minSamples)
        return;
    double rate = failureRate();
    if (rate >= policy_.quarantineThreshold) {
        transitionTo(now, HealthState::Quarantined, reason);
    } else if (rate >= policy_.degradeThreshold) {
        if (state_ == HealthState::Healthy)
            transitionTo(now, HealthState::Degraded, reason);
    } else if (state_ == HealthState::Degraded) {
        transitionTo(now, HealthState::Healthy,
                     "failure rate back under threshold");
    }
}

void
HealthTracker::recordSuccess(sim::Nanos now)
{
    if (state_ == HealthState::Quarantined)
        return; // not in service; ignore stray samples
    if (state_ == HealthState::Probation) {
        if (++probationStreak_ >= policy_.probationSuccesses) {
            window_.clear();
            transitionTo(now, HealthState::Healthy,
                         "probation served: " +
                             std::to_string(probationStreak_) +
                             " clean probes");
        }
        return;
    }
    push(false);
    evaluate(now, "");
}

void
HealthTracker::recordFailure(sim::Nanos now, const std::string &reason)
{
    lastReason_ = reason;
    if (state_ == HealthState::Quarantined)
        return;
    if (state_ == HealthState::Probation) {
        // One strike: back to quarantine, cool-down restarts.
        transitionTo(now, HealthState::Quarantined,
                     "probation failure: " + reason);
        return;
    }
    push(true);
    evaluate(now, reason);
}

void
HealthTracker::recordForgery(sim::Nanos now, const std::string &reason)
{
    permanent_ = true;
    lastReason_ = reason;
    if (state_ != HealthState::Quarantined)
        transitionTo(now, HealthState::Quarantined,
                     "forged liveness response: " + reason);
}

void
HealthTracker::beginMaintenance(sim::Nanos now,
                                const std::string &reason)
{
    maintenance_ = true;
    if (state_ != HealthState::Quarantined)
        transitionTo(now, HealthState::Quarantined,
                     "maintenance: " + reason);
}

void
HealthTracker::endMaintenance(sim::Nanos now)
{
    if (!maintenance_)
        return;
    maintenance_ = false;
    if (state_ == HealthState::Quarantined && !permanent_)
        transitionTo(now, HealthState::Probation,
                     "maintenance complete");
}

void
HealthTracker::tick(sim::Nanos now)
{
    if (state_ == HealthState::Quarantined && !permanent_ &&
        !maintenance_ &&
        now >= quarantinedAt_ + policy_.probationAfter) {
        transitionTo(now, HealthState::Probation,
                     "quarantine cool-down served");
    }
}

} // namespace salus::fpga
