#include "fpga/dram.hpp"

#include <cstring>

#include "common/errors.hpp"

namespace salus::fpga {

void
DeviceDram::write(uint64_t addr, ByteView data)
{
    if (addr > mem_.size() || data.size() > mem_.size() - addr)
        throw DeviceError("DRAM write out of range");
    if (!data.empty())
        std::memcpy(mem_.data() + addr, data.data(), data.size());
}

Bytes
DeviceDram::read(uint64_t addr, size_t len) const
{
    if (addr > mem_.size() || len > mem_.size() - addr)
        throw DeviceError("DRAM read out of range");
    return Bytes(mem_.begin() + addr, mem_.begin() + addr + len);
}

} // namespace salus::fpga
