#include "fpga/ip.hpp"

#include <map>

#include "common/errors.hpp"

namespace salus::fpga {

Bytes
DeviceDna::bytes() const
{
    Bytes out(8);
    storeLe64(out.data(), value);
    return out;
}

IpCatalog &
IpCatalog::global()
{
    static IpCatalog catalog;
    return catalog;
}

void
IpCatalog::registerIp(uint32_t behaviorId, IpFactory factory)
{
    factories_[behaviorId] = std::move(factory);
}

bool
IpCatalog::knows(uint32_t behaviorId) const
{
    return factories_.count(behaviorId) != 0;
}

std::unique_ptr<IpBehavior>
IpCatalog::instantiate(const netlist::Cell &cell,
                       const netlist::Netlist &design,
                       const FabricServices &services) const
{
    auto it = factories_.find(cell.behaviorId);
    if (it == factories_.end()) {
        throw DeviceError("no behaviour registered for id " +
                          std::to_string(cell.behaviorId) + " (cell " +
                          cell.path + ")");
    }
    return it->second(cell, design, services);
}

namespace {

/**
 * Minimal test IP: a bank of 16 scratch registers plus an adder.
 * Register map: 0x00..0x78 scratch; 0x80 returns reg0+reg1.
 */
class LoopbackIp : public IpBehavior
{
  public:
    uint64_t
    readRegister(uint32_t addr) override
    {
        if (addr == 0x80)
            return regs_[0] + regs_[1];
        uint32_t idx = addr / 8;
        return idx < 16 ? regs_[idx] : 0;
    }

    void
    writeRegister(uint32_t addr, uint64_t value) override
    {
        uint32_t idx = addr / 8;
        if (idx < 16)
            regs_[idx] = value;
    }

    void
    reset() override
    {
        for (auto &r : regs_)
            r = 0;
    }

  private:
    uint64_t regs_[16] = {};
};

} // namespace

void
ensureBuiltinIps()
{
    static bool done = [] {
        IpCatalog::global().registerIp(
            kIpLoopback,
            [](const netlist::Cell &, const netlist::Netlist &,
               const FabricServices &) {
                return std::make_unique<LoopbackIp>();
            });
        return true;
    }();
    (void)done;
}

} // namespace salus::fpga
