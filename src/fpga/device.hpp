/**
 * @file
 * The FPGA device model: configuration memory, eFUSE key storage,
 * DNA, the internal bitstream decryption engine, and the ICAP-style
 * configuration port with its (disable-able) readback capability.
 *
 * Trust boundary notes (paper §2.3, §3.1, §5.1.2):
 *  - the decrypt engine lives inside the fabric; programmable logic
 *    and the shell never observe plaintext frames or the eFUSE key;
 *  - loading a partial bitstream overwrites EVERY frame of the target
 *    partition (Observation 2) — there is no partial splice;
 *  - `readback()` models the ICAP readback path. Salus requires it
 *    disabled; the flag exists so tests can demonstrate the attack
 *    that motivates the requirement.
 */

#ifndef SALUS_FPGA_DEVICE_HPP
#define SALUS_FPGA_DEVICE_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/format.hpp"
#include "fpga/dram.hpp"
#include "fpga/ip.hpp"

namespace salus::sim {
class FaultInjector;
}

namespace salus::fpga {

/** Static description of a device model (geometry + partitions). */
struct DeviceModelInfo
{
    std::string name;
    uint32_t frameSize = 256;
    uint32_t totalFrames = 0;
    size_t dramBytes = 0;
    std::vector<bitstream::PartitionGeometry> partitions;

    const bitstream::PartitionGeometry *
    findPartition(uint32_t partitionId) const;
};

/**
 * Paper-scale device: one super logic region of an Alveo U200
 * reserved as the reconfigurable partition (Table 5 capacities;
 * ~32 MiB partial bitstream as in §6.3's timing).
 */
DeviceModelInfo u200ScaledModel();

/** Small geometry for fast unit tests (same structure, ~64 KiB RP). */
DeviceModelInfo testModel();

/**
 * Test-scale device with several reconfigurable partitions — the
 * multi-RP architecture of paper §4.7. Each RP integrates its own SM
 * logic and is programmed/attested independently.
 */
DeviceModelInfo testModelMultiRp(uint32_t rpCount);

/** Outcome of a configuration attempt. */
enum class LoadStatus {
    Ok = 0,
    NoKeyFused,       ///< encrypted load without a programmed eFUSE
    WrongDeviceModel, ///< blob targets a different device model
    DecryptFailed,    ///< GCM authentication failed (tamper/wrong key)
    MalformedBitstream,
    GeometryMismatch, ///< frames don't match a declared partition
    DesignUnusable,   ///< configured, but frames carry no valid design
};

/** Human-readable name for a LoadStatus. */
const char *loadStatusName(LoadStatus s);

/**
 * A design reconstructed from configuration memory: instantiated
 * behaviours plus the netlist view they were built from.
 */
class LoadedDesign
{
  public:
    LoadedDesign(netlist::Netlist design, const FabricServices &services);

    /** The netlist as read back from configuration frames. */
    const netlist::Netlist &design() const { return design_; }

    /** Behaviour instance for a logic cell; nullptr if absent. */
    IpBehavior *behaviorAt(const std::string &cellPath);

    /** Paths of all instantiated logic cells in design order. */
    std::vector<std::string> behaviorPaths() const;

  private:
    netlist::Netlist design_;
    std::vector<std::pair<std::string, std::unique_ptr<IpBehavior>>>
        behaviors_;
};

/** The FPGA card. */
class FpgaDevice
{
  public:
    FpgaDevice(DeviceModelInfo model, DeviceDna dna);

    const DeviceModelInfo &model() const { return model_; }
    DeviceDna dna() const { return dna_; }
    DeviceDram &dram() { return dram_; }

    // ---- Manufacturing-time provisioning ---------------------------
    /**
     * Programs the AES-256 bitstream key into eFUSE. One-shot.
     * @throws DeviceError on re-fusing or wrong key size.
     */
    void fuseKey(ByteView key32);
    bool keyFused() const { return keyFused_; }

    /** Enables/disables ICAP readback (manufacturer-released ICAP IP
     *  with readback removed == permanently false). */
    void setReadbackEnabled(bool enabled) { readbackEnabled_ = enabled; }
    bool readbackEnabled() const { return readbackEnabled_; }

    // ---- Configuration port (used by the shell) ---------------------
    /**
     * Loads an encrypted partial bitstream: decrypts inside the
     * fabric, validates, zeroizes the whole partition, configures it,
     * and instantiates the design.
     */
    LoadStatus loadEncryptedPartial(ByteView blob);

    /** Loads a plaintext partial bitstream (legacy/unsecure FaaS). */
    LoadStatus loadCleartextPartial(ByteView file);

    /**
     * ICAP readback of a partition's configuration frames.
     * @throws DeviceError when readback is disabled (Salus mode).
     */
    Bytes readback(uint32_t partitionId) const;

    /** The design currently loaded in a partition (may be null). */
    LoadedDesign *design(uint32_t partitionId);

    /** Clears a partition (device reset / tenant teardown). */
    void clearPartition(uint32_t partitionId);

    // ---- Configuration-memory ECC / SEU handling --------------------
    // Model of the frame-ECC + scrubber machinery (Xilinx SEM IP):
    // the configuration engine records a per-frame SECDED signature
    // at load time; radiation-induced single-event upsets (SEUs) can
    // later be corrected by scrubbing, double upsets are detected.

    /** Outcome of one scrub pass over a partition. */
    struct ScrubReport
    {
        uint32_t framesScanned = 0;
        uint32_t corrected = 0;     ///< single-bit upsets repaired
        uint32_t uncorrectable = 0; ///< multi-bit upsets detected
    };

    /**
     * Flips one configuration bit in a partition (test/fault
     * injection; a real SEU).
     * @param bitIndex bit offset within the partition's frames.
     */
    void injectSeu(uint32_t partitionId, uint64_t bitIndex);

    /**
     * Scrubs a partition against its frame ECC. Single-bit errors are
     * corrected in place; a frame with an uncorrectable error marks
     * the partition's design unusable (fatal, as with the SEM IP).
     */
    ScrubReport scrub(uint32_t partitionId);

    /**
     * Wires the deterministic fault fabric: scheduled radiation upsets
     * land in configuration memory, and bitstream loads can fail their
     * GCM check mid-stream (a bit flipped in flight).
     */
    void setFaultInjector(sim::FaultInjector *injector)
    {
        fault_ = injector;
    }

    /** Fleet position of this device; scopes device-targeted fault
     *  rules (DeviceDead kills loads too, SEUs can be per-device). */
    void setDeviceIndex(uint32_t index) { deviceIndex_ = index; }
    uint32_t deviceIndex() const { return deviceIndex_; }

  private:
    /** Drains scheduled SEUs from the fault plan into config memory. */
    void applyPendingSeus();

    /** Per-frame SECDED signature. */
    struct FrameEcc
    {
        uint32_t xorIndex = 0; ///< XOR of (bit position + 1) of set bits
        uint8_t parity = 0;    ///< total set-bit parity
    };

    FrameEcc frameEcc(const uint8_t *frame, size_t frameSize) const;
    LoadStatus configureFrames(const bitstream::Bitstream &bs);

    DeviceModelInfo model_;
    DeviceDna dna_;
    DeviceDram dram_;
    Bytes configMem_;
    uint8_t efuse_[32] = {};
    bool keyFused_ = false;
    bool readbackEnabled_ = false;
    std::map<uint32_t, std::unique_ptr<LoadedDesign>> designs_;
    std::map<uint32_t, std::vector<FrameEcc>> ecc_;
    sim::FaultInjector *fault_ = nullptr;
    uint32_t deviceIndex_ = 0;
};

} // namespace salus::fpga

#endif // SALUS_FPGA_DEVICE_HPP
