/**
 * @file
 * On-card DRAM model. Accelerators read inputs and write outputs
 * here; the host reaches it through the shell's DMA path. Memory
 * contents are attacker-visible per the threat model (§3.1 attack 2),
 * which is why the accelerators encrypt their traffic (§6.4).
 */

#ifndef SALUS_FPGA_DRAM_HPP
#define SALUS_FPGA_DRAM_HPP

#include <cstdint>

#include "common/bytes.hpp"

namespace salus::fpga {

/** Byte-addressable device memory. */
class DeviceDram
{
  public:
    explicit DeviceDram(size_t size) : mem_(size, 0) {}

    size_t size() const { return mem_.size(); }

    /** @throws DeviceError when the range falls outside memory. */
    void write(uint64_t addr, ByteView data);

    /** @throws DeviceError when the range falls outside memory. */
    Bytes read(uint64_t addr, size_t len) const;

    /** Raw view for attack code that scans memory (malicious shell). */
    const Bytes &raw() const { return mem_; }
    Bytes &raw() { return mem_; }

  private:
    Bytes mem_;
};

} // namespace salus::fpga

#endif // SALUS_FPGA_DRAM_HPP
