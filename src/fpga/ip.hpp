/**
 * @file
 * Behavioural IP framework. A loaded design's logic cells are
 * instantiated as IpBehavior objects — the simulator's equivalent of
 * configured fabric. Behaviour implementations register themselves in
 * the IpCatalog under the behaviour id that netlist logic cells
 * reference.
 *
 * Crucially, behaviours get their secrets exclusively from the BRAM
 * cells of the netlist that was reconstructed from configuration
 * memory — so whatever the bitstream manipulation wrote (or an
 * attacker corrupted) is exactly what the logic sees.
 */

#ifndef SALUS_FPGA_IP_HPP
#define SALUS_FPGA_IP_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/bytes.hpp"
#include "netlist/netlist.hpp"

namespace salus::fpga {

class DeviceDram;
class LoadedDesign;

/** The 57-bit factory-programmed device identifier (DNA_PORTE2). */
struct DeviceDna
{
    uint64_t value = 0; ///< 57 significant bits

    /** Canonical 8-byte little-endian encoding used in MACs. */
    Bytes bytes() const;

    bool operator==(const DeviceDna &o) const { return value == o.value; }
};

/** Fabric facilities available to instantiated logic. */
struct FabricServices
{
    DeviceDna dna;           ///< readable via the DNA port
    DeviceDram *dram = nullptr; ///< on-card DRAM for memory-mapped IPs
};

/**
 * One configured logic block with an AXI4-Lite-style register
 * interface. Addresses are byte offsets within the block's window.
 */
class IpBehavior
{
  public:
    virtual ~IpBehavior() = default;

    /** Reset to the post-configuration state. */
    virtual void reset() {}

    /** Register read; unknown addresses return 0 (AXI DECERR analog). */
    virtual uint64_t readRegister(uint32_t addr) = 0;

    /** Register write. */
    virtual void writeRegister(uint32_t addr, uint64_t value) = 0;

    /**
     * Second wiring pass after all cells of a design exist, so blocks
     * can resolve intra-CL connections (e.g. the SM logic's forward
     * port to the accelerator).
     */
    virtual void connect(LoadedDesign &) {}
};

/** Factory signature: cell being instantiated + whole design view. */
using IpFactory = std::function<std::unique_ptr<IpBehavior>(
    const netlist::Cell &cell, const netlist::Netlist &design,
    const FabricServices &services)>;

/** Global registry of behaviour implementations. */
class IpCatalog
{
  public:
    /** The process-wide catalog. */
    static IpCatalog &global();

    /** Registers (or replaces) a behaviour implementation. */
    void registerIp(uint32_t behaviorId, IpFactory factory);

    /** True when an implementation exists for the id. */
    bool knows(uint32_t behaviorId) const;

    /**
     * Instantiates the behaviour for a logic cell.
     * @throws DeviceError for unknown behaviour ids.
     */
    std::unique_ptr<IpBehavior>
    instantiate(const netlist::Cell &cell,
                const netlist::Netlist &design,
                const FabricServices &services) const;

  private:
    std::map<uint32_t, IpFactory> factories_;
};

/** Well-known behaviour ids. */
constexpr uint32_t kIpLoopback = 2;  ///< test echo block
constexpr uint32_t kIpSmLogic = 1;   ///< Salus secure-manager logic
constexpr uint32_t kIpConv = 10;
constexpr uint32_t kIpAffine = 11;
constexpr uint32_t kIpRendering = 12;
constexpr uint32_t kIpFaceDetect = 13;
constexpr uint32_t kIpNnSearch = 14;

/** Registers the built-in test IPs (idempotent). */
void ensureBuiltinIps();

} // namespace salus::fpga

#endif // SALUS_FPGA_IP_HPP
