#include "bitstream/encryptor.hpp"

#include <cstring>

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/aes_gcm.hpp"

namespace salus::bitstream {

namespace {

const char kMagic[4] = {'S', 'E', 'N', 'C'};

Bytes
headerBytes(const EncryptedHeader &header, ByteView iv)
{
    BinaryWriter w;
    w.writeRaw(ByteView(reinterpret_cast<const uint8_t *>(kMagic), 4));
    w.writeString(header.deviceModel);
    w.writeU32(header.partitionId);
    w.writeBytes(iv);
    return w.take();
}

} // namespace

Bytes
encryptBitstream(ByteView rawFile, ByteView deviceKey,
                 const EncryptedHeader &header,
                 crypto::RandomSource &rng)
{
    if (deviceKey.size() != 32)
        throw CryptoError("bitstream device key must be AES-256");

    Bytes iv = rng.bytes(12);
    Bytes aad = headerBytes(header, iv);

    crypto::AesGcm gcm(deviceKey);
    crypto::GcmSealed sealed = gcm.seal(iv, aad, rawFile);

    BinaryWriter w;
    w.writeRaw(aad);
    w.writeBytes(sealed.ciphertext);
    w.writeBytes(sealed.tag);
    return w.take();
}

EncryptedHeader
peekEncryptedHeader(ByteView blob)
{
    try {
        BinaryReader r(blob);
        Bytes magic = r.readRaw(4);
        if (std::memcmp(magic.data(), kMagic, 4) != 0)
            throw BitstreamError("not an encrypted bitstream");
        EncryptedHeader h;
        h.deviceModel = r.readString();
        h.partitionId = r.readU32();
        return h;
    } catch (const SerdeError &e) {
        throw BitstreamError(std::string("encrypted header: ") +
                             e.what());
    }
}

std::optional<Bytes>
decryptBitstream(ByteView blob, ByteView deviceKey)
{
    try {
        BinaryReader r(blob);
        Bytes magic = r.readRaw(4);
        if (std::memcmp(magic.data(), kMagic, 4) != 0)
            return std::nullopt;
        EncryptedHeader h;
        h.deviceModel = r.readString();
        h.partitionId = r.readU32();
        Bytes iv = r.readBytes();
        Bytes ciphertext = r.readBytes();
        Bytes tag = r.readBytes();
        if (!r.atEnd())
            return std::nullopt;

        Bytes aad = headerBytes(h, iv);
        crypto::AesGcm gcm(deviceKey);
        return gcm.open(iv, aad, ciphertext, tag);
    } catch (const SerdeError &) {
        return std::nullopt;
    }
}

} // namespace salus::bitstream
