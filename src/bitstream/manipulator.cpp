#include "bitstream/manipulator.hpp"

#include <cstring>

#include "bitstream/format.hpp"
#include "common/errors.hpp"

namespace salus::bitstream {

namespace {

LogicLocationEntry
lookup(const LogicLocationFile &ll, const std::string &cellPath,
       size_t fileSize)
{
    auto entry = ll.find(cellPath);
    if (!entry)
        throw BitstreamError("no logic location for cell " + cellPath);
    if (entry->fileOffset + entry->length > fileSize - 4)
        throw BitstreamError("logic location outside bitstream file");
    return *entry;
}

} // namespace

void
Manipulator::patchCell(Bytes &file, const LogicLocationFile &ll,
                       const std::string &cellPath, ByteView newInit)
{
    LogicLocationEntry entry = lookup(ll, cellPath, file.size());
    if (newInit.size() != entry.length) {
        throw BitstreamError(
            "init size mismatch for " + cellPath + ": got " +
            std::to_string(newInit.size()) + ", cell holds " +
            std::to_string(entry.length));
    }
    std::memcpy(file.data() + entry.fileOffset, newInit.data(),
                newInit.size());
    refreshFileCrc(file);
}

Bytes
Manipulator::readCell(ByteView file, const LogicLocationFile &ll,
                      const std::string &cellPath)
{
    LogicLocationEntry entry = lookup(ll, cellPath, file.size());
    return Bytes(file.begin() + entry.fileOffset,
                 file.begin() + entry.fileOffset + entry.length);
}

} // namespace salus::bitstream
