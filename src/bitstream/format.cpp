#include "bitstream/format.hpp"

#include <cstring>

#include "bitstream/crc32.hpp"
#include "common/errors.hpp"
#include "common/serde.hpp"

namespace salus::bitstream {

namespace {

const char kMagic[4] = {'S', 'B', 'I', 'T'};

} // namespace

Bytes
Bitstream::toFile() const
{
    if (body.size() != size_t(frameCount) * frameSize)
        throw BitstreamError("body size does not match geometry");

    BinaryWriter w;
    w.writeRaw(ByteView(reinterpret_cast<const uint8_t *>(kMagic), 4));
    w.writeU16(version);
    w.writeString(deviceModel);
    w.writeU32(partitionId);
    w.writeU32(frameStart);
    w.writeU32(frameCount);
    w.writeU32(frameSize);
    w.writeBytes(body);

    Bytes file = w.take();
    uint32_t crc = crc32(file);
    uint8_t crcBytes[4];
    storeLe32(crcBytes, crc);
    file.insert(file.end(), crcBytes, crcBytes + 4);
    return file;
}

Bitstream
Bitstream::fromFile(ByteView file)
{
    if (file.size() < 4 + 4)
        throw BitstreamError("file too short");
    if (!fileCrcValid(file))
        throw BitstreamError("CRC mismatch");

    try {
        BinaryReader r(ByteView(file.data(), file.size() - 4));
        Bytes magic = r.readRaw(4);
        if (std::memcmp(magic.data(), kMagic, 4) != 0)
            throw BitstreamError("bad magic");
        Bitstream bs;
        bs.version = r.readU16();
        bs.deviceModel = r.readString();
        bs.partitionId = r.readU32();
        bs.frameStart = r.readU32();
        bs.frameCount = r.readU32();
        bs.frameSize = r.readU32();
        bs.body = r.readBytes();
        if (!r.atEnd())
            throw BitstreamError("trailing garbage");
        if (bs.frameSize == 0 ||
            bs.body.size() != size_t(bs.frameCount) * bs.frameSize) {
            throw BitstreamError("body/geometry mismatch");
        }
        return bs;
    } catch (const SerdeError &e) {
        throw BitstreamError(std::string("parse: ") + e.what());
    }
}

size_t
bitstreamBodyOffset(const std::string &deviceModel)
{
    // magic(4) + version(2) + deviceModel(4 + n) + partitionId(4) +
    // frameStart(4) + frameCount(4) + frameSize(4) + body length(4)
    return 4 + 2 + 4 + deviceModel.size() + 4 + 4 + 4 + 4 + 4;
}

size_t
Bitstream::bodyOffsetInFile() const
{
    return bitstreamBodyOffset(deviceModel);
}

void
refreshFileCrc(Bytes &file)
{
    if (file.size() < 4)
        throw BitstreamError("file too short for CRC");
    uint32_t crc = crc32(ByteView(file.data(), file.size() - 4));
    storeLe32(file.data() + file.size() - 4, crc);
}

bool
fileCrcValid(ByteView file)
{
    if (file.size() < 4)
        return false;
    uint32_t stored = loadLe32(file.data() + file.size() - 4);
    return crc32(ByteView(file.data(), file.size() - 4)) == stored;
}

} // namespace salus::bitstream
