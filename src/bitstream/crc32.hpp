/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) as used for bitstream integrity
 * words. Note this is an error-detection code, not a MAC — the
 * manipulator recomputes it after patching exactly like real bitstream
 * tooling does, and the threat model never relies on it for security.
 */

#ifndef SALUS_BITSTREAM_CRC32_HPP
#define SALUS_BITSTREAM_CRC32_HPP

#include <cstdint>

#include "common/bytes.hpp"

namespace salus::bitstream {

/** Computes the CRC-32 of the buffer (init 0xffffffff, reflected). */
uint32_t crc32(ByteView data);

} // namespace salus::bitstream

#endif // SALUS_BITSTREAM_CRC32_HPP
