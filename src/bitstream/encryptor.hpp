/**
 * @file
 * Bitstream encryption (paper §2.3, §5.2: AES-GCM-256 matching the
 * Vivado/xapp1267 scheme). The SM enclave encrypts the manipulated
 * bitstream under the per-device eFUSE key; only the FPGA fabric's
 * internal decrypt engine can open it, so the shell that carries the
 * blob learns nothing about the injected secrets.
 *
 * Envelope layout (clear header doubles as GCM AAD):
 *   "SENC" | deviceModel | u32 partitionId | iv(12) | ct | tag(16)
 */

#ifndef SALUS_BITSTREAM_ENCRYPTOR_HPP
#define SALUS_BITSTREAM_ENCRYPTOR_HPP

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "crypto/random.hpp"

namespace salus::bitstream {

/** Clear (authenticated) header of an encrypted bitstream. */
struct EncryptedHeader
{
    std::string deviceModel;
    uint32_t partitionId = 0;
};

/**
 * Encrypts a raw bitstream file for a device.
 * @param deviceKey the 32-byte AES key fused into the target device.
 */
Bytes encryptBitstream(ByteView rawFile, ByteView deviceKey,
                       const EncryptedHeader &header,
                       crypto::RandomSource &rng);

/** Reads the clear header without any key (shell routing needs it). */
EncryptedHeader peekEncryptedHeader(ByteView blob);

/**
 * Decrypts and authenticates; nullopt when the key is wrong or the
 * blob was tampered with — the device refuses to configure.
 */
std::optional<Bytes> decryptBitstream(ByteView blob, ByteView deviceKey);

} // namespace salus::bitstream

#endif // SALUS_BITSTREAM_ENCRYPTOR_HPP
