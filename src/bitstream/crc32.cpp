#include "bitstream/crc32.hpp"

namespace salus::bitstream {

namespace {

struct Crc32Table
{
    uint32_t tbl[256];

    Crc32Table()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            tbl[i] = c;
        }
    }
};

const Crc32Table kTable;

} // namespace

uint32_t
crc32(ByteView data)
{
    uint32_t c = 0xffffffffu;
    for (uint8_t b : data)
        c = kTable.tbl[(c ^ b) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace salus::bitstream
