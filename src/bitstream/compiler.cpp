#include "bitstream/compiler.hpp"

#include <cstring>

#include "common/errors.hpp"
#include "common/serde.hpp"
#include "crypto/random.hpp"

namespace salus::bitstream {

namespace {

/** Body layout: magic, payload offset/length, pad, payload, filler. */
constexpr uint32_t kBodyMagic = 0x534e4c42; // "SNLB"
constexpr size_t kBodyHeader = 12;

} // namespace

CompiledDesign
Compiler::compile(const netlist::Netlist &design,
                  const PartitionGeometry &geometry) const
{
    netlist::ResourceVector used = design.totalResources();
    if (!used.fitsWithin(geometry.capacity)) {
        throw BitstreamError(
            "design does not fit partition capacity (LUT " +
            std::to_string(used.luts) + "/" +
            std::to_string(geometry.capacity.luts) + ")");
    }

    std::vector<netlist::BramSpan> spans;
    Bytes payload = design.serializeWithSpans(spans);

    size_t bodySize = geometry.bodyBytes();
    if (kBodyHeader + payload.size() > bodySize) {
        throw BitstreamError("design payload exceeds partition frames (" +
                             std::to_string(payload.size()) + " > " +
                             std::to_string(bodySize) + " bytes)");
    }

    // Content-dependent placement: derive the payload offset from the
    // design digest, like P&R producing a different floorplan per
    // design revision.
    Bytes digest = design.digest();
    size_t slack = bodySize - kBodyHeader - payload.size();
    size_t maxPad = std::min(slack, size_t(4096));
    size_t pad = maxPad ? (loadLe32(digest.data()) % maxPad) : 0;
    size_t payloadOffset = kBodyHeader + pad;

    Bytes body(bodySize);
    storeLe32(body.data(), kBodyMagic);
    storeLe32(body.data() + 4, uint32_t(payloadOffset));
    storeLe32(body.data() + 8, uint32_t(payload.size()));

    // Deterministic filler standing in for the configuration of
    // unused cells (real partial bitstreams configure every cell of
    // the region, used or not -- paper Observation 2).
    crypto::CtrDrbg filler(digest);
    filler.fill(body.data() + kBodyHeader, bodySize - kBodyHeader);

    std::memcpy(body.data() + payloadOffset, payload.data(),
                payload.size());

    Bitstream bs;
    bs.deviceModel = deviceModel_;
    bs.partitionId = geometry.partitionId;
    bs.frameStart = geometry.frameStart;
    bs.frameCount = geometry.frameCount;
    bs.frameSize = geometry.frameSize;
    bs.body = std::move(body);

    CompiledDesign out;
    out.file = bs.toFile();
    out.utilization = used;

    size_t bodyFileOffset = bs.bodyOffsetInFile();
    for (const auto &s : spans) {
        LogicLocationEntry e;
        e.cellPath = s.path;
        e.fileOffset = bodyFileOffset + payloadOffset + s.offset;
        e.length = uint32_t(s.length);
        out.logicLocations.add(std::move(e));
    }
    return out;
}

netlist::Netlist
extractDesign(ByteView body)
{
    if (body.size() < kBodyHeader)
        throw BitstreamError("body too short");
    if (loadLe32(body.data()) != kBodyMagic)
        throw BitstreamError("body carries no valid design");
    uint32_t offset = loadLe32(body.data() + 4);
    uint32_t length = loadLe32(body.data() + 8);
    if (size_t(offset) + length > body.size())
        throw BitstreamError("design payload out of range");
    return netlist::Netlist::deserialize(
        ByteView(body.data() + offset, length));
}

} // namespace salus::bitstream
