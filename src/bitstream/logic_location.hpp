/**
 * @file
 * Logic-location file (the analog of Xilinx .ll files as consumed by
 * RapidWright/byteman). Produced at compile time alongside the
 * bitstream, it maps each BRAM cell's hierarchical path to the byte
 * span of its initialization contents *within the raw bitstream file*.
 *
 * The developer ships this next to the bitstream (paper §4.2:
 * "records the hierarchical location of the RoT ... and stores it
 * alongside the bitstream"); the SM enclave uses the entry for the
 * reserved key cells to inject secrets without recompilation.
 */

#ifndef SALUS_BITSTREAM_LOGIC_LOCATION_HPP
#define SALUS_BITSTREAM_LOGIC_LOCATION_HPP

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace salus::bitstream {

/** One BRAM cell's placement inside the bitstream file. */
struct LogicLocationEntry
{
    std::string cellPath;
    uint64_t fileOffset = 0; ///< absolute offset in the raw file
    uint32_t length = 0;     ///< init length in bytes
};

/** The whole .ll-style sidecar file. */
class LogicLocationFile
{
  public:
    void add(LogicLocationEntry entry) { entries_.push_back(entry); }

    const std::vector<LogicLocationEntry> &entries() const
    {
        return entries_;
    }

    /** Finds the entry for a cell path. */
    std::optional<LogicLocationEntry>
    find(const std::string &cellPath) const;

    /** Wire encoding, so it can travel with the bitstream metadata. */
    Bytes serialize() const;
    static LogicLocationFile deserialize(ByteView data);

  private:
    std::vector<LogicLocationEntry> entries_;
};

} // namespace salus::bitstream

#endif // SALUS_BITSTREAM_LOGIC_LOCATION_HPP
