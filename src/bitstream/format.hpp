/**
 * @file
 * Partial-bitstream container format.
 *
 * A bitstream *file* is raw bytes — that is what the developer ships,
 * what the SM enclave digests and patches, and what gets encrypted.
 * The parsed view (`Bitstream`) is what the device's configuration
 * port consumes after decryption. Layout:
 *
 *   "SBIT" | u16 version | deviceModel | u32 partitionId |
 *   u32 frameStart | u32 frameCount | u32 frameSize |
 *   body (frameCount*frameSize bytes, length-prefixed) | u32 crc32
 *
 * The body length is fixed by the partition geometry regardless of
 * design contents — the paper's Observation 2 and §6.3's "bitstream
 * size only depends on the reserved area" both hinge on this.
 */

#ifndef SALUS_BITSTREAM_FORMAT_HPP
#define SALUS_BITSTREAM_FORMAT_HPP

#include <string>

#include "common/bytes.hpp"
#include "netlist/netlist.hpp"

namespace salus::bitstream {

/** Geometry and capacity of one reconfigurable partition. */
struct PartitionGeometry
{
    uint32_t partitionId = 0;
    uint32_t frameStart = 0; ///< first frame index in config memory
    uint32_t frameCount = 0;
    uint32_t frameSize = 256; ///< bytes per frame
    netlist::ResourceVector capacity;

    size_t bodyBytes() const { return size_t(frameCount) * frameSize; }
};

/** Parsed plaintext partial bitstream. */
struct Bitstream
{
    uint16_t version = 1;
    std::string deviceModel;
    uint32_t partitionId = 0;
    uint32_t frameStart = 0;
    uint32_t frameCount = 0;
    uint32_t frameSize = 0;
    Bytes body; ///< frameCount * frameSize bytes

    /** Serializes to the raw file format (computes the CRC). */
    Bytes toFile() const;

    /**
     * Parses and validates a raw file (magic, sizes, CRC).
     * @throws BitstreamError on any structural violation.
     */
    static Bitstream fromFile(ByteView file);

    /** Byte offset of the body within the serialized file. */
    size_t bodyOffsetInFile() const;
};

/** Offset of the body for a file with the given header fields. */
size_t bitstreamBodyOffset(const std::string &deviceModel);

/** Recomputes the trailing CRC of a raw bitstream file in place. */
void refreshFileCrc(Bytes &file);

/** Checks only the trailing CRC of a raw file. */
bool fileCrcValid(ByteView file);

} // namespace salus::bitstream

#endif // SALUS_BITSTREAM_FORMAT_HPP
