/**
 * @file
 * Bitstream manipulator — the RapidWright/byteman analog (paper §2.3).
 * Patches a BRAM cell's initialization contents directly in a raw
 * bitstream file, given the cell's logic location, then repairs the
 * trailing CRC. No recompilation, no access to source, no netlist.
 *
 * This is the core enabling primitive for Salus's dynamic RoT
 * injection: the SM enclave calls patchCell() with a freshly generated
 * Key_attest / Key_session / Ctr_session (paper §4.2).
 */

#ifndef SALUS_BITSTREAM_MANIPULATOR_HPP
#define SALUS_BITSTREAM_MANIPULATOR_HPP

#include "bitstream/logic_location.hpp"

namespace salus::bitstream {

/** Stateless bitstream patcher. */
class Manipulator
{
  public:
    /**
     * Overwrites the init contents of `cellPath` with `newInit` in the
     * raw bitstream file, then refreshes the file CRC.
     * @throws BitstreamError if the cell is unknown, the new contents
     *         have the wrong length, or offsets fall outside the file.
     */
    static void patchCell(Bytes &file, const LogicLocationFile &ll,
                          const std::string &cellPath, ByteView newInit);

    /**
     * Reads the current init contents of a cell from the raw file —
     * the "readback" a bitstream tool performs when inspecting a
     * design (and what an attacker with the plaintext file could do).
     */
    static Bytes readCell(ByteView file, const LogicLocationFile &ll,
                          const std::string &cellPath);
};

} // namespace salus::bitstream

#endif // SALUS_BITSTREAM_MANIPULATOR_HPP
