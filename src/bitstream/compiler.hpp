/**
 * @file
 * Bitstream compiler — the simulator's stand-in for Vivado place &
 * route + write_bitstream. Turns a netlist into (a) a raw partial
 * bitstream file sized purely by the partition geometry and (b) a
 * logic-location sidecar for BRAM cells.
 *
 * Placement is deterministic but *content-dependent*: the serialized
 * design lands at an offset derived from the netlist digest, so the
 * location of the RoT cell genuinely differs across compiled designs —
 * the property that forces Salus to carry a per-design Loc_keyattest
 * (paper §4.2) instead of hardcoding one.
 */

#ifndef SALUS_BITSTREAM_COMPILER_HPP
#define SALUS_BITSTREAM_COMPILER_HPP

#include "bitstream/format.hpp"
#include "bitstream/logic_location.hpp"
#include "netlist/netlist.hpp"

namespace salus::bitstream {

/** Compiler output bundle. */
struct CompiledDesign
{
    Bytes file; ///< raw partial bitstream file
    LogicLocationFile logicLocations;
    netlist::ResourceVector utilization;
};

/** Compiles a netlist for a partition of a given device model. */
class Compiler
{
  public:
    explicit Compiler(std::string deviceModel)
        : deviceModel_(std::move(deviceModel))
    {}

    /**
     * Places the design and emits the bitstream.
     * @throws BitstreamError when the design exceeds the partition's
     *         resource capacity or does not fit in the frame budget.
     */
    CompiledDesign compile(const netlist::Netlist &design,
                           const PartitionGeometry &geometry) const;

  private:
    std::string deviceModel_;
};

/**
 * Extracts the netlist back out of a (decrypted) bitstream body —
 * this is what the device's configuration logic does after loading.
 * @throws BitstreamError if the body does not carry a valid design.
 */
netlist::Netlist extractDesign(ByteView body);

} // namespace salus::bitstream

#endif // SALUS_BITSTREAM_COMPILER_HPP
