#include "bitstream/logic_location.hpp"

#include "common/errors.hpp"
#include "common/serde.hpp"

namespace salus::bitstream {

std::optional<LogicLocationEntry>
LogicLocationFile::find(const std::string &cellPath) const
{
    for (const auto &e : entries_) {
        if (e.cellPath == cellPath)
            return e;
    }
    return std::nullopt;
}

Bytes
LogicLocationFile::serialize() const
{
    BinaryWriter w;
    w.writeU32(uint32_t(entries_.size()));
    for (const auto &e : entries_) {
        w.writeString(e.cellPath);
        w.writeU64(e.fileOffset);
        w.writeU32(e.length);
    }
    return w.take();
}

LogicLocationFile
LogicLocationFile::deserialize(ByteView data)
{
    try {
        BinaryReader r(data);
        LogicLocationFile ll;
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            LogicLocationEntry e;
            e.cellPath = r.readString();
            e.fileOffset = r.readU64();
            e.length = r.readU32();
            ll.add(std::move(e));
        }
        return ll;
    } catch (const SerdeError &e) {
        throw BitstreamError(std::string("logic-location parse: ") +
                             e.what());
    }
}

} // namespace salus::bitstream
