#include "accel/workloads.hpp"

#include "common/errors.hpp"

namespace salus::accel {

const std::vector<WorkloadSpec> &
allWorkloads()
{
    // Resource vectors are the paper's Table 5 rows (LUT / FF / BRAM);
    // DSP counts are not reported there, so they are estimated from
    // the kernels' MAC width.
    static const std::vector<WorkloadSpec> specs = {
        // Conv's pipeline width is calibrated to the paper's own
        // measurement: their FPGA Conv (1522 ms) beats the CPU
        // (3039 ms) by only ~2x, implying a modest SDAccel-example
        // engine rather than a wide systolic array.
        {KernelId::Conv, "Conv", {19735, 20169, 329, 512}, 12, 1.0},
        {KernelId::Affine, "Affine", {32014, 36382, 543, 64}, 16, 1.0},
        {KernelId::Rendering, "Rendering",
         {29132, 35731, 142, 96}, 32, 1.0},
        {KernelId::FaceDetect, "FaceDetect",
         {31956, 36201, 62, 128}, 32, 1.0},
        {KernelId::NnSearch, "NNSearch",
         {49069, 42568, 122, 256}, 64, 0.5},
    };
    return specs;
}

const WorkloadSpec &
workload(KernelId id)
{
    for (const auto &spec : allWorkloads()) {
        if (spec.id == id)
            return spec;
    }
    throw SalusError("unknown workload");
}

netlist::Cell
accelCellFor(const WorkloadSpec &spec)
{
    netlist::Cell cell;
    cell.path = std::string(spec.name) + "_engine";
    cell.kind = netlist::CellKind::Logic;
    cell.behaviorId = uint32_t(spec.id);
    cell.resources = spec.resources;
    return cell;
}

} // namespace salus::accel
