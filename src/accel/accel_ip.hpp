/**
 * @file
 * The generic accelerator fabric block. Each of the five kernels is
 * deployed as an AccelIp instance whose behaviour id selects the
 * kernel; the block pulls its input from device DRAM, runs the
 * developer's AES-CTR decryption at the memory interface (§6.4),
 * executes the kernel, optionally re-encrypts, and writes the result
 * back to DRAM.
 *
 * Register map (byte offsets within the accelerator window, reachable
 * both via the SM secure channel and the direct window):
 *   0x00 CMD         (w) 1 = run
 *   0x08 STATUS      (r) 0 idle, 1 done, 2 error
 *   0x10 INPUT_ADDR  (w)
 *   0x18 INPUT_LEN   (w)
 *   0x20 OUTPUT_ADDR (w)
 *   0x28 FLAGS       (w) bit0 input encrypted, bit1 encrypt output
 *   0x30 OUTPUT_LEN  (r)
 *   0x38 JOB_ID      (w) CTR nonce basis
 *   0x40..0x58 KEY0..KEY3 (w, never readable) data key, via §4.5
 *   0x60 OPS         (r) arithmetic ops of the last job (cycle model)
 */

#ifndef SALUS_ACCEL_ACCEL_IP_HPP
#define SALUS_ACCEL_ACCEL_IP_HPP

#include "accel/kernels.hpp"
#include "fpga/device.hpp"

namespace salus::accel {

/** Accelerator register offsets. */
constexpr uint32_t kAccRegCmd = 0x00;
constexpr uint32_t kAccRegStatus = 0x08;
constexpr uint32_t kAccRegInputAddr = 0x10;
constexpr uint32_t kAccRegInputLen = 0x18;
constexpr uint32_t kAccRegOutputAddr = 0x20;
constexpr uint32_t kAccRegFlags = 0x28;
constexpr uint32_t kAccRegOutputLen = 0x30;
constexpr uint32_t kAccRegJobId = 0x38;
constexpr uint32_t kAccRegKey0 = 0x40;
constexpr uint32_t kAccRegOps = 0x60;

/** FLAGS bits. */
constexpr uint64_t kAccFlagInputEncrypted = 1;
constexpr uint64_t kAccFlagEncryptOutput = 2;
/** Authenticated (AES-GCM) memory mode — the integrity extension the
 *  paper delegates to developers (§3.1): DMA tamper is detected, not
 *  just garbled. Mutually exclusive with the CTR flags per direction. */
constexpr uint64_t kAccFlagInputAuthenticated = 4;
constexpr uint64_t kAccFlagAuthenticateOutput = 8;

/** Accelerator STATUS values. */
constexpr uint64_t kAccStatusIdle = 0;
constexpr uint64_t kAccStatusDone = 1;
constexpr uint64_t kAccStatusError = 2;

/** Fabric-side behaviour wrapping one kernel. */
class AccelIp : public fpga::IpBehavior
{
  public:
    AccelIp(KernelId kernel, const fpga::FabricServices &services);

    uint64_t readRegister(uint32_t addr) override;
    void writeRegister(uint32_t addr, uint64_t value) override;
    void reset() override;

    /** Registers all five kernels in the IP catalog (idempotent). */
    static void registerAll();

  private:
    void run();

    KernelId kernel_;
    fpga::DeviceDram *dram_;

    uint64_t status_ = kAccStatusIdle;
    uint64_t inputAddr_ = 0, inputLen_ = 0, outputAddr_ = 0;
    uint64_t flags_ = 0, jobId_ = 0, outputLen_ = 0, ops_ = 0;
    uint8_t key_[32] = {};
};

} // namespace salus::accel

#endif // SALUS_ACCEL_ACCEL_IP_HPP
