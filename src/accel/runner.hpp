/**
 * @file
 * Execution-mode runners for the §6.4 evaluation: the same kernel run
 * as (a) plain CPU, (b) CPU inside a TEE, (c) plain FPGA and (d) FPGA
 * TEE (the full Salus pipeline through the simulated device). Results
 * carry both real measured compute time and the modelled end-to-end
 * time; EXPERIMENTS.md explains which column reproduces which paper
 * number.
 */

#ifndef SALUS_ACCEL_RUNNER_HPP
#define SALUS_ACCEL_RUNNER_HPP

#include <string>

#include "accel/workloads.hpp"
#include "salus/testbed.hpp"
#include "sim/clock.hpp"

namespace salus::accel {

/** Outcome of one workload execution. */
struct RunResult
{
    std::string mode;
    sim::Nanos totalTime = 0;    ///< modelled end-to-end time
    sim::Nanos computeTime = 0;  ///< compute portion of the model
    sim::Nanos overheadTime = 0; ///< TEE-induced portion
    size_t inputBytes = 0;
    size_t outputBytes = 0;
    bool outputCorrect = false;  ///< equals the plain reference output
    /** Authenticated-memory mode only: an integrity violation was
     *  positively detected (GCM tag mismatch). */
    bool tamperDetected = false;
};

/** Drives one workload through all execution modes. */
class WorkloadRunner
{
  public:
    /**
     * Generates the input and computes the reference output.
     * @param scale input-size scale (1.0 = paper-like).
     */
    WorkloadRunner(KernelId id, uint64_t seed, double scale);

    /** CPU, no TEE: real measured kernel time. */
    RunResult runCpuPlain();

    /**
     * CPU inside a TEE: measured kernel time plus (real) AES-CTR
     * boundary crypto plus the EPC memory-encryption model.
     */
    RunResult runCpuTee();

    /** FPGA, no TEE: cycle model + plaintext PCIe transfers. */
    RunResult runFpgaPlain(const sim::CostModel &cost);

    /**
     * FPGA TEE: executes the REAL Salus pipeline on the testbed —
     * data key over the secure register channel, encrypted DMA in,
     * kernel in the fabric behind the SM logic, encrypted DMA out —
     * and reports the cycle model + measured virtual bus time.
     * @pre tb.runDeployment() already succeeded with this workload's CL.
     */
    RunResult runFpgaTee(core::Testbed &tb);

    /**
     * FPGA TEE with *authenticated* memory traffic (AES-GCM instead
     * of plain CTR) — the integrity extension. A DMA-tampering shell
     * causes positive detection (tamperDetected) rather than garbage.
     */
    RunResult runFpgaTeeAuthenticated(core::Testbed &tb);

    const Bytes &input() const { return input_; }
    const Bytes &reference() const { return reference_; }
    KernelId id() const { return id_; }

  private:
    sim::Nanos fpgaComputeTime() const;

    KernelId id_;
    Bytes input_;
    Bytes reference_;
    uint64_t ops_;
};

} // namespace salus::accel

#endif // SALUS_ACCEL_RUNNER_HPP
