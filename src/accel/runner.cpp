#include "accel/runner.hpp"

#include <chrono>

#include "accel/accel_ip.hpp"
#include "accel/mem_crypto.hpp"
#include "common/errors.hpp"

namespace salus::accel {

namespace {

/** Real wall-clock measurement of a callable, in virtual Nanos. */
template <typename F>
sim::Nanos
measure(F &&fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    return sim::Nanos(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
}

/** Effective EPC/MEE bandwidth for enclave memory traffic (model). */
constexpr double kEpcBytesPerSec = 2.0e9;

/** ECALL/OCALL pair at each boundary crossing. */
constexpr sim::Nanos kEnclaveTransition = 10 * sim::kUs;

/** Per-job accelerator launch overhead (driver + doorbell). */
constexpr sim::Nanos kAccelLaunch = 10 * sim::kUs;

/** Inline AES-CTR engine line rate at the memory interface (§6.4:
 *  "high-throughput memory traffic encryption"). */
constexpr double kInlineAesBytesPerSec = 16e9;

} // namespace

WorkloadRunner::WorkloadRunner(KernelId id, uint64_t seed, double scale)
    : id_(id), input_(generateInput(id, seed, scale)),
      reference_(runKernel(id, input_)), ops_(kernelOps(id, input_))
{
}

sim::Nanos
WorkloadRunner::fpgaComputeTime() const
{
    const WorkloadSpec &spec = workload(id_);
    double seconds =
        double(ops_) / (double(spec.opsPerCycle) * kFpgaClockHz);
    return sim::Nanos(seconds * double(sim::kSec)) + kAccelLaunch;
}

RunResult
WorkloadRunner::runCpuPlain()
{
    RunResult res;
    res.mode = "CPU";
    res.inputBytes = input_.size();

    Bytes out;
    res.computeTime = measure([&] { out = runKernel(id_, input_); });
    res.totalTime = res.computeTime;
    res.outputBytes = out.size();
    res.outputCorrect = out == reference_;
    return res;
}

RunResult
WorkloadRunner::runCpuTee()
{
    RunResult res;
    res.mode = "CPU+TEE";
    res.inputBytes = input_.size();

    // Boundary crypto is real work: the enclave decrypts the incoming
    // ciphertext and (depending on the workload) encrypts the result,
    // like the paper's OpenSSL-based data movement (§6.4).
    Bytes dataKey(32, 0x5a);
    Bytes wire = memCrypt(dataKey, 1, Dir::Input, input_);

    Bytes out;
    sim::Nanos cryptoTime = 0;
    res.computeTime = measure([&] {
        cryptoTime += measure([&] {
            wire = memCrypt(dataKey, 1, Dir::Input, wire); // decrypt
        });
        out = runKernel(id_, wire);
        if (outputEncrypted(id_)) {
            cryptoTime += measure(
                [&] { out = memCrypt(dataKey, 1, Dir::Output, out); });
        }
    });

    // EPC model: every enclave store/load is transparently encrypted
    // by the MEE; traffic = factor * working set.
    double traffic = enclaveTrafficFactor(id_) * double(input_.size());
    sim::Nanos epc =
        sim::Nanos(traffic / kEpcBytesPerSec * double(sim::kSec));
    res.overheadTime = cryptoTime + epc + 2 * kEnclaveTransition;
    res.totalTime = res.computeTime + epc + 2 * kEnclaveTransition;

    if (outputEncrypted(id_))
        out = memCrypt(dataKey, 1, Dir::Output, out); // verify copy
    res.outputBytes = out.size();
    res.outputCorrect = out == reference_;
    return res;
}

RunResult
WorkloadRunner::runFpgaPlain(const sim::CostModel &cost)
{
    RunResult res;
    res.mode = "FPGA";
    res.inputBytes = input_.size();

    // Execute the kernel for real (output correctness), but the time
    // is the fabric cycle model plus plaintext PCIe transfers.
    Bytes out = runKernel(id_, input_);
    res.outputBytes = out.size();
    res.outputCorrect = out == reference_;

    res.computeTime = fpgaComputeTime();
    // Mirror the TEE path's bus activity minus the security: two DMA
    // ioctls plus the job-control MMIO writes.
    res.totalTime = res.computeTime +
                    sim::transferTime(cost.pcieBandwidth,
                                      input_.size() + out.size()) +
                    2 * cost.pcieRtt + 8 * cost.mmioLatency;
    return res;
}

RunResult
WorkloadRunner::runFpgaTee(core::Testbed &tb)
{
    RunResult res;
    res.mode = "FPGA+TEE";
    res.inputBytes = input_.size();

    if (!tb.userApp().hasDataKey())
        throw SalusError("runFpgaTee: deployment did not finish");

    core::UserEnclaveApp &user = tb.userApp();
    shell::Shell &sh = tb.shell();

    // 1. Data key over the SECURE register channel (§4.5). This is
    //    per-session provisioning, not per-job work, so it is not
    //    counted in the job's bus time (the paper's Table 6 likewise
    //    reports steady-state kernel time).
    if (!user.pushDataKeyToCl(kAccRegKey0))
        throw SalusError("runFpgaTee: data key push failed");

    sim::Nanos busStart = tb.clock().now();

    // 2. Encrypted input over the direct DMA path.
    const uint64_t jobId = 1;
    Bytes wire = memCrypt(user.dataKey(), jobId, Dir::Input, input_);
    const uint64_t inAddr = 0;
    const uint64_t outAddr = (wire.size() + 4095) & ~uint64_t(4095);
    sh.dmaWrite(inAddr, wire);

    // 3. Job control over the direct (unsecured) window -- addresses
    //    and flags are not confidential; payloads are.
    bool encOut = outputEncrypted(id_);
    sh.registerWrite(pcie::Window::Direct, kAccRegInputAddr, inAddr);
    sh.registerWrite(pcie::Window::Direct, kAccRegInputLen, wire.size());
    sh.registerWrite(pcie::Window::Direct, kAccRegOutputAddr, outAddr);
    sh.registerWrite(pcie::Window::Direct, kAccRegJobId, jobId);
    sh.registerWrite(pcie::Window::Direct, kAccRegFlags,
                     kAccFlagInputEncrypted |
                         (encOut ? kAccFlagEncryptOutput : 0));
    sh.registerWrite(pcie::Window::Direct, kAccRegCmd, 1);

    if (sh.registerRead(pcie::Window::Direct, kAccRegStatus) !=
        kAccStatusDone) {
        throw SalusError("runFpgaTee: accelerator reported an error");
    }
    uint64_t outLen =
        sh.registerRead(pcie::Window::Direct, kAccRegOutputLen);

    // 4. Result back; decrypt in the enclave when protected.
    Bytes out = sh.dmaRead(outAddr, outLen);
    if (encOut)
        out = memCrypt(user.dataKey(), jobId, Dir::Output, out);

    res.outputBytes = out.size();
    res.outputCorrect = out == reference_;

    // Model: fabric cycles + the virtual bus time the run consumed.
    // The inline AES engines run at line rate, so the TEE adds only
    // control-path work (paper Table 6: <= 1.05x).
    sim::Nanos busTime = tb.clock().now() - busStart;
    sim::Nanos inlineAes = sim::transferTime(
        kInlineAesBytesPerSec, wire.size() + out.size());
    res.computeTime = fpgaComputeTime();
    res.overheadTime = busTime + inlineAes;
    res.totalTime = res.computeTime + busTime + inlineAes;
    return res;
}

RunResult
WorkloadRunner::runFpgaTeeAuthenticated(core::Testbed &tb)
{
    RunResult res;
    res.mode = "FPGA+TEE+auth";
    res.inputBytes = input_.size();

    core::UserEnclaveApp &user = tb.userApp();
    shell::Shell &sh = tb.shell();
    if (!user.pushDataKeyToCl(kAccRegKey0))
        throw SalusError("runFpgaTeeAuthenticated: key push failed");

    const uint64_t jobId = 2;
    Bytes wire = memSealAuth(user.dataKey(), jobId, Dir::Input, input_);
    const uint64_t inAddr = 0;
    const uint64_t outAddr = (wire.size() + 4095) & ~uint64_t(4095);
    sh.dmaWrite(inAddr, wire);

    sh.registerWrite(pcie::Window::Direct, kAccRegInputAddr, inAddr);
    sh.registerWrite(pcie::Window::Direct, kAccRegInputLen, wire.size());
    sh.registerWrite(pcie::Window::Direct, kAccRegOutputAddr, outAddr);
    sh.registerWrite(pcie::Window::Direct, kAccRegJobId, jobId);
    sh.registerWrite(pcie::Window::Direct, kAccRegFlags,
                     kAccFlagInputAuthenticated |
                         kAccFlagAuthenticateOutput);
    sh.registerWrite(pcie::Window::Direct, kAccRegCmd, 1);

    if (sh.registerRead(pcie::Window::Direct, kAccRegStatus) !=
        kAccStatusDone) {
        res.tamperDetected = true; // fabric-side GCM rejection
        return res;
    }
    uint64_t outLen =
        sh.registerRead(pcie::Window::Direct, kAccRegOutputLen);
    Bytes sealed = sh.dmaRead(outAddr, outLen);
    auto out = memOpenAuth(user.dataKey(), jobId, Dir::Output, sealed);
    if (!out) {
        res.tamperDetected = true; // host-side GCM rejection
        return res;
    }

    res.outputBytes = out->size();
    res.outputCorrect = *out == reference_;
    res.computeTime = fpgaComputeTime();
    res.totalTime = res.computeTime;
    return res;
}

} // namespace salus::accel
