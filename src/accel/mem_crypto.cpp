#include "accel/mem_crypto.hpp"

#include <cstring>

#include "crypto/aes_ctr.hpp"
#include "crypto/aes_gcm.hpp"

namespace salus::accel {

Bytes
memCounterBlock(uint64_t jobId, Dir dir)
{
    Bytes block(16, 0);
    std::memcpy(block.data(), dir == Dir::Input ? "ACCLIN__" : "ACCLOUT_",
                8);
    storeLe64(block.data() + 8, jobId);
    return block;
}

Bytes
memCrypt(ByteView dataKey, uint64_t jobId, Dir dir, ByteView data)
{
    crypto::AesCtr ctr(dataKey, memCounterBlock(jobId, dir));
    return ctr.crypt(data);
}

namespace {

Bytes
authIv(uint64_t jobId, Dir dir)
{
    Bytes iv(12, 0);
    iv[0] = uint8_t(dir);
    storeLe64(iv.data() + 4, jobId);
    return iv;
}

} // namespace

Bytes
memSealAuth(ByteView dataKey, uint64_t jobId, Dir dir, ByteView data)
{
    crypto::AesGcm gcm(dataKey);
    crypto::GcmSealed sealed =
        gcm.seal(authIv(jobId, dir), ByteView(), data);
    return concatBytes({sealed.ciphertext, sealed.tag});
}

std::optional<Bytes>
memOpenAuth(ByteView dataKey, uint64_t jobId, Dir dir, ByteView sealed)
{
    if (sealed.size() < crypto::kGcmTagSize)
        return std::nullopt;
    size_t ctLen = sealed.size() - crypto::kGcmTagSize;
    crypto::AesGcm gcm(dataKey);
    return gcm.open(authIv(jobId, dir), ByteView(),
                    ByteView(sealed.data(), ctLen),
                    ByteView(sealed.data() + ctLen,
                             crypto::kGcmTagSize));
}

} // namespace salus::accel
