#include "accel/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/errors.hpp"
#include "common/serde.hpp"

namespace salus::accel {

namespace {

float
readF32(BinaryReader &r)
{
    uint32_t raw = r.readU32();
    float f;
    std::memcpy(&f, &raw, 4);
    return f;
}

void
writeF32(BinaryWriter &w, float f)
{
    uint32_t raw;
    std::memcpy(&raw, &f, 4);
    w.writeU32(raw);
}

float
randUnit(crypto::RandomSource &rng)
{
    return float(rng.nextU64() % 1000000) / 1000000.0f;
}

// ===================================================== Conv =========

struct ConvInput
{
    uint32_t width, height, inCh, outCh;
    std::vector<float> weights; // [outCh][3][3][inCh]
    std::vector<float> image;   // [height][width][inCh]
};

ConvInput
parseConv(ByteView input)
{
    BinaryReader r(input);
    ConvInput c;
    c.width = r.readU32();
    c.height = r.readU32();
    c.inCh = r.readU32();
    c.outCh = r.readU32();
    if (c.width == 0 || c.height == 0 || c.inCh == 0 || c.outCh == 0 ||
        c.width > 4096 || c.height > 4096 || c.inCh > 1024 ||
        c.outCh > 1024) {
        throw SalusError("conv: bad dimensions");
    }
    size_t wn = size_t(9) * c.inCh * c.outCh;
    size_t in = size_t(c.width) * c.height * c.inCh;
    if (r.remaining() != 4 * (wn + in))
        throw SalusError("conv: buffer size mismatch");
    c.weights.resize(wn);
    for (auto &v : c.weights)
        v = readF32(r);
    c.image.resize(in);
    for (auto &v : c.image)
        v = readF32(r);
    return c;
}

Bytes
runConv(ByteView input)
{
    ConvInput c = parseConv(input);
    const int W = int(c.width), H = int(c.height);
    const int IC = int(c.inCh), OC = int(c.outCh);

    std::vector<float> out(size_t(W) * H * OC, 0.0f);
    // 3x3 same-padding convolution, HWC layout.
    for (int y = 0; y < H; ++y) {
        for (int x = 0; x < W; ++x) {
            for (int oc = 0; oc < OC; ++oc) {
                float acc = 0.0f;
                for (int ky = -1; ky <= 1; ++ky) {
                    int sy = y + ky;
                    if (sy < 0 || sy >= H)
                        continue;
                    for (int kx = -1; kx <= 1; ++kx) {
                        int sx = x + kx;
                        if (sx < 0 || sx >= W)
                            continue;
                        const float *pix =
                            &c.image[(size_t(sy) * W + sx) * IC];
                        const float *wt =
                            &c.weights[((size_t(oc) * 3 + (ky + 1)) * 3 +
                                        (kx + 1)) *
                                       IC];
                        for (int ic = 0; ic < IC; ++ic)
                            acc += pix[ic] * wt[ic];
                    }
                }
                out[(size_t(y) * W + x) * OC + oc] = acc;
            }
        }
    }

    BinaryWriter w;
    for (float v : out)
        writeF32(w, v);
    return w.take();
}

Bytes
genConv(uint64_t seed, double scale)
{
    crypto::CtrDrbg rng(seed ^ 0xc0441ull);
    // The paper's Conv uses a 3x3x256 kernel (Table 4): keep the high
    // channel count (compute/byte ratio) and scale the spatial dims.
    uint32_t dim = std::max(8u, uint32_t(24 * scale));
    uint32_t ch = std::max(8u, uint32_t(256 * scale));

    BinaryWriter w;
    w.writeU32(dim);
    w.writeU32(dim);
    w.writeU32(ch);
    w.writeU32(ch);
    size_t wn = size_t(9) * ch * ch;
    for (size_t i = 0; i < wn; ++i)
        writeF32(w, randUnit(rng) - 0.5f);
    size_t in = size_t(dim) * dim * ch;
    for (size_t i = 0; i < in; ++i)
        writeF32(w, randUnit(rng));
    return w.take();
}

uint64_t
opsConv(ByteView input)
{
    BinaryReader r(input);
    uint64_t w = r.readU32(), h = r.readU32(), ic = r.readU32(),
             oc = r.readU32();
    return w * h * 9 * ic * oc;
}

// ===================================================== Affine =======

Bytes
runAffine(ByteView input)
{
    BinaryReader r(input);
    uint32_t width = r.readU32();
    uint32_t height = r.readU32();
    if (width == 0 || height == 0 || width > 8192 || height > 8192)
        throw SalusError("affine: bad dimensions");
    float m[6];
    for (auto &v : m)
        v = readF32(r);
    if (r.remaining() != size_t(width) * height)
        throw SalusError("affine: buffer size mismatch");
    Bytes src = r.readRaw(size_t(width) * height);

    Bytes dst(size_t(width) * height, 0);
    // Inverse-map each destination pixel and sample bilinearly.
    for (uint32_t y = 0; y < height; ++y) {
        for (uint32_t x = 0; x < width; ++x) {
            float sx = m[0] * float(x) + m[1] * float(y) + m[2];
            float sy = m[3] * float(x) + m[4] * float(y) + m[5];
            if (sx < 0 || sy < 0 || sx >= float(width - 1) ||
                sy >= float(height - 1)) {
                continue;
            }
            int x0 = int(sx), y0 = int(sy);
            float fx = sx - float(x0), fy = sy - float(y0);
            auto at = [&](int xx, int yy) {
                return float(src[size_t(yy) * width + xx]);
            };
            float v = at(x0, y0) * (1 - fx) * (1 - fy) +
                      at(x0 + 1, y0) * fx * (1 - fy) +
                      at(x0, y0 + 1) * (1 - fx) * fy +
                      at(x0 + 1, y0 + 1) * fx * fy;
            dst[size_t(y) * width + x] =
                uint8_t(std::clamp(v, 0.0f, 255.0f));
        }
    }
    return dst;
}

Bytes
genAffine(uint64_t seed, double scale)
{
    crypto::CtrDrbg rng(seed ^ 0xaff13ull);
    uint32_t dim = std::max(32u, uint32_t(512 * scale));

    BinaryWriter w;
    w.writeU32(dim);
    w.writeU32(dim);
    // Rotation + mild scaling + translation.
    float angle = randUnit(rng) * 3.14159f / 4;
    float s = 0.8f + 0.4f * randUnit(rng);
    writeF32(w, std::cos(angle) / s);
    writeF32(w, -std::sin(angle) / s);
    writeF32(w, float(dim) * 0.1f);
    writeF32(w, std::sin(angle) / s);
    writeF32(w, std::cos(angle) / s);
    writeF32(w, float(dim) * 0.05f);
    Bytes pixels(size_t(dim) * dim);
    crypto::CtrDrbg prng(seed ^ 0x9147ull);
    prng.fill(pixels.data(), pixels.size());
    w.writeRaw(pixels);
    return w.take();
}

uint64_t
opsAffine(ByteView input)
{
    BinaryReader r(input);
    uint64_t w = r.readU32(), h = r.readU32();
    return w * h * 16;
}

// ==================================================== Rendering =====

Bytes
runRendering(ByteView input)
{
    BinaryReader r(input);
    uint32_t numTris = r.readU32();
    uint32_t fbDim = r.readU32();
    if (fbDim == 0 || fbDim > 2048 || numTris > 1000000)
        throw SalusError("rendering: bad parameters");
    if (r.remaining() != size_t(numTris) * 9 * 4)
        throw SalusError("rendering: buffer size mismatch");

    std::vector<float> zbuf(size_t(fbDim) * fbDim, 1e9f);
    Bytes fb(size_t(fbDim) * fbDim, 0);

    for (uint32_t t = 0; t < numTris; ++t) {
        float v[9];
        for (auto &f : v)
            f = readF32(r);
        // Project to screen space (orthographic).
        float x0 = v[0] * fbDim, y0 = v[1] * fbDim, z0 = v[2];
        float x1 = v[3] * fbDim, y1 = v[4] * fbDim, z1 = v[5];
        float x2 = v[6] * fbDim, y2 = v[7] * fbDim, z2 = v[8];

        int minX = std::max(0, int(std::floor(
                                   std::min({x0, x1, x2}))));
        int maxX = std::min(int(fbDim) - 1,
                            int(std::ceil(std::max({x0, x1, x2}))));
        int minY = std::max(0, int(std::floor(
                                   std::min({y0, y1, y2}))));
        int maxY = std::min(int(fbDim) - 1,
                            int(std::ceil(std::max({y0, y1, y2}))));

        float area = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0);
        if (std::fabs(area) < 1e-6f)
            continue;
        for (int py = minY; py <= maxY; ++py) {
            for (int px = minX; px <= maxX; ++px) {
                float cx = float(px) + 0.5f, cy = float(py) + 0.5f;
                float w0 = ((x1 - cx) * (y2 - cy) -
                            (x2 - cx) * (y1 - cy)) /
                           area;
                float w1 = ((x2 - cx) * (y0 - cy) -
                            (x0 - cx) * (y2 - cy)) /
                           area;
                float w2 = 1.0f - w0 - w1;
                if (w0 < 0 || w1 < 0 || w2 < 0)
                    continue;
                float z = w0 * z0 + w1 * z1 + w2 * z2;
                size_t idx = size_t(py) * fbDim + px;
                if (z < zbuf[idx]) {
                    zbuf[idx] = z;
                    fb[idx] = uint8_t(
                        std::clamp(255.0f * (1.0f - z), 0.0f, 255.0f));
                }
            }
        }
    }
    return fb;
}

Bytes
genRendering(uint64_t seed, double scale)
{
    crypto::CtrDrbg rng(seed ^ 0x3e4dull);
    uint32_t numTris = std::max(16u, uint32_t(3192 * scale));
    uint32_t fbDim = 256;

    BinaryWriter w;
    w.writeU32(numTris);
    w.writeU32(fbDim);
    for (uint32_t t = 0; t < numTris; ++t) {
        float cx = randUnit(rng), cy = randUnit(rng),
              cz = randUnit(rng);
        for (int vtx = 0; vtx < 3; ++vtx) {
            writeF32(w, std::clamp(cx + 0.05f * (randUnit(rng) - 0.5f),
                                   0.0f, 1.0f));
            writeF32(w, std::clamp(cy + 0.05f * (randUnit(rng) - 0.5f),
                                   0.0f, 1.0f));
            writeF32(w, std::clamp(cz + 0.02f * (randUnit(rng) - 0.5f),
                                   0.0f, 1.0f));
        }
    }
    return w.take();
}

uint64_t
opsRendering(ByteView input)
{
    BinaryReader r(input);
    uint64_t numTris = r.readU32();
    uint64_t fbDim = r.readU32();
    // Average covered bounding box ~ (fb*0.05)^2 pixels, 12 ops each.
    uint64_t bbox = std::max<uint64_t>(1, (fbDim / 20) * (fbDim / 20));
    return numTris * bbox * 12;
}

// =================================================== FaceDetect =====

struct HaarRect
{
    int x, y, w, h;
};

struct HaarFeature
{
    HaarRect r1, r2;
    float w1, w2, threshold, passVal, failVal;
};

struct CascadeStage
{
    float threshold;
    std::vector<HaarFeature> features;
};

constexpr int kWindow = 24;

Bytes
runFaceDetect(ByteView input)
{
    BinaryReader r(input);
    uint32_t width = r.readU32();
    uint32_t height = r.readU32();
    if (width < kWindow || height < kWindow || width > 4096 ||
        height > 4096) {
        throw SalusError("facedetect: bad dimensions");
    }
    uint32_t numStages = r.readU32();
    if (numStages == 0 || numStages > 64)
        throw SalusError("facedetect: bad cascade");
    std::vector<CascadeStage> cascade(numStages);
    for (auto &stage : cascade) {
        uint32_t nf = r.readU32();
        if (nf > 256)
            throw SalusError("facedetect: bad cascade");
        stage.threshold = readF32(r);
        stage.features.resize(nf);
        for (auto &f : stage.features) {
            f.r1 = {int(r.readU32() % kWindow), int(r.readU32() % kWindow),
                    1 + int(r.readU32() % (kWindow / 2)),
                    1 + int(r.readU32() % (kWindow / 2))};
            f.r2 = {int(r.readU32() % kWindow), int(r.readU32() % kWindow),
                    1 + int(r.readU32() % (kWindow / 2)),
                    1 + int(r.readU32() % (kWindow / 2))};
            f.w1 = readF32(r);
            f.w2 = readF32(r);
            f.threshold = readF32(r);
            f.passVal = readF32(r);
            f.failVal = readF32(r);
        }
    }
    if (r.remaining() != size_t(width) * height)
        throw SalusError("facedetect: buffer size mismatch");
    Bytes image = r.readRaw(size_t(width) * height);

    // Integral image.
    std::vector<uint64_t> integral(size_t(width + 1) * (height + 1), 0);
    auto ii = [&](size_t x, size_t y) -> uint64_t & {
        return integral[y * (width + 1) + x];
    };
    for (uint32_t y = 1; y <= height; ++y) {
        uint64_t rowSum = 0;
        for (uint32_t x = 1; x <= width; ++x) {
            rowSum += image[size_t(y - 1) * width + (x - 1)];
            ii(x, y) = ii(x, y - 1) + rowSum;
        }
    }
    auto rectSum = [&](int bx, int by, const HaarRect &rect,
                       float s) -> float {
        int x0 = bx + int(float(rect.x) * s);
        int y0 = by + int(float(rect.y) * s);
        int x1 = std::min<int>(int(width), x0 + int(float(rect.w) * s));
        int y1 = std::min<int>(int(height), y0 + int(float(rect.h) * s));
        if (x0 >= x1 || y0 >= y1)
            return 0.0f;
        return float(ii(x1, y1) - ii(x0, y1) - ii(x1, y0) + ii(x0, y0));
    };

    // Multi-scale sliding window.
    struct Hit
    {
        uint16_t x, y, scalePct;
    };
    std::vector<Hit> hits;
    for (float s = 1.0f; float(kWindow) * s <= float(std::min(width,
                                                              height));
         s *= 1.5f) {
        int win = int(float(kWindow) * s);
        int step = std::max(2, win / 8);
        float norm = 1.0f / (float(win) * float(win));
        for (int by = 0; by + win < int(height); by += step) {
            for (int bx = 0; bx + win < int(width); bx += step) {
                bool pass = true;
                for (const auto &stage : cascade) {
                    float sum = 0.0f;
                    for (const auto &f : stage.features) {
                        float v = (f.w1 * rectSum(bx, by, f.r1, s) +
                                   f.w2 * rectSum(bx, by, f.r2, s)) *
                                  norm;
                        sum += v > f.threshold ? f.passVal : f.failVal;
                    }
                    if (sum < stage.threshold) {
                        pass = false;
                        break;
                    }
                }
                if (pass && hits.size() < 256) {
                    hits.push_back({uint16_t(bx), uint16_t(by),
                                    uint16_t(s * 100)});
                }
            }
        }
    }

    // Fixed-size output: count + 256 slots (stable ciphertext size).
    BinaryWriter w;
    w.writeU32(uint32_t(hits.size()));
    for (size_t i = 0; i < 256; ++i) {
        Hit h = i < hits.size() ? hits[i] : Hit{0, 0, 0};
        w.writeU16(h.x);
        w.writeU16(h.y);
        w.writeU16(h.scalePct);
    }
    return w.take();
}

Bytes
genFaceDetect(uint64_t seed, double scale)
{
    crypto::CtrDrbg rng(seed ^ 0xfacedull);
    uint32_t width = std::max(48u, uint32_t(320 * scale));
    uint32_t height = std::max(48u, uint32_t(240 * scale));

    BinaryWriter w;
    w.writeU32(width);
    w.writeU32(height);
    const uint32_t stageSizes[3] = {4, 8, 12};
    w.writeU32(3);
    for (uint32_t nf : stageSizes) {
        w.writeU32(nf);
        writeF32(w, float(nf) * 0.1f); // stage threshold
        for (uint32_t i = 0; i < nf; ++i) {
            for (int j = 0; j < 8; ++j)
                w.writeU32(uint32_t(rng.nextU64()));
            writeF32(w, 1.0f);
            writeF32(w, -1.5f);
            writeF32(w, 10.0f * (randUnit(rng) - 0.5f));
            writeF32(w, 0.8f);
            writeF32(w, -0.2f);
        }
    }
    Bytes image(size_t(width) * height);
    crypto::CtrDrbg prng(seed ^ 0x1471ull);
    prng.fill(image.data(), image.size());
    w.writeRaw(image);
    return w.take();
}

uint64_t
opsFaceDetect(ByteView input)
{
    BinaryReader r(input);
    uint64_t w = r.readU32(), h = r.readU32();
    // windows * avg features evaluated * rect ops, summed over scales
    // (geometric series in 1/1.5^2 ~= x1.8 of the base scale).
    uint64_t windows = (w / 3) * (h / 3);
    return windows * 8 * 10 * 18 / 10;
}

// ==================================================== NNSearch ======

Bytes
runNnSearch(ByteView input)
{
    BinaryReader r(input);
    uint32_t numPoints = r.readU32();
    uint32_t numQueries = r.readU32();
    uint32_t dim = r.readU32();
    if (numPoints == 0 || numQueries == 0 || dim == 0 ||
        numPoints > 1u << 20 || numQueries > 1u << 16 || dim > 1024) {
        throw SalusError("nnsearch: bad parameters");
    }
    if (r.remaining() !=
        4 * (size_t(numPoints) + numQueries) * dim) {
        throw SalusError("nnsearch: buffer size mismatch");
    }
    std::vector<float> points(size_t(numPoints) * dim);
    for (auto &v : points)
        v = readF32(r);
    std::vector<float> queries(size_t(numQueries) * dim);
    for (auto &v : queries)
        v = readF32(r);

    BinaryWriter w;
    for (uint32_t q = 0; q < numQueries; ++q) {
        const float *qv = &queries[size_t(q) * dim];
        uint32_t best = 0;
        float bestDist = 1e30f;
        for (uint32_t p = 0; p < numPoints; ++p) {
            const float *pv = &points[size_t(p) * dim];
            float d = 0.0f;
            for (uint32_t i = 0; i < dim; ++i) {
                float diff = qv[i] - pv[i];
                d += diff * diff;
            }
            if (d < bestDist) {
                bestDist = d;
                best = p;
            }
        }
        w.writeU32(best);
        writeF32(w, bestDist);
    }
    return w.take();
}

Bytes
genNnSearch(uint64_t seed, double scale)
{
    crypto::CtrDrbg rng(seed ^ 0x22ull);
    uint32_t numPoints = std::max(64u, uint32_t(4096 * scale));
    uint32_t numQueries = std::max(4u, uint32_t(64 * scale));
    uint32_t dim = 128;

    BinaryWriter w;
    w.writeU32(numPoints);
    w.writeU32(numQueries);
    w.writeU32(dim);
    for (size_t i = 0; i < size_t(numPoints + numQueries) * dim; ++i)
        writeF32(w, randUnit(rng));
    return w.take();
}

uint64_t
opsNnSearch(ByteView input)
{
    BinaryReader r(input);
    uint64_t n = r.readU32(), q = r.readU32(), d = r.readU32();
    return n * q * d * 3;
}

} // namespace

const char *
kernelName(KernelId id)
{
    switch (id) {
      case KernelId::Conv: return "Conv";
      case KernelId::Affine: return "Affine";
      case KernelId::Rendering: return "Rendering";
      case KernelId::FaceDetect: return "FaceDetect";
      case KernelId::NnSearch: return "NNSearch";
      default: return "?";
    }
}

Bytes
generateInput(KernelId id, uint64_t seed, double scale)
{
    switch (id) {
      case KernelId::Conv: return genConv(seed, scale);
      case KernelId::Affine: return genAffine(seed, scale);
      case KernelId::Rendering: return genRendering(seed, scale);
      case KernelId::FaceDetect: return genFaceDetect(seed, scale);
      case KernelId::NnSearch: return genNnSearch(seed, scale);
      default: throw SalusError("unknown kernel");
    }
}

Bytes
runKernel(KernelId id, ByteView input)
{
    try {
        switch (id) {
          case KernelId::Conv: return runConv(input);
          case KernelId::Affine: return runAffine(input);
          case KernelId::Rendering: return runRendering(input);
          case KernelId::FaceDetect: return runFaceDetect(input);
          case KernelId::NnSearch: return runNnSearch(input);
          default: throw SalusError("unknown kernel");
        }
    } catch (const SerdeError &e) {
        throw SalusError(std::string("kernel input parse: ") + e.what());
    }
}

uint64_t
kernelOps(KernelId id, ByteView input)
{
    try {
        switch (id) {
          case KernelId::Conv: return opsConv(input);
          case KernelId::Affine: return opsAffine(input);
          case KernelId::Rendering: return opsRendering(input);
          case KernelId::FaceDetect: return opsFaceDetect(input);
          case KernelId::NnSearch: return opsNnSearch(input);
          default: return 0;
        }
    } catch (const SerdeError &) {
        return 0;
    }
}

double
enclaveTrafficFactor(KernelId id)
{
    // Passes of enclave-memory traffic per input byte: compute-bound
    // kernels stream once; framebuffer/integral-image kernels rewrite
    // working sets many times (see EXPERIMENTS.md).
    switch (id) {
      case KernelId::Conv: return 2.0;
      case KernelId::Affine: return 6.0;
      case KernelId::Rendering: return 40.0;
      case KernelId::FaceDetect: return 30.0;
      case KernelId::NnSearch: return 3.0;
      default: return 1.0;
    }
}

bool
outputEncrypted(KernelId id)
{
    // §6.4: Affine and Rendering protect both directions; the ML
    // kernels (Conv, FaceDetect, NNSearch) encrypt inputs only.
    switch (id) {
      case KernelId::Affine:
      case KernelId::Rendering:
        return true;
      default:
        return false;
    }
}

} // namespace salus::accel
