/**
 * @file
 * The developer-added memory-traffic encryption of §6.4: AES-256-CTR
 * streaming over the accelerator's DRAM interface, keyed by the data
 * key the user enclave pushes through the secure register channel.
 * Host side and fabric side share these helpers, so both derive the
 * same per-job counter blocks.
 */

#ifndef SALUS_ACCEL_MEM_CRYPTO_HPP
#define SALUS_ACCEL_MEM_CRYPTO_HPP

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace salus::accel {

/** Traffic directions (distinct keystreams per job). */
enum class Dir : uint8_t { Input = 0, Output = 1 };

/** The 16-byte CTR counter block for a (job, direction). */
Bytes memCounterBlock(uint64_t jobId, Dir dir);

/** Encrypts/decrypts one direction of a job's memory traffic. */
Bytes memCrypt(ByteView dataKey, uint64_t jobId, Dir dir, ByteView data);

// ---- Authenticated mode (extension) ----------------------------------
//
// The paper delegates device-memory *integrity* to the developer
// (§3.1, citing Merkle-tree lines of work). This is the simplest such
// scheme: AES-GCM per transfer, so a DMA-tampering shell is DETECTED
// instead of merely producing garbage plaintext.

/** Authenticated-encrypts one direction: ciphertext || 16-byte tag. */
Bytes memSealAuth(ByteView dataKey, uint64_t jobId, Dir dir,
                  ByteView data);

/** Verifies + decrypts; nullopt when the transfer was tampered with. */
std::optional<Bytes> memOpenAuth(ByteView dataKey, uint64_t jobId,
                                 Dir dir, ByteView sealed);

} // namespace salus::accel

#endif // SALUS_ACCEL_MEM_CRYPTO_HPP
