/**
 * @file
 * The five benchmark kernels (paper Table 4), implemented for real:
 *
 *   Conv       - single convolution layer (SDAccel example analog)
 *   Affine     - affine transformation of a 512x512 image
 *   Rendering  - 3D triangle rasterization (Rosetta analog)
 *   FaceDetect - Viola-Jones cascade over integral images (Rosetta)
 *   NNSearch   - nearest-neighbour linear search (SDAccel example)
 *
 * Each kernel is a pure function over serialized byte buffers, so the
 * CPU reference path and the FPGA behavioural model execute the SAME
 * code; only the timing model differs between them. Inputs are
 * generated deterministically from a seed.
 */

#ifndef SALUS_ACCEL_KERNELS_HPP
#define SALUS_ACCEL_KERNELS_HPP

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "crypto/random.hpp"

namespace salus::accel {

/** Kernel identifiers (double as IP behaviour ids; see fpga/ip.hpp). */
enum class KernelId : uint32_t {
    Conv = 10,
    Affine = 11,
    Rendering = 12,
    FaceDetect = 13,
    NnSearch = 14,
};

/** Human-readable kernel name. */
const char *kernelName(KernelId id);

/**
 * Generates a deterministic input buffer for the kernel at the given
 * scale (1.0 = the default evaluation size; tests use smaller).
 */
Bytes generateInput(KernelId id, uint64_t seed, double scale = 1.0);

/**
 * Executes the kernel.
 * @throws SalusError on malformed input buffers.
 */
Bytes runKernel(KernelId id, ByteView input);

/**
 * Arithmetic work of the kernel on this input (multiply-accumulate
 * equivalents) — the basis of the FPGA cycle model.
 */
uint64_t kernelOps(KernelId id, ByteView input);

/**
 * Approximate bytes of enclave memory traffic per input byte when the
 * kernel runs on a CPU TEE (drives the EPC-overhead model; see
 * EXPERIMENTS.md for the derivation per kernel).
 */
double enclaveTrafficFactor(KernelId id);

/** Whether the paper's protected variant encrypts the output too
 *  (§6.4: Affine/Rendering both directions, ML kernels input only). */
bool outputEncrypted(KernelId id);

} // namespace salus::accel

#endif // SALUS_ACCEL_KERNELS_HPP
