#include "accel/accel_ip.hpp"

#include <cstring>

#include "accel/mem_crypto.hpp"
#include "common/errors.hpp"
#include "common/log.hpp"

namespace salus::accel {

AccelIp::AccelIp(KernelId kernel, const fpga::FabricServices &services)
    : kernel_(kernel), dram_(services.dram)
{
}

uint64_t
AccelIp::readRegister(uint32_t addr)
{
    switch (addr) {
      case kAccRegStatus: return status_;
      case kAccRegOutputLen: return outputLen_;
      case kAccRegOps: return ops_;
      default:
        // Key registers and inputs are write-only on the bus.
        return 0;
    }
}

void
AccelIp::writeRegister(uint32_t addr, uint64_t value)
{
    if (addr >= kAccRegKey0 && addr < kAccRegKey0 + 32) {
        storeLe64(key_ + (addr - kAccRegKey0), value);
        return;
    }
    switch (addr) {
      case kAccRegCmd:
        if (value == 1)
            run();
        else
            status_ = kAccStatusError;
        break;
      case kAccRegInputAddr: inputAddr_ = value; break;
      case kAccRegInputLen: inputLen_ = value; break;
      case kAccRegOutputAddr: outputAddr_ = value; break;
      case kAccRegFlags: flags_ = value; break;
      case kAccRegJobId: jobId_ = value; break;
      default: break;
    }
}

void
AccelIp::reset()
{
    status_ = kAccStatusIdle;
    inputAddr_ = inputLen_ = outputAddr_ = 0;
    flags_ = jobId_ = outputLen_ = ops_ = 0;
    secureZero(key_, sizeof(key_));
}

void
AccelIp::run()
{
    try {
        Bytes input = dram_->read(inputAddr_, inputLen_);
        if (flags_ & kAccFlagInputAuthenticated) {
            auto opened = memOpenAuth(ByteView(key_, 32), jobId_,
                                      Dir::Input, input);
            if (!opened) {
                // Tampered DMA detected by the GCM tag.
                outputLen_ = 0;
                status_ = kAccStatusError;
                return;
            }
            input = std::move(*opened);
        } else if (flags_ & kAccFlagInputEncrypted) {
            input = memCrypt(ByteView(key_, 32), jobId_, Dir::Input,
                             input);
        }
        ops_ = kernelOps(kernel_, input);
        Bytes output = runKernel(kernel_, input);
        if (flags_ & kAccFlagAuthenticateOutput) {
            output = memSealAuth(ByteView(key_, 32), jobId_,
                                 Dir::Output, output);
        } else if (flags_ & kAccFlagEncryptOutput) {
            output = memCrypt(ByteView(key_, 32), jobId_, Dir::Output,
                              output);
        }
        dram_->write(outputAddr_, output);
        outputLen_ = output.size();
        status_ = kAccStatusDone;
    } catch (const SalusError &e) {
        logf(LogLevel::Warn, "accel", kernelName(kernel_),
             " job failed: ", e.what());
        outputLen_ = 0;
        status_ = kAccStatusError;
    }
}

void
AccelIp::registerAll()
{
    static bool done = [] {
        for (KernelId id :
             {KernelId::Conv, KernelId::Affine, KernelId::Rendering,
              KernelId::FaceDetect, KernelId::NnSearch}) {
            fpga::IpCatalog::global().registerIp(
                uint32_t(id),
                [id](const netlist::Cell &, const netlist::Netlist &,
                     const fpga::FabricServices &services) {
                    return std::make_unique<AccelIp>(id, services);
                });
        }
        return true;
    }();
    (void)done;
}

} // namespace salus::accel
