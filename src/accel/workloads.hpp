/**
 * @file
 * Workload descriptors tying each kernel to its netlist cell (with the
 * paper's Table 5 resource vector), its FPGA parallelism, and the
 * evaluation input scale.
 */

#ifndef SALUS_ACCEL_WORKLOADS_HPP
#define SALUS_ACCEL_WORKLOADS_HPP

#include <vector>

#include "accel/kernels.hpp"
#include "netlist/netlist.hpp"

namespace salus::accel {

/** One benchmark application. */
struct WorkloadSpec
{
    KernelId id;
    const char *name;
    netlist::ResourceVector resources; ///< paper Table 5 row
    /** Sustained MAC-equivalents per fabric cycle (pipeline width). */
    uint32_t opsPerCycle;
    /** Default input scale for benches (1.0 = paper-like size). */
    double benchScale;
};

/** All five paper workloads (Table 4/Table 5). */
const std::vector<WorkloadSpec> &allWorkloads();

/** Lookup by kernel id. */
const WorkloadSpec &workload(KernelId id);

/** Builds the developer's accelerator cell for this workload. */
netlist::Cell accelCellFor(const WorkloadSpec &spec);

/** Fabric clock of the cycle model (Alveo-class design). */
constexpr double kFpgaClockHz = 250e6;

} // namespace salus::accel

#endif // SALUS_ACCEL_WORKLOADS_HPP
