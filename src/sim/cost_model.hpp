/**
 * @file
 * Calibrated cost model. Every constant is derived from the paper's
 * §6.3 measurements (Figure 9) or public component datasheets, so the
 * virtual-clock totals reproduce the paper's boot-time *shape*.
 *
 * Calibration anchors (paper, Xilinx U200 + Ice Lake SGX testbed):
 *   - total extra boot time:            18.8 s   (Fig. 9, axis 18835 ms)
 *   - bitstream manipulation:           73.2 % of total = ~13.79 s
 *     (RapidWright hosted by Occlum inside the enclave)
 *   - bitstream verification+encryption: 725 ms
 *   - device key distribution:           1709 ms (intra-cloud DCAP)
 *   - user enclave remote attestation:   2568 ms (WAN DCAP)
 *   - local attestation:                 836 us
 *   - CL attestation:                    1.3 ms
 */

#ifndef SALUS_SIM_COST_MODEL_HPP
#define SALUS_SIM_COST_MODEL_HPP

#include <cstddef>

#include "sim/clock.hpp"

namespace salus::sim {

/** Link classes used by the RPC layer. */
enum class LinkKind {
    Loopback,   ///< same host, enclave <-> enclave or app <-> driver
    IntraCloud, ///< manufacturer server <-> cloud instance
    Wan,        ///< user client <-> cloud instance / DCAP service
    Pcie,       ///< host <-> FPGA shell
};

/**
 * Named cost constants plus size-dependent helpers. Defaults are the
 * paper calibration; tests may zero fields for pure-logic runs.
 */
struct CostModel
{
    // ---- Network -----------------------------------------------------
    Nanos wanRtt = 150 * kMs;      ///< client <-> cloud round trip
    Nanos cloudRtt = 20 * kMs;     ///< intra-cloud round trip
    Nanos loopbackRtt = 100 * kUs; ///< same-host IPC round trip
    /** Register access through the shell's ioctl/driver path — the
     *  secure-window ops of the CL attestation (paper: 1.3 ms for a
     *  handful of transactions implies driver-mediated access). */
    Nanos pcieRtt = 160 * kUs;
    /** Userspace-mapped MMIO access (direct window, doorbells). */
    Nanos mmioLatency = 2 * kUs;
    /** Payload bandwidth per link, bytes per second. */
    double wanBandwidth = 12.5e6;    ///< ~100 Mbit/s
    double cloudBandwidth = 1.25e9;  ///< ~10 Gbit/s
    double loopbackBandwidth = 8e9;  ///< shared-memory copy
    double pcieBandwidth = 3.0e9;    ///< effective PCIe Gen3 x8 DMA

    // ---- TEE ----------------------------------------------------------
    Nanos enclaveTransition = 10 * kUs; ///< ECALL/OCALL pair
    Nanos quoteGeneration = 200 * kMs;  ///< DCAP quote generation
    /** Quote verification at the verifying service (collateral
     *  validation, TCB evaluation; calibrated so user RA totals the
     *  paper's 2568 ms over the WAN). */
    Nanos quoteVerification = 850 * kMs;
    /** HSM access + audit path when the manufacturer releases a
     *  device key (calibrated to the paper's 1709 ms key phase). */
    Nanos keyEscrowProcessing = 480 * kMs;
    /** Extra round trips a verifier spends fetching collateral. */
    int dcapCollateralRoundTrips = 8;
    Nanos localAttestCompute = 300 * kUs; ///< ECDH + report per side

    // ---- Bitstream operations (inside SM enclave) ---------------------
    /** RapidWright-under-Occlum manipulation throughput (paper: a
     *  32 MiB SLR bitstream takes ~13.8 s). */
    double manipulationBytesPerSec = 2.433e6;
    /** SHA-256 digest + AES-GCM-256 encryption in-enclave (paper:
     *  725 ms for the same bitstream). */
    double verifyEncryptBytesPerSec = 46.3e6;

    // ---- FPGA ----------------------------------------------------------
    /** ICAP configuration rate including inline AES-GCM decryption. */
    double fpgaConfigBytesPerSec = 800e6;
    Nanos fpgaDnaReadout = 1 * kUs;   ///< DNA_PORTE2 shift-out
    Nanos smLogicMac = 2 * kUs;       ///< SipHash over a request
    Nanos efuseKeyLatch = 5 * kUs;    ///< key load into decrypt engine
    /** One SEM-IP style frame-ECC scrub pass over a partition. */
    Nanos seuScrubPass = 8 * kMs;

    // ---- Secure register channel crypto --------------------------------
    /** One AES-128-CTR block (en/decrypt 16 bytes) in the enclave or
     *  the fabric's AES engine. */
    Nanos aesCtrBlock = 120;
    /** Fixed HMAC-SHA256 cost per sealed message (key schedule +
     *  finalization); batches pay it once, not per op. */
    Nanos channelMacBase = 1 * kUs;
    /** Incremental HMAC cost per additional 16-byte payload block. */
    Nanos channelMacPerBlock = 60;

    // ---- Secure DMA data plane -----------------------------------------
    /** Bulk AES-CTR throughput of the pipelined DMA engines (wide
     *  datapath + precomputed keystream, so much faster than the
     *  per-block register-channel path). */
    double dmaCryptoBytesPerSec = 4.0e9;
    /** Fixed per-descriptor cost: header marshalling, scatter-gather
     *  list encode and the truncated-HMAC seal. */
    Nanos dmaDescriptorSeal = 2 * kUs;

    // ---- ShEF baseline (§6.3 comparison, boot 5.1 s) -------------------
    /** Bitstream hash/measurement on the embedded security kernel. */
    double shefMeasureBytesPerSec = 8e6;
    Nanos shefSignatureOp = 120 * kMs; ///< RSA/ECDSA on embedded core
    int shefCaRoundTrips = 2;          ///< certificate chain fetches

    // ---- Helpers -------------------------------------------------------
    /** One request/response over the given link carrying the given
     *  payload sizes. */
    Nanos rpc(LinkKind link, size_t requestBytes,
              size_t responseBytes) const;

    /** Manipulating a bitstream of the given size in the enclave. */
    Nanos bitstreamManipulation(size_t bytes) const;

    /** Digest check + AES-GCM encryption of a bitstream. */
    Nanos bitstreamVerifyEncrypt(size_t bytes) const;

    /** DMA of a bitstream to the card plus ICAP configuration. */
    Nanos bitstreamDeployment(size_t bytes) const;

    /** Full remote attestation as seen by the verifier on `link`. */
    Nanos remoteAttestation(LinkKind link) const;

    /** Local attestation between two enclaves on one host. */
    Nanos localAttestation() const;

    /** Salus CL attestation over PCIe (one challenge/response). */
    Nanos clAttestation() const;

    /** ShEF-style PKE remote attestation of a CL (baseline). */
    Nanos shefClAttestation(size_t bitstreamBytes) const;

    /** Host-side crypto for one sealed burst of `ops` register ops:
     *  one CTR block per op each way plus a single MAC pass over
     *  request and response payloads. */
    Nanos batchCrypto(size_t ops) const;

    /** Host-side crypto for one sealed DMA descriptor carrying `bytes`
     *  of payload: fixed seal cost plus bulk CTR keystream time. */
    Nanos dmaCrypto(size_t bytes) const;
};

/** Per-byte transfer time helper. */
Nanos transferTime(double bytesPerSec, size_t bytes);

} // namespace salus::sim

#endif // SALUS_SIM_COST_MODEL_HPP
