/**
 * @file
 * Deterministic discrete-event engine over the virtual clock.
 *
 * Actors (SM enclave, shells, FPGA devices, user clients, broker,
 * supervisor) exchange queued events; a single-threaded run loop pops
 * them in a stable total order and advances the shared VirtualClock
 * to each event's due time. The order is (time, priority, tiebreak,
 * seq): earlier virtual time first, then lower priority value, then a
 * seeded tiebreak (identically zero unless seeded tie-breaking is
 * enabled), then submission order. Same seed therefore means the
 * bit-identical event sequence — and, because all time attribution
 * still flows through VirtualClock::spend(), bit-identical traces and
 * metrics (the determinism-gate CI job enforces this on every push).
 *
 * Seeded tie-breaking deliberately SHUFFLES the dispatch order of
 * same-(time, priority) events per seed (stable within a seed): seed
 * sweeps then flush out hidden order dependence between actors that
 * FIFO ordering would mask forever.
 *
 * Handlers may spend() virtual time, which moves the clock past
 * not-yet-dispatched events; the loop never rewinds — a past-due
 * event simply dispatches at the current (later) time. Cancellation
 * is lazy: cancelled ids are skipped at pop, and reschedule keeps the
 * event's payload while moving its due time (the old heap entry is
 * invalidated by a sequence-number bump).
 */

#ifndef SALUS_SIM_ENGINE_HPP
#define SALUS_SIM_ENGINE_HPP

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/clock.hpp"

namespace salus::sim {

class Engine;

/** Dispatch tiers at equal due time (lower dispatches first). */
constexpr uint8_t kPriorityControl = 0; ///< supervisor/health/cancel
constexpr uint8_t kPriorityDefault = 64;
constexpr uint8_t kPriorityBulk = 128; ///< DMA chunks, background

/** Handle for cancel/reschedule; 0 is never a valid id. */
using EventId = uint64_t;

/** One queued (or in-dispatch) event. */
struct Event
{
    EventId id = 0;
    Nanos at = 0;         ///< due time it was scheduled for
    uint8_t priority = kPriorityDefault;
    uint32_t actor = 0;   ///< destination actor id
    uint32_t kind = 0;    ///< actor-defined discriminator
    uint64_t a = 0;       ///< payload word (actor-defined)
    uint64_t b = 0;       ///< payload word (actor-defined)
};

/**
 * An event destination. Actors register with the engine once and keep
 * their id for the engine's lifetime; delivery is a virtual call on
 * the single run-loop thread.
 */
class Actor
{
  public:
    virtual ~Actor() = default;

    /** Handles one delivered event. May post/cancel/reschedule and
     *  may spend() virtual time on the engine's clock. */
    virtual void onEvent(Engine &engine, const Event &event) = 0;
};

/** The single-threaded deterministic run loop. */
class Engine
{
  public:
    struct Config
    {
        /** Seed for tie-break shuffling (unused until enabled). */
        uint64_t seed = 1;
        /** Shuffle same-(time, priority) dispatch order per seed
         *  instead of FIFO — for seed sweeps hunting hidden order
         *  dependence. OFF by default: FIFO keeps engine-driven runs
         *  trace-identical to the lockstep call order they ported. */
        bool seededTieBreak = false;
    };

    struct Stats
    {
        uint64_t scheduled = 0;
        uint64_t dispatched = 0;
        uint64_t cancelled = 0;
        size_t maxQueued = 0;
    };

    explicit Engine(VirtualClock &clock)
        : Engine(clock, Config())
    {}
    Engine(VirtualClock &clock, Config config);

    /** Registers an actor; the returned id addresses post(). The
     *  actor must outlive the engine (or at least every event posted
     *  to it). Names are for diagnostics only. */
    uint32_t addActor(Actor &actor, std::string name);
    const std::string &actorName(uint32_t id) const;

    /** Queues an event at an absolute virtual time (clamped forward
     *  to now: the loop never rewinds). @return its cancel handle. */
    EventId post(Nanos at, uint8_t priority, uint32_t actor,
                 uint32_t kind, uint64_t a = 0, uint64_t b = 0);
    /** Queues an event `delay` after the current virtual time. */
    EventId postIn(Nanos delay, uint8_t priority, uint32_t actor,
                   uint32_t kind, uint64_t a = 0, uint64_t b = 0);
    /** Queues an event at the current virtual time (dispatches after
     *  everything already queued for this instant — FIFO). */
    EventId postNow(uint32_t actor, uint32_t kind, uint64_t a = 0,
                    uint64_t b = 0);

    /** Cancels a pending event. @return false when it already
     *  dispatched, was cancelled, or never existed. */
    bool cancel(EventId id);

    /** Moves a pending event to a new due time, keeping its payload
     *  and identity; ties at the new time order by the NEW submission
     *  sequence. @return false (and no change) when `id` is not
     *  pending. */
    bool reschedule(EventId id, Nanos at);

    /** Due time of a pending event (0 when not pending). */
    Nanos pendingAt(EventId id) const;

    VirtualClock &clock() { return clock_; }
    Nanos now() const { return clock_.now(); }
    size_t pending() const { return pending_.size(); }
    const Stats &stats() const { return stats_; }

    /**
     * Dispatches events until the queue is empty or `maxEvents` were
     * delivered. @return true when the queue drained (false = event
     * budget exhausted with work left — a runaway-loop backstop).
     */
    bool runUntilIdle(uint64_t maxEvents = ~uint64_t(0));

    /** Dispatches every event due at or before `deadline` (events a
     *  handler posts inside the horizon are picked up too), then
     *  advances the clock to `deadline` if it is still behind.
     *  @return events dispatched. */
    uint64_t runUntil(Nanos deadline);

    /** Dispatches exactly one event. @return false when idle. */
    bool step();

  private:
    struct HeapEntry
    {
        Nanos at;
        uint8_t priority;
        uint64_t tiebreak;
        uint64_t seq;
        EventId id;

        bool operator>(const HeapEntry &o) const
        {
            if (at != o.at)
                return at > o.at;
            if (priority != o.priority)
                return priority > o.priority;
            if (tiebreak != o.tiebreak)
                return tiebreak > o.tiebreak;
            return seq > o.seq;
        }
    };

    struct PendingEvent
    {
        Event event;
        uint64_t seq = 0; ///< heap entries with a stale seq are dead
    };

    uint64_t tiebreakFor(uint64_t seq) const;
    void push(const Event &event);

    VirtualClock &clock_;
    Config config_;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap_;
    std::unordered_map<EventId, PendingEvent> pending_;
    std::vector<Actor *> actors_;
    std::vector<std::string> actorNames_;
    EventId nextId_ = 1;
    uint64_t nextSeq_ = 1;
    Stats stats_;
};

} // namespace salus::sim

#endif // SALUS_SIM_ENGINE_HPP
