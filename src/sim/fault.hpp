/**
 * @file
 * Deterministic fault injection. A seeded FaultPlan describes, per
 * site (link/endpoint/method) and per virtual-time window, which
 * transient failures the environment throws at the platform: RPC
 * drops / corruption / duplication / delay / reordering, failed PCIe
 * register transactions, failed bitstream loads (bad CRC at the
 * config port), and configuration-memory bit flips (SEUs).
 *
 * One FaultInjector is shared by `net::Network`, `shell::Shell` and
 * `fpga::FpgaDevice`, so honest and malicious paths exercise the same
 * mechanism the attack interposers use. All randomness comes from a
 * splitmix64 stream seeded by the plan: the same seed and the same
 * workload replay the exact same fault sequence bit-for-bit (the
 * injector keeps a journal so tests can assert that).
 */

#ifndef SALUS_SIM_FAULT_HPP
#define SALUS_SIM_FAULT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "sim/clock.hpp"

namespace salus::sim {

/** splitmix64 step — the deterministic PRNG all fault decisions and
 *  retry jitter draw from (no crypto dependency, stable everywhere). */
uint64_t splitmix64(uint64_t &state);

/** What a single rule injects. */
enum class FaultKind : uint8_t {
    RpcDrop = 0,      ///< message never delivered (NetError at caller)
    RpcCorrupt,       ///< deterministic byte flip in the payload
    RpcDuplicate,     ///< handler sees the message twice
    RpcDelay,         ///< extra virtual latency before delivery
    RpcReorder,       ///< message held, delivered stale before the next one
    RegFault,         ///< PCIe register txn lost (write) / garbage (read)
    BitstreamLoadFail,///< config port reports bad CRC (DecryptFailed)
    Seu,              ///< flip one configuration bit in a partition
    DeviceDead,       ///< device bricked: all reg ops + loads fail from windowStart
    HeartbeatLoss,    ///< supervisor liveness probe lost in flight
    SmCrash,          ///< SM enclave dies at a given journal-write step
    DmaDrop,          ///< DMA descriptor lost between host and fabric
    DmaCorrupt,       ///< deterministic byte flip in a sealed descriptor
    DmaReorder,       ///< descriptor held, delivered after its successor
};

const char *faultKindName(FaultKind kind);

/** Device wildcard for device-scoped rules (matches every device). */
constexpr uint32_t kAnyDevice = ~uint32_t(0);

/** One fault source. Build with the factories, narrow with the fluent
 *  modifiers: FaultRule::dropRpc(0.1).on("", "", "keyRequest").times(3). */
struct FaultRule
{
    FaultKind kind = FaultKind::RpcDrop;

    // ---- Site match (empty string = wildcard) ------------------------
    std::string from;   ///< RPC source endpoint
    std::string to;     ///< RPC destination endpoint
    /** RPC: method prefix ("raRequest" also matches "raRequest:response").
     *  RegFault: "read", "write" or "" for both. */
    std::string method;

    // ---- Firing conditions -------------------------------------------
    double probability = 1.0;           ///< per eligible event
    Nanos windowStart = 0;              ///< inclusive virtual-time window
    Nanos windowEnd = ~Nanos(0);
    uint32_t maxCount = ~uint32_t(0);   ///< fire at most this many times

    // ---- Parameters ---------------------------------------------------
    uint8_t corruptMask = 0x01;  ///< XORed into one payload byte
    Nanos delay = 0;             ///< RpcDelay extra latency
    uint32_t partition = 0;      ///< Seu target partition
    uint64_t seuBit = 0;         ///< Seu bit offset within the partition
    /** Device scope for RegFault / Seu / BitstreamLoadFail /
     *  DeviceDead / HeartbeatLoss. kAnyDevice = every device (an
     *  unscoped Seu lands on device 0 for seed compatibility). */
    uint32_t device = kAnyDevice;
    uint64_t crashStep = 0;      ///< SmCrash: journal-write index
    bool crashAfterPersist = false; ///< SmCrash: die after (vs before) the store

    // ---- Factories ----------------------------------------------------
    static FaultRule dropRpc(double p);
    static FaultRule corruptRpc(double p, uint8_t mask = 0x01);
    static FaultRule duplicateRpc(double p);
    static FaultRule delayRpc(double p, Nanos extra);
    static FaultRule reorderRpc(double p);
    static FaultRule regFault(double p);
    static FaultRule bitstreamLoadFail(uint32_t count = 1);
    static FaultRule seu(uint32_t partition, uint64_t bitIndex,
                         Nanos notBefore = 0);
    /** Permanent device death: from `notBefore` on, every register
     *  transaction on `device` is lost and every load fails. */
    static FaultRule deviceDead(uint32_t device, Nanos notBefore = 0);
    /** Drops supervisor heartbeat probes to `device` with prob. p. */
    static FaultRule heartbeatLoss(uint32_t device, double p);
    /** Kills the SM enclave at journal-write number `step`, either
     *  just before or just after the sealed blob hits storage. */
    static FaultRule smCrash(uint64_t step, bool afterPersist = false);
    /** Eats a sealed DMA descriptor in flight with probability p. */
    static FaultRule dropDma(double p);
    /** Flips one byte of a sealed DMA descriptor with probability p. */
    static FaultRule corruptDma(double p, uint8_t mask = 0x01);
    /** Holds a DMA descriptor so it lands after its successor. */
    static FaultRule reorderDma(double p);

    // ---- Fluent narrowing ---------------------------------------------
    FaultRule &on(std::string fromEp, std::string toEp,
                  std::string methodPrefix);
    FaultRule &match(std::string methodPrefix);
    FaultRule &during(Nanos start, Nanos end);
    FaultRule &times(uint32_t count);
    FaultRule &onDevice(uint32_t deviceId);
};

/** A complete, seeded fault schedule. */
struct FaultPlan
{
    uint64_t seed = 1;
    std::vector<FaultRule> rules;

    FaultPlan &add(FaultRule rule)
    {
        rules.push_back(std::move(rule));
        return *this;
    }
    bool empty() const { return rules.empty(); }
};

/** Counters of everything the injector actually did. */
struct FaultStats
{
    uint64_t rpcDropped = 0;
    uint64_t rpcCorrupted = 0;
    uint64_t rpcDuplicated = 0;
    uint64_t rpcDelayed = 0;
    uint64_t rpcReordered = 0;
    uint64_t regFaults = 0;
    uint64_t loadFailures = 0;
    uint64_t seusInjected = 0;
    uint64_t deviceDeadOps = 0;   ///< txns/loads eaten by dead devices
    uint64_t heartbeatsLost = 0;
    uint64_t smCrashes = 0;
    uint64_t dmaDropped = 0;
    uint64_t dmaCorrupted = 0;
    uint64_t dmaReordered = 0;

    uint64_t total() const
    {
        return rpcDropped + rpcCorrupted + rpcDuplicated + rpcDelayed +
               rpcReordered + regFaults + loadFailures + seusInjected +
               deviceDeadOps + heartbeatsLost + smCrashes + dmaDropped +
               dmaCorrupted + dmaReordered;
    }
};

/** The injector's verdict on one RPC payload (already applied
 *  corruption mutates the payload in place). */
struct RpcFault
{
    bool drop = false;
    bool duplicate = false;
    bool reorder = false;
    bool corrupted = false;
    Nanos delay = 0;
};

/** The injector's verdict on one sealed DMA descriptor in flight
 *  (corruption has already been applied to the encoded bytes). */
struct DmaFault
{
    bool drop = false;
    bool corrupt = false;
    bool reorder = false;
};

/** A pending configuration upset to apply. */
struct SeuEvent
{
    uint32_t partition = 0;
    uint64_t bitIndex = 0;
};

/** Shared fault decision engine (one per testbed). */
class FaultInjector
{
  public:
    FaultInjector(FaultPlan plan, VirtualClock &clock);

    /**
     * Consulted by the network for every payload in flight (requests
     * and, with the ":response" suffix, responses). May mutate
     * `payload` (corruption). Consumes PRNG state in event order.
     */
    RpcFault onRpc(const std::string &from, const std::string &to,
                   const std::string &method, Bytes &payload);

    /** Consulted by the shell per register transaction. True = the
     *  transaction is lost on the bus. */
    bool onRegisterOp(bool isWrite, uint32_t addr,
                      uint32_t deviceId = 0);

    /** Deterministic garbage for a faulted register read. */
    uint64_t garbageWord();

    /** Consulted by the device per encrypted-bitstream load. True =
     *  the configuration engine reports a CRC/auth failure. */
    bool onBitstreamLoad(uint32_t deviceId = 0);

    /** True while a DeviceDead rule's window covers `deviceId` now
     *  (pure query: no PRNG draw, no stats). */
    bool deviceDead(uint32_t deviceId);

    /** Consulted per supervisor heartbeat probe. True = the probe (or
     *  its completion) vanished in flight. */
    bool onHeartbeat(uint32_t deviceId);

    /** Consulted by the SM enclave around each sealed-journal commit
     *  (`step` is the commit index, `afterPersist` distinguishes the
     *  pre-store and post-store crash points). True = the enclave
     *  dies here. */
    bool onSmJournalWrite(uint64_t step, bool afterPersist);

    /** Consulted by the DMA window engine for every sealed descriptor
     *  headed to `deviceId` (`seq` names it in the journal). May
     *  mutate `encoded` (corruption). Consumes PRNG state in event
     *  order, exactly like onRpc. */
    DmaFault onDmaDescriptor(uint32_t deviceId, uint64_t seq,
                             Bytes &encoded);

    /** Drains SEU rules whose window is open (each fires once per
     *  allowed count); the device applies them to its frames. An
     *  unscoped (kAnyDevice) SEU rule targets device 0. */
    std::vector<SeuEvent> takePendingSeus(uint32_t deviceId = 0);

    /** Appends a rule at runtime (tests arm faults mid-scenario). */
    void arm(FaultRule rule);

    const FaultStats &stats() const { return stats_; }
    const FaultPlan &plan() const { return plan_; }

    /** Ordered record of every injected fault ("t=<ns> <kind> <site>");
     *  equal seeds + equal workloads give equal journals. */
    const std::vector<std::string> &journal() const { return journal_; }

  private:
    bool fires(size_t ruleIndex);
    void record(const FaultRule &rule, const std::string &site);

    FaultPlan plan_;
    VirtualClock &clock_;
    std::vector<uint32_t> firedCount_;
    uint64_t rngState_;
    FaultStats stats_;
    std::vector<std::string> journal_;
};

} // namespace salus::sim

#endif // SALUS_SIM_FAULT_HPP
