#include "sim/fault.hpp"

namespace salus::sim {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace {

/** Uniform double in [0, 1). */
double
unitDouble(uint64_t &state)
{
    return double(splitmix64(state) >> 11) * 0x1.0p-53;
}

bool
siteMatches(const std::string &pattern, const std::string &value)
{
    if (pattern.empty())
        return true;
    // Prefix match so "raRequest" also covers "raRequest:response".
    return value.compare(0, pattern.size(), pattern) == 0;
}

bool
deviceMatches(const FaultRule &rule, uint32_t deviceId)
{
    return rule.device == kAnyDevice || rule.device == deviceId;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::RpcDrop:
        return "rpc-drop";
      case FaultKind::RpcCorrupt:
        return "rpc-corrupt";
      case FaultKind::RpcDuplicate:
        return "rpc-duplicate";
      case FaultKind::RpcDelay:
        return "rpc-delay";
      case FaultKind::RpcReorder:
        return "rpc-reorder";
      case FaultKind::RegFault:
        return "reg-fault";
      case FaultKind::BitstreamLoadFail:
        return "bitstream-load-fail";
      case FaultKind::Seu:
        return "seu";
      case FaultKind::DeviceDead:
        return "device-dead";
      case FaultKind::HeartbeatLoss:
        return "heartbeat-loss";
      case FaultKind::SmCrash:
        return "sm-crash";
      case FaultKind::DmaDrop:
        return "dma-drop";
      case FaultKind::DmaCorrupt:
        return "dma-corrupt";
      case FaultKind::DmaReorder:
        return "dma-reorder";
    }
    return "?";
}

FaultRule
FaultRule::dropRpc(double p)
{
    FaultRule r;
    r.kind = FaultKind::RpcDrop;
    r.probability = p;
    return r;
}

FaultRule
FaultRule::corruptRpc(double p, uint8_t mask)
{
    FaultRule r;
    r.kind = FaultKind::RpcCorrupt;
    r.probability = p;
    r.corruptMask = mask;
    return r;
}

FaultRule
FaultRule::duplicateRpc(double p)
{
    FaultRule r;
    r.kind = FaultKind::RpcDuplicate;
    r.probability = p;
    return r;
}

FaultRule
FaultRule::delayRpc(double p, Nanos extra)
{
    FaultRule r;
    r.kind = FaultKind::RpcDelay;
    r.probability = p;
    r.delay = extra;
    return r;
}

FaultRule
FaultRule::reorderRpc(double p)
{
    FaultRule r;
    r.kind = FaultKind::RpcReorder;
    r.probability = p;
    return r;
}

FaultRule
FaultRule::regFault(double p)
{
    FaultRule r;
    r.kind = FaultKind::RegFault;
    r.probability = p;
    return r;
}

FaultRule
FaultRule::bitstreamLoadFail(uint32_t count)
{
    FaultRule r;
    r.kind = FaultKind::BitstreamLoadFail;
    r.maxCount = count;
    return r;
}

FaultRule
FaultRule::seu(uint32_t partition, uint64_t bitIndex, Nanos notBefore)
{
    FaultRule r;
    r.kind = FaultKind::Seu;
    r.partition = partition;
    r.seuBit = bitIndex;
    r.windowStart = notBefore;
    r.maxCount = 1;
    return r;
}

FaultRule
FaultRule::deviceDead(uint32_t device, Nanos notBefore)
{
    FaultRule r;
    r.kind = FaultKind::DeviceDead;
    r.device = device;
    r.windowStart = notBefore;
    return r;
}

FaultRule
FaultRule::heartbeatLoss(uint32_t device, double p)
{
    FaultRule r;
    r.kind = FaultKind::HeartbeatLoss;
    r.device = device;
    r.probability = p;
    return r;
}

FaultRule
FaultRule::smCrash(uint64_t step, bool afterPersist)
{
    FaultRule r;
    r.kind = FaultKind::SmCrash;
    r.crashStep = step;
    r.crashAfterPersist = afterPersist;
    r.maxCount = 1;
    return r;
}

FaultRule
FaultRule::dropDma(double p)
{
    FaultRule r;
    r.kind = FaultKind::DmaDrop;
    r.probability = p;
    return r;
}

FaultRule
FaultRule::corruptDma(double p, uint8_t mask)
{
    FaultRule r;
    r.kind = FaultKind::DmaCorrupt;
    r.probability = p;
    r.corruptMask = mask;
    return r;
}

FaultRule
FaultRule::reorderDma(double p)
{
    FaultRule r;
    r.kind = FaultKind::DmaReorder;
    r.probability = p;
    return r;
}

FaultRule &
FaultRule::on(std::string fromEp, std::string toEp,
              std::string methodPrefix)
{
    from = std::move(fromEp);
    to = std::move(toEp);
    method = std::move(methodPrefix);
    return *this;
}

FaultRule &
FaultRule::match(std::string methodPrefix)
{
    method = std::move(methodPrefix);
    return *this;
}

FaultRule &
FaultRule::during(Nanos start, Nanos end)
{
    windowStart = start;
    windowEnd = end;
    return *this;
}

FaultRule &
FaultRule::times(uint32_t count)
{
    maxCount = count;
    return *this;
}

FaultRule &
FaultRule::onDevice(uint32_t deviceId)
{
    device = deviceId;
    return *this;
}

FaultInjector::FaultInjector(FaultPlan plan, VirtualClock &clock)
    : plan_(std::move(plan)), clock_(clock),
      firedCount_(plan_.rules.size(), 0), rngState_(plan_.seed)
{
}

void
FaultInjector::arm(FaultRule rule)
{
    plan_.rules.push_back(std::move(rule));
    firedCount_.push_back(0);
}

bool
FaultInjector::fires(size_t ruleIndex)
{
    FaultRule &r = plan_.rules[ruleIndex];
    Nanos now = clock_.now();
    if (now < r.windowStart || now > r.windowEnd)
        return false;
    if (firedCount_[ruleIndex] >= r.maxCount)
        return false;
    // Always draw, even at probability 1, so the stream advances the
    // same way regardless of which branch wins.
    if (unitDouble(rngState_) >= r.probability)
        return false;
    ++firedCount_[ruleIndex];
    return true;
}

void
FaultInjector::record(const FaultRule &rule, const std::string &site)
{
    journal_.push_back("t=" + std::to_string(clock_.now()) + " " +
                       faultKindName(rule.kind) + " " + site);
}

RpcFault
FaultInjector::onRpc(const std::string &from, const std::string &to,
                     const std::string &method, Bytes &payload)
{
    RpcFault out;
    const std::string site = from + "->" + to + " " + method;
    for (size_t i = 0; i < plan_.rules.size(); ++i) {
        FaultRule &r = plan_.rules[i];
        switch (r.kind) {
          case FaultKind::RpcDrop:
          case FaultKind::RpcCorrupt:
          case FaultKind::RpcDuplicate:
          case FaultKind::RpcDelay:
          case FaultKind::RpcReorder:
            break;
          default:
            continue;
        }
        if (!siteMatches(r.from, from) || !siteMatches(r.to, to) ||
            !siteMatches(r.method, method))
            continue;
        if (out.drop || out.reorder)
            continue; // already terminal for this payload
        if (!fires(i))
            continue;
        record(r, site);
        switch (r.kind) {
          case FaultKind::RpcDrop:
            out.drop = true;
            ++stats_.rpcDropped;
            break;
          case FaultKind::RpcCorrupt:
            if (!payload.empty()) {
                size_t pos = size_t(splitmix64(rngState_) %
                                    payload.size());
                payload[pos] ^= r.corruptMask ? r.corruptMask
                                              : uint8_t(0x01);
                out.corrupted = true;
                ++stats_.rpcCorrupted;
            }
            break;
          case FaultKind::RpcDuplicate:
            out.duplicate = true;
            ++stats_.rpcDuplicated;
            break;
          case FaultKind::RpcDelay:
            out.delay += r.delay;
            ++stats_.rpcDelayed;
            break;
          case FaultKind::RpcReorder:
            out.reorder = true;
            ++stats_.rpcReordered;
            break;
          default:
            break;
        }
    }
    return out;
}

bool
FaultInjector::onRegisterOp(bool isWrite, uint32_t addr, uint32_t deviceId)
{
    (void)addr;
    const char *opName = isWrite ? "write" : "read";
    // A dead device eats every transaction: persistent, no PRNG draw
    // (so arming death does not perturb the transient-fault stream).
    for (size_t i = 0; i < plan_.rules.size(); ++i) {
        FaultRule &r = plan_.rules[i];
        if (r.kind != FaultKind::DeviceDead || r.device != deviceId)
            continue;
        Nanos now = clock_.now();
        if (now < r.windowStart || now > r.windowEnd)
            continue;
        if (firedCount_[i] == 0) { // journal the death once
            ++firedCount_[i];
            record(r, "device-" + std::to_string(deviceId));
        }
        ++stats_.deviceDeadOps;
        return true;
    }
    for (size_t i = 0; i < plan_.rules.size(); ++i) {
        FaultRule &r = plan_.rules[i];
        if (r.kind != FaultKind::RegFault)
            continue;
        if (!r.method.empty() && r.method != opName)
            continue;
        if (!deviceMatches(r, deviceId))
            continue;
        if (!fires(i))
            continue;
        record(r, std::string("pcie-") + opName);
        ++stats_.regFaults;
        return true;
    }
    return false;
}

bool
FaultInjector::deviceDead(uint32_t deviceId)
{
    for (const FaultRule &r : plan_.rules) {
        if (r.kind != FaultKind::DeviceDead || r.device != deviceId)
            continue;
        Nanos now = clock_.now();
        if (now >= r.windowStart && now <= r.windowEnd)
            return true;
    }
    return false;
}

bool
FaultInjector::onHeartbeat(uint32_t deviceId)
{
    for (size_t i = 0; i < plan_.rules.size(); ++i) {
        FaultRule &r = plan_.rules[i];
        if (r.kind != FaultKind::HeartbeatLoss ||
            !deviceMatches(r, deviceId))
            continue;
        if (!fires(i))
            continue;
        record(r, "device-" + std::to_string(deviceId));
        ++stats_.heartbeatsLost;
        return true;
    }
    return false;
}

bool
FaultInjector::onSmJournalWrite(uint64_t step, bool afterPersist)
{
    for (size_t i = 0; i < plan_.rules.size(); ++i) {
        FaultRule &r = plan_.rules[i];
        if (r.kind != FaultKind::SmCrash || r.crashStep != step ||
            r.crashAfterPersist != afterPersist)
            continue;
        if (!fires(i))
            continue;
        record(r, "journal-step-" + std::to_string(step) +
                      (afterPersist ? " post-store" : " pre-store"));
        ++stats_.smCrashes;
        return true;
    }
    return false;
}

DmaFault
FaultInjector::onDmaDescriptor(uint32_t deviceId, uint64_t seq,
                               Bytes &encoded)
{
    DmaFault out;
    const std::string site =
        "device-" + std::to_string(deviceId) + " dma-seq-" +
        std::to_string(seq);
    for (size_t i = 0; i < plan_.rules.size(); ++i) {
        FaultRule &r = plan_.rules[i];
        switch (r.kind) {
          case FaultKind::DmaDrop:
          case FaultKind::DmaCorrupt:
          case FaultKind::DmaReorder:
            break;
          default:
            continue;
        }
        if (!deviceMatches(r, deviceId))
            continue;
        if (out.drop || out.reorder)
            continue; // already terminal for this descriptor
        if (!fires(i))
            continue;
        record(r, site);
        switch (r.kind) {
          case FaultKind::DmaDrop:
            out.drop = true;
            ++stats_.dmaDropped;
            break;
          case FaultKind::DmaCorrupt:
            if (!encoded.empty()) {
                size_t pos = size_t(splitmix64(rngState_) %
                                    encoded.size());
                encoded[pos] ^= r.corruptMask ? r.corruptMask
                                              : uint8_t(0x01);
                out.corrupt = true;
                ++stats_.dmaCorrupted;
            }
            break;
          case FaultKind::DmaReorder:
            out.reorder = true;
            ++stats_.dmaReordered;
            break;
          default:
            break;
        }
    }
    return out;
}

uint64_t
FaultInjector::garbageWord()
{
    return splitmix64(rngState_);
}

bool
FaultInjector::onBitstreamLoad(uint32_t deviceId)
{
    if (deviceDead(deviceId)) {
        ++stats_.deviceDeadOps;
        return true;
    }
    for (size_t i = 0; i < plan_.rules.size(); ++i) {
        if (plan_.rules[i].kind != FaultKind::BitstreamLoadFail)
            continue;
        if (!deviceMatches(plan_.rules[i], deviceId))
            continue;
        if (!fires(i))
            continue;
        record(plan_.rules[i], "config-port");
        ++stats_.loadFailures;
        return true;
    }
    return false;
}

std::vector<SeuEvent>
FaultInjector::takePendingSeus(uint32_t deviceId)
{
    std::vector<SeuEvent> out;
    for (size_t i = 0; i < plan_.rules.size(); ++i) {
        FaultRule &r = plan_.rules[i];
        if (r.kind != FaultKind::Seu)
            continue;
        // Unscoped SEU rules target device 0 (the seed's single-device
        // plans keep their exact meaning on a pool).
        uint32_t target = r.device == kAnyDevice ? 0 : r.device;
        if (target != deviceId)
            continue;
        if (!fires(i))
            continue;
        record(r, "partition-" + std::to_string(r.partition) + " bit " +
                      std::to_string(r.seuBit));
        ++stats_.seusInjected;
        out.push_back({r.partition, r.seuBit});
    }
    return out;
}

} // namespace salus::sim
