/**
 * @file
 * Virtual time. The paper reports wall-clock measurements on a testbed
 * we cannot access; protocol code here charges its operations to a
 * virtual clock through a calibrated CostModel instead, and benches
 * report the virtual totals next to the paper's numbers.
 */

#ifndef SALUS_SIM_CLOCK_HPP
#define SALUS_SIM_CLOCK_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace salus::sim {

/** Virtual durations/timestamps in nanoseconds. */
using Nanos = uint64_t;

constexpr Nanos kUs = 1000;
constexpr Nanos kMs = 1000 * kUs;
constexpr Nanos kSec = 1000 * kMs;

/** Renders a duration as a human-friendly string ("13.8 s", "836 us"). */
std::string formatNanos(Nanos d);

/** One attributed slice of virtual time. */
struct PhaseRecord
{
    std::string phase; ///< e.g. "Bitstream Manipulation"
    Nanos start;       ///< virtual timestamp at which it began
    Nanos duration;
};

/**
 * Observes every attributed slice as it is recorded. The obs layer's
 * TraceRecorder taps this to mirror phase slices into trace spans;
 * the clock itself never depends on the observability subsystem.
 */
class SpendObserver
{
  public:
    virtual ~SpendObserver() = default;
    virtual void onSpend(const PhaseRecord &record) = 0;
};

/**
 * A monotonically advancing virtual clock with per-phase attribution.
 * Components call spend() naming the activity; benches read the trace
 * to rebuild the paper's Figure 9 breakdown.
 */
class VirtualClock
{
  public:
    /** Current virtual time. */
    Nanos now() const { return now_; }

    /** Advances time, attributing it to the named phase. */
    void spend(const std::string &phase, Nanos duration);

    /** Advances time, attributed to the innermost active phase. */
    void spend(Nanos duration);

    /** Advances time without attribution (idle / untracked). */
    void advance(Nanos duration) { now_ += duration; }

    /** Pushes a phase label; components that don't know the protocol
     *  step charge time to the innermost label. */
    void pushPhase(const std::string &phase);
    void popPhase();
    /** Innermost label, or "(untracked)" when none is active. */
    std::string currentPhase() const;

    /** All recorded slices in order. */
    const std::vector<PhaseRecord> &trace() const { return trace_; }

    /** Sum of all slices attributed to the given phase. */
    Nanos totalFor(const std::string &phase) const;

    /** Clears the trace and rewinds to zero. */
    void reset();

    /** Taps every future spend() slice (nullptr = untapped). The
     *  observer sees slices AFTER they are appended to the trace. */
    void setSpendObserver(SpendObserver *observer)
    {
        observer_ = observer;
    }
    SpendObserver *spendObserver() const { return observer_; }

  private:
    Nanos now_ = 0;
    std::vector<PhaseRecord> trace_;
    std::vector<std::string> phaseStack_;
    SpendObserver *observer_ = nullptr;
};

/** RAII phase scope. */
class ScopedPhase
{
  public:
    ScopedPhase(VirtualClock &clock, const std::string &phase)
        : clock_(clock)
    {
        clock_.pushPhase(phase);
    }
    ~ScopedPhase() { clock_.popPhase(); }
    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    VirtualClock &clock_;
};

} // namespace salus::sim

#endif // SALUS_SIM_CLOCK_HPP
