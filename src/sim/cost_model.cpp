#include "sim/cost_model.hpp"

namespace salus::sim {

Nanos
transferTime(double bytesPerSec, size_t bytes)
{
    if (bytesPerSec <= 0)
        return 0;
    return Nanos(double(bytes) / bytesPerSec * double(kSec));
}

Nanos
CostModel::rpc(LinkKind link, size_t requestBytes,
               size_t responseBytes) const
{
    Nanos rtt;
    double bw;
    switch (link) {
      case LinkKind::Loopback:
        rtt = loopbackRtt;
        bw = loopbackBandwidth;
        break;
      case LinkKind::IntraCloud:
        rtt = cloudRtt;
        bw = cloudBandwidth;
        break;
      case LinkKind::Wan:
        rtt = wanRtt;
        bw = wanBandwidth;
        break;
      case LinkKind::Pcie:
        rtt = pcieRtt;
        bw = pcieBandwidth;
        break;
      default:
        rtt = 0;
        bw = 0;
        break;
    }
    return rtt + transferTime(bw, requestBytes + responseBytes);
}

Nanos
CostModel::bitstreamManipulation(size_t bytes) const
{
    return transferTime(manipulationBytesPerSec, bytes);
}

Nanos
CostModel::bitstreamVerifyEncrypt(size_t bytes) const
{
    return transferTime(verifyEncryptBytesPerSec, bytes);
}

Nanos
CostModel::bitstreamDeployment(size_t bytes) const
{
    return transferTime(pcieBandwidth, bytes) +
           transferTime(fpgaConfigBytesPerSec, bytes) + efuseKeyLatch;
}

Nanos
CostModel::remoteAttestation(LinkKind link) const
{
    // Challenge RTT + quote generation in the enclave + verification
    // at the service, which itself fetches DCAP collateral over the
    // same link class.
    Nanos collateral = Nanos(dcapCollateralRoundTrips) *
                       rpc(link, 2048, 16384);
    return rpc(link, 64, 4096) + quoteGeneration +
           2 * enclaveTransition + quoteVerification + collateral;
}

Nanos
CostModel::localAttestation() const
{
    // Two enclaves exchange EREPORTs over loopback IPC and run ECDH.
    return 2 * (loopbackRtt + localAttestCompute + enclaveTransition);
}

Nanos
CostModel::clAttestation() const
{
    // Request regs + response regs over PCIe, SipHash on both ends.
    return 4 * pcieRtt + 2 * smLogicMac + 2 * enclaveTransition +
           2 * fpgaDnaReadout;
}

Nanos
CostModel::shefClAttestation(size_t bitstreamBytes) const
{
    // The ShEF security kernel hashes the CL bitstream, signs the
    // measurement, and the verifier walks a CA chain over the WAN.
    return transferTime(shefMeasureBytesPerSec, bitstreamBytes) +
           2 * shefSignatureOp +
           Nanos(shefCaRoundTrips) * rpc(LinkKind::Wan, 1024, 8192) +
           rpc(LinkKind::Wan, 256, 4096);
}

Nanos
CostModel::batchCrypto(size_t ops) const
{
    // Each op is one AES block in each direction; both the request
    // and the response payload get a single MAC pass.
    return Nanos(2 * ops) * aesCtrBlock + 2 * channelMacBase +
           Nanos(2 * ops) * channelMacPerBlock;
}

Nanos
CostModel::dmaCrypto(size_t bytes) const
{
    // Bulk path: one fixed seal per descriptor, then keystream at the
    // wide-datapath rate (the MAC pass rides the same sweep).
    return dmaDescriptorSeal + transferTime(dmaCryptoBytesPerSec, bytes);
}

} // namespace salus::sim
