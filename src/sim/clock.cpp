#include "sim/clock.hpp"

#include <cstdio>

namespace salus::sim {

std::string
formatNanos(Nanos d)
{
    char buf[64];
    if (d >= kSec)
        std::snprintf(buf, sizeof(buf), "%.2f s", double(d) / kSec);
    else if (d >= kMs)
        std::snprintf(buf, sizeof(buf), "%.2f ms", double(d) / kMs);
    else if (d >= kUs)
        std::snprintf(buf, sizeof(buf), "%.1f us", double(d) / kUs);
    else
        std::snprintf(buf, sizeof(buf), "%llu ns",
                      static_cast<unsigned long long>(d));
    return buf;
}

void
VirtualClock::spend(const std::string &phase, Nanos duration)
{
    trace_.push_back({phase, now_, duration});
    now_ += duration;
    if (observer_)
        observer_->onSpend(trace_.back());
}

void
VirtualClock::spend(Nanos duration)
{
    spend(currentPhase(), duration);
}

void
VirtualClock::pushPhase(const std::string &phase)
{
    phaseStack_.push_back(phase);
}

void
VirtualClock::popPhase()
{
    if (!phaseStack_.empty())
        phaseStack_.pop_back();
}

std::string
VirtualClock::currentPhase() const
{
    return phaseStack_.empty() ? std::string("(untracked)")
                               : phaseStack_.back();
}

Nanos
VirtualClock::totalFor(const std::string &phase) const
{
    Nanos total = 0;
    for (const auto &r : trace_) {
        if (r.phase == phase)
            total += r.duration;
    }
    return total;
}

void
VirtualClock::reset()
{
    now_ = 0;
    trace_.clear();
}

} // namespace salus::sim
