#include "sim/engine.hpp"

#include <stdexcept>

#include "sim/fault.hpp"

namespace salus::sim {

Engine::Engine(VirtualClock &clock, Config config)
    : clock_(clock), config_(config)
{
    actors_.push_back(nullptr); // actor id 0 is reserved (invalid)
    actorNames_.push_back("(none)");
}

uint32_t
Engine::addActor(Actor &actor, std::string name)
{
    actors_.push_back(&actor);
    actorNames_.push_back(std::move(name));
    return uint32_t(actors_.size() - 1);
}

const std::string &
Engine::actorName(uint32_t id) const
{
    return actorNames_.at(id);
}

uint64_t
Engine::tiebreakFor(uint64_t seq) const
{
    if (!config_.seededTieBreak)
        return 0;
    // One splitmix64 draw keyed by (seed, seq): stable per seed,
    // shuffled across seeds. No crypto dependency.
    uint64_t state = config_.seed ^ (seq * 0x9e3779b97f4a7c15ull);
    return splitmix64(state);
}

void
Engine::push(const Event &event)
{
    uint64_t seq = nextSeq_++;
    pending_[event.id] = PendingEvent{event, seq};
    heap_.push(HeapEntry{event.at, event.priority, tiebreakFor(seq),
                         seq, event.id});
    ++stats_.scheduled;
    stats_.maxQueued = std::max(stats_.maxQueued, pending_.size());
}

EventId
Engine::post(Nanos at, uint8_t priority, uint32_t actor, uint32_t kind,
             uint64_t a, uint64_t b)
{
    if (actor == 0 || actor >= actors_.size())
        throw std::out_of_range("engine: post to unknown actor");
    Event event;
    event.id = nextId_++;
    event.at = std::max(at, clock_.now()); // the loop never rewinds
    event.priority = priority;
    event.actor = actor;
    event.kind = kind;
    event.a = a;
    event.b = b;
    push(event);
    return event.id;
}

EventId
Engine::postIn(Nanos delay, uint8_t priority, uint32_t actor,
               uint32_t kind, uint64_t a, uint64_t b)
{
    return post(clock_.now() + delay, priority, actor, kind, a, b);
}

EventId
Engine::postNow(uint32_t actor, uint32_t kind, uint64_t a, uint64_t b)
{
    return post(clock_.now(), kPriorityDefault, actor, kind, a, b);
}

bool
Engine::cancel(EventId id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return false;
    pending_.erase(it); // the heap entry dies lazily at pop
    ++stats_.cancelled;
    return true;
}

bool
Engine::reschedule(EventId id, Nanos at)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return false;
    Event event = it->second.event;
    pending_.erase(it); // invalidates the old heap entry's seq
    event.at = std::max(at, clock_.now());
    push(event);
    return true;
}

Nanos
Engine::pendingAt(EventId id) const
{
    auto it = pending_.find(id);
    return it == pending_.end() ? Nanos(0) : it->second.event.at;
}

bool
Engine::step()
{
    while (!heap_.empty()) {
        HeapEntry top = heap_.top();
        heap_.pop();
        auto it = pending_.find(top.id);
        if (it == pending_.end() || it->second.seq != top.seq)
            continue; // cancelled or rescheduled — skip the corpse
        Event event = it->second.event;
        pending_.erase(it);
        if (event.at > clock_.now())
            clock_.advance(event.at - clock_.now());
        ++stats_.dispatched;
        actors_[event.actor]->onEvent(*this, event);
        return true;
    }
    return false;
}

bool
Engine::runUntilIdle(uint64_t maxEvents)
{
    for (uint64_t n = 0; n < maxEvents; ++n)
        if (!step())
            return true;
    return heap_.empty();
}

uint64_t
Engine::runUntil(Nanos deadline)
{
    uint64_t dispatched = 0;
    while (!heap_.empty()) {
        // Skim dead heap entries so top() reflects a live event.
        HeapEntry top = heap_.top();
        auto it = pending_.find(top.id);
        if (it == pending_.end() || it->second.seq != top.seq) {
            heap_.pop();
            continue;
        }
        if (top.at > deadline)
            break;
        step();
        ++dispatched;
    }
    if (clock_.now() < deadline)
        clock_.advance(deadline - clock_.now());
    return dispatched;
}

} // namespace salus::sim
